// Minimal compile_commands.json reader: gqr-analyze only needs the TU
// list (its frontend does not consume compiler flags), so this avoids a
// JSON library dependency. Handles the CMake emitter's shape — an array
// of objects with "directory", "command"/"arguments", and "file" string
// values — including escaped characters.
#ifndef GQR_TOOLS_ANALYZE_COMPILE_DB_H_
#define GQR_TOOLS_ANALYZE_COMPILE_DB_H_

#include <string>
#include <vector>

namespace gqr::analyze {

/// Returns the absolute "file" paths from the database at `path`
/// (relative entries resolved against their "directory"). Empty vector
/// with *error set if the file is missing or unparsable.
bool ReadCompileDb(const std::string& path, std::vector<std::string>* files,
                   std::string* error);

}  // namespace gqr::analyze

#endif  // GQR_TOOLS_ANALYZE_COMPILE_DB_H_
