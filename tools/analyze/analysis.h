// Whole-program analyses over the extracted FileModels.
//
//  * Hot-path purity: call-graph BFS from every GQR_HOT function; any
//    transitively reachable allocation / throw / blocking acquisition is
//    a finding, reported with the full call chain. GQR_VALIDATE-gated
//    code and static/thread_local once-only initializers are excluded —
//    the hot-path contract is a release-build contract.
//  * Lock order: every acquisition made while other locks are held (or
//    declared pre-held via GQR_REQUIRES) contributes an edge to a global
//    lock-order graph over canonical lock names; any cycle — including a
//    self-edge, i.e. nested acquisition of the same lock class — is a
//    finding.
//  * Atomics discipline: (3a) every atomic declaration outside
//    util/atomic.h must be a gqr::Atomic<> with a named intent — raw
//    std::atomic / std::atomic_flag members are findings; (3b) a
//    pointer-typed Atomic<> without AtomicIntent::kPublicationPtr is a
//    finding (its relaxed load would feed a dereference with no acquire
//    edge back to the publishing store); (3c) every wait on a condition
//    variable must use one consistent mutex, and every notify must sit
//    in a function that acquires (or GQR_REQUIRES) that mutex — the
//    static twin of the lost-wakeup class the schedule explorer hunts
//    dynamically.
//
// Waivers (tools/analyze/waivers.txt) suppress individual findings by
// pattern, and every waiver must carry a reason — same policy as the
// repo's NOLINT-with-reason clang-tidy gate.
#ifndef GQR_TOOLS_ANALYZE_ANALYSIS_H_
#define GQR_TOOLS_ANALYZE_ANALYSIS_H_

#include <map>
#include <string>
#include <vector>

#include "model.h"

namespace gqr::analyze {

struct Finding {
  std::string check;  // "hot-path" | "lock-order" | "atomics"
  std::string file;
  int line = 0;
  std::string message;     // Fully formatted, multi-line (chain included).
  std::string waiver_key;  // What waiver patterns match against.
  bool waived = false;
  std::string waiver_reason;
};

struct Waiver {
  std::string check;    // "hot-path" | "lock-order" | "atomics"
  std::string pattern;  // Substring of the finding's waiver_key.
  std::string reason;   // Required non-empty.
  int line = 0;
  bool used = false;
};

/// Parses a waivers file. Returns false (with *error set) on a
/// malformed line — including a waiver without a reason.
bool ParseWaivers(const std::string& text, std::vector<Waiver>* out,
                  std::string* error);

class Analyzer {
 public:
  /// `in_lock_universe` excludes the sync-primitive implementation files
  /// themselves (util/sync.h, util/lock_order.*) from lock-order edge
  /// extraction; they stay in the hot-path universe.
  /// `in_atomics_universe` excludes util/atomic.h and util/sync.h from
  /// the atomics-discipline check — they implement the sanctioned
  /// wrappers and thus hold the only permitted raw atomics and the
  /// condvar itself. Member *types* from excluded files still inform
  /// the check (they identify which members are CondVars).
  void AddFile(FileModel model, bool in_lock_universe,
               bool in_atomics_universe);

  /// The analyses. Waivers are matched (and flagged used) in place.
  std::vector<Finding> RunHotPath(std::vector<Waiver>* waivers) const;
  std::vector<Finding> RunLockOrder(std::vector<Waiver>* waivers) const;
  std::vector<Finding> RunAtomics(std::vector<Waiver>* waivers) const;

  /// Debug aid (--dump): prints extraction for every function whose
  /// qname contains `pattern`.
  void DumpFunctions(const std::string& pattern) const;

 private:
  struct Fn {
    FunctionInfo info;
    bool in_lock_universe = true;
    bool in_atomics_universe = true;
  };

  struct MemberRec {
    MemberDecl decl;
    bool in_atomics_universe = true;
  };

  std::vector<int> Resolve(const Fn& caller, const CallSite& call) const;
  bool MergedHot(const Fn& fn) const;
  std::vector<std::string> MergedRequires(const Fn& fn) const;
  static void ApplyWaivers(std::vector<Finding>* findings,
                           std::vector<Waiver>* waivers);

  const std::vector<int>& Lookup(const std::string& name) const;
  void BuildIndex() const;

  std::vector<Fn> fns_;
  std::vector<MemberRec> members_;
  // name -> indices into fns_ (built lazily on first Run*).
  mutable std::map<std::string, std::vector<int>> name_index_;
  // class::name -> any decl/def carries GQR_HOT / GQR_REQUIRES.
  mutable std::map<std::string, bool> hot_by_key_;
  mutable std::map<std::string, std::vector<std::string>> requires_by_key_;
  mutable bool index_built_ = false;
};

}  // namespace gqr::analyze

#endif  // GQR_TOOLS_ANALYZE_ANALYSIS_H_
