#include "compile_db.h"

#include <fstream>
#include <sstream>

namespace gqr::analyze {

namespace {

/// Parses the JSON string whose opening quote is at `i`; returns the
/// decoded value and leaves `i` past the closing quote.
std::string ParseJsonString(const std::string& s, size_t* i) {
  std::string out;
  size_t j = *i + 1;
  while (j < s.size() && s[j] != '"') {
    if (s[j] == '\\' && j + 1 < s.size()) {
      const char c = s[j + 1];
      switch (c) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u':
          // Paths never need non-ASCII here; keep the escape verbatim.
          out += "\\u";
          break;
        default: out += c; break;
      }
      j += 2;
      continue;
    }
    out += s[j];
    ++j;
  }
  *i = j < s.size() ? j + 1 : j;
  return out;
}

}  // namespace

bool ReadCompileDb(const std::string& path, std::vector<std::string>* files,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string s = buf.str();

  // Object-by-object scan: track brace depth; inside each depth-1
  // object, pick up the "directory" and "file" key values.
  int depth = 0;
  std::string directory, file;
  bool any_object = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"') {
      const std::string key = ParseJsonString(s, &i);
      // `i` is now just past the closing quote. Key (followed by ':')?
      size_t j = i;
      while (j < s.size() && (s[j] == ' ' || s[j] == '\n' || s[j] == '\t' ||
                              s[j] == '\r')) {
        ++j;
      }
      if (j < s.size() && s[j] == ':' && depth == 1) {
        ++j;
        while (j < s.size() && (s[j] == ' ' || s[j] == '\n' ||
                                s[j] == '\t' || s[j] == '\r')) {
          ++j;
        }
        if (j < s.size() && s[j] == '"') {
          const std::string value = ParseJsonString(s, &j);
          if (key == "directory") directory = value;
          if (key == "file") file = value;
          i = j - 1;  // Loop increment lands just past the value.
          continue;
        }
      }
      i = i == 0 ? 0 : i - 1;  // Loop increment lands just past the string.
      continue;
    }
    if (c == '{') {
      ++depth;
      if (depth == 1) {
        directory.clear();
        file.clear();
        any_object = true;
      }
      continue;
    }
    if (c == '}') {
      if (depth == 1 && !file.empty()) {
        std::string resolved = file;
        if (!resolved.empty() && resolved[0] != '/' && !directory.empty()) {
          resolved = directory + "/" + resolved;
        }
        files->push_back(resolved);
      }
      --depth;
      continue;
    }
  }
  if (!any_object) {
    if (error) *error = path + ": no compile command objects found";
    return false;
  }
  return true;
}

}  // namespace gqr::analyze
