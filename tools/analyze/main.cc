// gqr-analyze: whole-program static analysis gate for the GQR codebase.
//
//   gqr-analyze --build-dir build [--source-dir .] [--check all]
//   gqr-analyze --self-test [--testdata tools/analyze/testdata]
//
// Checks (see analysis.h / DESIGN.md §17):
//   hot-path    interprocedural GQR_HOT purity (no transitive allocation,
//               throw, or blocking acquisition), with full call chains
//   lock-order  global lock-order graph from scoped-lock usage and
//               GQR_REQUIRES; fails on any cycle
//   atomics     atomics discipline: raw std::atomic outside util/atomic.h,
//               pointer-typed Atomic<> without publication intent, and
//               condvar wait/notify sites that do not share one mutex
//
// Exit codes follow tools/lint/gqr_lint.py: 0 clean, 1 findings,
// 2 usage/internal error. --strict additionally promotes unused-waiver
// warnings to findings (CI hygiene: stale waivers must be deleted).

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis.h"
#include "compile_db.h"
#include "frontend.h"

namespace gqr::analyze {
namespace {

namespace fs = std::filesystem;

bool ReadFileToString(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The sync-primitive implementations are excluded from lock-order edge
/// extraction (they ARE the locks); everything else in src/ is in both
/// universes.
bool InLockUniverse(const std::string& path) {
  return !EndsWith(path, "util/sync.h") &&
         !EndsWith(path, "util/lock_order.h") &&
         !EndsWith(path, "util/lock_order.cc");
}

/// util/det_sched.* is the GQR_MODELCHECK-only schedule explorer: its
/// coordinator and hooks block by design (serialized execution is the
/// point), and none of it is compiled into release builds. The token
/// frontend is not preprocessor-aware, so the files are excluded from
/// the analysis universe entirely rather than waived finding by finding.
bool InAnalysisUniverse(const std::string& path) {
  return !EndsWith(path, "util/det_sched.h") &&
         !EndsWith(path, "util/det_sched.cc");
}

/// util/atomic.h implements the sanctioned wrapper (it holds the only
/// permitted raw std::atomic / atomic_flag); util/sync.h implements the
/// condvar whose discipline the check enforces. Their member *types*
/// still feed the analysis — only their own sites are exempt.
bool InAtomicsUniverse(const std::string& path) {
  return !EndsWith(path, "util/atomic.h") && !EndsWith(path, "util/sync.h");
}

std::string Relativize(const std::string& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty()) return path;
  const std::string r = rel.string();
  return r.rfind("..", 0) == 0 ? path : r;
}

struct Options {
  std::string build_dir = "build";
  std::string source_dir = ".";
  std::string waivers_path;  // empty: default to <source>/tools/analyze/...
  std::string check = "all";
  std::string testdata;  // self-test data dir
  std::string dump;      // debug: dump extraction for matching functions
  bool self_test = false;
  bool verbose = false;
  bool strict = false;  // unused waivers become findings
};

int Usage() {
  std::cerr
      << "usage: gqr-analyze [--build-dir DIR] [--source-dir DIR]\n"
         "                   [--waivers FILE] [--check all|hot-path|"
         "lock-order|atomics]\n"
         "                   [--strict] [-v]\n"
         "       gqr-analyze --self-test [--testdata DIR]\n";
  return 2;
}

bool LoadWaivers(const std::string& path, std::vector<Waiver>* out,
                 bool required) {
  std::string text;
  if (!ReadFileToString(path, &text)) {
    if (required) {
      std::cerr << "gqr-analyze: cannot read waivers file " << path << "\n";
      return false;
    }
    return true;  // optional default file absent: no waivers
  }
  std::string error;
  if (!ParseWaivers(text, out, &error)) {
    std::cerr << "gqr-analyze: " << path << ": " << error << "\n";
    return false;
  }
  return true;
}

int ReportFindings(const std::vector<Finding>& findings,
                   const std::vector<Waiver>& waivers, const fs::path& root,
                   bool verbose, bool strict) {
  int unwaived = 0, waived = 0;
  for (const Finding& f : findings) {
    if (f.waived) {
      ++waived;
      if (verbose) {
        std::cout << "gqr-analyze: waived: " << f.check << ": "
                  << Relativize(f.file, root) << ":" << f.line << " ("
                  << f.waiver_reason << ")\n";
      }
      continue;
    }
    ++unwaived;
    std::cout << "gqr-analyze: " << f.check << ": " << f.message << "\n";
  }
  for (const Waiver& w : waivers) {
    if (!w.used) {
      std::cout << "gqr-analyze: " << (strict ? "error" : "warning")
                << ": unused waiver '" << w.pattern << "' (" << w.check
                << ", waivers line " << w.line << ")"
                << (strict ? " — delete stale waivers (--strict)" : "")
                << "\n";
      if (strict) ++unwaived;
    }
  }
  if (waived > 0) {
    std::cout << "gqr-analyze: " << waived
              << " finding(s) waived with reasons (see waivers.txt"
              << (verbose ? "" : ", -v to list") << ")\n";
  }
  return unwaived;
}

// ---------------------------------------------------------------------------
// Repo mode
// ---------------------------------------------------------------------------

int RunRepo(const Options& opt) {
  // Canonicalize so the src/ prefix filter below compares like with
  // like: fs::absolute(".") keeps the trailing "/." and would match no
  // compile-database entry.
  const fs::path source_root =
      fs::weakly_canonical(fs::absolute(opt.source_dir));
  const fs::path src = source_root / "src";
  if (!fs::is_directory(src)) {
    std::cerr << "gqr-analyze: no src/ under " << source_root << "\n";
    return 2;
  }

  // TU list from the compile database, headers from a src/ walk. The
  // frontend does not need compiler flags, but reading the database
  // keeps the analyzed set honest: exactly what the build compiles,
  // plus the headers those TUs include.
  const fs::path db_path =
      fs::path(opt.build_dir) / "compile_commands.json";
  std::vector<std::string> db_files;
  std::string error;
  if (!ReadCompileDb(db_path.string(), &db_files, &error)) {
    std::cerr << "gqr-analyze: " << error
              << " (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)\n";
    return 2;
  }

  std::set<std::string> universe;
  const std::string src_prefix = src.string() + "/";
  for (const std::string& f : db_files) {
    std::error_code ec;
    const fs::path canon = fs::weakly_canonical(f, ec);
    const std::string p = ec ? f : canon.string();
    if (p.rfind(src_prefix, 0) == 0 && InAnalysisUniverse(p)) {
      universe.insert(p);
    }
  }
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".hpp") continue;
    std::error_code ec;
    const fs::path canon = fs::weakly_canonical(entry.path(), ec);
    const std::string p = ec ? entry.path().string() : canon.string();
    if (InAnalysisUniverse(p)) universe.insert(p);
  }
  if (universe.empty()) {
    std::cerr << "gqr-analyze: no src/ TUs in " << db_path << "\n";
    return 2;
  }

  Analyzer analyzer;
  int parsed = 0;
  for (const std::string& path : universe) {
    std::string text;
    if (!ReadFileToString(path, &text)) {
      std::cerr << "gqr-analyze: cannot read " << path << "\n";
      return 2;
    }
    analyzer.AddFile(ParseFile(Relativize(path, source_root), text),
                     InLockUniverse(path), InAtomicsUniverse(path));
    ++parsed;
  }

  std::vector<Waiver> waivers;
  const std::string waivers_path =
      !opt.waivers_path.empty()
          ? opt.waivers_path
          : (source_root / "tools" / "analyze" / "waivers.txt").string();
  if (!LoadWaivers(waivers_path, &waivers, !opt.waivers_path.empty())) {
    return 2;
  }

  if (!opt.dump.empty()) {
    analyzer.DumpFunctions(opt.dump);
    return 0;
  }

  std::vector<Finding> findings;
  if (opt.check == "all" || opt.check == "hot-path") {
    auto f = analyzer.RunHotPath(&waivers);
    findings.insert(findings.end(), f.begin(), f.end());
  }
  if (opt.check == "all" || opt.check == "lock-order") {
    auto f = analyzer.RunLockOrder(&waivers);
    findings.insert(findings.end(), f.begin(), f.end());
  }
  if (opt.check == "all" || opt.check == "atomics") {
    auto f = analyzer.RunAtomics(&waivers);
    findings.insert(findings.end(), f.begin(), f.end());
  }

  const int unwaived = ReportFindings(findings, waivers, source_root,
                                      opt.verbose, opt.strict);
  if (opt.verbose) {
    std::cout << "gqr-analyze: analyzed " << parsed << " files ("
              << opt.check << ")\n";
  }
  if (unwaived > 0) {
    std::cout << "gqr-analyze: " << unwaived << " finding(s)\n";
    return 1;
  }
  std::cout << "gqr-analyze: OK (" << parsed << " files, checks: "
            << opt.check << ")\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Self-test mode: seeded-bad TUs must fire, good TUs must stay quiet,
// and the repo waivers file must not mask seeded violations.
// ---------------------------------------------------------------------------

struct SelfTestCase {
  const char* file;
  const char* check;      // which analysis must fire ("" = none)
  const char* expect_sub; // substring required in some finding message
  int min_findings;
};

int RunSelfTest(const Options& opt) {
  fs::path testdata = opt.testdata.empty()
                          ? fs::path("tools/analyze/testdata")
                          : fs::path(opt.testdata);
  if (!fs::is_directory(testdata)) {
    // Fall back to the directory next to the binary's source, passed by
    // ctest via --testdata; nothing more to guess here.
    std::cerr << "gqr-analyze: testdata directory not found: " << testdata
              << "\n";
    return 2;
  }

  const SelfTestCase cases[] = {
      {"good.cc", "", "", 0},
      {"bad_hot_transitive_alloc.cc", "hot-path",
       "SeedHot -> SeedMid -> SeedLeafAlloc", 1},
      {"bad_hot_transitive_throw.cc", "hot-path", "may throw", 1},
      {"bad_hot_transitive_lock.cc", "hot-path", "may block", 1},
      {"bad_lock_cycle.cc", "lock-order", "lock-order cycle", 1},
      {"bad_lock_requires.cc", "lock-order", "lock-order cycle", 1},
      {"bad_atomic_raw.cc", "atomics", "raw std::atomic", 2},
      {"bad_atomic_pub_intent.cc", "atomics", "kPublicationPtr", 2},
      {"bad_cv_mixed_mutex.cc", "atomics", "different mutexes", 1},
      {"bad_cv_notify_no_mutex.cc", "atomics", "without acquiring", 1},
  };

  // Repo waivers (if present) are loaded for the masking check below.
  std::vector<Waiver> repo_waivers;
  const fs::path repo_waivers_path = testdata.parent_path() / "waivers.txt";
  {
    std::string text;
    if (ReadFileToString(repo_waivers_path, &text)) {
      std::string error;
      if (!ParseWaivers(text, &repo_waivers, &error)) {
        std::cerr << "gqr-analyze: self-test: repo waivers unparsable: "
                  << error << "\n";
        return 2;
      }
    }
  }

  int failures = 0;
  auto fail = [&](const std::string& msg) {
    std::cerr << "gqr-analyze: self-test FAIL: " << msg << "\n";
    ++failures;
  };

  auto analyze_one = [&](const fs::path& file, std::vector<Waiver>* waivers,
                         std::vector<Finding>* out) -> bool {
    std::string text;
    if (!ReadFileToString(file, &text)) return false;
    Analyzer analyzer;
    analyzer.AddFile(ParseFile(file.filename().string(), text), true, true);
    auto hot = analyzer.RunHotPath(waivers);
    auto lock = analyzer.RunLockOrder(waivers);
    auto atomics = analyzer.RunAtomics(waivers);
    out->insert(out->end(), hot.begin(), hot.end());
    out->insert(out->end(), lock.begin(), lock.end());
    out->insert(out->end(), atomics.begin(), atomics.end());
    return true;
  };

  for (const SelfTestCase& c : cases) {
    const fs::path file = testdata / c.file;
    std::vector<Finding> findings;
    if (!analyze_one(file, nullptr, &findings)) {
      fail(std::string("cannot read ") + file.string());
      continue;
    }
    if (c.check[0] == '\0') {
      if (!findings.empty()) {
        fail(std::string(c.file) + ": expected clean, got " +
             std::to_string(findings.size()) + " finding(s): " +
             findings[0].message);
      }
      continue;
    }
    int matching = 0;
    bool sub_found = false;
    for (const Finding& f : findings) {
      if (f.check == c.check) ++matching;
      if (f.message.find(c.expect_sub) != std::string::npos) {
        sub_found = true;
      }
    }
    if (matching < c.min_findings) {
      fail(std::string(c.file) + ": expected >= " +
           std::to_string(c.min_findings) + " " + c.check +
           " finding(s), got " + std::to_string(matching));
      continue;
    }
    if (!sub_found) {
      fail(std::string(c.file) + ": no finding mentions '" + c.expect_sub +
           "'");
      continue;
    }
    // Masking check: the repo waivers must not silence a seeded TU.
    if (!repo_waivers.empty()) {
      std::vector<Finding> waived_run;
      std::vector<Waiver> waivers_copy = repo_waivers;
      if (!analyze_one(file, &waivers_copy, &waived_run)) continue;
      int unwaived = 0;
      for (const Finding& f : waived_run) {
        if (!f.waived && f.check == c.check) ++unwaived;
      }
      if (unwaived < c.min_findings) {
        fail(std::string(c.file) +
             ": repo waivers.txt masks a seeded violation");
      }
    }
  }

  // Waiver mechanism: waived.cc findings are suppressed by the adjacent
  // self-test waivers file, and unmatched waivers are detected.
  {
    const fs::path file = testdata / "waived.cc";
    std::string wtext;
    std::vector<Waiver> waivers;
    if (!ReadFileToString(testdata / "waivers_selftest.txt", &wtext)) {
      fail("cannot read waivers_selftest.txt");
    } else {
      std::string error;
      if (!ParseWaivers(wtext, &waivers, &error)) {
        fail("waivers_selftest.txt unparsable: " + error);
      }
    }
    std::vector<Finding> without;
    if (!analyze_one(file, nullptr, &without)) {
      fail("cannot read waived.cc");
    } else {
      if (without.empty()) {
        fail("waived.cc: expected findings without waivers, got none");
      }
      std::vector<Finding> with;
      analyze_one(file, &waivers, &with);
      for (const Finding& f : with) {
        if (!f.waived) {
          fail("waived.cc: finding not waived: " + f.message);
          break;
        }
      }
    }
  }

  // Waiver hygiene: a reason-less waiver must be rejected at parse time.
  {
    std::vector<Waiver> out;
    std::string error;
    if (ParseWaivers("hot-path SomeFunction\n", &out, &error)) {
      fail("reason-less waiver was accepted");
    }
  }

  if (failures > 0) {
    std::cerr << "gqr-analyze: self-test: " << failures << " failure(s)\n";
    return 1;
  }
  std::cout << "gqr-analyze: self-test OK ("
            << sizeof(cases) / sizeof(cases[0])
            << " seeded cases + waiver checks)\n";
  return 0;
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--build-dir") {
      const char* v = next();
      if (!v) return Usage();
      opt.build_dir = v;
    } else if (arg == "--source-dir") {
      const char* v = next();
      if (!v) return Usage();
      opt.source_dir = v;
    } else if (arg == "--waivers") {
      const char* v = next();
      if (!v) return Usage();
      opt.waivers_path = v;
    } else if (arg == "--check") {
      const char* v = next();
      if (!v) return Usage();
      opt.check = v;
      if (opt.check != "all" && opt.check != "hot-path" &&
          opt.check != "lock-order" && opt.check != "atomics") {
        return Usage();
      }
    } else if (arg == "--testdata") {
      const char* v = next();
      if (!v) return Usage();
      opt.testdata = v;
    } else if (arg == "--dump") {
      const char* v = next();
      if (!v) return Usage();
      opt.dump = v;
    } else if (arg == "--self-test") {
      opt.self_test = true;
    } else if (arg == "--strict") {
      opt.strict = true;
    } else if (arg == "-v" || arg == "--verbose") {
      opt.verbose = true;
    } else {
      return Usage();
    }
  }
  return opt.self_test ? RunSelfTest(opt) : RunRepo(opt);
}

}  // namespace
}  // namespace gqr::analyze

int main(int argc, char** argv) { return gqr::analyze::Main(argc, argv); }
