// Self-test TU (analyzed, never compiled): inversion where one side of
// each edge comes from a GQR_REQUIRES annotation instead of a visible
// scoped-lock acquisition — lock-held helpers participate in the global
// order graph through their contracts.

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

Mutex g_table_mu;
Mutex g_log_mu;

void SeedLogLocked() GQR_REQUIRES(g_table_mu) {
  MutexLock lock(g_log_mu);  // g_table_mu -> g_log_mu
}

void SeedTableLocked() GQR_REQUIRES(g_log_mu) {
  MutexLock lock(g_table_mu);  // g_log_mu -> g_table_mu: cycle
}
