// Self-test TU (analyzed, never compiled): a GQR_HOT entry reaching a
// blocking lock acquisition through a helper — the per-candidate loop
// must never wait on a contended mutex.

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

Mutex g_stats_mu;
int g_stats_count;

int SeedCount();

GQR_HOT int SeedHot(int n) { return n + SeedCount(); }

int SeedCount() {
  MutexLock lock(g_stats_mu);  // transitive blocking acquire: must fire
  return g_stats_count;
}
