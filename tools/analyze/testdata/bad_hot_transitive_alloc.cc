// Self-test TU (analyzed, never compiled): a GQR_HOT entry reaching an
// allocation two calls deep — exactly the gap lint rule C (direct
// allocations only) cannot see. The analyzer must report the full
// SeedHot -> SeedMid -> SeedLeafAlloc chain.

int SeedLeafAlloc(int n);

GQR_HOT int SeedHot(int n) { return SeedMid(n); }

int SeedMid(int n) { return SeedLeafAlloc(n + 1); }

int SeedLeafAlloc(int n) {
  int* p = new int[n];  // transitive hot-path allocation: must fire
  int sum = 0;
  for (int i = 0; i < n; ++i) sum += p[i];
  delete[] p;
  return sum;
}
