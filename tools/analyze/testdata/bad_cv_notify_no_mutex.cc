// Self-test TU (analyzed, never compiled): a notify whose enclosing
// function never acquires the condvar's wait mutex. Check (3c) must
// flag it — the predicate write preceding the notify is unordered with
// the waiter's locked re-check, which is exactly the shape of the
// PR-8 flush lost-wakeup race the schedule explorer hunts dynamically.

namespace seedcvnotify {

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

class CondVar {
 public:
  void Wait(Mutex& mu);
  void NotifyOne();
};

class Chan {
 public:
  void Recv() {
    MutexLock lock(mu_);
    while (!ready_) cv_.Wait(mu_);
  }

  void Post() {
    ready_ = true;  // seeded: predicate write outside the lock...
    cv_.NotifyOne();  // ...and the notify never orders with Recv's check
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool ready_ = false;
};

}  // namespace seedcvnotify
