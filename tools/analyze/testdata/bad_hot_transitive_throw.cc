// Self-test TU (analyzed, never compiled): a GQR_HOT entry reaching a
// throw through a helper. Hot paths are noexcept territory — an unwound
// probe loop corrupts per-query scratch reuse.

float SeedCheck(float v);

GQR_HOT float SeedHot(float v) { return SeedCheck(v) + 1.0f; }

float SeedCheck(float v) {
  if (v < 0.0f) throw 42;  // transitive hot-path throw: must fire
  return v;
}
