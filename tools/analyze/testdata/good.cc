// Self-test TU (analyzed by gqr-analyze, never compiled): every pattern
// here is one the analyzer must stay quiet on.
//
//  * hot path calling a pure helper chain
//  * allocation inside a static (once-only) initializer
//  * allocation behind a GQR_VALIDATE conditional
//  * consistent lock order (A before B everywhere)
//  * try-lock acquisitions, which never close a cycle
//  * member-mutex canonicalization (Class::member identity)

namespace seedgood {

class Mutex {
 public:
  void Lock();
  void Unlock();
  bool TryLock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

Mutex g_a;
Mutex g_b;

int PureLeaf(int x) { return x * 2 + 1; }

int PureMid(int x) { return PureLeaf(x) + PureLeaf(x + 1); }

void ValidateAll(int x);

GQR_HOT int HotEntry(int x) {
  static int* table = new int[64];  // once-only init: not a violation
#if GQR_VALIDATE
  ValidateAll(x);  // validating builds trade speed for checking
#endif
  return PureMid(x) + table[0];
}

void ValidateAll(int x) {
  // Only reachable through the validate-gated call above; the hot-path
  // analysis must not traverse into it.
  int* scratch = new int[x + 1];
  delete[] scratch;
}

void ConsistentOrder1() {
  MutexLock la(g_a);
  MutexLock lb(g_b);
}

void ConsistentOrder2() {
  MutexLock la(g_a);
  MutexLock lb(g_b);
}

void TryNeverBlocks() {
  MutexLock lb(g_b);
  // Try-acquire of g_a while holding g_b: a failed try cannot block, so
  // this must NOT create a b->a edge (which would close a cycle with the
  // a->b order above).
  if (g_a.TryLock()) {
    g_a.Unlock();
  }
}

class Counter {
 public:
  void Bump() {
    MutexLock l(mu_);
    ++n_;
  }

 private:
  Mutex mu_;
  int n_ = 0;
};

}  // namespace seedgood
