// Self-test TU (analyzed, never compiled): classic A->B / B->A
// inversion via scoped locks. Each function is individually correct —
// only the global lock-order graph sees the cycle.

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

Mutex g_first;
Mutex g_second;
int g_x;
int g_y;

void SeedForward() {
  MutexLock la(g_first);
  MutexLock lb(g_second);  // g_first -> g_second
  g_x = g_y + 1;
}

void SeedBackward() {
  MutexLock lb(g_second);
  MutexLock la(g_first);  // g_second -> g_first: closes the cycle
  g_y = g_x + 1;
}
