// Self-test TU (analyzed, never compiled): raw std::atomic and
// std::atomic_flag members outside util/atomic.h. The atomics check
// (3a) must flag both — every atomic in the codebase goes through
// gqr::Atomic<> so its memory-order intent is named and the modelcheck
// build can interpose a schedule point.

namespace seedatomics {

class HitCounter {
 public:
  void Bump() { hits_.fetch_add(1); }

 private:
  std::atomic<unsigned long> hits_{0};  // seeded: raw atomic member
};

class SpinGate {
 private:
  std::atomic_flag busy_;  // seeded: raw atomic_flag member
};

}  // namespace seedatomics
