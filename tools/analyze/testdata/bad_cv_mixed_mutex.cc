// Self-test TU (analyzed, never compiled): one condition variable
// waited on under two different mutexes. Check (3c) must flag it —
// waiters under different locks miss each other's predicate writes, so
// a notify ordered by one mutex is a lost wakeup for the waiter holding
// the other.

namespace seedcv {

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

class CondVar {
 public:
  void Wait(Mutex& mu);
  void NotifyOne();
  void NotifyAll();
};

class Queue {
 public:
  void Pop() {
    MutexLock lock(mu_a_);
    while (empty_) cv_.Wait(mu_a_);
  }

  void Drain() {
    MutexLock lock(mu_b_);
    while (empty_) cv_.Wait(mu_b_);  // seeded: same cv, different mutex
  }

  void Push() {
    MutexLock lock(mu_a_);
    empty_ = false;
    cv_.NotifyOne();
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
  CondVar cv_;
  bool empty_ = true;
};

}  // namespace seedcv
