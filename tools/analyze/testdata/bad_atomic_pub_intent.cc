// Self-test TU (analyzed, never compiled): pointer-typed Atomic<>
// members without publication intent. Check (3b) must flag the
// defaulted-counter and the explicit-seqlock declarations — a relaxed
// (or non-acquire) load of a pointer that is then dereferenced has no
// happens-before edge back to the initialization of the pointee. The
// kPublicationPtr declaration must stay quiet.

namespace seedpub {

struct Node {
  int value;
};

class Registry {
 private:
  Atomic<Node*> head_{nullptr};  // seeded: defaulted kCounter intent
  Atomic<Node*, AtomicIntent::kSeqlock> stale_{nullptr};  // seeded: wrong
  Atomic<Node*, AtomicIntent::kPublicationPtr> ok_{nullptr};  // fine
  Atomic<unsigned long> count_{0};  // fine: scalar counter
};

}  // namespace seedpub
