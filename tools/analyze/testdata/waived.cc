// Self-test TU (analyzed, never compiled): a real violation whose
// containing function matches an entry in waivers_selftest.txt. Proves
// the waiver mechanism suppresses exactly what it names — the masking
// check in --self-test separately proves the repo waivers.txt does NOT
// suppress the other seeded TUs.

GQR_HOT int WaivedSeedFn(int n) {
  int* p = new int(n);  // waived by waivers_selftest.txt
  const int v = *p;
  delete p;
  return v;
}
