// Extraction model shared by the gqr-analyze frontend and analyses.
//
// The frontend reduces every translation unit to this model; the
// analyses (analysis.h) consume only the model, so a future AST-backed
// frontend (Clang libTooling, CMake-gated on ClangConfig) slots in
// without touching the checks.
#ifndef GQR_TOOLS_ANALYZE_MODEL_H_
#define GQR_TOOLS_ANALYZE_MODEL_H_

#include <map>
#include <string>
#include <vector>

namespace gqr::analyze {

/// One call expression inside a function body.
struct CallSite {
  std::string name;       // Last name component ("Next", "Plan").
  std::string qualifier;  // Written qualifier, if any ("std", "gqr::detail").
  int line = 0;
  bool validate_only = false;  // Inside a GQR_VALIDATE conditional.
  bool once_only = false;      // Inside a static/thread_local initializer.
  /// Written as `expr.name(...)` / `expr->name(...)`. When the receiver
  /// type could not be resolved (qualifier empty), resolution falls back
  /// to every same-named function — virtual dispatch conservatism.
  bool member_call = false;
};

/// A hot-path-relevant effect inside a function body.
struct EffectSite {
  enum class Type {
    kNew,          // operator new / new[]
    kMalloc,       // malloc-family call
    kOwningLocal,  // automatic-storage owning container declaration
    kCapacity,     // reserve / shrink_to_fit member call
    kThrow,        // throw expression
    kBlocking,     // blocking lock acquisition or condition-variable wait
  };

  Type type;
  std::string detail;  // Human-readable: "new", "std::vector local", ...
  int line = 0;
  bool validate_only = false;
  bool once_only = false;
};

/// One condition-variable operation: `cv.Wait(mu)` / `cv.WaitUntil(mu,
/// ...)` records the canonical cv and mutex identities; `cv.NotifyOne()`
/// / `cv.NotifyAll()` records the cv alone. Raw material for the
/// atomics-discipline check's wait/notify mutex-consistency rule.
struct CvOpSite {
  std::string cv_expr;     // Canonicalized ("State::cv", "Impl::cv_").
  std::string mutex_expr;  // Wait sites only; empty for notifies.
  int line = 0;
  bool is_wait = false;
};

/// One lock acquisition (scoped-lock construction or direct Lock call),
/// with the set of locks already held in the enclosing scopes at that
/// point — the raw material of the lock-order graph.
struct AcquireSite {
  std::string lock_expr;  // Canonicalized lock name ("Shard::mu", "g_mu").
  int line = 0;
  bool validate_only = false;
  /// False for TryLock/TryLockShared: a failed try cannot block, so the
  /// acquisition never closes a deadlock cycle — but a *successful* try
  /// is still held, so it contributes to held_exprs of later acquires.
  bool blocking = true;
  /// Lock expressions (same normalization) held when this acquisition
  /// happens, innermost last; GQR_REQUIRES locks are added by the
  /// analysis, not here.
  std::vector<std::string> held_exprs;
  std::vector<int> held_lines;
};

/// One function definition or declaration.
struct FunctionInfo {
  std::string qname;  // Fully scope-qualified ("gqr::ThreadPool::Enqueue").
  std::string name;   // Last component ("Enqueue").
  // Innermost enclosing (or written) class name, empty for free functions.
  std::string class_name;
  std::string file;
  int line = 0;
  bool defined = false;  // Has a body (vs declaration only).
  bool hot = false;      // Carries GQR_HOT (on this decl or a merged one).

  /// Raw argument strings of GQR_REQUIRES / GQR_REQUIRES_SHARED.
  std::vector<std::string> requires_locks;

  std::vector<CallSite> calls;
  std::vector<EffectSite> effects;
  std::vector<AcquireSite> acquires;
  std::vector<CvOpSite> cv_ops;

  /// Best-effort local/parameter name -> type (last class-ish component),
  /// used to resolve lock expressions like "s.mu" to "Shard::mu".
  std::map<std::string, std::string> local_types;
};

/// A class member (or namespace-scope variable) declaration the lock
/// analyses care about: sync primitives and, best-effort, typed members
/// used to resolve receiver expressions.
struct MemberDecl {
  std::string class_name;  // Empty for namespace-scope variables.
  std::string name;
  std::string type;  // Last type component ("Mutex", "SharedMutex", ...).
  /// Joined text of the template arguments written directly after the
  /// type ("Node*,AtomicIntent::kCounter" for Atomic<Node*, ...>); empty
  /// when the type is not written with template arguments. Used by the
  /// atomics-discipline check to read the declared intent.
  std::string type_args;
  std::string file;
  int line = 0;
};

/// Everything extracted from one file.
struct FileModel {
  std::string path;
  std::vector<FunctionInfo> functions;
  std::vector<MemberDecl> members;
};

}  // namespace gqr::analyze

#endif  // GQR_TOOLS_ANALYZE_MODEL_H_
