#include "frontend.h"

#include <cctype>
#include <functional>
#include <set>

#include "lexer.h"

namespace gqr::analyze {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "if",       "else",    "for",      "while",    "do",      "switch",
      "case",     "default", "return",   "break",    "continue", "goto",
      "sizeof",   "alignof", "alignas",  "decltype", "typeid",  "noexcept",
      "new",      "delete",  "throw",    "try",      "catch",   "const",
      "constexpr", "consteval", "constinit", "volatile", "mutable", "static",
      "thread_local", "inline", "extern", "register", "auto",    "void",
      "bool",     "char",    "short",    "int",      "long",    "float",
      "double",   "signed",  "unsigned", "wchar_t",  "char8_t", "char16_t",
      "char32_t", "size_t",  "ssize_t",  "ptrdiff_t", "struct", "class",
      "union",    "enum",    "typename", "template", "using",   "typedef",
      "namespace", "public", "private",  "protected", "friend", "virtual",
      "override", "final",   "explicit", "operator", "this",    "nullptr",
      "true",     "false",   "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast", "static_assert", "requires", "concept", "co_await",
      "co_return", "co_yield", "and", "or", "not", "restrict",
  };
  return kw;
}

bool IsKeyword(const std::string& s) { return Keywords().count(s) != 0; }

bool IsAnnotationMacro(const std::string& s) {
  // GQR_HOT, GQR_REQUIRES, GQR_GUARDED_BY, GQR_CHECK, ... — any GQR_*
  // identifier is an annotation/contract macro, never a function we want
  // in the call graph. Same for the clang-builtin-ish GQR_TARGET_* and
  // standard attribute idents.
  return s.rfind("GQR_", 0) == 0;
}

bool IsMallocName(const std::string& s) {
  return s == "malloc" || s == "calloc" || s == "realloc" ||
         s == "aligned_alloc" || s == "posix_memalign" || s == "strdup" ||
         s == "strndup";
}

bool IsMakeAllocName(const std::string& s) {
  return s == "make_unique" || s == "make_shared" ||
         s == "make_unique_for_overwrite" || s == "make_shared_for_overwrite" ||
         s == "allocate_shared";
}

bool IsBlockingCallName(const std::string& s) {
  return s == "Wait" || s == "WaitUntil" || s == "wait" || s == "wait_for" ||
         s == "wait_until" || s == "join" || s == "sleep_for" ||
         s == "sleep_until";
}

bool IsOwningContainerName(const std::string& s) {
  return s == "vector" || s == "string" || s == "basic_string" ||
         s == "deque" || s == "list" || s == "forward_list" || s == "map" ||
         s == "set" || s == "multimap" || s == "multiset" ||
         s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset" ||
         s == "function" || s == "any" || s == "ostringstream" ||
         s == "istringstream" || s == "stringstream" || s == "valarray";
}

bool IsStdScopedLockName(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "shared_lock" ||
         s == "scoped_lock";
}

/// Repo scoped-lock convention: util/sync.h types plus any
/// GQR_SCOPED_CAPABILITY wrapper — all named *Lock (MutexLock,
/// ReaderLock, WriterLock, ShardReadLock, ShardWriteLock, ...).
bool IsScopedLockTypeName(const std::string& s) {
  if (IsStdScopedLockName(s)) return true;
  if (s.size() <= 4) return false;
  if (s.compare(s.size() - 4, 4, "Lock") != 0) return false;
  return std::isupper(static_cast<unsigned char>(s[0])) != 0;
}

bool IsMutexTypeName(const std::string& s) {
  return s == "Mutex" || s == "SharedMutex" || s == "mutex" ||
         s == "shared_mutex" || s == "recursive_mutex" || s == "timed_mutex";
}

class Parser {
 public:
  Parser(std::string path, std::vector<Token> toks, FileModel* out)
      : path_(std::move(path)), toks_(std::move(toks)), out_(out) {}

  void Run() {
    while (pos_ < toks_.size()) ParseDeclaration();
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kOpaque } kind;
    std::string name;
  };

  // --- token stream helpers -------------------------------------------

  bool AtEnd() const { return pos_ >= toks_.size(); }
  const Token& Cur() const { return toks_[pos_]; }
  const std::string& Text(size_t i) const {
    static const std::string empty;
    return i < toks_.size() ? toks_[i].text : empty;
  }
  bool Is(size_t i, const char* t) const { return Text(i) == t; }
  bool IsIdentAt(size_t i) const {
    return i < toks_.size() && toks_[i].kind == Token::Kind::kIdent;
  }

  /// Index just past the region balanced on (), {}, [], <> starting at
  /// the opener `i`. `<` balancing is only meaningful when the caller
  /// knows `i` opens template args.
  size_t SkipBalanced(size_t i) const {
    if (i >= toks_.size()) return i;
    const std::string& open = toks_[i].text;
    std::string close;
    if (open == "(") close = ")";
    else if (open == "{") close = "}";
    else if (open == "[") close = "]";
    else if (open == "<") close = ">";
    else return i + 1;
    int depth = 0;
    size_t j = i;
    while (j < toks_.size()) {
      const std::string& t = toks_[j].text;
      if (t == open) {
        ++depth;
      } else if (t == close) {
        if (--depth == 0) return j + 1;
      } else if (open == "<" && (t == ";" || t == "{")) {
        return j;  // Not template args after all (comparison); bail.
      }
      ++j;
    }
    return j;
  }

  /// Skips to just past the next `;` at brace/paren depth 0 relative to
  /// the current position (balanced sub-blocks are skipped whole).
  void SkipToSemicolon() {
    int depth = 0;
    while (!AtEnd()) {
      const std::string& t = Cur().text;
      if (t == "(" || t == "{" || t == "[") {
        pos_ = SkipBalanced(pos_);
        continue;
      }
      if (t == "}" && depth == 0) return;  // Scope close; leave for caller.
      if (t == ";" && depth == 0) {
        ++pos_;
        return;
      }
      ++pos_;
    }
  }

  std::string InnermostClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  }

  std::string QualifiedName(const std::string& written_qual,
                            const std::string& name) const {
    std::string q;
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::kOpaque || s.name.empty()) continue;
      if (!q.empty()) q += "::";
      q += s.name;
    }
    if (!written_qual.empty()) {
      if (!q.empty()) q += "::";
      q += written_qual;
    }
    if (!q.empty()) q += "::";
    q += name;
    return q;
  }

  // --- declaration level ----------------------------------------------

  void ParseDeclaration() {
    const size_t boundary = pos_;
    const std::string& t = Cur().text;

    if (t == "}") {
      if (!scopes_.empty()) scopes_.pop_back();
      ++pos_;
      return;
    }
    if (t == ";" || t == ":") {  // stray / access-spec colon
      ++pos_;
      return;
    }
    if (t == "public" || t == "private" || t == "protected") {
      ++pos_;
      if (!AtEnd() && Is(pos_, ":")) ++pos_;
      return;
    }
    if (t == "namespace") {
      ParseNamespace();
      return;
    }
    if (t == "class" || t == "struct" || t == "union") {
      ParseClassHead();
      return;
    }
    if (t == "enum") {
      ParseEnum();
      return;
    }
    if (t == "template") {
      ++pos_;
      if (!AtEnd() && Is(pos_, "<")) pos_ = SkipBalanced(pos_);
      return;  // The templated entity parses as the next declaration.
    }
    if (t == "using" || t == "typedef" || t == "static_assert" ||
        t == "friend" || t == "concept") {
      SkipToSemicolon();
      return;
    }
    if (t == "extern") {
      // `extern "C" { ... }` — parse contents normally under an
      // anonymous namespace-like scope; plain extern decls fall through.
      if (pos_ + 1 < toks_.size() &&
          toks_[pos_ + 1].kind == Token::Kind::kString) {
        pos_ += 2;
        if (!AtEnd() && Is(pos_, "{")) {
          scopes_.push_back({Scope::kNamespace, ""});
          ++pos_;
        }
        return;
      }
    }
    if (t == "{") {  // Unclassified brace block at decl scope.
      pos_ = SkipBalanced(pos_);
      return;
    }

    // General declaration: scan for a function-ish `ident (` pattern,
    // else record a member/variable declaration at the `;`.
    ScanDeclarationFrom(boundary);
  }

  void ParseNamespace() {
    ++pos_;  // "namespace"
    std::string name;
    while (IsIdentAt(pos_)) {
      if (!name.empty()) name += "::";
      name += Cur().text;
      ++pos_;
      if (Is(pos_, "::")) {
        ++pos_;
        continue;
      }
      break;
    }
    if (Is(pos_, "=")) {  // namespace alias
      SkipToSemicolon();
      return;
    }
    if (Is(pos_, "{")) {
      scopes_.push_back({Scope::kNamespace, name});
      ++pos_;
    }
  }

  void ParseClassHead() {
    ++pos_;  // class/struct/union
    // Attribute macros (GQR_CAPABILITY("mutex"), GQR_SCOPED_CAPABILITY),
    // alignas, [[...]].
    std::string name;
    while (!AtEnd()) {
      const std::string& t = Cur().text;
      if (t == "[") {
        pos_ = SkipBalanced(pos_);
        continue;
      }
      if (t == "alignas" || IsAnnotationMacro(t)) {
        ++pos_;
        if (Is(pos_, "(")) pos_ = SkipBalanced(pos_);
        continue;
      }
      if (IsIdentAt(pos_) && t != "final") {
        name = t;
        ++pos_;
        if (Is(pos_, "<")) pos_ = SkipBalanced(pos_);  // specialization
        continue;
      }
      break;
    }
    if (Is(pos_, "final")) ++pos_;
    if (Is(pos_, ";")) {  // forward declaration
      ++pos_;
      return;
    }
    if (Is(pos_, ":")) {  // base clause: skip to the body brace
      ++pos_;
      while (!AtEnd() && !Is(pos_, "{") && !Is(pos_, ";")) {
        if (Is(pos_, "<") || Is(pos_, "(")) {
          pos_ = SkipBalanced(pos_);
          continue;
        }
        ++pos_;
      }
    }
    if (Is(pos_, "{")) {
      scopes_.push_back({Scope::kClass, name});
      ++pos_;
      return;
    }
    // `struct Foo x;` elaborated-type declaration — let the scanner
    // finish the statement.
    SkipToSemicolon();
  }

  void ParseEnum() {
    ++pos_;
    if (Is(pos_, "class") || Is(pos_, "struct")) ++pos_;
    if (IsIdentAt(pos_)) ++pos_;
    if (Is(pos_, ":")) {  // underlying type
      ++pos_;
      while (IsIdentAt(pos_) || Is(pos_, "::")) ++pos_;
    }
    if (Is(pos_, "{")) {
      pos_ = SkipBalanced(pos_);  // Enumerators are opaque to us.
    }
    if (Is(pos_, ";")) ++pos_;
  }

  /// Scans one declaration starting at `boundary` for a function
  /// definition/declaration; records a member variable otherwise.
  void ScanDeclarationFrom(size_t boundary) {
    while (!AtEnd()) {
      const std::string& t = Cur().text;
      if (t == "}") return;  // Scope close; caller handles.
      if (t == ";") {
        RecordMemberDecl(boundary, pos_);
        ++pos_;
        return;
      }
      if (t == "{") {  // brace init of a variable: {...} then ;
        pos_ = SkipBalanced(pos_);
        continue;
      }
      if (t == "<") {
        pos_ = SkipBalanced(pos_);
        continue;
      }
      if (t == "class" || t == "struct" || t == "namespace" ||
          t == "template" || t == "public" || t == "private" ||
          t == "protected") {
        return;  // Re-dispatch: mis-scanned into a nested construct.
      }
      if (t == "(" && pos_ > boundary && IsIdentAt(pos_ - 1)) {
        const std::string& prev = toks_[pos_ - 1].text;
        if (!IsKeyword(prev) && !IsAnnotationMacro(prev)) {
          if (TryParseFunction(boundary, pos_ - 1)) return;
          // Not a function: skip the matched parens and keep scanning.
          pos_ = SkipBalanced(pos_);
          continue;
        }
        pos_ = SkipBalanced(pos_);
        continue;
      }
      if (t == "(" || t == "[") {
        pos_ = SkipBalanced(pos_);
        continue;
      }
      ++pos_;
    }
  }

  /// Member/namespace-scope variable: last two top-level identifiers of
  /// the pre-`=`/`;` span are (type, name). Needed so lock expressions
  /// like `mu_` and `s.mu` canonicalize to `Class::member`.
  void RecordMemberDecl(size_t begin, size_t end) {
    std::vector<size_t> idents;
    std::vector<std::string> targs;  // template args written after each ident
    for (size_t i = begin; i < end; ++i) {
      const std::string& t = toks_[i].text;
      if (t == "=") break;
      if (t == "<") {
        size_t j = SkipBalanced(i);
        if (j > i + 1) {
          // Template args directly after the previous ident belong to it
          // (std::atomic<Node*> / Atomic<T, AtomicIntent::kSeqlock>).
          if (!idents.empty() && idents.back() == i - 1) {
            targs.back() = JoinTokens(i + 1, j - 1);
          }
          i = j - 1;
          continue;
        }
      }
      if (t == "(" || t == "{" || t == "[") {
        i = SkipBalanced(i) - 1;
        continue;
      }
      if (toks_[i].kind == Token::Kind::kIdent && !IsKeyword(t) &&
          !IsAnnotationMacro(t)) {
        idents.push_back(i);
        targs.emplace_back();
      }
    }
    if (idents.size() < 2) return;
    MemberDecl m;
    m.class_name = InnermostClass();
    m.name = toks_[idents.back()].text;
    m.type = toks_[idents[idents.size() - 2]].text;
    m.type_args = targs[idents.size() - 2];
    // Smart-pointer members descend into the pointee, same as ParseParams
    // — `std::shared_ptr<Future::State> state_` types receiver chains
    // like `state_->cv` as State, not shared_ptr.
    if ((m.type == "shared_ptr" || m.type == "unique_ptr" ||
         m.type == "weak_ptr") &&
        !m.type_args.empty()) {
      std::string tail;
      std::string run;
      for (const char c : m.type_args + '\0') {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
          run += c;
          continue;
        }
        if (!run.empty() && !IsKeyword(run) &&
            !std::isdigit(static_cast<unsigned char>(run[0]))) {
          tail = run;
        }
        run.clear();
      }
      if (!tail.empty()) m.type = tail;
    }
    m.file = path_;
    m.line = toks_[idents.back()].line;
    out_->members.push_back(std::move(m));
  }

  /// Joined text of [begin, end), token-concatenated (no spaces; intent
  /// tags like AtomicIntent::kSeqlock stay substring-searchable).
  std::string JoinTokens(size_t begin, size_t end) const {
    std::string out;
    for (size_t i = begin; i < end && i < toks_.size(); ++i) {
      out += toks_[i].text;
    }
    return out;
  }

  // --- function level -------------------------------------------------

  /// `name_pos` is the identifier just before `(` at `pos_`. Returns
  /// true when the construct was consumed as a function definition or
  /// declaration; false (with pos_ untouched) otherwise.
  bool TryParseFunction(size_t decl_begin, size_t name_pos) {
    const size_t saved = pos_;
    // Back-chain A::B::name.
    std::vector<std::string> quals;
    std::string name = toks_[name_pos].text;
    size_t q = name_pos;
    while (q >= 2 && Is(q - 1, "::") && IsIdentAt(q - 2)) {
      quals.insert(quals.begin(), toks_[q - 2].text);
      q -= 2;
    }
    if (name == "operator") return false;  // operator() — out of scope.

    const size_t lparen = pos_;
    const size_t after_params = SkipBalanced(lparen);
    size_t i = after_params;

    std::vector<std::string> requires_raw;
    bool body = false, decl = false;
    while (i < toks_.size()) {
      const std::string& t = toks_[i].text;
      if (t == ";") {
        decl = true;
        ++i;
        break;
      }
      if (t == "{") {
        body = true;
        break;
      }
      if (t == "const" || t == "volatile" || t == "override" ||
          t == "final" || t == "mutable" || t == "noexcept" || t == "throw" ||
          t == "&" || t == "try" || t == "requires") {
        ++i;
        if (i < toks_.size() && Is(i, "(")) i = SkipBalanced(i);
        continue;
      }
      if (t == "&" || t == "[") {
        i = t == "[" ? SkipBalanced(i) : i + 1;
        continue;
      }
      if (t == "GQR_REQUIRES" || t == "GQR_REQUIRES_SHARED") {
        size_t j = i + 1;
        if (j < toks_.size() && Is(j, "(")) {
          const size_t close = SkipBalanced(j);
          for (const auto& arg : SplitTopLevelArgs(j + 1, close - 1)) {
            requires_raw.push_back(arg);
          }
          i = close;
          continue;
        }
        ++i;
        continue;
      }
      if (IsAnnotationMacro(t) || t == "alignas") {
        ++i;
        if (i < toks_.size() && Is(i, "(")) i = SkipBalanced(i);
        continue;
      }
      if (t == "->") {  // trailing return type
        ++i;
        while (i < toks_.size() && !Is(i, "{") && !Is(i, ";")) {
          if (Is(i, "(") || Is(i, "<") || Is(i, "[")) {
            i = SkipBalanced(i);
            continue;
          }
          ++i;
        }
        continue;
      }
      if (t == ":") {  // constructor mem-init list
        ++i;
        bool ok = true;
        while (i < toks_.size()) {
          while (i < toks_.size() &&
                 (IsIdentAt(i) || Is(i, "::") || Is(i, "<"))) {
            i = Is(i, "<") ? SkipBalanced(i) : i + 1;
          }
          if (i < toks_.size() && (Is(i, "(") || Is(i, "{"))) {
            // `{` here is ambiguous: brace-init vs function body. A
            // body never directly follows `:` or `,`, so a `{` right
            // after an initializer name is an initializer.
            i = SkipBalanced(i);
          } else {
            ok = false;
            break;
          }
          if (i < toks_.size() && Is(i, ",")) {
            ++i;
            continue;
          }
          break;
        }
        if (!ok || i >= toks_.size() || !Is(i, "{")) return RestoreAt(saved);
        body = true;
        break;
      }
      if (t == "=") {
        ++i;
        if (i < toks_.size() &&
            (Is(i, "default") || Is(i, "delete") || Is(i, "0"))) {
          while (i < toks_.size() && !Is(i, ";")) ++i;
          if (i < toks_.size()) ++i;
          decl = true;
          break;
        }
        return RestoreAt(saved);
      }
      return RestoreAt(saved);
    }
    if (!body && !decl) return RestoreAt(saved);

    FunctionInfo fn;
    fn.name = name;
    fn.class_name = quals.empty() ? InnermostClass() : quals.back();
    std::string written_qual;
    for (const auto& s : quals) {
      if (!written_qual.empty()) written_qual += "::";
      written_qual += s;
    }
    fn.qname = QualifiedName(written_qual, name);
    fn.file = path_;
    fn.line = toks_[name_pos].line;
    fn.defined = body;
    for (size_t k = decl_begin; k < name_pos; ++k) {
      if (Text(k) == "GQR_HOT") fn.hot = true;
    }
    ParseParams(lparen + 1, after_params - 1, &fn);
    for (const auto& raw : requires_raw) {
      fn.requires_locks.push_back(CanonicalizeLockText(raw, fn));
    }
    if (body) {
      pos_ = i;  // at `{`
      ParseBody(&fn);
    } else {
      pos_ = i;
    }
    out_->functions.push_back(std::move(fn));
    return true;
  }

  bool RestoreAt(size_t saved) {
    pos_ = saved;
    return false;
  }

  /// Splits [begin,end) on top-level commas, returning joined texts.
  std::vector<std::string> SplitTopLevelArgs(size_t begin, size_t end) const {
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (size_t i = begin; i < end && i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (t == "(" || t == "{" || t == "[" || t == "<") ++depth;
      if (t == ")" || t == "}" || t == "]" || t == ">") --depth;
      if (t == "," && depth == 0) {
        if (!cur.empty()) out.push_back(cur);
        cur.clear();
        continue;
      }
      if (!cur.empty() && (IsIdentAt(i) || toks_[i].kind ==
                                               Token::Kind::kNumber) &&
          (toks_[i - 1].kind == Token::Kind::kIdent)) {
        cur += ' ';
      }
      cur += t;
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
  }

  /// Parameter list -> local_types: for each top-level param, name is
  /// the last depth-0 identifier (before any default `=`), type the one
  /// before it (keywords excluded). `const Shard& s` -> s:Shard;
  /// `std::shared_ptr<Future::State> st` -> st:State (template arg tail
  /// is the most specific class-ish name).
  void ParseParams(size_t begin, size_t end, FunctionInfo* fn) {
    size_t i = begin;
    size_t param_start = begin;
    int depth = 0;
    auto flush = [&](size_t from, size_t to) {
      std::vector<std::string> idents;
      for (size_t k = from; k < to && k < toks_.size(); ++k) {
        const std::string& t = toks_[k].text;
        if (t == "=") break;
        if (t == "(" || t == "[") {
          k = SkipBalanced(k) - 1;
          continue;
        }
        if (toks_[k].kind == Token::Kind::kIdent && !IsKeyword(t) &&
            !IsAnnotationMacro(t)) {
          idents.push_back(t);
        }
      }
      if (idents.size() >= 2) {
        fn->local_types[idents.back()] = idents[idents.size() - 2];
      }
    };
    while (i < end && i < toks_.size()) {
      const std::string& t = toks_[i].text;
      if (t == "(" || t == "{" || t == "[" || t == "<") ++depth;
      if (t == ")" || t == "}" || t == "]" || t == ">") --depth;
      if (t == "," && depth == 0) {
        flush(param_start, i);
        param_start = i + 1;
      }
      ++i;
    }
    if (param_start < end) flush(param_start, end);
  }

  // --- body level -----------------------------------------------------

  struct HeldLock {
    std::string canon;
    int line;
    int depth;     // brace depth at acquisition (scoped release point)
    bool scoped;   // RAII lock: released when its scope closes
  };

  void ParseBody(FunctionInfo* fn) {
    // pos_ at `{`.
    int depth = 0;
    int paren = 0;
    bool stmt_start = true;
    bool once_active = false;
    int once_depth = 0;
    std::vector<HeldLock> held;

    auto held_snapshot = [&](AcquireSite* site) {
      for (const HeldLock& h : held) {
        site->held_exprs.push_back(h.canon);
        site->held_lines.push_back(h.line);
      }
    };

    while (!AtEnd()) {
      const Token& tok = Cur();
      const std::string& t = tok.text;

      if (t == "{") {
        ++depth;
        ++pos_;
        stmt_start = true;
        continue;
      }
      if (t == "}") {
        --depth;
        ++pos_;
        while (!held.empty() && held.back().scoped &&
               held.back().depth > depth) {
          held.pop_back();
        }
        if (once_active && depth <= once_depth) once_active = false;
        stmt_start = true;
        if (depth == 0) return;  // body closed
        continue;
      }
      if (t == "(") {
        ++paren;
        ++pos_;
        stmt_start = false;
        continue;
      }
      if (t == ")") {
        --paren;
        ++pos_;
        continue;
      }
      if (t == ";") {
        ++pos_;
        if (paren == 0) {
          stmt_start = true;
          if (once_active && depth == once_depth) once_active = false;
        }
        continue;
      }

      if (tok.kind == Token::Kind::kIdent) {
        if (stmt_start && (t == "static" || t == "thread_local")) {
          once_active = true;
          once_depth = depth;
          ++pos_;
          continue;
        }
        // cv/storage qualifiers are transparent at statement start, so
        // `const BudgetPlanner* p = ...` still captures p's type.
        if (stmt_start && (t == "const" || t == "constexpr")) {
          ++pos_;
          continue;
        }
        if (t == "new") {
          AddEffect(fn, EffectSite::Type::kNew, "operator new", tok,
                    once_active);
          ++pos_;
          stmt_start = false;
          continue;
        }
        if (t == "throw") {
          AddEffect(fn, EffectSite::Type::kThrow, "throw", tok, once_active);
          ++pos_;
          stmt_start = false;
          continue;
        }

        // Scoped-lock construction: Type [<...>] var (args) / {args}.
        if (IsScopedLockTypeName(t) && !Is(pos_ + 1, "::")) {
          size_t j = pos_ + 1;
          if (Is(j, "<")) j = SkipBalanced(j);
          if (IsIdentAt(j) && (Is(j + 1, "(") || Is(j + 1, "{"))) {
            const size_t open = j + 1;
            const size_t close = SkipBalanced(open);
            for (const auto& arg : SplitTopLevelArgs(open + 1, close - 1)) {
              AcquireSite site;
              site.lock_expr = CanonicalizeLockText(arg, *fn);
              site.line = tok.line;
              site.validate_only = tok.validate_only;
              site.blocking = true;
              held_snapshot(&site);
              fn->acquires.push_back(site);
              held.push_back({site.lock_expr, tok.line, depth, true});
              AddEffect(fn, EffectSite::Type::kBlocking, t + "(" + arg + ")",
                        tok, once_active);
            }
            pos_ = close;
            stmt_start = false;
            continue;
          }
        }

        // Call-ish: ident followed by `(`.
        if (Is(pos_ + 1, "(")) {
          HandleCall(fn, &held, depth, once_active, held_snapshot);
          stmt_start = false;
          continue;
        }

        // Owning local container declaration: std::vector<...> name ...
        if (t == "std" && Is(pos_ + 1, "::") && IsIdentAt(pos_ + 2) &&
            IsOwningContainerName(Text(pos_ + 2))) {
          size_t j = pos_ + 3;
          if (Is(j, "<")) j = SkipBalanced(j);
          while (Is(j, "&") || Is(j, "*")) ++j;
          if (IsIdentAt(j) && !IsKeyword(Text(j))) {
            AddEffect(fn, EffectSite::Type::kOwningLocal,
                      "std::" + Text(pos_ + 2) + " local '" + Text(j) + "'",
                      tok, once_active);
            fn->local_types[Text(j)] = Text(pos_ + 2);
            pos_ = j + 1;
            stmt_start = false;
            continue;
          }
          pos_ += 2;
          stmt_start = false;
          continue;
        }

        // Local declaration type capture: Type[<...>] [&*] name [=;({].
        if (stmt_start && !IsKeyword(t) && !IsAnnotationMacro(t)) {
          TryCaptureLocalDecl(fn);
        }
        ++pos_;
        stmt_start = false;
        continue;
      }

      ++pos_;
      if (t != "::" && t != "->" && t != ".") stmt_start = false;
    }
  }

  /// Best-effort `Type name` local capture for receiver resolution;
  /// pure lookahead, consumes nothing.
  void TryCaptureLocalDecl(FunctionInfo* fn) {
    size_t j = pos_;
    std::string last_type;
    // Type: ident (:: ident)* [<...>]
    if (!IsIdentAt(j)) return;
    last_type = Text(j);
    ++j;
    while (Is(j, "::") && IsIdentAt(j + 1)) {
      last_type = Text(j + 1);
      j += 2;
    }
    if (Is(j, "<")) {
      size_t k = SkipBalanced(j);
      if (k <= j + 1) return;
      // Template tail: most specific class-ish name inside.
      for (size_t m = j + 1; m + 1 < k; ++m) {
        if (IsIdentAt(m) && !IsKeyword(Text(m))) last_type = Text(m);
      }
      j = k;
    }
    while (Is(j, "&") || Is(j, "*") || Is(j, "const")) ++j;
    if (!IsIdentAt(j) || IsKeyword(Text(j))) return;
    const std::string& var = Text(j);
    const std::string& after = Text(j + 1);
    if (after == "=" || after == ";" || after == "{" || after == "(" ||
        after == "[") {
      if (!IsKeyword(last_type)) fn->local_types[var] = last_type;
    }
  }

  using SnapshotFn = std::function<void(AcquireSite*)>;

  void HandleCall(FunctionInfo* fn, std::vector<HeldLock>* held, int depth,
                  bool once_active, const SnapshotFn& held_snapshot) {
    const Token& tok = Cur();
    const std::string& name = tok.text;

    // Receiver / qualifier to the left.
    std::string qualifier;
    std::string receiver_tokens;
    bool has_receiver = false;
    if (pos_ >= 1 && (Is(pos_ - 1, ".") || Is(pos_ - 1, "->"))) {
      has_receiver = true;
      receiver_tokens = ReceiverExprBefore(pos_ - 1);
      qualifier = ResolveExprType(receiver_tokens, *fn);
    } else if (pos_ >= 2 && Is(pos_ - 1, "::") && IsIdentAt(pos_ - 2)) {
      size_t q = pos_;
      std::vector<std::string> parts;
      while (q >= 2 && Is(q - 1, "::") && IsIdentAt(q - 2)) {
        parts.insert(parts.begin(), Text(q - 2));
        q -= 2;
      }
      for (const auto& p : parts) {
        if (!qualifier.empty()) qualifier += "::";
        qualifier += p;
      }
    }

    auto advance_past_name = [&] { ++pos_; };  // leave `(` to main loop

    if (IsKeyword(name) || IsAnnotationMacro(name)) {
      advance_past_name();
      return;
    }

    if (has_receiver && !receiver_tokens.empty()) {
      const std::string canon =
          CanonicalizeLockText(receiver_tokens, *fn);
      if (name == "Lock" || name == "LockShared" || name == "lock" ||
          name == "lock_shared") {
        AcquireSite site;
        site.lock_expr = canon;
        site.line = tok.line;
        site.validate_only = tok.validate_only;
        site.blocking = true;
        held_snapshot(&site);
        fn->acquires.push_back(site);
        held->push_back({canon, tok.line, depth, false});
        AddEffect(fn, EffectSite::Type::kBlocking, name + "() on " + canon,
                  tok, once_active);
        advance_past_name();
        return;
      }
      if (name == "TryLock" || name == "TryLockShared" ||
          name == "try_lock") {
        AcquireSite site;
        site.lock_expr = canon;
        site.line = tok.line;
        site.validate_only = tok.validate_only;
        site.blocking = false;
        held_snapshot(&site);
        fn->acquires.push_back(site);
        held->push_back({canon, tok.line, depth, false});
        advance_past_name();
        return;
      }
      if (name == "Unlock" || name == "UnlockShared" || name == "unlock" ||
          name == "unlock_shared") {
        for (size_t k = held->size(); k-- > 0;) {
          if ((*held)[k].canon == canon) {
            held->erase(held->begin() + static_cast<long>(k));
            break;
          }
        }
        advance_past_name();
        return;
      }
      if (name == "reserve" || name == "shrink_to_fit") {
        AddEffect(fn, EffectSite::Type::kCapacity,
                  name + "() on " + receiver_tokens, tok, once_active);
        advance_past_name();
        return;
      }
      // Condition-variable operations, recorded by canonical identity.
      // The frontend cannot always see the receiver's declaration (inline
      // methods parse before trailing members), so every Wait/Notify
      // member call is recorded and the atomics analysis filters to
      // receivers whose merged member type is CondVar.
      if (name == "Wait" || name == "WaitUntil" || name == "NotifyOne" ||
          name == "NotifyAll") {
        CvOpSite site;
        site.cv_expr = canon;
        site.line = tok.line;
        site.is_wait = name == "Wait" || name == "WaitUntil";
        if (site.is_wait && Is(pos_ + 1, "(")) {
          const size_t open = pos_ + 1;
          const size_t close = SkipBalanced(open);
          const auto args = SplitTopLevelArgs(open + 1, close - 1);
          if (!args.empty()) {
            site.mutex_expr = CanonicalizeLockText(args[0], *fn);
          }
        }
        fn->cv_ops.push_back(std::move(site));
        // Fall through: Wait keeps its blocking effect and call record.
      }
    }

    if (IsBlockingCallName(name)) {
      AddEffect(fn, EffectSite::Type::kBlocking, name + "()", tok,
                once_active);
      // Still record the call: Wait-style methods defined in this repo
      // (TaskGroup::Wait) have bodies worth traversing.
    }
    if (IsMallocName(name)) {
      AddEffect(fn, EffectSite::Type::kMalloc, name + "()", tok, once_active);
      advance_past_name();
      return;
    }
    if (IsMakeAllocName(name)) {
      AddEffect(fn, EffectSite::Type::kNew, "std::" + name, tok, once_active);
      advance_past_name();
      return;
    }

    // Declaration, not a call: `Foo bar(args);` — previous token is a
    // non-keyword identifier or a template/type tail.
    if (!has_receiver && qualifier.empty() && pos_ >= 1) {
      const Token& prev = toks_[pos_ - 1];
      if ((prev.kind == Token::Kind::kIdent && !IsKeyword(prev.text)) ||
          prev.text == ">" || prev.text == "*" || prev.text == "&") {
        advance_past_name();
        return;
      }
    }

    CallSite call;
    call.name = name;
    call.qualifier = qualifier;
    call.line = tok.line;
    call.validate_only = tok.validate_only;
    call.once_only = once_active;
    call.member_call = has_receiver;
    fn->calls.push_back(std::move(call));
    advance_past_name();
  }

  /// Textual receiver expression ending at the `.`/`->` at `dot`.
  std::string ReceiverExprBefore(size_t dot) const {
    // Walk back over ident / ] (balanced) / :: / linking . -> chains.
    size_t i = dot;
    std::vector<std::string> parts;  // reversed
    while (i > 0) {
      const Token& p = toks_[i - 1];
      if (p.kind == Token::Kind::kIdent || p.text == "this") {
        parts.push_back(p.text);
        i -= 1;
        if (i > 0 && (Is(i - 1, ".") || Is(i - 1, "->") || Is(i - 1, "::"))) {
          parts.push_back(Text(i - 1));
          i -= 1;
          continue;
        }
        break;
      }
      if (p.text == "]") {
        // shards_[idx].  — skip the subscript, keep the array name.
        size_t open = i - 1;
        int d = 0;
        while (open > 0) {
          if (toks_[open].text == "]") ++d;
          if (toks_[open].text == "[" && --d == 0) break;
          --open;
        }
        i = open;
        continue;  // next loop picks up the ident before `[`
      }
      if (p.text == ")") return "";  // call-chained receiver: give up
      break;
    }
    std::string out;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) out += *it;
    return out;
  }

  /// Resolves the *type* (last class-ish component) of a receiver
  /// expression via parameter/local types, then enclosing-class members.
  std::string ResolveExprType(const std::string& expr,
                              const FunctionInfo& fn) const {
    if (expr.empty()) return "";
    if (expr == "this") return fn.class_name;
    // Single identifier?
    if (expr.find('.') == std::string::npos &&
        expr.find("->") == std::string::npos &&
        expr.find("::") == std::string::npos) {
      auto it = fn.local_types.find(expr);
      if (it != fn.local_types.end()) return it->second;
      // Member of the enclosing class?
      for (const MemberDecl& m : out_->members) {
        if (m.name == expr && m.class_name == fn.class_name) return m.type;
      }
      return "";
    }
    return "";
  }

  /// Canonical lock identity for an expression:
  ///   member `mu_` of class C            -> "C::mu_"
  ///   `s.mu` / `s->mu` with s : Shard    -> "Shard::mu"
  ///   object `s` of type Shard that owns
  ///     exactly one mutex member `mu`    -> "Shard::mu"
  ///   `this->mu_`                        -> "C::mu_"
  ///   anything else                      -> the expression text
  std::string CanonicalizeLockText(const std::string& raw,
                                   const FunctionInfo& fn) const {
    std::string e = raw;
    // Strip leading &, *, this->/this.
    while (!e.empty() && (e[0] == '&' || e[0] == '*' || e[0] == ' ')) {
      e.erase(e.begin());
    }
    if (e.rfind("this->", 0) == 0) e = e.substr(6);
    else if (e.rfind("this.", 0) == 0) e = e.substr(5);

    // Split a.b / a->b (first separator only).
    size_t sep = e.find("->");
    size_t sep_len = 2;
    if (sep == std::string::npos) {
      sep = e.find('.');
      sep_len = 1;
    }
    if (sep != std::string::npos) {
      const std::string base = e.substr(0, sep);
      const std::string member = e.substr(sep + sep_len);
      if (member.find('.') == std::string::npos &&
          member.find("->") == std::string::npos) {
        const std::string t = ResolveExprType(base, fn);
        if (!t.empty()) return t + "::" + member;
      }
      return e;
    }

    // Bare identifier. Locals/params first (a mutex passed by reference
    // keeps its written name; a lock-owning object gets type identity).
    if (fn.local_types.count(e) != 0) {
      const std::string t = fn.local_types.at(e);
      if (IsMutexTypeName(t)) return e;
      // Object of a class with exactly one mutex member -> that member;
      // otherwise the type itself is the lock identity (one lock class
      // per object, e.g. ShardReadLock(shard) -> "Shard").
      std::string found;
      int count = 0;
      for (const MemberDecl& m : out_->members) {
        if (m.class_name == t && IsMutexTypeName(m.type)) {
          found = m.name;
          ++count;
        }
      }
      if (count == 1) return t + "::" + found;
      return t;
    }
    for (const MemberDecl& m : out_->members) {
      if (m.name == e && m.class_name == fn.class_name &&
          !m.class_name.empty()) {
        return fn.class_name + "::" + e;
      }
    }
    for (const MemberDecl& m : out_->members) {
      if (m.name == e && m.class_name.empty()) return e;  // file-scope var
    }
    // Unqualified non-local name inside a method is almost always a
    // member (possibly declared in a header we are not parsing right
    // now) — qualify it so same-named members of different classes do
    // not collapse into one lock node.
    if (!fn.class_name.empty()) return fn.class_name + "::" + e;
    return e;
  }

  void AddEffect(FunctionInfo* fn, EffectSite::Type type, std::string detail,
                 const Token& tok, bool once_active) {
    EffectSite e;
    e.type = type;
    e.detail = std::move(detail);
    e.line = tok.line;
    e.validate_only = tok.validate_only;
    e.once_only = once_active;
    fn->effects.push_back(std::move(e));
  }

  std::string path_;
  std::vector<Token> toks_;
  FileModel* out_;
  size_t pos_ = 0;
  std::vector<Scope> scopes_;
};

}  // namespace

FileModel ParseFile(const std::string& path, const std::string& text) {
  FileModel model;
  model.path = path;
  Parser parser(path, Lex(text), &model);
  parser.Run();
  return model;
}

}  // namespace gqr::analyze
