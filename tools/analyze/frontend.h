// Token-level extraction frontend for gqr-analyze.
//
// Parses one C++ source file (header or TU) into the FileModel the
// analyses consume: function definitions with their qualified names,
// GQR_HOT / GQR_REQUIRES markers, call sites, hot-path-relevant effects
// (allocation, throw, blocking acquisition) and lock acquisitions with
// the held-lock context at each site.
//
// Precision contract (also in README.md): the frontend recognizes the
// repo's house style — scope-qualified out-of-line definitions, scoped
// locks from util/sync.h (and any GQR_SCOPED_CAPABILITY type whose name
// ends in "Lock"), GQR_* annotation macros, `#if GQR_VALIDATE` blocks.
// It is deliberately conservative where token-level parsing is
// ambiguous: unresolvable calls are kept by name and matched against
// every same-named function in the analysis universe; unknown external
// calls are assumed pure. It does not expand macros or follow includes.
#ifndef GQR_TOOLS_ANALYZE_FRONTEND_H_
#define GQR_TOOLS_ANALYZE_FRONTEND_H_

#include <string>

#include "model.h"

namespace gqr::analyze {

/// Parses `text` (the contents of `path`) into a FileModel. Never fails:
/// constructs the frontend can't classify contribute nothing.
FileModel ParseFile(const std::string& path, const std::string& text);

}  // namespace gqr::analyze

#endif  // GQR_TOOLS_ANALYZE_FRONTEND_H_
