#include "analysis.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <iostream>
#include <set>
#include <sstream>

namespace gqr::analyze {

namespace {

std::string MergeKey(const FunctionInfo& f) {
  return f.class_name + "::" + f.name;
}

const char* EffectVerb(EffectSite::Type t) {
  switch (t) {
    case EffectSite::Type::kNew:
      return "may allocate";
    case EffectSite::Type::kMalloc:
      return "may allocate";
    case EffectSite::Type::kOwningLocal:
      return "constructs an owning container";
    case EffectSite::Type::kCapacity:
      return "may reallocate";
    case EffectSite::Type::kThrow:
      return "may throw";
    case EffectSite::Type::kBlocking:
      return "may block";
  }
  return "has an impure effect";
}

}  // namespace

bool ParseWaivers(const std::string& text, std::vector<Waiver>* out,
                  std::string* error) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim.
    size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    if (line[b] == '#') continue;
    std::istringstream ls(line.substr(b));
    Waiver w;
    w.line = lineno;
    if (!(ls >> w.check >> w.pattern)) {
      if (error) {
        *error = "waivers line " + std::to_string(lineno) +
                 ": expected '<check> <pattern> <reason...>'";
      }
      return false;
    }
    std::getline(ls, w.reason);
    const size_t rb = w.reason.find_first_not_of(" \t");
    w.reason = rb == std::string::npos ? "" : w.reason.substr(rb);
    if (w.check != "hot-path" && w.check != "lock-order" &&
        w.check != "atomics") {
      if (error) {
        *error = "waivers line " + std::to_string(lineno) +
                 ": unknown check '" + w.check + "'";
      }
      return false;
    }
    if (w.reason.empty()) {
      if (error) {
        *error = "waivers line " + std::to_string(lineno) +
                 ": waiver for '" + w.pattern +
                 "' has no reason (reasons are mandatory)";
      }
      return false;
    }
    out->push_back(std::move(w));
  }
  return true;
}

void Analyzer::AddFile(FileModel model, bool in_lock_universe,
                       bool in_atomics_universe) {
  for (FunctionInfo& f : model.functions) {
    Fn fn;
    fn.info = std::move(f);
    fn.in_lock_universe = in_lock_universe;
    fn.in_atomics_universe = in_atomics_universe;
    fns_.push_back(std::move(fn));
  }
  for (MemberDecl& m : model.members) {
    MemberRec rec;
    rec.decl = std::move(m);
    rec.in_atomics_universe = in_atomics_universe;
    members_.push_back(std::move(rec));
  }
  index_built_ = false;
}

void Analyzer::BuildIndex() const {
  if (index_built_) return;
  name_index_.clear();
  hot_by_key_.clear();
  requires_by_key_.clear();
  for (size_t i = 0; i < fns_.size(); ++i) {
    const FunctionInfo& f = fns_[i].info;
    name_index_[f.name].push_back(static_cast<int>(i));
    const std::string key = MergeKey(f);
    if (f.hot) hot_by_key_[key] = true;
    for (const std::string& r : f.requires_locks) {
      auto& v = requires_by_key_[key];
      if (std::find(v.begin(), v.end(), r) == v.end()) v.push_back(r);
    }
  }
  index_built_ = true;
}

const std::vector<int>& Analyzer::Lookup(const std::string& name) const {
  static const std::vector<int> empty;
  auto it = name_index_.find(name);
  return it == name_index_.end() ? empty : it->second;
}

bool Analyzer::MergedHot(const Fn& fn) const {
  auto it = hot_by_key_.find(MergeKey(fn.info));
  return it != hot_by_key_.end() && it->second;
}

std::vector<std::string> Analyzer::MergedRequires(const Fn& fn) const {
  auto it = requires_by_key_.find(MergeKey(fn.info));
  return it == requires_by_key_.end() ? std::vector<std::string>{}
                                      : it->second;
}

std::vector<int> Analyzer::Resolve(const Fn& caller,
                                   const CallSite& call) const {
  // std:: (and other external namespaces we know are external) never
  // resolve into the universe; unknown names fall out naturally below.
  if (call.qualifier == "std" || call.qualifier.rfind("std::", 0) == 0) {
    return {};
  }
  const std::vector<int>& cands = Lookup(call.name);
  if (cands.empty()) return {};

  if (!call.qualifier.empty()) {
    // Last qualifier component is a class or namespace name.
    std::string last = call.qualifier;
    const size_t p = last.rfind("::");
    if (p != std::string::npos) last = last.substr(p + 2);
    std::vector<int> filtered;
    for (int i : cands) {
      const FunctionInfo& f = fns_[i].info;
      if (f.class_name == last ||
          f.qname.find(call.qualifier + "::" + call.name) !=
              std::string::npos) {
        filtered.push_back(i);
      }
    }
    // A receiver typed to a base class (virtual dispatch) matches no
    // candidate class directly — fall back to every implementation.
    return filtered.empty() ? cands : filtered;
  }

  if (call.member_call) return cands;  // Unresolved receiver type.

  // Unqualified call: same-class methods and free functions.
  std::vector<int> filtered;
  for (int i : cands) {
    const FunctionInfo& f = fns_[i].info;
    if (f.class_name.empty() || f.class_name == caller.info.class_name) {
      filtered.push_back(i);
    }
  }
  return filtered.empty() ? cands : filtered;
}

std::vector<Finding> Analyzer::RunHotPath(
    std::vector<Waiver>* waivers) const {
  BuildIndex();
  std::vector<Finding> findings;
  std::set<std::string> reported;  // file:line:detail dedupe across entries

  for (size_t e = 0; e < fns_.size(); ++e) {
    const Fn& entry = fns_[e];
    if (!entry.info.defined || !MergedHot(entry)) continue;

    // BFS with parent links for chain reconstruction.
    std::map<int, std::pair<int, int>> parent;  // idx -> (parent idx, line)
    std::set<int> visited;
    std::deque<int> queue;
    queue.push_back(static_cast<int>(e));
    visited.insert(static_cast<int>(e));

    while (!queue.empty()) {
      const int fi = queue.front();
      queue.pop_front();
      const Fn& fn = fns_[fi];

      for (const EffectSite& eff : fn.info.effects) {
        if (eff.validate_only || eff.once_only) continue;
        const std::string key = fn.info.file + ":" +
                                std::to_string(eff.line) + ":" + eff.detail;
        if (!reported.insert(key).second) continue;

        // Chain entry -> ... -> fn.
        std::vector<std::string> chain;
        int cur = fi;
        chain.push_back(fns_[cur].info.qname);
        while (cur != static_cast<int>(e)) {
          auto it = parent.find(cur);
          if (it == parent.end()) break;
          cur = it->second.first;
          chain.push_back(fns_[cur].info.qname);
        }
        std::reverse(chain.begin(), chain.end());

        Finding f;
        f.check = "hot-path";
        f.file = fn.info.file;
        f.line = eff.line;
        f.waiver_key = fn.info.qname;
        std::ostringstream msg;
        msg << fn.info.file << ":" << eff.line << ": '" << fn.info.qname
            << "' " << EffectVerb(eff.type) << " (" << eff.detail
            << ") and is reachable from GQR_HOT '" << entry.info.qname
            << "'\n    call chain: ";
        for (size_t c = 0; c < chain.size(); ++c) {
          if (c) msg << " -> ";
          msg << chain[c];
        }
        f.message = msg.str();
        findings.push_back(std::move(f));
      }

      for (const CallSite& call : fn.info.calls) {
        if (call.validate_only || call.once_only) continue;
        for (int callee : Resolve(fn, call)) {
          if (!fns_[callee].info.defined) continue;
          if (visited.insert(callee).second) {
            parent[callee] = {fi, call.line};
            queue.push_back(callee);
          }
        }
      }
    }
  }

  ApplyWaivers(&findings, waivers);
  return findings;
}

std::vector<Finding> Analyzer::RunLockOrder(
    std::vector<Waiver>* waivers) const {
  BuildIndex();

  struct EdgeInfo {
    std::string file;
    int line = 0;           // acquisition site of `to`
    int held_line = 0;      // where `from` was acquired (0: GQR_REQUIRES)
    std::string function;
  };
  // from -> to -> first site that established the edge.
  std::map<std::string, std::map<std::string, EdgeInfo>> graph;
  std::vector<Finding> findings;
  std::set<std::string> reported;

  auto add_edge = [&](const std::string& from, const std::string& to,
                      EdgeInfo info) {
    auto& row = graph[from];
    if (row.find(to) == row.end()) row.emplace(to, std::move(info));
  };

  for (const Fn& fn : fns_) {
    if (!fn.in_lock_universe || !fn.info.defined) continue;
    const std::vector<std::string> pre = MergedRequires(fn);
    for (const AcquireSite& acq : fn.info.acquires) {
      if (!acq.blocking) continue;  // try-lock: cannot close a cycle
      std::vector<std::pair<std::string, int>> held;
      for (const std::string& r : pre) held.emplace_back(r, 0);
      for (size_t h = 0; h < acq.held_exprs.size(); ++h) {
        held.emplace_back(acq.held_exprs[h],
                          h < acq.held_lines.size() ? acq.held_lines[h] : 0);
      }
      for (const auto& [from, held_line] : held) {
        if (from == acq.lock_expr) {
          // Self-edge: nested acquisition of the same lock identity.
          const std::string key = "self:" + from + ":" + fn.info.file + ":" +
                                  std::to_string(acq.line);
          if (!reported.insert(key).second) continue;
          Finding f;
          f.check = "lock-order";
          f.file = fn.info.file;
          f.line = acq.line;
          f.waiver_key = from + "->" + acq.lock_expr;
          f.message = fn.info.file + ":" + std::to_string(acq.line) +
                      ": nested acquisition of lock '" + from + "' in '" +
                      fn.info.qname +
                      "' (already held" +
                      (held_line ? " since line " + std::to_string(held_line)
                                 : " via GQR_REQUIRES") +
                      ") — same-identity nesting self-deadlocks or inverts "
                      "across threads";
          findings.push_back(std::move(f));
          continue;
        }
        EdgeInfo info;
        info.file = fn.info.file;
        info.line = acq.line;
        info.held_line = held_line;
        info.function = fn.info.qname;
        add_edge(from, acq.lock_expr, std::move(info));
      }
    }
  }

  // Cycle detection: DFS with colors; report each cycle once (rotated to
  // its lexicographically smallest node for deduplication).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    auto it = graph.find(node);
    if (it != graph.end()) {
      for (const auto& [next, info] : it->second) {
        if (color[next] == 1) {
          // Cycle: suffix of stack from `next`.
          auto from = std::find(stack.begin(), stack.end(), next);
          std::vector<std::string> cycle(from, stack.end());
          // Canonical rotation for dedupe.
          auto min_it = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), min_it, cycle.end());
          std::string key = "cycle:";
          for (const auto& n : cycle) key += n + ";";
          if (reported.insert(key).second) {
            Finding f;
            f.check = "lock-order";
            std::ostringstream msg;
            msg << "lock-order cycle: ";
            for (size_t c = 0; c < cycle.size(); ++c) {
              msg << cycle[c] << " -> ";
            }
            msg << cycle.front();
            std::string wkey;
            for (size_t c = 0; c < cycle.size(); ++c) {
              const std::string& a = cycle[c];
              const std::string& b = cycle[(c + 1) % cycle.size()];
              const EdgeInfo& ei = graph[a][b];
              msg << "\n    " << a << " -> " << b << " at " << ei.file << ":"
                  << ei.line << " in '" << ei.function << "'"
                  << (ei.held_line
                          ? " (" + a + " held since line " +
                                std::to_string(ei.held_line) + ")"
                          : " (" + a + " held via GQR_REQUIRES)");
              if (!wkey.empty()) wkey += " ";
              wkey += a + "->" + b;
              if (f.file.empty()) {
                f.file = ei.file;
                f.line = ei.line;
              }
            }
            f.waiver_key = wkey;
            f.message = msg.str();
            findings.push_back(std::move(f));
          }
          continue;
        }
        if (color[next] == 0) dfs(next);
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, edges] : graph) {
    (void)edges;
    if (color[node] == 0) dfs(node);
  }

  ApplyWaivers(&findings, waivers);
  return findings;
}

std::vector<Finding> Analyzer::RunAtomics(
    std::vector<Waiver>* waivers) const {
  BuildIndex();
  std::vector<Finding> findings;

  auto member_key = [](const MemberDecl& m) {
    return m.class_name.empty() ? m.name : m.class_name + "::" + m.name;
  };

  // (3a) Raw atomics: every atomic in the universe must be a
  // gqr::Atomic<> with a named intent. (3b) Publication intent: a
  // pointer payload under counter/seqlock intent is loaded relaxed (or
  // without a paired release store), so the dereference on the reader
  // side has no happens-before edge to the initialization it reads.
  for (const MemberRec& rec : members_) {
    if (!rec.in_atomics_universe) continue;
    const MemberDecl& m = rec.decl;
    if (m.type == "atomic" || m.type == "atomic_flag") {
      Finding f;
      f.check = "atomics";
      f.file = m.file;
      f.line = m.line;
      f.waiver_key = member_key(m);
      f.message = m.file + ":" + std::to_string(m.line) +
                  ": raw std::" + m.type + " declaration '" + member_key(m) +
                  "' — declare a gqr::Atomic<> (util/atomic.h) with a "
                  "named memory-order intent instead";
      findings.push_back(std::move(f));
    }
    if (m.type == "Atomic" &&
        m.type_args.find('*') != std::string::npos &&
        m.type_args.find("kPublicationPtr") == std::string::npos) {
      Finding f;
      f.check = "atomics";
      f.file = m.file;
      f.line = m.line;
      f.waiver_key = member_key(m);
      f.message = m.file + ":" + std::to_string(m.line) +
                  ": pointer-typed Atomic '" + member_key(m) +
                  "' without AtomicIntent::kPublicationPtr — a relaxed "
                  "load would feed a pointer dereference with no acquire "
                  "edge; use AtomicPublicationPtr<T>";
      findings.push_back(std::move(f));
    }
  }

  // (3c) Wait/notify mutex consistency. Member types from *all* files
  // (universe or not) identify the CondVars; only sites in universe
  // functions are judged.
  std::map<std::string, const MemberDecl*> member_types;
  for (const MemberRec& rec : members_) {
    member_types.emplace(member_key(rec.decl), &rec.decl);
  }
  auto is_condvar = [&](const std::string& canon) {
    auto it = member_types.find(canon);
    if (it == member_types.end()) return false;
    const std::string& t = it->second->type;
    return t == "CondVar" || t == "condition_variable" ||
           t == "condition_variable_any";
  };

  struct WaitSite {
    std::string mutex;
    std::string file;
    int line = 0;
  };
  struct NotifySite {
    const Fn* fn;
    int line = 0;
  };
  std::map<std::string, std::vector<WaitSite>> waits;
  std::map<std::string, std::vector<NotifySite>> notifies;
  for (const Fn& fn : fns_) {
    if (!fn.in_atomics_universe || !fn.info.defined) continue;
    for (const CvOpSite& op : fn.info.cv_ops) {
      if (!is_condvar(op.cv_expr)) continue;
      if (op.is_wait) {
        waits[op.cv_expr].push_back({op.mutex_expr, fn.info.file, op.line});
      } else {
        notifies[op.cv_expr].push_back({&fn, op.line});
      }
    }
  }

  for (const auto& [cv, sites] : waits) {
    // One consistent wait mutex per condvar.
    std::string mutex;
    for (const WaitSite& w : sites) {
      if (w.mutex.empty()) continue;
      if (mutex.empty()) {
        mutex = w.mutex;
        continue;
      }
      if (w.mutex != mutex) {
        Finding f;
        f.check = "atomics";
        f.file = w.file;
        f.line = w.line;
        f.waiver_key = cv;
        f.message = w.file + ":" + std::to_string(w.line) +
                    ": condvar '" + cv + "' waited with different mutexes "
                    "('" + mutex + "' elsewhere, '" + w.mutex +
                    "' here) — waiters under different locks miss each "
                    "other's predicate writes";
        findings.push_back(std::move(f));
        break;
      }
    }
    if (mutex.empty()) continue;

    // Every notify must come from a function that acquires (or declares
    // via GQR_REQUIRES) the wait mutex: the predicate write it orders
    // with the waiter's re-check must be under that lock.
    auto nit = notifies.find(cv);
    if (nit == notifies.end()) continue;
    for (const NotifySite& n : nit->second) {
      bool holds = false;
      for (const AcquireSite& a : n.fn->info.acquires) {
        if (a.lock_expr == mutex) {
          holds = true;
          break;
        }
      }
      if (!holds) {
        for (const std::string& r : MergedRequires(*n.fn)) {
          if (r == mutex) {
            holds = true;
            break;
          }
        }
      }
      if (!holds) {
        Finding f;
        f.check = "atomics";
        f.file = n.fn->info.file;
        f.line = n.line;
        f.waiver_key = cv;
        f.message = n.fn->info.file + ":" + std::to_string(n.line) + ": '" +
                    n.fn->info.qname + "' notifies '" + cv +
                    "' without acquiring its wait mutex '" + mutex +
                    "' — the predicate write is unordered with the "
                    "waiter's re-check (lost-wakeup risk)";
        findings.push_back(std::move(f));
      }
    }
  }

  ApplyWaivers(&findings, waivers);
  return findings;
}

void Analyzer::DumpFunctions(const std::string& pattern) const {
  BuildIndex();
  std::ostringstream out;
  for (const Fn& fn : fns_) {
    const FunctionInfo& f = fn.info;
    if (f.qname.find(pattern) == std::string::npos) continue;
    out << f.qname << " (" << f.file << ":" << f.line << ")"
        << (f.defined ? " defined" : " decl") << (MergedHot(fn) ? " HOT" : "")
        << "\n";
    for (const std::string& r : f.requires_locks) {
      out << "  requires " << r << "\n";
    }
    for (const CallSite& c : f.calls) {
      out << "  call " << (c.qualifier.empty() ? "" : c.qualifier + "::")
          << c.name << " @" << c.line << (c.member_call ? " member" : "")
          << (c.validate_only ? " validate-only" : "")
          << (c.once_only ? " once-only" : "") << "\n";
    }
    for (const EffectSite& e : f.effects) {
      out << "  effect " << e.detail << " @" << e.line
          << (e.validate_only ? " validate-only" : "")
          << (e.once_only ? " once-only" : "") << "\n";
    }
    for (const AcquireSite& a : f.acquires) {
      out << "  acquire " << a.lock_expr << " @" << a.line
          << (a.blocking ? "" : " try");
      for (const std::string& h : a.held_exprs) out << " [held " << h << "]";
      out << "\n";
    }
  }
  std::cout << out.str();
}

void Analyzer::ApplyWaivers(std::vector<Finding>* findings,
                            std::vector<Waiver>* waivers) {
  if (waivers == nullptr) return;
  for (Finding& f : *findings) {
    for (Waiver& w : *waivers) {
      if (w.check != f.check) continue;
      if (f.waiver_key.find(w.pattern) == std::string::npos) continue;
      f.waived = true;
      f.waiver_reason = w.reason;
      w.used = true;
      break;
    }
  }
}

}  // namespace gqr::analyze
