#include "lexer.h"

#include <cctype>

namespace gqr::analyze {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> Lex(const std::string& text) {
  std::vector<Token> out;
  const size_t n = text.size();
  size_t i = 0;
  int line = 1;
  // Conditional-compilation stack: one entry per open #if/#ifdef, true
  // when its condition mentions GQR_VALIDATE (so the current branch is
  // validation-build-only code).
  std::vector<bool> cond_stack;
  bool at_line_start = true;  // Only whitespace seen on this line so far.

  auto in_validate = [&] {
    for (bool v : cond_stack) {
      if (v) return true;
    }
    return false;
  };

  auto push = [&](Token::Kind kind, std::string tok_text, int tok_line) {
    out.push_back(Token{kind, std::move(tok_text), tok_line, in_validate()});
  };

  while (i < n) {
    const char c = text[i];
    const char nxt = i + 1 < n ? text[i + 1] : '\0';

    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor directive: consume the logical line (continuations
    // included), maintaining the conditional stack.
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      std::string directive_line;
      while (j < n) {
        if (text[j] == '\\' && j + 1 < n && text[j + 1] == '\n') {
          directive_line += ' ';
          j += 2;
          ++line;
          continue;
        }
        if (text[j] == '\n') break;
        directive_line += text[j];
        ++j;
      }
      // First word after optional space is the directive name.
      size_t d = 0;
      while (d < directive_line.size() &&
             std::isspace(static_cast<unsigned char>(directive_line[d]))) {
        ++d;
      }
      size_t e = d;
      while (e < directive_line.size() && IsIdentChar(directive_line[e])) ++e;
      const std::string name = directive_line.substr(d, e - d);
      const bool mentions_validate =
          directive_line.find("GQR_VALIDATE") != std::string::npos;
      if (name == "if" || name == "ifdef" || name == "ifndef") {
        cond_stack.push_back(mentions_validate);
      } else if (name == "elif") {
        if (!cond_stack.empty()) cond_stack.back() = mentions_validate;
      } else if (name == "else") {
        // The else-branch of a validate conditional is the non-validate
        // code (and vice versa is not knowable — stay conservative and
        // treat it as regular code).
        if (!cond_stack.empty()) cond_stack.back() = false;
      } else if (name == "endif") {
        if (!cond_stack.empty()) cond_stack.pop_back();
      }
      i = j;  // The '\n' (or EOF) is handled by the main loop.
      continue;
    }

    at_line_start = false;

    // Comments.
    if (c == '/' && nxt == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && nxt == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && nxt == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(' && text[j] != '\n') delim += text[j++];
      const std::string closer = ")" + delim + "\"";
      size_t end = text.find(closer, j);
      if (end == std::string::npos) end = n;
      for (size_t k = i; k < end && k < n; ++k) {
        if (text[k] == '\n') ++line;
      }
      push(Token::Kind::kString, "\"\"", line);
      i = end == n ? n : end + closer.size();
      continue;
    }

    // String / char literals (blanked; the frontend never needs their
    // contents, and lock names inside strings must not count).
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) {
          j += 2;
          continue;
        }
        if (text[j] == '\n') {  // Unterminated; bail at line end.
          break;
        }
        ++j;
      }
      push(Token::Kind::kString, quote == '"' ? "\"\"" : "''", line);
      i = j < n ? j + 1 : n;
      continue;
    }

    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      push(Token::Kind::kIdent, text.substr(i, j - i), line);
      i = j;
      continue;
    }

    // Number (pp-number: digits, idents, dots, exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(nxt)))) {
      size_t j = i;
      while (j < n) {
        const char d = text[j];
        if (IsIdentChar(d) || d == '.') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = text[j - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++j;
            continue;
          }
        }
        break;
      }
      push(Token::Kind::kNumber, text.substr(i, j - i), line);
      i = j;
      continue;
    }

    // Punctuation. The frontend needs "::" and "->" as single tokens;
    // everything else is one character.
    if (c == ':' && nxt == ':') {
      push(Token::Kind::kPunct, "::", line);
      i += 2;
      continue;
    }
    if (c == '-' && nxt == '>') {
      push(Token::Kind::kPunct, "->", line);
      i += 2;
      continue;
    }
    push(Token::Kind::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

}  // namespace gqr::analyze
