// Token-level C++ lexer for gqr-analyze.
//
// The analyzer's frontend works on a token stream, not an AST: the
// container ships no Clang development headers, so the tool must parse
// repo C++ itself (see README.md for the precision contract). The lexer
// handles everything that would otherwise corrupt a token-level scan:
// comments, string/char literals (including raw strings), preprocessor
// directives with continuations, and multi-character punctuators the
// frontend keys on (`::`, `->`).
//
// Preprocessor conditionals are tracked, not expanded: tokens inside any
// `#if`/`#ifdef` block whose condition mentions GQR_VALIDATE are marked
// `validate_only`, so the hot-path purity analysis can exclude
// validation-build code (validating builds deliberately trade speed for
// checking) while the lock-order analysis still sees it. All other
// conditional branches are analyzed unconditionally (union semantics —
// conservative for both analyses).
#ifndef GQR_TOOLS_ANALYZE_LEXER_H_
#define GQR_TOOLS_ANALYZE_LEXER_H_

#include <string>
#include <vector>

namespace gqr::analyze {

struct Token {
  enum class Kind {
    kIdent,   // identifiers and keywords
    kNumber,  // numeric literals (PP-number, loosely)
    kString,  // string literal (text is the blanked placeholder "\"\"")
    kPunct,   // punctuation; multi-char: "::" "->"
  };

  Kind kind;
  std::string text;
  int line = 0;
  // Inside a conditional block whose condition mentions GQR_VALIDATE.
  bool validate_only = false;
};

/// Lexes `text` (one source file). Never fails: unexpected bytes are
/// skipped, unterminated literals end at EOF. Line numbers are 1-based.
std::vector<Token> Lex(const std::string& text);

}  // namespace gqr::analyze

#endif  // GQR_TOOLS_ANALYZE_LEXER_H_
