#!/usr/bin/env python3
"""gqr_lint: repo-specific static checks for the GQR codebase.

Four rules, each encoding a contract the ordinary compiler cannot see:

  A  raw-sync-primitives (clang-query, rules/raw_sync_primitives.query):
     std::mutex & friends may only be declared inside util/sync.h (the
     annotated wrapper) and util/det_sched.cc (the schedule explorer's
     own coordination layer, which cannot use the primitives it
     virtualizes). Every other lock must be a util/sync.h type so
     Clang's -Wthread-safety analysis covers it.

  B  raw-assert (textual, implemented below):
     bare assert() is banned in repo code -- NDEBUG builds compile it
     away, silently dropping the check, and it never reaches the AST of
     release TUs (which is also why this rule is a comment-stripping
     textual scan rather than a matcher). Use GQR_CHECK / GQR_DCHECK.

  C  hot-path-alloc (clang-query, rules/hot_path_alloc.query):
     functions annotated GQR_HOT must contain no allocation *sources*
     (new, malloc family, local owning containers, reserve /
     shrink_to_fit). Amortized growth of warmed caller-owned buffers is
     allowed by design.

  D  raw-atomic (textual, implemented below):
     std::atomic / std::atomic_flag are banned in src/ outside
     util/atomic.h (and util/det_sched.*, see rule A). Product atomics
     must be gqr::Atomic<T> so (a) the declaration names its
     memory-order intent, (b) gqr-analyze check (3) can audit it, and
     (c) GQR_MODELCHECK builds can interpose a schedule point on every
     operation. Tests and benches drive *unmanaged* threads where the
     explorer never interposes, so their scaffolding atomics are out of
     scope by design.

Exit status: 0 clean, 1 findings, 2 infrastructure error.

Usage:
  gqr_lint.py --build-dir build            # lint the repo
  gqr_lint.py --self-test                  # prove the rules fire on
                                           # seeded-bad TUs (testdata/)

Rules A and C need clang-query (discovered on PATH, or via --clang-query /
$CLANG_QUERY). Without it they are skipped with a notice unless
--require-clang-query is given; rule B always runs.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

LINT_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_DIRS = ("src", "tests", "bench", "fuzz", "examples")
SOURCE_EXTS = (".cc", ".h", ".cpp", ".hpp")
# Matches the exclusions in rules/raw_sync_primitives.query.
SYNC_H = os.path.join("util", "sync.h")
DET_SCHED = os.path.join("util", "det_sched")
# Rule D scope: product code only (see module docstring), minus the
# sanctioned wrapper and the explorer internals.
ATOMIC_DIRS = ("src",)
ATOMIC_H = os.path.join("util", "atomic.h")

# clang-query match location, e.g. "/path/file.cc:12:3: note: ... binds here"
_MATCH_RE = re.compile(r"^(.*?):(\d+):(\d+): note: .* binds here")
_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
# std::atomic<...> and std::atomic_flag. The \b keeps free functions like
# std::atomic_thread_fence out of scope (they have no wrapper equivalent
# and do not appear in repo code).
_ATOMIC_RE = re.compile(r"(?<![A-Za-z0-9_])std\s*::\s*atomic(?:_flag)?\b")


def fail(msg):
    print(f"gqr_lint: error: {msg}", file=sys.stderr)
    sys.exit(2)


def find_clang_query(explicit):
    if explicit:
        return explicit
    env = os.environ.get("CLANG_QUERY")
    if env:
        return env
    candidates = ["clang-query"]
    candidates += [f"clang-query-{v}" for v in range(21, 13, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines so
    line numbers survive. Good enough for rule B: check.h documents GQR_CHECK
    in terms of assert(), and that prose must not count as a finding."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def scan_textual(root, subdirs, regex, exclude=None):
    """Comment/string-stripped regex scan. Returns [(path, line)]."""
    findings = []
    for sub in subdirs:
        top = os.path.join(root, sub)
        if not os.path.isdir(top):
            continue
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if not name.endswith(SOURCE_EXTS):
                    continue
                path = os.path.join(dirpath, name)
                if exclude is not None and exclude(path):
                    continue
                with open(path, encoding="utf-8", errors="replace") as f:
                    text = strip_comments_and_strings(f.read())
                for lineno, line in enumerate(text.splitlines(), start=1):
                    if regex.search(line):
                        findings.append((path, lineno))
    return findings


def scan_raw_asserts(root, subdirs):
    """Rule B. Returns [(path, line)] of bare assert( calls."""
    return scan_textual(root, subdirs, _ASSERT_RE)


def scan_raw_atomics(root):
    """Rule D. Returns [(path, line)] of raw std::atomic/atomic_flag uses
    in src/ outside the sanctioned wrapper and the explorer internals."""
    def excluded(path):
        return path.endswith(ATOMIC_H) or DET_SCHED in path

    return scan_textual(root, ATOMIC_DIRS, _ATOMIC_RE, exclude=excluded)


def load_compile_db_files(build_dir, source_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        fail(f"no compile_commands.json in {build_dir} "
             "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    with open(db_path, encoding="utf-8") as f:
        entries = json.load(f)
    source_dir = os.path.abspath(source_dir)
    wanted = tuple(os.path.join(source_dir, d) + os.sep for d in REPO_DIRS)
    files = []
    for entry in entries:
        path = os.path.abspath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        if path.startswith(wanted):
            files.append(path)
    return sorted(set(files))


def run_clang_query(clang_query, rule_file, build_dir, files):
    """Runs one rule file over `files`; returns deduped [(path, line)]."""
    findings = []
    chunk_size = 32
    for start in range(0, len(files), chunk_size):
        chunk = files[start:start + chunk_size]
        cmd = [clang_query, "-p", build_dir, "-f", rule_file] + chunk
        proc = subprocess.run(cmd, capture_output=True, text=True)
        hard_errors = [
            line for line in proc.stderr.splitlines()
            if " error: " in line or line.startswith("Error")
        ]
        if proc.returncode != 0 or hard_errors:
            detail = "\n".join(hard_errors or [proc.stderr.strip()])
            fail(f"clang-query failed on {os.path.basename(rule_file)}:\n"
                 f"{detail}")
        for line in proc.stdout.splitlines():
            m = _MATCH_RE.match(line)
            if m:
                findings.append((os.path.abspath(m.group(1)),
                                 int(m.group(2))))
    return sorted(set(findings))


def report(rule, findings, advice):
    if not findings:
        print(f"  [PASS] {rule}")
        return 0
    print(f"  [FAIL] {rule}: {len(findings)} finding(s)")
    for path, line in findings:
        print(f"    {path}:{line}: {advice}")
    return 1


def lint_tree(source_dir, build_dir, clang_query, require_cq, label):
    """Runs all rules over one tree. Returns the number of failed rules."""
    print(f"gqr_lint: checking {label}")
    failed = 0

    asserts = scan_raw_asserts(source_dir, REPO_DIRS)
    failed += report("raw-assert", asserts,
                     "bare assert(); use GQR_CHECK/GQR_DCHECK (util/check.h)")

    atomics = scan_raw_atomics(source_dir)
    failed += report("raw-atomic", atomics,
                     "raw std::atomic; use gqr::Atomic<> (util/atomic.h) "
                     "with a named memory-order intent")

    if clang_query is None:
        msg = "clang-query not found; rules raw-sync-primitives and " \
              "hot-path-alloc skipped"
        if require_cq:
            fail(msg)
        print(f"  [SKIP] {msg}")
        return failed

    files = load_compile_db_files(build_dir, source_dir)
    if not files:
        fail(f"compile database in {build_dir} lists no repo sources")

    sync = run_clang_query(
        clang_query, os.path.join(LINT_DIR, "rules",
                                  "raw_sync_primitives.query"),
        build_dir, files)
    sync = [(p, l) for (p, l) in sync
            if SYNC_H not in p and DET_SCHED not in p]
    failed += report("raw-sync-primitives", sync,
                     "raw std sync primitive; use util/sync.h types")

    hot = run_clang_query(
        clang_query, os.path.join(LINT_DIR, "rules", "hot_path_alloc.query"),
        build_dir, files)
    failed += report("hot-path-alloc", hot,
                     "allocation source in a GQR_HOT function")
    return failed


def self_test(clang_query, require_cq):
    """Seeds the testdata TUs into synthetic src/, bench/, and fuzz/
    trees and asserts each rule fires on its bad TU — in every enforced
    directory, so a regression that narrows the coverage to src/ fails
    here — and stays quiet on good.cc."""
    testdata = os.path.join(LINT_DIR, "testdata")
    with tempfile.TemporaryDirectory(prefix="gqr_lint_selftest_") as tmp:
        # (directory, source TU, seeded name): src/ carries the full set;
        # bench/ and fuzz/ each get one bad TU per clang-query rule plus
        # a raw assert, proving the rules see beyond src/.
        seeds = [
            ("src", "bad_raw_mutex.cc", "bad_raw_mutex.cc"),
            ("src", "bad_hot_alloc.cc", "bad_hot_alloc.cc"),
            ("src", "bad_assert.cc", "bad_assert.cc"),
            ("src", "bad_raw_atomic.cc", "bad_raw_atomic.cc"),
            ("src", "good.cc", "good.cc"),
            ("bench", "bad_raw_mutex.cc", "bad_raw_mutex_bench.cc"),
            ("bench", "bad_assert.cc", "bad_assert_bench.cc"),
            ("fuzz", "bad_hot_alloc.cc", "bad_hot_alloc_fuzz.cc"),
        ]
        tus = {}
        for subdir, src_name, dst_name in seeds:
            os.makedirs(os.path.join(tmp, subdir), exist_ok=True)
            dst = os.path.join(tmp, subdir, dst_name)
            shutil.copyfile(os.path.join(testdata, src_name), dst)
            tus[dst_name] = dst

        failures = []

        def expect(rule, findings, must_flag, must_not_flag):
            flagged = {os.path.basename(p) for (p, _) in findings}
            for name in ([must_flag] if isinstance(must_flag, str)
                         else must_flag):
                if name not in flagged:
                    failures.append(f"{rule}: expected a finding in {name}, "
                                    f"got {sorted(flagged) or 'none'}")
            if must_not_flag in flagged:
                failures.append(f"{rule}: false positive in {must_not_flag}")

        expect("raw-assert", scan_raw_asserts(tmp, ("src", "bench", "fuzz")),
               ["bad_assert.cc", "bad_assert_bench.cc"], "good.cc")

        # Rule D fires on both seeded declarations (atomic + atomic_flag)
        # and honors the util/atomic.h exclusion: the same bad TU seeded
        # AT the sanctioned path must stay quiet.
        atomic_findings = scan_raw_atomics(tmp)
        expect("raw-atomic", atomic_findings, "bad_raw_atomic.cc", "good.cc")
        if len({l for (p, l) in atomic_findings
                if os.path.basename(p) == "bad_raw_atomic.cc"}) < 2:
            failures.append("raw-atomic: expected findings on both the "
                            "std::atomic and std::atomic_flag lines")
        os.makedirs(os.path.join(tmp, "src", "util"), exist_ok=True)
        shutil.copyfile(os.path.join(testdata, "bad_raw_atomic.cc"),
                        os.path.join(tmp, "src", "util", "atomic.h"))
        masked = {os.path.basename(p) for (p, _) in scan_raw_atomics(tmp)}
        if "atomic.h" in masked:
            failures.append("raw-atomic: util/atomic.h exclusion broken")

        if clang_query is None:
            msg = "clang-query not found; self-test covered the textual " \
                  "rules (raw-assert, raw-atomic) only"
            if require_cq:
                fail(msg)
            print(f"gqr_lint: [SKIP] {msg}")
        else:
            db = [{
                "directory": tmp,
                "command": f"c++ -std=c++20 -c {path}",
                "file": path,
            } for path in tus.values()]
            with open(os.path.join(tmp, "compile_commands.json"), "w",
                      encoding="utf-8") as f:
                json.dump(db, f)
            files = sorted(tus.values())
            expect("raw-sync-primitives",
                   run_clang_query(
                       clang_query,
                       os.path.join(LINT_DIR, "rules",
                                    "raw_sync_primitives.query"), tmp, files),
                   ["bad_raw_mutex.cc", "bad_raw_mutex_bench.cc"], "good.cc")
            expect("hot-path-alloc",
                   run_clang_query(
                       clang_query,
                       os.path.join(LINT_DIR, "rules", "hot_path_alloc.query"),
                       tmp, files),
                   ["bad_hot_alloc.cc", "bad_hot_alloc_fuzz.cc"], "good.cc")

        if failures:
            print("gqr_lint: self-test FAILED")
            for f_ in failures:
                print(f"  {f_}")
            return 1
    print("gqr_lint: self-test passed (rules fire on seeded violations, "
          "stay quiet on the control TU)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--source-dir",
                        default=os.path.dirname(os.path.dirname(LINT_DIR)),
                        help="repo root (default: two levels above this "
                             "script)")
    parser.add_argument("--build-dir", default=None,
                        help="build dir holding compile_commands.json "
                             "(default: <source-dir>/build)")
    parser.add_argument("--clang-query", default=None,
                        help="clang-query binary (default: $CLANG_QUERY or "
                             "PATH discovery)")
    parser.add_argument("--require-clang-query", action="store_true",
                        help="fail instead of skipping when clang-query is "
                             "missing (CI)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against testdata/ instead of "
                             "linting the repo")
    args = parser.parse_args()

    clang_query = find_clang_query(args.clang_query)
    if args.self_test:
        sys.exit(self_test(clang_query, args.require_clang_query))

    source_dir = os.path.abspath(args.source_dir)
    build_dir = os.path.abspath(args.build_dir or
                                os.path.join(source_dir, "build"))
    failed = lint_tree(source_dir, build_dir, clang_query,
                       args.require_clang_query, source_dir)
    if failed:
        print(f"gqr_lint: {failed} rule(s) failed")
        sys.exit(1)
    print("gqr_lint: all rules passed")
    sys.exit(0)


if __name__ == "__main__":
    main()
