// Seeded violation for gqr_lint rule C (hot-path-alloc): a function
// carrying the annotate("gqr_hot") attribute that hits all four
// allocation sources (operator new, malloc family, local owning
// container, explicit reserve). The self-test asserts the rule reports
// this definition.
#include <cstdlib>
#include <vector>

#define TEST_HOT __attribute__((hot, annotate("gqr_hot")))

namespace gqr_lint_testdata {

TEST_HOT int BadHotFunction(int n) {
  std::vector<int> scratch(static_cast<size_t>(n), 1);  // C3: local container
  int* raw = new int[static_cast<size_t>(n)];           // C1: operator new
  void* block = std::malloc(16);                        // C2: malloc family
  scratch.reserve(128);                                 // C4: capacity churn
  int sum = 0;
  for (int v : scratch) sum += v;
  std::free(block);
  delete[] raw;
  return sum;
}

}  // namespace gqr_lint_testdata
