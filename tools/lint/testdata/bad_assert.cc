// Seeded violation for gqr_lint rule B (raw-assert): a bare assert()
// call, which NDEBUG builds silently compile away. Repo code must use
// GQR_CHECK / GQR_DCHECK (util/check.h) instead. The self-test asserts
// the rule reports exactly the call below -- and not this comment.
#include <cassert>

namespace gqr_lint_testdata {

inline int CheckedIncrement(int x) {
  assert(x >= 0);
  return x + 1;
}

}  // namespace gqr_lint_testdata
