// Control TU for the gqr_lint self-test: must produce zero findings
// under every rule. Exercises the sanctioned neighbors of each banned
// pattern -- cold-path allocation, hot-path amortized growth into a
// caller-owned buffer, and a comment that merely mentions assert().
#include <vector>

#define TEST_HOT __attribute__((hot, annotate("gqr_hot")))

namespace gqr_lint_testdata {

// Cold code may allocate freely (rule C only covers annotated functions).
std::vector<int> MakeBuffer(int n) {
  std::vector<int> out(static_cast<size_t>(n), 0);
  out.reserve(static_cast<size_t>(n) + 8);
  return out;
}

// Hot code that only reads, and pushes into caller-owned warmed storage:
// amortized push_back growth is the documented steady-state contract.
TEST_HOT int GoodHotFunction(const std::vector<int>& v,
                             std::vector<int>* out) {
  int sum = 0;
  for (int x : v) {
    sum += x;
    out->push_back(x);
  }
  return sum;
}

}  // namespace gqr_lint_testdata
