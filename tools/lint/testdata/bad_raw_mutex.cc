// Seeded violation for gqr_lint rule A (raw-sync-primitives): declares
// std::mutex / std::condition_variable / std::lock_guard outside
// util/sync.h. The self-test copies this TU under a synthetic src/ tree
// and asserts the rule reports every declaration below.
#include <condition_variable>
#include <mutex>

namespace gqr_lint_testdata {

std::mutex g_bad_mutex;
std::condition_variable g_bad_cv;

int BadCriticalSection(int x) {
  std::lock_guard<std::mutex> lock(g_bad_mutex);
  return x + 1;
}

}  // namespace gqr_lint_testdata
