// Seeded-bad TU for gqr_lint rule D (raw-atomic): raw std::atomic and
// std::atomic_flag declarations outside util/atomic.h. Product atomics
// must be gqr::Atomic<T> so the memory-order intent is named, the
// gqr-analyze atomics check can audit it, and GQR_MODELCHECK builds can
// interpose a schedule point on every operation.
//
// The commented and quoted mentions below must NOT count: the rule is a
// comment/string-stripped scan.
//   std::atomic<int> in_a_comment;
#include <atomic>

namespace lint_selftest {

class Counter {
 public:
  void Bump() { hits_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<unsigned long> hits_{0};  // BAD: raw atomic member.
};

inline std::atomic_flag g_busy = ATOMIC_FLAG_INIT;  // BAD: raw atomic_flag.

inline const char* Doc() {
  return "mentioning std::atomic<int> in a string is fine";
}

}  // namespace lint_selftest
