// gqr-modelcheck: deterministic schedule exploration for the serving
// stack's concurrency protocols (util/det_sched.h, DESIGN.md section 18).
//
// The binary runs curated small-state-space scenarios for the three
// riskiest protocols in the repo — QueryService submit/flush/deadline/
// shutdown, ShardedIndex churn + FreezeShard + reader snapshot probes,
// FeedbackTable TryPredict/TryRecord under eviction — and enumerates
// every thread interleaving reachable within the preemption bound
// (default 2, the CHESS result), failing on the first deadlock,
// livelock, hot-path stall, lock misuse, or scenario-invariant
// violation.
//
// It also pins the repo's two historical interleaving bugs as negative
// tests: minimal replicas of the PR-8 first-draft flush protocol (a
// notify-only flush the worker can miss: lost wakeup -> deadlock) and
// the PR-9 first-draft planner (a blocking feedback-table acquire on the
// serving hot path -> hot-blocked), each next to the shipped fix, which
// must explore clean. Replay tokens for the buggy variants are checked
// in under tools/modelcheck/replay/ so CI proves the explorer re-finds
// both races deterministically.
//
// Exit codes:
//   0   all selected scenarios clean, or --expect-finding matched
//   2   usage error
//   3   unexpected finding, or exploration incomplete under
//       --require-complete
//   4   --expect-finding given but the exploration completed clean
//   77  built without GQR_MODELCHECK (ctest SKIP_RETURN_CODE)
//
// After any finding the process must _Exit: the explorer intentionally
// parks the failing schedule's threads (they may be deadlocked — that
// can be the finding), so the process is not safe to run more scenarios
// in.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/searcher.h"
#include "core/sharded_search.h"
#include "data/synthetic.h"
#include "hash/lsh.h"
#include "index/sharded_index.h"
#include "plan/feedback_table.h"
#include "serve/query_service.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/det_sched.h"
#include "util/sync.h"
#include "util/thread.h"
#include "util/thread_pool.h"

namespace gqr {
namespace {

// ---------------------------------------------------------------------------
// Scenario 1: QueryService submit / flush / deadline / shutdown.
//
// The serving fixture (dataset, hasher, filled index, expected direct-
// search answer) is built ONCE, outside any exploration, by the
// unmanaged main thread. Building it inside a scenario body would make
// the first schedule's transition stream differ from every later one
// (static initialization runs once) and trip the explorer's divergence
// check; it would also register the fixture's locks as model state for
// mutations no schedule ever revisits.
// ---------------------------------------------------------------------------

constexpr int kServeBits = 6;

struct ServeWorld {
  std::unique_ptr<Dataset> base;
  std::unique_ptr<Dataset> queries;
  std::unique_ptr<LinearHasher> hasher;
  std::unique_ptr<ShardedIndex> index;
  std::unique_ptr<Searcher> searcher;
  QueryServiceOptions opt;
  SearchResult expected;  // Direct single-query answer for queries row 0.
};

const ServeWorld& Serve() {
  static const ServeWorld* world = [] {
    auto* w = new ServeWorld();
    SyntheticSpec spec;
    spec.n = 96;  // Tiny on purpose: every probe is a model transition.
    spec.dim = 8;
    spec.num_clusters = 4;
    spec.seed = 11;
    Dataset all = GenerateClusteredGaussian(spec);
    Rng rng(7);
    auto [base, queries] = all.SplitQueries(4, &rng);
    w->base = std::make_unique<Dataset>(std::move(base));
    w->queries = std::make_unique<Dataset>(std::move(queries));
    LshOptions lsh;
    lsh.code_length = kServeBits;
    w->hasher =
        std::make_unique<LinearHasher>(TrainLsh(*w->base, w->base->dim(), lsh));
    w->index = std::make_unique<ShardedIndex>(kServeBits, /*num_shards=*/2);
    const std::vector<Code> codes = w->hasher->HashDataset(*w->base);
    for (size_t id = 0; id < w->base->size(); ++id) {
      GQR_CHECK(w->index->Insert(static_cast<ItemId>(id), codes[id]).ok());
    }
    w->searcher = std::make_unique<Searcher>(*w->base);

    w->opt.method = QueryMethod::kGQR;  // Needs no bucket-union snapshot.
    w->opt.search.k = 2;
    w->opt.search.max_candidates = 16;
    w->opt.max_batch = 4;  // > queued requests, so the linger/flush
                           // protocol (not batch fill) releases claims.
    w->opt.num_workers = 1;

    const QueryHashInfo info = w->hasher->HashQuery(w->queries->Row(0));
    std::unique_ptr<BucketProber> prober = MakeShardedProber(
        w->opt.method, info, std::vector<Code>(), w->index->code_length());
    w->expected = w->searcher->Search(w->queries->Row(0), prober.get(),
                                      *w->index, w->opt.search);
    return w;
  }();
  return *world;
}

void QueryServiceScenario() {
  const ServeWorld& w = Serve();
  QueryService service(*w.searcher, *w.hasher, *w.index, w.opt);

  // One live request and one whose deadline already passed when it was
  // accepted: the claim path must execute the former and resolve the
  // latter as kExpired without running it, in every interleaving of the
  // worker against the submitter.
  QueryService::Future ok = service.Submit(w.queries->Row(0), /*k=*/0);
  QueryService::Future late =
      service.Submit(w.queries->Row(1), /*k=*/0,
                     SteadyNow() - std::chrono::milliseconds(1));
  service.Flush();

  Response live = ok.Get();
  det::ModelAssert(live.status == RequestStatus::kOk,
                   "in-deadline request must execute");
  det::ModelAssert(live.result.ids == w.expected.ids,
                   "coalesced ids must match direct search");
  det::ModelAssert(live.result.distances == w.expected.distances,
                   "coalesced distances must be bit-identical");
  det::ModelAssert(live.batch_size >= 1, "executed request rode a batch");

  Response expired = late.Get();
  det::ModelAssert(expired.status == RequestStatus::kExpired,
                   "expired request must not execute");

  service.Shutdown();
  Response shed = service.Submit(w.queries->Row(0), /*k=*/0).Get();
  det::ModelAssert(shed.status == RequestStatus::kRejected,
                   "post-shutdown submit must shed");
}

// ---------------------------------------------------------------------------
// Scenario 2: ShardedIndex churn + FreezeShard vs a reader's snapshot
// probes. The writer inserts, freezes, then removes one item while a
// reader probes a stable bucket and the churned bucket; stable items
// must be visible in every interleaving, the churned item may be seen
// or not (that IS the race-free ambiguity), and quiesced state must be
// exact.
// ---------------------------------------------------------------------------

void ShardedIndexScenario() {
  constexpr Code kStableBucket = 5;
  constexpr Code kChurnBucket = 9;
  constexpr ItemId kStableA = 1;
  constexpr ItemId kStableB = 2;
  constexpr ItemId kChurn = 3;

  ShardedIndex index(/*code_length=*/4, /*num_shards=*/2);
  det::ModelAssert(index.Insert(kStableA, kStableBucket).ok(),
                   "prefill stable A");
  det::ModelAssert(index.Insert(kStableB, kStableBucket).ok(),
                   "prefill stable B");

  Thread writer([&] {
    det::ModelAssert(index.Insert(kChurn, kChurnBucket).ok(), "churn insert");
    det::ModelAssert(index.FreezeShard(index.ShardOf(kChurn)).ok(),
                     "freeze churned shard");
    det::ModelAssert(index.Remove(kChurn, kChurnBucket).ok(), "churn remove");
  });

  Thread reader([&] {
    std::vector<ItemId> out;
    index.ProbeShard(index.ShardOf(kStableA), kStableBucket, &out);
    det::ModelAssert(
        std::find(out.begin(), out.end(), kStableA) != out.end(),
        "stable item visible to a concurrent probe");

    // The churned bucket holds at most the churned item, whichever of
    // the writer's states this probe lands in.
    std::vector<ItemId> churn_out;
    const size_t n = index.ProbeShard(index.ShardOf(kChurn), kChurnBucket,
                                      &churn_out);
    det::ModelAssert(n <= 1, "churn bucket never over-reports");
    det::ModelAssert(
        churn_out.empty() || churn_out.front() == kChurn,
        "churn bucket only ever holds the churned item");

    // Snapshot publication: FrozenShard is either still unpublished or
    // an immutable table taken after the churn insert — reading it must
    // be safe mid-freeze and it must hold at least the churned item.
    std::shared_ptr<const StaticHashTable> snap =
        index.FrozenShard(index.ShardOf(kChurn));
    det::ModelAssert(snap == nullptr || snap->num_items() >= 1,
                     "published snapshot is readable and non-empty");

    det::ModelAssert(index.Contains(kStableA, kStableBucket),
                     "stable membership holds under churn");
  });

  writer.Join();
  reader.Join();

  // Quiesced: the churned item is gone, stable ones intact, and the
  // frozen snapshot (taken before the remove) is correctly stale.
  det::ModelAssert(!index.Contains(kChurn, kChurnBucket),
                   "churned item removed after join");
  det::ModelAssert(index.Contains(kStableA, kStableBucket) &&
                       index.Contains(kStableB, kStableBucket),
                   "stable items intact after join");
  det::ModelAssert(!index.ShardFrozen(index.ShardOf(kChurn)),
                   "remove after freeze must stale the snapshot");
  const std::vector<Code> uni = index.BucketCodeUnion();
  det::ModelAssert(
      std::find(uni.begin(), uni.end(), kStableBucket) != uni.end(),
      "stable bucket present in the quiesced union");
}

// ---------------------------------------------------------------------------
// Scenario 3: FeedbackTable TryPredict / TryRecord under eviction.
// The table is prefilled past capacity so every new key evicts; a
// recorder thread mixes blocking and try- records against a predictor
// thread, and the counters must account for every attempt exactly.
// ---------------------------------------------------------------------------

void FeedbackTableScenario() {
  FeedbackTable::Options opt;
  opt.capacity = 8;  // One probe window == the whole table: max pressure.
  FeedbackTable table(opt);

  // 9 distinct keys into 8 slots: the prefill itself must evict.
  for (uint64_t i = 1; i <= 9; ++i) {
    table.Record(i * 0x9e3779b97f4a7c15ull, 100.0);
  }
  det::ModelAssert(table.counters().evictions > 0,
                   "overfull prefill must evict");

  constexpr uint64_t kHotKey = 0xabcdef12345ull;
  table.Record(kHotKey, 50.0);  // Nobody re-records this key below.

  int applied = 0;
  int dropped = 0;
  Thread recorder([&table, &applied, &dropped] {
    if (table.TryRecord(0x1111, 70.0)) {
      ++applied;
    } else {
      ++dropped;
    }
    table.Record(0x2222, 80.0);
    if (table.TryRecord(0x3333, 90.0)) {
      ++applied;
    } else {
      ++dropped;
    }
  });

  Thread predictor([&table] {
    double ewma = 0.0;
    // TryPredict may lose to the recorder's exclusive lock — that is
    // the contract — but a hit must return the recorded value even
    // while eviction churns the surrounding slots.
    const bool hit = table.TryPredict(kHotKey, &ewma);
    det::ModelAssert(!hit || ewma == 50.0,
                     "try-hit returns the recorded EWMA");
    double ewma2 = 0.0;
    const bool hit2 = table.Predict(kHotKey, &ewma2);
    det::ModelAssert(!hit2 || ewma2 == 50.0,
                     "blocking hit returns the recorded EWMA");
  });

  recorder.Join();
  predictor.Join();

  const FeedbackTable::Counters c = table.counters();
  det::ModelAssert(c.dropped_records == static_cast<uint64_t>(dropped),
                   "every TryRecord drop is counted");
  det::ModelAssert(c.records == 10 + 1 + static_cast<uint64_t>(applied),
                   "every applied record is counted");
  det::ModelAssert(c.entries <= table.capacity(), "storage stays bounded");
}

// ---------------------------------------------------------------------------
// Historical race 1 (PR 8): the lost-wakeup flush.
//
// Minimal replica of the QueryService linger protocol in both forms.
// The shipped form stamps each request with the flush generation at
// enqueue and the worker lingers only while the front request's stamp
// still matches — a Flush() that ran before the worker reached its wait
// is visible in the re-checked predicate. The first-draft form treated
// the flush as a *wakeup* rather than *state*: the worker parks once
// and trusts a notify to release it, so a Flush() whose NotifyAll fired
// before the worker reached the wait is simply lost and the worker
// lingers forever (modeled as an untimed wait = unbounded linger),
// which the explorer reports as a deadlock.
// ---------------------------------------------------------------------------

class FlushReplica {
 public:
  explicit FlushReplica(bool generation_stamped)
      : stamped_(generation_stamped) {}

  void RunWorker() {
    MutexLock lock(mu_);
    while (!queued_) cv_.Wait(mu_);
    if (stamped_) {
      // Shipped: re-check the generation stamp every pass. gen_ != the
      // item's stamp means a flush happened since enqueue — claim now.
      while (queued_ && item_gen_ == gen_) cv_.Wait(mu_);
    } else {
      // First draft: any wakeup means "flush or fill — claim now". The
      // flush left no state behind, so if its notify fired before this
      // wait was reached, no wakeup is ever coming.
      if (queued_) cv_.Wait(mu_);
    }
    queued_ = false;
    ++served_;
  }

  void Enqueue() {
    MutexLock lock(mu_);
    queued_ = true;
    item_gen_ = gen_;
    cv_.NotifyAll();
  }

  void Flush() {
    MutexLock lock(mu_);
    ++gen_;  // The stamped worker sees this even if it was not yet waiting.
    cv_.NotifyAll();
  }

  int served() {
    MutexLock lock(mu_);
    return served_;
  }

 private:
  const bool stamped_;
  Mutex mu_;
  CondVar cv_;
  bool queued_ GQR_GUARDED_BY(mu_) = false;
  uint64_t gen_ GQR_GUARDED_BY(mu_) = 0;
  uint64_t item_gen_ GQR_GUARDED_BY(mu_) = 0;
  int served_ GQR_GUARDED_BY(mu_) = 0;
};

void FlushReplicaScenario(bool stamped) {
  FlushReplica replica(stamped);
  Thread worker([&replica] { replica.RunWorker(); });
  replica.Enqueue();
  replica.Flush();
  worker.Join();
  det::ModelAssert(replica.served() == 1,
                   "the queued request must be claimed after a flush");
}

// ---------------------------------------------------------------------------
// Historical race 2 (PR 9): the blocking-planner stall.
//
// Minimal replica of the adaptive planner's serving-path feedback-table
// access in both forms. The shipped form uses TryPredict/TryRecord —
// try-acquires that give up under contention, so the hot thread never
// blocks. The first draft called the blocking Predict/Record from the
// serving hot path; any schedule where the maintenance thread holds the
// table's exclusive lock when the server arrives stalls the hot thread,
// which the explorer reports as hot-blocked (the dynamic twin of
// gqr-analyze check (1)).
// ---------------------------------------------------------------------------

void PlannerStallScenario(bool nonblocking) {
  constexpr uint64_t kKey = 0x51ull;
  FeedbackTable::Options opt;
  opt.capacity = 8;
  FeedbackTable table(opt);
  table.Record(kKey, 40.0);

  Thread maintainer([&table] { table.Record(kKey, 60.0); });

  Thread server([&table, nonblocking] {
    det::SetHotPath(true);
    double ewma = 0.0;
    bool hit;
    if (nonblocking) {
      hit = table.TryPredict(kKey, &ewma);
      (void)table.TryRecord(kKey, 55.0);
    } else {
      hit = table.Predict(kKey, &ewma);  // Seeded: blocks while hot.
      table.Record(kKey, 55.0);          // Seeded: blocks while hot.
    }
    det::SetHotPath(false);
    det::ModelAssert(!hit || (ewma >= 40.0 && ewma <= 60.0),
                     "prediction stays inside the observed range");
  });

  maintainer.Join();
  server.Join();
}

// ---------------------------------------------------------------------------
// Scenario registry + driver.
// ---------------------------------------------------------------------------

struct ScenarioDef {
  const char* name;
  const char* summary;
  // Non-empty for the seeded-buggy replicas: the finding kind the
  // explorer must produce. These are excluded from --scenario all.
  const char* seeded_finding;
  std::function<void()> body;
};

const std::vector<ScenarioDef>& Scenarios() {
  static const std::vector<ScenarioDef>* defs = new std::vector<ScenarioDef>{
      {"query_service",
       "QueryService submit/flush/deadline/shutdown over the real serving "
       "stack",
       "", [] { QueryServiceScenario(); }},
      {"sharded_index",
       "ShardedIndex churn + FreezeShard vs reader snapshot probes", "",
       [] { ShardedIndexScenario(); }},
      {"feedback_table",
       "FeedbackTable TryPredict/TryRecord under eviction pressure", "",
       [] { FeedbackTableScenario(); }},
      {"flush_replica_fixed",
       "PR-8 flush protocol, shipped generation-stamped form", "",
       [] { FlushReplicaScenario(/*stamped=*/true); }},
      {"flush_replica_buggy",
       "PR-8 first-draft notify-only flush (lost wakeup)", "deadlock",
       [] { FlushReplicaScenario(/*stamped=*/false); }},
      {"planner_stall_fixed",
       "PR-9 planner on the hot path, shipped try-lock form", "",
       [] { PlannerStallScenario(/*nonblocking=*/true); }},
      {"planner_stall_buggy",
       "PR-9 first-draft blocking planner on the hot path", "hot-blocked",
       [] { PlannerStallScenario(/*nonblocking=*/false); }},
  };
  return *defs;
}

struct RunRecord {
  std::string name;
  det::Stats stats;
};

void AppendStatsJson(const RunRecord& r, std::string* out) {
  std::ostringstream os;
  const det::Stats& s = r.stats;
  os << "    {\"name\": \"" << r.name << "\", \"schedules\": " << s.schedules
     << ", \"transitions\": " << s.transitions
     << ", \"decision_points\": " << s.decision_points
     << ", \"sleep_skips\": " << s.sleep_skips
     << ", \"bound_skips\": " << s.bound_skips
     << ", \"redundant_runs\": " << s.redundant_runs
     << ", \"max_depth\": " << s.max_depth << ", \"wall_ms\": " << s.wall_ms
     << ", \"complete\": " << (s.complete ? "true" : "false")
     << ", \"found\": " << (s.found ? "true" : "false") << ", \"finding_kind\": \""
     << s.finding_kind << "\", \"finding_token\": \"" << s.finding_token
     << "\"}";
  *out += os.str();
}

void WriteStats(const std::string& path, int preemptions,
                const std::vector<RunRecord>& runs) {
  if (path.empty()) return;
  std::string body = "{\n  \"preemption_bound\": " +
                     std::to_string(preemptions) + ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    AppendStatsJson(runs[i], &body);
    if (i + 1 < runs.size()) body += ",";
    body += "\n";
  }
  body += "  ]\n}\n";
  std::ofstream out(path);
  out << body;
  if (!out) {
    std::fprintf(stderr, "gqr-modelcheck: cannot write stats to %s\n",
                 path.c_str());
  }
}

struct CliOptions {
  std::string scenario = "all";
  std::string expect_finding;
  std::string stats_out;
  det::Options explore;
  bool require_complete = false;
  bool list = false;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario NAME|all] [--preemptions N] [--budget-ms N]\n"
      "          [--max-schedules N] [--max-steps N] [--stats-out FILE]\n"
      "          [--expect-finding KIND] [--replay TOKEN | --replay-file F]\n"
      "          [--trace] [--require-complete] [--list]\n"
      "\n"
      "--scenario all runs every curated scenario and fixed replica\n"
      "(seeded-buggy replicas run only when named explicitly).\n"
      "--expect-finding inverts the verdict: the named finding kind must\n"
      "occur (exit 0), a clean exploration exits 4.\n"
      "--replay/--replay-file executes exactly one recorded schedule of\n"
      "one named scenario instead of exploring.\n",
      argv0);
  return 2;
}

bool ReadTokenFile(const std::string& path, std::string* token) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  // First non-empty, non-comment line is the token.
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    *token = line;
    return true;
  }
  return false;
}

void PrintStatsLine(const RunRecord& r) {
  const det::Stats& s = r.stats;
  std::fprintf(stderr,
               "[%s] schedules=%llu transitions=%llu decision_points=%llu "
               "sleep_skips=%llu bound_skips=%llu max_depth=%llu "
               "wall=%.0fms complete=%s\n",
               r.name.c_str(), static_cast<unsigned long long>(s.schedules),
               static_cast<unsigned long long>(s.transitions),
               static_cast<unsigned long long>(s.decision_points),
               static_cast<unsigned long long>(s.sleep_skips),
               static_cast<unsigned long long>(s.bound_skips),
               static_cast<unsigned long long>(s.max_depth), s.wall_ms,
               s.complete ? "yes" : "no");
}

int RunMain(int argc, char** argv) {
  CliOptions cli;
  std::string replay_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gqr-modelcheck: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      cli.scenario = next("--scenario");
    } else if (arg == "--preemptions") {
      cli.explore.preemption_bound = std::atoi(next("--preemptions"));
    } else if (arg == "--budget-ms") {
      cli.explore.budget_ms = std::atoll(next("--budget-ms"));
    } else if (arg == "--max-schedules") {
      cli.explore.max_schedules =
          static_cast<uint64_t>(std::atoll(next("--max-schedules")));
    } else if (arg == "--max-steps") {
      cli.explore.max_steps =
          static_cast<uint64_t>(std::atoll(next("--max-steps")));
    } else if (arg == "--stats-out") {
      cli.stats_out = next("--stats-out");
    } else if (arg == "--expect-finding") {
      cli.expect_finding = next("--expect-finding");
    } else if (arg == "--replay") {
      cli.explore.replay_token = next("--replay");
    } else if (arg == "--replay-file") {
      replay_file = next("--replay-file");
    } else if (arg == "--trace") {
      cli.explore.trace = true;
    } else if (arg == "--require-complete") {
      cli.require_complete = true;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "gqr-modelcheck: unknown flag %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  if (cli.list) {
    for (const ScenarioDef& def : Scenarios()) {
      std::fprintf(stderr, "%-22s %s%s\n", def.name, def.summary,
                   *def.seeded_finding
                       ? (std::string(" [seeded: ") + def.seeded_finding + "]")
                             .c_str()
                       : "");
    }
    return 0;
  }

#if !defined(GQR_MODELCHECK)
  std::fprintf(stderr,
               "gqr-modelcheck: built without GQR_MODELCHECK; schedule "
               "hooks are compiled out, nothing to explore (exit 77)\n");
  return 77;
#endif

  if (!replay_file.empty() &&
      !ReadTokenFile(replay_file, &cli.explore.replay_token)) {
    std::fprintf(stderr, "gqr-modelcheck: cannot read replay token from %s\n",
                 replay_file.c_str());
    return 2;
  }

  std::vector<const ScenarioDef*> selected;
  for (const ScenarioDef& def : Scenarios()) {
    if (cli.scenario == def.name ||
        (cli.scenario == "all" && !*def.seeded_finding)) {
      selected.push_back(&def);
    }
  }
  if (selected.empty()) {
    std::fprintf(stderr, "gqr-modelcheck: no scenario named '%s' (--list)\n",
                 cli.scenario.c_str());
    return 2;
  }
  if (!cli.explore.replay_token.empty() && selected.size() != 1) {
    std::fprintf(stderr,
                 "gqr-modelcheck: --replay needs exactly one --scenario\n");
    return 2;
  }

  // Construct process-wide singletons from THIS unmanaged thread, before
  // any exploration: a first call from a managed thread would register
  // the shared pool's workers (and the serving fixture's build-time
  // lock traffic) with the model. Scenario bodies only ever read these.
  (void)ThreadPool::Shared();
  (void)Serve();

  std::vector<RunRecord> runs;
  for (const ScenarioDef* def : selected) {
    std::fprintf(stderr, "exploring %s (preemption bound %d)...\n", def->name,
                 cli.explore.preemption_bound);
    RunRecord rec;
    rec.name = def->name;
    rec.stats = det::Explore(def->body, cli.explore);
    runs.push_back(rec);
    PrintStatsLine(rec);

    const det::Stats& s = rec.stats;
    if (s.found) {
      // The failing schedule's threads are parked (possibly deadlocked);
      // report, persist stats, and _Exit — never run another scenario.
      std::fprintf(stderr, "[%s] FINDING kind=%s token=%s\n  %s\n",
                   def->name, s.finding_kind.c_str(), s.finding_token.c_str(),
                   s.finding_message.c_str());
      std::fprintf(stderr,
                   "  replay: gqr-modelcheck --scenario %s --replay '%s' "
                   "--trace\n",
                   def->name, s.finding_token.c_str());
      WriteStats(cli.stats_out, cli.explore.preemption_bound, runs);
      if (!cli.expect_finding.empty()) {
        if (s.finding_kind == cli.expect_finding) {
          std::fprintf(stderr, "expected finding '%s' reproduced\n",
                       cli.expect_finding.c_str());
          std::_Exit(0);
        }
        std::fprintf(stderr, "expected finding '%s' but got '%s'\n",
                     cli.expect_finding.c_str(), s.finding_kind.c_str());
        std::_Exit(3);
      }
      std::_Exit(3);
    }
    if (!s.complete && cli.require_complete &&
        cli.explore.replay_token.empty()) {
      std::fprintf(stderr,
                   "[%s] exploration INCOMPLETE (budget or schedule cap) "
                   "under --require-complete\n",
                   def->name);
      WriteStats(cli.stats_out, cli.explore.preemption_bound, runs);
      return 3;
    }
  }

  WriteStats(cli.stats_out, cli.explore.preemption_bound, runs);
  if (!cli.expect_finding.empty()) {
    std::fprintf(stderr,
                 "expected finding '%s' did not occur — the seeded bug is "
                 "gone or the explorer lost it\n",
                 cli.expect_finding.c_str());
    return 4;
  }
  std::fprintf(stderr, "all %zu scenario(s) clean\n", selected.size());
  return 0;
}

}  // namespace
}  // namespace gqr

int main(int argc, char** argv) { return gqr::RunMain(argc, argv); }
