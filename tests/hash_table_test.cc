// Tests for index/hash_table: partition invariant, lookup vs reference
// map, edge cases.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "index/hash_table.h"
#include "util/random.h"

namespace gqr {
namespace {

TEST(HashTableTest, PartitionsItemsExactlyOnce) {
  Rng rng(51);
  const int m = 10;
  std::vector<Code> codes(5000);
  for (auto& c : codes) c = rng.Uniform(1u << m);
  StaticHashTable table(codes, m);
  EXPECT_EQ(table.num_items(), codes.size());

  std::set<ItemId> seen;
  size_t total = 0;
  for (size_t b = 0; b < table.num_buckets(); ++b) {
    for (ItemId id : table.bucket_items(b)) {
      EXPECT_TRUE(seen.insert(id).second) << "item " << id << " duplicated";
      EXPECT_EQ(codes[id], table.bucket_codes()[b]);
      ++total;
    }
  }
  EXPECT_EQ(total, codes.size());
}

TEST(HashTableTest, ProbeMatchesReferenceMap) {
  Rng rng(52);
  const int m = 12;
  std::vector<Code> codes(3000);
  for (auto& c : codes) c = rng.Uniform(1u << m);
  StaticHashTable table(codes, m);

  std::map<Code, std::multiset<ItemId>> ref;
  for (size_t i = 0; i < codes.size(); ++i) {
    ref[codes[i]].insert(static_cast<ItemId>(i));
  }
  // Every existing bucket returns exactly the reference members.
  for (const auto& [code, members] : ref) {
    auto span = table.Probe(code);
    std::multiset<ItemId> got(span.begin(), span.end());
    EXPECT_EQ(got, members);
  }
  // Absent buckets return empty spans.
  for (int i = 0; i < 200; ++i) {
    const Code c = rng.Uniform(1u << m);
    if (ref.count(c) == 0) {
      EXPECT_TRUE(table.Probe(c).empty());
    }
  }
}

TEST(HashTableTest, BucketCodesAscendingUnique) {
  Rng rng(53);
  std::vector<Code> codes(1000);
  for (auto& c : codes) c = rng.Uniform(256);
  StaticHashTable table(codes, 8);
  const auto& bc = table.bucket_codes();
  for (size_t i = 1; i < bc.size(); ++i) EXPECT_LT(bc[i - 1], bc[i]);
}

TEST(HashTableTest, SingleItem) {
  StaticHashTable table({Code{5}}, 4);
  EXPECT_EQ(table.num_buckets(), 1u);
  ASSERT_EQ(table.Probe(5).size(), 1u);
  EXPECT_EQ(table.Probe(5)[0], 0u);
  EXPECT_TRUE(table.Probe(4).empty());
}

TEST(HashTableTest, EmptyInput) {
  StaticHashTable table(std::vector<Code>{}, 8);
  EXPECT_EQ(table.num_buckets(), 0u);
  EXPECT_EQ(table.num_items(), 0u);
  EXPECT_TRUE(table.Probe(0).empty());
}

TEST(HashTableTest, AllItemsOneBucket) {
  std::vector<Code> codes(100, Code{3});
  StaticHashTable table(codes, 6);
  EXPECT_EQ(table.num_buckets(), 1u);
  EXPECT_EQ(table.Probe(3).size(), 100u);
  EXPECT_EQ(table.MaxBucketSize(), 100u);
}

TEST(HashTableTest, SixtyFourBitCodes) {
  std::vector<Code> codes = {0, ~Code{0}, Code{1} << 63, 42};
  StaticHashTable table(codes, 64);
  EXPECT_EQ(table.num_buckets(), 4u);
  EXPECT_EQ(table.Probe(~Code{0}).size(), 1u);
  EXPECT_EQ(table.Probe(~Code{0})[0], 1u);
}

TEST(HashTableTest, CodeZeroIsAValidBucket) {
  std::vector<Code> codes = {0, 0, 7};
  StaticHashTable table(codes, 3);
  EXPECT_EQ(table.Probe(0).size(), 2u);
}

}  // namespace
}  // namespace gqr
