// Runtime behavior of the annotated sync primitives (util/sync.h):
// mutual exclusion, TryLock semantics, reader concurrency, writer
// exclusion, and CondVar handoff. The *static* side of the contract —
// that misuse fails to compile under -Werror=thread-safety — is pinned
// by the negative compilation tests in tests/negative/ (Clang only);
// this test proves the wrappers actually lock, on every compiler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace gqr {
namespace {

struct GuardedCounter {
  Mutex mu;
  CondVar cv;
  int value GQR_GUARDED_BY(mu) = 0;
  bool ready GQR_GUARDED_BY(mu) = false;
};

TEST(SyncTest, MutexProvidesMutualExclusion) {
  GuardedCounter state;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&state] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(state.mu);
        ++state.value;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(state.mu);
  EXPECT_EQ(state.value, kThreads * kIncrements);
}

TEST(SyncTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  bool acquired = true;
  std::thread contender([&mu, &acquired] {
    // std::mutex forbids same-thread re-try_lock, so contend from a
    // second thread.
    if (mu.TryLock()) {
      mu.Unlock();
    } else {
      acquired = false;
    }
  });
  contender.join();
  mu.Unlock();
  EXPECT_FALSE(acquired);
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, SharedMutexAdmitsConcurrentReaders) {
  SharedMutex smu;
  std::atomic<int> readers_inside{0};
  std::atomic<bool> saw_both{false};
  constexpr int kReaders = 2;
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      ReaderLock lock(smu);
      readers_inside.fetch_add(1);
      // Hold the shared lock until both readers are inside (bounded so a
      // pathological scheduler cannot hang the test; mutual exclusion
      // would make reaching 2 impossible, not just slow).
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (readers_inside.load() < kReaders &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      if (readers_inside.load() == kReaders) saw_both.store(true);
      readers_inside.fetch_sub(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(saw_both.load());
}

TEST(SyncTest, WriterLockExcludesReaders) {
  SharedMutex smu;
  int shared_value = 0;  // Guarded by smu by convention below.
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    WriterLock lock(smu);
    shared_value = 41;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    shared_value = 42;  // Readers must never observe 41.
    writer_done.store(true);
  });
  std::thread reader([&] {
    for (int i = 0; i < 1000 && !writer_done.load(); ++i) {
      ReaderLock lock(smu);
      EXPECT_NE(shared_value, 41);
    }
  });
  writer.join();
  reader.join();
  ReaderLock lock(smu);
  EXPECT_EQ(shared_value, 42);
}

TEST(SyncTest, CondVarHandsOffGuardedState) {
  GuardedCounter state;
  std::thread consumer([&state] {
    MutexLock lock(state.mu);
    while (!state.ready) state.cv.Wait(state.mu);
    EXPECT_EQ(state.value, 7);
    state.value = 8;
  });
  {
    MutexLock lock(state.mu);
    state.value = 7;
    state.ready = true;
  }
  state.cv.NotifyOne();
  consumer.join();
  MutexLock lock(state.mu);
  EXPECT_EQ(state.value, 8);
}

TEST(SyncTest, AssertHeldIsCallableUnderLock) {
  SharedMutex smu;
  {
    WriterLock lock(smu);
    smu.AssertHeld();  // No-op at runtime; teaches the static analysis.
  }
  {
    ReaderLock lock(smu);
    smu.AssertReaderHeld();
  }
  Mutex mu;
  MutexLock lock(mu);
  mu.AssertHeld();
}

}  // namespace
}  // namespace gqr
