// Concurrency stress for the sharded serving subsystem: writer threads
// Insert/Remove against a ShardedIndex (with periodic shard freezes)
// while reader threads run GQR searches through ShardedSearch. Run under
// the TSan CI leg this is the data-race proof for the whole path — the
// task-group pool, the per-shard locking, and the freeze/swap protocol.
//
// Iteration counts default low so tier-1 ctest stays fast; set
// GQR_STRESS_ITERS (read through util/env) for full-length soak runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "core/batch_search.h"
#include "core/sharded_search.h"
#include "data/synthetic.h"
#include "hash/lsh.h"
#include "util/env.h"

namespace gqr {
namespace {

constexpr int kBits = 12;
constexpr size_t kShards = 4;

struct StressFixture {
  Dataset base;
  Dataset queries;
  LinearHasher hasher;
  std::vector<Code> codes;

  static StressFixture Make() {
    SyntheticSpec spec;
    spec.n = 4032;
    spec.dim = 8;
    spec.num_clusters = 20;
    spec.seed = 401;
    Dataset all = GenerateClusteredGaussian(spec);
    Rng rng(11);
    auto [base, queries] = all.SplitQueries(32, &rng);
    LshOptions opt;
    opt.code_length = kBits;
    LinearHasher hasher = TrainLsh(base, base.dim(), opt);
    std::vector<Code> codes = hasher.HashDataset(base);
    return StressFixture{std::move(base), std::move(queries),
                         std::move(hasher), std::move(codes)};
  }
};

TEST(ConcurrentIndexTest, InsertRemoveWhileSearching) {
  const int64_t iters = StressIters(/*fallback=*/40);
  StressFixture f = StressFixture::Make();
  const size_t n = f.base.size();
  const size_t stable = n / 2;  // [0, stable) stays put; the rest churns.

  ShardedIndex index(kBits, kShards);
  for (size_t id = 0; id < stable; ++id) {
    ASSERT_TRUE(index.Insert(static_cast<ItemId>(id), f.codes[id]).ok());
  }

  Searcher searcher(f.base);
  SearchOptions so;
  so.k = 10;
  so.max_candidates = 300;

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  // Two writers churn disjoint halves of the dynamic id range: insert
  // the whole slice, freeze a shard mid-stream, then remove the slice.
  // Every operation on a present/absent item must succeed — a lost or
  // duplicated update would surface as a failed Status.
  const size_t churn = n - stable;
  auto writer = [&](size_t lo, size_t hi) {
    for (int64_t it = 0; it < iters; ++it) {
      for (size_t id = lo; id < hi; ++id) {
        if (!index.Insert(static_cast<ItemId>(id), f.codes[id]).ok()) {
          violation.store(true);
        }
      }
      (void)index.FreezeShard(static_cast<size_t>(it) % kShards);
      for (size_t id = lo; id < hi; ++id) {
        if (!index.Remove(static_cast<ItemId>(id), f.codes[id]).ok()) {
          violation.store(true);
        }
      }
    }
  };

  // Readers run batched GQR searches the whole time and validate every
  // result: ids in range, no duplicates within a result, distances
  // finite and ascending. A torn bucket (half-inserted vector, stale
  // span) would produce out-of-range or duplicate ids.
  auto reader = [&] {
    std::vector<SearchResult> results;
    while (!stop.load(std::memory_order_acquire)) {
      ShardedSearchInto(searcher, f.hasher, index, f.queries,
                        QueryMethod::kGQR, so, &results);
      for (const SearchResult& r : results) {
        std::set<ItemId> seen;
        float prev = -1.f;
        for (size_t i = 0; i < r.ids.size(); ++i) {
          if (r.ids[i] >= n || !seen.insert(r.ids[i]).second ||
              !std::isfinite(r.distances[i]) || r.distances[i] < prev) {
            violation.store(true);
          }
          prev = r.distances[i];
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer, stable, stable + churn / 2);
  threads.emplace_back(writer, stable + churn / 2, n);
  threads.emplace_back(reader);
  threads.emplace_back(reader);
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  threads[2].join();
  threads[3].join();

  EXPECT_FALSE(violation.load());

  // Quiesced: no lost items — exactly the stable half remains, each
  // still findable under its code, and every churned id is gone.
  EXPECT_EQ(index.num_items(), stable);
  for (size_t id = 0; id < n; ++id) {
    EXPECT_EQ(index.Contains(static_cast<ItemId>(id), f.codes[id]),
              id < stable)
        << "id " << id;
  }

  // And the quiesced sharded index answers identically to an unsharded
  // static table over the same (sparse) id set.
  index.FreezeAll();
  std::vector<ItemId> stable_ids(stable);
  std::vector<Code> stable_codes(stable);
  for (size_t id = 0; id < stable; ++id) {
    stable_ids[id] = static_cast<ItemId>(id);
    stable_codes[id] = f.codes[id];
  }
  StaticHashTable reference(stable_ids, stable_codes, kBits);
  const auto expected = BatchSearch(searcher, f.hasher, reference,
                                    f.queries, QueryMethod::kGQR, so);
  const auto got = ShardedSearch(searcher, f.hasher, index, f.queries,
                                 QueryMethod::kGQR, so);
  ASSERT_EQ(expected.size(), got.size());
  for (size_t q = 0; q < expected.size(); ++q) {
    EXPECT_EQ(expected[q].ids, got[q].ids) << "query " << q;
    EXPECT_EQ(expected[q].distances, got[q].distances) << "query " << q;
  }
}

TEST(ConcurrentIndexTest, ConcurrentFreezeAndSearchOnAllMethods) {
  // HR/QR snapshot the bucket-code union per batch; make sure the
  // sorted-upfront methods also hold up while freezes and writes land.
  const int64_t iters = StressIters(/*fallback=*/40) / 4 + 1;
  StressFixture f = StressFixture::Make();
  const size_t n = f.base.size();

  ShardedIndex index(kBits, kShards);
  for (size_t id = 0; id < n; ++id) {
    ASSERT_TRUE(index.Insert(static_cast<ItemId>(id), f.codes[id]).ok());
  }

  Searcher searcher(f.base);
  SearchOptions so;
  so.k = 5;
  so.max_candidates = 200;

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread churner([&] {
    // Re-insert/remove one slice of ids forever (content oscillates but
    // never corrupts), freezing shards round-robin.
    size_t round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      for (ItemId id = 0; id < 64; ++id) {
        if (!index.Remove(id, f.codes[id]).ok()) violation.store(true);
      }
      (void)index.FreezeShard(round++ % kShards);
      for (ItemId id = 0; id < 64; ++id) {
        if (!index.Insert(id, f.codes[id]).ok()) violation.store(true);
      }
    }
  });
  for (int64_t it = 0; it < iters; ++it) {
    for (QueryMethod m :
         {QueryMethod::kGQR, QueryMethod::kGHR, QueryMethod::kQR,
          QueryMethod::kHR}) {
      const auto results =
          ShardedSearch(searcher, f.hasher, index, f.queries, m, so);
      for (const SearchResult& r : results) {
        for (ItemId id : r.ids) {
          if (id >= n) violation.store(true);
        }
      }
    }
  }
  stop.store(true, std::memory_order_release);
  churner.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(index.num_items(), n);
}

}  // namespace
}  // namespace gqr
