// Death tests for the contract layer (util/check.h) and the Result
// error paths that ride on it. GQR_CHECK aborts in every build mode, so
// these use EXPECT_DEATH to assert both the abort and the message
// content (file:line prefix, stringified condition, streamed operands).
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "util/check.h"
#include "util/result.h"
#include "util/status.h"

namespace gqr {
namespace {

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, CheckTrueIsSilent) {
  GQR_CHECK(1 + 1 == 2);
  GQR_CHECK_EQ(2, 2) << "never evaluated";
  GQR_CHECK_LT(1, 2);
  SUCCEED();
}

TEST(CheckDeathTest, CheckFalseAbortsWithConditionText) {
  EXPECT_DEATH(GQR_CHECK(false), "GQR_CHECK failed: false");
}

TEST(CheckDeathTest, CheckStreamsContext) {
  const int m = 65;
  EXPECT_DEATH(GQR_CHECK(m <= 64) << "code_length m=" << m,
               "code_length m=65");
}

TEST(CheckDeathTest, CheckEqPrintsBothOperands) {
  const int got = 3;
  const int want = 7;
  EXPECT_DEATH(GQR_CHECK_EQ(got, want), "3 vs 7");
}

TEST(CheckDeathTest, CheckLeFailureNamesThePredicate) {
  EXPECT_DEATH(GQR_CHECK_LE(10, 4), "GQR_CHECK_LE");
}

TEST(CheckDeathTest, CheckMessageCarriesFileAndLine) {
  // The failure line must point at the call site, not into check.h.
  EXPECT_DEATH(GQR_CHECK(false), "check_test.cc");
}

TEST(CheckDeathTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto once = [&calls]() {
    ++calls;
    return true;
  };
  GQR_CHECK(once());
  EXPECT_EQ(calls, 1);
}

TEST(CheckDeathTest, DcheckOperandsNotEvaluatedWhenDisabled) {
#if GQR_DEBUG_CHECKS
  GTEST_SKIP() << "debug checks armed in this build";
#else
  int calls = 0;
  auto count = [&calls]() {
    ++calls;
    return 1;
  };
  GQR_DCHECK_EQ(count(), 1);
  EXPECT_EQ(calls, 0) << "disabled GQR_DCHECK evaluated its operands";
#endif
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::IOError("disk on fire"));
  EXPECT_DEATH((void)r.value(), "value\\(\\) on error Result.*disk on fire");
}

TEST(ResultDeathTest, DerefOnErrorAborts) {
  Result<std::string> r(Status::NotFound("nope"));
  EXPECT_DEATH((void)*r, "value\\(\\) on error Result");
  EXPECT_DEATH((void)r->size(), "value\\(\\) on error Result");
}

TEST(ResultDeathTest, RvalueValueOnErrorAborts) {
  EXPECT_DEATH(
      { (void)Result<int>(Status::Internal("boom")).value(); },
      "value\\(\\) on error Result.*boom");
}

TEST(ResultDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH(Result<int> r(Status::OK()),
               "Result constructed from OK status");
}

TEST(ResultTest, ErrorPathPreservesCodeAndMessage) {
  Result<int> r(Status::FailedPrecondition("needs training"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(r.status().message(), "needs training");
}

TEST(ResultTest, MoveOutLeavesValueAccessible) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace gqr
