// Tests for §4.1 distance-threshold (range) search: exactness under the
// Theorem 2 early stop, against brute force.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/gqr_prober.h"
#include "core/qd.h"
#include "core/searcher.h"
#include "data/synthetic.h"
#include "hash/itq.h"
#include "la/vector_ops.h"

namespace gqr {
namespace {

struct RangeFixture {
  Dataset base;
  LinearHasher hasher;
  StaticHashTable table;
  double mu;

  static RangeFixture Make(uint64_t seed) {
    SyntheticSpec spec;
    spec.n = 4000;
    spec.dim = 12;
    spec.num_clusters = 40;
    spec.cluster_stddev = 4.0;
    spec.zipf_exponent = 0.5;
    spec.seed = seed;
    Dataset base = GenerateClusteredGaussian(spec);
    ItqOptions opt;
    opt.code_length = 9;
    opt.seed = seed;
    LinearHasher hasher = TrainItq(base, opt);
    StaticHashTable table(hasher.HashDataset(base), 9);
    const double mu = TheoremTwoMu(hasher);
    return RangeFixture{std::move(base), std::move(hasher),
                        std::move(table), mu};
  }
};

std::vector<ItemId> BruteForceRange(const Dataset& base, const float* q,
                                    float radius) {
  std::vector<std::pair<float, ItemId>> hits;
  for (size_t i = 0; i < base.size(); ++i) {
    const float d = L2Distance(base.Row(static_cast<ItemId>(i)), q,
                               base.dim());
    if (d <= radius) hits.emplace_back(d, static_cast<ItemId>(i));
  }
  std::sort(hits.begin(), hits.end());
  std::vector<ItemId> ids;
  for (const auto& [d, id] : hits) ids.push_back(id);
  return ids;
}

class RangeSearchTest : public ::testing::TestWithParam<int> {};

TEST_P(RangeSearchTest, ExactUnderEarlyStop) {
  RangeFixture f = RangeFixture::Make(160 + GetParam());
  ASSERT_GT(f.mu, 0.0);
  Searcher searcher(f.base);
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const auto qid = static_cast<ItemId>(rng.Uniform(f.base.size()));
    const float* query = f.base.Row(qid);
    for (float radius : {1.0f, 5.0f, 15.0f}) {
      QueryHashInfo info = f.hasher.HashQuery(query);
      GqrProber prober(info);
      SearchResult r =
          searcher.RangeSearch(query, &prober, f.table, radius, f.mu);
      EXPECT_EQ(r.ids, BruteForceRange(f.base, query, radius))
          << "radius " << radius;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeSearchTest, ::testing::Values(1, 2, 3));

TEST(RangeSearchTest, EarlyStopActuallyTruncates) {
  RangeFixture f = RangeFixture::Make(170);
  Searcher searcher(f.base);
  const float* query = f.base.Row(0);
  QueryHashInfo info = f.hasher.HashQuery(query);
  GqrProber with_stop(info);
  SearchResult stopped =
      searcher.RangeSearch(query, &with_stop, f.table, 2.0f, f.mu);
  GqrProber without_stop(info);
  SearchResult exhaustive =
      searcher.RangeSearch(query, &without_stop, f.table, 2.0f, 0.0);
  EXPECT_EQ(stopped.ids, exhaustive.ids);
  EXPECT_TRUE(stopped.stats.early_stopped);
  EXPECT_LT(stopped.stats.buckets_probed, exhaustive.stats.buckets_probed);
  EXPECT_LT(stopped.stats.items_evaluated,
            exhaustive.stats.items_evaluated);
}

TEST(RangeSearchTest, ResultsSortedAndWithinRadius) {
  RangeFixture f = RangeFixture::Make(171);
  Searcher searcher(f.base);
  const float* query = f.base.Row(7);
  QueryHashInfo info = f.hasher.HashQuery(query);
  GqrProber prober(info);
  const float radius = 10.0f;
  SearchResult r =
      searcher.RangeSearch(query, &prober, f.table, radius, f.mu);
  for (size_t i = 0; i < r.ids.size(); ++i) {
    EXPECT_LE(r.distances[i], radius);
    if (i > 0) {
      EXPECT_LE(r.distances[i - 1], r.distances[i]);
    }
  }
  // The query is its own row: distance 0 must be present.
  ASSERT_FALSE(r.ids.empty());
  EXPECT_EQ(r.ids[0], 7u);
}

TEST(RangeSearchTest, AngularMetricMatchesBruteForce) {
  RangeFixture f = RangeFixture::Make(173);
  Searcher searcher(f.base);
  const float* query = f.base.Row(11);
  QueryHashInfo info = f.hasher.HashQuery(query);
  GqrProber prober(info);
  const float radius = 0.05f;  // Cosine distance threshold.
  // mu = 0: exhaust the prober (the Euclidean Theorem 2 bound does not
  // transfer to cosine radii, so no early stop is claimed here).
  SearchResult r = searcher.RangeSearch(query, &prober, f.table, radius, 0.0,
                                        Metric::kAngular);
  std::vector<std::pair<float, ItemId>> hits;
  for (size_t i = 0; i < f.base.size(); ++i) {
    const float d =
        CosineDistance(f.base.Row(static_cast<ItemId>(i)), query,
                       f.base.dim());
    if (d <= radius) hits.emplace_back(d, static_cast<ItemId>(i));
  }
  std::sort(hits.begin(), hits.end());
  ASSERT_EQ(r.ids.size(), hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(r.ids[i], hits[i].second);
    EXPECT_FLOAT_EQ(r.distances[i], hits[i].first);
  }
  // The query's own row is at cosine distance 0.
  ASSERT_FALSE(r.ids.empty());
  EXPECT_EQ(r.ids[0], 11u);
}

TEST(RangeSearchTest, ZeroRadiusFindsExactDuplicatesOnly) {
  RangeFixture f = RangeFixture::Make(172);
  Searcher searcher(f.base);
  const float* query = f.base.Row(3);
  QueryHashInfo info = f.hasher.HashQuery(query);
  GqrProber prober(info);
  SearchResult r = searcher.RangeSearch(query, &prober, f.table, 0.0f, f.mu);
  ASSERT_GE(r.ids.size(), 1u);
  for (float d : r.distances) EXPECT_FLOAT_EQ(d, 0.f);
}

}  // namespace
}  // namespace gqr
