// Tests for la/kmeans: convergence, objective monotonicity, recovery of
// planted clusters.
#include <gtest/gtest.h>

#include <set>

#include "la/kmeans.h"
#include "util/random.h"

namespace gqr {
namespace {

// Three well-separated planted clusters in 2D.
std::vector<float> PlantedClusters(size_t per_cluster, Rng* rng) {
  const double centers[3][2] = {{0, 0}, {100, 0}, {0, 100}};
  std::vector<float> data;
  data.reserve(per_cluster * 3 * 2);
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      data.push_back(static_cast<float>(centers[c][0] + rng->Gaussian()));
      data.push_back(static_cast<float>(centers[c][1] + rng->Gaussian()));
    }
  }
  return data;
}

TEST(KMeansTest, RecoversPlantedClusters) {
  Rng rng(21);
  auto data = PlantedClusters(100, &rng);
  KMeansOptions opt;
  opt.k = 3;
  opt.seed = 1;
  KMeansResult r = KMeans(data.data(), 300, 2, opt);
  ASSERT_EQ(r.centers.rows(), 3u);
  // Each planted center must be within 1.0 of some learned center.
  const double planted[3][2] = {{0, 0}, {100, 0}, {0, 100}};
  for (const auto& p : planted) {
    double best = 1e18;
    for (size_t c = 0; c < 3; ++c) {
      const double dx = r.centers.At(c, 0) - p[0];
      const double dy = r.centers.At(c, 1) - p[1];
      best = std::min(best, dx * dx + dy * dy);
    }
    EXPECT_LT(best, 1.0);
  }
  // Points within one planted cluster share an assignment.
  for (size_t c = 0; c < 3; ++c) {
    std::set<uint32_t> labels;
    for (size_t i = 0; i < 100; ++i) labels.insert(r.assignments[c * 100 + i]);
    EXPECT_EQ(labels.size(), 1u) << "cluster " << c << " split";
  }
}

TEST(KMeansTest, ObjectiveNonIncreasing) {
  Rng rng(22);
  std::vector<float> data(500 * 8);
  for (auto& v : data) v = static_cast<float>(rng.Gaussian());
  KMeansOptions opt;
  opt.k = 16;
  opt.max_iters = 15;
  opt.tol = 0.0;  // Run all iterations.
  KMeansResult r = KMeans(data.data(), 500, 8, opt);
  ASSERT_GE(r.objective_history.size(), 2u);
  for (size_t i = 1; i < r.objective_history.size(); ++i) {
    EXPECT_LE(r.objective_history[i], r.objective_history[i - 1] + 1e-9);
  }
}

TEST(KMeansTest, AssignmentsMatchNearestCenter) {
  Rng rng(23);
  std::vector<float> data(200 * 4);
  for (auto& v : data) v = static_cast<float>(rng.Gaussian());
  KMeansOptions opt;
  opt.k = 7;
  KMeansResult r = KMeans(data.data(), 200, 4, opt);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(r.assignments[i], NearestCenter(r.centers, data.data() + i * 4));
  }
}

TEST(KMeansTest, KLargerThanNClamps) {
  std::vector<float> data = {0.f, 10.f, 20.f};
  KMeansOptions opt;
  opt.k = 10;
  KMeansResult r = KMeans(data.data(), 3, 1, opt);
  EXPECT_EQ(r.centers.rows(), 3u);
}

TEST(KMeansTest, DeterministicForSeed) {
  Rng rng(24);
  std::vector<float> data(100 * 3);
  for (auto& v : data) v = static_cast<float>(rng.Gaussian());
  KMeansOptions opt;
  opt.k = 5;
  opt.seed = 77;
  KMeansResult a = KMeans(data.data(), 100, 3, opt);
  KMeansResult b = KMeans(data.data(), 100, 3, opt);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_LT(a.centers.MaxAbsDiff(b.centers), 1e-15);
}

TEST(KMeansTest, DoubleInputWorks) {
  Rng rng(25);
  std::vector<double> data(100 * 3);
  for (auto& v : data) v = rng.Gaussian();
  KMeansOptions opt;
  opt.k = 4;
  KMeansResult r = KMeans(data.data(), 100, 3, opt);
  EXPECT_EQ(r.assignments.size(), 100u);
  EXPECT_GT(r.iterations, 0);
}

TEST(KMeansTest, SubsampledTrainingStillAssignsAll) {
  Rng rng(26);
  std::vector<float> data(1000 * 2);
  for (auto& v : data) v = static_cast<float>(rng.Gaussian());
  KMeansOptions opt;
  opt.k = 4;
  opt.max_train_samples = 100;
  KMeansResult r = KMeans(data.data(), 1000, 2, opt);
  EXPECT_EQ(r.assignments.size(), 1000u);
}

TEST(KMeansTest, NoEmptyClustersOnSeparatedData) {
  Rng rng(27);
  auto data = PlantedClusters(50, &rng);
  KMeansOptions opt;
  opt.k = 3;
  KMeansResult r = KMeans(data.data(), 150, 2, opt);
  std::set<uint32_t> used(r.assignments.begin(), r.assignments.end());
  EXPECT_EQ(used.size(), 3u);
}

}  // namespace
}  // namespace gqr
