// Tests for the shared generation tree (§5.3) and its use by GqrProber.
#include <gtest/gtest.h>

#include <set>

#include "core/generation_tree.h"
#include "core/gqr_prober.h"
#include "util/random.h"

namespace gqr {
namespace {

TEST(GenerationTreeTest, FullTreeHasAllFlippingVectorsOnce) {
  // Property 1 at the structural level: 2^m - 1 nodes, all masks unique,
  // spanning every non-zero sorted flipping vector.
  const int m = 10;
  GenerationTree tree(m);
  ASSERT_TRUE(tree.complete());
  ASSERT_EQ(tree.size(), (size_t{1} << m) - 1);
  std::set<uint64_t> masks;
  for (uint32_t i = 0; i < tree.size(); ++i) {
    const auto& node = tree.node(i);
    EXPECT_TRUE(masks.insert(node.mask).second);
    EXPECT_EQ(node.rightmost, HighestSetBit(node.mask));
    EXPECT_EQ(node.mask & ~LowBitsMask(m), 0u);
  }
}

TEST(GenerationTreeTest, ChildLinksMatchAppendSwap) {
  const int m = 8;
  GenerationTree tree(m);
  for (uint32_t i = 0; i < tree.size(); ++i) {
    const auto& node = tree.node(i);
    if (node.rightmost + 1 >= m) {
      EXPECT_EQ(node.append_child, GenerationTree::kInvalidNode);
      EXPECT_EQ(node.swap_child, GenerationTree::kInvalidNode);
      continue;
    }
    const int j = node.rightmost;
    ASSERT_NE(node.append_child, GenerationTree::kInvalidNode);
    ASSERT_NE(node.swap_child, GenerationTree::kInvalidNode);
    EXPECT_EQ(tree.node(node.append_child).mask,
              node.mask | (uint64_t{1} << (j + 1)));
    EXPECT_EQ(tree.node(node.swap_child).mask,
              (node.mask ^ (uint64_t{1} << j)) | (uint64_t{1} << (j + 1)));
  }
}

TEST(GenerationTreeTest, RootIsVr) {
  GenerationTree tree(5);
  EXPECT_EQ(tree.node(0).mask, 1u);
  EXPECT_EQ(tree.node(0).rightmost, 0);
}

TEST(GenerationTreeTest, CappedTreeKeepsShallowNodes) {
  const int m = 16;
  GenerationTree tree(m, /*max_nodes=*/1000);
  EXPECT_FALSE(tree.complete());
  EXPECT_LE(tree.size(), 1000u);
  // BFS order: popcounts (tree depth proxy) are produced level by level,
  // so the materialized prefix is exactly the shallow frontier. Any
  // child link points inside the array.
  for (uint32_t i = 0; i < tree.size(); ++i) {
    const auto& node = tree.node(i);
    if (node.append_child != GenerationTree::kInvalidNode) {
      EXPECT_LT(node.append_child, tree.size());
    }
    if (node.swap_child != GenerationTree::kInvalidNode) {
      EXPECT_LT(node.swap_child, tree.size());
    }
  }
}

TEST(GenerationTreeTest, SharedInstanceIsCachedPerM) {
  const GenerationTree& a = GenerationTree::Shared(12);
  const GenerationTree& b = GenerationTree::Shared(12);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.code_length(), 12);
  EXPECT_NE(&a, &GenerationTree::Shared(13));
}

TEST(GenerationTreeTest, ProberWithTreeMatchesWithout) {
  // The §5.3 optimization must not change the probe sequence.
  for (int m : {4, 9, 14}) {
    Rng rng(m);
    QueryHashInfo info;
    info.code = rng.Uniform(uint64_t{1} << m);
    info.flip_costs.resize(m);
    for (double& c : info.flip_costs) c = rng.UniformDouble();

    GqrProber plain(info);
    GqrProber shared(info, 0, &GenerationTree::Shared(m));
    ProbeTarget a, b;
    size_t count = 0;
    while (true) {
      const bool more_a = plain.Next(&a);
      const bool more_b = shared.Next(&b);
      ASSERT_EQ(more_a, more_b) << "m=" << m << " i=" << count;
      if (!more_a) break;
      EXPECT_EQ(a.bucket, b.bucket) << "m=" << m << " i=" << count;
      EXPECT_DOUBLE_EQ(plain.last_score(), shared.last_score());
      ++count;
    }
    EXPECT_EQ(count, size_t{1} << m);
  }
}

TEST(GenerationTreeTest, ProberWithCappedTreeStillExactlyOnce) {
  // Past the materialized frontier the prober falls back to Append/Swap;
  // the union must still cover every bucket exactly once in QD order.
  const int m = 12;
  GenerationTree small_tree(m, /*max_nodes=*/100);
  Rng rng(77);
  QueryHashInfo info;
  info.code = rng.Uniform(uint64_t{1} << m);
  info.flip_costs.resize(m);
  for (double& c : info.flip_costs) c = rng.UniformDouble();

  GqrProber prober(info, 0, &small_tree);
  std::set<Code> seen;
  ProbeTarget t;
  double prev = -1.0;
  while (prober.Next(&t)) {
    EXPECT_TRUE(seen.insert(t.bucket).second);
    EXPECT_GE(prober.last_score(), prev - 1e-12);
    prev = prober.last_score();
  }
  EXPECT_EQ(seen.size(), size_t{1} << m);
}

}  // namespace
}  // namespace gqr
