// QueryService coalescer tests: admission control, deadline expiry,
// linger flushes, shutdown drain, stats accounting — and the
// differential contract that coalesced serving is bit-identical to
// direct single-query Searcher::Search for all four querying methods.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/sharded_search.h"
#include "data/synthetic.h"
#include "hash/lsh.h"
#include "serve/query_service.h"

namespace gqr {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr int kBits = 10;
constexpr size_t kShards = 4;

struct ServeFixture {
  Dataset base;
  Dataset queries;
  LinearHasher hasher;
  std::vector<Code> codes;

  static ServeFixture Make() {
    SyntheticSpec spec;
    spec.n = 3032;
    spec.dim = 12;
    spec.num_clusters = 16;
    spec.seed = 707;
    Dataset all = GenerateClusteredGaussian(spec);
    Rng rng(13);
    auto [base, queries] = all.SplitQueries(32, &rng);
    LshOptions opt;
    opt.code_length = kBits;
    LinearHasher hasher = TrainLsh(base, base.dim(), opt);
    std::vector<Code> codes = hasher.HashDataset(base);
    return ServeFixture{std::move(base), std::move(queries),
                        std::move(hasher), std::move(codes)};
  }

  void Fill(ShardedIndex* index) const {
    for (size_t id = 0; id < base.size(); ++id) {
      EXPECT_TRUE(index->Insert(static_cast<ItemId>(id), codes[id]).ok());
    }
  }
};

const ServeFixture& Fixture() {
  static const ServeFixture f = ServeFixture::Make();
  return f;
}

SearchOptions BaseOptions() {
  SearchOptions so;
  so.k = 5;
  so.max_candidates = 300;
  return so;
}

// The headline contract: a request served through the coalescer (batched
// hashing, per-batch bucket-union snapshot, shared worker threads) must
// return exactly what a direct single-query Searcher::Search returns, for
// every querying method, on ids and on distances bit-for-bit.
TEST(QueryServiceTest, CoalescedResultsMatchDirectSearchAllMethods) {
  const ServeFixture& f = Fixture();
  ShardedIndex index(kBits, kShards);
  f.Fill(&index);
  Searcher searcher(f.base);

  const QueryMethod methods[] = {QueryMethod::kGQR, QueryMethod::kGHR,
                                 QueryMethod::kQR, QueryMethod::kHR};
  for (QueryMethod method : methods) {
    SCOPED_TRACE(QueryMethodName(method));
    QueryServiceOptions opt;
    opt.method = method;
    opt.search = BaseOptions();
    opt.max_batch = 8;                // Forces multi-flush coalescing.
    opt.max_linger = milliseconds(2);
    QueryService service(searcher, f.hasher, index, opt);

    std::vector<QueryService::Future> futures;
    futures.reserve(f.queries.size());
    for (ItemId q = 0; q < f.queries.size(); ++q) {
      futures.push_back(service.Submit(f.queries.Row(q), /*k=*/0));
    }

    const std::vector<Code> bucket_union =
        MethodNeedsBucketUnion(method) ? index.BucketCodeUnion()
                                       : std::vector<Code>();
    for (ItemId q = 0; q < f.queries.size(); ++q) {
      Response resp = futures[q].Get();
      ASSERT_EQ(resp.status, RequestStatus::kOk);
      EXPECT_GE(resp.batch_size, 1u);

      const QueryHashInfo info = f.hasher.HashQuery(f.queries.Row(q));
      std::unique_ptr<BucketProber> prober =
          MakeShardedProber(method, info, bucket_union, index.code_length());
      const SearchResult direct = searcher.Search(
          f.queries.Row(q), prober.get(), index, BaseOptions());

      ASSERT_EQ(resp.result.ids.size(), direct.ids.size());
      for (size_t i = 0; i < direct.ids.size(); ++i) {
        EXPECT_EQ(resp.result.ids[i], direct.ids[i]) << "rank " << i;
        // Bit-identical, not approximately equal: the batched hashing
        // path guarantees the same codes and flipping costs, so the
        // whole probe/evaluate pipeline must agree exactly.
        EXPECT_EQ(resp.result.distances[i], direct.distances[i])
            << "rank " << i;
      }
    }
  }
}

// A single straggler must not wait for the block to fill: the linger
// timeout flushes a batch of one.
TEST(QueryServiceTest, FlushOnLingerServesSingleStraggler) {
  const ServeFixture& f = Fixture();
  ShardedIndex index(kBits, kShards);
  f.Fill(&index);
  Searcher searcher(f.base);

  QueryServiceOptions opt;
  opt.search = BaseOptions();
  opt.max_batch = 64;
  opt.max_linger = milliseconds(5);
  QueryService service(searcher, f.hasher, index, opt);

  QueryService::Future future = service.Submit(f.queries.Row(0), /*k=*/3);
  Response resp = future.Get();  // Must return without 63 more submits.
  ASSERT_EQ(resp.status, RequestStatus::kOk);
  EXPECT_EQ(resp.batch_size, 1u);
  EXPECT_EQ(resp.result.ids.size(), 3u);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.batches, 1u);
  ASSERT_GT(stats.batch_fill.size(), 1u);
  EXPECT_EQ(stats.batch_fill[1], 1u);
}

// Per-request k overrides the service default.
TEST(QueryServiceTest, PerRequestKOverridesDefault) {
  const ServeFixture& f = Fixture();
  ShardedIndex index(kBits, kShards);
  f.Fill(&index);
  Searcher searcher(f.base);

  QueryServiceOptions opt;
  opt.search = BaseOptions();  // k = 5.
  opt.max_linger = microseconds(100);
  QueryService service(searcher, f.hasher, index, opt);

  QueryService::Future k1 = service.Submit(f.queries.Row(1), /*k=*/1);
  QueryService::Future k0 = service.Submit(f.queries.Row(1), /*k=*/0);
  Response r1 = k1.Get();
  Response r0 = k0.Get();
  ASSERT_EQ(r1.status, RequestStatus::kOk);
  ASSERT_EQ(r0.status, RequestStatus::kOk);
  EXPECT_EQ(r1.result.ids.size(), 1u);
  EXPECT_EQ(r0.result.ids.size(), 5u);
}

// A request whose deadline already passed when the worker claims it is
// completed as kExpired without being executed.
TEST(QueryServiceTest, DeadlineExpiredWhileQueued) {
  const ServeFixture& f = Fixture();
  ShardedIndex index(kBits, kShards);
  f.Fill(&index);
  Searcher searcher(f.base);

  QueryServiceOptions opt;
  opt.search = BaseOptions();
  opt.max_batch = 64;
  opt.max_linger = milliseconds(5);
  QueryService service(searcher, f.hasher, index, opt);

  // Already expired at submit: it necessarily expires while queued.
  const QueryService::Deadline past =
      QueryService::Clock::now() - milliseconds(1);
  QueryService::Future expired = service.Submit(f.queries.Row(2), 0, past);
  // A live request in the same batch still executes.
  QueryService::Future alive = service.Submit(f.queries.Row(3), 0);

  Response expired_resp = expired.Get();
  Response alive_resp = alive.Get();
  EXPECT_EQ(expired_resp.status, RequestStatus::kExpired);
  EXPECT_TRUE(expired_resp.result.ids.empty());
  ASSERT_EQ(alive_resp.status, RequestStatus::kOk);
  EXPECT_EQ(alive_resp.batch_size, 1u);  // The expired one didn't count.

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

// Submitting against a full queue sheds with kRejected; the accepted
// requests are unaffected and drain on shutdown.
TEST(QueryServiceTest, ShedOnFullQueue) {
  const ServeFixture& f = Fixture();
  ShardedIndex index(kBits, kShards);
  f.Fill(&index);
  Searcher searcher(f.base);

  QueryServiceOptions opt;
  opt.search = BaseOptions();
  opt.max_batch = 64;
  opt.max_queue = 2;
  // Long linger: the worker holds the queue un-claimed while we fill it,
  // making the shed deterministic.
  opt.max_linger = std::chrono::seconds(10);
  QueryService service(searcher, f.hasher, index, opt);

  QueryService::Future a = service.Submit(f.queries.Row(0), 0);
  QueryService::Future b = service.Submit(f.queries.Row(1), 0);
  QueryService::Future shed = service.Submit(f.queries.Row(2), 0);
  Response shed_resp = shed.Get();  // Born resolved; no blocking.
  EXPECT_EQ(shed_resp.status, RequestStatus::kRejected);

  // The callback flavor reports the shed synchronously instead.
  std::atomic<int> callbacks{0};
  EXPECT_FALSE(service.SubmitAsync(f.queries.Row(2), 0,
                                   QueryService::NoDeadline(),
                                   [&](Response) { ++callbacks; }));
  EXPECT_EQ(callbacks.load(), 0);

  service.Shutdown();  // Drains the two accepted requests.
  EXPECT_EQ(a.Get().status, RequestStatus::kOk);
  EXPECT_EQ(b.Get().status, RequestStatus::kOk);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

// Flush() cuts the linger short without shutting down.
TEST(QueryServiceTest, FlushCutsLingerShort) {
  const ServeFixture& f = Fixture();
  ShardedIndex index(kBits, kShards);
  f.Fill(&index);
  Searcher searcher(f.base);

  QueryServiceOptions opt;
  opt.search = BaseOptions();
  opt.max_batch = 64;
  opt.max_linger = std::chrono::seconds(10);
  QueryService service(searcher, f.hasher, index, opt);

  std::vector<QueryService::Future> futures;
  for (ItemId q = 0; q < 3; ++q) {
    futures.push_back(service.Submit(f.queries.Row(q), 0));
  }
  service.Flush();
  for (auto& future : futures) {
    Response resp = future.Get();  // Without Flush this would take 10 s.
    ASSERT_EQ(resp.status, RequestStatus::kOk);
    EXPECT_EQ(resp.batch_size, 3u);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.batches, 1u);
  ASSERT_GT(stats.batch_fill.size(), 3u);
  EXPECT_EQ(stats.batch_fill[3], 1u);
}

// Shutdown with requests still queued: every accepted request completes
// (drain semantics), and submits after shutdown are rejected.
TEST(QueryServiceTest, ShutdownDrainsInFlightRequests) {
  const ServeFixture& f = Fixture();
  ShardedIndex index(kBits, kShards);
  f.Fill(&index);
  Searcher searcher(f.base);

  QueryServiceOptions opt;
  opt.search = BaseOptions();
  opt.max_batch = 4;
  opt.max_linger = std::chrono::seconds(10);
  QueryService service(searcher, f.hasher, index, opt);

  std::vector<QueryService::Future> futures;
  for (ItemId q = 0; q < 10; ++q) {
    futures.push_back(service.Submit(f.queries.Row(q), 0));
  }
  service.Shutdown();
  for (auto& future : futures) {
    EXPECT_EQ(future.Get().status, RequestStatus::kOk);
  }

  QueryService::Future late = service.Submit(f.queries.Row(0), 0);
  EXPECT_EQ(late.Get().status, RequestStatus::kRejected);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, 10u);
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.rejected, 1u);
}

// Coalescing off: every request is served as a batch of one even when a
// backlog exists — the ablation baseline must not re-amortize.
TEST(QueryServiceTest, CoalesceOffServesBatchesOfOne) {
  const ServeFixture& f = Fixture();
  ShardedIndex index(kBits, kShards);
  f.Fill(&index);
  Searcher searcher(f.base);

  QueryServiceOptions opt;
  opt.search = BaseOptions();
  opt.coalesce = false;
  QueryService service(searcher, f.hasher, index, opt);

  std::vector<QueryService::Future> futures;
  for (ItemId q = 0; q < 8; ++q) {
    futures.push_back(service.Submit(f.queries.Row(q), 0));
  }
  for (ItemId q = 0; q < 8; ++q) {
    Response resp = futures[q].Get();
    ASSERT_EQ(resp.status, RequestStatus::kOk);
    EXPECT_EQ(resp.batch_size, 1u);

    const QueryHashInfo info = f.hasher.HashQuery(f.queries.Row(q));
    std::unique_ptr<BucketProber> prober = MakeShardedProber(
        QueryMethod::kGQR, info, {}, index.code_length());
    const SearchResult direct =
        searcher.Search(f.queries.Row(q), prober.get(), index, BaseOptions());
    EXPECT_EQ(resp.result.ids, direct.ids);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.batches, 8u);
  EXPECT_EQ(stats.batch_fill[1], 8u);
}

// Concurrent submitters through both the future and the callback APIs:
// all requests resolve, counters reconcile.
TEST(QueryServiceTest, ConcurrentSubmittersAllResolve) {
  const ServeFixture& f = Fixture();
  ShardedIndex index(kBits, kShards);
  f.Fill(&index);
  Searcher searcher(f.base);

  QueryServiceOptions opt;
  opt.search = BaseOptions();
  opt.max_batch = 16;
  opt.max_linger = microseconds(200);
  opt.num_workers = 2;
  QueryService service(searcher, f.hasher, index, opt);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> ok{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const ItemId q =
            static_cast<ItemId>((t * kPerThread + i) % f.queries.size());
        Response resp = service.Submit(f.queries.Row(q), 0).Get();
        if (resp.status == RequestStatus::kOk) {
          ++ok;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(other.load(), 0);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_GE(stats.MeanBatchFill(), 1.0);
}

}  // namespace
}  // namespace gqr
