// Tests for the multi-table index and multi-table search.
#include <gtest/gtest.h>

#include <memory>

#include "core/gqr_prober.h"
#include "core/multi_prober.h"
#include "core/searcher.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "hash/lsh.h"
#include "index/multi_table.h"

namespace gqr {
namespace {

Dataset MakeData(size_t n = 3000, size_t dim = 12) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.num_clusters = 30;
  spec.seed = 95;
  return GenerateClusteredGaussian(spec);
}

MultiTableIndex MakeIndex(const Dataset& base, size_t tables, int m = 10) {
  return BuildMultiTableIndex(
      base, tables, [&](uint64_t seed) -> std::unique_ptr<BinaryHasher> {
        LshOptions opt;
        opt.code_length = m;
        opt.seed = seed;
        return std::make_unique<LinearHasher>(
            TrainLsh(base, base.dim(), opt));
      });
}

TEST(MultiTableTest, BuildsOneTablePerHasher) {
  Dataset base = MakeData(500);
  MultiTableIndex index = MakeIndex(base, 3);
  EXPECT_EQ(index.num_tables(), 3u);
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(index.table(t).num_items(), base.size());
  }
  EXPECT_GE(index.TotalBuckets(), index.table(0).num_buckets());
}

TEST(MultiTableTest, TablesDifferAcrossSeeds) {
  Dataset base = MakeData(500);
  MultiTableIndex index = MakeIndex(base, 2);
  // Different random hashers produce different codes for some item.
  bool any_diff = false;
  for (ItemId i = 0; i < 100 && !any_diff; ++i) {
    if (index.hasher(0).HashItem(base.Row(i)) !=
        index.hasher(1).HashItem(base.Row(i))) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(MultiTableTest, SearchDeduplicatesAcrossTables) {
  Dataset base = MakeData(1000);
  MultiTableIndex index = MakeIndex(base, 4);
  Searcher searcher(base);
  const float* query = base.Row(7);
  std::vector<std::unique_ptr<BucketProber>> probers;
  for (size_t t = 0; t < index.num_tables(); ++t) {
    probers.push_back(std::make_unique<GqrProber>(
        index.hasher(t).HashQuery(query), static_cast<uint32_t>(t)));
  }
  MultiProber merged(std::move(probers));
  SearchOptions opt;
  opt.k = 10;
  opt.max_candidates = 0;  // Exhaust all tables.
  SearchResult r = searcher.Search(query, &merged, index, opt);
  // Every item lives in every table, so without dedup we would evaluate
  // n * T items; with dedup exactly n.
  EXPECT_EQ(r.stats.items_evaluated, base.size());
  EXPECT_EQ(r.stats.duplicates_skipped, base.size() * 3);
  // Exhaustive multi-table search is exact.
  Neighbors exact = BruteForceKnn(base, query, 10);
  EXPECT_EQ(r.ids, exact.ids);
}

TEST(MultiTableTest, MoreTablesImproveRecallAtFixedBudget) {
  // The memory-for-recall trade of §6.3.5, on LSH where single-table
  // recall is clearly below 1 at a small budget.
  Dataset all = MakeData(4000);
  Rng rng(3);
  auto [base, queries] = all.SplitQueries(30, &rng);
  auto gt = ComputeGroundTruth(base, queries, 10);
  Searcher searcher(base);

  auto recall_with_tables = [&](size_t tables) {
    MultiTableIndex index = MakeIndex(base, tables, 12);
    double total = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      const float* query = queries.Row(static_cast<ItemId>(q));
      std::vector<std::unique_ptr<BucketProber>> probers;
      for (size_t t = 0; t < index.num_tables(); ++t) {
        probers.push_back(std::make_unique<GqrProber>(
            index.hasher(t).HashQuery(query), static_cast<uint32_t>(t)));
      }
      MultiProber merged(std::move(probers));
      SearchOptions opt;
      opt.k = 10;
      opt.max_candidates = 200;
      SearchResult r = searcher.Search(query, &merged, index, opt);
      total += RecallAtK(r.ids, gt[q], 10);
    }
    return total / static_cast<double>(queries.size());
  };

  const double one = recall_with_tables(1);
  const double four = recall_with_tables(4);
  EXPECT_GE(four, one - 0.05) << "multi-table recall collapsed";
}

}  // namespace
}  // namespace gqr
