// Cross-cutting property sweeps: the library's core invariants checked
// over the full (learner x code length x seed) grid with parameterized
// gtest, catching interactions single-module tests miss.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "core/gqr_prober.h"
#include "core/qd.h"
#include "core/qr_prober.h"
#include "core/searcher.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "hash/itq.h"
#include "hash/kmh.h"
#include "hash/pcah.h"
#include "hash/sh.h"

namespace gqr {
namespace {

// (learner, code_length, seed)
using SweepParam = std::tuple<const char*, int, int>;

class LearnerSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static Dataset MakeData(uint64_t seed) {
    SyntheticSpec spec;
    spec.n = 1500;
    spec.dim = 16;
    spec.num_clusters = 20;
    spec.cluster_stddev = 4.0;
    spec.zipf_exponent = 0.5;
    spec.seed = seed;
    return GenerateClusteredGaussian(spec);
  }

  static std::unique_ptr<BinaryHasher> MakeHasher(const Dataset& data,
                                                  const std::string& name,
                                                  int m, uint64_t seed) {
    if (name == "ITQ") {
      ItqOptions o;
      o.code_length = m;
      o.seed = seed;
      return std::make_unique<LinearHasher>(TrainItq(data, o));
    }
    if (name == "PCAH") {
      PcahOptions o;
      o.code_length = m;
      o.seed = seed;
      return std::make_unique<LinearHasher>(TrainPcah(data, o));
    }
    if (name == "SH") {
      ShOptions o;
      o.code_length = m;
      o.seed = seed;
      return std::make_unique<ShHasher>(TrainSh(data, o));
    }
    KmhOptions o;
    o.code_length = m - (m % 2);
    o.bits_per_block = 2;
    o.seed = seed;
    return std::make_unique<KmhHasher>(TrainKmh(data, o));
  }
};

TEST_P(LearnerSweepTest, QueryInfoInvariants) {
  auto [name, m, seed] = GetParam();
  Dataset data = MakeData(300 + seed);
  auto hasher = MakeHasher(data, name, m, seed);
  for (ItemId i = 0; i < 50; ++i) {
    QueryHashInfo info = hasher->HashQuery(data.Row(i));
    // Query code equals item code (same input, same rule).
    EXPECT_EQ(info.code, hasher->HashItem(data.Row(i)));
    // Codes fit the declared length; costs are non-negative.
    EXPECT_EQ(info.code & ~LowBitsMask(hasher->code_length()), 0u);
    ASSERT_EQ(info.code_length(), hasher->code_length());
    for (double c : info.flip_costs) EXPECT_GE(c, -1e-12);
    // QD of the item's own bucket is 0.
    EXPECT_DOUBLE_EQ(QuantizationDistance(info, info.code), 0.0);
  }
}

TEST_P(LearnerSweepTest, GqrMatchesQrOverNonEmptyBuckets) {
  auto [name, m, seed] = GetParam();
  Dataset data = MakeData(400 + seed);
  auto hasher = MakeHasher(data, name, m, seed);
  StaticHashTable table(hasher->HashDataset(data), hasher->code_length());
  for (ItemId q = 0; q < 5; ++q) {
    QueryHashInfo info = hasher->HashQuery(data.Row(q));
    QrProber qr(info, table);
    GqrProber gqr(info);
    // Compare the QD sequences restricted to non-empty buckets — must be
    // identical (semantic equivalence of Algorithms 1 and 2).
    ProbeTarget t;
    std::vector<double> qr_scores, gqr_scores;
    while (qr.Next(&t)) qr_scores.push_back(qr.last_score());
    while (gqr.Next(&t)) {
      if (!table.Probe(t.bucket).empty()) {
        gqr_scores.push_back(gqr.last_score());
      }
    }
    ASSERT_EQ(qr_scores.size(), gqr_scores.size());
    for (size_t i = 0; i < qr_scores.size(); ++i) {
      EXPECT_NEAR(qr_scores[i], gqr_scores[i], 1e-9);
    }
  }
}

TEST_P(LearnerSweepTest, RecallMonotoneInBudget) {
  auto [name, m, seed] = GetParam();
  Dataset all = MakeData(500 + seed);
  Rng rng(seed);
  auto [base, queries] = all.SplitQueries(10, &rng);
  auto gt = ComputeGroundTruth(base, queries, 10);
  auto hasher = MakeHasher(base, name, m, seed);
  StaticHashTable table(hasher->HashDataset(base), hasher->code_length());
  Searcher searcher(base);
  for (size_t q = 0; q < queries.size(); ++q) {
    const float* query = queries.Row(static_cast<ItemId>(q));
    double prev = -1.0;
    for (size_t budget : {30u, 150u, 1500u}) {
      QueryHashInfo info = hasher->HashQuery(query);
      GqrProber prober(info);
      SearchOptions so;
      so.k = 10;
      so.max_candidates = budget;
      const double recall = RecallAtK(
          searcher.Search(query, &prober, table, so).ids, gt[q], 10);
      EXPECT_GE(recall, prev - 1e-12);
      prev = recall;
    }
    EXPECT_DOUBLE_EQ(prev, 1.0);  // Budget 1500 covers the whole base.
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LearnerSweepTest,
    ::testing::Combine(::testing::Values("ITQ", "PCAH", "SH", "KMH"),
                       ::testing::Values(6, 10, 14),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace gqr
