// Tests for data/synthetic: determinism, shape, clustering structure,
// and profile rules.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "la/vector_ops.h"

namespace gqr {
namespace {

TEST(SyntheticTest, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.n = 123;
  spec.dim = 7;
  Dataset d = GenerateClusteredGaussian(spec);
  EXPECT_EQ(d.size(), 123u);
  EXPECT_EQ(d.dim(), 7u);
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.n = 50;
  spec.dim = 4;
  spec.seed = 9;
  Dataset a = GenerateClusteredGaussian(spec);
  Dataset b = GenerateClusteredGaussian(spec);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(a.Row(static_cast<ItemId>(i))[j],
                      b.Row(static_cast<ItemId>(i))[j]);
    }
  }
  spec.seed = 10;
  Dataset c = GenerateClusteredGaussian(spec);
  bool any_diff = false;
  for (size_t j = 0; j < 4; ++j) {
    if (a.Row(0)[j] != c.Row(0)[j]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, NonNegativeMode) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 6;
  spec.non_negative = true;
  Dataset d = GenerateClusteredGaussian(spec);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < d.dim(); ++j) {
      EXPECT_GE(d.Row(static_cast<ItemId>(i))[j], 0.f);
    }
  }
}

TEST(SyntheticTest, ClusteredDataIsActuallyClustered) {
  // Mean nearest-neighbor distance must be far below the mean pairwise
  // distance — the property the generator exists to provide.
  SyntheticSpec spec;
  spec.n = 400;
  spec.dim = 8;
  spec.num_clusters = 10;
  Dataset d = GenerateClusteredGaussian(spec);
  double nn_sum = 0.0, all_sum = 0.0;
  size_t all_count = 0;
  for (size_t i = 0; i < 100; ++i) {
    double nn = 1e30;
    for (size_t j = 0; j < d.size(); ++j) {
      if (i == j) continue;
      const double dist = L2Distance(d.Row(static_cast<ItemId>(i)),
                                     d.Row(static_cast<ItemId>(j)), 8);
      nn = std::min(nn, dist);
      all_sum += dist;
      ++all_count;
    }
    nn_sum += nn;
  }
  const double mean_nn = nn_sum / 100.0;
  const double mean_all = all_sum / static_cast<double>(all_count);
  EXPECT_LT(mean_nn, 0.3 * mean_all);
}

TEST(SyntheticTest, CodeLengthRule) {
  // m ~= log2(n / 10), the paper's rule.
  EXPECT_EQ(CodeLengthForSize(60000), 13);   // paper CIFAR60K uses ~12-13
  EXPECT_EQ(CodeLengthForSize(1000000), 17); // GIST1M ~16-17
  EXPECT_EQ(CodeLengthForSize(100), 8);      // Clamped low.
  EXPECT_EQ(CodeLengthForSize(1ull << 50), 40);  // Clamped high.
}

TEST(SyntheticTest, PaperProfilesAreOrderedBySize) {
  auto profiles = PaperDatasetProfiles();
  ASSERT_EQ(profiles.size(), 4u);
  for (size_t i = 1; i < profiles.size(); ++i) {
    EXPECT_GT(profiles[i].spec.n, profiles[i - 1].spec.n);
    EXPECT_GE(profiles[i].code_length, profiles[i - 1].code_length);
  }
  for (const auto& p : profiles) {
    EXPECT_EQ(p.code_length, CodeLengthForSize(p.spec.n));
    EXPECT_GT(p.num_queries, 0u);
  }
}

TEST(SyntheticTest, ScaleMultipliesSizes) {
  auto base = PaperDatasetProfiles(1.0);
  auto scaled = PaperDatasetProfiles(2.0);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(scaled[i].spec.n, base[i].spec.n * 2);
  }
}

TEST(SyntheticTest, AppendixProfilesCount) {
  EXPECT_EQ(AppendixDatasetProfiles().size(), 8u);
}

}  // namespace
}  // namespace gqr
