// Round-trip and error-path tests for the .fvecs/.bvecs/.ivecs readers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "data/vecs_io.h"
#include "util/random.h"

namespace gqr {
namespace {

class VecsIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gqr_vecs_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(VecsIoTest, FvecsRoundTrip) {
  Rng rng(41);
  Dataset original(17, 5);
  for (size_t i = 0; i < 17; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      original.MutableRow(static_cast<ItemId>(i))[j] =
          static_cast<float>(rng.Gaussian());
    }
  }
  const std::string path = Path("a.fvecs");
  ASSERT_TRUE(SaveFvecs(original, path).ok());
  Result<Dataset> loaded = LoadFvecs(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 17u);
  ASSERT_EQ(loaded->dim(), 5u);
  for (size_t i = 0; i < 17; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_FLOAT_EQ(loaded->Row(static_cast<ItemId>(i))[j],
                      original.Row(static_cast<ItemId>(i))[j]);
    }
  }
}

TEST_F(VecsIoTest, FvecsMaxVectorsTruncates) {
  Dataset d(10, 3);
  const std::string path = Path("b.fvecs");
  ASSERT_TRUE(SaveFvecs(d, path).ok());
  Result<Dataset> loaded = LoadFvecs(path, 4);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 4u);
}

TEST_F(VecsIoTest, IvecsRoundTrip) {
  std::vector<std::vector<int32_t>> rows = {{1, 2, 3}, {4, 5, 6}};
  const std::string path = Path("c.ivecs");
  ASSERT_TRUE(SaveIvecs(rows, path).ok());
  auto loaded = LoadIvecs(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, rows);
}

TEST_F(VecsIoTest, BvecsReadsBytes) {
  // Hand-write a 2-vector bvecs file of dim 3.
  const std::string path = Path("d.bvecs");
  std::ofstream f(path, std::ios::binary);
  const int32_t dim = 3;
  const uint8_t v1[] = {1, 2, 3};
  const uint8_t v2[] = {200, 0, 255};
  f.write(reinterpret_cast<const char*>(&dim), 4);
  f.write(reinterpret_cast<const char*>(v1), 3);
  f.write(reinterpret_cast<const char*>(&dim), 4);
  f.write(reinterpret_cast<const char*>(v2), 3);
  f.close();
  auto loaded = LoadBvecs(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_FLOAT_EQ(loaded->Row(1)[0], 200.f);
  EXPECT_FLOAT_EQ(loaded->Row(1)[2], 255.f);
}

TEST_F(VecsIoTest, MissingFileIsIOError) {
  Result<Dataset> r = LoadFvecs(Path("does_not_exist.fvecs"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(VecsIoTest, TruncatedRecordIsIOError) {
  const std::string path = Path("trunc.fvecs");
  std::ofstream f(path, std::ios::binary);
  const int32_t dim = 4;
  const float partial[] = {1.f, 2.f};  // Only 2 of 4 floats.
  f.write(reinterpret_cast<const char*>(&dim), 4);
  f.write(reinterpret_cast<const char*>(partial), sizeof(partial));
  f.close();
  EXPECT_FALSE(LoadFvecs(path).ok());
}

TEST_F(VecsIoTest, InconsistentDimsIsIOError) {
  const std::string path = Path("mixed.fvecs");
  std::ofstream f(path, std::ios::binary);
  int32_t dim = 1;
  float v = 0.f;
  f.write(reinterpret_cast<const char*>(&dim), 4);
  f.write(reinterpret_cast<const char*>(&v), 4);
  dim = 2;
  f.write(reinterpret_cast<const char*>(&dim), 4);
  f.write(reinterpret_cast<const char*>(&v), 4);
  f.write(reinterpret_cast<const char*>(&v), 4);
  f.close();
  EXPECT_FALSE(LoadFvecs(path).ok());
}

TEST_F(VecsIoTest, EmptyFileIsIOError) {
  const std::string path = Path("empty.fvecs");
  std::ofstream(path, std::ios::binary).close();
  EXPECT_FALSE(LoadFvecs(path).ok());
}

TEST_F(VecsIoTest, TruncatedHeaderIsIOError) {
  // 1..3 bytes of a second dimension header after one complete record.
  // fread with item semantics silently reports 0 items here, so the
  // reader must count bytes to tell "clean EOF" from "torn header".
  for (int extra = 1; extra <= 3; ++extra) {
    const std::string path = Path("torn" + std::to_string(extra) + ".fvecs");
    std::ofstream f(path, std::ios::binary);
    const int32_t dim = 2;
    const float v[] = {1.f, 2.f};
    f.write(reinterpret_cast<const char*>(&dim), 4);
    f.write(reinterpret_cast<const char*>(v), sizeof(v));
    f.write(reinterpret_cast<const char*>(&dim), extra);
    f.close();
    Result<Dataset> r = LoadFvecs(path);
    ASSERT_FALSE(r.ok()) << "trailing " << extra << " header bytes accepted";
    EXPECT_EQ(r.status().code(), StatusCode::kIOError);
    EXPECT_NE(r.status().message().find("header"), std::string::npos)
        << r.status().ToString();
  }
}

TEST_F(VecsIoTest, NegativeDimIsIOError) {
  const std::string path = Path("negdim.fvecs");
  std::ofstream f(path, std::ios::binary);
  const int32_t dim = -4;
  f.write(reinterpret_cast<const char*>(&dim), 4);
  f.close();
  Result<Dataset> r = LoadFvecs(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(VecsIoTest, HugeDimIsRejectedWithoutAllocating) {
  // dim = INT32_MAX would previously size a d*count product that can
  // overflow (or attempt a giant allocation). The reader caps dim at
  // kMaxVecsDim before touching memory.
  const std::string path = Path("huge.fvecs");
  std::ofstream f(path, std::ios::binary);
  const int32_t dim = std::numeric_limits<int32_t>::max();
  f.write(reinterpret_cast<const char*>(&dim), 4);
  f.close();
  Result<Dataset> r = LoadFvecs(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().message().find("dimension"), std::string::npos)
      << r.status().ToString();
}

TEST_F(VecsIoTest, MemoryLoaderMatchesFileLoader) {
  Rng rng(17);
  Dataset original(9, 4);
  for (size_t i = 0; i < 9; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      original.MutableRow(static_cast<ItemId>(i))[j] =
          static_cast<float>(rng.Gaussian());
    }
  }
  const std::string path = Path("mem.fvecs");
  ASSERT_TRUE(SaveFvecs(original, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  Result<Dataset> from_mem = LoadFvecsFromMemory(bytes.data(), bytes.size());
  ASSERT_TRUE(from_mem.ok()) << from_mem.status().ToString();
  Result<Dataset> from_file = LoadFvecs(path);
  ASSERT_TRUE(from_file.ok());
  ASSERT_EQ(from_mem->size(), from_file->size());
  ASSERT_EQ(from_mem->dim(), from_file->dim());
  for (size_t i = 0; i < from_mem->size(); ++i) {
    for (size_t j = 0; j < from_mem->dim(); ++j) {
      EXPECT_FLOAT_EQ(from_mem->Row(static_cast<ItemId>(i))[j],
                      from_file->Row(static_cast<ItemId>(i))[j]);
    }
  }
}

TEST_F(VecsIoTest, MemoryLoaderRejectsTruncatedRecord) {
  // Header says dim=3 but only two floats follow.
  std::vector<char> image;
  const int32_t dim = 3;
  const float v[] = {1.f, 2.f};
  image.insert(image.end(), reinterpret_cast<const char*>(&dim),
               reinterpret_cast<const char*>(&dim) + 4);
  image.insert(image.end(), reinterpret_cast<const char*>(v),
               reinterpret_cast<const char*>(v) + sizeof(v));
  Result<Dataset> r = LoadFvecsFromMemory(image.data(), image.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(VecsIoTest, MemoryLoaderHonorsMaxVectors) {
  Dataset d(6, 2);
  const std::string path = Path("cap.fvecs");
  ASSERT_TRUE(SaveFvecs(d, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  Result<Dataset> r =
      LoadFvecsFromMemory(bytes.data(), bytes.size(), /*max_vectors=*/2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(VecsIoTest, IvecsMemoryLoaderRoundTrip) {
  std::vector<std::vector<int32_t>> rows = {{9, 8}, {7}, {1, 2, 3}};
  const std::string path = Path("mem.ivecs");
  ASSERT_TRUE(SaveIvecs(rows, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  auto r = LoadIvecsFromMemory(bytes.data(), bytes.size());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, rows);
}

TEST_F(VecsIoTest, BvecsMemoryLoaderReadsBytes) {
  std::vector<char> image;
  const int32_t dim = 2;
  const uint8_t v1[] = {5, 250};
  image.insert(image.end(), reinterpret_cast<const char*>(&dim),
               reinterpret_cast<const char*>(&dim) + 4);
  image.insert(image.end(), v1, v1 + 2);
  auto r = LoadBvecsFromMemory(image.data(), image.size());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_FLOAT_EQ(r->Row(0)[0], 5.f);
  EXPECT_FLOAT_EQ(r->Row(0)[1], 250.f);
}

}  // namespace
}  // namespace gqr
