// Tests for the text reporters (formatting only; printing goes to
// stdout and is smoke-checked for crashes).
#include <gtest/gtest.h>

#include "eval/report.h"

namespace gqr {
namespace {

TEST(ReportTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.23456, 4), "1.2346");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(0.0, 3), "0.000");
  EXPECT_EQ(FormatDouble(1e6, 0), "1000000");
}

TEST(ReportTest, PrintersDoNotCrash) {
  Curve c;
  c.name = "GQR";
  c.points.push_back({.seconds = 0.5,
                      .recall = 0.9,
                      .items_evaluated = 100,
                      .buckets_probed = 10,
                      .precision = 0.2});
  ::testing::internal::CaptureStdout();
  PrintCurves("title", {c});
  PrintRecallItemsCurves("title", {c});
  PrintTable("t", {"a", "bb"}, {{"1", "2"}, {"333", "4"}});
  PrintTable("empty", {}, {});
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("GQR,0.500000,0.9000"), std::string::npos);
  EXPECT_NE(out.find("# title"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(ReportTest, TableColumnsAligned) {
  ::testing::internal::CaptureStdout();
  PrintTable("x", {"col", "c"}, {{"val", "1"}, {"longer_value", "2"}});
  const std::string out = ::testing::internal::GetCapturedStdout();
  // Header cell padded to the widest row value.
  EXPECT_NE(out.find("col           "), std::string::npos);
}

}  // namespace
}  // namespace gqr
