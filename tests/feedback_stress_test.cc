// Concurrency soak of the planner's feedback table: reader threads
// hammer Predict while writer threads Record into a deliberately tiny
// table, forcing constant eviction churn on the shared slots. Under the
// TSan CI leg this is the data-race proof for the SharedMutex protocol
// of plan/feedback_table.h; on every leg it asserts the counters stay
// coherent and predictions never tear (an EWMA read mid-eviction would
// surface as a value no Record ever wrote).
//
// Iteration counts default low so tier-1 ctest stays fast; set
// GQR_STRESS_ITERS (read through util/env) for full-length soak runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/searcher.h"
#include "plan/feedback_table.h"
#include "plan/planner.h"
#include "util/env.h"

namespace gqr {
namespace {

TEST(FeedbackStressTest, ConcurrentRecordPredictUnderEviction) {
  const int64_t iters = StressIters(/*fallback=*/200);
  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 4;
  // 16 slots, 64 distinct keys: every writer pass evicts.
  constexpr uint64_t kKeySpace = 64;

  FeedbackTable::Options opt;
  opt.capacity = 16;
  FeedbackTable table(opt);

  std::atomic<bool> start{false};
  std::atomic<uint64_t> hits{0};
  std::vector<std::thread> threads;

  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int64_t i = 0; i < iters; ++i) {
        const uint64_t key =
            (static_cast<uint64_t>(w) * 31 + static_cast<uint64_t>(i)) %
            kKeySpace;
        // Observations are drawn from [1, 512]; anything outside that
        // range read back by a predictor would be a torn value.
        table.Record(key, static_cast<double>((i % 512) + 1));
      }
    });
  }
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int64_t i = 0; i < iters; ++i) {
        const uint64_t key =
            (static_cast<uint64_t>(r) * 17 + static_cast<uint64_t>(i)) %
            kKeySpace;
        double ewma = 0.0;
        if (table.Predict(key, &ewma)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          // EWMAs of values in [1, 512] stay in [1, 512].
          EXPECT_GE(ewma, 1.0);
          EXPECT_LE(ewma, 512.0);
        }
      }
    });
  }

  start.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  const FeedbackTable::Counters c = table.counters();
  EXPECT_EQ(c.records, kWriters * static_cast<uint64_t>(iters));
  EXPECT_LE(c.entries, table.capacity());
  EXPECT_GT(c.evictions, 0u);  // The pressure actually churned slots.
  EXPECT_GT(hits.load(), 0u);  // And readers actually observed entries.
}

// The same soak through the planner front end: concurrent Plan/Observe
// through the const (shared) interface, as concurrent searches drive it.
TEST(FeedbackStressTest, ConcurrentPlanObserve) {
  const int64_t iters = StressIters(/*fallback=*/200);
  constexpr size_t kThreads = 6;

  PlannerOptions po;
  po.feedback.capacity = 16;
  po.min_budget = 8;
  BudgetPlanner planner(po);

  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int64_t i = 0; i < iters; ++i) {
        const uint64_t key = static_cast<uint64_t>(i % 48);
        const uint64_t ticket =
            static_cast<uint64_t>(t) * static_cast<uint64_t>(iters) +
            static_cast<uint64_t>(i);
        const PlanDecision d = planner.Plan(key, ticket, /*fixed=*/1000);
        EXPECT_GE(d.budget, po.min_budget);
        EXPECT_LE(d.budget, 1000u);
        SearchStats stats;
        stats.items_to_last_improvement =
            static_cast<size_t>((i % 300) + 1);
        stats.terminated = (i % 3) == 0;
        planner.Observe(key, d, stats);
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  const FeedbackTable::Counters c = planner.feedback_counters();
  EXPECT_GT(c.records, 0u);
  EXPECT_LE(c.entries, 16u);
}

}  // namespace
}  // namespace gqr
