// Tests for the Searcher: rerank correctness, budgets, early stop,
// metrics, and the MIH/IMI rerank path.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/gqr_prober.h"
#include "core/qd.h"
#include "core/searcher.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "hash/itq.h"
#include "la/vector_ops.h"

namespace gqr {
namespace {

struct Fixture {
  Dataset base;
  LinearHasher hasher;
  StaticHashTable table;

  static Fixture Make(size_t n = 3000, size_t dim = 12, int m = 10) {
    SyntheticSpec spec;
    spec.n = n;
    spec.dim = dim;
    spec.num_clusters = 30;
    spec.seed = 91;
    Dataset base = GenerateClusteredGaussian(spec);
    ItqOptions opt;
    opt.code_length = m;
    LinearHasher hasher = TrainItq(base, opt);
    StaticHashTable table(hasher.HashDataset(base), m);
    return Fixture{std::move(base), std::move(hasher), std::move(table)};
  }
};

TEST(SearcherTest, UnlimitedBudgetFindsExactNeighbors) {
  Fixture f = Fixture::Make(1000);
  Searcher searcher(f.base);
  const float* query = f.base.Row(17);
  QueryHashInfo info = f.hasher.HashQuery(query);
  GqrProber prober(info);
  SearchOptions opt;
  opt.k = 10;
  opt.max_candidates = 0;  // Probe everything.
  SearchResult r = searcher.Search(query, &prober, f.table, opt);
  Neighbors exact = BruteForceKnn(f.base, query, 10);
  EXPECT_EQ(r.ids, exact.ids);
  EXPECT_EQ(r.stats.items_evaluated, f.base.size());
}

TEST(SearcherTest, ResultsSortedAscendingDistance) {
  Fixture f = Fixture::Make();
  Searcher searcher(f.base);
  const float* query = f.base.Row(3);
  QueryHashInfo info = f.hasher.HashQuery(query);
  GqrProber prober(info);
  SearchOptions opt;
  opt.k = 20;
  opt.max_candidates = 500;
  SearchResult r = searcher.Search(query, &prober, f.table, opt);
  ASSERT_EQ(r.ids.size(), 20u);
  for (size_t i = 1; i < r.distances.size(); ++i) {
    EXPECT_LE(r.distances[i - 1], r.distances[i]);
  }
  // Distances are genuine.
  for (size_t i = 0; i < r.ids.size(); ++i) {
    EXPECT_FLOAT_EQ(r.distances[i],
                    L2Distance(f.base.Row(r.ids[i]), query, f.base.dim()));
  }
}

TEST(SearcherTest, CandidateBudgetStopsEvaluation) {
  Fixture f = Fixture::Make();
  Searcher searcher(f.base);
  const float* query = f.base.Row(5);
  QueryHashInfo info = f.hasher.HashQuery(query);
  GqrProber prober(info);
  SearchOptions opt;
  opt.k = 5;
  opt.max_candidates = 100;
  SearchResult r = searcher.Search(query, &prober, f.table, opt);
  EXPECT_GE(r.stats.items_evaluated, 100u);
  // Overshoot is bounded by one bucket's population.
  EXPECT_LE(r.stats.items_evaluated, 100u + f.table.MaxBucketSize());
}

TEST(SearcherTest, BucketBudgetStopsProbing) {
  Fixture f = Fixture::Make();
  Searcher searcher(f.base);
  const float* query = f.base.Row(6);
  QueryHashInfo info = f.hasher.HashQuery(query);
  GqrProber prober(info);
  SearchOptions opt;
  opt.k = 5;
  opt.max_candidates = 0;
  opt.max_buckets = 7;
  SearchResult r = searcher.Search(query, &prober, f.table, opt);
  EXPECT_EQ(r.stats.buckets_probed, 7u);
}

TEST(SearcherTest, LargerBudgetNeverHurtsRecall) {
  Fixture f = Fixture::Make();
  Searcher searcher(f.base);
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto qid = static_cast<ItemId>(rng.Uniform(f.base.size()));
    const float* query = f.base.Row(qid);
    Neighbors exact = BruteForceKnn(f.base, query, 10);
    double prev_hits = -1.0;
    for (size_t budget : {50u, 200u, 1000u, 3000u}) {
      QueryHashInfo info = f.hasher.HashQuery(query);
      GqrProber prober(info);
      SearchOptions opt;
      opt.k = 10;
      opt.max_candidates = budget;
      SearchResult r = searcher.Search(query, &prober, f.table, opt);
      double hits = 0;
      for (ItemId id : r.ids) {
        if (std::find(exact.ids.begin(), exact.ids.end(), id) !=
            exact.ids.end()) {
          ++hits;
        }
      }
      EXPECT_GE(hits, prev_hits);
      prev_hits = hits;
    }
  }
}

TEST(SearcherTest, EarlyStopPreservesResultsAndSavesWork) {
  Fixture f = Fixture::Make(2000);
  Searcher searcher(f.base);
  const double mu = TheoremTwoMu(f.hasher);
  ASSERT_GT(mu, 0.0);
  const float* query = f.base.Row(42);
  QueryHashInfo info = f.hasher.HashQuery(query);

  SearchOptions no_stop;
  no_stop.k = 10;
  no_stop.max_candidates = 0;
  GqrProber p1(info);
  SearchResult full = searcher.Search(query, &p1, f.table, no_stop);

  SearchOptions stop = no_stop;
  stop.early_stop_mu = mu;
  GqrProber p2(info);
  SearchResult stopped = searcher.Search(query, &p2, f.table, stop);

  // Early stop is sound: same top-k as the exhaustive run.
  EXPECT_EQ(stopped.ids, full.ids);
  // And it should truncate the probe sequence on clustered data.
  EXPECT_LE(stopped.stats.buckets_probed, full.stats.buckets_probed);
  EXPECT_TRUE(stopped.stats.early_stopped);
}

TEST(SearcherTest, RerankCandidatesMatchesManualSort) {
  Fixture f = Fixture::Make(500);
  Searcher searcher(f.base);
  const float* query = f.base.Row(9);
  std::vector<ItemId> candidates = {3, 99, 250, 7, 400, 9, 123};
  SearchOptions opt;
  opt.k = 3;
  opt.max_candidates = 0;
  SearchResult r = searcher.RerankCandidates(query, candidates, opt);
  std::sort(candidates.begin(), candidates.end(),
            [&](ItemId a, ItemId b) {
              return SquaredL2(f.base.Row(a), query, f.base.dim()) <
                     SquaredL2(f.base.Row(b), query, f.base.dim());
            });
  candidates.resize(3);
  EXPECT_EQ(r.ids, candidates);
}

TEST(SearcherTest, AngularMetric) {
  Fixture f = Fixture::Make(500);
  Searcher searcher(f.base);
  const float* query = f.base.Row(11);
  QueryHashInfo info = f.hasher.HashQuery(query);
  GqrProber prober(info);
  SearchOptions opt;
  opt.k = 5;
  opt.max_candidates = 0;
  opt.metric = Metric::kAngular;
  SearchResult r = searcher.Search(query, &prober, f.table, opt);
  ASSERT_EQ(r.ids.size(), 5u);
  for (size_t i = 0; i < r.ids.size(); ++i) {
    EXPECT_FLOAT_EQ(r.distances[i], CosineDistance(f.base.Row(r.ids[i]),
                                                   query, f.base.dim()));
  }
}

TEST(SearcherTest, FewerItemsThanKReturnsAll) {
  Fixture f = Fixture::Make(500);
  Searcher searcher(f.base);
  const float* query = f.base.Row(0);
  QueryHashInfo info = f.hasher.HashQuery(query);
  GqrProber prober(info);
  SearchOptions opt;
  opt.k = 10;
  opt.max_candidates = 3;  // Stops after the first bucket >= 3 items.
  SearchResult r = searcher.Search(query, &prober, f.table, opt);
  EXPECT_LE(r.ids.size(), 10u);
  EXPECT_GE(r.ids.size(), 1u);
}

}  // namespace
}  // namespace gqr
