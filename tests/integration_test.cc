// End-to-end integration tests: the full pipeline (generate -> train ->
// index -> query -> evaluate) across learners and methods, checking the
// paper's qualitative claims on a small scale.
#include <gtest/gtest.h>

#include <memory>

#include "gqr.h"

namespace gqr {
namespace {

struct Pipeline {
  Dataset base;
  Dataset queries;
  std::vector<Neighbors> gt;

  static Pipeline Make(size_t n, size_t dim, size_t nq, size_t k,
                       uint64_t seed) {
    SyntheticSpec spec;
    spec.n = n;
    spec.dim = dim;
    spec.num_clusters = 40;
    spec.seed = seed;
    Dataset all = GenerateClusteredGaussian(spec);
    Rng rng(seed + 1);
    auto [base, queries] = all.SplitQueries(nq, &rng);
    auto gt = ComputeGroundTruth(base, queries, k);
    return Pipeline{std::move(base), std::move(queries), std::move(gt)};
  }
};

// At a moderate candidate budget, every learner + GQR must reach a
// usable recall on clustered data — the "it actually works" test.
class EndToEndLearnerTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EndToEndLearnerTest, GqrReachesUsableRecall) {
  Pipeline p = Pipeline::Make(5000, 16, 30, 10, 131);
  const std::string learner = GetParam();
  std::unique_ptr<BinaryHasher> hasher;
  const int m = 9;  // log2(5000/10) ~ 9.
  if (learner == "ITQ") {
    ItqOptions o;
    o.code_length = m;
    hasher = std::make_unique<LinearHasher>(TrainItq(p.base, o));
  } else if (learner == "PCAH") {
    PcahOptions o;
    o.code_length = m;
    hasher = std::make_unique<LinearHasher>(TrainPcah(p.base, o));
  } else if (learner == "SH") {
    ShOptions o;
    o.code_length = m;
    hasher = std::make_unique<ShHasher>(TrainSh(p.base, o));
  } else {
    KmhOptions o;
    o.code_length = 8;
    o.bits_per_block = 4;
    hasher = std::make_unique<KmhHasher>(TrainKmh(p.base, o));
  }
  StaticHashTable table(hasher->HashDataset(p.base), hasher->code_length());
  Searcher searcher(p.base);
  double recall = 0.0;
  for (size_t q = 0; q < p.queries.size(); ++q) {
    const float* query = p.queries.Row(static_cast<ItemId>(q));
    QueryHashInfo info = hasher->HashQuery(query);
    GqrProber prober(info);
    SearchOptions so;
    so.k = 10;
    so.max_candidates = 500;  // 10% of the base.
    SearchResult r = searcher.Search(query, &prober, table, so);
    recall += RecallAtK(r.ids, p.gt[q], 10);
  }
  recall /= static_cast<double>(p.queries.size());
  EXPECT_GT(recall, 0.5) << learner << " recall too low: " << recall;
}

INSTANTIATE_TEST_SUITE_P(Learners, EndToEndLearnerTest,
                         ::testing::Values("ITQ", "PCAH", "SH", "KMH"));

TEST(EndToEndTest, GqrBeatsHrOnItemsToReachRecall) {
  // The core claim (Figure 8): at equal recall, GQR needs no more
  // evaluated items than HR.
  Pipeline p = Pipeline::Make(8000, 16, 40, 20, 132);
  ItqOptions o;
  o.code_length = 10;
  LinearHasher hasher = TrainItq(p.base, o);
  StaticHashTable table(hasher.HashDataset(p.base), 10);
  HarnessOptions ho;
  ho.k = 20;
  ho.budgets = DefaultBudgets(p.base.size(), 20, 0.5, 8);
  Curve gqr = RunMethodCurve(QueryMethod::kGQR, p.base, p.queries, p.gt,
                             hasher, table, ho);
  Curve hr = RunMethodCurve(QueryMethod::kHR, p.base, p.queries, p.gt,
                            hasher, table, ho);
  const double items_gqr = ItemsAtRecall(gqr, 0.8);
  const double items_hr = ItemsAtRecall(hr, 0.8);
  ASSERT_GT(items_gqr, 0.0);
  ASSERT_GT(items_hr, 0.0);
  EXPECT_LE(items_gqr, items_hr * 1.05)
      << "GQR needed more items than HR to hit 80% recall";
}

TEST(EndToEndTest, GqrEquivalentToQrInResults) {
  // (R1)+(R2): GQR and QR must return identical neighbor sets at any
  // budget measured in buckets over non-empty buckets. We compare via
  // equal candidate budgets.
  Pipeline p = Pipeline::Make(3000, 12, 20, 10, 133);
  ItqOptions o;
  o.code_length = 9;
  LinearHasher hasher = TrainItq(p.base, o);
  StaticHashTable table(hasher.HashDataset(p.base), 9);
  Searcher searcher(p.base);
  for (size_t q = 0; q < p.queries.size(); ++q) {
    const float* query = p.queries.Row(static_cast<ItemId>(q));
    QueryHashInfo info = hasher.HashQuery(query);
    SearchOptions so;
    so.k = 10;
    so.max_candidates = 300;
    QrProber qr(info, table);
    GqrProber gqr(info);
    SearchResult a = searcher.Search(query, &qr, table, so);
    SearchResult b = searcher.Search(query, &gqr, table, so);
    EXPECT_EQ(a.ids, b.ids) << "query " << q;
  }
}

TEST(EndToEndTest, MihMatchesGhrResults) {
  // MIH enumerates candidates in the same ascending-Hamming semantics as
  // GHR, so recall at equal candidate budgets must be comparable.
  Pipeline p = Pipeline::Make(3000, 12, 20, 10, 134);
  ItqOptions o;
  o.code_length = 12;
  LinearHasher hasher = TrainItq(p.base, o);
  std::vector<Code> codes = hasher.HashDataset(p.base);
  StaticHashTable table(codes, 12);
  MihIndex mih(codes, 12, 2);
  Searcher searcher(p.base);
  double recall_mih = 0.0, recall_ghr = 0.0;
  for (size_t q = 0; q < p.queries.size(); ++q) {
    const float* query = p.queries.Row(static_cast<ItemId>(q));
    QueryHashInfo info = hasher.HashQuery(query);
    SearchOptions so;
    so.k = 10;
    so.max_candidates = 400;
    GhrProber ghr(info);
    SearchResult a = searcher.Search(query, &ghr, table, so);
    auto candidates = mih.Collect(info.code, 400, nullptr);
    SearchResult b = searcher.RerankCandidates(query, candidates, so);
    recall_ghr += RecallAtK(a.ids, p.gt[q], 10);
    recall_mih += RecallAtK(b.ids, p.gt[q], 10);
  }
  EXPECT_NEAR(recall_mih, recall_ghr,
              0.15 * static_cast<double>(p.queries.size()));
}

TEST(EndToEndTest, OpqImiPipelineWorks) {
  Pipeline p = Pipeline::Make(4000, 16, 20, 10, 135);
  OpqOptions o;
  o.num_centroids = 32;
  o.iterations = 5;
  OpqModel model = TrainOpq(p.base, o);
  ImiIndex imi(model, p.base);
  Searcher searcher(p.base);
  double recall = 0.0;
  for (size_t q = 0; q < p.queries.size(); ++q) {
    const float* query = p.queries.Row(static_cast<ItemId>(q));
    auto candidates = imi.Collect(query, 400, nullptr);
    SearchOptions so;
    so.k = 10;
    so.max_candidates = 400;
    SearchResult r = searcher.RerankCandidates(query, candidates, so);
    recall += RecallAtK(r.ids, p.gt[q], 10);
  }
  recall /= static_cast<double>(p.queries.size());
  EXPECT_GT(recall, 0.5) << "OPQ+IMI recall too low: " << recall;
}

TEST(EndToEndTest, FullRecallWhenBudgetIsWholeDataset) {
  Pipeline p = Pipeline::Make(2000, 10, 10, 10, 136);
  PcahOptions o;
  o.code_length = 8;
  LinearHasher hasher = TrainPcah(p.base, o);
  StaticHashTable table(hasher.HashDataset(p.base), 8);
  Searcher searcher(p.base);
  for (size_t q = 0; q < p.queries.size(); ++q) {
    const float* query = p.queries.Row(static_cast<ItemId>(q));
    QueryHashInfo info = hasher.HashQuery(query);
    GqrProber prober(info);
    SearchOptions so;
    so.k = 10;
    so.max_candidates = 0;
    SearchResult r = searcher.Search(query, &prober, table, so);
    EXPECT_DOUBLE_EQ(RecallAtK(r.ids, p.gt[q], 10), 1.0);
  }
}

}  // namespace
}  // namespace gqr
