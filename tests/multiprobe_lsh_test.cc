// Tests for E2LSH and Multi-Probe LSH (the §5.3 baseline).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/multiprobe_lsh.h"
#include "core/searcher.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "hash/e2lsh.h"

namespace gqr {
namespace {

Dataset TestData(size_t n = 3000, size_t dim = 12, uint64_t seed = 151) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.num_clusters = 40;
  spec.cluster_stddev = 4.0;
  spec.zipf_exponent = 0.5;
  spec.seed = seed;
  return GenerateClusteredGaussian(spec);
}

TEST(E2lshTest, CodesMatchFloorRule) {
  Dataset data = TestData(200);
  E2lshOptions opt;
  opt.num_hashes = 6;
  opt.bucket_width = 5.0;
  E2lshHasher hasher = TrainE2lsh(data, opt);
  EXPECT_DOUBLE_EQ(hasher.bucket_width(), 5.0);
  for (ItemId i = 0; i < 50; ++i) {
    IntCode code = hasher.HashItem(data.Row(i));
    E2lshQueryInfo info = hasher.HashQuery(data.Row(i));
    EXPECT_EQ(code, info.code);
    for (int h = 0; h < 6; ++h) {
      EXPECT_GE(info.distance_down[h], 0.0);
      EXPECT_LT(info.distance_down[h], 5.0);
    }
  }
}

TEST(E2lshTest, AutoWidthGivesReasonableOccupancy) {
  Dataset data = TestData(5000);
  E2lshOptions opt;
  opt.num_hashes = 8;
  opt.expected_per_bucket = 10.0;
  E2lshHasher hasher = TrainE2lsh(data, opt);
  IntCodeTable table(hasher.HashDataset(data));
  const double avg =
      static_cast<double>(table.num_items()) / table.num_buckets();
  // Calibration is a heuristic; accept a wide band around the target.
  EXPECT_GT(avg, 1.0);
  EXPECT_LT(avg, 500.0);
}

TEST(IntCodeTableTest, ProbeFindsExactCodeGroups) {
  std::vector<IntCode> codes = {{0, 1}, {0, 1}, {2, 3}, {-1, 5}};
  IntCodeTable table(codes);
  EXPECT_EQ(table.num_buckets(), 3u);
  EXPECT_EQ(table.Probe({0, 1}).size(), 2u);
  EXPECT_EQ(table.Probe({2, 3}).size(), 1u);
  EXPECT_EQ(table.Probe({-1, 5}).size(), 1u);
  EXPECT_TRUE(table.Probe({9, 9}).empty());
}

TEST(MultiProbeLshTest, FirstBucketIsQueryCodeThenAscendingScores) {
  Dataset data = TestData(500);
  E2lshOptions opt;
  opt.num_hashes = 6;
  E2lshHasher hasher = TrainE2lsh(data, opt);
  E2lshQueryInfo info = hasher.HashQuery(data.Row(7));
  MultiProbeLshProber prober(info);
  IntCode bucket;
  ASSERT_TRUE(prober.Next(&bucket));
  EXPECT_EQ(bucket, info.code);
  EXPECT_DOUBLE_EQ(prober.last_score(), 0.0);
  double prev = 0.0;
  for (int i = 0; i < 200 && prober.Next(&bucket); ++i) {
    EXPECT_GE(prober.last_score(), prev - 1e-12);
    prev = prober.last_score();
  }
}

TEST(MultiProbeLshTest, EmitsOnlyValidUniqueBuckets) {
  Dataset data = TestData(500);
  E2lshOptions opt;
  opt.num_hashes = 4;
  E2lshHasher hasher = TrainE2lsh(data, opt);
  E2lshQueryInfo info = hasher.HashQuery(data.Row(3));
  MultiProbeLshProber prober(info);
  std::set<IntCode> seen;
  IntCode bucket;
  while (prober.Next(&bucket)) {
    // Every emitted bucket differs from the query code by at most 1 per
    // coordinate (valid perturbation sets only).
    for (size_t i = 0; i < bucket.size(); ++i) {
      EXPECT_LE(std::abs(bucket[i] - info.code[i]), 1);
    }
    EXPECT_TRUE(seen.insert(bucket).second) << "duplicate bucket";
  }
  // All 3^m - ... valid perturbation sets over 2m perturbations:
  // each coordinate independently in {-1, 0, +1} => 3^m buckets.
  EXPECT_EQ(seen.size(), static_cast<size_t>(std::pow(3, 4)));
  // And some invalid sets were generated along the way (the §5.3
  // overhead GQR avoids by construction).
  EXPECT_GT(prober.invalid_generated(), 0u);
}

TEST(MultiProbeLshTest, ScoresMatchSquaredBoundaryDistances) {
  E2lshQueryInfo info;
  info.bucket_width = 10.0;
  info.code = {0, 0};
  info.distance_down = {1.0, 4.0};  // +1 costs: 9, 6.
  MultiProbeLshProber prober(info);
  IntCode bucket;
  ASSERT_TRUE(prober.Next(&bucket));  // Root, score 0.
  // Next scores ascending: 1 (coord0,-1), 16 (coord1,-1), 17, 36, ...
  ASSERT_TRUE(prober.Next(&bucket));
  EXPECT_DOUBLE_EQ(prober.last_score(), 1.0);
  EXPECT_EQ(bucket, (IntCode{-1, 0}));
  ASSERT_TRUE(prober.Next(&bucket));
  EXPECT_DOUBLE_EQ(prober.last_score(), 16.0);
  EXPECT_EQ(bucket, (IntCode{0, -1}));
  ASSERT_TRUE(prober.Next(&bucket));
  EXPECT_DOUBLE_EQ(prober.last_score(), 17.0);
  EXPECT_EQ(bucket, (IntCode{-1, -1}));
  ASSERT_TRUE(prober.Next(&bucket));
  EXPECT_DOUBLE_EQ(prober.last_score(), 36.0);
  EXPECT_EQ(bucket, (IntCode{0, 1}));
}

TEST(MultiProbeLshTest, EndToEndRecall) {
  Dataset all = TestData(4000, 16);
  Rng rng(5);
  auto [base, queries] = all.SplitQueries(20, &rng);
  auto gt = ComputeGroundTruth(base, queries, 10);
  E2lshOptions opt;
  opt.num_hashes = 8;
  E2lshHasher hasher = TrainE2lsh(base, opt);
  IntCodeTable table(hasher.HashDataset(base));
  Searcher searcher(base);
  double recall = 0.0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const float* query = queries.Row(static_cast<ItemId>(q));
    MultiProbeLshProber prober(hasher.HashQuery(query));
    std::vector<ItemId> candidates;
    IntCode bucket;
    while (candidates.size() < 800 && prober.Next(&bucket)) {
      auto span = table.Probe(bucket);
      candidates.insert(candidates.end(), span.begin(), span.end());
    }
    SearchOptions so;
    so.k = 10;
    so.max_candidates = 800;
    SearchResult r = searcher.RerankCandidates(query, candidates, so);
    recall += RecallAtK(r.ids, gt[q], 10);
  }
  recall /= static_cast<double>(queries.size());
  EXPECT_GT(recall, 0.4) << "Multi-Probe LSH recall too low";
}

}  // namespace
}  // namespace gqr
