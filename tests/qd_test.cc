// Tests for quantization distance: Definition 1, the Figure 3 example,
// and the Theorem 2 lower-bound property.
#include <gtest/gtest.h>

#include <cmath>

#include "core/qd.h"
#include "data/synthetic.h"
#include "hash/itq.h"
#include "hash/lsh.h"
#include "index/hash_table.h"
#include "la/vector_ops.h"

namespace gqr {
namespace {

TEST(QdTest, Definition) {
  QueryHashInfo info;
  info.code = 0b00;  // c(q) = (0, 0)
  info.flip_costs = {0.2, 0.8};
  // The Figure 3 example: p(q1) = (-0.2, -0.8).
  EXPECT_DOUBLE_EQ(QuantizationDistance(info, 0b00), 0.0);
  EXPECT_DOUBLE_EQ(QuantizationDistance(info, 0b01), 0.2);
  EXPECT_DOUBLE_EQ(QuantizationDistance(info, 0b10), 0.8);
  EXPECT_DOUBLE_EQ(QuantizationDistance(info, 0b11), 1.0);
}

TEST(QdTest, DistinguishesEqualHammingBuckets) {
  // Buckets (0,1) and (1,0) both have Hamming distance 1 but different QD
  // — the core coarse-grain fix of the paper.
  QueryHashInfo info;
  info.code = 0b00;
  info.flip_costs = {0.2, 0.8};
  EXPECT_EQ(HammingDistance(info.code, 0b01),
            HammingDistance(info.code, 0b10));
  EXPECT_LT(QuantizationDistance(info, 0b01),
            QuantizationDistance(info, 0b10));
}

TEST(QdTest, ZeroForOwnBucketOnly) {
  QueryHashInfo info;
  info.code = 0b1010;
  info.flip_costs = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(QuantizationDistance(info, info.code), 0.0);
  for (Code b = 0; b < 16; ++b) {
    if (b != info.code) {
      EXPECT_GT(QuantizationDistance(info, b), 0.0);
    }
  }
}

TEST(QdTest, AdditiveOverBits) {
  QueryHashInfo info;
  info.code = 0;
  info.flip_costs = {1.0, 2.0, 4.0, 8.0};
  // QD of any bucket equals the sum of the costs of its set bits, so the
  // 16 QDs are exactly the integers 0..15.
  for (Code b = 0; b < 16; ++b) {
    EXPECT_DOUBLE_EQ(QuantizationDistance(info, b),
                     static_cast<double>(b));
  }
}

TEST(QdTest, TheoremTwoMuPositiveForLinearHashers) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 10;
  Dataset data = GenerateClusteredGaussian(spec);
  LshOptions opt;
  opt.code_length = 8;
  LinearHasher hasher = TrainLsh(data, 10, opt);
  const double mu = TheoremTwoMu(hasher);
  EXPECT_GT(mu, 0.0);
  // mu = 1 / (sigma_max sqrt(m)).
  EXPECT_NEAR(mu, 1.0 / (hasher.HashingMatrix().SpectralNorm() *
                         std::sqrt(8.0)),
              1e-9);
}

// Property test of Theorem 2: for every item o in bucket b,
// ||o - q|| >= mu * QD(q, b). Swept across learners and seeds.
class TheoremTwoTest : public ::testing::TestWithParam<int> {};

TEST_P(TheoremTwoTest, QdLowerBoundsItemDistances) {
  const int seed = GetParam();
  SyntheticSpec spec;
  spec.n = 1500;
  spec.dim = 12;
  spec.seed = static_cast<uint64_t>(seed);
  Dataset data = GenerateClusteredGaussian(spec);

  ItqOptions opt;
  opt.code_length = 10;
  opt.seed = static_cast<uint64_t>(seed);
  LinearHasher hasher = TrainItq(data, opt);
  const double mu = TheoremTwoMu(hasher);
  ASSERT_GT(mu, 0.0);

  StaticHashTable table(hasher.HashDataset(data), hasher.code_length());
  // A handful of queries; check the bound against every bucket's items.
  for (ItemId q = 0; q < 5; ++q) {
    const float* query = data.Row(q);
    QueryHashInfo info = hasher.HashQuery(query);
    for (size_t b = 0; b < table.num_buckets(); ++b) {
      const double qd = QuantizationDistance(info, table.bucket_codes()[b]);
      for (ItemId o : table.bucket_items(b)) {
        const double dist = L2Distance(data.Row(o), query, data.dim());
        EXPECT_GE(dist + 1e-4, mu * qd)
            << "Theorem 2 violated: q=" << q << " bucket=" << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremTwoTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace gqr
