// End-to-end tests for compressed rerank mode (DESIGN.md section 14):
// probing with SearchOptions::compressed set scores candidates against
// SQ8/fp16 rows and exact-reranks a k * alpha shortlist, and at the
// default alpha = 4 must return exactly the same top-k (ids and exact
// distances) as the uncompressed path on synthetic clustered data —
// through the single-query Searcher, BatchSearch, ShardedSearch, and
// RerankCandidates entry points, under both metrics.
#include <gtest/gtest.h>

#include <vector>

#include "core/batch_search.h"
#include "core/gqr_prober.h"
#include "core/sharded_search.h"
#include "data/compressed_dataset.h"
#include "data/synthetic.h"
#include "hash/itq.h"

namespace gqr {
namespace {

constexpr int kBits = 10;

struct RerankFixture {
  Dataset base;
  Dataset queries;
  LinearHasher hasher;
  std::vector<Code> codes;
  StaticHashTable table;
  CompressedDataset sq8;
  CompressedDataset fp16;

  static RerankFixture Make() {
    SyntheticSpec spec;
    spec.n = 4000;
    spec.dim = 24;
    spec.num_clusters = 30;
    spec.seed = 611;
    Dataset all = GenerateClusteredGaussian(spec);
    Rng rng(13);
    auto [base, queries] = all.SplitQueries(30, &rng);
    ItqOptions opt;
    opt.code_length = kBits;
    LinearHasher hasher = TrainItq(base, opt);
    std::vector<Code> codes = hasher.HashDataset(base);
    StaticHashTable table(codes, kBits);
    CompressedDataset sq8 =
        CompressedDataset::Encode(base, CompressionKind::kSq8);
    CompressedDataset fp16 =
        CompressedDataset::Encode(base, CompressionKind::kFp16);
    return RerankFixture{std::move(base),  std::move(queries),
                         std::move(hasher), std::move(codes),
                         std::move(table),  std::move(sq8),
                         std::move(fp16)};
  }
};

SearchOptions BaseOptions(Metric metric = Metric::kEuclidean) {
  SearchOptions so;
  so.k = 10;
  so.max_candidates = 600;
  so.metric = metric;
  return so;
}

TEST(CompressedRerankTest, SingleQueryMatchesExactTopK) {
  RerankFixture f = RerankFixture::Make();
  Searcher searcher(f.base);
  for (const Metric metric : {Metric::kEuclidean, Metric::kAngular}) {
    const SearchOptions exact = BaseOptions(metric);
    for (const CompressedDataset* comp : {&f.sq8, &f.fp16}) {
      SearchOptions compressed = exact;
      compressed.compressed = comp;
      compressed.rerank_alpha = 4;
      for (size_t q = 0; q < f.queries.size(); ++q) {
        const float* query = f.queries.Row(static_cast<ItemId>(q));
        GqrProber p1(f.hasher.HashQuery(query));
        const SearchResult want = searcher.Search(query, &p1, f.table, exact);
        GqrProber p2(f.hasher.HashQuery(query));
        const SearchResult got =
            searcher.Search(query, &p2, f.table, compressed);
        EXPECT_EQ(got.ids, want.ids)
            << CompressionKindName(comp->kind()) << " query " << q;
        EXPECT_EQ(got.distances, want.distances)
            << CompressionKindName(comp->kind()) << " query " << q;
        // Both paths consume the identical candidate stream; only the
        // shortlist is reranked.
        EXPECT_EQ(got.stats.items_evaluated, want.stats.items_evaluated);
        EXPECT_GE(got.stats.items_reranked, compressed.k);
        EXPECT_LE(got.stats.items_reranked,
                  compressed.k * compressed.rerank_alpha);
        EXPECT_EQ(want.stats.items_reranked, 0u);
      }
    }
  }
}

TEST(CompressedRerankTest, BatchSearchMatchesExactTopK) {
  RerankFixture f = RerankFixture::Make();
  Searcher searcher(f.base);
  const SearchOptions exact = BaseOptions();
  const auto want = BatchSearch(searcher, f.hasher, f.table, f.queries,
                                QueryMethod::kGQR, exact);
  for (const CompressedDataset* comp : {&f.sq8, &f.fp16}) {
    SearchOptions compressed = exact;
    compressed.compressed = comp;
    compressed.rerank_alpha = 4;
    const auto got = BatchSearch(searcher, f.hasher, f.table, f.queries,
                                 QueryMethod::kGQR, compressed);
    ASSERT_EQ(got.size(), want.size());
    for (size_t q = 0; q < got.size(); ++q) {
      EXPECT_EQ(got[q].ids, want[q].ids)
          << CompressionKindName(comp->kind()) << " query " << q;
      EXPECT_EQ(got[q].distances, want[q].distances)
          << CompressionKindName(comp->kind()) << " query " << q;
    }
  }
}

TEST(CompressedRerankTest, ShardedSearchMatchesExactTopK) {
  RerankFixture f = RerankFixture::Make();
  Searcher searcher(f.base);
  ShardedIndex index(kBits, 4);
  for (size_t id = 0; id < f.base.size(); ++id) {
    ASSERT_TRUE(
        index.Insert(static_cast<ItemId>(id), f.codes[id]).ok());
  }
  const SearchOptions exact = BaseOptions();
  const auto want = ShardedSearch(searcher, f.hasher, index, f.queries,
                                  QueryMethod::kGQR, exact);
  SearchOptions compressed = exact;
  compressed.compressed = &f.sq8;
  const auto got = ShardedSearch(searcher, f.hasher, index, f.queries,
                                 QueryMethod::kGQR, compressed);
  ASSERT_EQ(got.size(), want.size());
  for (size_t q = 0; q < got.size(); ++q) {
    EXPECT_EQ(got[q].ids, want[q].ids) << "query " << q;
    EXPECT_EQ(got[q].distances, want[q].distances) << "query " << q;
  }
}

TEST(CompressedRerankTest, RerankCandidatesMatchesExactTopK) {
  RerankFixture f = RerankFixture::Make();
  Searcher searcher(f.base);
  // Rerank the whole base: the harshest shortlist test — the compressed
  // pass must surface the true top-k out of every item.
  std::vector<ItemId> all(f.base.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<ItemId>(i);
  SearchOptions exact = BaseOptions();
  exact.max_candidates = 0;  // Unlimited.
  for (const CompressedDataset* comp : {&f.sq8, &f.fp16}) {
    SearchOptions compressed = exact;
    compressed.compressed = comp;
    compressed.rerank_alpha = 4;
    for (size_t q = 0; q < 10; ++q) {
      const float* query = f.queries.Row(static_cast<ItemId>(q));
      const SearchResult want = searcher.RerankCandidates(query, all, exact);
      const SearchResult got =
          searcher.RerankCandidates(query, all, compressed);
      EXPECT_EQ(got.ids, want.ids)
          << CompressionKindName(comp->kind()) << " query " << q;
      EXPECT_EQ(got.distances, want.distances)
          << CompressionKindName(comp->kind()) << " query " << q;
      EXPECT_EQ(got.stats.items_reranked,
                compressed.k * compressed.rerank_alpha);
    }
  }
}

TEST(CompressedRerankTest, AlphaOneStillReturnsKResults) {
  // alpha = 1 degenerates to "trust the compressed ranking for member-
  // ship": still k results with exact distances, though ids may differ
  // from the exact path near the boundary. Sanity-check shape only.
  RerankFixture f = RerankFixture::Make();
  Searcher searcher(f.base);
  SearchOptions so = BaseOptions();
  so.compressed = &f.sq8;
  so.rerank_alpha = 1;
  const float* query = f.queries.Row(0);
  GqrProber prober(f.hasher.HashQuery(query));
  const SearchResult r = searcher.Search(query, &prober, f.table, so);
  EXPECT_EQ(r.ids.size(), so.k);
  EXPECT_EQ(r.stats.items_reranked, so.k);
  for (size_t i = 1; i < r.distances.size(); ++i) {
    EXPECT_LE(r.distances[i - 1], r.distances[i]);
  }
}

TEST(CompressedRerankDeathTest, RejectsMismatchedCompressedDataset) {
  RerankFixture f = RerankFixture::Make();
  Searcher searcher(f.base);
  // A compressed encoding of a *different* (smaller) dataset must be
  // rejected up front, not read out of bounds.
  SyntheticSpec spec;
  spec.n = 100;
  spec.dim = 24;
  spec.num_clusters = 4;
  spec.seed = 612;
  const Dataset other = GenerateClusteredGaussian(spec);
  const CompressedDataset wrong =
      CompressedDataset::Encode(other, CompressionKind::kSq8);
  SearchOptions so = BaseOptions();
  so.compressed = &wrong;
  const float* query = f.queries.Row(0);
  EXPECT_DEATH(
      {
        GqrProber prober(f.hasher.HashQuery(query));
        searcher.Search(query, &prober, f.table, so);
      },
      "compressed dataset");
}

}  // namespace
}  // namespace gqr
