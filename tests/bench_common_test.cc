// Unit coverage of the bench-side utilities every BENCH_*.json rests
// on: the nearest-rank Percentile shared by the latency benches and the
// atomic JSON writer that keeps a killed bench run from leaving a
// truncated artifact behind.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"

namespace gqr {
namespace bench {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return testing::TempDir() + name;
}

TEST(PercentileTest, EmptyInputReturnsZero) {
  std::vector<double> samples;
  EXPECT_EQ(Percentile(&samples, 0.5), 0.0);
}

TEST(PercentileTest, SingleSampleIsEveryPercentile) {
  for (double p : {0.0, 0.001, 0.5, 0.99, 0.999, 1.0}) {
    std::vector<double> samples = {7.5};
    EXPECT_EQ(Percentile(&samples, p), 7.5) << "p = " << p;
  }
}

TEST(PercentileTest, NearestRankDefinition) {
  // Nearest-rank over 10 samples: p maps to element ceil(p * 10) - 1 of
  // the sorted order (the smallest value covering at least p of the
  // distribution), regardless of input order.
  std::vector<double> samples = {9, 7, 5, 3, 1, 10, 8, 6, 4, 2};
  std::vector<double> s;
  s = samples;
  EXPECT_EQ(Percentile(&s, 0.5), 5.0);  // ceil(5) -> 5th of 1..10.
  s = samples;
  EXPECT_EQ(Percentile(&s, 0.51), 6.0);  // ceil(5.1) -> 6th.
  s = samples;
  EXPECT_EQ(Percentile(&s, 0.99), 10.0);
  s = samples;
  EXPECT_EQ(Percentile(&s, 0.05), 1.0);  // ceil(0.5) clamps to rank 1.
}

TEST(PercentileTest, ClampsOutOfRangeP) {
  std::vector<double> s = {3.0, 1.0, 2.0};
  EXPECT_EQ(Percentile(&s, -0.5), 1.0);  // p <= 0: the minimum.
  s = {3.0, 1.0, 2.0};
  EXPECT_EQ(Percentile(&s, 2.0), 3.0);  // p >= 1: the maximum.
}

TEST(PercentileTest, TiesCollapseToTheTiedValue) {
  std::vector<double> s(8, 4.0);
  s.push_back(9.0);
  for (double p : {0.1, 0.5, 0.8}) {
    std::vector<double> copy = s;
    EXPECT_EQ(Percentile(&copy, p), 4.0) << "p = " << p;
  }
  std::vector<double> copy = s;
  EXPECT_EQ(Percentile(&copy, 0.999), 9.0);
}

TEST(PercentileTest, P999NeedsTheFullShortArray) {
  // On short arrays every high percentile is the maximum — the p999 the
  // serving benches report must not read past the end or drop to a
  // lower rank.
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{100}}) {
    std::vector<double> s;
    for (size_t i = 0; i < n; ++i) s.push_back(static_cast<double>(i));
    EXPECT_EQ(Percentile(&s, 0.999), static_cast<double>(n - 1))
        << "n = " << n;
  }
}

TEST(WriteFileAtomicTest, RoundTripsContents) {
  const std::string path = TempPath("gqr_atomic_roundtrip.json");
  const std::string contents = "{\"answer\": 42}\n";
  ASSERT_TRUE(WriteFileAtomic(path, contents));
  EXPECT_EQ(ReadAll(path), contents);
  // No temporary file survives a successful publish.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, OverwritesPreviousArtifact) {
  const std::string path = TempPath("gqr_atomic_overwrite.json");
  ASSERT_TRUE(WriteFileAtomic(path, "old"));
  ASSERT_TRUE(WriteFileAtomic(path, "new and longer"));
  EXPECT_EQ(ReadAll(path), "new and longer");
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, EmptyContentsAreValid) {
  const std::string path = TempPath("gqr_atomic_empty.json");
  ASSERT_TRUE(WriteFileAtomic(path, ""));
  EXPECT_EQ(ReadAll(path), "");
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, FailureLeavesExistingFileIntact) {
  // An unwritable destination directory must fail cleanly — and because
  // the write goes through a temp + rename, a previously published file
  // at a *valid* path survives any later failed attempt byte for byte.
  EXPECT_FALSE(
      WriteFileAtomic("/nonexistent-dir/gqr_atomic_fail.json", "x"));

  const std::string path = TempPath("gqr_atomic_keep.json");
  ASSERT_TRUE(WriteFileAtomic(path, "survivor"));
  // Simulate a doomed rewrite by making the rename target a directory
  // the rename cannot replace on any platform: path + "/sub" is invalid
  // because path is a regular file.
  EXPECT_FALSE(WriteFileAtomic(path + "/sub", "clobber"));
  EXPECT_EQ(ReadAll(path), "survivor");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace gqr
