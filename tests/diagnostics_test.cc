// Tests for eval/diagnostics.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/diagnostics.h"
#include "hash/itq.h"
#include "hash/lsh.h"

namespace gqr {
namespace {

TEST(OccupancyTest, UniformCodesScoreHighEntropy) {
  // 1024 items spread evenly over 256 buckets.
  std::vector<Code> codes(1024);
  for (size_t i = 0; i < codes.size(); ++i) codes[i] = i % 256;
  StaticHashTable table(codes, 8);
  OccupancyStats s = ComputeOccupancy(table);
  EXPECT_EQ(s.num_buckets, 256u);
  EXPECT_EQ(s.possible_buckets, 256u);
  EXPECT_DOUBLE_EQ(s.fill_fraction, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_occupancy, 4.0);
  EXPECT_EQ(s.max_occupancy, 4u);
  EXPECT_EQ(s.median_occupancy, 4u);
  EXPECT_NEAR(s.occupancy_entropy, 1.0, 1e-12);
}

TEST(OccupancyTest, SkewedCodesScoreLowEntropyHighTopMass) {
  // 990 items in one bucket, 10 spread elsewhere.
  std::vector<Code> codes(1000, Code{0});
  for (size_t i = 0; i < 10; ++i) codes[i] = static_cast<Code>(i + 1);
  StaticHashTable table(codes, 8);
  OccupancyStats s = ComputeOccupancy(table);
  EXPECT_EQ(s.max_occupancy, 990u);
  EXPECT_LT(s.occupancy_entropy, 0.3);
  EXPECT_GT(s.top1pct_mass, 0.9);
}

TEST(OccupancyTest, EmptyTable) {
  StaticHashTable table(std::vector<Code>{}, 8);
  OccupancyStats s = ComputeOccupancy(table);
  EXPECT_EQ(s.num_buckets, 0u);
  EXPECT_EQ(s.num_items, 0u);
}

TEST(OccupancyTest, ReportMentionsKeyNumbers) {
  std::vector<Code> codes = {0, 0, 1};
  StaticHashTable table(codes, 4);
  const std::string report = OccupancyReport(ComputeOccupancy(table));
  EXPECT_NE(report.find("2 non-empty"), std::string::npos);
  EXPECT_NE(report.find("16 possible"), std::string::npos);
}

TEST(BitBalanceTest, PcaLikeHashersAreRoughlyBalanced) {
  SyntheticSpec spec;
  spec.n = 5000;
  spec.dim = 16;
  spec.num_clusters = 100;
  spec.cluster_stddev = 4.0;
  spec.seed = 181;
  Dataset data = GenerateClusteredGaussian(spec);
  ItqOptions opt;
  opt.code_length = 10;
  LinearHasher hasher = TrainItq(data, opt);
  BitBalanceStats s = ComputeBitBalance(hasher, data);
  ASSERT_EQ(s.ones_fraction.size(), 10u);
  // Mean-centered projections: bits are near-balanced, correlations low.
  EXPECT_LT(s.worst_imbalance, 0.25);
  EXPECT_LT(s.mean_abs_correlation, 0.3);
}

TEST(BitBalanceTest, ConstantBitIsFlagged) {
  // A hasher with an always-one bit: offset pushed far negative on a
  // non-negative dataset.
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 8;
  spec.non_negative = true;
  spec.seed = 182;
  Dataset data = GenerateClusteredGaussian(spec);
  LshOptions opt;
  opt.code_length = 6;
  opt.center_on_mean = false;  // Zero offset: projections of non-negative
                               // data through positive rows stay positive.
  LinearHasher base = TrainLsh(data, 8, opt);
  // Force row 0 of the hashing matrix to all-positive weights.
  Matrix w = base.HashingMatrix();
  for (size_t j = 0; j < w.cols(); ++j) w.At(0, j) = 1.0;
  LinearHasher rigged(std::move(w), std::vector<double>(8, 0.0), "rigged");
  BitBalanceStats s = ComputeBitBalance(rigged, data);
  EXPECT_GT(s.worst_imbalance, 0.45);
  EXPECT_GT(s.ones_fraction[0], 0.95);
}

}  // namespace
}  // namespace gqr
