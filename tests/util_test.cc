// Unit tests for util: Status/Result, Rng, bits, env, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>

#include "util/bits.h"
#include "util/env.h"
#include "util/parallel_for.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace gqr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    GQR_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(1000), b.Uniform(1000));
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(2);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(100, 60);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 60u);
  for (uint32_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleAllIsPermutation) {
  Rng rng(4);
  auto sample = rng.SampleWithoutReplacement(50, 50);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(5);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Discrete(w), 1u);
}

TEST(BitsTest, PopCountAndHamming) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_EQ(HammingDistance(0b1100, 0b1010), 2);
  EXPECT_EQ(HammingDistance(~Code{0}, 0), 64);
}

TEST(BitsTest, LowBitsMask) {
  EXPECT_EQ(LowBitsMask(0), 0u);
  EXPECT_EQ(LowBitsMask(3), 0b111u);
  EXPECT_EQ(LowBitsMask(64), ~Code{0});
}

TEST(BitsTest, GetFlipBit) {
  Code c = 0b1010;
  EXPECT_EQ(GetBit(c, 0), 0);
  EXPECT_EQ(GetBit(c, 1), 1);
  EXPECT_EQ(FlipBit(c, 0), Code{0b1011});
  EXPECT_EQ(FlipBit(FlipBit(c, 5), 5), c);
}

TEST(BitsTest, LowestHighestSetBit) {
  EXPECT_EQ(LowestSetBit(0b1000), 3);
  EXPECT_EQ(HighestSetBit(0b1000), 3);
  EXPECT_EQ(LowestSetBit(0b101000), 3);
  EXPECT_EQ(HighestSetBit(0b101000), 5);
}

TEST(BitsTest, CodeToString) {
  EXPECT_EQ(CodeToString(0b101, 4), "1010");
}

TEST(BitsTest, GosperEnumeratesAllCombinations) {
  // All C(8, 3) = 56 masks with popcount 3, each exactly once, ascending.
  const int m = 8, r = 3;
  std::set<Code> seen;
  Code mask = LowBitsMask(r);
  while ((mask & ~LowBitsMask(m)) == 0) {
    EXPECT_EQ(PopCount(mask), r);
    EXPECT_TRUE(seen.insert(mask).second);
    mask = NextSamePopCount(mask);
  }
  EXPECT_EQ(seen.size(), 56u);
}

TEST(BitsTest, BinomialCoefficient) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(20, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(20, 1), 20.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(20, 10), 184756.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 6), 0.0);
}

TEST(EnvTest, FallbackWhenUnset) {
  ::unsetenv("GQR_TEST_UNSET_VAR");
  EXPECT_EQ(GetEnvInt("GQR_TEST_UNSET_VAR", 42), 42);
  EXPECT_DOUBLE_EQ(GetEnvDouble("GQR_TEST_UNSET_VAR", 1.5), 1.5);
}

TEST(EnvTest, ParsesSetValues) {
  ::setenv("GQR_TEST_VAR", "123", 1);
  EXPECT_EQ(GetEnvInt("GQR_TEST_VAR", 0), 123);
  ::setenv("GQR_TEST_VAR", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("GQR_TEST_VAR", 0.0), 2.5);
  ::setenv("GQR_TEST_VAR", "garbage", 1);
  EXPECT_EQ(GetEnvInt("GQR_TEST_VAR", 7), 7);
  ::unsetenv("GQR_TEST_VAR");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.Submit([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DetachedTasksDrainByDestructor) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(5000);
  ParallelFor(0, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  std::vector<int> hits(10, 0);
  ParallelFor(2, 7, [&](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 5);
  EXPECT_EQ(hits[2], 1);
  EXPECT_EQ(hits[6], 1);
  EXPECT_EQ(hits[7], 0);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool touched = false;
  ParallelFor(5, 5, [&](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

}  // namespace
}  // namespace gqr
