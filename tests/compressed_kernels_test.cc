// Tests for the compressed (asymmetric-distance) kernel layer:
//  - *bitwise* scalar-vs-dispatched equality for every compressed kernel
//    over dims 1..65 (odd tails, every 16/32-block remainder) on
//    unaligned data — the shortlist must not depend on the dispatch
//    level,
//  - fp16 conversion: exact widening round trip over every finite half,
//    round-to-nearest-even bounds, saturation at +-65504, NaN handling,
//    and a bitwise differential against the hardware F16C instructions
//    when the host has them,
//  - SQ8 encode/decode round-trip error bounds (quantization step / 2),
//  - EvalDistancesBatchCompressed against the kernel table under both
//    metrics, and the persisted compressed dataset serving bit-identical
//    distances after a save/load round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/eval_batch.h"
#include "data/compressed_dataset.h"
#include "data/dataset.h"
#include "la/simd_kernels.h"
#include "persist/model_io.h"
#include "util/random.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define GQR_TEST_X86 1
#else
#define GQR_TEST_X86 0
#endif

namespace gqr {
namespace {

void FillRandom(float* out, size_t n, Rng* rng) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(rng->UniformDouble() * 2.0 - 1.0);
  }
}

// Bitwise float equality (EXPECT_FLOAT_EQ admits ULP slack and -0.0 ==
// 0.0; the compressed kernels' contract is identical bit patterns).
::testing::AssertionResult BitEqual(float a, float b) {
  uint32_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

TEST(CompressedKernelsTest, DispatchedBitwiseMatchesScalarOnEveryDim) {
  Rng rng(171);
  const CompressedKernels& k = CompKernels();
  for (size_t dim = 1; dim <= 65; ++dim) {
    // +1 element of padding, then index from 1: the kernels must accept
    // pointers with no 64/32-byte (or even element-size) alignment.
    std::vector<float> qbuf(dim + 1), minbuf(dim + 1), scalebuf(dim + 1);
    std::vector<uint8_t> cbuf(dim + 1);
    std::vector<uint16_t> hbuf(dim + 1);
    FillRandom(qbuf.data(), qbuf.size(), &rng);
    FillRandom(minbuf.data(), minbuf.size(), &rng);
    for (size_t j = 0; j < scalebuf.size(); ++j) {
      scalebuf[j] = static_cast<float>(rng.UniformDouble() / 64.0);
    }
    for (size_t j = 0; j < cbuf.size(); ++j) {
      cbuf[j] = static_cast<uint8_t>(rng.Uniform(256));
      hbuf[j] = FloatToFp16(
          static_cast<float>(rng.UniformDouble() * 2.0 - 1.0));
    }
    const float* q = qbuf.data() + 1;
    const float* min = minbuf.data() + 1;
    const float* scale = scalebuf.data() + 1;
    const uint8_t* code8 = cbuf.data() + 1;
    const uint16_t* code16 = hbuf.data() + 1;

    EXPECT_TRUE(BitEqual(SquaredL2Sq8Scalar(q, code8, min, scale, dim),
                         k.squared_l2_sq8(q, code8, min, scale, dim)))
        << "squared_l2_sq8 dim=" << dim;
    EXPECT_TRUE(BitEqual(DotSq8Scalar(q, code8, min, scale, dim),
                         k.dot_sq8(q, code8, min, scale, dim)))
        << "dot_sq8 dim=" << dim;
    EXPECT_TRUE(BitEqual(SquaredL2Fp16Scalar(q, code16, dim),
                         k.squared_l2_fp16(q, code16, dim)))
        << "squared_l2_fp16 dim=" << dim;
    EXPECT_TRUE(BitEqual(DotFp16Scalar(q, code16, dim),
                         k.dot_fp16(q, code16, dim)))
        << "dot_fp16 dim=" << dim;
  }
}

// The `_pf` variants pace prefetches of an upcoming row while computing
// the current one; prefetch never changes arithmetic, so with any pf —
// null or a live row — they must reproduce the unfused kernel (and thus
// the scalar reference) bit for bit. Runs under every GQR_SIMD level via
// the pinned CI legs.
TEST(CompressedKernelsTest, PrefetchFusedBitwiseMatchesUnfused) {
  Rng rng(172);
  const CompressedKernels& k = CompKernels();
  for (size_t dim = 1; dim <= 65; ++dim) {
    std::vector<float> qbuf(dim + 1), minbuf(dim + 1), scalebuf(dim + 1);
    std::vector<uint8_t> cbuf(dim + 1), pf8(dim + 1);
    std::vector<uint16_t> hbuf(dim + 1), pf16(dim + 1);
    FillRandom(qbuf.data(), qbuf.size(), &rng);
    FillRandom(minbuf.data(), minbuf.size(), &rng);
    for (size_t j = 0; j < scalebuf.size(); ++j) {
      scalebuf[j] = static_cast<float>(rng.UniformDouble() / 64.0);
    }
    for (size_t j = 0; j < cbuf.size(); ++j) {
      cbuf[j] = static_cast<uint8_t>(rng.Uniform(256));
      pf8[j] = static_cast<uint8_t>(rng.Uniform(256));
      hbuf[j] = FloatToFp16(
          static_cast<float>(rng.UniformDouble() * 2.0 - 1.0));
      pf16[j] = FloatToFp16(
          static_cast<float>(rng.UniformDouble() * 2.0 - 1.0));
    }
    const float* q = qbuf.data() + 1;
    const float* min = minbuf.data() + 1;
    const float* scale = scalebuf.data() + 1;
    const uint8_t* code8 = cbuf.data() + 1;
    const uint16_t* code16 = hbuf.data() + 1;

    for (const uint8_t* pf : {static_cast<const uint8_t*>(nullptr),
                              static_cast<const uint8_t*>(pf8.data())}) {
      EXPECT_TRUE(
          BitEqual(k.squared_l2_sq8(q, code8, min, scale, dim),
                   k.squared_l2_sq8_pf(q, code8, min, scale, dim, pf)))
          << "squared_l2_sq8_pf dim=" << dim << " pf=" << (pf != nullptr);
      EXPECT_TRUE(BitEqual(k.dot_sq8(q, code8, min, scale, dim),
                           k.dot_sq8_pf(q, code8, min, scale, dim, pf)))
          << "dot_sq8_pf dim=" << dim << " pf=" << (pf != nullptr);
    }
    for (const uint16_t* pf : {static_cast<const uint16_t*>(nullptr),
                               static_cast<const uint16_t*>(pf16.data())}) {
      EXPECT_TRUE(BitEqual(k.squared_l2_fp16(q, code16, dim),
                           k.squared_l2_fp16_pf(q, code16, dim, pf)))
          << "squared_l2_fp16_pf dim=" << dim << " pf=" << (pf != nullptr);
      EXPECT_TRUE(BitEqual(k.dot_fp16(q, code16, dim),
                           k.dot_fp16_pf(q, code16, dim, pf)))
          << "dot_fp16_pf dim=" << dim << " pf=" << (pf != nullptr);
    }
    EXPECT_TRUE(BitEqual(
        SquaredL2Sq8Scalar(q, code8, min, scale, dim),
        k.squared_l2_sq8_pf(q, code8, min, scale, dim, pf8.data())))
        << "squared_l2_sq8_pf vs scalar reference dim=" << dim;
    EXPECT_TRUE(BitEqual(SquaredL2Fp16Scalar(q, code16, dim),
                         k.squared_l2_fp16_pf(q, code16, dim, pf16.data())))
        << "squared_l2_fp16_pf vs scalar reference dim=" << dim;
  }
}

TEST(Fp16Test, WideningRoundTripsEveryFiniteHalf) {
  // Every finite half is exactly representable as a float, so narrowing
  // the widened value must give back the identical bit pattern. Inf
  // halves are excluded: FloatToFp16 saturates (never emits inf), which
  // is fine because encoded data never contains them.
  for (uint32_t h = 0; h <= 0xFFFFu; ++h) {
    const uint16_t half = static_cast<uint16_t>(h);
    if (((half >> 10) & 0x1Fu) == 0x1Fu) continue;  // inf / NaN.
    EXPECT_EQ(FloatToFp16(Fp16ToFloat(half)), half) << "half=0x" << std::hex
                                                    << h;
  }
}

TEST(Fp16Test, RelativeErrorBoundForNormals) {
  // Round-to-nearest-even over the normal half range: relative error is
  // at most 2^-11 (half a ulp of a 10-bit mantissa).
  Rng rng(172);
  for (int t = 0; t < 20000; ++t) {
    const double mag = std::pow(2.0, rng.UniformDouble() * 30.0 - 14.0);
    const float f =
        static_cast<float>((rng.UniformDouble() * 2.0 - 1.0) * mag);
    if (std::fabs(f) < 6.2e-5f || std::fabs(f) > 65504.f) continue;
    const float back = Fp16ToFloat(FloatToFp16(f));
    EXPECT_LE(std::fabs(back - f), std::fabs(f) * 0x1p-11f)
        << "f=" << f << " back=" << back;
  }
}

TEST(Fp16Test, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(FloatToFp16(1e6f), 0x7BFFu);
  EXPECT_EQ(FloatToFp16(-1e6f), 0xFBFFu);
  EXPECT_EQ(FloatToFp16(std::numeric_limits<float>::infinity()), 0x7BFFu);
  EXPECT_EQ(FloatToFp16(-std::numeric_limits<float>::infinity()), 0xFBFFu);
  EXPECT_FLOAT_EQ(Fp16ToFloat(0x7BFFu), 65504.f);
  // 65520 is the exact halfway point where RNE would round to inf.
  EXPECT_EQ(FloatToFp16(65520.f), 0x7BFFu);
  EXPECT_EQ(FloatToFp16(65519.97f), 0x7BFFu);
  // NaN stays NaN (quiet), never a number.
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(FloatToFp16(qnan) & 0x7C00u, 0x7C00u);
  EXPECT_NE(FloatToFp16(qnan) & 0x3FFu, 0u);
  EXPECT_TRUE(std::isnan(Fp16ToFloat(FloatToFp16(qnan))));
  // Infinity halves still widen to infinity (load path robustness).
  EXPECT_TRUE(std::isinf(Fp16ToFloat(0x7C00u)));
  EXPECT_TRUE(std::isinf(Fp16ToFloat(0xFC00u)));
  // Signed zero round trips with its sign.
  EXPECT_EQ(FloatToFp16(-0.f), 0x8000u);
  EXPECT_EQ(FloatToFp16(0.f), 0x0000u);
}

#if GQR_TEST_X86
// Hardware conversion helpers, compiled for F16C but only executed when
// cpuid reports it (HostHasF16c gate below).
__attribute__((target("f16c"))) float HwHalfToFloat(uint16_t h) {
  return _mm_cvtss_f32(_mm_cvtph_ps(_mm_cvtsi32_si128(h)));
}
__attribute__((target("f16c"))) uint16_t HwFloatToHalf(float f) {
  return static_cast<uint16_t>(_mm_cvtsi128_si32(
      _mm_cvtps_ph(_mm_set_ss(f), _MM_FROUND_TO_NEAREST_INT)));
}

TEST(Fp16Test, MatchesHardwareF16c) {
  if (!HostHasF16c()) GTEST_SKIP() << "host lacks F16C";
  // Widening: bit-identical to VCVTPH2PS for every non-NaN half
  // (hardware quiets signaling NaN payloads; NaNs are compared only for
  // NaN-ness).
  for (uint32_t h = 0; h <= 0xFFFFu; ++h) {
    const uint16_t half = static_cast<uint16_t>(h);
    const float sw = Fp16ToFloat(half);
    const float hw = HwHalfToFloat(half);
    if (std::isnan(hw)) {
      EXPECT_TRUE(std::isnan(sw)) << "half=0x" << std::hex << h;
    } else {
      EXPECT_TRUE(BitEqual(sw, hw)) << "half=0x" << std::hex << h;
    }
  }
  // Narrowing: identical to VCVTPS2PH (round-to-nearest) wherever the
  // hardware result is finite — i.e. everywhere but the saturation zone.
  Rng rng(173);
  for (int t = 0; t < 50000; ++t) {
    const double mag = std::pow(2.0, rng.UniformDouble() * 45.0 - 30.0);
    const float f =
        static_cast<float>((rng.UniformDouble() * 2.0 - 1.0) * mag);
    if (std::fabs(f) >= 65520.f) continue;
    EXPECT_EQ(FloatToFp16(f), HwFloatToHalf(f)) << "f=" << f;
  }
}
#endif  // GQR_TEST_X86

TEST(Sq8Test, RoundTripWithinHalfStep) {
  Rng rng(174);
  const size_t n = 500, dim = 33;
  std::vector<float> data(n * dim);
  for (auto& v : data) {
    v = static_cast<float>(rng.UniformDouble() * 20.0 - 7.0);
  }
  Dataset base(n, dim, std::move(data));
  const CompressedDataset comp =
      CompressedDataset::Encode(base, CompressionKind::kSq8);
  ASSERT_EQ(comp.size(), n);
  ASSERT_EQ(comp.dim(), dim);
  std::vector<float> decoded(dim);
  for (size_t i = 0; i < n; ++i) {
    comp.DecodeRow(static_cast<ItemId>(i), decoded.data());
    const float* row = base.Row(static_cast<ItemId>(i));
    for (size_t j = 0; j < dim; ++j) {
      // Nearest-code quantization: at most half a step away, plus a few
      // ulps of fp slack from the (x - min) / scale arithmetic.
      const float bound = comp.scale()[j] * 0.5f + 1e-4f;
      EXPECT_LE(std::fabs(decoded[j] - row[j]), bound)
          << "row " << i << " dim " << j;
    }
  }
}

TEST(Sq8Test, ConstantDimensionDecodesExactly) {
  const size_t n = 10, dim = 3;
  std::vector<float> data(n * dim);
  for (size_t i = 0; i < n; ++i) {
    data[i * dim + 0] = 2.5f;                          // Constant.
    data[i * dim + 1] = static_cast<float>(i);         // Varying.
    data[i * dim + 2] = -1.25f;                        // Constant.
  }
  Dataset base(n, dim, std::move(data));
  const CompressedDataset comp =
      CompressedDataset::Encode(base, CompressionKind::kSq8);
  EXPECT_EQ(comp.scale()[0], 0.f);
  EXPECT_EQ(comp.scale()[2], 0.f);
  std::vector<float> decoded(dim);
  for (size_t i = 0; i < n; ++i) {
    comp.DecodeRow(static_cast<ItemId>(i), decoded.data());
    EXPECT_EQ(decoded[0], 2.5f);
    EXPECT_EQ(decoded[2], -1.25f);
  }
}

TEST(Fp16DatasetTest, DecodeRowMatchesWidening) {
  Rng rng(175);
  const size_t n = 50, dim = 17;
  std::vector<float> data(n * dim);
  FillRandom(data.data(), data.size(), &rng);
  Dataset base(n, dim, std::move(data));
  const CompressedDataset comp =
      CompressedDataset::Encode(base, CompressionKind::kFp16);
  EXPECT_EQ(comp.bytes_per_row(), 2 * dim);
  std::vector<float> decoded(dim);
  for (size_t i = 0; i < n; ++i) {
    comp.DecodeRow(static_cast<ItemId>(i), decoded.data());
    const uint16_t* code = comp.Fp16Row(static_cast<ItemId>(i));
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_TRUE(BitEqual(decoded[j], Fp16ToFloat(code[j])));
      // Half-precision round trip of in-range data: within 2^-11 rel.
      EXPECT_NEAR(decoded[j], base.Row(static_cast<ItemId>(i))[j],
                  std::fabs(base.Row(static_cast<ItemId>(i))[j]) * 0x1p-11f +
                      1e-6f);
    }
  }
}

// EvalDistancesBatchCompressed must agree with direct kernel-table calls
// (same decode, same cached row norm) under both metrics.
TEST(EvalBatchCompressedTest, MatchesKernelTableBothMetricsBothKinds) {
  Rng rng(176);
  const size_t n = 300, dim = 37;
  std::vector<float> data(n * dim);
  FillRandom(data.data(), data.size(), &rng);
  Dataset base(n, dim, std::move(data));
  std::vector<float> query(dim);
  FillRandom(query.data(), dim, &rng);
  std::vector<ItemId> ids;
  for (size_t i = 0; i < n; i += 3) ids.push_back(static_cast<ItemId>(i));
  std::vector<float> out(ids.size());
  const CompressedKernels& k = CompKernels();

  for (const CompressionKind kind :
       {CompressionKind::kSq8, CompressionKind::kFp16}) {
    const CompressedDataset comp = CompressedDataset::Encode(base, kind);

    const QueryContext euc =
        MakeQueryContext(query.data(), dim, Metric::kEuclidean);
    EvalDistancesBatchCompressed(query.data(), euc, comp, ids.data(),
                                 ids.size(), out.data());
    for (size_t i = 0; i < ids.size(); ++i) {
      const float sq =
          kind == CompressionKind::kSq8
              ? k.squared_l2_sq8(query.data(), comp.Sq8Row(ids[i]),
                                 comp.min(), comp.scale(), dim)
              : k.squared_l2_fp16(query.data(), comp.Fp16Row(ids[i]), dim);
      EXPECT_TRUE(BitEqual(out[i], std::sqrt(sq))) << "id " << ids[i];
    }

    const QueryContext ang =
        MakeQueryContext(query.data(), dim, Metric::kAngular);
    EvalDistancesBatchCompressed(query.data(), ang, comp, ids.data(),
                                 ids.size(), out.data());
    for (size_t i = 0; i < ids.size(); ++i) {
      const float dot =
          kind == CompressionKind::kSq8
              ? k.dot_sq8(query.data(), comp.Sq8Row(ids[i]), comp.min(),
                          comp.scale(), dim)
              : k.dot_fp16(query.data(), comp.Fp16Row(ids[i]), dim);
      const float expected =
          1.f - dot / (std::sqrt(comp.row_norm2(ids[i])) * ang.query_norm);
      EXPECT_TRUE(BitEqual(out[i], expected)) << "id " << ids[i];
    }
  }
}

TEST(EvalBatchCompressedTest, AngularZeroVectorsGiveDistanceOne) {
  const size_t dim = 8;
  Dataset base(3, dim);  // All-zero rows: row_norm2 == 0.
  std::vector<float> query(dim, 0.5f);
  std::vector<ItemId> ids = {0, 1, 2};
  std::vector<float> out(3);
  const QueryContext ctx =
      MakeQueryContext(query.data(), dim, Metric::kAngular);
  for (const CompressionKind kind :
       {CompressionKind::kSq8, CompressionKind::kFp16}) {
    const CompressedDataset comp = CompressedDataset::Encode(base, kind);
    EvalDistancesBatchCompressed(query.data(), ctx, comp, ids.data(), 3,
                                 out.data());
    for (float d : out) EXPECT_FLOAT_EQ(d, 1.f);
  }
}

TEST(CompressedPersistTest, RoundTripServesBitIdenticalDistances) {
  Rng rng(177);
  const size_t n = 120, dim = 29;
  std::vector<float> data(n * dim);
  FillRandom(data.data(), data.size(), &rng);
  Dataset base(n, dim, std::move(data));
  std::vector<float> query(dim);
  FillRandom(query.data(), dim, &rng);
  std::vector<ItemId> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<ItemId>(i);
  std::vector<float> before(n), after(n);
  const QueryContext ctx =
      MakeQueryContext(query.data(), dim, Metric::kEuclidean);

  for (const CompressionKind kind :
       {CompressionKind::kSq8, CompressionKind::kFp16}) {
    const CompressedDataset comp = CompressedDataset::Encode(base, kind);
    const std::string path =
        ::testing::TempDir() + "comp_" +
        std::string(CompressionKindName(kind)) + ".bin";
    ASSERT_TRUE(SaveCompressedDataset(comp, path).ok());
    auto loaded = LoadCompressedDataset(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->kind(), comp.kind());
    EXPECT_EQ(loaded->size(), comp.size());
    EXPECT_EQ(loaded->dim(), comp.dim());
    EXPECT_EQ(loaded->sq8_codes(), comp.sq8_codes());
    EXPECT_EQ(loaded->fp16_codes(), comp.fp16_codes());
    EXPECT_EQ(loaded->min_vec(), comp.min_vec());
    EXPECT_EQ(loaded->scale_vec(), comp.scale_vec());
    EXPECT_EQ(loaded->row_norms2(), comp.row_norms2());
    EXPECT_EQ(loaded->resident_bytes(), comp.resident_bytes());

    EvalDistancesBatchCompressed(query.data(), ctx, comp, ids.data(), n,
                                 before.data());
    EvalDistancesBatchCompressed(query.data(), ctx, *loaded, ids.data(), n,
                                 after.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(BitEqual(before[i], after[i])) << "id " << i;
    }
    std::remove(path.c_str());
  }
}

TEST(CompressedPersistTest, RejectsCorruptKind) {
  Rng rng(178);
  const size_t n = 8, dim = 4;
  std::vector<float> data(n * dim);
  FillRandom(data.data(), data.size(), &rng);
  Dataset base(n, dim, std::move(data));
  const CompressedDataset comp =
      CompressedDataset::Encode(base, CompressionKind::kSq8);
  const std::string path = ::testing::TempDir() + "comp_corrupt.bin";
  ASSERT_TRUE(SaveCompressedDataset(comp, path).ok());
  // Flip the kind field (first u32 after the 8-byte header) to garbage.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8, SEEK_SET);
  const uint32_t bogus = 99;
  std::fwrite(&bogus, sizeof(bogus), 1, f);
  std::fclose(f);
  EXPECT_FALSE(LoadCompressedDataset(path).ok());
  std::remove(path.c_str());
}

TEST(CompressedKernelsTest, ResidentBytesReflectCompressionRatio) {
  Rng rng(179);
  // dim large enough that the per-row norm sidecar (4 bytes/row) does not
  // mask the payload ratio.
  const size_t n = 1000, dim = 128;
  std::vector<float> data(n * dim);
  FillRandom(data.data(), data.size(), &rng);
  Dataset base(n, dim, std::move(data));
  const size_t fp32_bytes = n * dim * sizeof(float);
  const CompressedDataset sq8 =
      CompressedDataset::Encode(base, CompressionKind::kSq8);
  const CompressedDataset fp16 =
      CompressedDataset::Encode(base, CompressionKind::kFp16);
  // Payload plus the small dequantizer/norm sidecars: ~4x and ~2x.
  EXPECT_GT(static_cast<double>(fp32_bytes) /
                static_cast<double>(sq8.resident_bytes()),
            3.8);
  EXPECT_GT(static_cast<double>(fp32_bytes) /
                static_cast<double>(fp16.resident_bytes()),
            1.9);
  EXPECT_EQ(sq8.bytes_per_row(), dim);
  EXPECT_EQ(fp16.bytes_per_row(), 2 * dim);
}

}  // namespace
}  // namespace gqr
