// Tests for HR, GHR, QR probers and the multi-table merge prober.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/ghr_prober.h"
#include "core/gqr_prober.h"
#include "core/hr_prober.h"
#include "core/multi_prober.h"
#include "core/qd.h"
#include "core/qr_prober.h"
#include "index/hash_table.h"
#include "util/random.h"

namespace gqr {
namespace {

QueryHashInfo RandomInfo(int m, uint64_t seed) {
  Rng rng(seed);
  QueryHashInfo info;
  info.code = rng.Uniform(uint64_t{1} << m);
  info.flip_costs.resize(m);
  for (double& c : info.flip_costs) c = rng.UniformDouble();
  return info;
}

StaticHashTable RandomTable(int m, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Code> codes(n);
  for (auto& c : codes) c = rng.Uniform(uint64_t{1} << m);
  return StaticHashTable(codes, m);
}

TEST(HrProberTest, CoversAllBucketsAscendingHamming) {
  const int m = 9;
  StaticHashTable table = RandomTable(m, 1500, 61);
  QueryHashInfo info = RandomInfo(m, 62);
  HrProber prober(info, table);
  std::set<Code> seen;
  ProbeTarget t;
  int prev = -1;
  while (prober.Next(&t)) {
    const int d = HammingDistance(info.code, t.bucket);
    EXPECT_EQ(prober.last_score(), d);
    EXPECT_GE(d, prev);
    prev = d;
    EXPECT_TRUE(seen.insert(t.bucket).second);
    EXPECT_FALSE(table.Probe(t.bucket).empty());  // HR probes only
                                                  // existing buckets.
  }
  EXPECT_EQ(seen.size(), table.num_buckets());
}

TEST(GhrProberTest, EnumeratesWholeCodeSpaceAscending) {
  const int m = 8;
  QueryHashInfo info = RandomInfo(m, 63);
  GhrProber prober(info);
  std::set<Code> seen;
  ProbeTarget t;
  double prev = -1.0;
  while (prober.Next(&t)) {
    const int d = HammingDistance(info.code, t.bucket);
    EXPECT_EQ(prober.last_score(), d);
    EXPECT_GE(prober.last_score(), prev);
    prev = prober.last_score();
    EXPECT_TRUE(seen.insert(t.bucket).second);
  }
  EXPECT_EQ(seen.size(), size_t{1} << m);  // All codes, once each.
}

TEST(GhrProberTest, FirstIsQueryCodeThenDistanceOne) {
  const int m = 12;
  QueryHashInfo info = RandomInfo(m, 64);
  GhrProber prober(info);
  ProbeTarget t;
  ASSERT_TRUE(prober.Next(&t));
  EXPECT_EQ(t.bucket, info.code);
  for (int i = 0; i < m; ++i) {
    ASSERT_TRUE(prober.Next(&t));
    EXPECT_EQ(HammingDistance(info.code, t.bucket), 1);
  }
  ASSERT_TRUE(prober.Next(&t));
  EXPECT_EQ(HammingDistance(info.code, t.bucket), 2);
}

TEST(GhrProberTest, RadiusCountsMatchBinomials) {
  const int m = 10;
  QueryHashInfo info = RandomInfo(m, 65);
  GhrProber prober(info);
  std::map<int, size_t> count_by_radius;
  ProbeTarget t;
  while (prober.Next(&t)) {
    ++count_by_radius[HammingDistance(info.code, t.bucket)];
  }
  for (int r = 0; r <= m; ++r) {
    EXPECT_DOUBLE_EQ(static_cast<double>(count_by_radius[r]),
                     BinomialCoefficient(m, r))
        << "radius " << r;
  }
}

TEST(GhrProberTest, CodeLengthOne) {
  QueryHashInfo info;
  info.code = 1;
  info.flip_costs = {0.4};
  GhrProber prober(info);
  ProbeTarget t;
  ASSERT_TRUE(prober.Next(&t));
  EXPECT_EQ(t.bucket, 1u);
  ASSERT_TRUE(prober.Next(&t));
  EXPECT_EQ(t.bucket, 0u);
  EXPECT_FALSE(prober.Next(&t));
}

TEST(QrProberTest, AscendingQdOverExistingBuckets) {
  const int m = 10;
  StaticHashTable table = RandomTable(m, 3000, 66);
  QueryHashInfo info = RandomInfo(m, 67);
  QrProber prober(info, table);
  ProbeTarget t;
  double prev = -1.0;
  size_t count = 0;
  while (prober.Next(&t)) {
    const double qd = QuantizationDistance(info, t.bucket);
    EXPECT_NEAR(prober.last_score(), qd, 1e-12);
    EXPECT_GE(qd, prev - 1e-12);
    prev = qd;
    ++count;
  }
  EXPECT_EQ(count, table.num_buckets());
}

TEST(HrVsQrTest, SameBucketSetDifferentOrder) {
  // Both rank exactly the set of non-empty buckets; QD refines the order.
  const int m = 8;
  StaticHashTable table = RandomTable(m, 800, 68);
  QueryHashInfo info = RandomInfo(m, 69);
  std::set<Code> hr_set, qr_set;
  ProbeTarget t;
  HrProber hr(info, table);
  while (hr.Next(&t)) hr_set.insert(t.bucket);
  QrProber qr(info, table);
  while (qr.Next(&t)) qr_set.insert(t.bucket);
  EXPECT_EQ(hr_set, qr_set);
}

TEST(MultiProberTest, MergesByScore) {
  // Two GQR probers with different costs: the merged stream must be
  // globally non-decreasing in score and contain both tables' buckets.
  const int m = 6;
  QueryHashInfo a = RandomInfo(m, 70);
  QueryHashInfo b = RandomInfo(m, 71);
  std::vector<std::unique_ptr<BucketProber>> probers;
  probers.push_back(std::make_unique<GqrProber>(a, 0));
  probers.push_back(std::make_unique<GqrProber>(b, 1));
  MultiProber merged(std::move(probers));
  ProbeTarget t;
  double prev = -1.0;
  size_t count = 0;
  std::set<std::pair<uint32_t, Code>> seen;
  while (merged.Next(&t)) {
    EXPECT_GE(merged.last_score(), prev - 1e-12);
    prev = merged.last_score();
    EXPECT_TRUE(seen.insert({t.table, t.bucket}).second);
    ++count;
  }
  EXPECT_EQ(count, 2 * (size_t{1} << m));
}

TEST(MultiProberTest, EmptyProberListExhaustsImmediately) {
  MultiProber merged({});
  ProbeTarget t;
  EXPECT_FALSE(merged.Next(&t));
}

}  // namespace
}  // namespace gqr
