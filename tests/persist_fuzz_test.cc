// Failure-injection tests for persistence: random corruption of valid
// artifact files must yield an error Status or a differing model — never
// a crash, hang, or huge allocation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/synthetic.h"
#include "hash/itq.h"
#include "persist/model_io.h"
#include "util/random.h"

namespace gqr {
namespace {

class PersistFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gqr_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static std::vector<char> ReadAll(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
  }
  static void WriteAll(const std::string& path,
                       const std::vector<char>& bytes) {
    std::ofstream f(path, std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

TEST_F(PersistFuzzTest, RandomByteFlipsNeverCrashLinearHasherLoad) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 10;
  spec.seed = 241;
  Dataset data = GenerateClusteredGaussian(spec);
  ItqOptions opt;
  opt.code_length = 8;
  LinearHasher hasher = TrainItq(data, opt);
  const std::string good = Path("good.gqr");
  ASSERT_TRUE(SaveLinearHasher(hasher, good).ok());
  const std::vector<char> original = ReadAll(good);

  Rng rng(1);
  const std::string mutated = Path("mutated.gqr");
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<char> bytes = original;
    // Flip 1-4 random bytes.
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.Uniform(bytes.size());
      bytes[pos] = static_cast<char>(bytes[pos] ^
                                     static_cast<char>(rng.Uniform(255) + 1));
    }
    WriteAll(mutated, bytes);
    // Must not crash; may fail, or may load (a flipped weight byte still
    // parses). Either outcome is acceptable — we only require safety.
    Result<LinearHasher> r = LoadLinearHasher(mutated);
    if (r.ok()) {
      EXPECT_EQ(r->code_length(), 8);
    }
  }
}

TEST_F(PersistFuzzTest, RandomTruncationsNeverCrashHashTableLoad) {
  Rng rng(2);
  std::vector<Code> codes(300);
  for (auto& c : codes) c = rng.Uniform(256);
  StaticHashTable table(codes, 8);
  const std::string good = Path("table.gqr");
  ASSERT_TRUE(SaveHashTable(table, good).ok());
  const std::vector<char> original = ReadAll(good);

  const std::string mutated = Path("table_trunc.gqr");
  for (int trial = 0; trial < 60; ++trial) {
    const size_t keep = rng.Uniform(original.size());
    WriteAll(mutated,
             std::vector<char>(original.begin(), original.begin() + keep));
    Result<StaticHashTable> r = LoadHashTable(mutated);
    // A strict prefix can never be a complete valid artifact.
    EXPECT_FALSE(r.ok());
  }
}

TEST_F(PersistFuzzTest, GarbageFilesAreRejected) {
  Rng rng(3);
  const std::string path = Path("garbage.gqr");
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<char> bytes(rng.Uniform(2048) + 8);
    for (char& b : bytes) b = static_cast<char>(rng.Uniform(256));
    WriteAll(path, bytes);
    EXPECT_FALSE(LoadLinearHasher(path).ok());
    EXPECT_FALSE(LoadHashTable(path).ok());
    EXPECT_FALSE(LoadOpqModel(path).ok());
    EXPECT_FALSE(LoadShHasher(path).ok());
    EXPECT_FALSE(LoadKmhHasher(path).ok());
  }
}

}  // namespace
}  // namespace gqr
