// Differential tests for the sharded serving path: ShardedSearch over a
// ShardedIndex must return results identical to single-table BatchSearch
// for every querying method and shard count (the shards partition the
// corpus, and probing follows the same global bucket order), plus unit
// coverage of ShardedIndex semantics and the per-shard GQR probe-order
// property (Property 1/2: full ascending-QD enumeration).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/batch_search.h"
#include "core/gqr_prober.h"
#include "core/qd.h"
#include "core/sharded_search.h"
#include "data/synthetic.h"
#include "hash/itq.h"
#include "hash/pcah.h"

namespace gqr {
namespace {

constexpr int kBits = 10;

struct ShardFixture {
  Dataset base;
  Dataset queries;
  LinearHasher hasher;
  std::vector<Code> codes;
  StaticHashTable table;

  static ShardFixture Make(bool use_itq) {
    SyntheticSpec spec;
    spec.n = 3000;
    spec.dim = 12;
    spec.num_clusters = 25;
    spec.seed = use_itq ? 311 : 313;
    Dataset all = GenerateClusteredGaussian(spec);
    Rng rng(7);
    auto [base, queries] = all.SplitQueries(40, &rng);
    LinearHasher hasher = [&] {
      if (use_itq) {
        ItqOptions opt;
        opt.code_length = kBits;
        return TrainItq(base, opt);
      }
      PcahOptions opt;
      opt.code_length = kBits;
      return TrainPcah(base, opt);
    }();
    std::vector<Code> codes = hasher.HashDataset(base);
    StaticHashTable table(codes, kBits);
    return ShardFixture{std::move(base), std::move(queries),
                        std::move(hasher), std::move(codes),
                        std::move(table)};
  }

  void Populate(ShardedIndex* index) const {
    for (size_t id = 0; id < base.size(); ++id) {
      ASSERT_TRUE(
          index->Insert(static_cast<ItemId>(id), codes[id]).ok());
    }
  }
};

void ExpectSameResults(const std::vector<SearchResult>& expected,
                       const std::vector<SearchResult>& actual,
                       const char* label) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t q = 0; q < expected.size(); ++q) {
    EXPECT_EQ(expected[q].ids, actual[q].ids) << label << " query " << q;
    EXPECT_EQ(expected[q].distances, actual[q].distances)
        << label << " query " << q;
    EXPECT_EQ(expected[q].stats.items_evaluated,
              actual[q].stats.items_evaluated)
        << label << " query " << q;
    EXPECT_EQ(expected[q].stats.buckets_probed,
              actual[q].stats.buckets_probed)
        << label << " query " << q;
  }
}

TEST(ShardedSearchTest, MatchesBatchSearchAcrossShardCountsAndMethods) {
  for (bool use_itq : {true, false}) {
    ShardFixture f = ShardFixture::Make(use_itq);
    Searcher searcher(f.base);
    SearchOptions so;
    so.k = 10;
    so.max_candidates = 400;
    for (QueryMethod m :
         {QueryMethod::kGQR, QueryMethod::kQR, QueryMethod::kHR}) {
      const auto expected = BatchSearch(searcher, f.hasher, f.table,
                                        f.queries, m, so);
      for (size_t shards : {size_t{1}, size_t{2}, size_t{7}}) {
        ShardedIndex index(kBits, shards);
        f.Populate(&index);
        const auto got = ShardedSearch(searcher, f.hasher, index,
                                       f.queries, m, so);
        const std::string label = std::string(use_itq ? "itq" : "pcah") +
                                  "/" + QueryMethodName(m) + "/" +
                                  std::to_string(shards) + " shards";
        ExpectSameResults(expected, got, label.c_str());
      }
    }
  }
}

TEST(ShardedSearchTest, FrozenShardsServeIdenticalResults) {
  ShardFixture f = ShardFixture::Make(/*use_itq=*/true);
  Searcher searcher(f.base);
  SearchOptions so;
  so.k = 8;
  so.max_candidates = 300;
  ShardedIndex index(kBits, 4);
  f.Populate(&index);
  const auto live = ShardedSearch(searcher, f.hasher, index, f.queries,
                                  QueryMethod::kGQR, so);
  index.FreezeAll();
  for (size_t s = 0; s < index.num_shards(); ++s) {
    EXPECT_TRUE(index.ShardFrozen(s));
  }
  const auto frozen = ShardedSearch(searcher, f.hasher, index, f.queries,
                                    QueryMethod::kGQR, so);
  ExpectSameResults(live, frozen, "frozen");
  // A mutation invalidates that shard's snapshot; searches fall back to
  // the live table and still see the new item.
  const ItemId extra = static_cast<ItemId>(f.base.size() - 1);
  ASSERT_TRUE(index.Remove(extra, f.codes[extra]).ok());
  ASSERT_TRUE(index.Insert(extra, f.codes[extra]).ok());
  EXPECT_FALSE(index.ShardFrozen(index.ShardOf(extra)));
  const auto after = ShardedSearch(searcher, f.hasher, index, f.queries,
                                   QueryMethod::kGQR, so);
  ExpectSameResults(live, after, "after freeze invalidation");
}

TEST(ShardedSearchTest, GqrProbeOrderMatchesFullQdEnumerationPerShard) {
  // Property 1/2 per shard: against any shard's frozen snapshot, the GQR
  // prober emits every bucket of the 2^m code space exactly once in
  // non-decreasing QD order — sharding changes which buckets are
  // non-empty, never the emission order.
  ShardFixture f = ShardFixture::Make(/*use_itq=*/false);
  ShardedIndex index(kBits, 3);
  f.Populate(&index);
  index.FreezeAll();
  for (int q = 0; q < 3; ++q) {
    const QueryHashInfo info = f.hasher.HashQuery(f.queries.Row(q));
    GqrProber prober(info);
    ProbeTarget target;
    std::set<Code> seen;
    double prev_qd = -1.0;
    size_t nonempty[3] = {0, 0, 0};
    while (prober.Next(&target)) {
      const double qd = QuantizationDistance(info, target.bucket);
      EXPECT_DOUBLE_EQ(qd, prober.last_score());
      EXPECT_GE(qd, prev_qd);
      prev_qd = qd;
      EXPECT_TRUE(seen.insert(target.bucket).second);
      for (size_t s = 0; s < 3; ++s) {
        if (!index.FrozenShard(s)->Probe(target.bucket).empty()) {
          ++nonempty[s];
        }
      }
    }
    EXPECT_EQ(seen.size(), size_t{1} << kBits);
    // The per-shard non-empty bucket counts must sum consistently with
    // the shard tables themselves.
    for (size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(nonempty[s], index.FrozenShard(s)->num_buckets());
    }
  }
}

TEST(ShardedIndexTest, PartitionAndBasicOps) {
  ShardedIndex index(kBits, 5);
  EXPECT_EQ(index.num_shards(), 5u);
  EXPECT_EQ(index.num_items(), 0u);
  for (ItemId id = 0; id < 200; ++id) {
    ASSERT_TRUE(index.Insert(id, id % 64).ok());
    EXPECT_LT(index.ShardOf(id), 5u);
  }
  EXPECT_EQ(index.num_items(), 200u);
  size_t total = 0;
  for (size_t s = 0; s < index.num_shards(); ++s) {
    total += index.shard_size(s);
  }
  EXPECT_EQ(total, 200u);

  // Duplicate insert fails and does not bump the version.
  const uint64_t v = index.shard_version(index.ShardOf(7));
  EXPECT_FALSE(index.Insert(7, 7).ok());
  EXPECT_EQ(index.shard_version(index.ShardOf(7)), v);

  EXPECT_TRUE(index.Contains(9, 9));
  EXPECT_FALSE(index.Contains(9, 10));
  ASSERT_TRUE(index.Remove(9, 9).ok());
  EXPECT_FALSE(index.Contains(9, 9));
  EXPECT_EQ(index.num_items(), 199u);
  EXPECT_FALSE(index.Remove(9, 9).ok());

  // ProbeAll unions the shards: bucket 3 holds ids {3, 67, 131, 195}.
  std::vector<ItemId> items;
  index.ProbeAll(3, &items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, (std::vector<ItemId>{3, 67, 131, 195}));

  // The bucket-code union equals the distinct codes inserted.
  EXPECT_EQ(index.BucketCodeUnion().size(), 64u);
}

TEST(ShardedIndexTest, BucketCodeUnionMatchesUnshardedTable) {
  ShardFixture f = ShardFixture::Make(/*use_itq=*/true);
  for (size_t shards : {size_t{1}, size_t{4}}) {
    ShardedIndex index(kBits, shards);
    f.Populate(&index);
    EXPECT_EQ(index.BucketCodeUnion(), f.table.bucket_codes());
  }
}

}  // namespace
}  // namespace gqr
