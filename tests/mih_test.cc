// Tests for the multi-index hashing baseline: candidates arrive in
// ascending full-code Hamming order, exactly once, and cover everything.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/mih_prober.h"
#include "util/random.h"

namespace gqr {
namespace {

std::vector<Code> RandomCodes(int m, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Code> codes(n);
  for (auto& c : codes) c = rng.Uniform(uint64_t{1} << m);
  return codes;
}

class MihBlockTest : public ::testing::TestWithParam<int> {};

TEST_P(MihBlockTest, CollectsAllItemsInAscendingHammingOrder) {
  const int num_blocks = GetParam();
  const int m = 12;
  auto codes = RandomCodes(m, 800, 81);
  MihIndex index(codes, m, num_blocks);
  Rng rng(82);
  const Code q = rng.Uniform(uint64_t{1} << m);

  auto out = index.Collect(q, codes.size(), nullptr);
  ASSERT_EQ(out.size(), codes.size());

  // Exactly once.
  std::set<ItemId> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), codes.size());

  // Ascending full-code Hamming distance.
  int prev = -1;
  for (ItemId id : out) {
    const int d = HammingDistance(codes[id], q);
    EXPECT_GE(d, prev);
    prev = std::max(prev, d);
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, MihBlockTest, ::testing::Values(1, 2, 3, 4));

TEST(MihTest, BudgetRespected) {
  auto codes = RandomCodes(10, 500, 83);
  MihIndex index(codes, 10, 2);
  auto out = index.Collect(7, 50, nullptr);
  EXPECT_EQ(out.size(), 50u);
}

TEST(MihTest, PrefixMatchesFullEnumeration) {
  // The first-N candidates must be N items of globally minimal Hamming
  // distance (set equality on distance multisets).
  const int m = 10;
  auto codes = RandomCodes(m, 400, 84);
  MihIndex index(codes, m, 2);
  const Code q = 123;
  auto out = index.Collect(q, 100, nullptr);
  std::vector<int> got;
  for (ItemId id : out) got.push_back(HammingDistance(codes[id], q));

  std::vector<int> all;
  for (const Code c : codes) all.push_back(HammingDistance(c, q));
  std::sort(all.begin(), all.end());
  all.resize(100);
  std::vector<int> got_sorted = got;
  std::sort(got_sorted.begin(), got_sorted.end());
  EXPECT_EQ(got_sorted, all);
}

TEST(MihTest, StatsTrackWork) {
  auto codes = RandomCodes(12, 1000, 85);
  MihIndex index(codes, 12, 2);
  MihIndex::ProbeStats stats;
  index.Collect(55, 500, &stats);
  EXPECT_GT(stats.substring_lookups, 0u);
  // With 2 blocks there is overlap, so duplicates are expected on a
  // dataset this size.
  EXPECT_GT(stats.duplicates + stats.distance_filtered, 0u);
}

TEST(MihTest, ExactDuplicateCodes) {
  std::vector<Code> codes(20, Code{9});
  MihIndex index(codes, 6, 2);
  auto out = index.Collect(9, 20, nullptr);
  EXPECT_EQ(out.size(), 20u);
}

TEST(MihTest, ZeroBudget) {
  auto codes = RandomCodes(8, 100, 86);
  MihIndex index(codes, 8, 2);
  EXPECT_TRUE(index.Collect(0, 0, nullptr).empty());
}

}  // namespace
}  // namespace gqr
