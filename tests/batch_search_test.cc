// Tests for the parallel batch-search API.
#include <gtest/gtest.h>

#include "core/batch_search.h"
#include "core/gqr_prober.h"
#include "data/synthetic.h"
#include "hash/itq.h"

namespace gqr {
namespace {

struct BatchFixture {
  Dataset base;
  Dataset queries;
  LinearHasher hasher;
  StaticHashTable table;

  static BatchFixture Make() {
    SyntheticSpec spec;
    spec.n = 3000;
    spec.dim = 10;
    spec.num_clusters = 30;
    spec.seed = 211;
    Dataset all = GenerateClusteredGaussian(spec);
    Rng rng(4);
    auto [base, queries] = all.SplitQueries(50, &rng);
    ItqOptions opt;
    opt.code_length = 8;
    LinearHasher hasher = TrainItq(base, opt);
    StaticHashTable table(hasher.HashDataset(base), 8);
    return BatchFixture{std::move(base), std::move(queries),
                        std::move(hasher), std::move(table)};
  }
};

TEST(BatchSearchTest, MatchesSequentialSearch) {
  BatchFixture f = BatchFixture::Make();
  Searcher searcher(f.base);
  SearchOptions so;
  so.k = 10;
  so.max_candidates = 300;
  auto batch = BatchSearch(searcher, f.hasher, f.table, f.queries,
                           QueryMethod::kGQR, so);
  ASSERT_EQ(batch.size(), f.queries.size());
  for (size_t q = 0; q < f.queries.size(); ++q) {
    const float* query = f.queries.Row(static_cast<ItemId>(q));
    GqrProber prober(f.hasher.HashQuery(query));
    SearchResult seq = searcher.Search(query, &prober, f.table, so);
    EXPECT_EQ(batch[q].ids, seq.ids) << "query " << q;
    EXPECT_EQ(batch[q].stats.items_evaluated, seq.stats.items_evaluated);
  }
}

TEST(BatchSearchTest, WorksForEveryMethod) {
  BatchFixture f = BatchFixture::Make();
  Searcher searcher(f.base);
  SearchOptions so;
  so.k = 5;
  so.max_candidates = 200;
  for (QueryMethod m : {QueryMethod::kHR, QueryMethod::kGHR,
                        QueryMethod::kQR, QueryMethod::kGQR}) {
    auto batch = BatchSearch(searcher, f.hasher, f.table, f.queries, m, so);
    ASSERT_EQ(batch.size(), f.queries.size());
    for (const SearchResult& r : batch) {
      EXPECT_EQ(r.ids.size(), 5u);
      EXPECT_GE(r.stats.items_evaluated, 5u);
    }
  }
}

TEST(BatchSearchTest, EmptyQueryBatch) {
  BatchFixture f = BatchFixture::Make();
  Searcher searcher(f.base);
  SearchOptions so;
  so.k = 5;
  Dataset empty(0, f.base.dim());
  auto batch = BatchSearch(searcher, f.hasher, f.table, empty,
                           QueryMethod::kGQR, so);
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace gqr
