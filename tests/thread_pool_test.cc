// Regression tests for the task-group thread pool: Wait() must cover
// exactly the caller's batch (no cross-talk between concurrent batches),
// and ParallelFor must be safe to overlap across threads and to nest
// from inside a pool worker (the pre-task-group pool deadlocked on both).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace gqr {
namespace {

TEST(TaskGroupTest, WaitDoesNotWaitForOtherGroups) {
  // A single worker, blocked on another group's task that only finishes
  // when we say so. Wait() on our group must help-run our queued tasks
  // inline and return — with pool-global completion tracking this test
  // deadlocks.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<bool> other_done{false};
  ThreadPool::TaskGroup other(pool);
  other.Submit([&] {
    gate.wait();
    other_done.store(true);
  });

  ThreadPool::TaskGroup mine(pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) {
    mine.Submit([&count] { count.fetch_add(1); });
  }
  mine.Wait();
  EXPECT_EQ(count.load(), 16);
  EXPECT_FALSE(other_done.load());

  release.set_value();
  other.Wait();
  EXPECT_TRUE(other_done.load());
}

TEST(TaskGroupTest, DestructorWaits) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  {
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 32; ++i) {
      group.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(TaskGroupTest, SequentialGroupsOnOnePool) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 10; ++i) {
      group.Submit([&count] { count.fetch_add(1); });
    }
    group.Wait();
    ASSERT_EQ(count.load(), 10) << "round " << round;
  }
}

TEST(ParallelForTest, OverlappingCallsFromDistinctThreads) {
  // Two external threads hammer the same pool with independent loops;
  // each call must cover its own range exactly once per round. Under the
  // old pool-global Wait, the calls cross-talked (and nested usage
  // deadlocked); here they share workers but not completion state.
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  constexpr int kRounds = 5;
  std::vector<std::atomic<int>> a(kN), b(kN);
  auto run = [&pool](std::vector<std::atomic<int>>* hits) {
    for (int r = 0; r < kRounds; ++r) {
      ParallelFor(0, hits->size(),
                  [hits](size_t i) { (*hits)[i].fetch_add(1); },
                  /*min_parallel=*/1, &pool);
    }
  };
  std::thread t1(run, &a);
  std::thread t2(run, &b);
  t1.join();
  t2.join();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i].load(), kRounds) << "a[" << i << "]";
    ASSERT_EQ(b[i].load(), kRounds) << "b[" << i << "]";
  }
}

TEST(ParallelForTest, NestedCallRunsInlineWithoutDeadlock) {
  // ParallelFor from inside a pool worker must not block the worker on
  // pool-scheduled work. min_parallel = 1 forces both levels to try to
  // parallelize; the inner call detects it is on a worker and runs
  // inline.
  ThreadPool pool(2);
  constexpr size_t kOuter = 64;
  constexpr size_t kInner = 128;
  std::vector<std::atomic<int>> outer_ok(kOuter);
  ParallelFor(0, kOuter, [&](size_t i) {
    std::atomic<int> inner_hits{0};
    ParallelFor(0, kInner,
                [&inner_hits](size_t) { inner_hits.fetch_add(1); },
                /*min_parallel=*/1, &pool);
    if (inner_hits.load() == static_cast<int>(kInner)) {
      outer_ok[i].fetch_add(1);
    }
  }, /*min_parallel=*/1, &pool);
  for (size_t i = 0; i < kOuter; ++i) {
    ASSERT_EQ(outer_ok[i].load(), 1) << "outer " << i;
  }
}

TEST(ParallelForTest, NestedCallOnSharedPool) {
  // Same nesting through the default shared pool (the configuration
  // library code actually hits: e.g. a batched search calling a parallel
  // training utility).
  constexpr size_t kOuter = 300;
  std::vector<std::atomic<int>> hits(kOuter);
  ParallelFor(0, kOuter, [&](size_t i) {
    std::atomic<int> inner{0};
    ParallelFor(0, 300, [&inner](size_t) { inner.fetch_add(1); },
                /*min_parallel=*/1);
    hits[i].fetch_add(inner.load() == 300 ? 1 : -1000);
  }, /*min_parallel=*/1);
  for (size_t i = 0; i < kOuter; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "outer " << i;
  }
}

TEST(ParallelForTest, ManyConcurrentCallersTerminate) {
  // Thundering-herd smoke test: more caller threads than workers, all
  // looping ParallelFor on the shared pool.
  constexpr int kCallers = 8;
  std::atomic<long> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&total] {
      for (int r = 0; r < 3; ++r) {
        ParallelFor(0, 2000, [&total](size_t) { total.fetch_add(1); },
                    /*min_parallel=*/1);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), static_cast<long>(kCallers) * 3 * 2000);
}

}  // namespace
}  // namespace gqr
