// Lock-graph soak for the runtime inversion detector: the full serving
// stack — QueryService coalescer, ShardedIndex shard locks under
// insert/remove/freeze churn, and the planner's FeedbackTable driven
// from inside the search hot path — runs concurrently, so the detector
// (GQR_VALIDATE builds) observes the library's complete real lock-order
// graph under load and must record it without a false abort. Under the
// TSan CI leg the same soak is the data-race proof for the detector's
// own registry (the spinlocked order graph and the thread-local held
// stacks are exercised from every thread). In plain builds the hooks
// compile out and this is one more serve-under-churn soak.
//
// Iteration counts default low so tier-1 ctest stays fast; set
// GQR_STRESS_ITERS (read through util/env) for full-length soak runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "hash/lsh.h"
#include "plan/planner.h"
#include "serve/query_service.h"
#include "util/env.h"

namespace gqr {
namespace {

constexpr int kBits = 12;
constexpr size_t kShards = 4;

TEST(LockOrderStressTest, FullServingStackRecordsCleanOrderGraph) {
  const int64_t iters = StressIters(/*fallback=*/20);

  SyntheticSpec spec;
  spec.n = 2016;
  spec.dim = 8;
  spec.num_clusters = 12;
  spec.seed = 4242;
  Dataset all = GenerateClusteredGaussian(spec);
  Rng rng(29);
  auto [base, queries] = all.SplitQueries(24, &rng);
  LshOptions opt;
  opt.code_length = kBits;
  const LinearHasher hasher = TrainLsh(base, base.dim(), opt);
  const std::vector<Code> codes = hasher.HashDataset(base);

  const size_t n = base.size();
  const size_t stable = n / 2;
  ShardedIndex index(kBits, kShards);
  for (size_t id = 0; id < stable; ++id) {
    ASSERT_TRUE(index.Insert(static_cast<ItemId>(id), codes[id]).ok());
  }

  // The planner inside the search options puts FeedbackTable
  // TryPredict/TryRecord on every served query, alongside the coalescer
  // and shard locks.
  PlannerOptions po;
  po.feedback.capacity = 32;
  po.min_budget = 32;
  BudgetPlanner planner(po);

  Searcher searcher(base);
  QueryServiceOptions service_opt;
  service_opt.search.k = 8;
  service_opt.search.max_candidates = 200;
  service_opt.search.plan.planner = &planner;
  service_opt.max_batch = 8;
  service_opt.max_linger = std::chrono::microseconds(200);
  service_opt.max_queue = 128;
  QueryService service(searcher, hasher, index, service_opt);

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  // Shard churn: Insert/Remove take writer locks, FreezeShard swaps the
  // frozen snapshot — writer-side edges against the probing readers.
  std::thread writer([&] {
    for (int64_t it = 0; it < iters; ++it) {
      for (size_t id = stable; id < n; ++id) {
        if (!index.Insert(static_cast<ItemId>(id), codes[id]).ok()) {
          violation.store(true);
        }
      }
      (void)index.FreezeShard(static_cast<size_t>(it) % kShards);
      for (size_t id = stable; id < n; ++id) {
        if (!index.Remove(static_cast<ItemId>(id), codes[id]).ok()) {
          violation.store(true);
        }
      }
    }
    stop.store(true, std::memory_order_release);
  });

  // Direct planner pressure from outside the service: the blocking
  // Predict/Record entry points contend with the try- variants the
  // serving threads use.
  std::thread feedback([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      double ewma = 0.0;
      (void)planner.feedback_counters();
      ++i;
      const PlanDecision d = planner.Plan(i % 64, i, /*fixed=*/500);
      SearchStats stats;
      stats.items_to_last_improvement = static_cast<size_t>(i % 100 + 1);
      stats.terminated = true;
      planner.Observe(i % 64, d, stats);
      (void)ewma;
    }
  });

  auto client = [&](unsigned seed) {
    size_t q = seed;
    while (!stop.load(std::memory_order_acquire)) {
      q = (q + 1) % queries.size();
      const QueryService::Deadline deadline =
          QueryService::Clock::now() + std::chrono::milliseconds(50);
      Response resp =
          service.Submit(queries.Row(static_cast<ItemId>(q)), 0, deadline)
              .Get();
      if (resp.status != RequestStatus::kOk) continue;
      const SearchResult& r = resp.result;
      for (size_t i = 0; i < r.ids.size(); ++i) {
        if (r.ids[i] >= n || !std::isfinite(r.distances[i])) {
          violation.store(true);
        }
      }
    }
  };
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < 3; ++c) clients.emplace_back(client, c);

  writer.join();
  feedback.join();
  for (auto& thread : clients) thread.join();
  service.Shutdown();

  EXPECT_FALSE(violation.load());
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, stats.completed + stats.expired);
}

}  // namespace
}  // namespace gqr
