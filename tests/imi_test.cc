// Tests for the inverted multi-index: CSR layout, multi-sequence order,
// coverage, budget.
#include <gtest/gtest.h>

#include <memory>
#include <algorithm>
#include <set>

#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "vq/imi.h"

namespace gqr {
namespace {

// The ImiIndex borrows the OpqModel, so the fixture heap-allocates both
// to keep the borrowed pointer stable across the factory return.
struct ImiFixture {
  Dataset base;
  std::unique_ptr<OpqModel> model;
  std::unique_ptr<ImiIndex> index;

  static ImiFixture Make(size_t n = 1500, size_t dim = 8, int k = 8) {
    ImiFixture f;
    SyntheticSpec spec;
    spec.n = n;
    spec.dim = dim;
    spec.num_clusters = 20;
    spec.seed = 111;
    f.base = GenerateClusteredGaussian(spec);
    OpqOptions opt;
    opt.num_centroids = k;
    opt.iterations = 3;
    f.model = std::make_unique<OpqModel>(TrainOpq(f.base, opt));
    f.index = std::make_unique<ImiIndex>(*f.model, f.base);
    return f;
  }
};

TEST(ImiTest, FullBudgetCoversAllItemsExactlyOnce) {
  ImiFixture f = ImiFixture::Make();
  auto out = f.index->Collect(f.base.Row(0), f.base.size(), nullptr);
  ASSERT_EQ(out.size(), f.base.size());
  std::set<ItemId> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), f.base.size());
}

TEST(ImiTest, CellsVisitedInAscendingDistance) {
  ImiFixture f = ImiFixture::Make();
  const float* query = f.base.Row(5);
  // Recompute the cell-distance of each emitted candidate and check the
  // sequence is non-decreasing.
  std::vector<double> rotated(f.model->dim());
  f.model->RotateInto(query, rotated.data());
  std::vector<std::vector<double>> tables;
  f.model->codebook().ComputeDistanceTables(rotated.data(), &tables);

  auto out = f.index->Collect(query, f.base.size(), nullptr);
  double prev = -1.0;
  for (ItemId id : out) {
    auto code = f.model->EncodeItem(f.base.Row(id));
    const double cell_d = tables[0][code[0]] + tables[1][code[1]];
    EXPECT_GE(cell_d, prev - 1e-9);
    prev = std::max(prev, cell_d);
  }
}

TEST(ImiTest, OwnCellEmittedFirst) {
  ImiFixture f = ImiFixture::Make();
  const float* query = f.base.Row(33);
  auto out = f.index->Collect(query, 1, nullptr);
  ASSERT_EQ(out.size(), 1u);
  // The first candidate shares the query's own (nearest) cell.
  auto q_code = f.model->EncodeItem(query);
  auto c_code = f.model->EncodeItem(f.base.Row(out[0]));
  EXPECT_EQ(q_code, c_code);
}

TEST(ImiTest, BudgetRespected) {
  ImiFixture f = ImiFixture::Make();
  auto out = f.index->Collect(f.base.Row(1), 37, nullptr);
  EXPECT_EQ(out.size(), 37u);
}

TEST(ImiTest, StatsCountCells) {
  ImiFixture f = ImiFixture::Make();
  ImiIndex::ProbeStats stats;
  f.index->Collect(f.base.Row(2), 200, &stats);
  EXPECT_GT(stats.cells_visited, 0u);
  EXPECT_LE(stats.cells_nonempty, stats.cells_visited);
  EXPECT_LE(stats.cells_visited, f.index->num_cells());
}

TEST(ImiTest, NonEmptyCellAccounting) {
  ImiFixture f = ImiFixture::Make();
  EXPECT_GT(f.index->num_nonempty_cells(), 0u);
  EXPECT_LE(f.index->num_nonempty_cells(), f.index->num_cells());
  EXPECT_EQ(f.index->num_cells(), 64u);  // 8 x 8.
}


TEST(ImiAdcTest, ResidualsImproveRankingOverCellOrder) {
  // With residual codes, SearchAdc's top-k should contain at least as
  // many of the true nearest neighbors as taking the first k candidates
  // in raw cell order.
  ImiFixture f = ImiFixture::Make(2000, 8, 8);
  ASSERT_TRUE(f.index->has_residuals());
  size_t adc_hits = 0, cell_hits = 0;
  const size_t k = 10, budget = 400;
  for (ItemId q = 0; q < 20; ++q) {
    const float* query = f.base.Row(q);
    Neighbors exact = BruteForceKnn(f.base, query, k);
    std::set<ItemId> truth(exact.ids.begin(), exact.ids.end());
    auto adc = f.index->SearchAdc(query, k, budget);
    auto cells = f.index->Collect(query, budget, nullptr);
    cells.resize(std::min(cells.size(), k));
    for (ItemId id : adc) adc_hits += truth.count(id);
    for (ItemId id : cells) cell_hits += truth.count(id);
  }
  EXPECT_GE(adc_hits + 5, cell_hits);  // Not worse (statistical slack).
  EXPECT_GT(adc_hits, 0u);
}

TEST(ImiAdcTest, RespectsKAndBudget) {
  ImiFixture f = ImiFixture::Make();
  auto out = f.index->SearchAdc(f.base.Row(0), 7, 300);
  EXPECT_LE(out.size(), 7u);
  EXPECT_GE(out.size(), 1u);
  std::set<ItemId> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), out.size());
}

TEST(ImiAdcTest, SelfQueryRanksSelfFirst) {
  // The query is an indexed item: its ADC distance is the pure
  // quantization error of its own codes, which should be the minimum.
  ImiFixture f = ImiFixture::Make(1000, 8, 8);
  size_t self_first = 0;
  for (ItemId q = 0; q < 30; ++q) {
    auto out = f.index->SearchAdc(f.base.Row(q), 5, f.base.size());
    ASSERT_FALSE(out.empty());
    if (out[0] == q) ++self_first;
    // Self must at least be in the top 5.
    EXPECT_NE(std::find(out.begin(), out.end(), q), out.end())
        << "query " << q;
  }
  // ADC estimates collide under quantization error, so "self strictly
  // first" is only a majority expectation.
  EXPECT_GE(self_first, 10u);
}

TEST(ImiAdcTest, NoResidualModeStillWorks) {
  SyntheticSpec spec;
  spec.n = 800;
  spec.dim = 8;
  spec.num_clusters = 15;
  spec.seed = 112;
  Dataset base = GenerateClusteredGaussian(spec);
  OpqOptions opt;
  opt.num_centroids = 8;
  opt.iterations = 2;
  OpqModel model = TrainOpq(base, opt);
  ImiOptions io;
  io.residual_centroids = 0;
  ImiIndex index(model, base, io);
  EXPECT_FALSE(index.has_residuals());
  auto out = index.SearchAdc(base.Row(3), 5, 200);
  EXPECT_LE(out.size(), 5u);
  EXPECT_GE(out.size(), 1u);
}

}  // namespace
}  // namespace gqr
