// Scratch-reuse and batch-parallelism tests:
//  - the Searcher hot path performs zero heap allocations per query once
//    its SearchScratch and result buffers are warm,
//  - BatchSearch returns identical results with 1 thread and N threads,
//  - the epoch-stamped visited set survives epoch wraparound.
//
// Allocation accounting replaces the global operator new/delete for the
// whole test binary; the replacements only count, so every other test is
// unaffected.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/batch_search.h"
#include "core/gqr_prober.h"
#include "core/searcher.h"
#include "core/validators.h"
#include "data/synthetic.h"
#include "hash/itq.h"
#include "util/thread_pool.h"

namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

void* operator new(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

// GCC's -Wmismatched-new-delete sees through the replacement operator
// new above (it inlines the malloc) and flags these free() calls at
// every optimized call site; pairing malloc/free across replaced global
// operators is exactly what the standard requires of a replacement.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace gqr {
namespace {

size_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

struct Fixture {
  Dataset base;
  Dataset queries;
  LinearHasher hasher;
  StaticHashTable table;

  static Fixture Make() {
    SyntheticSpec spec;
    spec.n = 2500;
    spec.dim = 16;
    spec.num_clusters = 25;
    spec.seed = 77;
    Dataset all = GenerateClusteredGaussian(spec);
    Rng rng(9);
    auto [base, queries] = all.SplitQueries(40, &rng);
    ItqOptions opt;
    opt.code_length = 8;
    LinearHasher hasher = TrainItq(base, opt);
    StaticHashTable table(hasher.HashDataset(base), 8);
    return Fixture{std::move(base), std::move(queries), std::move(hasher),
                   std::move(table)};
  }
};

// A prober that replays a fixed bucket sequence. Probers like GQR
// legitimately allocate while expanding their generation frontier; this
// one lets the test isolate the *Searcher's* allocations.
class FixedSequenceProber : public BucketProber {
 public:
  explicit FixedSequenceProber(const std::vector<Code>* buckets)
      : buckets_(buckets) {}

  bool Next(ProbeTarget* target) override {
    if (pos_ >= buckets_->size()) return false;
    target->table = 0;
    target->bucket = (*buckets_)[pos_++];
    return true;
  }

  double last_score() const override { return static_cast<double>(pos_); }

 private:
  const std::vector<Code>* buckets_;
  size_t pos_ = 0;
};

TEST(ScratchReuseTest, SearchHotPathIsAllocationFreeAfterWarmup) {
  Fixture f = Fixture::Make();
  Searcher searcher(f.base);
  SearchOptions so;
  so.k = 10;
  so.max_candidates = 400;

  // Every non-empty bucket, replayed for each query.
  const std::vector<Code> buckets = f.table.bucket_codes();

  SearchScratch scratch;
  std::vector<SearchResult> results(f.queries.size());

  auto run_all = [&] {
    for (size_t q = 0; q < f.queries.size(); ++q) {
      FixedSequenceProber prober(&buckets);
      searcher.SearchInto(f.queries.Row(static_cast<ItemId>(q)), &prober,
                          f.table, so, &scratch, &results[q]);
    }
  };

  run_all();  // Warmup: scratch + per-result capacity grow to steady state.
  std::vector<SearchResult> expected = results;

  const size_t before = AllocCount();
  run_all();
  EXPECT_EQ(AllocCount(), before)
      << "Searcher hot path allocated after warmup";

  // Reuse changed nothing about the answers.
  for (size_t q = 0; q < results.size(); ++q) {
    EXPECT_EQ(results[q].ids, expected[q].ids) << "query " << q;
    EXPECT_EQ(results[q].distances, expected[q].distances) << "query " << q;
  }
}

TEST(ScratchReuseTest, RerankHotPathIsAllocationFreeAfterWarmup) {
  Fixture f = Fixture::Make();
  Searcher searcher(f.base);
  SearchOptions so;
  so.k = 10;
  so.max_candidates = 0;
  so.metric = Metric::kAngular;  // Covers the fused cosine path too.

  std::vector<ItemId> candidates;
  for (size_t i = 0; i < f.base.size(); i += 2) {
    candidates.push_back(static_cast<ItemId>(i));
  }

  SearchScratch scratch;
  SearchResult result;
  searcher.RerankCandidatesInto(f.queries.Row(0), candidates, so, &scratch,
                                &result);
  const size_t before = AllocCount();
  for (int pass = 0; pass < 3; ++pass) {
    searcher.RerankCandidatesInto(f.queries.Row(0), candidates, so, &scratch,
                                  &result);
  }
  EXPECT_EQ(AllocCount(), before);
  EXPECT_EQ(result.ids.size(), 10u);
}

TEST(ScratchReuseTest, BatchSearchDeterministicAcrossThreadCounts) {
  Fixture f = Fixture::Make();
  Searcher searcher(f.base);
  SearchOptions so;
  so.k = 10;
  so.max_candidates = 300;

  ThreadPool one(1);
  ThreadPool many(4);
  auto serial = BatchSearch(searcher, f.hasher, f.table, f.queries,
                            QueryMethod::kGQR, so, &one);
  auto parallel = BatchSearch(searcher, f.hasher, f.table, f.queries,
                              QueryMethod::kGQR, so, &many);
  auto shared = BatchSearch(searcher, f.hasher, f.table, f.queries,
                            QueryMethod::kGQR, so);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), shared.size());
  for (size_t q = 0; q < serial.size(); ++q) {
    EXPECT_EQ(serial[q].ids, parallel[q].ids) << "query " << q;
    EXPECT_EQ(serial[q].distances, parallel[q].distances) << "query " << q;
    EXPECT_EQ(serial[q].ids, shared[q].ids) << "query " << q;
    EXPECT_EQ(serial[q].stats.items_evaluated,
              parallel[q].stats.items_evaluated);
  }
}

TEST(ScratchReuseTest, BatchSearchIntoReusesResultStorage) {
  Fixture f = Fixture::Make();
  Searcher searcher(f.base);
  SearchOptions so;
  so.k = 5;
  so.max_candidates = 200;

  std::vector<SearchResult> results;
  BatchSearchInto(searcher, f.hasher, f.table, f.queries, QueryMethod::kGQR,
                  so, &results);
  std::vector<SearchResult> first = results;
  BatchSearchInto(searcher, f.hasher, f.table, f.queries, QueryMethod::kGQR,
                  so, &results);
  ASSERT_EQ(results.size(), f.queries.size());
  for (size_t q = 0; q < results.size(); ++q) {
    EXPECT_EQ(results[q].ids, first[q].ids) << "query " << q;
  }
}

TEST(ScratchReuseTest, HashingHotPathsAreAllocationFreeAfterWarmup) {
  Fixture f = Fixture::Make();

  // Warmup: thread-local projection buffers and this query's flip_costs
  // reach steady-state capacity.
  QueryHashInfo info;
  f.hasher.HashQueryInto(f.queries.Row(0), &info);
  Code code = f.hasher.HashItem(f.base.Row(0));

  const size_t before = AllocCount();
  for (int pass = 0; pass < 5; ++pass) {
    f.hasher.HashQueryInto(f.queries.Row(0), &info);
    code ^= f.hasher.HashItem(f.base.Row(0));
  }
  EXPECT_EQ(AllocCount(), before)
      << "HashQueryInto/HashItem allocated after warmup";
  (void)code;
}

TEST(ScratchReuseTest, HashQueryBatchIsAllocationFreeAfterWarmup) {
  Fixture f = Fixture::Make();

  std::vector<QueryHashInfo> infos(f.queries.size());
  std::vector<double> scratch;
  auto run = [&] {
    f.hasher.HashQueryBatch(f.queries.Row(0), f.queries.size(),
                            f.queries.dim(), &scratch, infos.data());
  };
  run();  // Warmup: scratch + every info's flip_costs grow once.

  const size_t before = AllocCount();
  run();
  EXPECT_EQ(AllocCount(), before) << "HashQueryBatch allocated after warmup";
}

TEST(ScratchReuseTest, GqrProberProbesWithoutReallocation) {
  Fixture f = Fixture::Make();
  QueryHashInfo info = f.hasher.HashQuery(f.queries.Row(0));

  // Construction reserves the heap (and builds perm_/sorted_costs_);
  // draining every bucket of an 8-bit code stays within that reserve, so
  // Next() itself must never touch the allocator.
  GqrProber prober(info);
  const size_t before = AllocCount();
  ProbeTarget target;
  size_t emitted = 0;
  while (prober.Next(&target)) ++emitted;
  EXPECT_EQ(emitted, size_t{1} << info.code_length());
#if GQR_VALIDATE_ENABLED
  // Validating builds trade the zero-allocation contract for Property 1
  // tracking (the validator's seen-set allocates per emission); the
  // contract itself is only asserted in non-validating builds.
  (void)before;
#else
  EXPECT_EQ(AllocCount(), before) << "GqrProber::Next allocated mid-stream";
#endif
}

TEST(ScratchReuseTest, VisitedSetSurvivesEpochWrap) {
  SearchScratch s;
  s.BeginQuery(/*base_size=*/8, /*need_visited=*/true);
  EXPECT_FALSE(s.CheckAndMarkSeen(3));
  EXPECT_TRUE(s.CheckAndMarkSeen(3));

  // Force the epoch counter to its max: the next query wraps it, which
  // must reset every stamp instead of aliasing old ones.
  s.epoch = 0xffffffffu;
  s.visited.assign(s.visited.size(), 0xffffffffu);  // All "seen" at max.
  s.BeginQuery(8, true);
  EXPECT_EQ(s.epoch, 1u);
  EXPECT_FALSE(s.CheckAndMarkSeen(3));
  EXPECT_TRUE(s.CheckAndMarkSeen(3));
  EXPECT_FALSE(s.CheckAndMarkSeen(7));
}

TEST(ScratchReuseTest, ScratchGrowsAcrossDatasets) {
  // One scratch reused against a larger base must expand its visited set.
  SearchScratch s;
  s.BeginQuery(4, true);
  EXPECT_FALSE(s.CheckAndMarkSeen(3));
  s.BeginQuery(16, true);
  EXPECT_FALSE(s.CheckAndMarkSeen(15));
  EXPECT_TRUE(s.CheckAndMarkSeen(15));
  // Previous-query stamps are invalidated by the epoch bump alone.
  EXPECT_FALSE(s.CheckAndMarkSeen(3));
}

}  // namespace
}  // namespace gqr
