// Tests for the C2LSH collision-counting baseline (§7 related work).
#include <gtest/gtest.h>

#include <set>

#include "core/c2lsh.h"
#include "core/searcher.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace gqr {
namespace {

Dataset TestData(size_t n = 3000, size_t dim = 12, uint64_t seed = 221) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.num_clusters = 30;
  spec.cluster_stddev = 4.0;
  spec.zipf_exponent = 0.5;
  spec.seed = seed;
  return GenerateClusteredGaussian(spec);
}

TEST(C2lshTest, CollectsRequestedCandidates) {
  Dataset base = TestData();
  C2lshOptions opt;
  opt.num_hashes = 16;
  C2lshIndex index(base, opt);
  EXPECT_EQ(index.num_hashes(), 16);
  EXPECT_EQ(index.num_items(), base.size());
  C2lshIndex::ProbeStats stats;
  auto out = index.Collect(base.Row(0), 200, &stats);
  EXPECT_GE(out.size(), 200u);
  EXPECT_GE(stats.final_level, 1);
  EXPECT_GT(stats.count_updates, 0u);
  std::set<ItemId> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), out.size()) << "duplicate candidates";
}

TEST(C2lshTest, UnboundedBudgetEventuallyCoversEverything) {
  Dataset base = TestData(800, 8, 222);
  C2lshOptions opt;
  opt.num_hashes = 12;
  C2lshIndex index(base, opt);
  auto out = index.Collect(base.Row(5), base.size(), nullptr);
  // Every item collides on every axis at a high-enough level, so all
  // items must eventually cross the threshold.
  EXPECT_EQ(out.size(), base.size());
}

TEST(C2lshTest, SelfIsEarlyCandidate) {
  Dataset base = TestData(2000, 10, 223);
  C2lshOptions opt;
  opt.num_hashes = 24;
  C2lshIndex index(base, opt);
  for (ItemId q = 0; q < 20; ++q) {
    auto out = index.Collect(base.Row(q), 50, nullptr);
    // The query is an indexed item: it collides with itself on all m
    // axes at level 1, so it must be among the earliest emissions.
    EXPECT_NE(std::find(out.begin(), out.end(), q), out.end())
        << "query " << q << " not found in its own candidate set";
  }
}

TEST(C2lshTest, EndToEndRecallBeatsRandom) {
  Dataset all = TestData(4000, 16, 224);
  Rng rng(6);
  auto [base, queries] = all.SplitQueries(20, &rng);
  auto gt = ComputeGroundTruth(base, queries, 10);
  C2lshOptions opt;
  opt.num_hashes = 24;
  C2lshIndex index(base, opt);
  Searcher searcher(base);
  double recall = 0.0;
  const size_t budget = 400;  // 10% of the base.
  for (size_t q = 0; q < queries.size(); ++q) {
    const float* query = queries.Row(static_cast<ItemId>(q));
    auto candidates = index.Collect(query, budget, nullptr);
    SearchOptions so;
    so.k = 10;
    so.max_candidates = budget;
    recall += RecallAtK(searcher.RerankCandidates(query, candidates, so).ids,
                        gt[q], 10);
  }
  recall /= static_cast<double>(queries.size());
  // Random 10% sampling would land ~0.1; collision counting must do far
  // better.
  EXPECT_GT(recall, 0.4);
}

TEST(C2lshTest, ZeroBudget) {
  Dataset base = TestData(200, 8, 225);
  C2lshOptions opt;
  opt.num_hashes = 8;
  C2lshIndex index(base, opt);
  EXPECT_TRUE(index.Collect(base.Row(0), 0, nullptr).empty());
}

}  // namespace
}  // namespace gqr
