// Unit tests for la/matrix and la/vector_ops.
#include <gtest/gtest.h>

#include <cmath>

#include "la/matrix.h"
#include "la/vector_ops.h"
#include "util/random.h"

namespace gqr {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(MatrixTest, IdentityMultiplyIsIdentity) {
  Rng rng(1);
  Matrix a = Matrix::RandomGaussian(4, 4, &rng);
  Matrix i = Matrix::Identity(4);
  EXPECT_LT(a.Multiply(i).MaxAbsDiff(a), 1e-12);
  EXPECT_LT(i.Multiply(a).MaxAbsDiff(a), 1e-12);
}

TEST(MatrixTest, MultiplyMatchesManual) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = a.Multiply(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(MatrixTest, TransposedMultiplyVariantsAgree) {
  Rng rng(2);
  Matrix a = Matrix::RandomGaussian(5, 3, &rng);
  Matrix b = Matrix::RandomGaussian(5, 4, &rng);
  // a^T b == Transposed(a).Multiply(b)
  EXPECT_LT(a.TransposedMultiply(b).MaxAbsDiff(
                a.Transposed().Multiply(b)),
            1e-12);
  Matrix c = Matrix::RandomGaussian(6, 3, &rng);
  // a c^T == a.Multiply(Transposed(c))
  EXPECT_LT(a.MultiplyTransposed(c).MaxAbsDiff(
                a.Multiply(c.Transposed())),
            1e-12);
}

TEST(MatrixTest, MatVecMatchesMultiply) {
  Rng rng(3);
  Matrix a = Matrix::RandomGaussian(4, 6, &rng);
  std::vector<double> x(6);
  for (auto& v : x) v = rng.Gaussian();
  std::vector<double> y = a.MatVec(x);
  Matrix xm(6, 1, std::vector<double>(x.begin(), x.end()));
  Matrix ym = a.Multiply(xm);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(y[i], ym.At(i, 0), 1e-12);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a(1, 2, {1, 2});
  Matrix b(1, 2, {10, 20});
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum.At(0, 1), 22.0);
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff.At(0, 0), 9.0);
  a *= 3.0;
  EXPECT_DOUBLE_EQ(a.At(0, 1), 6.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix a(1, 2, {3, 4});
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, RandomOrthogonalIsOrthogonal) {
  Rng rng(4);
  Matrix q = Matrix::RandomOrthogonal(8, &rng);
  Matrix qtq = q.TransposedMultiply(q);
  EXPECT_LT(qtq.MaxAbsDiff(Matrix::Identity(8)), 1e-10);
}

TEST(MatrixTest, SpectralNormOfDiagonal) {
  Matrix d(3, 3);
  d.At(0, 0) = 2.0;
  d.At(1, 1) = -7.0;
  d.At(2, 2) = 3.0;
  EXPECT_NEAR(d.SpectralNorm(), 7.0, 1e-6);
}

TEST(MatrixTest, SpectralNormBoundsMatVec) {
  // ||A x|| <= sigma_max ||x|| for random A, x — the Theorem 1 statement.
  Rng rng(5);
  Matrix a = Matrix::RandomGaussian(6, 9, &rng);
  const double sigma = a.SpectralNorm();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(9);
    for (auto& v : x) v = rng.Gaussian();
    std::vector<double> y = a.MatVec(x);
    EXPECT_LE(Norm(y.data(), y.size()),
              sigma * Norm(x.data(), x.size()) + 1e-9);
  }
}

TEST(MatrixTest, RowColSlice) {
  Matrix a(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Matrix rows = a.RowSlice(1, 3);
  ASSERT_EQ(rows.rows(), 2u);
  EXPECT_DOUBLE_EQ(rows.At(0, 0), 4.0);
  Matrix cols = a.ColSlice(1, 2);
  ASSERT_EQ(cols.cols(), 1u);
  EXPECT_DOUBLE_EQ(cols.At(2, 0), 8.0);
}

TEST(VectorOpsTest, SquaredL2AndDistance) {
  const float a[] = {1.f, 2.f, 3.f, 4.f, 5.f};
  const float b[] = {1.f, 2.f, 3.f, 4.f, 5.f};
  EXPECT_FLOAT_EQ(SquaredL2(a, b, 5), 0.f);
  const float c[] = {0.f, 0.f, 0.f, 0.f, 0.f};
  EXPECT_FLOAT_EQ(SquaredL2(a, c, 5), 55.f);
  EXPECT_FLOAT_EQ(L2Distance(a, c, 5), std::sqrt(55.f));
}

TEST(VectorOpsTest, DotAndNorm) {
  const float a[] = {3.f, 4.f};
  const float b[] = {1.f, 2.f};
  EXPECT_FLOAT_EQ(Dot(a, b, 2), 11.f);
  EXPECT_FLOAT_EQ(Norm(a, 2), 5.f);
}

TEST(VectorOpsTest, CosineDistance) {
  const float a[] = {1.f, 0.f};
  const float b[] = {0.f, 1.f};
  EXPECT_NEAR(CosineDistance(a, b, 2), 1.f, 1e-6);
  EXPECT_NEAR(CosineDistance(a, a, 2), 0.f, 1e-6);
  const float zero[] = {0.f, 0.f};
  EXPECT_FLOAT_EQ(CosineDistance(a, zero, 2), 1.f);
}

TEST(VectorOpsTest, NormalizeInPlace) {
  std::vector<double> v = {3.0, 4.0};
  NormalizeInPlace(&v);
  EXPECT_NEAR(Norm(v.data(), 2), 1.0, 1e-12);
  std::vector<double> zero = {0.0, 0.0};
  NormalizeInPlace(&zero);  // Must not divide by zero.
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(VectorOpsTest, FloatAndDoubleKernelsAgree) {
  Rng rng(6);
  std::vector<float> af(37), bf(37);
  std::vector<double> ad(37), bd(37);
  for (size_t i = 0; i < af.size(); ++i) {
    ad[i] = rng.Gaussian();
    bd[i] = rng.Gaussian();
    af[i] = static_cast<float>(ad[i]);
    bf[i] = static_cast<float>(bd[i]);
  }
  EXPECT_NEAR(SquaredL2(af.data(), bf.data(), 37),
              SquaredL2(ad.data(), bd.data(), 37), 1e-3);
  EXPECT_NEAR(Dot(af.data(), bf.data(), 37),
              Dot(ad.data(), bd.data(), 37), 1e-3);
}

}  // namespace
}  // namespace gqr
