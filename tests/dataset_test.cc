// Tests for data/dataset.
#include <gtest/gtest.h>

#include "data/dataset.h"

namespace gqr {
namespace {

Dataset Sequential(size_t n, size_t dim) {
  Dataset d(n, dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      d.MutableRow(static_cast<ItemId>(i))[j] =
          static_cast<float>(i * dim + j);
    }
  }
  return d;
}

TEST(DatasetTest, ShapeAndAccess) {
  Dataset d = Sequential(4, 3);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.dim(), 3u);
  EXPECT_FLOAT_EQ(d.Row(2)[1], 7.f);
}

TEST(DatasetTest, TakesOwnershipOfData) {
  std::vector<float> v = {1.f, 2.f, 3.f, 4.f};
  Dataset d(2, 2, std::move(v));
  EXPECT_FLOAT_EQ(d.Row(1)[0], 3.f);
}

TEST(DatasetTest, SplitQueriesPartitions) {
  Dataset d = Sequential(100, 2);
  Rng rng(5);
  auto [base, queries] = d.SplitQueries(10, &rng);
  EXPECT_EQ(base.size(), 90u);
  EXPECT_EQ(queries.size(), 10u);
  EXPECT_EQ(base.dim(), 2u);
  // Every original row appears exactly once across the two sets.
  std::multiset<float> original, combined;
  for (size_t i = 0; i < 100; ++i) original.insert(d.Row(i)[0]);
  for (size_t i = 0; i < 90; ++i) combined.insert(base.Row(i)[0]);
  for (size_t i = 0; i < 10; ++i) combined.insert(queries.Row(i)[0]);
  EXPECT_EQ(original, combined);
}

TEST(DatasetTest, GatherPicksRows) {
  Dataset d = Sequential(10, 2);
  Dataset g = d.Gather({3, 7, 3});
  ASSERT_EQ(g.size(), 3u);
  EXPECT_FLOAT_EQ(g.Row(0)[0], 6.f);
  EXPECT_FLOAT_EQ(g.Row(1)[0], 14.f);
  EXPECT_FLOAT_EQ(g.Row(2)[0], 6.f);
}

TEST(DatasetTest, SummaryMentionsShape) {
  Dataset d = Sequential(5, 7);
  EXPECT_NE(d.Summary().find("n=5"), std::string::npos);
  EXPECT_NE(d.Summary().find("dim=7"), std::string::npos);
}

}  // namespace
}  // namespace gqr
