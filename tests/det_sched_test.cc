// Unit tests for the deterministic schedule explorer (util/det_sched.h).
//
// The replay-token codec and the degenerate single-threaded exploration
// run in every build. The multi-threaded explorations — mutual exclusion,
// deadlock discovery, condvar wake-ups, the virtual clock — need the
// GQR_MODELCHECK hooks in util/sync.h and util/thread.h and are compiled
// only into the modelcheck CI leg's build.
//
// Tests that expect a finding deliberately leak the parked scenario
// threads (a found deadlock cannot unwind); each leaks two tiny stacks,
// which is fine for a test process and is the explorer's documented
// contract.

#include "util/det_sched.h"

#include <gtest/gtest.h>

#include <vector>

#if defined(GQR_MODELCHECK)
#include "util/atomic.h"
#include "util/clock.h"
#include "util/sync.h"
#include "util/thread.h"
#endif

namespace gqr {
namespace {

TEST(ReplayToken, RoundTrip) {
  const std::vector<int> choices = {0, 0, 0, 1, 0, 2, 2, 2, 2, 1};
  const std::string token = det::EncodeToken(choices);
  EXPECT_EQ(token, "t0x3.t1.t0.t2x4.t1");
  std::vector<int> back;
  ASSERT_TRUE(det::DecodeToken(token, &back));
  EXPECT_EQ(back, choices);
}

TEST(ReplayToken, EmptyAndSingle) {
  EXPECT_EQ(det::EncodeToken({}), "");
  EXPECT_EQ(det::EncodeToken({7}), "t7");
  std::vector<int> back;
  ASSERT_TRUE(det::DecodeToken("t7", &back));
  EXPECT_EQ(back, std::vector<int>{7});
}

TEST(ReplayToken, RejectsGarbage) {
  std::vector<int> back;
  EXPECT_FALSE(det::DecodeToken("x0", &back));
  EXPECT_FALSE(det::DecodeToken("t", &back));
  EXPECT_FALSE(det::DecodeToken("t0x", &back));
  EXPECT_FALSE(det::DecodeToken("t0.", &back));
  EXPECT_FALSE(det::DecodeToken("t0..t1", &back));
  EXPECT_FALSE(det::DecodeToken("t0x0", &back));
}

TEST(DetSched, SingleThreadedBodyExploresOneSchedule) {
  int runs = 0;
  det::Options opts;
  det::Stats stats = det::Explore([&] { ++runs; }, opts);
  EXPECT_FALSE(stats.found) << stats.finding_message;
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.schedules, 1u);
  EXPECT_EQ(runs, 1);
}

TEST(DetSched, InactiveOutsideExploration) {
  EXPECT_FALSE(det::Active());
  std::chrono::steady_clock::time_point tp;
  EXPECT_FALSE(det::VirtualNow(&tp));
}

#if defined(GQR_MODELCHECK)

TEST(DetSched, MutualExclusionHoldsAcrossAllSchedules) {
  det::Options opts;
  det::Stats stats = det::Explore(
      [] {
        Mutex mu;
        int counter = 0;
        auto bump = [&] {
          for (int i = 0; i < 2; ++i) {
            MutexLock lock(mu);
            ++counter;
          }
        };
        Thread a(bump);
        Thread b(bump);
        a.Join();
        b.Join();
        det::ModelAssert(counter == 4, "lost update under mutex");
      },
      opts);
  EXPECT_FALSE(stats.found) << stats.finding_kind << ": "
                            << stats.finding_message;
  EXPECT_TRUE(stats.complete);
  EXPECT_GT(stats.schedules, 1u);  // Interleavings were actually explored.
}

TEST(DetSched, FindsAbBaDeadlockAndReplaysIt) {
  auto scenario = [] {
    Mutex a, b;
    Thread t1([&] {
      MutexLock la(a);
      MutexLock lb(b);
    });
    Thread t2([&] {
      MutexLock lb(b);
      MutexLock la(a);
    });
    t1.Join();
    t2.Join();
  };
  det::Options opts;
  det::Stats stats = det::Explore(scenario, opts);
  ASSERT_TRUE(stats.found);
  EXPECT_EQ(stats.finding_kind, "deadlock");
  ASSERT_FALSE(stats.finding_token.empty());

  // The printed token must deterministically reproduce the finding.
  det::Options replay;
  replay.replay_token = stats.finding_token;
  det::Stats again = det::Explore(scenario, replay);
  ASSERT_TRUE(again.found);
  EXPECT_EQ(again.finding_kind, "deadlock");
}

TEST(DetSched, CondVarHandoffCompletes) {
  det::Options opts;
  det::Stats stats = det::Explore(
      [] {
        Mutex mu;
        CondVar cv;
        bool ready = false;
        Thread consumer([&] {
          MutexLock lock(mu);
          while (!ready) cv.Wait(mu);
        });
        {
          MutexLock lock(mu);
          ready = true;
        }
        cv.NotifyOne();
        consumer.Join();
      },
      opts);
  EXPECT_FALSE(stats.found) << stats.finding_kind << ": "
                            << stats.finding_message;
  EXPECT_TRUE(stats.complete);
}

TEST(DetSched, LostWakeupWithoutTimeoutIsADeadlockFinding) {
  // Bare wait with the notify *before* the wait in some schedules: the
  // schedule where the consumer checks `ready` after the producer set it
  // completes, but the untimed wait after a missed notify deadlocks.
  det::Stats stats = det::Explore(
      [] {
        Mutex mu;
        CondVar cv;
        bool ready = false;
        Thread consumer([&] {
          MutexLock lock(mu);
          if (!ready) cv.Wait(mu);  // BUG: no generation stamp, no loop.
        });
        {
          MutexLock lock(mu);
          ready = true;
        }
        cv.NotifyOne();  // May fire before the consumer ever waits...
        consumer.Join();
      },
      det::Options{});
  // ...except the wait is guarded by the `ready` re-check under the same
  // lock here, so this *particular* shape is actually safe: the explorer
  // must prove it clean, not flag it.
  EXPECT_FALSE(stats.found) << stats.finding_kind << ": "
                            << stats.finding_message;
  EXPECT_TRUE(stats.complete);
}

TEST(DetSched, TimedWaitTimesOutDeterministically) {
  det::Options opts;
  det::Stats stats = det::Explore(
      [] {
        Mutex mu;
        CondVar cv;
        MutexLock lock(mu);
        const bool notified =
            cv.WaitUntil(mu, SteadyNow() + std::chrono::milliseconds(1));
        det::ModelAssert(!notified, "nobody notifies; must time out");
      },
      opts);
  EXPECT_FALSE(stats.found) << stats.finding_message;
  EXPECT_TRUE(stats.complete);
}

TEST(DetSched, SpinGateWithYieldTerminates) {
  det::Options opts;
  det::Stats stats = det::Explore(
      [] {
        Atomic<int> gate{1};
        Thread opener([&] { gate.Store(0); });
        while (gate.Load() != 0) SpinYield();
        opener.Join();
      },
      opts);
  EXPECT_FALSE(stats.found) << stats.finding_kind << ": "
                            << stats.finding_message;
  EXPECT_TRUE(stats.complete);
}

TEST(DetSched, HotPathBlockingIsAFinding) {
  det::Stats stats = det::Explore(
      [] {
        Mutex mu;
        Thread holder([&] {
          MutexLock lock(mu);
        });
        det::SetHotPath(true);
        mu.Lock();  // Blocks whenever `holder` owns mu: a hot-path stall.
        mu.Unlock();
        det::SetHotPath(false);
        holder.Join();
      },
      det::Options{});
  ASSERT_TRUE(stats.found);
  EXPECT_EQ(stats.finding_kind, "hot-blocked");
}

TEST(DetSched, DoubleLockIsAFinding) {
  det::Stats stats = det::Explore(
      [] {
        Mutex mu;
        mu.Lock();
        mu.Lock();  // BUG.
      },
      det::Options{});
  ASSERT_TRUE(stats.found);
  EXPECT_EQ(stats.finding_kind, "double-lock");
}

TEST(DetSched, PreemptionBoundZeroStillRunsCooperatively) {
  det::Options opts;
  opts.preemption_bound = 0;
  int total = 0;
  det::Stats stats = det::Explore(
      [&] {
        Mutex mu;
        Thread t([&] { MutexLock lock(mu); });
        {
          MutexLock lock(mu);
          ++total;
        }
        t.Join();
      },
      opts);
  EXPECT_FALSE(stats.found) << stats.finding_message;
  EXPECT_TRUE(stats.complete);
  EXPECT_GE(total, 1);
}

#endif  // GQR_MODELCHECK

}  // namespace
}  // namespace gqr
