// Tests for the projection hashers: LSH, PCAH, ITQ, SH — quantization
// rule, flip costs, similarity preservation, training invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "hash/itq.h"
#include "hash/lsh.h"
#include "hash/pcah.h"
#include "hash/sh.h"
#include "util/bits.h"

namespace gqr {
namespace {

Dataset TestData(size_t n = 2000, size_t dim = 16, uint64_t seed = 7) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.num_clusters = 20;
  spec.seed = seed;
  return GenerateClusteredGaussian(spec);
}

// Fraction of the 100 nearest-neighbor pairs whose Hamming distance is
// below the dataset's mean pair Hamming distance — a similarity-
// preservation score (1.0 = perfect).
double SimilarityPreservation(const BinaryHasher& hasher,
                              const Dataset& data) {
  std::vector<Code> codes = hasher.HashDataset(data);
  // Mean Hamming distance over random pairs.
  Rng rng(99);
  double mean = 0.0;
  const int pairs = 500;
  for (int p = 0; p < pairs; ++p) {
    const auto a = static_cast<ItemId>(rng.Uniform(data.size()));
    const auto b = static_cast<ItemId>(rng.Uniform(data.size()));
    mean += HammingDistance(codes[a], codes[b]);
  }
  mean /= pairs;
  // Nearest-neighbor pairs.
  int good = 0;
  const int probes = 100;
  for (int p = 0; p < probes; ++p) {
    const auto a = static_cast<ItemId>(rng.Uniform(data.size()));
    Neighbors nn = BruteForceKnn(data, data.Row(a), 2);
    const ItemId b = nn.ids[1];  // Skip self.
    if (HammingDistance(codes[a], codes[b]) < mean) ++good;
  }
  return static_cast<double>(good) / probes;
}

TEST(ProjectionHasherTest, QuantizationRule) {
  Dataset data = TestData(100, 8);
  LshOptions opt;
  opt.code_length = 8;
  LinearHasher hasher = TrainLsh(data, 8, opt);
  std::vector<double> p(8);
  hasher.Project(data.Row(0), p.data());
  const Code c = hasher.HashItem(data.Row(0));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(GetBit(c, i), p[i] >= 0.0 ? 1 : 0);
  }
}

TEST(ProjectionHasherTest, FlipCostsAreAbsoluteProjections) {
  Dataset data = TestData(100, 8);
  LshOptions opt;
  opt.code_length = 6;
  LinearHasher hasher = TrainLsh(data, 8, opt);
  std::vector<double> p(6);
  hasher.Project(data.Row(3), p.data());
  QueryHashInfo info = hasher.HashQuery(data.Row(3));
  ASSERT_EQ(info.flip_costs.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(info.flip_costs[i], std::abs(p[i]));
    EXPECT_GE(info.flip_costs[i], 0.0);
  }
  EXPECT_EQ(info.code, hasher.HashItem(data.Row(3)));
}

TEST(ProjectionHasherTest, HashDatasetMatchesHashItem) {
  Dataset data = TestData(300, 8);
  LshOptions opt;
  opt.code_length = 10;
  LinearHasher hasher = TrainLsh(data, 8, opt);
  std::vector<Code> codes = hasher.HashDataset(data);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(codes[i], hasher.HashItem(data.Row(static_cast<ItemId>(i))));
  }
}

TEST(LshTest, DeterministicInSeed) {
  Dataset data = TestData(50, 8);
  LshOptions opt;
  opt.code_length = 12;
  opt.seed = 5;
  LinearHasher a = TrainLsh(data, 8, opt);
  LinearHasher b = TrainLsh(data, 8, opt);
  EXPECT_LT(a.HashingMatrix().MaxAbsDiff(b.HashingMatrix()), 1e-15);
}

TEST(LshTest, CodeLengthRespected) {
  Dataset data = TestData(50, 8);
  for (int m : {1, 7, 23, 64}) {
    LshOptions opt;
    opt.code_length = m;
    LinearHasher hasher = TrainLsh(data, 8, opt);
    EXPECT_EQ(hasher.code_length(), m);
    const Code c = hasher.HashItem(data.Row(0));
    EXPECT_EQ(c & ~LowBitsMask(m), 0u);
  }
}

TEST(PcahTest, ProjectionsDecorrelatedAndCentered) {
  Dataset data = TestData(3000, 12);
  PcahOptions opt;
  opt.code_length = 6;
  LinearHasher hasher = TrainPcah(data, opt);
  // Mean projection over the data is ~0 per bit (centered), and distinct
  // components are uncorrelated.
  std::vector<double> mean(6, 0.0);
  std::vector<double> p(6);
  Matrix cov(6, 6);
  for (size_t i = 0; i < data.size(); ++i) {
    hasher.Project(data.Row(static_cast<ItemId>(i)), p.data());
    for (int a = 0; a < 6; ++a) {
      mean[a] += p[a];
      for (int b = 0; b < 6; ++b) cov.At(a, b) += p[a] * p[b];
    }
  }
  for (int a = 0; a < 6; ++a) mean[a] /= static_cast<double>(data.size());
  double scale = 0.0;
  for (int a = 0; a < 6; ++a) scale = std::max(scale, cov.At(a, a));
  for (int a = 0; a < 6; ++a) {
    EXPECT_NEAR(mean[a], 0.0, 1.0);
    for (int b = 0; b < 6; ++b) {
      if (a != b) {
        EXPECT_NEAR(cov.At(a, b) / scale, 0.0, 0.05);
      }
    }
  }
}

TEST(PcahTest, VarianceOrderedBits) {
  Dataset data = TestData(3000, 12);
  PcahOptions opt;
  opt.code_length = 5;
  LinearHasher hasher = TrainPcah(data, opt);
  std::vector<double> var(5, 0.0);
  std::vector<double> p(5);
  for (size_t i = 0; i < data.size(); ++i) {
    hasher.Project(data.Row(static_cast<ItemId>(i)), p.data());
    for (int a = 0; a < 5; ++a) var[a] += p[a] * p[a];
  }
  for (int a = 1; a < 5; ++a) {
    EXPECT_GE(var[a - 1], var[a] * 0.95) << "PCA bits out of order";
  }
}

TEST(ItqTest, LossNonIncreasing) {
  Dataset data = TestData(2000, 12);
  ItqOptions opt;
  opt.code_length = 8;
  opt.iterations = 15;
  ItqTrainStats stats;
  TrainItq(data, opt, &stats);
  ASSERT_EQ(stats.loss_history.size(), 15u);
  for (size_t i = 1; i < stats.loss_history.size(); ++i) {
    EXPECT_LE(stats.loss_history[i], stats.loss_history[i - 1] + 1e-9);
  }
}

TEST(ItqTest, RotationPreservesPcaGeometry) {
  // ITQ's W = R^T P has the same singular values as P (R orthogonal), so
  // the spectral norm matches PCAH's.
  Dataset data = TestData(2000, 12);
  PcahOptions popt;
  popt.code_length = 8;
  ItqOptions iopt;
  iopt.code_length = 8;
  LinearHasher pcah = TrainPcah(data, popt);
  LinearHasher itq = TrainItq(data, iopt);
  EXPECT_NEAR(pcah.HashingMatrix().SpectralNorm(),
              itq.HashingMatrix().SpectralNorm(), 1e-4);
}

TEST(ShTest, BitsSortedByEigenvalue) {
  Dataset data = TestData(2000, 12);
  ShOptions opt;
  opt.code_length = 8;
  ShHasher hasher = TrainSh(data, opt);
  const auto& bits = hasher.bits();
  ASSERT_EQ(bits.size(), 8u);
  for (size_t i = 1; i < bits.size(); ++i) {
    EXPECT_LE(bits[i - 1].eigenvalue, bits[i].eigenvalue);
  }
  for (const auto& b : bits) {
    EXPECT_GE(b.mode_k, 1);
    EXPECT_GT(b.range, 0.0);
  }
}

TEST(ShTest, ProjectionsBoundedByOne) {
  // SH projections are sinusoids, so |p_i| <= 1.
  Dataset data = TestData(500, 12);
  ShOptions opt;
  opt.code_length = 10;
  ShHasher hasher = TrainSh(data, opt);
  std::vector<double> p(10);
  for (size_t i = 0; i < 100; ++i) {
    hasher.Project(data.Row(static_cast<ItemId>(i)), p.data());
    for (double v : p) EXPECT_LE(std::abs(v), 1.0 + 1e-12);
  }
}

class LearnerPreservationTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(LearnerPreservationTest, NearNeighborsGetNearCodes) {
  Dataset data = TestData(2000, 16, 77);
  const std::string name = GetParam();
  std::unique_ptr<BinaryHasher> hasher;
  if (name == "LSH") {
    LshOptions o;
    o.code_length = 12;
    hasher = std::make_unique<LinearHasher>(TrainLsh(data, 16, o));
  } else if (name == "PCAH") {
    PcahOptions o;
    o.code_length = 12;
    hasher = std::make_unique<LinearHasher>(TrainPcah(data, o));
  } else if (name == "ITQ") {
    ItqOptions o;
    o.code_length = 12;
    hasher = std::make_unique<LinearHasher>(TrainItq(data, o));
  } else {
    ShOptions o;
    o.code_length = 12;
    hasher = std::make_unique<ShHasher>(TrainSh(data, o));
  }
  // Nearest neighbors should nearly always have below-average Hamming
  // distance; threshold is loose on purpose (statistical property).
  EXPECT_GE(SimilarityPreservation(*hasher, data), 0.85) << name;
}

INSTANTIATE_TEST_SUITE_P(AllLearners, LearnerPreservationTest,
                         ::testing::Values("LSH", "PCAH", "ITQ", "SH"));

}  // namespace
}  // namespace gqr
