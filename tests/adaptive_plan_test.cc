// Differential tests for the adaptive probe-budget planner and the
// margin-scaled Theorem-2 termination rule (plan/, DESIGN.md section 16).
//
// The load-bearing contract: an *inert* policy — infinite margin,
// learning disabled — must leave every entry point bit-identical to a
// planner-free search, for all four querying methods, across Searcher,
// BatchSearch, ShardedSearch, and QueryService. Then the sound setting
// (margin = 1) must reproduce the exhaustive top-k exactly while probing
// no more, and aggressive margins (< 1) must keep every returned
// distance within the guaranteed 1/margin factor of the fixed-budget
// result. Finally, the regression deaths: a malformed margin trips the
// always-on policy check, and (under GQR_VALIDATE) a deliberately wrong
// mu trips the live-stream Theorem-2 cross-check of core/validators.cc.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/batch_search.h"
#include "core/qd.h"
#include "core/sharded_search.h"
#include "core/validators.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "hash/itq.h"
#include "plan/planner.h"
#include "serve/query_service.h"

namespace gqr {
namespace {

constexpr int kBits = 10;
constexpr QueryMethod kAllMethods[] = {QueryMethod::kHR, QueryMethod::kGHR,
                                       QueryMethod::kQR, QueryMethod::kGQR};

struct PlanFixture {
  Dataset base;
  Dataset queries;
  LinearHasher hasher;
  std::vector<Code> codes;
  StaticHashTable table;
  double mu = 0.0;

  static PlanFixture Make() {
    SyntheticSpec spec;
    spec.n = 3000;
    spec.dim = 12;
    spec.num_clusters = 25;
    spec.seed = 977;
    Dataset all = GenerateClusteredGaussian(spec);
    Rng rng(11);
    auto [base, queries] = all.SplitQueries(30, &rng);
    ItqOptions opt;
    opt.code_length = kBits;
    LinearHasher hasher = TrainItq(base, opt);
    std::vector<Code> codes = hasher.HashDataset(base);
    StaticHashTable table(codes, kBits);
    const double mu = TheoremTwoMu(hasher);
    return PlanFixture{std::move(base), std::move(queries),
                       std::move(hasher), std::move(codes),
                       std::move(table), mu};
  }

  void Populate(ShardedIndex* index) const {
    for (size_t id = 0; id < base.size(); ++id) {
      ASSERT_TRUE(index->Insert(static_cast<ItemId>(id), codes[id]).ok());
    }
  }
};

void ExpectSameResult(const SearchResult& expected, const SearchResult& got,
                      const std::string& label) {
  EXPECT_EQ(expected.ids, got.ids) << label;
  EXPECT_EQ(expected.distances, got.distances) << label;
  EXPECT_EQ(expected.stats.items_evaluated, got.stats.items_evaluated)
      << label;
  EXPECT_EQ(expected.stats.buckets_probed, got.stats.buckets_probed)
      << label;
}

// margin = inf + learning disabled: every entry point must match the
// planner-free baseline bit for bit, for every querying method.
TEST(AdaptivePlanTest, InertPolicyBitIdenticalAcrossEntryPoints) {
  PlanFixture f = PlanFixture::Make();
  ASSERT_GT(f.mu, 0.0);
  Searcher searcher(f.base);

  PlannerOptions po;
  po.learn = false;
  BudgetPlanner planner(po);

  SearchOptions plain;
  plain.k = 10;
  plain.max_candidates = 400;
  SearchOptions inert = plain;
  inert.termination.mu = f.mu;  // margin stays infinite: never fires.
  inert.plan.planner = &planner;

  for (QueryMethod m : kAllMethods) {
    const std::string name = QueryMethodName(m);
    const auto baseline =
        BatchSearch(searcher, f.hasher, f.table, f.queries, m, plain);

    // Searcher: the single-query path, plan inputs filled by hand.
    for (size_t q = 0; q < f.queries.size(); ++q) {
      const float* query = f.queries.Row(static_cast<ItemId>(q));
      QueryHashInfo info = f.hasher.HashQuery(query);
      SearchOptions so = inert;
      so.plan.feature_key = QueryFeatureKey(info);
      so.plan.ticket = q;
      std::unique_ptr<BucketProber> prober = MakeProber(m, info, f.table);
      SearchResult got = searcher.Search(query, prober.get(), f.table, so);
      ExpectSameResult(baseline[q], got,
                       name + "/Searcher query " + std::to_string(q));
    }

    // BatchSearch.
    const auto batch =
        BatchSearch(searcher, f.hasher, f.table, f.queries, m, inert);
    ASSERT_EQ(batch.size(), baseline.size());
    for (size_t q = 0; q < baseline.size(); ++q) {
      ExpectSameResult(baseline[q], batch[q],
                       name + "/BatchSearch query " + std::to_string(q));
    }

    // ShardedSearch.
    ShardedIndex index(kBits, 3);
    f.Populate(&index);
    const auto sharded =
        ShardedSearch(searcher, f.hasher, index, f.queries, m, inert);
    ASSERT_EQ(sharded.size(), baseline.size());
    for (size_t q = 0; q < baseline.size(); ++q) {
      ExpectSameResult(baseline[q], sharded[q],
                       name + "/ShardedSearch query " + std::to_string(q));
    }

    // QueryService (ids/distances only: the service's stats ride the
    // sharded path, already proven identical above).
    QueryServiceOptions qopt;
    qopt.method = m;
    qopt.search = inert;
    QueryService service(searcher, f.hasher, index, qopt);
    std::vector<QueryService::Future> futures;
    for (size_t q = 0; q < f.queries.size(); ++q) {
      futures.push_back(
          service.Submit(f.queries.Row(static_cast<ItemId>(q)), /*k=*/0));
    }
    for (size_t q = 0; q < futures.size(); ++q) {
      Response resp = futures[q].Get();
      ASSERT_EQ(resp.status, RequestStatus::kOk);
      EXPECT_EQ(baseline[q].ids, resp.result.ids)
          << name << "/QueryService query " << q;
      EXPECT_EQ(baseline[q].distances, resp.result.distances)
          << name << "/QueryService query " << q;
    }
    service.Shutdown();
  }
}

// margin = 1 is the sound stop of §4.1: same top-k as the exhaustive
// search, never more work, for every method (the Hamming methods ride
// the flip-cost prefix-sum qd_bound).
TEST(AdaptivePlanTest, MarginOneMatchesExhaustiveSearch) {
  PlanFixture f = PlanFixture::Make();
  Searcher searcher(f.base);

  SearchOptions full;
  full.k = 10;
  full.max_candidates = 0;  // Exhaust the prober.
  SearchOptions sound = full;
  sound.termination.mu = f.mu;
  sound.termination.margin = 1.0;

  size_t terminated = 0;
  for (QueryMethod m : kAllMethods) {
    const std::string name = QueryMethodName(m);
    for (size_t q = 0; q < f.queries.size(); ++q) {
      const float* query = f.queries.Row(static_cast<ItemId>(q));
      QueryHashInfo info = f.hasher.HashQuery(query);
      std::unique_ptr<BucketProber> p1 = MakeProber(m, info, f.table);
      SearchResult exhaustive = searcher.Search(query, p1.get(), f.table,
                                                full);
      std::unique_ptr<BucketProber> p2 = MakeProber(m, info, f.table);
      SearchResult stopped = searcher.Search(query, p2.get(), f.table,
                                             sound);
      EXPECT_EQ(exhaustive.ids, stopped.ids)
          << name << " query " << q;
      EXPECT_EQ(exhaustive.distances, stopped.distances)
          << name << " query " << q;
      EXPECT_LE(stopped.stats.items_evaluated,
                exhaustive.stats.items_evaluated)
          << name << " query " << q;
      if (stopped.stats.terminated) ++terminated;
    }
  }
  // On clustered data the bound must actually bite somewhere — otherwise
  // this test is vacuous.
  EXPECT_GT(terminated, 0u);
}

// margin < 1: every returned distance is within 1/margin of the
// fixed-budget result at the same rank (the approximation guarantee of
// plan/termination.h).
TEST(AdaptivePlanTest, AggressiveMarginKeepsPerRankGuarantee) {
  PlanFixture f = PlanFixture::Make();
  Searcher searcher(f.base);
  const double margin = 0.5;

  SearchOptions fixed;
  fixed.k = 10;
  fixed.max_candidates = 0;
  SearchOptions aggressive = fixed;
  aggressive.termination.mu = f.mu;
  aggressive.termination.margin = margin;

  size_t terminated = 0;
  for (QueryMethod m : kAllMethods) {
    const std::string name = QueryMethodName(m);
    for (size_t q = 0; q < f.queries.size(); ++q) {
      const float* query = f.queries.Row(static_cast<ItemId>(q));
      QueryHashInfo info = f.hasher.HashQuery(query);
      std::unique_ptr<BucketProber> p1 = MakeProber(m, info, f.table);
      SearchResult full = searcher.Search(query, p1.get(), f.table, fixed);
      std::unique_ptr<BucketProber> p2 = MakeProber(m, info, f.table);
      SearchResult adaptive = searcher.Search(query, p2.get(), f.table,
                                              aggressive);
      ASSERT_EQ(full.ids.size(), adaptive.ids.size())
          << name << " query " << q;
      for (size_t i = 0; i < full.ids.size(); ++i) {
        EXPECT_LE(adaptive.distances[i],
                  full.distances[i] / margin + 1e-4)
            << name << " query " << q << " rank " << i;
      }
      if (adaptive.stats.terminated) ++terminated;
    }
  }
  EXPECT_GT(terminated, 0u);
}

// A learning planner attached through BatchSearch must start predicting
// budgets below the fixed one once the feedback table has observations,
// without ever exceeding the caller's budget.
TEST(AdaptivePlanTest, LearningPlannerShrinksBudgets) {
  PlanFixture f = PlanFixture::Make();
  Searcher searcher(f.base);

  PlannerOptions po;
  po.explore_epsilon = 0.0;  // Pure exploit: every miss runs full budget.
  po.min_budget = 16;
  BudgetPlanner planner(po);

  SearchOptions so;
  so.k = 10;
  so.max_candidates = 1000;
  so.termination.mu = f.mu;
  so.termination.margin = 1.0;
  so.plan.planner = &planner;

  // Warm-up pass populates the feedback table, second pass predicts.
  BatchSearch(searcher, f.hasher, f.table, f.queries, QueryMethod::kGQR, so);
  EXPECT_GT(planner.feedback_counters().records, 0u);
  const auto learned = BatchSearch(searcher, f.hasher, f.table, f.queries,
                                   QueryMethod::kGQR, so);

  size_t shrunk = 0;
  for (const SearchResult& r : learned) {
    ASSERT_GT(r.stats.planned_budget, 0u);
    EXPECT_LE(r.stats.planned_budget, so.max_candidates);
    if (r.stats.planned_budget < so.max_candidates) ++shrunk;
  }
  EXPECT_GT(shrunk, 0u);
}

// A malformed margin must die at query start in every build (the
// always-on policy check), not silently misbehave.
TEST(AdaptivePlanDeathTest, InvalidMarginDies) {
  PlanFixture f = PlanFixture::Make();
  Searcher searcher(f.base);
  const float* query = f.queries.Row(0);
  QueryHashInfo info = f.hasher.HashQuery(query);
  SearchOptions so;
  so.k = 5;
  so.termination.mu = f.mu;
  so.termination.margin = 0.0;  // The planted wrong margin.
  std::unique_ptr<BucketProber> prober =
      MakeProber(QueryMethod::kGQR, info, f.table);
  EXPECT_DEATH(searcher.Search(query, prober.get(), f.table, so),
               "termination");
}

#if GQR_VALIDATE_ENABLED
// A mu far above the hasher's Theorem-2 constant makes the termination
// machinery claim bounds the geometry cannot support; the live-stream
// validator must catch it on real probe data.
TEST(AdaptivePlanDeathTest, WrongMuDiesUnderValidation) {
  PlanFixture f = PlanFixture::Make();
  Searcher searcher(f.base);
  const float* query = f.queries.Row(1);
  QueryHashInfo info = f.hasher.HashQuery(query);
  SearchOptions so;
  so.k = 5;
  so.max_candidates = 0;
  so.termination.mu = f.mu * 1e6;
  so.termination.margin = 1.0;
  std::unique_ptr<BucketProber> prober =
      MakeProber(QueryMethod::kGQR, info, f.table);
  EXPECT_DEATH(searcher.Search(query, prober.get(), f.table, so),
               "Theorem 2");
}

// Direct regression coverage of the decision validator itself.
TEST(AdaptivePlanDeathTest, ValidatorRejectsUnjustifiedStop) {
  EXPECT_DEATH(ValidateTerminationDecision(/*mu=*/0.0, /*margin=*/1.0,
                                           /*qd_bound=*/1.0,
                                           /*kth_distance=*/1.0),
               "no Theorem 2 constant");
  EXPECT_DEATH(
      ValidateTerminationDecision(/*mu=*/0.5,
                                  /*margin=*/std::numeric_limits<
                                      double>::infinity(),
                                  /*qd_bound=*/1.0, /*kth_distance=*/0.0),
      "unusable margin");
  EXPECT_DEATH(ValidateTerminationDecision(/*mu=*/0.5, /*margin=*/1.0,
                                           /*qd_bound=*/1.0,
                                           /*kth_distance=*/10.0),
               "not justified");
}
#endif  // GQR_VALIDATE_ENABLED

}  // namespace
}  // namespace gqr
