// End-to-end tests of the angular-distance mode (paper §4: "other
// similarity metrics such as angular distance can also be adapted").
//
// For sign-random-projection LSH with no offset, the hash is a function
// of direction only, so QD ranking transfers to cosine similarity
// unchanged: the projections of a query measure (scaled) angular margin
// to each hyperplane.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/gqr_prober.h"
#include "core/searcher.h"
#include "data/synthetic.h"
#include "hash/lsh.h"
#include "la/vector_ops.h"

namespace gqr {
namespace {

struct AngularFixture {
  Dataset base;
  LinearHasher hasher;
  StaticHashTable table;

  static AngularFixture Make() {
    SyntheticSpec spec;
    spec.n = 3000;
    spec.dim = 16;
    spec.num_clusters = 40;
    spec.cluster_stddev = 4.0;
    spec.seed = 251;
    Dataset base = GenerateClusteredGaussian(spec);
    LshOptions opt;
    opt.code_length = 10;
    opt.center_on_mean = false;  // Pure direction hashing.
    LinearHasher hasher = TrainLsh(base, base.dim(), opt);
    StaticHashTable table(hasher.HashDataset(base), 10);
    return AngularFixture{std::move(base), std::move(hasher),
                          std::move(table)};
  }
};

std::vector<ItemId> BruteForceAngular(const Dataset& base, const float* q,
                                      size_t k) {
  std::vector<std::pair<float, ItemId>> all;
  for (size_t i = 0; i < base.size(); ++i) {
    all.emplace_back(
        CosineDistance(base.Row(static_cast<ItemId>(i)), q, base.dim()),
        static_cast<ItemId>(i));
  }
  std::sort(all.begin(), all.end());
  std::vector<ItemId> ids;
  for (size_t i = 0; i < k; ++i) ids.push_back(all[i].second);
  return ids;
}

TEST(AngularTest, ScaleInvarianceOfCodes) {
  // Direction-only hashing: scaling an item must not change its code.
  AngularFixture f = AngularFixture::Make();
  for (ItemId i = 0; i < 50; ++i) {
    std::vector<float> scaled(f.base.dim());
    for (size_t j = 0; j < f.base.dim(); ++j) {
      scaled[j] = 3.5f * f.base.Row(i)[j];
    }
    EXPECT_EQ(f.hasher.HashItem(f.base.Row(i)),
              f.hasher.HashItem(scaled.data()));
  }
}

TEST(AngularTest, ExhaustiveAngularSearchIsExact) {
  AngularFixture f = AngularFixture::Make();
  Searcher searcher(f.base);
  for (ItemId q = 0; q < 5; ++q) {
    const float* query = f.base.Row(q);
    GqrProber prober(f.hasher.HashQuery(query));
    SearchOptions so;
    so.k = 10;
    so.max_candidates = 0;
    so.metric = Metric::kAngular;
    SearchResult r = searcher.Search(query, &prober, f.table, so);
    EXPECT_EQ(r.ids, BruteForceAngular(f.base, query, 10));
  }
}

TEST(AngularTest, BudgetedGqrReachesUsableAngularRecall) {
  AngularFixture f = AngularFixture::Make();
  Searcher searcher(f.base);
  double recall = 0.0;
  const size_t k = 10;
  for (ItemId q = 0; q < 20; ++q) {
    const float* query = f.base.Row(q);
    auto truth = BruteForceAngular(f.base, query, k);
    GqrProber prober(f.hasher.HashQuery(query));
    SearchOptions so;
    so.k = k;
    so.max_candidates = 300;  // 10% of the base.
    so.metric = Metric::kAngular;
    SearchResult r = searcher.Search(query, &prober, f.table, so);
    for (ItemId id : r.ids) {
      if (std::find(truth.begin(), truth.end(), id) != truth.end()) {
        recall += 1.0;
      }
    }
  }
  recall /= 20.0 * static_cast<double>(k);
  EXPECT_GT(recall, 0.5);
}

}  // namespace
}  // namespace gqr
