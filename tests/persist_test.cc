// Round-trip and corruption tests for model/index persistence.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <memory>

#include "data/synthetic.h"
#include "hash/itq.h"
#include "hash/kmh.h"
#include "hash/sh.h"
#include "persist/model_io.h"
#include "persist/serializer.h"
#include "vq/opq.h"

namespace gqr {
namespace {

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gqr_persist_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    SyntheticSpec spec;
    spec.n = 1500;
    spec.dim = 12;
    spec.num_clusters = 20;
    spec.seed = 141;
    data_ = GenerateClusteredGaussian(spec);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
  Dataset data_;
};

TEST_F(PersistTest, SerializerPrimitivesRoundTrip) {
  const std::string path = Path("prims.bin");
  {
    BinaryWriter w(path);
    w.WriteHeader("TEST", 3);
    w.WriteU32(42);
    w.WriteU64(uint64_t{1} << 50);
    w.WriteI32(-7);
    w.WriteDouble(3.25);
    w.WriteString("hello");
    w.WriteDoubleVector({1.5, -2.5});
    w.WriteU64Vector({9, 8, 7});
    w.WriteU32Vector({1, 2});
    w.WriteFloatVector({0.5f});
    Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
    w.WriteMatrix(m);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  r.ExpectHeader("TEST", 3);
  EXPECT_EQ(r.ReadU32(), 42u);
  EXPECT_EQ(r.ReadU64(), uint64_t{1} << 50);
  EXPECT_EQ(r.ReadI32(), -7);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 3.25);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadDoubleVector(), (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(r.ReadU64Vector(), (std::vector<uint64_t>{9, 8, 7}));
  EXPECT_EQ(r.ReadU32Vector(), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(r.ReadFloatVector(), (std::vector<float>{0.5f}));
  Matrix m = r.ReadMatrix();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
  EXPECT_TRUE(r.status().ok()) << r.status().ToString();
}

TEST_F(PersistTest, HeaderMismatchIsError) {
  const std::string path = Path("hdr.bin");
  {
    BinaryWriter w(path);
    w.WriteHeader("AAAA", 1);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader wrong_magic(path);
  wrong_magic.ExpectHeader("BBBB", 1);
  EXPECT_FALSE(wrong_magic.status().ok());
  BinaryReader wrong_version(path);
  wrong_version.ExpectHeader("AAAA", 2);
  EXPECT_FALSE(wrong_version.status().ok());
}

TEST_F(PersistTest, LinearHasherRoundTrip) {
  ItqOptions opt;
  opt.code_length = 10;
  LinearHasher original = TrainItq(data_, opt);
  const std::string path = Path("itq.gqr");
  ASSERT_TRUE(SaveLinearHasher(original, path).ok());
  Result<LinearHasher> loaded = LoadLinearHasher(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "ITQ");
  EXPECT_EQ(loaded->code_length(), 10);
  for (ItemId i = 0; i < 100; ++i) {
    EXPECT_EQ(loaded->HashItem(data_.Row(i)), original.HashItem(data_.Row(i)));
  }
  // Flip costs preserved too (projection identical).
  QueryHashInfo a = original.HashQuery(data_.Row(0));
  QueryHashInfo b = loaded->HashQuery(data_.Row(0));
  EXPECT_EQ(a.flip_costs, b.flip_costs);
}

TEST_F(PersistTest, ShHasherRoundTrip) {
  ShOptions opt;
  opt.code_length = 8;
  ShHasher original = TrainSh(data_, opt);
  const std::string path = Path("sh.gqr");
  ASSERT_TRUE(SaveShHasher(original, path).ok());
  Result<ShHasher> loaded = LoadShHasher(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (ItemId i = 0; i < 100; ++i) {
    EXPECT_EQ(loaded->HashItem(data_.Row(i)), original.HashItem(data_.Row(i)));
  }
}

TEST_F(PersistTest, KmhHasherRoundTrip) {
  KmhOptions opt;
  opt.code_length = 8;
  opt.bits_per_block = 4;
  KmhHasher original = TrainKmh(data_, opt);
  const std::string path = Path("kmh.gqr");
  ASSERT_TRUE(SaveKmhHasher(original, path).ok());
  Result<KmhHasher> loaded = LoadKmhHasher(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (ItemId i = 0; i < 100; ++i) {
    EXPECT_EQ(loaded->HashItem(data_.Row(i)), original.HashItem(data_.Row(i)));
    QueryHashInfo a = original.HashQuery(data_.Row(i));
    QueryHashInfo b = loaded->HashQuery(data_.Row(i));
    EXPECT_EQ(a.code, b.code);
    for (size_t j = 0; j < a.flip_costs.size(); ++j) {
      EXPECT_NEAR(a.flip_costs[j], b.flip_costs[j], 1e-12);
    }
  }
}

TEST_F(PersistTest, OpqModelRoundTrip) {
  OpqOptions opt;
  opt.num_centroids = 8;
  opt.iterations = 3;
  OpqModel original = TrainOpq(data_, opt);
  const std::string path = Path("opq.gqr");
  ASSERT_TRUE(SaveOpqModel(original, path).ok());
  Result<OpqModel> loaded = LoadOpqModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->error_history(), original.error_history());
  for (ItemId i = 0; i < 100; ++i) {
    EXPECT_EQ(loaded->EncodeItem(data_.Row(i)),
              original.EncodeItem(data_.Row(i)));
  }
}

TEST_F(PersistTest, HashTableRoundTrip) {
  ItqOptions opt;
  opt.code_length = 9;
  LinearHasher hasher = TrainItq(data_, opt);
  StaticHashTable original(hasher.HashDataset(data_), 9);
  const std::string path = Path("table.gqr");
  ASSERT_TRUE(SaveHashTable(original, path).ok());
  Result<StaticHashTable> loaded = LoadHashTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_items(), original.num_items());
  EXPECT_EQ(loaded->num_buckets(), original.num_buckets());
  EXPECT_EQ(loaded->bucket_codes(), original.bucket_codes());
  for (Code c : original.bucket_codes()) {
    auto a = original.Probe(c);
    auto b = loaded->Probe(c);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST_F(PersistTest, MissingFileIsError) {
  EXPECT_FALSE(LoadLinearHasher(Path("nope.gqr")).ok());
  EXPECT_FALSE(LoadHashTable(Path("nope.gqr")).ok());
  EXPECT_FALSE(LoadOpqModel(Path("nope.gqr")).ok());
}

TEST_F(PersistTest, TruncatedFileIsError) {
  ItqOptions opt;
  opt.code_length = 8;
  LinearHasher hasher = TrainItq(data_, opt);
  const std::string path = Path("trunc.gqr");
  ASSERT_TRUE(SaveLinearHasher(hasher, path).ok());
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_FALSE(LoadLinearHasher(path).ok());
}

TEST_F(PersistTest, WrongArtifactTypeIsError) {
  ItqOptions opt;
  opt.code_length = 8;
  LinearHasher hasher = TrainItq(data_, opt);
  const std::string path = Path("itq2.gqr");
  ASSERT_TRUE(SaveLinearHasher(hasher, path).ok());
  // A linear-hasher file is not a hash table.
  EXPECT_FALSE(LoadHashTable(path).ok());
}

TEST_F(PersistTest, CorruptContainerLengthIsError) {
  const std::string path = Path("corrupt.gqr");
  {
    BinaryWriter w(path);
    w.WriteHeader("GQLH", 1);
    w.WriteString("X");
    // Absurd matrix dims.
    w.WriteU64(uint64_t{1} << 40);
    w.WriteU64(uint64_t{1} << 40);
    ASSERT_TRUE(w.Finish().ok());
  }
  EXPECT_FALSE(LoadLinearHasher(path).ok());
}


TEST_F(PersistTest, MultiTableRoundTrip) {
  MultiTableIndex index = BuildMultiTableIndex(
      data_, 3, [&](uint64_t seed) -> std::unique_ptr<BinaryHasher> {
        ItqOptions o;
        o.code_length = 8;
        o.seed = seed;
        return std::make_unique<LinearHasher>(TrainItq(data_, o));
      });
  const std::string path = Path("multi.gqr");
  ASSERT_TRUE(SaveMultiTableHashers(index, path).ok());
  Result<MultiTableIndex> loaded = LoadMultiTableIndex(path, data_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_tables(), 3u);
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(loaded->table(t).bucket_codes(),
              index.table(t).bucket_codes());
    for (ItemId i = 0; i < 50; ++i) {
      EXPECT_EQ(loaded->hasher(t).HashItem(data_.Row(i)),
                index.hasher(t).HashItem(data_.Row(i)));
    }
  }
}

TEST_F(PersistTest, MultiTableDimensionMismatchRejected) {
  MultiTableIndex index = BuildMultiTableIndex(
      data_, 2, [&](uint64_t seed) -> std::unique_ptr<BinaryHasher> {
        ItqOptions o;
        o.code_length = 8;
        o.seed = seed;
        return std::make_unique<LinearHasher>(TrainItq(data_, o));
      });
  const std::string path = Path("multi2.gqr");
  ASSERT_TRUE(SaveMultiTableHashers(index, path).ok());
  Dataset wrong_dim(10, data_.dim() + 1);
  EXPECT_FALSE(LoadMultiTableIndex(path, wrong_dim).ok());
}

}  // namespace
}  // namespace gqr
