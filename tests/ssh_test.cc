// Tests for the SSH learner and its pseudo-supervision helper.
#include <gtest/gtest.h>

#include "core/gqr_prober.h"
#include "core/searcher.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "hash/pcah.h"
#include "hash/ssh.h"
#include "la/vector_ops.h"

namespace gqr {
namespace {

Dataset TestData(size_t n = 3000, size_t dim = 12, uint64_t seed = 191) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.num_clusters = 30;
  spec.cluster_stddev = 4.0;
  spec.zipf_exponent = 0.5;
  spec.seed = seed;
  return GenerateClusteredGaussian(spec);
}

TEST(SshTest, DirectionsOrthonormal) {
  Dataset data = TestData();
  auto pairs = MakeMetricPairs(data, 100, 1);
  SshOptions opt;
  opt.code_length = 6;
  LinearHasher hasher = TrainSsh(data, pairs, opt);
  const Matrix w = hasher.HashingMatrix();
  for (size_t a = 0; a < 6; ++a) {
    for (size_t b = 0; b < 6; ++b) {
      EXPECT_NEAR(Dot(w.Row(a), w.Row(b), data.dim()),
                  a == b ? 1.0 : 0.0, 1e-8);
    }
  }
  EXPECT_EQ(hasher.name(), "SSH");
}

TEST(SshTest, NoPairsHighEtaMatchesPcahSubspace) {
  // With no supervision the adjusted matrix reduces to eta * Cov, whose
  // top eigenvectors are PCAH's directions (up to sign).
  Dataset data = TestData(2000, 10, 192);
  SshOptions sopt;
  sopt.code_length = 4;
  LinearHasher ssh = TrainSsh(data, {}, sopt);
  PcahOptions popt;
  popt.code_length = 4;
  LinearHasher pcah = TrainPcah(data, popt);
  for (int c = 0; c < 4; ++c) {
    const double dot =
        Dot(ssh.HashingMatrix().Row(c), pcah.HashingMatrix().Row(c), 10);
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-3) << "component " << c;
  }
}

TEST(SshTest, MetricPairsAreWellFormed) {
  Dataset data = TestData(500, 8, 193);
  auto pairs = MakeMetricPairs(data, 50, 7);
  EXPECT_GT(pairs.size(), 50u);
  size_t similar = 0, dissimilar = 0;
  for (const LabeledPair& p : pairs) {
    EXPECT_LT(p.a, data.size());
    EXPECT_LT(p.b, data.size());
    EXPECT_NE(p.a, p.b);
    ASSERT_TRUE(p.label == 1 || p.label == -1);
    if (p.label == 1) {
      ++similar;
      // Similar pairs are genuine nearest neighbors: closer than a
      // random pair on average — spot-check they are "close".
    } else {
      ++dissimilar;
    }
  }
  EXPECT_GT(similar, 0u);
  EXPECT_GT(dissimilar, 0u);
}

TEST(SshTest, SimilarPairsAgreeOnMoreBits) {
  Dataset data = TestData(3000, 16, 194);
  auto pairs = MakeMetricPairs(data, 200, 9);
  SshOptions opt;
  opt.code_length = 12;
  LinearHasher hasher = TrainSsh(data, pairs, opt);
  double sim_dist = 0.0, dis_dist = 0.0;
  size_t sim_n = 0, dis_n = 0;
  for (const LabeledPair& p : pairs) {
    const int d = HammingDistance(hasher.HashItem(data.Row(p.a)),
                                  hasher.HashItem(data.Row(p.b)));
    if (p.label == 1) {
      sim_dist += d;
      ++sim_n;
    } else {
      dis_dist += d;
      ++dis_n;
    }
  }
  ASSERT_GT(sim_n, 0u);
  ASSERT_GT(dis_n, 0u);
  EXPECT_LT(sim_dist / sim_n, dis_dist / dis_n);
}

TEST(SshTest, EndToEndWithGqr) {
  Dataset all = TestData(4000, 16, 195);
  Rng rng(3);
  auto [base, queries] = all.SplitQueries(20, &rng);
  auto gt = ComputeGroundTruth(base, queries, 10);
  auto pairs = MakeMetricPairs(base, 200, 11);
  SshOptions opt;
  opt.code_length = 9;
  LinearHasher hasher = TrainSsh(base, pairs, opt);
  StaticHashTable table(hasher.HashDataset(base), 9);
  Searcher searcher(base);
  double recall = 0.0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const float* query = queries.Row(static_cast<ItemId>(q));
    GqrProber prober(hasher.HashQuery(query));
    SearchOptions so;
    so.k = 10;
    so.max_candidates = 400;
    recall += RecallAtK(searcher.Search(query, &prober, table, so).ids,
                        gt[q], 10);
  }
  recall /= static_cast<double>(queries.size());
  EXPECT_GT(recall, 0.5);
}

}  // namespace
}  // namespace gqr
