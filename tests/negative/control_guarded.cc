// Negative-compilation CONTROL: annotation-correct code that must
// compile cleanly under -Wthread-safety -Werror=thread-safety. If this
// TU fails, the flag set (not the seeded violations) is broken, and the
// sibling "must fail" cases prove nothing — the CMake gate checks this
// one first for that reason.
#include "util/sync.h"

namespace {

struct State {
  gqr::Mutex mu;
  int counter GQR_GUARDED_BY(mu) = 0;
};

void TickLocked(State& state) GQR_REQUIRES(state.mu) { ++state.counter; }

int Tick(State& state) GQR_EXCLUDES(state.mu) {
  gqr::MutexLock lock(state.mu);
  TickLocked(state);
  return state.counter;
}

}  // namespace

int main() {
  State state;
  return Tick(state) == 1 ? 0 : 1;
}
