// Negative-compilation case: writes a GQR_GUARDED_BY member without
// holding its mutex. MUST fail to compile under
// -Wthread-safety -Werror=thread-safety; the CMake gate errors out at
// configure time if it ever starts compiling (that would mean the
// guarded_by contract has silently stopped being enforced).
#include "util/sync.h"

namespace {

struct State {
  gqr::Mutex mu;
  int counter GQR_GUARDED_BY(mu) = 0;
};

int BrokenTick(State& state) {
  ++state.counter;  // Guarded write, no lock held: thread-safety error.
  return state.counter;
}

}  // namespace

int main() {
  State state;
  return BrokenTick(state);
}
