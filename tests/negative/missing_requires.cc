// Negative-compilation case: calls a GQR_REQUIRES function without
// holding the required mutex. MUST fail to compile under
// -Wthread-safety -Werror=thread-safety; the CMake gate errors out at
// configure time if it ever starts compiling (that would mean lock-held
// helper contracts have silently stopped being enforced).
#include "util/sync.h"

namespace {

struct State {
  gqr::Mutex mu;
  int counter GQR_GUARDED_BY(mu) = 0;
};

void TickLocked(State& state) GQR_REQUIRES(state.mu) { ++state.counter; }

int BrokenCaller(State& state) {
  TickLocked(state);  // Requires state.mu, which is not held: error.
  gqr::MutexLock lock(state.mu);
  return state.counter;
}

}  // namespace

int main() {
  State state;
  return BrokenCaller(state);
}
