// Tests for the evaluation harness: metrics, curves, budget ladders, and
// method sweeps.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/curve.h"
#include "eval/harness.h"
#include "eval/linear_scan.h"
#include "eval/metrics.h"
#include <memory>

#include "hash/itq.h"
#include "index/multi_table.h"
#include "persist/model_io.h"
#include "vq/imi.h"

namespace gqr {
namespace {

TEST(MetricsTest, RecallAtK) {
  Neighbors truth;
  truth.ids = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2, 3, 4, 5}, truth, 5), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2, 99, 98, 97}, truth, 5), 0.4);
  EXPECT_DOUBLE_EQ(RecallAtK({}, truth, 5), 0.0);
  // Only the first k truth ids count.
  EXPECT_DOUBLE_EQ(RecallAtK({3}, truth, 2), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({2}, truth, 2), 0.5);
}

TEST(MetricsTest, Precision) {
  Neighbors truth;
  truth.ids = {1, 2, 3};
  EXPECT_DOUBLE_EQ(Precision({1, 2, 9}, truth, 3, 10), 0.2);
  EXPECT_DOUBLE_EQ(Precision({1}, truth, 3, 0), 0.0);
}

TEST(CurveTest, TimeAtRecallInterpolates) {
  Curve c;
  c.name = "X";
  c.points.push_back({.seconds = 1.0, .recall = 0.2});
  c.points.push_back({.seconds = 3.0, .recall = 0.6});
  c.points.push_back({.seconds = 5.0, .recall = 1.0});
  EXPECT_DOUBLE_EQ(TimeAtRecall(c, 0.2), 1.0);
  EXPECT_DOUBLE_EQ(TimeAtRecall(c, 0.4), 2.0);
  EXPECT_DOUBLE_EQ(TimeAtRecall(c, 0.8), 4.0);
  EXPECT_DOUBLE_EQ(TimeAtRecall(c, 0.1), 1.0);  // Below first point.
  EXPECT_LT(TimeAtRecall(c, 1.01), 0.0);        // Unreachable.
}

TEST(CurveTest, ItemsAtRecall) {
  Curve c;
  c.points.push_back({.recall = 0.5, .items_evaluated = 100.0});
  c.points.push_back({.recall = 1.0, .items_evaluated = 300.0});
  EXPECT_DOUBLE_EQ(ItemsAtRecall(c, 0.75), 200.0);
}

TEST(CurveTest, EmptyCurve) {
  Curve c;
  EXPECT_LT(TimeAtRecall(c, 0.5), 0.0);
}

TEST(HarnessTest, DefaultBudgetsAscendingAndBounded) {
  auto budgets = DefaultBudgets(100000, 20);
  ASSERT_GE(budgets.size(), 3u);
  for (size_t i = 1; i < budgets.size(); ++i) {
    EXPECT_GT(budgets[i], budgets[i - 1]);
  }
  EXPECT_GE(budgets.front(), 20u);
  EXPECT_LE(budgets.back(), 30000u + 1);
}

TEST(HarnessTest, QueryMethodNames) {
  EXPECT_STREQ(QueryMethodName(QueryMethod::kHR), "HR");
  EXPECT_STREQ(QueryMethodName(QueryMethod::kGHR), "GHR");
  EXPECT_STREQ(QueryMethodName(QueryMethod::kQR), "QR");
  EXPECT_STREQ(QueryMethodName(QueryMethod::kGQR), "GQR");
}

class HarnessSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.n = 2000;
    spec.dim = 10;
    spec.num_clusters = 25;
    spec.seed = 121;
    Dataset all = GenerateClusteredGaussian(spec);
    Rng rng(2);
    auto split = all.SplitQueries(20, &rng);
    base_ = std::move(split.first);
    queries_ = std::move(split.second);
    gt_ = ComputeGroundTruth(base_, queries_, 10);
    ItqOptions opt;
    opt.code_length = 8;
    hasher_ = std::make_unique<LinearHasher>(TrainItq(base_, opt));
    table_ = std::make_unique<StaticHashTable>(hasher_->HashDataset(base_),
                                               8);
  }

  Dataset base_, queries_;
  std::vector<Neighbors> gt_;
  std::unique_ptr<LinearHasher> hasher_;
  std::unique_ptr<StaticHashTable> table_;
};

TEST_F(HarnessSweepTest, RecallIncreasesWithBudgetAndReachesOne) {
  HarnessOptions opt;
  opt.k = 10;
  opt.budgets = {20, 100, 500, 2000};
  for (QueryMethod method : {QueryMethod::kHR, QueryMethod::kGHR,
                             QueryMethod::kQR, QueryMethod::kGQR}) {
    Curve c = RunMethodCurve(method, base_, queries_, gt_, *hasher_,
                             *table_, opt);
    ASSERT_EQ(c.points.size(), 4u) << c.name;
    for (size_t i = 1; i < c.points.size(); ++i) {
      EXPECT_GE(c.points[i].recall, c.points[i - 1].recall - 1e-9)
          << c.name;
    }
    // Budget 2000 >= n - queries: every method degenerates to exact.
    EXPECT_NEAR(c.points.back().recall, 1.0, 1e-9) << c.name;
  }
}

TEST_F(HarnessSweepTest, GqrRecallDominatesHrAtEqualItems) {
  // The Figure 8 claim, as a statistical assertion at a mid budget.
  HarnessOptions opt;
  opt.k = 10;
  opt.budgets = {150};
  Curve gqr = RunMethodCurve(QueryMethod::kGQR, base_, queries_, gt_,
                             *hasher_, *table_, opt);
  Curve hr = RunMethodCurve(QueryMethod::kHR, base_, queries_, gt_,
                            *hasher_, *table_, opt);
  EXPECT_GE(gqr.points[0].recall, hr.points[0].recall - 0.02);
}

TEST_F(HarnessSweepTest, CurveRecordsWork) {
  HarnessOptions opt;
  opt.k = 10;
  opt.budgets = {100};
  Curve c = RunMethodCurve(QueryMethod::kGQR, base_, queries_, gt_,
                           *hasher_, *table_, opt);
  EXPECT_GT(c.points[0].items_evaluated, 0.0);
  EXPECT_GT(c.points[0].buckets_probed, 0.0);
  EXPECT_GE(c.points[0].seconds, 0.0);
  EXPECT_EQ(c.name, "GQR");
}


TEST_F(HarnessSweepTest, MultiTableCurveRuns) {
  MultiTableIndex index = BuildMultiTableIndex(
      base_, 2, [&](uint64_t seed) -> std::unique_ptr<BinaryHasher> {
        ItqOptions o;
        o.code_length = 8;
        o.seed = seed;
        return std::make_unique<LinearHasher>(TrainItq(base_, o));
      });
  HarnessOptions opt;
  opt.k = 10;
  opt.budgets = {100, 2000};
  Curve c = RunMultiTableCurve(QueryMethod::kGQR, base_, queries_, gt_,
                               index, opt);
  ASSERT_EQ(c.points.size(), 2u);
  EXPECT_GE(c.points[1].recall, c.points[0].recall);
  EXPECT_NEAR(c.points[1].recall, 1.0, 1e-9);
  EXPECT_NE(c.name.find("2 tables"), std::string::npos);
}

TEST_F(HarnessSweepTest, MihCurveRuns) {
  std::vector<Code> codes = hasher_->HashDataset(base_);
  MihIndex mih(codes, 8, 2);
  HarnessOptions opt;
  opt.k = 10;
  opt.budgets = {100, 2000};
  Curve c = RunMihCurve(base_, queries_, gt_, *hasher_, mih, opt);
  ASSERT_EQ(c.points.size(), 2u);
  EXPECT_EQ(c.name, "MIH");
  EXPECT_NEAR(c.points[1].recall, 1.0, 1e-9);
}

TEST_F(HarnessSweepTest, ImiCurveRuns) {
  OpqOptions oo;
  oo.num_centroids = 16;
  oo.iterations = 3;
  OpqModel model = TrainOpq(base_, oo);
  ImiIndex imi(model, base_);
  HarnessOptions opt;
  opt.k = 10;
  opt.budgets = {100, 2000};
  Curve c = RunImiCurve(base_, queries_, gt_, imi, opt);
  ASSERT_EQ(c.points.size(), 2u);
  EXPECT_EQ(c.name, "OPQ+IMI");
  EXPECT_NEAR(c.points[1].recall, 1.0, 1e-9);
  EXPECT_GE(c.points[1].recall, c.points[0].recall);
}

TEST(LinearScanTest, TimesAllQueries) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 8;
  Dataset base = GenerateClusteredGaussian(spec);
  Dataset queries = base.Gather({0, 1, 2});
  LinearScanResult r = TimeLinearScan(base, queries, 5);
  EXPECT_EQ(r.queries, 3u);
  EXPECT_EQ(r.k, 5u);
  EXPECT_GT(r.seconds, 0.0);
}

}  // namespace
}  // namespace gqr
