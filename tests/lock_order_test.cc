// Tests for the runtime lock-order inversion detector
// (util/lock_order.h). The same TU compiles in every build mode and
// asserts the mode-appropriate behavior: under GQR_VALIDATE a seeded
// A-then-B / B-then-A inversion aborts with both acquisition sites in
// the message (EXPECT_DEATH, like the check_test.cc contract tests);
// in plain builds the hooks compile out and the identical sequence
// completes normally — the detector must never change release
// semantics. The false-positive tests run in both modes: consistent
// orders, try-acquisitions, destroy/reuse, and the thread pool's
// help-running nested TaskGroup::Wait must all stay silent.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <utility>

#include "util/lock_order.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace gqr {
namespace {

#if defined(GQR_VALIDATE) && GQR_VALIDATE

TEST(LockOrderDeathTest, InversionAbortsWithBothSites) {
  EXPECT_DEATH(
      {
        Mutex a;
        Mutex b;
        {
          MutexLock la(a);
          MutexLock lb(b);  // Records a -> b.
        }
        {
          MutexLock lb(b);
          MutexLock la(a);  // b -> a closes the cycle: abort here.
        }
      },
      "lock-order inversion");
}

// The report names both sides: the acquisition being attempted and the
// previously recorded opposite-order site, each as file:line.
TEST(LockOrderDeathTest, ReportNamesTheConflictingSite) {
  EXPECT_DEATH(
      {
        Mutex a;
        Mutex b;
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock la(a);
        }
      },
      "lock_order_test.cc.*recorded at.*lock_order_test.cc");
}

TEST(LockOrderDeathTest, SharedMutexInversionAborts) {
  EXPECT_DEATH(
      {
        SharedMutex a;
        SharedMutex b;
        {
          ReaderLock la(a);
          WriterLock lb(b);
        }
        {
          ReaderLock lb(b);
          WriterLock la(a);  // Reader/writer sides share one order node.
        }
      },
      "lock-order inversion");
}

// Three-lock cycle through transitive edges: a -> b, b -> c, then
// c -> a. No two-lock pair ever inverts; only the transitive closure
// catches it.
TEST(LockOrderDeathTest, TransitiveCycleAborts) {
  EXPECT_DEATH(
      {
        Mutex a;
        Mutex b;
        Mutex c;
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock lc(c);
        }
        {
          MutexLock lc(c);
          MutexLock la(a);
        }
      },
      "lock-order inversion");
}

#else  // !GQR_VALIDATE

// Release builds compile the hooks out entirely: the seeded inversion
// is just four scoped acquisitions of two different mutexes from one
// thread and must complete normally.
TEST(LockOrderTest, InversionSequenceCompletesWithoutValidation) {
  Mutex a;
  Mutex b;
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  SUCCEED();
}

#endif  // GQR_VALIDATE

// ---------------------------------------------------------------------------
// No-false-positive coverage: everything below must pass in every build
// mode, GQR_VALIDATE included.
// ---------------------------------------------------------------------------

TEST(LockOrderTest, ConsistentOrderStaysSilent) {
  lock_order::ResetForTest();
  Mutex a;
  Mutex b;
  for (int i = 0; i < 100; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  SUCCEED();
}

// A successful TryLock joins the held stack (ordering later blocking
// acquisitions) but is never itself an inversion: try-acquire cannot
// block, so B-try-then-A against a recorded A-then-B must not abort.
TEST(LockOrderTest, TryAcquireAgainstRecordedOrderStaysSilent) {
  lock_order::ResetForTest();
  Mutex a;
  Mutex b;
  {
    MutexLock la(a);
    MutexLock lb(b);  // Record a -> b.
  }
  {
    MutexLock lb(b);
    ASSERT_TRUE(a.TryLock());  // Opposite order, but non-blocking.
    a.Unlock();
  }
  SUCCEED();
}

// Destroying a lock purges its node: a fresh lock reusing the same
// address (the common allocator fast path) must not inherit the dead
// lock's edges and trip on a phantom inversion.
TEST(LockOrderTest, DestroyPurgesRecordedEdges) {
  lock_order::ResetForTest();
  for (int i = 0; i < 50; ++i) {
    auto locks = std::make_unique<std::pair<Mutex, Mutex>>();
    if (i % 2 == 0) {
      MutexLock l1(locks->first);
      MutexLock l2(locks->second);
    } else {
      // Opposite order on alternating (likely address-reused)
      // allocations: legal because each pair dies in between.
      MutexLock l1(locks->second);
      MutexLock l2(locks->first);
    }
  }
  SUCCEED();
}

// The thread pool's help-running Wait: a worker waiting on an inner
// TaskGroup claims and runs that group's queued tasks inline, nesting
// pool-mutex / group-mutex acquisitions in both directions across
// threads. This is the library's trickiest legitimate lock pattern and
// the canonical false-positive candidate for a naive detector.
TEST(LockOrderTest, NestedTaskGroupWaitStaysSilent) {
  lock_order::ResetForTest();
  ThreadPool pool(4);
  std::atomic<int> done{0};
  ThreadPool::TaskGroup outer(pool);
  for (int i = 0; i < 8; ++i) {
    outer.Submit([&pool, &done] {
      ThreadPool::TaskGroup inner(pool);
      for (int j = 0; j < 4; ++j) {
        inner.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
      inner.Wait();  // Help-runs inner tasks on this worker.
    });
  }
  outer.Wait();
  EXPECT_EQ(done.load(), 8 * 4);
}

}  // namespace
}  // namespace gqr
