// Tests for the SK-LSH compound-key baseline (§7 related work).
#include <gtest/gtest.h>

#include <set>

#include "core/searcher.h"
#include "core/sklsh.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace gqr {
namespace {

Dataset TestData(size_t n = 3000, size_t dim = 12, uint64_t seed = 261) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.num_clusters = 30;
  spec.cluster_stddev = 4.0;
  spec.zipf_exponent = 0.5;
  spec.seed = seed;
  return GenerateClusteredGaussian(spec);
}

TEST(SklshTest, CollectsUniqueCandidatesUpToBudget) {
  Dataset base = TestData();
  SklshOptions opt;
  opt.num_hashes = 8;
  SklshIndex index(base, opt);
  EXPECT_EQ(index.num_items(), base.size());
  auto out = index.Collect(base.Row(0), 500);
  EXPECT_EQ(out.size(), 500u);
  std::set<ItemId> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), out.size());
}

TEST(SklshTest, UnboundedBudgetCoversEverythingOnce) {
  Dataset base = TestData(800, 8, 262);
  SklshOptions opt;
  opt.num_hashes = 6;
  SklshIndex index(base, opt);
  auto out = index.Collect(base.Row(3), base.size() + 100);
  EXPECT_EQ(out.size(), base.size());
  std::set<ItemId> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), base.size());
}

TEST(SklshTest, SelfAmongEarliestCandidates) {
  Dataset base = TestData(2000, 10, 263);
  SklshOptions opt;
  opt.num_hashes = 8;
  SklshIndex index(base, opt);
  for (ItemId q = 0; q < 20; ++q) {
    // The query is an indexed item with an identical compound key, so it
    // sits inside the equal-key run at the probe position; a run can
    // hold hundreds of items on clustered data, so "early" means within
    // a modest fraction of the corpus, not the first handful.
    auto out = index.Collect(base.Row(q), 300);
    EXPECT_NE(std::find(out.begin(), out.end(), q), out.end())
        << "query " << q;
  }
}

TEST(SklshTest, PrefixPreferenceHoldsOnFirstCandidates) {
  // The very first candidates must share at least as long a key prefix
  // with the query as later ones (non-increasing LCP is not strictly
  // guaranteed globally, but the first candidate has the maximal LCP).
  Dataset base = TestData(1500, 10, 264);
  SklshOptions opt;
  opt.num_hashes = 8;
  SklshIndex index(base, opt);
  // (Indirect check via recall: candidates with long shared prefixes are
  // hash-similar, so SK-LSH with rerank must beat random sampling.)
  Rng rng(1);
  auto gt = ComputeGroundTruth(base, base.Gather({5, 17, 99}), 10);
  Searcher searcher(base);
  double recall = 0.0;
  const std::vector<ItemId> queries = {5, 17, 99};
  for (size_t i = 0; i < queries.size(); ++i) {
    const float* query = base.Row(queries[i]);
    auto cand = index.Collect(query, 150);  // 10% of base.
    SearchOptions so;
    so.k = 10;
    so.max_candidates = 150;
    recall += RecallAtK(searcher.RerankCandidates(query, cand, so).ids,
                        gt[i], 10);
  }
  recall /= static_cast<double>(queries.size());
  EXPECT_GT(recall, 0.3);
}

TEST(SklshTest, ZeroBudget) {
  Dataset base = TestData(100, 8, 265);
  SklshOptions opt;
  opt.num_hashes = 4;
  SklshIndex index(base, opt);
  EXPECT_TRUE(index.Collect(base.Row(0), 0).empty());
}

}  // namespace
}  // namespace gqr
