// Property tests for the GQR generate-to-probe algorithm (paper §5):
// Property 1 (exactly once), Property 2 / requirement (R2) (ascending
// QD, equal to the full sort), and equivalence with QR.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/gqr_prober.h"
#include "core/qd.h"
#include "core/qr_prober.h"
#include "index/hash_table.h"
#include "util/random.h"

namespace gqr {
namespace {

QueryHashInfo RandomInfo(int m, uint64_t seed) {
  Rng rng(seed);
  QueryHashInfo info;
  info.code = rng.Uniform(uint64_t{1} << m);
  info.flip_costs.resize(m);
  for (double& c : info.flip_costs) c = rng.UniformDouble();
  return info;
}

class GqrPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GqrPropertyTest, EmitsEveryBucketExactlyOnce) {
  const int m = GetParam();
  QueryHashInfo info = RandomInfo(m, 100 + m);
  GqrProber prober(info);
  std::set<Code> seen;
  ProbeTarget t;
  while (prober.Next(&t)) {
    EXPECT_TRUE(seen.insert(t.bucket).second)
        << "bucket " << t.bucket << " emitted twice";
    EXPECT_EQ(t.bucket & ~LowBitsMask(m), 0u);
  }
  EXPECT_EQ(seen.size(), size_t{1} << m);  // Property 1.
}

TEST_P(GqrPropertyTest, QdNonDecreasingAndMatchesScore) {
  const int m = GetParam();
  QueryHashInfo info = RandomInfo(m, 200 + m);
  GqrProber prober(info);
  ProbeTarget t;
  double prev = -1.0;
  while (prober.Next(&t)) {
    const double qd = QuantizationDistance(info, t.bucket);
    EXPECT_NEAR(prober.last_score(), qd, 1e-9);
    EXPECT_GE(qd, prev - 1e-12);  // Property 2 / (R2).
    prev = qd;
  }
}

TEST_P(GqrPropertyTest, OrderMatchesFullSort) {
  const int m = GetParam();
  QueryHashInfo info = RandomInfo(m, 300 + m);
  // Reference: QD of all 2^m buckets, fully sorted.
  std::vector<double> all;
  for (Code b = 0; b < (Code{1} << m); ++b) {
    all.push_back(QuantizationDistance(info, b));
  }
  std::sort(all.begin(), all.end());
  GqrProber prober(info);
  ProbeTarget t;
  size_t i = 0;
  while (prober.Next(&t)) {
    ASSERT_LT(i, all.size());
    EXPECT_NEAR(QuantizationDistance(info, t.bucket), all[i], 1e-9);
    ++i;
  }
  EXPECT_EQ(i, all.size());
}

INSTANTIATE_TEST_SUITE_P(CodeLengths, GqrPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16));

TEST(GqrProberTest, FirstBucketIsQueryCode) {
  QueryHashInfo info = RandomInfo(10, 7);
  GqrProber prober(info);
  ProbeTarget t;
  ASSERT_TRUE(prober.Next(&t));
  EXPECT_EQ(t.bucket, info.code);
  EXPECT_DOUBLE_EQ(prober.last_score(), 0.0);
}

TEST(GqrProberTest, HeapStaysSmall) {
  // Paper: at most i heap entries after i iterations (each pop pushes at
  // most two children).
  QueryHashInfo info = RandomInfo(16, 8);
  GqrProber prober(info);
  ProbeTarget t;
  for (size_t i = 1; i <= 2000; ++i) {
    ASSERT_TRUE(prober.Next(&t));
    EXPECT_LE(prober.heap_size(), i + 1);
  }
}

TEST(GqrProberTest, TableTagPropagates) {
  QueryHashInfo info = RandomInfo(4, 9);
  GqrProber prober(info, /*table=*/3);
  ProbeTarget t;
  ASSERT_TRUE(prober.Next(&t));
  EXPECT_EQ(t.table, 3u);
}

TEST(GqrProberTest, EqualCostsStillExactlyOnce) {
  // Degenerate ties everywhere: all costs equal.
  QueryHashInfo info;
  info.code = 0b1100;
  info.flip_costs = {0.5, 0.5, 0.5, 0.5};
  GqrProber prober(info);
  std::set<Code> seen;
  ProbeTarget t;
  double prev = -1.0;
  while (prober.Next(&t)) {
    EXPECT_TRUE(seen.insert(t.bucket).second);
    EXPECT_GE(prober.last_score(), prev - 1e-12);
    prev = prober.last_score();
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(GqrProberTest, ZeroCostsHandled) {
  // A projection can be exactly 0 on some bits (cost 0): QD ties, but the
  // enumeration must still be exactly-once and non-decreasing.
  QueryHashInfo info;
  info.code = 0;
  info.flip_costs = {0.0, 0.0, 1.0};
  GqrProber prober(info);
  std::set<Code> seen;
  ProbeTarget t;
  double prev = -1.0;
  while (prober.Next(&t)) {
    EXPECT_TRUE(seen.insert(t.bucket).second);
    EXPECT_GE(prober.last_score(), prev);
    prev = prober.last_score();
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(GqrProberTest, AgreesWithQrOnNonEmptyBuckets) {
  // Build a table over random codes; GQR restricted to existing buckets
  // must probe them in the same order as QR (distinct QDs guaranteed by
  // random real costs).
  const int m = 10;
  Rng rng(55);
  std::vector<Code> codes(2000);
  for (auto& c : codes) c = rng.Uniform(uint64_t{1} << m);
  StaticHashTable table(codes, m);
  QueryHashInfo info = RandomInfo(m, 56);

  QrProber qr(info, table);
  GqrProber gqr(info);
  std::vector<Code> qr_order, gqr_order;
  ProbeTarget t;
  while (qr.Next(&t)) qr_order.push_back(t.bucket);
  while (gqr.Next(&t)) {
    if (!table.Probe(t.bucket).empty()) gqr_order.push_back(t.bucket);
  }
  EXPECT_EQ(qr_order, gqr_order);
}

TEST(GqrProberTest, SixtyFourBitGuard) {
  // m = 63 must not overflow mask arithmetic for a budget-limited run.
  QueryHashInfo info = RandomInfo(63, 57);
  GqrProber prober(info);
  ProbeTarget t;
  double prev = -1.0;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(prober.Next(&t));
    EXPECT_GE(prober.last_score(), prev - 1e-12);
    prev = prober.last_score();
  }
}

}  // namespace
}  // namespace gqr
