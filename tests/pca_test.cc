// Tests for la/pca: recovered directions, variance ordering, projection.
#include <gtest/gtest.h>

#include <cmath>

#include "la/pca.h"
#include "la/vector_ops.h"
#include "util/random.h"

namespace gqr {
namespace {

// Data stretched along a known direction: x = t * dir + small noise.
std::vector<float> StretchedData(size_t n, const std::vector<double>& dir,
                                 Rng* rng) {
  const size_t d = dir.size();
  std::vector<float> data(n * d);
  for (size_t i = 0; i < n; ++i) {
    const double t = rng->Gaussian(0.0, 10.0);
    for (size_t j = 0; j < d; ++j) {
      data[i * d + j] =
          static_cast<float>(t * dir[j] + rng->Gaussian(0.0, 0.1));
    }
  }
  return data;
}

TEST(PcaTest, RecoversDominantDirection) {
  Rng rng(31);
  std::vector<double> dir = {0.6, 0.0, 0.8, 0.0};
  auto data = StretchedData(2000, dir, &rng);
  PcaModel pca = FitPca(data.data(), 2000, 4, 2);
  // First component parallel (up to sign) to dir.
  double dot = 0.0;
  for (size_t j = 0; j < 4; ++j) dot += pca.components.At(0, j) * dir[j];
  EXPECT_NEAR(std::abs(dot), 1.0, 1e-2);
}

TEST(PcaTest, ComponentsOrthonormal) {
  Rng rng(32);
  std::vector<float> data(500 * 6);
  for (auto& v : data) v = static_cast<float>(rng.Gaussian());
  PcaModel pca = FitPca(data.data(), 500, 6, 4);
  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = 0; b < 4; ++b) {
      const double dot =
          Dot(pca.components.Row(a), pca.components.Row(b), 6);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(PcaTest, ExplainedVarianceDescendingNonNegative) {
  Rng rng(33);
  std::vector<float> data(800 * 10);
  for (size_t i = 0; i < 800; ++i) {
    for (size_t j = 0; j < 10; ++j) {
      // Decreasing per-dimension variance.
      data[i * 10 + j] =
          static_cast<float>(rng.Gaussian(0.0, 10.0 - static_cast<double>(j)));
    }
  }
  PcaModel pca = FitPca(data.data(), 800, 10, 10);
  for (size_t c = 0; c < 10; ++c) {
    EXPECT_GE(pca.explained_variance[c], 0.0);
    if (c > 0) {
      EXPECT_GE(pca.explained_variance[c - 1],
                pca.explained_variance[c] - 1e-9);
    }
  }
  // Top variance should be near 100 (stddev 10).
  EXPECT_NEAR(pca.explained_variance[0], 100.0, 20.0);
}

TEST(PcaTest, ProjectionCentersTheMean) {
  // The mean vector itself projects to ~0 on every component.
  Rng rng(34);
  std::vector<float> data(300 * 5);
  for (auto& v : data) v = static_cast<float>(rng.Gaussian(5.0, 2.0));
  PcaModel pca = FitPca(data.data(), 300, 5, 3);
  std::vector<float> mean_f(5);
  for (size_t j = 0; j < 5; ++j) mean_f[j] = static_cast<float>(pca.mean[j]);
  std::vector<double> out(3);
  pca.Project(mean_f.data(), out.data());
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-5);
}

TEST(PcaTest, SubsamplingStillRecoversStructure) {
  Rng rng(35);
  std::vector<double> dir = {1.0, 0.0, 0.0};
  auto data = StretchedData(5000, dir, &rng);
  Rng sample_rng(1);
  PcaModel pca =
      FitPca(data.data(), 5000, 3, 1, /*max_train_samples=*/500, &sample_rng);
  EXPECT_NEAR(std::abs(pca.components.At(0, 0)), 1.0, 1e-2);
}

}  // namespace
}  // namespace gqr
