// Tests for K-means hashing and its appendix flipping-cost definition.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "hash/kmh.h"
#include "la/vector_ops.h"

namespace gqr {
namespace {

Dataset TestData(size_t n = 2000, size_t dim = 16, uint64_t seed = 8) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.num_clusters = 25;
  spec.seed = seed;
  return GenerateClusteredGaussian(spec);
}

TEST(KmhTest, BlocksPartitionDimensions) {
  Dataset data = TestData();
  KmhOptions opt;
  opt.code_length = 16;
  opt.bits_per_block = 4;
  KmhHasher hasher = TrainKmh(data, opt);
  ASSERT_EQ(hasher.blocks().size(), 4u);
  size_t expected_begin = 0;
  for (const auto& block : hasher.blocks()) {
    EXPECT_EQ(block.dim_begin, expected_begin);
    EXPECT_GT(block.dim_end, block.dim_begin);
    EXPECT_EQ(block.codewords.rows(), 16u);  // 2^4 codewords.
    expected_begin = block.dim_end;
  }
  EXPECT_EQ(expected_begin, data.dim());
}

TEST(KmhTest, HashItemSelectsNearestCodeword) {
  Dataset data = TestData(500, 8);
  KmhOptions opt;
  opt.code_length = 8;
  opt.bits_per_block = 4;
  KmhHasher hasher = TrainKmh(data, opt);
  for (size_t i = 0; i < 50; ++i) {
    const float* x = data.Row(static_cast<ItemId>(i));
    const Code code = hasher.HashItem(x);
    int shift = 0;
    for (const auto& block : hasher.blocks()) {
      const auto idx =
          static_cast<uint32_t>((code >> shift) & LowBitsMask(4));
      // Verify idx is the argmin over codewords.
      const size_t sub_dim = block.dim_end - block.dim_begin;
      double best = 1e300;
      uint32_t best_idx = 0;
      for (size_t c = 0; c < block.codewords.rows(); ++c) {
        double sq = 0.0;
        for (size_t j = 0; j < sub_dim; ++j) {
          const double d = block.codewords.At(c, j) -
                           static_cast<double>(x[block.dim_begin + j]);
          sq += d * d;
        }
        if (sq < best) {
          best = sq;
          best_idx = static_cast<uint32_t>(c);
        }
      }
      EXPECT_EQ(idx, best_idx);
      shift += 4;
    }
  }
}

TEST(KmhTest, FlipCostsNonNegativeAndMatchDefinition) {
  Dataset data = TestData(500, 8);
  KmhOptions opt;
  opt.code_length = 8;
  opt.bits_per_block = 4;
  KmhHasher hasher = TrainKmh(data, opt);
  for (size_t i = 0; i < 50; ++i) {
    const float* q = data.Row(static_cast<ItemId>(i));
    QueryHashInfo info = hasher.HashQuery(q);
    EXPECT_EQ(info.code, hasher.HashItem(q));
    ASSERT_EQ(info.flip_costs.size(), 8u);
    int shift = 0;
    for (const auto& block : hasher.blocks()) {
      const auto idx =
          static_cast<uint32_t>((info.code >> shift) & LowBitsMask(4));
      const size_t sub_dim = block.dim_end - block.dim_begin;
      auto dist_to = [&](uint32_t c) {
        double sq = 0.0;
        for (size_t j = 0; j < sub_dim; ++j) {
          const double d = block.codewords.At(c, j) -
                           static_cast<double>(q[block.dim_begin + j]);
          sq += d * d;
        }
        return std::sqrt(sq);
      };
      for (int b = 0; b < 4; ++b) {
        const double cost = info.flip_costs[shift + b];
        EXPECT_GE(cost, -1e-9);
        // Appendix definition: dist(q, c') - dist(q, c).
        EXPECT_NEAR(cost, dist_to(idx ^ (1u << b)) - dist_to(idx), 1e-9);
      }
      shift += 4;
    }
  }
}

TEST(KmhTest, AffinityAssignmentBeatsRandomOnAverage) {
  // With the affinity-preserving assignment, codewords at Hamming
  // distance 1 should be geometrically closer (on average) than codewords
  // at larger Hamming distance.
  Dataset data = TestData(3000, 8, 12);
  KmhOptions opt;
  opt.code_length = 8;
  opt.bits_per_block = 4;
  KmhHasher hasher = TrainKmh(data, opt);
  double near_sum = 0.0, far_sum = 0.0;
  size_t near_count = 0, far_count = 0;
  for (const auto& block : hasher.blocks()) {
    const size_t k = block.codewords.rows();
    const size_t sub_dim = block.dim_end - block.dim_begin;
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = a + 1; b < k; ++b) {
        const double d = std::sqrt(SquaredL2(block.codewords.Row(a),
                                             block.codewords.Row(b),
                                             sub_dim));
        if (HammingDistance(static_cast<Code>(a), static_cast<Code>(b)) ==
            1) {
          near_sum += d;
          ++near_count;
        } else if (HammingDistance(static_cast<Code>(a),
                                   static_cast<Code>(b)) >= 3) {
          far_sum += d;
          ++far_count;
        }
      }
    }
  }
  ASSERT_GT(near_count, 0u);
  ASSERT_GT(far_count, 0u);
  EXPECT_LT(near_sum / near_count, far_sum / far_count);
}

TEST(KmhTest, DeterministicInSeed) {
  Dataset data = TestData(300, 8);
  KmhOptions opt;
  opt.code_length = 8;
  opt.bits_per_block = 4;
  opt.seed = 3;
  KmhHasher a = TrainKmh(data, opt);
  KmhHasher b = TrainKmh(data, opt);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.HashItem(data.Row(static_cast<ItemId>(i))),
              b.HashItem(data.Row(static_cast<ItemId>(i))));
  }
}

}  // namespace
}  // namespace gqr
