// Tests for data/ground_truth against a naive O(n log n) reference.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "la/vector_ops.h"

namespace gqr {
namespace {

std::vector<std::pair<float, ItemId>> NaiveAll(const Dataset& base,
                                               const float* q) {
  std::vector<std::pair<float, ItemId>> all;
  for (size_t i = 0; i < base.size(); ++i) {
    all.emplace_back(
        L2Distance(base.Row(static_cast<ItemId>(i)), q, base.dim()),
        static_cast<ItemId>(i));
  }
  std::sort(all.begin(), all.end());
  return all;
}

TEST(GroundTruthTest, BruteForceMatchesFullSort) {
  SyntheticSpec spec;
  spec.n = 300;
  spec.dim = 6;
  Dataset base = GenerateClusteredGaussian(spec);
  const float* q = base.Row(0);
  Neighbors nn = BruteForceKnn(base, q, 10);
  auto ref = NaiveAll(base, q);
  ASSERT_EQ(nn.ids.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(nn.distances[i], ref[i].first, 1e-4);
  }
  // Distances ascending.
  for (size_t i = 1; i < 10; ++i) {
    EXPECT_LE(nn.distances[i - 1], nn.distances[i]);
  }
  // Query is its own nearest neighbor (it is row 0 of base).
  EXPECT_EQ(nn.ids[0], 0u);
  EXPECT_FLOAT_EQ(nn.distances[0], 0.f);
}

TEST(GroundTruthTest, ParallelMatchesSequential) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 5;
  spec.seed = 3;
  Dataset all = GenerateClusteredGaussian(spec);
  Rng rng(1);
  auto [base, queries] = all.SplitQueries(20, &rng);
  auto gt = ComputeGroundTruth(base, queries, 7);
  ASSERT_EQ(gt.size(), 20u);
  for (size_t q = 0; q < queries.size(); ++q) {
    Neighbors ref = BruteForceKnn(base, queries.Row(static_cast<ItemId>(q)), 7);
    EXPECT_EQ(gt[q].ids, ref.ids) << "query " << q;
  }
}

TEST(GroundTruthTest, KEqualsN) {
  Dataset base(5, 2);
  for (size_t i = 0; i < 5; ++i) {
    base.MutableRow(static_cast<ItemId>(i))[0] = static_cast<float>(i);
  }
  const float q[2] = {0.f, 0.f};
  Neighbors nn = BruteForceKnn(base, q, 5);
  EXPECT_EQ(nn.ids.size(), 5u);
  EXPECT_EQ(nn.ids[0], 0u);
  EXPECT_EQ(nn.ids[4], 4u);
}

}  // namespace
}  // namespace gqr
