// Unit tests for the planner's feedback machinery (plan/): the bounded
// EWMA table (asymmetric updates, eviction under pressure) and the
// deterministic epsilon-greedy exploration schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/searcher.h"
#include "plan/feedback_table.h"
#include "plan/planner.h"

namespace gqr {
namespace {

TEST(FeedbackTableTest, MissThenHit) {
  FeedbackTable table(FeedbackTable::Options{});
  double ewma = -1.0;
  EXPECT_FALSE(table.Predict(0xfeedULL, &ewma));
  EXPECT_EQ(ewma, -1.0);  // A miss leaves the output untouched.
  table.Record(0xfeedULL, 120.0);
  ASSERT_TRUE(table.Predict(0xfeedULL, &ewma));
  EXPECT_DOUBLE_EQ(ewma, 120.0);
  EXPECT_EQ(table.counters().records, 1u);
  EXPECT_EQ(table.counters().entries, 1u);
}

TEST(FeedbackTableTest, AsymmetricEwmaTracksTheHardTail) {
  FeedbackTable::Options opt;
  opt.alpha_up = 0.5;
  opt.alpha_down = 0.15;
  FeedbackTable table(opt);
  const uint64_t key = 42;
  table.Record(key, 100.0);
  table.Record(key, 200.0);  // Up: 100 + 0.5 * (200 - 100) = 150.
  double ewma = 0.0;
  ASSERT_TRUE(table.Predict(key, &ewma));
  EXPECT_DOUBLE_EQ(ewma, 150.0);
  table.Record(key, 100.0);  // Down: 150 + 0.15 * (100 - 150) = 142.5.
  ASSERT_TRUE(table.Predict(key, &ewma));
  EXPECT_DOUBLE_EQ(ewma, 142.5);
}

TEST(FeedbackTableTest, CapacityRoundsUpAndBoundsEntries) {
  FeedbackTable::Options opt;
  opt.capacity = 5;  // Rounds to 8 (= kProbeWindow minimum).
  FeedbackTable table(opt);
  EXPECT_EQ(table.capacity(), 8u);
  for (uint64_t k = 0; k < 64; ++k) {
    table.Record(k, static_cast<double>(k + 1));
  }
  const FeedbackTable::Counters c = table.counters();
  EXPECT_EQ(c.records, 64u);
  EXPECT_LE(c.entries, table.capacity());
  // 64 distinct keys through 8 slots: eviction must have fired, and
  // the books must balance (every record either created, updated, or
  // evicted-into a slot).
  EXPECT_GT(c.evictions, 0u);
  EXPECT_EQ(c.entries + c.evictions, 64u);
}

TEST(FeedbackTableTest, EvictionRecyclesTheStalestSlot) {
  FeedbackTable::Options opt;
  opt.capacity = 8;  // Window == whole table: fully controllable.
  FeedbackTable table(opt);
  for (uint64_t k = 0; k < 8; ++k) {
    table.Record(k, 10.0 * static_cast<double>(k + 1));
  }
  // Refresh key 0 so key 1 becomes the stalest, then overflow.
  table.Record(0, 10.0);
  table.Record(99, 500.0);
  double ewma = 0.0;
  EXPECT_TRUE(table.Predict(99, &ewma));
  EXPECT_DOUBLE_EQ(ewma, 500.0);
  EXPECT_TRUE(table.Predict(0, &ewma));   // Refreshed: survived.
  EXPECT_FALSE(table.Predict(1, &ewma));  // Stalest: evicted.
  EXPECT_EQ(table.counters().evictions, 1u);
}

TEST(FeedbackTableDeathTest, RejectsMalformedAlphas) {
  FeedbackTable::Options opt;
  opt.alpha_up = 0.0;
  EXPECT_DEATH(FeedbackTable{opt}, "alpha_up");
  opt.alpha_up = 0.5;
  opt.alpha_down = 1.5;
  EXPECT_DEATH(FeedbackTable{opt}, "alpha_down");
}

// The exploration schedule is a pure function of (seed, ticket): two
// planners with the same seed agree on every ticket, and the schedule
// replays identically however the tickets are interleaved.
TEST(BudgetPlannerTest, ExplorationScheduleIsDeterministic) {
  PlannerOptions po;
  po.explore_epsilon = 0.5;
  po.seed = 1234;
  BudgetPlanner a(po);
  BudgetPlanner b(po);
  PlannerOptions other = po;
  other.seed = 4321;
  BudgetPlanner c(other);

  size_t explored = 0;
  size_t diverged = 0;
  for (uint64_t ticket = 0; ticket < 2000; ++ticket) {
    const bool ea = a.WouldExplore(ticket);
    EXPECT_EQ(ea, b.WouldExplore(ticket)) << "ticket " << ticket;
    if (ea) ++explored;
    if (ea != c.WouldExplore(ticket)) ++diverged;
  }
  // The rate tracks epsilon (binomial, wide tolerance)...
  EXPECT_GT(explored, 800u);
  EXPECT_LT(explored, 1200u);
  // ... and a different seed yields a genuinely different schedule.
  EXPECT_GT(diverged, 0u);
}

TEST(BudgetPlannerTest, PlanClampsAndFlagsFeedback) {
  PlannerOptions po;
  po.explore_epsilon = 0.0;
  po.headroom = 2.0;
  po.min_budget = 50;
  BudgetPlanner planner(po);

  // Cold miss: the fixed budget runs unmodified.
  PlanDecision cold = planner.Plan(/*feature_key=*/7, /*ticket=*/0,
                                   /*fixed_budget=*/1000);
  EXPECT_EQ(cold.budget, 1000u);
  EXPECT_FALSE(cold.from_feedback);
  EXPECT_FALSE(cold.explored);

  // An uncensored observation (full budget ran) is learned from...
  SearchStats stats;
  stats.items_to_last_improvement = 100;
  planner.Observe(/*feature_key=*/7, cold, stats);
  PlanDecision warm = planner.Plan(7, 1, 1000);
  EXPECT_EQ(warm.budget, 200u);  // ceil(2.0 * 100), above min_budget.
  EXPECT_TRUE(warm.from_feedback);

  // ... the floor and the fixed-budget ceiling both clamp...
  SearchStats tiny;
  tiny.items_to_last_improvement = 1;
  planner.Observe(/*feature_key=*/8, cold, tiny);
  EXPECT_EQ(planner.Plan(8, 2, 1000).budget, po.min_budget);
  SearchStats huge;
  huge.items_to_last_improvement = 5000;
  planner.Observe(/*feature_key=*/9, cold, huge);
  EXPECT_EQ(planner.Plan(9, 3, 1000).budget, 1000u);

  // ... and a budget-censored run (learned budget, no termination) is
  // never folded back — the anti-ratchet discipline.
  const uint64_t before = planner.feedback_counters().records;
  SearchStats censored;
  censored.items_to_last_improvement = 10;
  censored.terminated = false;
  planner.Observe(/*feature_key=*/7, warm, censored);
  EXPECT_EQ(planner.feedback_counters().records, before);
  // The same run stopped by the termination rule provably converged, so
  // it *is* learned from.
  censored.terminated = true;
  planner.Observe(/*feature_key=*/7, warm, censored);
  EXPECT_EQ(planner.feedback_counters().records, before + 1);
}

TEST(BudgetPlannerTest, FeatureKeyIsStableAndDiscriminates) {
  QueryHashInfo a;
  a.code = 5;
  a.flip_costs = {0.5, 0.5, 0.5, 0.5};
  QueryHashInfo b = a;
  b.code = 9;  // The key reads the cost distribution, not the code.
  EXPECT_EQ(QueryFeatureKey(a), QueryFeatureKey(b));
  QueryHashInfo c = a;
  c.flip_costs = {0.001, 0.9, 0.9, 0.9};  // Boundary-hugging query.
  EXPECT_NE(QueryFeatureKey(a), QueryFeatureKey(c));
}

}  // namespace
}  // namespace gqr
