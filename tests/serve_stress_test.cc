// Churn + serve soak: QueryService answering concurrent client threads
// while writers Insert/Remove against the ShardedIndex and a snapshotter
// re-freezes shards. Under the TSan CI leg this is the data-race proof
// for the serving front end — the coalescer queue, the linger waits, the
// future handoff, and the batch execution path over the mutating index.
//
// Iteration counts default low so tier-1 ctest stays fast; set
// GQR_STRESS_ITERS (read through util/env) for full-length soak runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "hash/lsh.h"
#include "serve/query_service.h"
#include "util/env.h"

namespace gqr {
namespace {

constexpr int kBits = 12;
constexpr size_t kShards = 4;

TEST(ServeStressTest, ServeUnderChurnAndFreezes) {
  const int64_t iters = StressIters(/*fallback=*/40);

  SyntheticSpec spec;
  spec.n = 4032;
  spec.dim = 8;
  spec.num_clusters = 20;
  spec.seed = 811;
  Dataset all = GenerateClusteredGaussian(spec);
  Rng rng(17);
  auto [base, queries] = all.SplitQueries(32, &rng);
  LshOptions opt;
  opt.code_length = kBits;
  const LinearHasher hasher = TrainLsh(base, base.dim(), opt);
  const std::vector<Code> codes = hasher.HashDataset(base);

  const size_t n = base.size();
  const size_t stable = n / 2;  // [0, stable) stays put; the rest churns.
  ShardedIndex index(kBits, kShards);
  for (size_t id = 0; id < stable; ++id) {
    ASSERT_TRUE(index.Insert(static_cast<ItemId>(id), codes[id]).ok());
  }

  Searcher searcher(base);
  QueryServiceOptions service_opt;
  service_opt.search.k = 10;
  service_opt.search.max_candidates = 300;
  service_opt.max_batch = 16;
  service_opt.max_linger = std::chrono::microseconds(200);
  service_opt.max_queue = 256;
  QueryService service(searcher, hasher, index, service_opt);

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  // One writer churns the dynamic half of the id space, freezing a shard
  // each round so probes keep flipping between frozen snapshots and the
  // live tables while batches execute.
  std::thread writer([&] {
    for (int64_t it = 0; it < iters; ++it) {
      for (size_t id = stable; id < n; ++id) {
        if (!index.Insert(static_cast<ItemId>(id), codes[id]).ok()) {
          violation.store(true);
        }
      }
      (void)index.FreezeShard(static_cast<size_t>(it) % kShards);
      for (size_t id = stable; id < n; ++id) {
        if (!index.Remove(static_cast<ItemId>(id), codes[id]).ok()) {
          violation.store(true);
        }
      }
    }
    stop.store(true, std::memory_order_release);
  });

  // Client threads hammer Submit() the whole time and validate every
  // response: ids in range and distinct, distances finite and ascending.
  // Short deadlines keep the expiry path exercised under load.
  auto client = [&](unsigned seed) {
    size_t q = seed;
    while (!stop.load(std::memory_order_acquire)) {
      q = (q + 1) % queries.size();
      const QueryService::Deadline deadline =
          QueryService::Clock::now() + std::chrono::milliseconds(50);
      Response resp =
          service.Submit(queries.Row(static_cast<ItemId>(q)), 0, deadline)
              .Get();
      if (resp.status != RequestStatus::kOk) continue;  // Expired/shed.
      const SearchResult& r = resp.result;
      for (size_t i = 0; i < r.ids.size(); ++i) {
        if (r.ids[i] >= n || !std::isfinite(r.distances[i])) {
          violation.store(true);
        }
        if (i > 0 && r.distances[i] < r.distances[i - 1]) {
          violation.store(true);
        }
        for (size_t j = i + 1; j < r.ids.size(); ++j) {
          if (r.ids[i] == r.ids[j]) violation.store(true);
        }
      }
    }
  };
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < 3; ++c) clients.emplace_back(client, c);

  writer.join();
  for (auto& thread : clients) thread.join();
  service.Shutdown();

  EXPECT_FALSE(violation.load());
  const ServiceStats stats = service.Stats();
  EXPECT_GT(stats.completed, 0u);
  EXPECT_EQ(stats.accepted,
            stats.completed + stats.expired);  // Every request resolved.
}

}  // namespace
}  // namespace gqr
