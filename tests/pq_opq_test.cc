// Tests for PQ and OPQ: encode/decode consistency, distance tables,
// quantization-error behaviour, rotation orthogonality.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "la/vector_ops.h"
#include "vq/opq.h"
#include "vq/pq.h"

namespace gqr {
namespace {

std::vector<double> RandomDoubles(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data(n * dim);
  for (auto& v : data) v = rng.Gaussian();
  return data;
}

TEST(PqTest, EncodePicksNearestCentroidPerSubspace) {
  auto data = RandomDoubles(500, 8, 101);
  PqOptions opt;
  opt.num_subspaces = 2;
  opt.num_centroids = 8;
  PqCodebook cb = TrainPq(data.data(), 500, 8, opt);
  ASSERT_EQ(cb.num_subspaces(), 2);
  for (size_t i = 0; i < 50; ++i) {
    const double* x = data.data() + i * 8;
    auto code = cb.Encode(x);
    std::vector<std::vector<double>> tables;
    cb.ComputeDistanceTables(x, &tables);
    for (int s = 0; s < 2; ++s) {
      // The encoded centroid minimizes the distance table.
      double min_d = 1e300;
      for (double d : tables[s]) min_d = std::min(min_d, d);
      EXPECT_NEAR(tables[s][code[s]], min_d, 1e-12);
    }
  }
}

TEST(PqTest, DistanceTablesMatchDirectComputation) {
  auto data = RandomDoubles(300, 6, 102);
  PqOptions opt;
  opt.num_subspaces = 3;
  opt.num_centroids = 4;
  PqCodebook cb = TrainPq(data.data(), 300, 6, opt);
  const double* x = data.data();
  std::vector<std::vector<double>> tables;
  cb.ComputeDistanceTables(x, &tables);
  for (int s = 0; s < 3; ++s) {
    const auto& sub = cb.subspace(s);
    for (size_t c = 0; c < sub.centroids.rows(); ++c) {
      double expect = 0.0;
      for (size_t j = sub.dim_begin; j < sub.dim_end; ++j) {
        const double d = sub.centroids.At(c, j - sub.dim_begin) - x[j];
        expect += d * d;
      }
      EXPECT_NEAR(tables[s][c], expect, 1e-12);
    }
  }
}

TEST(PqTest, DecodeReconstructsCentroids) {
  auto data = RandomDoubles(200, 4, 103);
  PqOptions opt;
  opt.num_subspaces = 2;
  opt.num_centroids = 4;
  PqCodebook cb = TrainPq(data.data(), 200, 4, opt);
  std::vector<uint32_t> code = {1, 3};
  std::vector<double> rec(4);
  cb.Decode(code, rec.data());
  EXPECT_DOUBLE_EQ(rec[0], cb.subspace(0).centroids.At(1, 0));
  EXPECT_DOUBLE_EQ(rec[3], cb.subspace(1).centroids.At(3, 1));
}

TEST(PqTest, MoreCentroidsLowerError) {
  auto data = RandomDoubles(2000, 8, 104);
  PqOptions small, large;
  small.num_subspaces = large.num_subspaces = 2;
  small.num_centroids = 4;
  large.num_centroids = 32;
  const double err_small =
      TrainPq(data.data(), 2000, 8, small).QuantizationError(data.data(), 2000);
  const double err_large =
      TrainPq(data.data(), 2000, 8, large).QuantizationError(data.data(), 2000);
  EXPECT_LT(err_large, err_small);
}

TEST(OpqTest, RotationIsOrthogonal) {
  SyntheticSpec spec;
  spec.n = 1500;
  spec.dim = 10;
  spec.seed = 105;
  Dataset data = GenerateClusteredGaussian(spec);
  OpqOptions opt;
  opt.num_centroids = 16;
  opt.iterations = 4;
  OpqModel model = TrainOpq(data, opt);
  const Matrix& r = model.rotation();
  EXPECT_LT(r.TransposedMultiply(r).MaxAbsDiff(Matrix::Identity(10)),
            1e-8);
}

TEST(OpqTest, ErrorHistoryImproves) {
  SyntheticSpec spec;
  spec.n = 2000;
  spec.dim = 12;
  spec.seed = 106;
  Dataset data = GenerateClusteredGaussian(spec);
  OpqOptions opt;
  opt.num_centroids = 16;
  opt.iterations = 8;
  OpqModel model = TrainOpq(data, opt);
  const auto& hist = model.error_history();
  ASSERT_EQ(hist.size(), 8u);
  // The alternation should not end worse than it started (allow small
  // k-means noise between consecutive rounds).
  EXPECT_LE(hist.back(), hist.front() * 1.05);
  for (double e : hist) EXPECT_GE(e, 0.0);
}

TEST(OpqTest, EncodeItemConsistentWithRotateAndEncode) {
  SyntheticSpec spec;
  spec.n = 800;
  spec.dim = 8;
  spec.seed = 107;
  Dataset data = GenerateClusteredGaussian(spec);
  OpqOptions opt;
  opt.num_centroids = 8;
  opt.iterations = 3;
  OpqModel model = TrainOpq(data, opt);
  for (ItemId i = 0; i < 20; ++i) {
    std::vector<double> rotated(8);
    model.RotateInto(data.Row(i), rotated.data());
    EXPECT_EQ(model.EncodeItem(data.Row(i)),
              model.codebook().Encode(rotated.data()));
  }
}

TEST(OpqTest, RotationPreservesNorms) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 6;
  spec.seed = 108;
  Dataset data = GenerateClusteredGaussian(spec);
  OpqOptions opt;
  opt.num_centroids = 8;
  opt.iterations = 2;
  OpqModel model = TrainOpq(data, opt);
  // Orthogonal rotations are isometries: ||R^T(x - y)|| == ||x - y|| for
  // any pair (the mean offset cancels), which is what makes distances in
  // the rotated codebook space meaningful.
  std::vector<double> rx(6), ry(6);
  for (ItemId i = 0; i + 1 < 20; ++i) {
    model.RotateInto(data.Row(i), rx.data());
    model.RotateInto(data.Row(i + 1), ry.data());
    double rot_sq = 0.0;
    for (size_t j = 0; j < 6; ++j) {
      const double d = rx[j] - ry[j];
      rot_sq += d * d;
    }
    const double orig_sq = SquaredL2(data.Row(i), data.Row(i + 1), 6);
    EXPECT_NEAR(std::sqrt(rot_sq), std::sqrt(orig_sq), 1e-4);
  }
}

}  // namespace
}  // namespace gqr
