// Tests for the recall-target budget auto-tuner.
#include <gtest/gtest.h>

#include "core/batch_search.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "eval/tuner.h"
#include "hash/itq.h"

namespace gqr {
namespace {

struct TunerFixture {
  Dataset base;
  Dataset validation;
  Dataset test;
  std::vector<Neighbors> validation_gt;
  std::vector<Neighbors> test_gt;
  LinearHasher hasher;
  StaticHashTable table;

  static TunerFixture Make() {
    SyntheticSpec spec;
    spec.n = 6000;
    spec.dim = 12;
    spec.num_clusters = 60;
    spec.cluster_stddev = 4.0;
    spec.zipf_exponent = 0.5;
    spec.seed = 231;
    Dataset all = GenerateClusteredGaussian(spec);
    Rng rng(7);
    auto [rest, validation] = all.SplitQueries(40, &rng);
    auto [base, test] = rest.SplitQueries(40, &rng);
    auto validation_gt = ComputeGroundTruth(base, validation, 10);
    auto test_gt = ComputeGroundTruth(base, test, 10);
    ItqOptions opt;
    opt.code_length = 9;
    LinearHasher hasher = TrainItq(base, opt);
    StaticHashTable table(hasher.HashDataset(base), 9);
    return TunerFixture{std::move(base),          std::move(validation),
                        std::move(test),          std::move(validation_gt),
                        std::move(test_gt),       std::move(hasher),
                        std::move(table)};
  }
};

TEST(TunerTest, FindsBudgetMeetingTargetOnValidation) {
  TunerFixture f = TunerFixture::Make();
  TuneOptions opt;
  opt.k = 10;
  opt.target_recall = 0.9;
  TuneResult r = TuneBudgetForRecall(f.base, f.validation, f.validation_gt,
                                     f.hasher, f.table, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.achieved_recall, 0.9);
  EXPECT_GT(r.budget, 10u);
  EXPECT_LT(r.budget, f.base.size());
}

TEST(TunerTest, TunedBudgetGeneralizesToTestQueries) {
  TunerFixture f = TunerFixture::Make();
  TuneOptions opt;
  opt.k = 10;
  opt.target_recall = 0.85;
  TuneResult r = TuneBudgetForRecall(f.base, f.validation, f.validation_gt,
                                     f.hasher, f.table, opt);
  ASSERT_TRUE(r.feasible);
  Searcher searcher(f.base);
  SearchOptions so;
  so.k = 10;
  so.max_candidates = r.budget;
  auto results = BatchSearch(searcher, f.hasher, f.table, f.test,
                             QueryMethod::kGQR, so);
  double recall = 0.0;
  for (size_t q = 0; q < results.size(); ++q) {
    recall += RecallAtK(results[q].ids, f.test_gt[q], 10);
  }
  recall /= static_cast<double>(results.size());
  EXPECT_GT(recall, 0.85 - 0.12) << "tuned budget did not generalize";
}

TEST(TunerTest, HigherTargetNeedsMoreBudget) {
  TunerFixture f = TunerFixture::Make();
  TuneOptions low;
  low.k = 10;
  low.target_recall = 0.6;
  TuneOptions high = low;
  high.target_recall = 0.95;
  TuneResult a = TuneBudgetForRecall(f.base, f.validation, f.validation_gt,
                                     f.hasher, f.table, low);
  TuneResult b = TuneBudgetForRecall(f.base, f.validation, f.validation_gt,
                                     f.hasher, f.table, high);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_LE(a.budget, b.budget);
}

TEST(TunerTest, InfeasibleTargetReported) {
  TunerFixture f = TunerFixture::Make();
  TuneOptions opt;
  opt.k = 10;
  opt.target_recall = 0.99;
  opt.max_fraction = 0.001;  // Budget cap far too small for 99% recall.
  TuneResult r = TuneBudgetForRecall(f.base, f.validation, f.validation_gt,
                                     f.hasher, f.table, opt);
  EXPECT_FALSE(r.feasible);
  EXPECT_LT(r.recall_at_max, 0.99);
}

TEST(TunerTest, EmptyValidationIsInfeasible) {
  TunerFixture f = TunerFixture::Make();
  Dataset empty(0, f.base.dim());
  TuneOptions opt;
  TuneResult r = TuneBudgetForRecall(f.base, empty, {}, f.hasher, f.table,
                                     opt);
  EXPECT_FALSE(r.feasible);
}

}  // namespace
}  // namespace gqr
