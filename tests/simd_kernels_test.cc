// Tests for the runtime-dispatched SIMD distance kernels: exhaustive
// scalar-vs-dispatched equivalence over dims 1..65 (odd tails, unaligned
// pointers), fused-vs-standalone consistency, and the batched evaluation
// path against the one-shot reference distances.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/eval_batch.h"
#include "data/dataset.h"
#include "la/simd_kernels.h"
#include "la/vector_ops.h"
#include "util/random.h"

namespace gqr {
namespace {

// Relative agreement bound between the scalar reference and the SIMD
// kernels (different accumulation orders round differently).
constexpr float kRelTol = 1e-4f;

void ExpectClose(float expected, float actual, size_t dim) {
  const float scale =
      std::max(1.f, std::max(std::fabs(expected), std::fabs(actual)));
  EXPECT_LE(std::fabs(expected - actual), kRelTol * scale)
      << "dim=" << dim << " expected=" << expected << " actual=" << actual;
}

// Fills [out, out + n) with values in [-1, 1).
void FillRandom(float* out, size_t n, Rng* rng) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(rng->UniformDouble() * 2.0 - 1.0);
  }
}

TEST(SimdKernelsTest, DispatchedMatchesScalarOnEveryDim) {
  Rng rng(17);
  const DistanceKernels& k = Kernels();
  for (size_t dim = 1; dim <= 65; ++dim) {
    // +1 float of padding, then index from 1: the kernels must accept
    // pointers that are not 32-byte (or even 8-byte) aligned.
    std::vector<float> abuf(dim + 1), bbuf(dim + 1);
    FillRandom(abuf.data(), abuf.size(), &rng);
    FillRandom(bbuf.data(), bbuf.size(), &rng);
    const float* a = abuf.data() + 1;
    const float* b = bbuf.data() + 1;

    ExpectClose(SquaredL2Scalar(a, b, dim), k.squared_l2(a, b, dim), dim);
    ExpectClose(DotScalar(a, b, dim), k.dot(a, b, dim), dim);

    float ds, ns, dk, nk;
    DotAndNormScalar(a, b, dim, &ds, &ns);
    k.dot_and_norm(a, b, dim, &dk, &nk);
    ExpectClose(ds, dk, dim);
    ExpectClose(ns, nk, dim);

    float ds3, nas, nbs, dk3, nak, nbk;
    DotAndNormsScalar(a, b, dim, &ds3, &nas, &nbs);
    k.dot_and_norms(a, b, dim, &dk3, &nak, &nbk);
    ExpectClose(ds3, dk3, dim);
    ExpectClose(nas, nak, dim);
    ExpectClose(nbs, nbk, dim);
  }
}

// The consistency contract of simd_kernels.h: fused kernels agree with
// the standalone ones of the same dispatch level, so cached-norm cosine
// (search path) equals one-shot CosineDistance (reference path).
TEST(SimdKernelsTest, FusedKernelsMatchStandalone) {
  Rng rng(23);
  const DistanceKernels& k = Kernels();
  for (size_t dim : {1u, 2u, 7u, 8u, 16u, 17u, 31u, 64u, 65u, 128u, 133u}) {
    std::vector<float> a(dim), b(dim);
    FillRandom(a.data(), dim, &rng);
    FillRandom(b.data(), dim, &rng);

    float dot2, a_norm2;
    k.dot_and_norm(a.data(), b.data(), dim, &dot2, &a_norm2);
    EXPECT_FLOAT_EQ(dot2, k.dot(a.data(), b.data(), dim)) << dim;
    EXPECT_FLOAT_EQ(a_norm2, k.dot(a.data(), a.data(), dim)) << dim;

    float dot3, na2, nb2;
    k.dot_and_norms(a.data(), b.data(), dim, &dot3, &na2, &nb2);
    EXPECT_FLOAT_EQ(dot3, k.dot(a.data(), b.data(), dim)) << dim;
    EXPECT_FLOAT_EQ(na2, k.dot(a.data(), a.data(), dim)) << dim;
    EXPECT_FLOAT_EQ(nb2, k.dot(b.data(), b.data(), dim)) << dim;
  }
}

TEST(SimdKernelsTest, VectorOpsRouteThroughDispatch) {
  Rng rng(31);
  const size_t dim = 48;
  std::vector<float> a(dim), b(dim);
  FillRandom(a.data(), dim, &rng);
  FillRandom(b.data(), dim, &rng);
  const DistanceKernels& k = Kernels();
  EXPECT_FLOAT_EQ(SquaredL2(a.data(), b.data(), dim),
                  k.squared_l2(a.data(), b.data(), dim));
  EXPECT_FLOAT_EQ(Dot(a.data(), b.data(), dim),
                  k.dot(a.data(), b.data(), dim));
}

TEST(SimdKernelsTest, LevelNameIsConsistent) {
  const SimdLevel level = ActiveSimdLevel();
  const char* name = SimdLevelName(level);
  EXPECT_TRUE(level == SimdLevel::kScalar || level == SimdLevel::kAvx2 ||
              level == SimdLevel::kAvx512);
  EXPECT_TRUE(std::string(name) == "scalar" || std::string(name) == "avx2" ||
              std::string(name) == "avx512");
  // The active level must be one the host can actually execute, and
  // names round-trip through the parser.
  EXPECT_TRUE(SimdLevelAvailable(level));
  SimdLevel parsed = SimdLevel::kScalar;
  EXPECT_TRUE(ParseSimdLevel(name, &parsed));
  EXPECT_EQ(parsed, level);
  EXPECT_FALSE(ParseSimdLevel("sse9", &parsed));
  EXPECT_FALSE(ParseSimdLevel(nullptr, &parsed));
}

TEST(EvalBatchTest, EuclideanMatchesOneShotDistances) {
  Rng rng(41);
  const size_t n = 300, dim = 37;
  std::vector<float> data(n * dim);
  FillRandom(data.data(), data.size(), &rng);
  Dataset base(n, dim, std::move(data));
  std::vector<float> query(dim);
  FillRandom(query.data(), dim, &rng);

  std::vector<ItemId> ids;
  for (size_t i = 0; i < n; i += 3) ids.push_back(static_cast<ItemId>(i));
  std::vector<float> out(ids.size());
  const QueryContext ctx =
      MakeQueryContext(query.data(), dim, Metric::kEuclidean);
  EvalDistancesBatch(query.data(), ctx, base, ids.data(), ids.size(),
                     out.data());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], L2Distance(base.Row(ids[i]), query.data(), dim));
  }
}

TEST(EvalBatchTest, AngularMatchesOneShotCosine) {
  Rng rng(43);
  const size_t n = 200, dim = 19;
  std::vector<float> data(n * dim);
  FillRandom(data.data(), data.size(), &rng);
  Dataset base(n, dim, std::move(data));
  std::vector<float> query(dim);
  FillRandom(query.data(), dim, &rng);

  std::vector<ItemId> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<ItemId>(i);
  std::vector<float> out(n);
  const QueryContext ctx =
      MakeQueryContext(query.data(), dim, Metric::kAngular);
  EvalDistancesBatch(query.data(), ctx, base, ids.data(), n, out.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(out[i],
                    CosineDistance(base.Row(ids[i]), query.data(), dim));
  }
}

TEST(EvalBatchTest, AngularZeroVectorsGiveDistanceOne) {
  const size_t dim = 8;
  Dataset base(3, dim);  // All-zero rows.
  std::vector<float> query(dim, 0.5f);
  std::vector<ItemId> ids = {0, 1, 2};
  std::vector<float> out(3);
  const QueryContext ctx =
      MakeQueryContext(query.data(), dim, Metric::kAngular);
  EvalDistancesBatch(query.data(), ctx, base, ids.data(), 3, out.data());
  for (float d : out) EXPECT_FLOAT_EQ(d, 1.f);

  // Zero query against nonzero rows is also distance 1.
  Dataset base2(1, dim);
  for (size_t j = 0; j < dim; ++j) base2.MutableRow(0)[j] = 1.f;
  std::vector<float> zero_query(dim, 0.f);
  const QueryContext zctx =
      MakeQueryContext(zero_query.data(), dim, Metric::kAngular);
  float d;
  ItemId id = 0;
  EvalDistancesBatch(zero_query.data(), zctx, base2, &id, 1, &d);
  EXPECT_FLOAT_EQ(d, 1.f);
}

TEST(EvalBatchTest, SmallCountsBelowPrefetchDistance) {
  // count < prefetch distance exercises the no-lookahead boundary.
  Rng rng(47);
  const size_t dim = 16;
  std::vector<float> data(8 * dim);
  FillRandom(data.data(), data.size(), &rng);
  Dataset base(8, dim, std::move(data));
  std::vector<float> query(dim);
  FillRandom(query.data(), dim, &rng);
  const QueryContext ctx =
      MakeQueryContext(query.data(), dim, Metric::kEuclidean);
  for (size_t count = 1; count <= 4; ++count) {
    std::vector<ItemId> ids(count);
    for (size_t i = 0; i < count; ++i) ids[i] = static_cast<ItemId>(7 - i);
    std::vector<float> out(count);
    EvalDistancesBatch(query.data(), ctx, base, ids.data(), count,
                       out.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_FLOAT_EQ(out[i],
                      L2Distance(base.Row(ids[i]), query.data(), dim));
    }
  }
}

}  // namespace
}  // namespace gqr
