// Tests for the double-precision projection/GEMM kernel layer:
//  - *bitwise* scalar-vs-dispatched equality for every projection kernel
//    over lengths 1..65 (odd tails, every 4/8-block remainder) on
//    unaligned data — stronger than the float distance kernels' 1e-4
//    relative bound, because hash codes are sign thresholds,
//  - gemm_nt-vs-gemv row equality (the batched path must reproduce the
//    single-query path bit for bit, including the 4-wide register-block
//    remainder columns),
//  - Matrix products against naive references,
//  - HashQueryBatch / HashDataset vs per-query HashQuery / HashItem for
//    every hasher family (LSH, PCAH, ITQ, SSH, SH, KMH).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "hash/itq.h"
#include "hash/kmh.h"
#include "hash/lsh.h"
#include "hash/pcah.h"
#include "hash/sh.h"
#include "hash/ssh.h"
#include "la/matrix.h"
#include "la/simd_kernels.h"
#include "util/random.h"

namespace gqr {
namespace {

void FillRandom(double* out, size_t n, Rng* rng) {
  for (size_t i = 0; i < n; ++i) out[i] = rng->UniformDouble() * 2.0 - 1.0;
}

void FillRandomF(float* out, size_t n, Rng* rng) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(rng->UniformDouble() * 2.0 - 1.0);
  }
}

// Bitwise double equality (EXPECT_EQ would treat -0.0 == 0.0 and reject
// NaN; the kernels' contract is stronger: identical bit patterns).
::testing::AssertionResult BitEqual(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

TEST(ProjectionKernelsTest, DdotDispatchedMatchesScalarBitwise) {
  Rng rng(71);
  const ProjectionKernels& k = ProjKernels();
  for (size_t n = 1; n <= 65; ++n) {
    // +1 double of padding, then index from 1: unaligned pointers.
    std::vector<double> abuf(n + 1), bbuf(n + 1);
    FillRandom(abuf.data(), abuf.size(), &rng);
    FillRandom(bbuf.data(), bbuf.size(), &rng);
    const double* a = abuf.data() + 1;
    const double* b = bbuf.data() + 1;
    EXPECT_TRUE(BitEqual(DdotScalar(a, b, n), k.dot(a, b, n))) << "n=" << n;
  }
}

TEST(ProjectionKernelsTest, DaxpyDispatchedMatchesScalarBitwise) {
  Rng rng(72);
  const ProjectionKernels& k = ProjKernels();
  for (size_t n = 1; n <= 65; ++n) {
    std::vector<double> x(n + 1), y0(n + 1), y1;
    FillRandom(x.data(), x.size(), &rng);
    FillRandom(y0.data(), y0.size(), &rng);
    y1 = y0;
    const double alpha = rng.UniformDouble() * 2.0 - 1.0;
    DaxpyScalar(alpha, x.data() + 1, y0.data() + 1, n);
    k.axpy(alpha, x.data() + 1, y1.data() + 1, n);
    for (size_t i = 0; i < n + 1; ++i) {
      EXPECT_TRUE(BitEqual(y0[i], y1[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ProjectionKernelsTest, CenterDispatchedMatchesScalarBitwise) {
  Rng rng(73);
  const ProjectionKernels& k = ProjKernels();
  for (size_t n = 1; n <= 65; ++n) {
    std::vector<float> x(n + 1);
    std::vector<double> off(n + 1), out0(n), out1(n);
    FillRandomF(x.data(), x.size(), &rng);
    FillRandom(off.data(), off.size(), &rng);
    CenterScalar(x.data() + 1, off.data() + 1, n, out0.data());
    k.center(x.data() + 1, off.data() + 1, n, out1.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(BitEqual(out0[i], out1[i])) << "n=" << n << " i=" << i;
    }
    // Offset-less widening variant.
    CenterScalar(x.data() + 1, nullptr, n, out0.data());
    k.center(x.data() + 1, nullptr, n, out1.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(BitEqual(out0[i], out1[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ProjectionKernelsTest, GemvDispatchedMatchesScalarBitwise) {
  Rng rng(74);
  const ProjectionKernels& k = ProjKernels();
  for (size_t m : {1u, 2u, 3u, 5u, 8u, 17u, 33u, 64u}) {
    for (size_t d : {1u, 3u, 4u, 7u, 8u, 12u, 16u, 31u, 65u}) {
      std::vector<double> w(m * d), x(d), y0(m), y1(m);
      FillRandom(w.data(), w.size(), &rng);
      FillRandom(x.data(), x.size(), &rng);
      DgemvScalar(w.data(), m, d, x.data(), y0.data());
      k.gemv(w.data(), m, d, x.data(), y1.data());
      for (size_t i = 0; i < m; ++i) {
        EXPECT_TRUE(BitEqual(y0[i], y1[i])) << "m=" << m << " d=" << d;
      }
    }
  }
}

TEST(ProjectionKernelsTest, GemmNtDispatchedMatchesScalarBitwise) {
  Rng rng(75);
  const ProjectionKernels& k = ProjKernels();
  // Shapes chosen to hit every register-block remainder (m % 4 in
  // 0..3), row counts around tile edges, and odd inner dims.
  for (size_t n : {1u, 2u, 5u, 16u, 65u}) {
    for (size_t m : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 33u}) {
      for (size_t d : {1u, 4u, 7u, 8u, 24u, 65u}) {
        std::vector<double> a(n * d), b(m * d), c0(n * m), c1(n * m);
        FillRandom(a.data(), a.size(), &rng);
        FillRandom(b.data(), b.size(), &rng);
        DgemmNtScalar(a.data(), n, d, b.data(), m, d, d, c0.data(), m);
        k.gemm_nt(a.data(), n, d, b.data(), m, d, d, c1.data(), m);
        for (size_t i = 0; i < n * m; ++i) {
          EXPECT_TRUE(BitEqual(c0[i], c1[i]))
              << "n=" << n << " m=" << m << " d=" << d << " i=" << i;
        }
      }
    }
  }
}

// The batched/single-query contract at the kernel level: row q of a
// gemm_nt product equals the standalone gemv of that row, bit for bit —
// including remainder columns of the 4-wide register blocking.
TEST(ProjectionKernelsTest, GemmRowsBitIdenticalToGemv) {
  Rng rng(76);
  const ProjectionKernels& k = ProjKernels();
  for (size_t m : {1u, 3u, 4u, 6u, 32u}) {
    for (size_t d : {7u, 16u, 65u, 128u}) {
      const size_t n = 9;
      std::vector<double> a(n * d), b(m * d), c(n * m), y(m);
      FillRandom(a.data(), a.size(), &rng);
      FillRandom(b.data(), b.size(), &rng);
      k.gemm_nt(a.data(), n, d, b.data(), m, d, d, c.data(), m);
      for (size_t q = 0; q < n; ++q) {
        k.gemv(b.data(), m, d, a.data() + q * d, y.data());
        for (size_t i = 0; i < m; ++i) {
          EXPECT_TRUE(BitEqual(c[q * m + i], y[i]))
              << "m=" << m << " d=" << d << " q=" << q << " i=" << i;
        }
      }
    }
  }
}

// Matrix products against a naive reference: the kernel-backed versions
// must agree to rounding (not bitwise — the accumulation order differs
// from the naive loop by design).
TEST(ProjectionKernelsTest, MatrixProductsMatchNaive) {
  Rng rng(77);
  for (size_t rows : {1u, 3u, 17u}) {
    for (size_t inner : {1u, 5u, 66u}) {
      for (size_t cols : {1u, 4u, 19u}) {
        Matrix a = Matrix::RandomGaussian(rows, inner, &rng);
        Matrix b = Matrix::RandomGaussian(inner, cols, &rng);
        Matrix ab = a.Multiply(b);
        ASSERT_EQ(ab.rows(), rows);
        ASSERT_EQ(ab.cols(), cols);
        for (size_t i = 0; i < rows; ++i) {
          for (size_t j = 0; j < cols; ++j) {
            double ref = 0.0;
            for (size_t t = 0; t < inner; ++t) ref += a.At(i, t) * b.At(t, j);
            EXPECT_NEAR(ab.At(i, j), ref, 1e-10 * std::max(1.0, std::abs(ref)))
                << rows << "x" << inner << "x" << cols;
          }
        }
        // A^T * (A * B) exercises TransposedMultiply.
        Matrix atab = a.TransposedMultiply(ab);
        ASSERT_EQ(atab.rows(), inner);
        ASSERT_EQ(atab.cols(), cols);
        for (size_t i = 0; i < inner; ++i) {
          for (size_t j = 0; j < cols; ++j) {
            double ref = 0.0;
            for (size_t t = 0; t < rows; ++t) ref += a.At(t, i) * ab.At(t, j);
            EXPECT_NEAR(atab.At(i, j), ref,
                        1e-10 * std::max(1.0, std::abs(ref)));
          }
        }
        // A * A^T exercises gemm_nt through MultiplyTransposed.
        Matrix aat = a.MultiplyTransposed(a);
        for (size_t i = 0; i < rows; ++i) {
          for (size_t j = 0; j < rows; ++j) {
            double ref = 0.0;
            for (size_t t = 0; t < inner; ++t) ref += a.At(i, t) * a.At(j, t);
            EXPECT_NEAR(aat.At(i, j), ref,
                        1e-10 * std::max(1.0, std::abs(ref)));
          }
        }
      }
    }
  }
}

TEST(ProjectionKernelsTest, MatVecMatchesMultiplyColumn) {
  Rng rng(78);
  Matrix a = Matrix::RandomGaussian(13, 37, &rng);
  std::vector<double> x(37);
  FillRandom(x.data(), x.size(), &rng);
  std::vector<double> y = a.MatVec(x);
  for (size_t i = 0; i < 13; ++i) {
    double ref = 0.0;
    for (size_t j = 0; j < 37; ++j) ref += a.At(i, j) * x[j];
    EXPECT_NEAR(y[i], ref, 1e-10 * std::max(1.0, std::abs(ref)));
  }
}

// ---------------------------------------------------------------------------
// Hasher-level equivalence: for every family, HashQueryBatch must equal
// per-query HashQuery bitwise (codes and flip costs) and HashDataset must
// equal per-item HashItem. Runs under the active dispatch level; CI
// repeats the whole suite with GQR_SIMD=scalar, which closes the
// cross-level half of the contract.
// ---------------------------------------------------------------------------

struct NamedHasher {
  std::string name;
  std::unique_ptr<BinaryHasher> hasher;
};

std::vector<NamedHasher> AllFamilies(const Dataset& data) {
  std::vector<NamedHasher> out;
  {
    LshOptions o;
    o.code_length = 12;
    out.push_back(
        {"LSH", std::make_unique<LinearHasher>(TrainLsh(data, data.dim(), o))});
  }
  {
    PcahOptions o;
    o.code_length = 12;
    out.push_back({"PCAH", std::make_unique<LinearHasher>(TrainPcah(data, o))});
  }
  {
    ItqOptions o;
    o.code_length = 12;
    o.iterations = 10;
    out.push_back({"ITQ", std::make_unique<LinearHasher>(TrainItq(data, o))});
  }
  {
    SshOptions o;
    o.code_length = 12;
    const auto pairs = MakeMetricPairs(data, 64, 99);
    out.push_back(
        {"SSH", std::make_unique<LinearHasher>(TrainSsh(data, pairs, o))});
  }
  {
    ShOptions o;
    o.code_length = 12;
    out.push_back({"SH", std::make_unique<ShHasher>(TrainSh(data, o))});
  }
  {
    KmhOptions o;
    o.code_length = 12;
    o.bits_per_block = 4;
    o.kmeans_iters = 8;
    o.assignment_passes = 3;
    out.push_back({"KMH", std::make_unique<KmhHasher>(TrainKmh(data, o))});
  }
  return out;
}

TEST(ProjectionKernelsTest, HashQueryBatchBitIdenticalToHashQuery) {
  SyntheticSpec spec;
  spec.n = 700;
  spec.dim = 24;
  spec.num_clusters = 10;
  spec.seed = 5;
  Dataset all = GenerateClusteredGaussian(spec);
  Rng rng(3);
  auto [base, queries] = all.SplitQueries(65, &rng);  // Odd tile remainder.

  for (const NamedHasher& nh : AllFamilies(base)) {
    std::vector<QueryHashInfo> batch(queries.size());
    std::vector<double> scratch;
    nh.hasher->HashQueryBatch(queries.Row(0), queries.size(), queries.dim(),
                              &scratch, batch.data());
    for (size_t q = 0; q < queries.size(); ++q) {
      const QueryHashInfo single =
          nh.hasher->HashQuery(queries.Row(static_cast<ItemId>(q)));
      EXPECT_EQ(batch[q].code, single.code) << nh.name << " query " << q;
      ASSERT_EQ(batch[q].flip_costs.size(), single.flip_costs.size());
      for (size_t i = 0; i < single.flip_costs.size(); ++i) {
        EXPECT_TRUE(BitEqual(batch[q].flip_costs[i], single.flip_costs[i]))
            << nh.name << " query " << q << " bit " << i;
      }
    }
  }
}

TEST(ProjectionKernelsTest, HashDatasetBitIdenticalToHashItem) {
  SyntheticSpec spec;
  spec.n = 600;
  spec.dim = 20;
  spec.num_clusters = 8;
  spec.seed = 6;
  Dataset data = GenerateClusteredGaussian(spec);

  for (const NamedHasher& nh : AllFamilies(data)) {
    const std::vector<Code> codes = nh.hasher->HashDataset(data);
    ASSERT_EQ(codes.size(), data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(codes[i], nh.hasher->HashItem(data.Row(static_cast<ItemId>(i))))
          << nh.name << " item " << i;
    }
  }
}

TEST(ProjectionKernelsTest, ProjectBatchBitIdenticalToProject) {
  SyntheticSpec spec;
  spec.n = 300;
  spec.dim = 33;  // Odd dim: center/gemv tails in play.
  spec.num_clusters = 6;
  spec.seed = 7;
  Dataset data = GenerateClusteredGaussian(spec);
  ItqOptions o;
  o.code_length = 14;
  o.iterations = 5;
  const LinearHasher hasher = TrainItq(data, o);

  const size_t count = 67;
  std::vector<double> batch(count * 14), single(14);
  hasher.ProjectBatch(data.Row(0), count, data.dim(), batch.data());
  for (size_t q = 0; q < count; ++q) {
    hasher.Project(data.Row(static_cast<ItemId>(q)), single.data());
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_TRUE(BitEqual(batch[q * 14 + i], single[i]))
          << "query " << q << " bit " << i;
    }
  }
}

TEST(ProjectionKernelsTest, HashQueryIntoMatchesHashQuery) {
  SyntheticSpec spec;
  spec.n = 200;
  spec.dim = 16;
  spec.num_clusters = 5;
  spec.seed = 8;
  Dataset data = GenerateClusteredGaussian(spec);
  PcahOptions o;
  o.code_length = 10;
  const LinearHasher hasher = TrainPcah(data, o);

  QueryHashInfo into;
  for (size_t q = 0; q < 20; ++q) {
    hasher.HashQueryInto(data.Row(static_cast<ItemId>(q)), &into);
    const QueryHashInfo value =
        hasher.HashQuery(data.Row(static_cast<ItemId>(q)));
    EXPECT_EQ(into.code, value.code);
    EXPECT_EQ(into.flip_costs, value.flip_costs);
  }
}

}  // namespace
}  // namespace gqr
