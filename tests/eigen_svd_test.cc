// Tests for the Jacobi eigensolver, one-sided-Jacobi SVD, and Procrustes.
#include <gtest/gtest.h>

#include <cmath>

#include "la/eigen_sym.h"
#include "la/procrustes.h"
#include "la/svd.h"
#include "util/random.h"

namespace gqr {
namespace {

Matrix RandomSymmetric(size_t n, Rng* rng) {
  Matrix a = Matrix::RandomGaussian(n, n, rng);
  Matrix sym(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      sym.At(i, j) = 0.5 * (a.At(i, j) + a.At(j, i));
    }
  }
  return sym;
}

TEST(EigenSymTest, DiagonalMatrix) {
  Matrix d(3, 3);
  d.At(0, 0) = 1.0;
  d.At(1, 1) = 5.0;
  d.At(2, 2) = 3.0;
  EigenDecomposition e = EigenSym(d);
  EXPECT_NEAR(e.eigenvalues[0], 5.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[2], 1.0, 1e-10);
}

TEST(EigenSymTest, ReconstructsMatrix) {
  Rng rng(11);
  for (size_t n : {2u, 5u, 17u}) {
    Matrix a = RandomSymmetric(n, &rng);
    EigenDecomposition e = EigenSym(a);
    // V diag(lambda) V^T == A.
    Matrix lambda(n, n);
    for (size_t i = 0; i < n; ++i) lambda.At(i, i) = e.eigenvalues[i];
    Matrix rec =
        e.eigenvectors.Multiply(lambda).MultiplyTransposed(e.eigenvectors);
    EXPECT_LT(rec.MaxAbsDiff(a), 1e-8) << "n=" << n;
  }
}

TEST(EigenSymTest, EigenvectorsOrthonormal) {
  Rng rng(12);
  Matrix a = RandomSymmetric(10, &rng);
  EigenDecomposition e = EigenSym(a);
  Matrix vtv = e.eigenvectors.TransposedMultiply(e.eigenvectors);
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(10)), 1e-9);
}

TEST(EigenSymTest, EigenvaluesDescending) {
  Rng rng(13);
  EigenDecomposition e = EigenSym(RandomSymmetric(12, &rng));
  for (size_t i = 1; i < e.eigenvalues.size(); ++i) {
    EXPECT_GE(e.eigenvalues[i - 1], e.eigenvalues[i]);
  }
}

TEST(EigenSymTest, SatisfiesEigenEquation) {
  Rng rng(14);
  const size_t n = 8;
  Matrix a = RandomSymmetric(n, &rng);
  EigenDecomposition e = EigenSym(a);
  for (size_t j = 0; j < n; ++j) {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = e.eigenvectors.At(i, j);
    std::vector<double> av = a.MatVec(v);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], e.eigenvalues[j] * v[i], 1e-8);
    }
  }
}

class SvdShapeTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SvdShapeTest, ReconstructionAndOrthogonality) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 100 + cols);
  Matrix a = Matrix::RandomGaussian(rows, cols, &rng);
  SvdResult svd = Svd(a);
  const size_t k = std::min(rows, cols);
  ASSERT_EQ(svd.singular_values.size(), k);
  ASSERT_EQ(svd.u.rows(), rows);
  ASSERT_EQ(svd.u.cols(), k);
  ASSERT_EQ(svd.v.rows(), cols);
  ASSERT_EQ(svd.v.cols(), k);

  // Singular values descending and non-negative.
  for (size_t i = 0; i < k; ++i) {
    EXPECT_GE(svd.singular_values[i], 0.0);
    if (i > 0) {
      EXPECT_GE(svd.singular_values[i - 1], svd.singular_values[i]);
    }
  }
  // U, V orthonormal columns.
  EXPECT_LT(svd.u.TransposedMultiply(svd.u).MaxAbsDiff(Matrix::Identity(k)),
            1e-9);
  EXPECT_LT(svd.v.TransposedMultiply(svd.v).MaxAbsDiff(Matrix::Identity(k)),
            1e-9);
  // A == U S V^T.
  Matrix s(k, k);
  for (size_t i = 0; i < k; ++i) s.At(i, i) = svd.singular_values[i];
  Matrix rec = svd.u.Multiply(s).MultiplyTransposed(svd.v);
  EXPECT_LT(rec.MaxAbsDiff(a), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapeTest,
                         ::testing::Values(std::make_pair(4u, 4u),
                                           std::make_pair(10u, 4u),
                                           std::make_pair(4u, 10u),
                                           std::make_pair(16u, 16u),
                                           std::make_pair(1u, 5u),
                                           std::make_pair(5u, 1u)));

TEST(SvdTest, RankDeficientMatrix) {
  // Rank-1 matrix: exactly one non-zero singular value.
  Matrix a(4, 3);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      a.At(i, j) = static_cast<double>((i + 1) * (j + 1));
    }
  }
  SvdResult svd = Svd(a);
  EXPECT_GT(svd.singular_values[0], 1.0);
  EXPECT_NEAR(svd.singular_values[1], 0.0, 1e-8);
  EXPECT_NEAR(svd.singular_values[2], 0.0, 1e-8);
}

TEST(SvdTest, AgreesWithEigenOfGram) {
  // Singular values of A == sqrt(eigenvalues of A^T A).
  Rng rng(15);
  Matrix a = Matrix::RandomGaussian(9, 6, &rng);
  SvdResult svd = Svd(a);
  EigenDecomposition e = EigenSym(a.TransposedMultiply(a));
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(svd.singular_values[i],
                std::sqrt(std::max(0.0, e.eigenvalues[i])), 1e-8);
  }
}

TEST(ProcrustesTest, ReturnsOrthogonal) {
  Rng rng(16);
  Matrix m = Matrix::RandomGaussian(7, 7, &rng);
  Matrix r = OrthogonalProcrustes(m);
  EXPECT_LT(r.TransposedMultiply(r).MaxAbsDiff(Matrix::Identity(7)), 1e-9);
}

TEST(ProcrustesTest, RecoversKnownRotation) {
  // B = A R_true; Procrustes on A^T B must recover R_true.
  Rng rng(17);
  Matrix a = Matrix::RandomGaussian(30, 5, &rng);
  Matrix r_true = Matrix::RandomOrthogonal(5, &rng);
  Matrix b = a.Multiply(r_true);
  Matrix r = OrthogonalProcrustes(a.TransposedMultiply(b));
  EXPECT_LT(r.MaxAbsDiff(r_true), 1e-8);
}

TEST(ProcrustesTest, MaximizesTraceAmongRotations) {
  // tr(R^T M) for the Procrustes R must beat random rotations.
  Rng rng(18);
  Matrix m = Matrix::RandomGaussian(5, 5, &rng);
  auto trace_of = [&](const Matrix& r) {
    double t = 0.0;
    Matrix p = r.TransposedMultiply(m);
    for (size_t i = 0; i < 5; ++i) t += p.At(i, i);
    return t;
  };
  const double best = trace_of(OrthogonalProcrustes(m));
  for (int i = 0; i < 25; ++i) {
    Matrix r = Matrix::RandomOrthogonal(5, &rng);
    EXPECT_GE(best, trace_of(r) - 1e-9);
  }
}

}  // namespace
}  // namespace gqr
