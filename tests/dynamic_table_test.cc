// Tests for the dynamic (insert/remove) hash table.
#include <gtest/gtest.h>

#include <set>

#include "core/gqr_prober.h"
#include "core/searcher.h"
#include "data/synthetic.h"
#include "hash/pcah.h"
#include "index/dynamic_table.h"

namespace gqr {
namespace {

TEST(DynamicTableTest, InsertProbeRemove) {
  DynamicHashTable table(8);
  EXPECT_TRUE(table.Insert(1, 0b1010).ok());
  EXPECT_TRUE(table.Insert(2, 0b1010).ok());
  EXPECT_TRUE(table.Insert(3, 0b0001).ok());
  EXPECT_EQ(table.num_items(), 3u);
  EXPECT_EQ(table.num_buckets(), 2u);
  EXPECT_EQ(table.Probe(0b1010).size(), 2u);
  EXPECT_TRUE(table.Contains(1, 0b1010));
  EXPECT_FALSE(table.Contains(1, 0b0001));

  EXPECT_TRUE(table.Remove(1, 0b1010).ok());
  EXPECT_EQ(table.Probe(0b1010).size(), 1u);
  EXPECT_EQ(table.Probe(0b1010)[0], 2u);
  EXPECT_EQ(table.num_items(), 2u);
}

TEST(DynamicTableTest, ErrorPaths) {
  DynamicHashTable table(4);
  EXPECT_TRUE(table.Insert(5, 0b0110).ok());
  // Duplicate insert.
  EXPECT_EQ(table.Insert(5, 0b0110).code(),
            StatusCode::kFailedPrecondition);
  // Out-of-range code.
  EXPECT_EQ(table.Insert(6, 0b10000).code(), StatusCode::kInvalidArgument);
  // Remove from wrong/empty bucket.
  EXPECT_EQ(table.Remove(5, 0b0001).code(), StatusCode::kNotFound);
  EXPECT_EQ(table.Remove(99, 0b0110).code(), StatusCode::kNotFound);
  // Removing the last member erases the bucket.
  EXPECT_TRUE(table.Remove(5, 0b0110).ok());
  EXPECT_EQ(table.num_buckets(), 0u);
}

TEST(DynamicTableTest, FreezeMatchesStaticBuild) {
  Rng rng(201);
  const int m = 8;
  std::vector<Code> codes(500);
  for (auto& c : codes) c = rng.Uniform(1u << m);

  DynamicHashTable dynamic(m);
  for (size_t i = 0; i < codes.size(); ++i) {
    ASSERT_TRUE(dynamic.Insert(static_cast<ItemId>(i), codes[i]).ok());
  }
  Result<StaticHashTable> frozen = dynamic.Freeze();
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
  StaticHashTable direct(codes, m);
  EXPECT_EQ(frozen->num_buckets(), direct.num_buckets());
  EXPECT_EQ(frozen->bucket_codes(), direct.bucket_codes());
  for (Code c : direct.bucket_codes()) {
    std::multiset<ItemId> a(frozen->Probe(c).begin(),
                            frozen->Probe(c).end());
    std::multiset<ItemId> b(direct.Probe(c).begin(), direct.Probe(c).end());
    EXPECT_EQ(a, b);
  }
}

TEST(DynamicTableTest, FreezeRejectsSparseIds) {
  DynamicHashTable table(4);
  ASSERT_TRUE(table.Insert(0, 1).ok());
  ASSERT_TRUE(table.Insert(7, 2).ok());  // Gap: ids {0, 7} not dense.
  EXPECT_EQ(table.Freeze().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DynamicTableTest, StreamingSearchSeesUpdates) {
  SyntheticSpec spec;
  spec.n = 1000;
  spec.dim = 8;
  spec.num_clusters = 10;
  spec.seed = 202;
  Dataset base = GenerateClusteredGaussian(spec);
  PcahOptions opt;
  opt.code_length = 7;
  LinearHasher hasher = TrainPcah(base, opt);

  DynamicHashTable table(7);
  // Ingest only the first half.
  for (ItemId i = 0; i < 500; ++i) {
    ASSERT_TRUE(table.Insert(i, hasher.HashItem(base.Row(i))).ok());
  }
  Searcher searcher(base);
  const float* query = base.Row(900);  // Not ingested.
  SearchOptions so;
  so.k = 5;
  so.max_candidates = 0;
  {
    GqrProber prober(hasher.HashQuery(query));
    SearchResult r = searcher.Search(query, &prober, table, so);
    for (ItemId id : r.ids) EXPECT_LT(id, 500u);
  }
  // Ingest item 900 itself; it must now be the top result.
  ASSERT_TRUE(table.Insert(900, hasher.HashItem(base.Row(900))).ok());
  {
    GqrProber prober(hasher.HashQuery(query));
    SearchResult r = searcher.Search(query, &prober, table, so);
    ASSERT_FALSE(r.ids.empty());
    EXPECT_EQ(r.ids[0], 900u);
    EXPECT_FLOAT_EQ(r.distances[0], 0.f);
  }
  // Delete it again; it must vanish from results.
  ASSERT_TRUE(table.Remove(900, hasher.HashItem(base.Row(900))).ok());
  {
    GqrProber prober(hasher.HashQuery(query));
    SearchResult r = searcher.Search(query, &prober, table, so);
    for (ItemId id : r.ids) EXPECT_NE(id, 900u);
  }
}

}  // namespace
}  // namespace gqr
