// Streaming-index scenario: a corpus that grows (and shrinks) online.
//
// A DynamicHashTable ingests descriptors as they arrive; GQR serves
// queries at any point without rebuilding. Once ingestion settles, the
// table is frozen into the immutable StaticHashTable for deployment.
// Demonstrates: Insert/Remove, searching a live index, Freeze parity.
#include <cstdio>

#include "gqr.h"

int main() {
  using namespace gqr;

  // The full stream (generated upfront here; arrives incrementally in
  // a real pipeline). The hasher is trained on an initial prefix — L2H
  // models are learned offline and reused as the corpus grows.
  SyntheticSpec spec;
  spec.n = 30000;
  spec.dim = 32;
  spec.num_clusters = 300;
  spec.cluster_stddev = 4.0;
  spec.zipf_exponent = 0.5;
  spec.seed = 51;
  Dataset stream = GenerateClusteredGaussian(spec);

  const size_t warmup = 5000;
  PcahOptions pcah;
  pcah.code_length = CodeLengthForSize(stream.size());
  // Train on the warmup prefix only.
  Dataset prefix(warmup, stream.dim());
  for (ItemId i = 0; i < warmup; ++i) {
    std::copy(stream.Row(i), stream.Row(i) + stream.dim(),
              prefix.MutableRow(i));
  }
  LinearHasher hasher = TrainPcah(prefix, pcah);
  std::printf("hasher trained on %zu warmup items (m = %d)\n", warmup,
              hasher.code_length());

  DynamicHashTable table(hasher.code_length());
  Searcher searcher(stream);
  SearchOptions so;
  so.k = 10;
  so.max_candidates = 1000;

  // Ingest in batches; answer a probe query after each batch.
  const float* probe = stream.Row(static_cast<ItemId>(stream.size() - 1));
  const size_t batch = 6000;
  for (size_t done = 0; done < stream.size(); ) {
    const size_t end = std::min(stream.size(), done + batch);
    Timer ingest;
    for (size_t i = done; i < end; ++i) {
      const auto id = static_cast<ItemId>(i);
      if (!table.Insert(id, hasher.HashItem(stream.Row(id))).ok()) {
        std::fprintf(stderr, "insert failed at %zu\n", i);
        return 1;
      }
    }
    done = end;
    GqrProber prober(hasher.HashQuery(probe));
    SearchResult r = searcher.Search(probe, &prober, table, so);
    std::printf(
        "after %6zu items (%.0f inserts/ms): top-1 distance %.3f over "
        "%zu buckets probed\n",
        done, static_cast<double>(end - (end - batch)) /
                  (1e3 * ingest.ElapsedSeconds() + 1e-9),
        r.distances.empty() ? -1.f : r.distances[0],
        r.stats.buckets_probed);
  }

  // The probe item itself was the last insert: distance must now be 0.
  GqrProber prober(hasher.HashQuery(probe));
  SearchResult live = searcher.Search(probe, &prober, table, so);
  if (live.distances.empty() || live.distances[0] != 0.f) {
    std::fprintf(stderr, "live index failed to find the probe item\n");
    return 1;
  }

  // Retire an item and verify it disappears.
  const auto victim = live.ids[0];
  if (!table.Remove(victim, hasher.HashItem(stream.Row(victim))).ok()) {
    return 1;
  }
  GqrProber prober2(hasher.HashQuery(probe));
  SearchResult after = searcher.Search(probe, &prober2, table, so);
  for (ItemId id : after.ids) {
    if (id == victim) {
      std::fprintf(stderr, "deleted item still reachable\n");
      return 1;
    }
  }
  std::printf("delete verified: item %u no longer reachable\n", victim);

  // Re-add, then freeze for deployment and sanity-check parity.
  (void)table.Insert(victim, hasher.HashItem(stream.Row(victim)));
  Result<StaticHashTable> frozen = table.Freeze();
  if (!frozen.ok()) {
    std::fprintf(stderr, "freeze failed: %s\n",
                 frozen.status().ToString().c_str());
    return 1;
  }
  GqrProber prober3(hasher.HashQuery(probe));
  SearchResult deployed = searcher.Search(probe, &prober3, *frozen, so);
  std::printf("frozen table: %zu buckets; top-1 id %u (live top-1 id %u)\n",
              frozen->num_buckets(), deployed.ids[0], live.ids[0]);
  return deployed.ids[0] == live.ids[0] ? 0 : 1;
}
