// Learner shoot-out: train every L2H algorithm in the library (LSH,
// PCAH, ITQ, SH, KMH) on one dataset, query each with both GHR (hash
// lookup) and GQR, and print a recall table at a fixed candidate budget —
// the paper's generality argument (§6.4) in one screen.
#include <cstdio>
#include <memory>
#include <vector>

#include "gqr.h"

int main() {
  using namespace gqr;

  SyntheticSpec spec;
  spec.n = 40000;
  spec.dim = 64;
  spec.num_clusters = 400;
  spec.cluster_stddev = 4.0;
  spec.zipf_exponent = 0.5;
  spec.seed = 31;
  Dataset all = GenerateClusteredGaussian(spec);
  Rng rng(32);
  auto [base, queries] = all.SplitQueries(100, &rng);
  const size_t k = 20;
  auto ground_truth = ComputeGroundTruth(base, queries, k);
  const int m = CodeLengthForSize(base.size());

  struct Entry {
    std::string name;
    std::unique_ptr<BinaryHasher> hasher;
    double train_seconds;
  };
  std::vector<Entry> learners;
  {
    Timer t;
    LshOptions o;
    o.code_length = m;
    learners.push_back({"LSH",
                        std::make_unique<LinearHasher>(
                            TrainLsh(base, base.dim(), o)),
                        t.ElapsedSeconds()});
  }
  {
    Timer t;
    PcahOptions o;
    o.code_length = m;
    learners.push_back(
        {"PCAH", std::make_unique<LinearHasher>(TrainPcah(base, o)),
         t.ElapsedSeconds()});
  }
  {
    Timer t;
    ItqOptions o;
    o.code_length = m;
    learners.push_back(
        {"ITQ", std::make_unique<LinearHasher>(TrainItq(base, o)),
         t.ElapsedSeconds()});
  }
  {
    Timer t;
    ShOptions o;
    o.code_length = m;
    learners.push_back({"SH", std::make_unique<ShHasher>(TrainSh(base, o)),
                        t.ElapsedSeconds()});
  }
  {
    Timer t;
    auto pairs = MakeMetricPairs(base, 200, 33);
    SshOptions o;
    o.code_length = m;
    learners.push_back(
        {"SSH", std::make_unique<LinearHasher>(TrainSsh(base, pairs, o)),
         t.ElapsedSeconds()});
  }
  {
    Timer t;
    KmhOptions o;
    o.code_length = m - (m % 2);
    o.bits_per_block = 2;
    learners.push_back({"KMH",
                        std::make_unique<KmhHasher>(TrainKmh(base, o)),
                        t.ElapsedSeconds()});
  }

  std::printf("dataset %s, m = %d, budget = 2%% of base, k = %zu\n\n",
              base.Summary().c_str(), m, k);
  std::printf("%-6s %10s %12s %12s %10s\n", "learner", "train(s)",
              "recall(GHR)", "recall(GQR)", "GQR gain");

  Searcher searcher(base);
  const size_t budget = base.size() / 50;
  for (const Entry& e : learners) {
    double recall_ghr = 0.0, recall_gqr = 0.0;
    StaticHashTable table(e.hasher->HashDataset(base),
                          e.hasher->code_length());
    for (size_t q = 0; q < queries.size(); ++q) {
      const float* query = queries.Row(static_cast<ItemId>(q));
      QueryHashInfo info = e.hasher->HashQuery(query);
      SearchOptions opt;
      opt.k = k;
      opt.max_candidates = budget;
      GhrProber ghr(info);
      recall_ghr +=
          RecallAtK(searcher.Search(query, &ghr, table, opt).ids,
                    ground_truth[q], k);
      GqrProber gqr(info);
      recall_gqr +=
          RecallAtK(searcher.Search(query, &gqr, table, opt).ids,
                    ground_truth[q], k);
    }
    recall_ghr /= static_cast<double>(queries.size());
    recall_gqr /= static_cast<double>(queries.size());
    std::printf("%-6s %10.3f %12.3f %12.3f %+9.3f\n", e.name.c_str(),
                e.train_seconds, recall_ghr, recall_gqr,
                recall_gqr - recall_ghr);
  }
  std::printf(
      "\nGQR improves every learner at the same budget; note how PCAH+GQR "
      "rivals ITQ+GHR despite PCAH's far cheaper training — the paper's "
      "\"simple querying beats complicated learning\" point.\n");
  return 0;
}
