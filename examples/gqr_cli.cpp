// gqr_cli: command-line front end over the public API — the
// train-offline / serve-online workflow with persisted artifacts.
//
//   gqr_cli generate --out base.fvecs --n 20000 --dim 32
//   # Same seed + --clusters as the base reuses its cluster mixture, so
//   # the queries are in-distribution (fresh draws, not copies):
//   gqr_cli generate --out queries.fvecs --n 100 --dim 32 --clusters 200
//   gqr_cli gt --data base.fvecs --queries queries.fvecs --k 10
//              --out gt.ivecs
//   gqr_cli train --data base.fvecs --algo itq --bits 11 --model itq.model
//   gqr_cli build --data base.fvecs --model itq.model --index t.index
//   gqr_cli stats --data base.fvecs --model itq.model --index t.index
//   gqr_cli query --data base.fvecs --model itq.model --index t.index
//                 --queries queries.fvecs --k 10 --budget 2000
//                 --method gqr --gt gt.ivecs
//
// Works on real TEXMEX .fvecs files too (SIFT1M etc.).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "gqr.h"

namespace {

using namespace gqr;

// --flag value argument map; flags without '--' prefix are rejected.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        ok_ = false;
        bad_ = argv[i];
        return;
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      ok_ = false;
      bad_ = argv[argc - 1];
    }
  }

  bool ok() const { return ok_; }
  const std::string& bad() const { return bad_; }

  std::string Get(const std::string& key, const std::string& fallback = "") {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }
  bool Has(const std::string& key) const { return values_.count(key) != 0; }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
  std::string bad_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int CmdGenerate(Args& args) {
  SyntheticSpec spec;
  spec.n = static_cast<size_t>(args.GetInt("n", 20000));
  spec.dim = static_cast<size_t>(args.GetInt("dim", 32));
  spec.num_clusters = static_cast<size_t>(
      args.GetInt("clusters", std::max<int64_t>(50, spec.n / 100)));
  spec.cluster_stddev = 4.0;
  spec.zipf_exponent = 0.5;
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string out = args.Get("out");
  if (out.empty()) return Fail("generate requires --out");
  Dataset data = GenerateClusteredGaussian(spec);
  Status st = SaveFvecs(data, out);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %s: %s\n", out.c_str(), data.Summary().c_str());
  return 0;
}

int CmdGroundTruth(Args& args) {
  auto base = LoadFvecs(args.Get("data"));
  if (!base.ok()) return Fail(base.status().ToString());
  auto queries = LoadFvecs(args.Get("queries"));
  if (!queries.ok()) return Fail(queries.status().ToString());
  const auto k = static_cast<size_t>(args.GetInt("k", 10));
  auto gt = ComputeGroundTruth(*base, *queries, k);
  std::vector<std::vector<int32_t>> rows;
  rows.reserve(gt.size());
  for (const Neighbors& n : gt) {
    rows.emplace_back(n.ids.begin(), n.ids.end());
  }
  Status st = SaveIvecs(rows, args.Get("out"));
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %zu ground-truth rows (k=%zu)\n", rows.size(), k);
  return 0;
}

int CmdTrain(Args& args) {
  auto base = LoadFvecs(args.Get("data"));
  if (!base.ok()) return Fail(base.status().ToString());
  const std::string algo = args.Get("algo", "itq");
  const int bits = static_cast<int>(
      args.GetInt("bits", CodeLengthForSize(base->size())));
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string model_path = args.Get("model");
  if (model_path.empty()) return Fail("train requires --model");

  Timer timer;
  Status st;
  if (algo == "itq") {
    ItqOptions o;
    o.code_length = bits;
    o.seed = seed;
    st = SaveLinearHasher(TrainItq(*base, o), model_path);
  } else if (algo == "pcah") {
    PcahOptions o;
    o.code_length = bits;
    o.seed = seed;
    st = SaveLinearHasher(TrainPcah(*base, o), model_path);
  } else if (algo == "lsh") {
    LshOptions o;
    o.code_length = bits;
    o.seed = seed;
    st = SaveLinearHasher(TrainLsh(*base, base->dim(), o), model_path);
  } else {
    return Fail("unknown --algo " + algo + " (itq|pcah|lsh)");
  }
  if (!st.ok()) return Fail(st.ToString());
  std::printf("trained %s (m=%d) in %.2fs -> %s\n", algo.c_str(), bits,
              timer.ElapsedSeconds(), model_path.c_str());
  return 0;
}

int CmdBuild(Args& args) {
  auto base = LoadFvecs(args.Get("data"));
  if (!base.ok()) return Fail(base.status().ToString());
  auto hasher = LoadLinearHasher(args.Get("model"));
  if (!hasher.ok()) return Fail(hasher.status().ToString());
  StaticHashTable table(hasher->HashDataset(*base), hasher->code_length());
  Status st = SaveHashTable(table, args.Get("index"));
  if (!st.ok()) return Fail(st.ToString());
  std::printf("built index: %zu items, %zu buckets -> %s\n",
              table.num_items(), table.num_buckets(),
              args.Get("index").c_str());
  return 0;
}

int CmdStats(Args& args) {
  auto base = LoadFvecs(args.Get("data"));
  if (!base.ok()) return Fail(base.status().ToString());
  auto hasher = LoadLinearHasher(args.Get("model"));
  if (!hasher.ok()) return Fail(hasher.status().ToString());
  auto table = LoadHashTable(args.Get("index"));
  if (!table.ok()) return Fail(table.status().ToString());
  std::printf("%s\n", OccupancyReport(ComputeOccupancy(*table)).c_str());
  std::printf("%s\n",
              BitBalanceReport(ComputeBitBalance(*hasher, *base)).c_str());
  return 0;
}

int CmdQuery(Args& args) {
  auto base = LoadFvecs(args.Get("data"));
  if (!base.ok()) return Fail(base.status().ToString());
  auto hasher = LoadLinearHasher(args.Get("model"));
  if (!hasher.ok()) return Fail(hasher.status().ToString());
  auto table = LoadHashTable(args.Get("index"));
  if (!table.ok()) return Fail(table.status().ToString());
  auto queries = LoadFvecs(args.Get("queries"));
  if (!queries.ok()) return Fail(queries.status().ToString());

  const auto k = static_cast<size_t>(args.GetInt("k", 10));
  const auto budget = static_cast<size_t>(args.GetInt("budget", 2000));
  const std::string method_name = args.Get("method", "gqr");
  QueryMethod method;
  if (method_name == "gqr") {
    method = QueryMethod::kGQR;
  } else if (method_name == "ghr") {
    method = QueryMethod::kGHR;
  } else if (method_name == "hr") {
    method = QueryMethod::kHR;
  } else if (method_name == "qr") {
    method = QueryMethod::kQR;
  } else {
    return Fail("unknown --method " + method_name + " (gqr|ghr|hr|qr)");
  }

  // Optional ground truth for recall.
  std::vector<std::vector<int32_t>> gt;
  if (args.Has("gt")) {
    auto loaded = LoadIvecs(args.Get("gt"));
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    gt = std::move(*loaded);
    if (gt.size() != queries->size()) {
      return Fail("ground truth rows != number of queries");
    }
  }

  Searcher searcher(*base);
  Timer timer;
  double recall = 0.0;
  size_t shown = 0;
  for (size_t q = 0; q < queries->size(); ++q) {
    const float* query = queries->Row(static_cast<ItemId>(q));
    QueryHashInfo info = hasher->HashQuery(query);
    auto prober = MakeProber(method, info, *table);
    SearchOptions so;
    so.k = k;
    so.max_candidates = budget;
    SearchResult r = searcher.Search(query, prober.get(), *table, so);
    if (!gt.empty()) {
      Neighbors truth;
      truth.ids.assign(gt[q].begin(), gt[q].end());
      recall += RecallAtK(r.ids, truth, k);
    }
    if (shown < 3) {  // Print the first few result lists.
      std::printf("query %zu:", q);
      for (size_t i = 0; i < r.ids.size(); ++i) {
        std::printf(" %u(%.3f)", r.ids[i], r.distances[i]);
      }
      std::printf("\n");
      ++shown;
    }
  }
  const double seconds = timer.ElapsedSeconds();
  std::printf("%zu queries with %s in %.3fs (%.2f ms/query)\n",
              queries->size(), method_name.c_str(), seconds,
              1e3 * seconds / static_cast<double>(queries->size()));
  if (!gt.empty()) {
    std::printf("recall@%zu = %.4f\n", k,
                recall / static_cast<double>(queries->size()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: gqr_cli <generate|gt|train|build|stats|query> "
                 "--flag value ...\n");
    return 1;
  }
  Args args(argc, argv, 2);
  if (!args.ok()) {
    return Fail("malformed arguments near '" + args.bad() + "'");
  }
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "gt") return CmdGroundTruth(args);
  if (cmd == "train") return CmdTrain(args);
  if (cmd == "build") return CmdBuild(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "query") return CmdQuery(args);
  return Fail("unknown command " + cmd);
}
