// Near-duplicate detection pipeline (the de-duplication use case of the
// paper's introduction): find, for every item in a batch, whether the
// corpus already contains a near-duplicate — using GQR with the
// QD-threshold early stop of §4.1 instead of a fixed candidate budget.
//
// The early stop is what makes this workload cheap: most items either
// have an almost-identical twin (found in the first bucket or two) or
// none at all (the mu * QD lower bound quickly exceeds the duplicate
// radius and probing stops).
#include <cstdio>

#include "gqr.h"

int main() {
  using namespace gqr;

  // Corpus with planted near-duplicates: generate a base, then append
  // jittered copies of a subset.
  SyntheticSpec spec;
  spec.n = 30000;
  spec.dim = 48;
  spec.num_clusters = 300;
  spec.cluster_stddev = 4.0;
  spec.zipf_exponent = 0.5;
  spec.seed = 21;
  Dataset corpus = GenerateClusteredGaussian(spec);

  Rng rng(22);
  const size_t batch_size = 200;
  Dataset batch(batch_size, corpus.dim());
  std::vector<bool> is_duplicate(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    const bool dup = i % 2 == 0;  // Half the batch duplicates the corpus.
    is_duplicate[i] = dup;
    float* row = batch.MutableRow(static_cast<ItemId>(i));
    if (dup) {
      const auto src = static_cast<ItemId>(rng.Uniform(corpus.size()));
      for (size_t j = 0; j < corpus.dim(); ++j) {
        row[j] = corpus.Row(src)[j] +
                 static_cast<float>(rng.Gaussian(0.0, 0.01));
      }
    } else {
      for (size_t j = 0; j < corpus.dim(); ++j) {
        row[j] = static_cast<float>(rng.Gaussian(0.0, 12.0));
      }
    }
  }

  // Index the corpus.
  PcahOptions pcah;  // Cheap training is fine — GQR does the heavy lifting.
  pcah.code_length = CodeLengthForSize(corpus.size());
  LinearHasher hasher = TrainPcah(corpus, pcah);
  StaticHashTable table(hasher.HashDataset(corpus), hasher.code_length());
  const double mu = TheoremTwoMu(hasher);
  std::printf("corpus: %s, m = %d, mu = %.4g\n", corpus.Summary().c_str(),
              hasher.code_length(), mu);

  // Deduplicate the batch.
  const float duplicate_radius = 1.0f;
  Searcher searcher(corpus);
  size_t true_pos = 0, false_pos = 0, false_neg = 0;
  size_t total_buckets = 0, total_items = 0, early_stops = 0;
  Timer timer;
  for (size_t i = 0; i < batch_size; ++i) {
    const float* item = batch.Row(static_cast<ItemId>(i));
    QueryHashInfo info = hasher.HashQuery(item);
    GqrProber prober(info);
    SearchOptions opt;
    opt.k = 1;
    opt.max_candidates = 2000;  // Backstop; early stop usually fires first.
    opt.early_stop_mu = mu;
    SearchResult r = searcher.Search(item, &prober, table, opt);
    const bool found =
        !r.distances.empty() && r.distances[0] <= duplicate_radius;
    total_buckets += r.stats.buckets_probed;
    total_items += r.stats.items_evaluated;
    if (r.stats.early_stopped) ++early_stops;
    if (found && is_duplicate[i]) ++true_pos;
    if (found && !is_duplicate[i]) ++false_pos;
    if (!found && is_duplicate[i]) ++false_neg;
  }
  const double seconds = timer.ElapsedSeconds();

  std::printf(
      "\nbatch of %zu items in %.3fs: %zu duplicates found, %zu false "
      "positives, %zu misses\n",
      batch_size, seconds, true_pos, false_pos, false_neg);
  std::printf(
      "avg work per item: %.1f buckets probed, %.1f distances computed; "
      "early stop fired on %zu/%zu items\n",
      static_cast<double>(total_buckets) / batch_size,
      static_cast<double>(total_items) / batch_size, early_stops,
      batch_size);
  return (true_pos >= batch_size / 2 - 5 && false_pos == 0) ? 0 : 1;
}
