// Image-retrieval scenario: similar-image search over GIST-like global
// descriptors (the paper's CIFAR60K/GIST1M workload), comparing the
// querying methods under a per-query latency budget.
//
// A retrieval frontend typically has a latency SLO per query; the method
// that reaches the highest recall within the budget wins. This example
// sweeps candidate budgets for HR / GHR / GQR and reports the recall
// each method achieves within a 1 ms/query budget.
#include <cstdio>

#include "gqr.h"

int main() {
  using namespace gqr;

  // GIST-like descriptors: wide, non-negative, clustered (images of the
  // same scene category produce nearby GIST vectors).
  SyntheticSpec spec;
  spec.n = 60000;
  spec.dim = 96;
  spec.num_clusters = 600;
  spec.cluster_stddev = 4.0;
  spec.zipf_exponent = 0.5;
  spec.non_negative = true;
  spec.seed = 11;
  Dataset all = GenerateClusteredGaussian(spec);
  Rng rng(2);
  auto [library, queries] = all.SplitQueries(100, &rng);
  const size_t k = 20;
  auto ground_truth = ComputeGroundTruth(library, queries, k);

  ItqOptions itq;
  itq.code_length = CodeLengthForSize(library.size());
  LinearHasher hasher = TrainItq(library, itq);
  StaticHashTable table(hasher.HashDataset(library), hasher.code_length());
  std::printf("image library: %s, m = %d, %zu buckets\n",
              library.Summary().c_str(), hasher.code_length(),
              table.num_buckets());

  HarnessOptions ho;
  ho.k = k;
  ho.budgets = DefaultBudgets(library.size(), k, 0.3, 10);

  const double budget_per_query = 1e-3;  // 1 ms SLO.
  std::printf("\nrecall within a %.1f ms/query latency budget:\n",
              budget_per_query * 1e3);
  for (QueryMethod method :
       {QueryMethod::kHR, QueryMethod::kGHR, QueryMethod::kGQR}) {
    Curve curve = RunMethodCurve(method, library, queries, ground_truth,
                                 hasher, table, ho);
    // Highest recall whose whole-batch time fits the per-query budget.
    double best_recall = 0.0;
    for (const CurvePoint& p : curve.points) {
      if (p.seconds <= budget_per_query * static_cast<double>(queries.size())) {
        best_recall = std::max(best_recall, p.recall);
      }
    }
    std::printf("  %-4s recall@%zu = %.3f\n", QueryMethodName(method), k,
                best_recall);
  }

  std::printf(
      "\nGQR retrieves the most true matches under the same latency SLO "
      "because QD sends evaluation to the right buckets first.\n");
  return 0;
}
