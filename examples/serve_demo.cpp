// Serving scenario: concurrent clients submit single queries to a
// QueryService front end over a live sharded index.
//
// The service coalesces concurrent submissions into batches (riding the
// batched-GEMM hashing path and sharing one bucket-union snapshot per
// flush for HR/QR), enforces per-request deadlines, and sheds load when
// its bounded queue fills. Demonstrates: Submit futures, SubmitAsync
// callbacks, served-vs-direct parity, deadline expiry, admission
// control, and Stats() observability.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "gqr.h"

int main() {
  using namespace gqr;

  // Corpus: synthetic clustered descriptors, LSH-hashed into a 4-shard
  // concurrent index (the deployment shape: writers could keep
  // inserting while the service runs).
  SyntheticSpec spec;
  spec.n = 20000;
  spec.dim = 32;
  spec.num_clusters = 200;
  spec.cluster_stddev = 4.0;
  spec.seed = 52;
  Dataset base = GenerateClusteredGaussian(spec);

  LshOptions lsh;
  lsh.code_length = CodeLengthForSize(base.size());
  LinearHasher hasher = TrainLsh(base, base.dim(), lsh);
  std::vector<Code> codes = hasher.HashDataset(base);

  ShardedIndex index(hasher.code_length(), /*num_shards=*/4);
  for (size_t i = 0; i < base.size(); ++i) {
    const auto id = static_cast<ItemId>(i);
    if (!index.Insert(id, codes[i]).ok()) {
      std::fprintf(stderr, "insert failed at %zu\n", i);
      return 1;
    }
  }
  for (size_t s = 0; s < index.num_shards(); ++s) {
    if (!index.FreezeShard(s).ok()) return 1;
  }

  Searcher searcher(base);
  QueryServiceOptions opt;
  opt.method = QueryMethod::kGQR;
  opt.search.k = 5;
  opt.search.max_candidates = 200;
  opt.max_batch = 64;
  opt.max_linger = std::chrono::microseconds(200);
  opt.max_queue = 256;

  {
    QueryService service(searcher, hasher, index, opt);

    // Concurrent clients, future-style: each thread submits a slice of
    // the corpus as queries and blocks on the responses.
    const size_t kClients = 4;
    const size_t kPerClient = 64;
    std::atomic<size_t> self_hits{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t i = 0; i < kPerClient; ++i) {
          const auto id = static_cast<ItemId>(c * kPerClient + i);
          QueryService::Future fut =
              service.Submit(base.Row(id), /*k=*/5,
                             QueryService::Clock::now() +
                                 std::chrono::milliseconds(500));
          Response r = fut.Get();
          // Every corpus item queried against itself must come back as
          // its own nearest neighbor.
          if (r.status == RequestStatus::kOk && !r.result.ids.empty() &&
              r.result.ids[0] == id) {
            self_hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    std::printf("served %zu queries from %zu clients: %zu/%zu self-hits\n",
                kClients * kPerClient, kClients, self_hits.load(),
                kClients * kPerClient);
    if (self_hits.load() != kClients * kPerClient) {
      std::fprintf(stderr, "self-query failed to rank itself first\n");
      return 1;
    }

    // Served results are bit-identical to the direct sharded path: same
    // ids, same distances, query by query.
    const ItemId probe = 7;
    Response served = service.Submit(base.Row(probe), 5).Get();
    Dataset one(1, base.dim());
    std::copy(base.Row(probe), base.Row(probe) + base.dim(),
              one.MutableRow(0));
    std::vector<SearchResult> direct = ShardedSearch(
        searcher, hasher, index, one, opt.method, opt.search);
    if (served.status != RequestStatus::kOk ||
        served.result.ids != direct[0].ids ||
        served.result.distances != direct[0].distances) {
      std::fprintf(stderr, "served result diverged from direct search\n");
      return 1;
    }
    std::printf("served == direct: top-%zu identical for query %u\n",
                served.result.ids.size(), probe);

    // A deadline that has already passed expires in the queue — the
    // request is completed, never executed.
    Response late =
        service.Submit(base.Row(probe), 5,
                       QueryService::Clock::now() -
                           std::chrono::milliseconds(1))
            .Get();
    std::printf("stale deadline -> %s\n", RequestStatusName(late.status));
    if (late.status != RequestStatus::kExpired) return 1;

    const ServiceStats stats = service.Stats();
    std::printf(
        "stats: accepted %llu, completed %llu, expired %llu, rejected "
        "%llu, batches %llu (mean fill %.2f)\n",
        static_cast<unsigned long long>(stats.accepted),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.expired),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.batches),
        stats.MeanBatchFill());
    service.Shutdown();

    // After Shutdown() the service sheds everything immediately.
    Response after = service.Submit(base.Row(probe), 5).Get();
    if (after.status != RequestStatus::kRejected) return 1;
    std::printf("post-shutdown submit -> %s\n",
                RequestStatusName(after.status));
  }

  // Admission control: a tiny queue served by a deliberately slow
  // consumer shows overload as explicit kRejected sheds, not silent
  // drops or unbounded queueing.
  {
    QueryServiceOptions tiny = opt;
    tiny.max_queue = 8;
    tiny.coalesce = false;  // One request per batch: drains slowly.
    QueryService service(searcher, hasher, index, tiny);
    size_t shed = 0;
    for (size_t i = 0; i < 512; ++i) {
      if (!service.SubmitAsync(base.Row(static_cast<ItemId>(i)), 5,
                               QueryService::NoDeadline(), [](Response) {})) {
        ++shed;
      }
    }
    service.Shutdown();
    const ServiceStats stats = service.Stats();
    std::printf("flooded tiny queue (max_queue=8): %zu/512 shed, "
                "accepted %llu all completed %llu\n",
                shed,
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.completed));
    if (stats.accepted != stats.completed ||
        stats.rejected != static_cast<uint64_t>(shed)) {
      std::fprintf(stderr, "admission accounting mismatch\n");
      return 1;
    }
  }
  return 0;
}
