// Quickstart: index a dataset with ITQ, query it with GQR, and compare
// against exact brute force.
//
//   $ ./examples/quickstart
//
// Walks through the full public API in ~60 lines: generate (or load)
// descriptors, train a hasher, build the bucket table, run a GQR search,
// and check recall against ground truth.
#include <cstdio>

#include "gqr.h"

int main() {
  using namespace gqr;

  // 1. Data: 50k synthetic 64-d descriptors (swap in LoadFvecs("...") for
  //    a real .fvecs file).
  SyntheticSpec spec;
  spec.n = 50000;
  spec.dim = 64;
  spec.num_clusters = 500;
  spec.cluster_stddev = 4.0;
  spec.zipf_exponent = 0.5;
  Dataset all = GenerateClusteredGaussian(spec);
  Rng rng(1);
  auto [base, queries] = all.SplitQueries(100, &rng);
  std::printf("base: %s, queries: %zu\n", base.Summary().c_str(),
              queries.size());

  // 2. Learn hash functions (ITQ) at the paper's default code length
  //    m ~ log2(n / 10).
  ItqOptions itq;
  itq.code_length = CodeLengthForSize(base.size());
  LinearHasher hasher = TrainItq(base, itq);
  std::printf("trained ITQ, code length m = %d\n", hasher.code_length());

  // 3. Build the bucket index.
  StaticHashTable table(hasher.HashDataset(base), hasher.code_length());
  std::printf("hash table: %zu non-empty buckets, largest holds %zu\n",
              table.num_buckets(), table.MaxBucketSize());

  // 4. Search with GQR and evaluate recall against exact ground truth.
  const size_t k = 10;
  auto ground_truth = ComputeGroundTruth(base, queries, k);
  Searcher searcher(base);
  Timer timer;
  double recall = 0.0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const float* query = queries.Row(static_cast<ItemId>(q));
    QueryHashInfo info = hasher.HashQuery(query);
    GqrProber prober(info);  // Generate-to-probe QD ranking.
    SearchOptions opt;
    opt.k = k;
    opt.max_candidates = 2000;  // Evaluate ~4% of the base set.
    SearchResult result = searcher.Search(query, &prober, table, opt);
    recall += RecallAtK(result.ids, ground_truth[q], k);
  }
  const double seconds = timer.ElapsedSeconds();
  recall /= static_cast<double>(queries.size());

  LinearScanResult scan = TimeLinearScan(base, queries, k);
  std::printf(
      "GQR: recall@%zu = %.3f in %.3fs for %zu queries "
      "(linear scan: %.3fs, %.1fx slower)\n",
      k, recall, seconds, queries.size(), scan.seconds,
      scan.seconds / seconds);
  return recall > 0.5 ? 0 : 1;
}
