// Fuzz target for the Append/Swap generation machinery (paper §5).
//
// From a few input bytes it derives a code length, a tree materialization
// cap, a query code, and flip costs, then:
//   1. builds a GenerationTree and re-validates its structure (unique
//      masks, BFS child links reproducing Append/Swap exactly);
//   2. runs a GqrProber with the tree against one without it
//      differentially — identical emission streams are the §5.3 contract;
//   3. checks Property 1 (no bucket emitted twice) and Property 2
//      (non-decreasing QD) over the merged stream.
// Any divergence, duplicate, order violation, or sanitizer report is a
// finding.
#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include "core/generation_tree.h"
#include "core/gqr_prober.h"
#include "util/bits.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 12) return 0;
  const int m = 1 + data[0] % 20;  // Code length 1..20.
  const size_t max_nodes =
      1 + (static_cast<size_t>(data[1]) | (static_cast<size_t>(data[2]) << 8));
  const gqr::GenerationTree tree(m, max_nodes);
  GQR_CHECK_LE(tree.size(), max_nodes);

  // Structural re-validation, compiled unconditionally here (the
  // in-library version only exists under GQR_VALIDATE).
  std::unordered_set<uint64_t> masks;
  for (uint32_t i = 0; i < tree.size(); ++i) {
    const gqr::GenerationTree::Node& node = tree.node(i);
    GQR_CHECK(masks.insert(node.mask).second) << "duplicate mask, node " << i;
    GQR_CHECK_NE(node.mask, uint64_t{0});
    GQR_CHECK_EQ(node.rightmost, 63 - std::countl_zero(node.mask));
    const int j = node.rightmost;
    if (node.append_child != gqr::GenerationTree::kInvalidNode) {
      GQR_CHECK_EQ(tree.node(node.append_child).mask,
                   node.mask | (uint64_t{1} << (j + 1)));
    }
    if (node.swap_child != gqr::GenerationTree::kInvalidNode) {
      GQR_CHECK_EQ(tree.node(node.swap_child).mask,
                   (node.mask ^ (uint64_t{1} << j)) | (uint64_t{1} << (j + 1)));
    }
  }

  // Query derived from the input: code from bytes 3..10, flip costs
  // cycled over the tail bytes (non-negative by construction).
  gqr::QueryHashInfo info;
  uint64_t code = 0;
  for (int i = 0; i < 8; ++i) {
    code |= static_cast<uint64_t>(data[3 + i]) << (8 * i);
  }
  info.code = code & gqr::LowBitsMask(m);
  info.flip_costs.resize(m);
  for (int i = 0; i < m; ++i) {
    info.flip_costs[i] =
        static_cast<double>(data[11 + (i % (size - 11))]) / 255.0;
  }

  gqr::GqrProber with_tree(info, /*table=*/0, &tree);
  gqr::GqrProber without_tree(info, /*table=*/0, nullptr);
  std::unordered_set<uint64_t> buckets;
  double last_qd = 0.0;
  // The bucket space has 2^m codes; cap the walk to keep runs short.
  const size_t limit = std::min(size_t{1} << m, size_t{2048});
  for (size_t i = 0; i < limit; ++i) {
    gqr::ProbeTarget a;
    gqr::ProbeTarget b;
    const bool more_a = with_tree.Next(&a);
    const bool more_b = without_tree.Next(&b);
    GQR_CHECK_EQ(more_a, more_b) << "tree/no-tree streams diverge at " << i;
    if (!more_a) break;
    GQR_CHECK_EQ(a.bucket, b.bucket) << "tree/no-tree buckets diverge at " << i;
    GQR_CHECK_EQ(with_tree.last_score(), without_tree.last_score())
        << "tree/no-tree scores diverge at " << i;
    GQR_CHECK(buckets.insert(a.bucket).second)
        << "Property 1: bucket emitted twice at " << i;
    GQR_CHECK_GE(with_tree.last_score(), last_qd - 1e-9)
        << "Property 2: QD decreased at " << i;
    last_qd = with_tree.last_score();
  }
  return 0;
}
