// Fuzz target for the .fvecs/.bvecs/.ivecs parsers.
//
// Input layout: byte 0 selects the format, the rest is the file image.
// The parsers must return a Status for arbitrary input — truncated
// headers and records, hostile dimensions, overflowing totals — and any
// accepted parse must be shape-consistent. An abort, sanitizer report,
// or GQR_CHECK failure here is a finding.
#include <cstddef>
#include <cstdint>

#include "data/vecs_io.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t selector = data[0];
  const void* image = data + 1;
  const size_t image_size = size - 1;
  switch (selector % 3) {
    case 0: {
      gqr::Result<gqr::Dataset> r =
          gqr::LoadFvecsFromMemory(image, image_size);
      if (r.ok()) {
        GQR_CHECK_GT(r->size(), size_t{0});
        GQR_CHECK_GT(r->dim(), size_t{0});
        // Every accepted fvecs image holds n records of 4 + 4*dim bytes.
        GQR_CHECK_LE(r->size() * (4 + 4 * r->dim()), image_size);
      }
      break;
    }
    case 1: {
      gqr::Result<gqr::Dataset> r =
          gqr::LoadBvecsFromMemory(image, image_size);
      if (r.ok()) {
        GQR_CHECK_GT(r->size(), size_t{0});
        GQR_CHECK_GT(r->dim(), size_t{0});
        GQR_CHECK_LE(r->size() * (4 + r->dim()), image_size);
      }
      break;
    }
    default: {
      gqr::Result<std::vector<std::vector<int32_t>>> r =
          gqr::LoadIvecsFromMemory(image, image_size);
      if (r.ok()) {
        GQR_CHECK(!r->empty());
        size_t bytes = 0;
        for (const auto& row : *r) bytes += 4 + 4 * row.size();
        GQR_CHECK_LE(bytes, image_size);
      }
      break;
    }
  }
  return 0;
}
