// Replay driver for non-Clang builds: feeds every file named on the
// command line (directories are walked non-recursively) through
// LLVMFuzzerTestOneInput once. This turns the checked-in corpus into a
// deterministic regression suite that runs in plain ctest; the real
// coverage-guided loop needs the libFuzzer build (GQR_FUZZ=ON).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return false;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        if (!ReplayFile(entry.path())) return 1;
        ++replayed;
      }
    } else {
      if (!ReplayFile(arg)) return 1;
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "no corpus inputs replayed\n");
    return 1;
  }
  std::printf("replayed %zu corpus inputs\n", replayed);
  return 0;
}
