// Dataset: an immutable, contiguous collection of float descriptors.
#ifndef GQR_DATA_DATASET_H_
#define GQR_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace gqr {

/// Item identifier inside a Dataset (row index).
using ItemId = uint32_t;

/// A row-major n x dim array of float descriptors.
///
/// This is the substrate every index and learner is built on: items and
/// queries are rows, identified by their row index. Storage is one
/// contiguous allocation so distance kernels stream linearly.
class Dataset {
 public:
  Dataset() = default;

  /// n x dim with all-zero rows.
  Dataset(size_t n, size_t dim) : n_(n), dim_(dim), data_(n * dim, 0.f) {}

  /// Takes ownership of row-major data; data.size() must equal n * dim.
  Dataset(size_t n, size_t dim, std::vector<float> data)
      : n_(n), dim_(dim), data_(std::move(data)) {
    GQR_CHECK_EQ(data_.size(), n_ * dim_)
        << "row-major storage does not match n x dim";
  }

  size_t size() const { return n_; }
  size_t dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

  const float* Row(ItemId i) const {
    GQR_DCHECK_LT(i, n_);
    return data_.data() + static_cast<size_t>(i) * dim_;
  }
  float* MutableRow(ItemId i) {
    GQR_DCHECK_LT(i, n_);
    return data_.data() + static_cast<size_t>(i) * dim_;
  }

  const float* data() const { return data_.data(); }

  /// Splits off `num_queries` uniformly sampled rows into a query set,
  /// returning {base, queries}. The base keeps the remaining rows (in
  /// original order); useful to carve held-out queries from one file.
  std::pair<Dataset, Dataset> SplitQueries(size_t num_queries,
                                           Rng* rng) const;

  /// Rows at the given indices as a new dataset.
  Dataset Gather(const std::vector<ItemId>& ids) const;

  /// "n=... dim=..." summary for logs.
  std::string Summary() const;

 private:
  size_t n_ = 0;
  size_t dim_ = 0;
  std::vector<float> data_;
};

}  // namespace gqr

#endif  // GQR_DATA_DATASET_H_
