#include "data/vecs_io.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>

namespace gqr {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Byte sources the shared loader reads from: a stdio stream or an
// in-memory image (the fuzzer entry point). Both expose fread semantics:
// Read returns the number of bytes delivered, short counts meaning EOF.
struct FileSource {
  std::FILE* f;
  size_t Read(void* dst, size_t n) { return std::fread(dst, 1, n, f); }
};

struct MemorySource {
  const unsigned char* p;
  size_t remaining;
  size_t Read(void* dst, size_t n) {
    const size_t take = n < remaining ? n : remaining;
    if (take != 0) std::memcpy(dst, p, take);
    p += take;
    remaining -= take;
    return take;
  }
};

// Total payload elements per load are capped so that neither n * dim nor
// the byte size of the accumulated data can overflow size_t downstream
// (element_size <= 8).
constexpr size_t kMaxTotalElements = std::numeric_limits<size_t>::max() / 16;

// Shared loader skeleton: reads (int32 dim, dim * element_size payload)
// records and hands each payload to `consume`. `name` tags error
// messages (the file path, or "<memory>"). fvecs/bvecs feed a dense
// Dataset so every record must agree on dim; ivecs rows are ragged by
// contract (per-query neighbor lists), so they set `allow_ragged`.
template <typename Source, typename ConsumeFn>
Status ReadVecs(Source& src, const std::string& name, size_t element_size,
                size_t max_vectors, bool allow_ragged, ConsumeFn consume) {
  int32_t dim = 0;
  size_t count = 0;
  size_t total_elements = 0;
  std::vector<char> buffer;
  while (max_vectors == 0 || count < max_vectors) {
    int32_t d = 0;
    const size_t got = src.Read(&d, sizeof(d));
    if (got == 0) break;  // Clean EOF between records.
    if (got != sizeof(d)) {
      return Status::IOError(name + ": truncated header (" +
                             std::to_string(got) + " of 4 bytes)");
    }
    if (d <= 0) {
      return Status::IOError(name + ": non-positive vector dimension " +
                             std::to_string(d));
    }
    if (d > kMaxVecsDim) {
      return Status::IOError(name + ": implausible vector dimension " +
                             std::to_string(d));
    }
    if (dim == 0 || allow_ragged) {
      dim = d;
    } else if (d != dim) {
      return Status::IOError(name + ": inconsistent dimensions " +
                             std::to_string(dim) + " vs " + std::to_string(d));
    }
    if (total_elements > kMaxTotalElements - static_cast<size_t>(d)) {
      return Status::IOError(name + ": dim * count overflows (" +
                             std::to_string(count) + " vectors of dim " +
                             std::to_string(d) + ")");
    }
    buffer.resize(static_cast<size_t>(d) * element_size);
    if (src.Read(buffer.data(), buffer.size()) != buffer.size()) {
      return Status::IOError(name + ": truncated vector record");
    }
    consume(static_cast<size_t>(d), buffer.data());
    total_elements += static_cast<size_t>(d);
    ++count;
  }
  if (count == 0) return Status::IOError(name + ": empty file");
  return Status::OK();
}

template <typename ConsumeFn>
Status ReadVecsFile(const std::string& path, size_t element_size,
                    size_t max_vectors, bool allow_ragged, ConsumeFn consume) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  FileSource src{f.get()};
  return ReadVecs(src, path, element_size, max_vectors, allow_ragged, consume);
}

template <typename ConsumeFn>
Status ReadVecsMemory(const void* data, size_t size, size_t element_size,
                      size_t max_vectors, bool allow_ragged,
                      ConsumeFn consume) {
  MemorySource src{static_cast<const unsigned char*>(data), size};
  return ReadVecs(src, "<memory>", element_size, max_vectors, allow_ragged,
                  consume);
}

// The three consume adapters, shared by the file and memory variants.

struct FvecsAccumulator {
  std::vector<float> data;
  size_t dim = 0;
  void operator()(size_t d, const char* payload) {
    dim = d;
    const float* v = reinterpret_cast<const float*>(payload);
    data.insert(data.end(), v, v + d);
  }
};

struct BvecsAccumulator {
  std::vector<float> data;
  size_t dim = 0;
  void operator()(size_t d, const char* payload) {
    dim = d;
    const uint8_t* v = reinterpret_cast<const uint8_t*>(payload);
    for (size_t i = 0; i < d; ++i) {
      data.push_back(static_cast<float>(v[i]));
    }
  }
};

Result<Dataset> FinishDataset(Status st, FvecsAccumulator* acc) {
  if (!st.ok()) return st;
  const size_t n = acc->data.size() / acc->dim;  // Before the move below.
  return Dataset(n, acc->dim, std::move(acc->data));
}

Result<Dataset> FinishDataset(Status st, BvecsAccumulator* acc) {
  if (!st.ok()) return st;
  const size_t n = acc->data.size() / acc->dim;  // Before the move below.
  return Dataset(n, acc->dim, std::move(acc->data));
}

}  // namespace

Result<Dataset> LoadFvecs(const std::string& path, size_t max_vectors) {
  FvecsAccumulator acc;
  Status st = ReadVecsFile(path, sizeof(float), max_vectors,
                           /*allow_ragged=*/false,
                           [&acc](size_t d, const char* p) { acc(d, p); });
  return FinishDataset(std::move(st), &acc);
}

Result<Dataset> LoadFvecsFromMemory(const void* data, size_t size,
                                    size_t max_vectors) {
  FvecsAccumulator acc;
  Status st = ReadVecsMemory(data, size, sizeof(float), max_vectors,
                             /*allow_ragged=*/false,
                             [&acc](size_t d, const char* p) { acc(d, p); });
  return FinishDataset(std::move(st), &acc);
}

Result<Dataset> LoadBvecs(const std::string& path, size_t max_vectors) {
  BvecsAccumulator acc;
  Status st = ReadVecsFile(path, sizeof(uint8_t), max_vectors,
                           /*allow_ragged=*/false,
                           [&acc](size_t d, const char* p) { acc(d, p); });
  return FinishDataset(std::move(st), &acc);
}

Result<Dataset> LoadBvecsFromMemory(const void* data, size_t size,
                                    size_t max_vectors) {
  BvecsAccumulator acc;
  Status st = ReadVecsMemory(data, size, sizeof(uint8_t), max_vectors,
                             /*allow_ragged=*/false,
                             [&acc](size_t d, const char* p) { acc(d, p); });
  return FinishDataset(std::move(st), &acc);
}

Result<std::vector<std::vector<int32_t>>> LoadIvecs(const std::string& path,
                                                    size_t max_vectors) {
  std::vector<std::vector<int32_t>> rows;
  Status st = ReadVecsFile(path, sizeof(int32_t), max_vectors,
                           /*allow_ragged=*/true,
                           [&rows](size_t d, const char* payload) {
                             const int32_t* v =
                                 reinterpret_cast<const int32_t*>(payload);
                             rows.emplace_back(v, v + d);
                           });
  if (!st.ok()) return st;
  return rows;
}

Result<std::vector<std::vector<int32_t>>> LoadIvecsFromMemory(
    const void* data, size_t size, size_t max_vectors) {
  std::vector<std::vector<int32_t>> rows;
  Status st = ReadVecsMemory(data, size, sizeof(int32_t), max_vectors,
                             /*allow_ragged=*/true,
                             [&rows](size_t d, const char* payload) {
                               const int32_t* v =
                                   reinterpret_cast<const int32_t*>(payload);
                               rows.emplace_back(v, v + d);
                             });
  if (!st.ok()) return st;
  return rows;
}

Status SaveFvecs(const Dataset& dataset, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot create " + path);
  const int32_t dim = static_cast<int32_t>(dataset.dim());
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(dataset.Row(static_cast<ItemId>(i)), sizeof(float),
                    dataset.dim(), f.get()) != dataset.dim()) {
      return Status::IOError("short write to " + path);
    }
  }
  return Status::OK();
}

Status SaveIvecs(const std::vector<std::vector<int32_t>>& rows,
                 const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot create " + path);
  for (const auto& row : rows) {
    const int32_t dim = static_cast<int32_t>(row.size());
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(row.data(), sizeof(int32_t), row.size(), f.get()) !=
            row.size()) {
      return Status::IOError("short write to " + path);
    }
  }
  return Status::OK();
}

}  // namespace gqr
