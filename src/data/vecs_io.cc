#include "data/vecs_io.h"

#include <cstdio>
#include <memory>

namespace gqr {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Shared loader skeleton: reads (int32 dim, dim * element_size payload)
// records and hands each payload to `consume`.
template <typename ConsumeFn>
Status ReadVecs(const std::string& path, size_t element_size,
                size_t max_vectors, ConsumeFn consume) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);

  int32_t dim = 0;
  size_t count = 0;
  std::vector<char> buffer;
  while (max_vectors == 0 || count < max_vectors) {
    int32_t d = 0;
    const size_t got = std::fread(&d, sizeof(d), 1, f.get());
    if (got == 0) break;  // Clean EOF.
    if (d <= 0) {
      return Status::IOError(path + ": non-positive vector dimension");
    }
    if (dim == 0) {
      dim = d;
    } else if (d != dim) {
      return Status::IOError(path + ": inconsistent dimensions " +
                             std::to_string(dim) + " vs " + std::to_string(d));
    }
    buffer.resize(static_cast<size_t>(d) * element_size);
    if (std::fread(buffer.data(), 1, buffer.size(), f.get()) !=
        buffer.size()) {
      return Status::IOError(path + ": truncated vector record");
    }
    consume(static_cast<size_t>(d), buffer.data());
    ++count;
  }
  if (count == 0) return Status::IOError(path + ": empty file");
  return Status::OK();
}

}  // namespace

Result<Dataset> LoadFvecs(const std::string& path, size_t max_vectors) {
  std::vector<float> data;
  size_t dim = 0;
  Status st = ReadVecs(path, sizeof(float), max_vectors,
                       [&](size_t d, const char* payload) {
                         dim = d;
                         const float* v =
                             reinterpret_cast<const float*>(payload);
                         data.insert(data.end(), v, v + d);
                       });
  if (!st.ok()) return st;
  const size_t n = data.size() / dim;  // Before the move below.
  return Dataset(n, dim, std::move(data));
}

Result<Dataset> LoadBvecs(const std::string& path, size_t max_vectors) {
  std::vector<float> data;
  size_t dim = 0;
  Status st = ReadVecs(path, sizeof(uint8_t), max_vectors,
                       [&](size_t d, const char* payload) {
                         dim = d;
                         const uint8_t* v =
                             reinterpret_cast<const uint8_t*>(payload);
                         for (size_t i = 0; i < d; ++i) {
                           data.push_back(static_cast<float>(v[i]));
                         }
                       });
  if (!st.ok()) return st;
  const size_t n = data.size() / dim;  // Before the move below.
  return Dataset(n, dim, std::move(data));
}

Result<std::vector<std::vector<int32_t>>> LoadIvecs(const std::string& path,
                                                    size_t max_vectors) {
  std::vector<std::vector<int32_t>> rows;
  Status st = ReadVecs(path, sizeof(int32_t), max_vectors,
                       [&](size_t d, const char* payload) {
                         const int32_t* v =
                             reinterpret_cast<const int32_t*>(payload);
                         rows.emplace_back(v, v + d);
                       });
  if (!st.ok()) return st;
  return rows;
}

Status SaveFvecs(const Dataset& dataset, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot create " + path);
  const int32_t dim = static_cast<int32_t>(dataset.dim());
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(dataset.Row(static_cast<ItemId>(i)), sizeof(float),
                    dataset.dim(), f.get()) != dataset.dim()) {
      return Status::IOError("short write to " + path);
    }
  }
  return Status::OK();
}

Status SaveIvecs(const std::vector<std::vector<int32_t>>& rows,
                 const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot create " + path);
  for (const auto& row : rows) {
    const int32_t dim = static_cast<int32_t>(row.size());
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(row.data(), sizeof(int32_t), row.size(), f.get()) !=
            row.size()) {
      return Status::IOError("short write to " + path);
    }
  }
  return Status::OK();
}

}  // namespace gqr
