#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace gqr {

Dataset GenerateClusteredGaussian(const SyntheticSpec& spec) {
  GQR_CHECK(spec.n > 0 && spec.dim > 0 && spec.num_clusters > 0);
  Rng rng(spec.seed);
  const size_t k = std::min(spec.num_clusters, spec.n);

  // Cluster populations: Zipf-like weights w_c = 1 / (c + 1)^s.
  std::vector<double> weights(k);
  for (size_t c = 0; c < k; ++c) {
    weights[c] = 1.0 / std::pow(static_cast<double>(c + 1),
                                spec.zipf_exponent);
  }

  // Cluster centers and per-(cluster, dim) stddevs.
  std::vector<double> centers(k * spec.dim);
  std::vector<double> stddevs(k * spec.dim);
  for (size_t c = 0; c < k; ++c) {
    for (size_t j = 0; j < spec.dim; ++j) {
      centers[c * spec.dim + j] = rng.Gaussian(0.0, spec.center_scale);
      stddevs[c * spec.dim + j] =
          rng.UniformDouble(0.5, 1.5) * spec.cluster_stddev;
    }
  }

  Dataset out(spec.n, spec.dim);
  for (size_t i = 0; i < spec.n; ++i) {
    const size_t c = rng.Discrete(weights);
    float* row = out.MutableRow(static_cast<ItemId>(i));
    const double* mu = centers.data() + c * spec.dim;
    const double* sd = stddevs.data() + c * spec.dim;
    for (size_t j = 0; j < spec.dim; ++j) {
      double v = rng.Gaussian(mu[j], sd[j]);
      if (spec.non_negative) {
        // Shift by 3 center-scales then clamp: keeps the histogram-like
        // non-negativity of SIFT/GIST without flattening the structure.
        v = std::max(0.0, v + 3.0 * spec.center_scale);
      }
      row[j] = static_cast<float>(v);
    }
  }
  return out;
}

int CodeLengthForSize(size_t n, double expected_per_bucket) {
  const double m = std::log2(static_cast<double>(n) / expected_per_bucket);
  int rounded = static_cast<int>(std::lround(m));
  return std::clamp(rounded, 8, 40);
}

namespace {

DatasetProfile MakeProfile(const std::string& name, size_t n, size_t dim,
                           bool non_negative, uint64_t seed,
                           size_t num_queries) {
  DatasetProfile p;
  p.name = name;
  p.spec.n = n;
  p.spec.dim = dim;
  // Tuned so ITQ at m = log2(n/10) fills most of the 2^m buckets with a
  // skewed occupancy, matching the paper's reported bucket counts (e.g.
  // CIFAR60K: 3872 non-empty of 4096 possible at m = 12).
  p.spec.num_clusters = std::max<size_t>(50, n / 100);
  p.spec.cluster_stddev = 4.0;
  p.spec.zipf_exponent = 0.5;
  p.spec.non_negative = non_negative;
  p.spec.seed = seed;
  p.code_length = CodeLengthForSize(n);
  p.num_queries = num_queries;
  return p;
}

size_t Scaled(size_t base, double scale) {
  return std::max<size_t>(1000, static_cast<size_t>(base * scale));
}

}  // namespace

std::vector<DatasetProfile> PaperDatasetProfiles(double scale) {
  // Paper: CIFAR60K (512d, 60K), GIST1M (960d, 1M), TINY5M (384d, 5M),
  // SIFT10M (128d, 10M). Dimensions are reduced alongside sizes so each
  // bench binary stays in the seconds range; relative ordering of dataset
  // sizes (and hence of code lengths) is preserved.
  return {
      MakeProfile("CIFAR60K-like", Scaled(20000, scale), 64, false, 101, 100),
      MakeProfile("GIST1M-like", Scaled(50000, scale), 96, true, 102, 100),
      MakeProfile("TINY5M-like", Scaled(100000, scale), 48, false, 103, 100),
      MakeProfile("SIFT10M-like", Scaled(200000, scale), 32, true, 104, 100),
  };
}

std::vector<DatasetProfile> AppendixDatasetProfiles(double scale) {
  // Paper Table 3: DEEP1M(256d) MSONG1M(420d) GLOVE1.2M(200d)
  // GLOVE2.2M(300d) AUDIO50K(192d) NUSWIDE0.26M(500d) UKBENCH1M(128d)
  // IMAGENET2.3M(150d). Scaled to widths/sizes that keep the appendix
  // bench under a minute while spanning the same diversity of shapes.
  return {
      MakeProfile("DEEP1M-like", Scaled(40000, scale), 64, false, 201, 100),
      MakeProfile("MSONG1M-like", Scaled(40000, scale), 96, false, 202, 100),
      MakeProfile("GLOVE1.2M-like", Scaled(48000, scale), 50, false, 203, 100),
      MakeProfile("GLOVE2.2M-like", Scaled(88000, scale), 72, false, 204, 100),
      MakeProfile("AUDIO50K-like", Scaled(20000, scale), 48, false, 205, 100),
      MakeProfile("NUSWIDE0.26M-like", Scaled(26000, scale), 96, true, 206,
                  100),
      MakeProfile("UKBENCH1M-like", Scaled(44000, scale), 32, true, 207, 100),
      MakeProfile("IMAGENET2.3M-like", Scaled(92000, scale), 40, true, 208,
                  100),
  };
}

}  // namespace gqr
