#include "data/ground_truth.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "la/simd_kernels.h"
#include "util/check.h"
#include "util/parallel_for.h"

namespace gqr {

Neighbors BruteForceKnn(const Dataset& base, const float* query, size_t k) {
  GQR_CHECK(k > 0 && k <= base.size());
  const size_t dim = base.dim();
  const float* data = base.data();
  const DistanceKernels& kernels = Kernels();
  // Bounded max-heap of (squared distance, id): the root is the worst of
  // the current best k, evicted whenever something closer shows up.
  using Entry = std::pair<float, ItemId>;
  std::priority_queue<Entry> heap;
  // Score rows in blocks through the dispatched kernel so the heap
  // bookkeeping stays out of the distance loop; the scan is sequential,
  // so prefetching two rows ahead is enough to stay in front of it.
  constexpr size_t kBlock = 64;
  float d2[kBlock];
  for (size_t start = 0; start < base.size(); start += kBlock) {
    const size_t count = std::min(kBlock, base.size() - start);
    const float* rows = data + start * dim;
    for (size_t j = 0; j < count; ++j) {
      if (j + 2 < count) PrefetchRow(rows + (j + 2) * dim, dim);
      d2[j] = kernels.squared_l2(rows + j * dim, query, dim);
    }
    for (size_t j = 0; j < count; ++j) {
      const auto id = static_cast<ItemId>(start + j);
      if (heap.size() < k) {
        heap.emplace(d2[j], id);
      } else if (d2[j] < heap.top().first) {
        heap.pop();
        heap.emplace(d2[j], id);
      }
    }
  }
  Neighbors out;
  out.ids.resize(heap.size());
  out.distances.resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out.ids[i] = heap.top().second;
    out.distances[i] = std::sqrt(heap.top().first);
    heap.pop();
  }
  return out;
}

std::vector<Neighbors> ComputeGroundTruth(const Dataset& base,
                                          const Dataset& queries, size_t k) {
  GQR_CHECK(base.dim() == queries.dim());
  std::vector<Neighbors> out(queries.size());
  ParallelFor(0, queries.size(), [&](size_t q) {
    out[q] = BruteForceKnn(base, queries.Row(static_cast<ItemId>(q)), k);
  }, /*min_parallel=*/2);
  return out;
}

}  // namespace gqr
