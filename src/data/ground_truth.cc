#include "data/ground_truth.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "la/vector_ops.h"
#include "util/parallel_for.h"

namespace gqr {

Neighbors BruteForceKnn(const Dataset& base, const float* query, size_t k) {
  assert(k > 0 && k <= base.size());
  // Bounded max-heap of (squared distance, id): the root is the worst of
  // the current best k, evicted whenever something closer shows up.
  using Entry = std::pair<float, ItemId>;
  std::priority_queue<Entry> heap;
  for (size_t i = 0; i < base.size(); ++i) {
    const float sq =
        SquaredL2(base.Row(static_cast<ItemId>(i)), query, base.dim());
    if (heap.size() < k) {
      heap.emplace(sq, static_cast<ItemId>(i));
    } else if (sq < heap.top().first) {
      heap.pop();
      heap.emplace(sq, static_cast<ItemId>(i));
    }
  }
  Neighbors out;
  out.ids.resize(heap.size());
  out.distances.resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out.ids[i] = heap.top().second;
    out.distances[i] = std::sqrt(heap.top().first);
    heap.pop();
  }
  return out;
}

std::vector<Neighbors> ComputeGroundTruth(const Dataset& base,
                                          const Dataset& queries, size_t k) {
  assert(base.dim() == queries.dim());
  std::vector<Neighbors> out(queries.size());
  ParallelFor(0, queries.size(), [&](size_t q) {
    out[q] = BruteForceKnn(base, queries.Row(static_cast<ItemId>(q)), k);
  }, /*min_parallel=*/2);
  return out;
}

}  // namespace gqr
