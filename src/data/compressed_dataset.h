// CompressedDataset: a compact representation of a Dataset for the
// compressed rerank path (DESIGN.md section 14).
//
// Candidate verification is memory-bandwidth-bound at scale: the batched
// fp32 eval path gains only ~1.3x over naive because every candidate
// gathers dim * 4 bytes from a random row. Encoding the base set once at
// index time — SQ8 (one uint8 per dim with per-dim min/scale, 4x fewer
// resident bytes) or fp16 (IEEE binary16, 2x) — and scoring candidates
// through the asymmetric-distance kernels (la/simd_kernels.h
// CompressedKernels) cuts the bytes touched per candidate by the same
// factor. The searcher keeps a k*alpha shortlist of compressed-best
// candidates and exact-reranks it against the fp32 rows, so the final
// top-k distances remain exact.
#ifndef GQR_DATA_COMPRESSED_DATASET_H_
#define GQR_DATA_COMPRESSED_DATASET_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/check.h"

namespace gqr {

/// Which compact representation a CompressedDataset holds.
enum class CompressionKind : uint32_t {
  kSq8 = 1,   // uint8 per dim, per-dim affine (min, scale) dequantizer.
  kFp16 = 2,  // IEEE binary16 per dim.
};

/// "sq8" / "fp16"; for logs and bench output.
const char* CompressionKindName(CompressionKind kind);

/// Row-major n x dim compressed descriptors plus the per-row |x|^2 of
/// the decoded vectors (cached so angular search needs only the
/// asymmetric dot kernel). Immutable once built; encode at index build
/// time with Encode(), or rehydrate from disk via
/// persist/model_io.h:LoadCompressedDataset.
class CompressedDataset {
 public:
  CompressedDataset() = default;

  /// Encodes every row of `base`. SQ8 uses per-dim (min, scale) over the
  /// dataset with scale = (max - min) / 255 and code = nearest integer
  /// of (x - min) / scale clamped to [0, 255]; constant dims get
  /// scale = 0 and decode exactly to their value. fp16 narrows with
  /// round-to-nearest-even, saturating at +-65504 (FloatToFp16).
  static CompressedDataset Encode(const Dataset& base, CompressionKind kind);

  /// Assembles a dataset from parts (deserialization / tests). Shape
  /// invariants are checked: payload of n * dim codes of the kind's
  /// width, dim-sized min/scale for kSq8 (empty for kFp16), n row norms.
  CompressedDataset(CompressionKind kind, size_t n, size_t dim,
                    std::vector<uint8_t> sq8, std::vector<uint16_t> fp16,
                    std::vector<float> min, std::vector<float> scale,
                    std::vector<float> row_norm2);

  CompressionKind kind() const { return kind_; }
  size_t size() const { return n_; }
  size_t dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

  const uint8_t* Sq8Row(ItemId i) const {
    GQR_DCHECK_LT(i, n_);
    return sq8_.data() + static_cast<size_t>(i) * dim_;
  }
  const uint16_t* Fp16Row(ItemId i) const {
    GQR_DCHECK_LT(i, n_);
    return fp16_.data() + static_cast<size_t>(i) * dim_;
  }

  /// Per-dim dequantizer arrays (kSq8 only; empty for kFp16).
  const float* min() const { return min_.data(); }
  const float* scale() const { return scale_.data(); }

  /// |decode(row i)|^2, accumulated in double at encode time (level- and
  /// host-independent) and stored, so the angular eval path pays one
  /// asymmetric dot per candidate instead of a fused dot+norm.
  float row_norm2(ItemId i) const {
    GQR_DCHECK_LT(i, n_);
    return row_norm2_[i];
  }

  /// Decodes row `i` into out[0..dim): the exact values the asymmetric
  /// kernels see (SQ8: fmaf(scale_j, code, min_j); fp16: exact widening).
  void DecodeRow(ItemId i, float* out) const;

  /// Bytes of one compressed row (dim for kSq8, 2 * dim for kFp16) —
  /// the bytes a distance kernel touches per candidate.
  size_t bytes_per_row() const {
    return kind_ == CompressionKind::kSq8 ? dim_ : 2 * dim_;
  }

  /// Total resident payload bytes (codes + dequantizer + row norms);
  /// compare against n * dim * 4 for the fp32 dataset it stands in for.
  size_t resident_bytes() const;

  /// Serialization access (persist/model_io.cc).
  const std::vector<uint8_t>& sq8_codes() const { return sq8_; }
  const std::vector<uint16_t>& fp16_codes() const { return fp16_; }
  const std::vector<float>& min_vec() const { return min_; }
  const std::vector<float>& scale_vec() const { return scale_; }
  const std::vector<float>& row_norms2() const { return row_norm2_; }

 private:
  CompressionKind kind_ = CompressionKind::kSq8;
  size_t n_ = 0;
  size_t dim_ = 0;
  std::vector<uint8_t> sq8_;       // n * dim when kSq8, else empty.
  std::vector<uint16_t> fp16_;     // n * dim when kFp16, else empty.
  std::vector<float> min_, scale_;  // dim each when kSq8, else empty.
  std::vector<float> row_norm2_;   // n.
};

}  // namespace gqr

#endif  // GQR_DATA_COMPRESSED_DATASET_H_
