// Exact k-nearest-neighbor ground truth by parallel brute force.
//
// Recall — the paper's primary quality metric — is always measured against
// this exact answer set.
#ifndef GQR_DATA_GROUND_TRUTH_H_
#define GQR_DATA_GROUND_TRUTH_H_

#include <vector>

#include "data/dataset.h"

namespace gqr {

/// One query's exact neighbors, ascending by distance.
struct Neighbors {
  std::vector<ItemId> ids;
  std::vector<float> distances;  // Euclidean, parallel to ids.
};

/// Exact k-NN of every query row against the base set (Euclidean).
/// Parallel over queries. Requires k <= base.size().
std::vector<Neighbors> ComputeGroundTruth(const Dataset& base,
                                          const Dataset& queries, size_t k);

/// Exact k-NN of a single query (sequential); the building block used by
/// the linear-scan baseline of Table 1.
Neighbors BruteForceKnn(const Dataset& base, const float* query, size_t k);

}  // namespace gqr

#endif  // GQR_DATA_GROUND_TRUTH_H_
