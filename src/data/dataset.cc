#include "data/dataset.h"

#include <algorithm>
#include <sstream>

namespace gqr {

std::pair<Dataset, Dataset> Dataset::SplitQueries(size_t num_queries,
                                                  Rng* rng) const {
  GQR_CHECK_LE(num_queries, n_);
  std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
      static_cast<uint32_t>(n_), static_cast<uint32_t>(num_queries));
  std::vector<bool> is_query(n_, false);
  for (uint32_t p : picks) is_query[p] = true;

  Dataset queries(num_queries, dim_);
  Dataset base(n_ - num_queries, dim_);
  size_t qi = 0, bi = 0;
  for (size_t i = 0; i < n_; ++i) {
    const float* src = Row(static_cast<ItemId>(i));
    float* dst = is_query[i] ? queries.MutableRow(static_cast<ItemId>(qi++))
                             : base.MutableRow(static_cast<ItemId>(bi++));
    std::copy(src, src + dim_, dst);
  }
  return {std::move(base), std::move(queries)};
}

Dataset Dataset::Gather(const std::vector<ItemId>& ids) const {
  Dataset out(ids.size(), dim_);
  for (size_t i = 0; i < ids.size(); ++i) {
    const float* src = Row(ids[i]);
    std::copy(src, src + dim_, out.MutableRow(static_cast<ItemId>(i)));
  }
  return out;
}

std::string Dataset::Summary() const {
  std::ostringstream os;
  os << "Dataset(n=" << n_ << ", dim=" << dim_ << ")";
  return os.str();
}

}  // namespace gqr
