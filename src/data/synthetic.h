// Synthetic descriptor generators.
//
// The paper evaluates on public image-descriptor datasets (CIFAR60K GIST,
// GIST1M, TINY5M GIST, SIFT10M). Those files are not available offline, so
// the benches run on synthetic *clustered Gaussian* descriptors with the
// same dimensionality profiles and skewed cluster populations. What the
// querying methods care about is (a) local similarity structure — nearby
// items quantize to nearby codes — and (b) non-uniform bucket occupancy;
// both are reproduced by this generator, so the relative behaviour of
// HR/GHR/QR/GQR/MIH/IMI matches the paper even though absolute seconds
// differ. See DESIGN.md §3.
#ifndef GQR_DATA_SYNTHETIC_H_
#define GQR_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace gqr {

/// Parameters of the clustered-Gaussian generator.
struct SyntheticSpec {
  size_t n = 10000;
  size_t dim = 32;
  /// Number of Gaussian clusters; cluster populations follow a Zipf-like
  /// power law with exponent zipf_exponent (0 = uniform sizes).
  size_t num_clusters = 50;
  double zipf_exponent = 0.8;
  /// Cluster centers ~ N(0, center_scale^2) per dimension.
  double center_scale = 10.0;
  /// Within-cluster stddev is drawn per cluster and dimension from
  /// U[0.5, 1.5] * cluster_stddev, giving anisotropic clusters so PCA
  /// directions are informative.
  double cluster_stddev = 1.0;
  /// Shift + clamp all coordinates to be non-negative (SIFT/GIST
  /// descriptors are non-negative histograms).
  bool non_negative = false;
  uint64_t seed = 42;
};

/// Generates a dataset per spec. Deterministic in spec.seed.
Dataset GenerateClusteredGaussian(const SyntheticSpec& spec);

/// A named synthetic stand-in for one of the paper's datasets.
struct DatasetProfile {
  std::string name;        // e.g. "CIFAR60K-like"
  SyntheticSpec spec;
  int code_length;         // m ~= log2(n / 10), the paper's default rule
  size_t num_queries;
};

/// The four main evaluation datasets of the paper (Table 1), scaled down
/// by default so that the full bench suite completes in minutes;
/// `scale` multiplies item counts (code lengths follow log2(n/10)).
std::vector<DatasetProfile> PaperDatasetProfiles(double scale = 1.0);

/// The eight additional datasets of the appendix (Table 3), scaled.
std::vector<DatasetProfile> AppendixDatasetProfiles(double scale = 1.0);

/// Code length per the paper's rule m ~= log2(n / expected_per_bucket),
/// clamped to [8, 40].
int CodeLengthForSize(size_t n, double expected_per_bucket = 10.0);

}  // namespace gqr

#endif  // GQR_DATA_SYNTHETIC_H_
