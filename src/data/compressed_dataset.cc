#include "data/compressed_dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "la/simd_kernels.h"
#include "util/memory.h"

namespace gqr {

const char* CompressionKindName(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kSq8:
      return "sq8";
    case CompressionKind::kFp16:
      return "fp16";
  }
  GQR_CHECK(false) << "unknown CompressionKind "
                   << static_cast<uint32_t>(kind);
  return "?";
}

namespace {

// Decode of one SQ8 code — must match the kernels' DecodeSq8 exactly
// (fmaf, not a separate multiply+add) so DecodeRow reproduces the values
// the asymmetric kernels score against.
inline float DecodeSq8Value(uint8_t code, float min, float scale) {
  return std::fmaf(scale, static_cast<float>(code), min);
}

}  // namespace

CompressedDataset CompressedDataset::Encode(const Dataset& base,
                                            CompressionKind kind) {
  const size_t n = base.size();
  const size_t dim = base.dim();
  CompressedDataset out;
  out.kind_ = kind;
  out.n_ = n;
  out.dim_ = dim;
  out.row_norm2_.resize(n);

  if (kind == CompressionKind::kFp16) {
    // The code array is the randomly-probed resident set of compressed
    // search; hugepage backing keeps its TLB reach proportional to the
    // corpus (see util/memory.h).
    out.fp16_ = MakeHugeVector<uint16_t>(n * dim);
    for (size_t i = 0; i < n; ++i) {
      const float* row = base.Row(static_cast<ItemId>(i));
      uint16_t* code = out.fp16_.data() + i * dim;
      double norm2 = 0.0;
      for (size_t j = 0; j < dim; ++j) {
        code[j] = FloatToFp16(row[j]);
        const double v = Fp16ToFloat(code[j]);
        norm2 += v * v;
      }
      out.row_norm2_[i] = static_cast<float>(norm2);
    }
    return out;
  }

  GQR_CHECK(kind == CompressionKind::kSq8)
      << "unknown CompressionKind " << static_cast<uint32_t>(kind);
  out.min_.resize(dim, 0.f);
  out.scale_.resize(dim, 0.f);
  out.sq8_ = MakeHugeVector<uint8_t>(n * dim);
  if (n == 0) return out;

  // Per-dim range over the whole dataset; scale = (max - min) / 255 maps
  // min -> code 0 and max -> code 255.
  std::vector<float> maxv(dim, -std::numeric_limits<float>::infinity());
  for (size_t j = 0; j < dim; ++j) {
    out.min_[j] = std::numeric_limits<float>::infinity();
  }
  for (size_t i = 0; i < n; ++i) {
    const float* row = base.Row(static_cast<ItemId>(i));
    for (size_t j = 0; j < dim; ++j) {
      out.min_[j] = std::min(out.min_[j], row[j]);
      maxv[j] = std::max(maxv[j], row[j]);
    }
  }
  for (size_t j = 0; j < dim; ++j) {
    const float range = maxv[j] - out.min_[j];
    // Constant dims get scale 0: every code decodes exactly to min_[j].
    out.scale_[j] = range > 0.f ? range / 255.f : 0.f;
  }

  for (size_t i = 0; i < n; ++i) {
    const float* row = base.Row(static_cast<ItemId>(i));
    uint8_t* code = out.sq8_.data() + i * dim;
    double norm2 = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      float q = 0.f;
      if (out.scale_[j] > 0.f) {
        q = std::nearbyintf((row[j] - out.min_[j]) / out.scale_[j]);
        q = std::min(255.f, std::max(0.f, q));
      }
      code[j] = static_cast<uint8_t>(q);
      const double v = DecodeSq8Value(code[j], out.min_[j], out.scale_[j]);
      norm2 += v * v;
    }
    out.row_norm2_[i] = static_cast<float>(norm2);
  }
  return out;
}

CompressedDataset::CompressedDataset(CompressionKind kind, size_t n,
                                     size_t dim, std::vector<uint8_t> sq8,
                                     std::vector<uint16_t> fp16,
                                     std::vector<float> min,
                                     std::vector<float> scale,
                                     std::vector<float> row_norm2)
    : kind_(kind),
      n_(n),
      dim_(dim),
      sq8_(std::move(sq8)),
      fp16_(std::move(fp16)),
      min_(std::move(min)),
      scale_(std::move(scale)),
      row_norm2_(std::move(row_norm2)) {
  GQR_CHECK(kind_ == CompressionKind::kSq8 || kind_ == CompressionKind::kFp16)
      << "unknown CompressionKind " << static_cast<uint32_t>(kind_);
  GQR_CHECK_EQ(row_norm2_.size(), n_) << "row norms do not match n";
  if (kind_ == CompressionKind::kSq8) {
    GQR_CHECK_EQ(sq8_.size(), n_ * dim_) << "sq8 payload shape mismatch";
    GQR_CHECK_EQ(fp16_.size(), size_t{0}) << "fp16 payload on an sq8 dataset";
    GQR_CHECK_EQ(min_.size(), dim_) << "sq8 min shape mismatch";
    GQR_CHECK_EQ(scale_.size(), dim_) << "sq8 scale shape mismatch";
  } else {
    GQR_CHECK_EQ(fp16_.size(), n_ * dim_) << "fp16 payload shape mismatch";
    GQR_CHECK_EQ(sq8_.size(), size_t{0}) << "sq8 payload on an fp16 dataset";
    GQR_CHECK_EQ(min_.size(), size_t{0}) << "min array on an fp16 dataset";
    GQR_CHECK_EQ(scale_.size(), size_t{0})
        << "scale array on an fp16 dataset";
  }
}

void CompressedDataset::DecodeRow(ItemId i, float* out) const {
  GQR_DCHECK_LT(i, n_);
  if (kind_ == CompressionKind::kSq8) {
    const uint8_t* code = Sq8Row(i);
    for (size_t j = 0; j < dim_; ++j) {
      out[j] = DecodeSq8Value(code[j], min_[j], scale_[j]);
    }
  } else {
    const uint16_t* code = Fp16Row(i);
    for (size_t j = 0; j < dim_; ++j) out[j] = Fp16ToFloat(code[j]);
  }
}

size_t CompressedDataset::resident_bytes() const {
  return sq8_.size() * sizeof(uint8_t) + fp16_.size() * sizeof(uint16_t) +
         (min_.size() + scale_.size() + row_norm2_.size()) * sizeof(float);
}

}  // namespace gqr
