// Readers/writers for the TEXMEX .fvecs/.bvecs/.ivecs formats — the
// formats SIFT1M/GIST1M/SIFT10M ship in — so that users with the real
// datasets can run the benches on them directly.
//
// Format: each vector is stored as a little-endian int32 dimension d
// followed by d payload elements (float32 for fvecs, uint8 for bvecs,
// int32 for ivecs). All vectors in a file share the same d.
//
// Parsing is hardened against hostile input (and fuzzed — see
// fuzz/fuzz_vecs_io.cc): a truncated header or record, a non-positive or
// implausibly large dimension, inconsistent dimensions, and total-size
// overflow all come back as Status errors, never as an abort or an
// out-of-bounds read. The *FromMemory variants parse an in-memory buffer
// with identical semantics; they are the fuzzer entry points and are
// handy for tests.
#ifndef GQR_DATA_VECS_IO_H_
#define GQR_DATA_VECS_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"

namespace gqr {

/// Per-vector dimensions above this are rejected as malformed input (no
/// real descriptor set comes close; the cap keeps a hostile header from
/// demanding a multi-gigabyte record buffer).
inline constexpr int32_t kMaxVecsDim = 1 << 20;

/// Loads an .fvecs file; max_vectors = 0 means "all".
Result<Dataset> LoadFvecs(const std::string& path, size_t max_vectors = 0);

/// Loads a .bvecs file (bytes widened to float); max_vectors = 0 = all.
Result<Dataset> LoadBvecs(const std::string& path, size_t max_vectors = 0);

/// Loads an .ivecs file (e.g. ground-truth neighbor ids).
Result<std::vector<std::vector<int32_t>>> LoadIvecs(const std::string& path,
                                                    size_t max_vectors = 0);

/// Parses an .fvecs image from memory; same semantics as LoadFvecs.
Result<Dataset> LoadFvecsFromMemory(const void* data, size_t size,
                                    size_t max_vectors = 0);

/// Parses a .bvecs image from memory; same semantics as LoadBvecs.
Result<Dataset> LoadBvecsFromMemory(const void* data, size_t size,
                                    size_t max_vectors = 0);

/// Parses an .ivecs image from memory; same semantics as LoadIvecs.
Result<std::vector<std::vector<int32_t>>> LoadIvecsFromMemory(
    const void* data, size_t size, size_t max_vectors = 0);

/// Writes a dataset as .fvecs.
Status SaveFvecs(const Dataset& dataset, const std::string& path);

/// Writes id lists as .ivecs.
Status SaveIvecs(const std::vector<std::vector<int32_t>>& rows,
                 const std::string& path);

}  // namespace gqr

#endif  // GQR_DATA_VECS_IO_H_
