// DynamicHashTable: an insert/remove-capable bucket index.
//
// StaticHashTable (hash_table.h) is the deployment structure — immutable
// and probe-optimal. This table covers the other half of the lifecycle:
// ingesting a stream of items, deleting items, and freezing into a
// StaticHashTable once the corpus stabilizes. GQR/GHR probers work
// directly against it (they only generate codes); HR/QR probers need the
// bucket list, which Freeze() provides.
//
// Concurrency contract: thread-compatible, not thread-safe. The table
// assumes a single writer and no reader overlap; concurrent use goes
// through an external capability. The one concurrent holder in the tree
// is ShardedIndex, whose per-shard instance is declared
// `DynamicHashTable table GQR_GUARDED_BY(mu)` — so under Clang's
// -Wthread-safety every access to a shared instance is compile-time
// forced under the owning shard's lock, and no lock type belongs in
// this class. Probe() hands out a span into mutable storage and is for
// exclusive use only; externally synchronized callers must copy out
// under their lock via ProbeInto() instead.
#ifndef GQR_INDEX_DYNAMIC_TABLE_H_
#define GQR_INDEX_DYNAMIC_TABLE_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "index/hash_table.h"
#include "util/bits.h"
#include "util/result.h"
#include "util/status.h"

namespace gqr {

class DynamicHashTable {
 public:
  explicit DynamicHashTable(int code_length);

  int code_length() const { return code_length_; }
  size_t num_items() const { return num_items_; }
  size_t num_buckets() const { return buckets_.size(); }

  /// Adds an item under `code`. Returns InvalidArgument if the code has
  /// bits above code_length, FailedPrecondition if the id is present.
  Status Insert(ItemId id, Code code);

  /// Removes an item. Returns NotFound if the id is not present (or is
  /// not under `code`). O(bucket size).
  Status Remove(ItemId id, Code code);

  /// True if the id is currently indexed under `code`.
  bool Contains(ItemId id, Code code) const;

  /// Items currently in bucket `code` (order = insertion order, with
  /// swap-with-last removal holes).
  std::span<const ItemId> Probe(Code code) const;

  /// Signatures of the currently non-empty buckets, sorted ascending.
  std::vector<Code> BucketCodes() const;

  /// Appends the items of bucket `code` to `*out` (same contents as
  /// Probe, but usable by callers that must copy under an external lock
  /// rather than hold a span into mutable storage). Returns the number
  /// of items appended.
  size_t ProbeInto(Code code, std::vector<ItemId>* out) const;

  /// Immutable snapshot for deployment / HR / QR probing. Requires the
  /// indexed ids to be exactly {0, ..., num_items() - 1} (StaticHashTable
  /// addresses items by dense row index); returns FailedPrecondition
  /// otherwise — re-ingest with compacted ids after deletions.
  Result<StaticHashTable> Freeze() const;

  /// Sparse freeze: snapshots the current contents into a StaticHashTable
  /// without the dense-id requirement (ids are preserved verbatim). This
  /// is the shard freeze of ShardedIndex — each shard holds an arbitrary
  /// subset of the corpus.
  StaticHashTable SnapshotTable() const;

 private:
  int code_length_;
  Code code_mask_;
  size_t num_items_ = 0;
  std::unordered_map<Code, std::vector<ItemId>> buckets_;
};

}  // namespace gqr

#endif  // GQR_INDEX_DYNAMIC_TABLE_H_
