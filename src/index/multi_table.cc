#include "index/multi_table.h"

#include "util/check.h"

namespace gqr {

MultiTableIndex::MultiTableIndex(
    std::vector<std::unique_ptr<BinaryHasher>> hashers, const Dataset& base)
    : hashers_(std::move(hashers)) {
  GQR_CHECK(!hashers_.empty());
  tables_.reserve(hashers_.size());
  for (const auto& hasher : hashers_) {
    GQR_CHECK_EQ(hasher->dim(), base.dim());
    tables_.emplace_back(hasher->HashDataset(base), hasher->code_length());
  }
}

size_t MultiTableIndex::TotalBuckets() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t.num_buckets();
  return total;
}

MultiTableIndex BuildMultiTableIndex(
    const Dataset& base, size_t num_tables,
    const std::function<std::unique_ptr<BinaryHasher>(uint64_t seed)>&
        train) {
  std::vector<std::unique_ptr<BinaryHasher>> hashers;
  hashers.reserve(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    hashers.push_back(train(/*seed=*/1000 + 97 * t));
  }
  return MultiTableIndex(std::move(hashers), base);
}

}  // namespace gqr
