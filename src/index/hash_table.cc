#include "index/hash_table.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace gqr {

namespace {

// SplitMix64: cheap, well-mixed integer hash for the code -> slot map.
inline uint64_t MixCode(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

namespace {

std::vector<ItemId> IotaIds(size_t n) {
  std::vector<ItemId> ids(n);
  std::iota(ids.begin(), ids.end(), ItemId{0});
  return ids;
}

}  // namespace

StaticHashTable::StaticHashTable(const std::vector<Code>& codes,
                                 int code_length)
    : StaticHashTable(IotaIds(codes.size()), codes, code_length) {}

StaticHashTable::StaticHashTable(const std::vector<ItemId>& ids,
                                 const std::vector<Code>& codes,
                                 int code_length)
    : code_length_(code_length) {
  GQR_CHECK(code_length >= 1 && code_length <= 64)
      << "code length " << code_length;
  GQR_CHECK_EQ(ids.size(), codes.size());
  const Code mask = LowBitsMask(code_length);
  (void)mask;
  const size_t n = ids.size();

  // Sort (code, id) pairs: items land bucket-contiguous, ascending by id
  // within a bucket (the dense constructor's order exactly).
  std::vector<std::pair<Code, ItemId>> entries(n);
  for (size_t i = 0; i < n; ++i) {
    GQR_CHECK_EQ(codes[i] & ~mask, Code{0})
        << "code exceeds code_length bits at item " << i;
    entries[i] = {codes[i], ids[i]};
  }
  std::sort(entries.begin(), entries.end());

  // Item array + unique codes + offsets.
  item_ids_.resize(n);
  bucket_offsets_.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    item_ids_[i] = entries[i].second;
    const Code c = entries[i].first;
    if (bucket_codes_.empty() || bucket_codes_.back() != c) {
      if (!bucket_codes_.empty()) {
        bucket_offsets_.push_back(static_cast<uint32_t>(i));
      }
      bucket_codes_.push_back(c);
    }
  }
  bucket_offsets_.push_back(static_cast<uint32_t>(n));
  if (bucket_codes_.empty()) bucket_offsets_.assign(1, 0);

  BuildSlotMap();
}

void StaticHashTable::BuildSlotMap() {
  // Open-addressing map sized to <= 50% load.
  size_t slot_count = 16;
  while (slot_count < bucket_codes_.size() * 2) slot_count <<= 1;
  slots_.assign(slot_count, 0);
  slot_mask_ = slot_count - 1;
  for (size_t b = 0; b < bucket_codes_.size(); ++b) {
    uint64_t slot = MixCode(bucket_codes_[b]) & slot_mask_;
    while (slots_[slot] != 0) slot = (slot + 1) & slot_mask_;
    slots_[slot] = static_cast<uint32_t>(b) + 1;
  }
}

uint32_t StaticHashTable::FindBucket(Code code) const {
  if (slots_.empty()) return kNotFound;
  uint64_t slot = MixCode(code) & slot_mask_;
  while (true) {
    const uint32_t v = slots_[slot];
    if (v == 0) return kNotFound;
    if (bucket_codes_[v - 1] == code) return v - 1;
    slot = (slot + 1) & slot_mask_;
  }
}

std::span<const ItemId> StaticHashTable::Probe(Code code) const {
  const uint32_t b = FindBucket(code);
  if (b == kNotFound) return {};
  std::span<const ItemId> items = bucket_items(b);
#if defined(__GNUC__) || defined(__clang__)
  // The caller is about to stream this id span into the candidate
  // gather; start pulling its first lines while it sets up.
  __builtin_prefetch(items.data(), 0, 3);
#endif
  return items;
}

size_t StaticHashTable::MaxBucketSize() const {
  size_t best = 0;
  for (size_t b = 0; b < num_buckets(); ++b) {
    best = std::max(best, bucket_size(b));
  }
  return best;
}

}  // namespace gqr
