// MultiTableIndex: T independently trained hashers, each with its own
// bucket table over the same base set. Multiple tables trade memory for
// recall (paper §6.3.5); probers merge the per-table bucket streams by
// their similarity indicator.
#ifndef GQR_INDEX_MULTI_TABLE_H_
#define GQR_INDEX_MULTI_TABLE_H_

#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "hash/binary_hasher.h"
#include "index/hash_table.h"

namespace gqr {

class MultiTableIndex {
 public:
  /// Builds one StaticHashTable per hasher over `base`. All hashers must
  /// share the base's dimensionality (code lengths may differ).
  MultiTableIndex(std::vector<std::unique_ptr<BinaryHasher>> hashers,
                  const Dataset& base);

  size_t num_tables() const { return hashers_.size(); }
  const BinaryHasher& hasher(size_t t) const { return *hashers_[t]; }
  const StaticHashTable& table(size_t t) const { return tables_[t]; }

  /// Total number of non-empty buckets across tables (memory proxy).
  size_t TotalBuckets() const;

 private:
  std::vector<std::unique_ptr<BinaryHasher>> hashers_;
  std::vector<StaticHashTable> tables_;
};

/// Convenience: trains `num_tables` hashers via `train(table_seed)` and
/// builds the index. `train` is called with a distinct seed per table.
MultiTableIndex BuildMultiTableIndex(
    const Dataset& base, size_t num_tables,
    const std::function<std::unique_ptr<BinaryHasher>(uint64_t seed)>&
        train);

}  // namespace gqr

#endif  // GQR_INDEX_MULTI_TABLE_H_
