// ShardedIndex: an N-way sharded DynamicHashTable for concurrent serving.
//
// DynamicHashTable assumes a single writer and no reader overlap. This
// wrapper partitions the corpus by item id across N shards, each guarded
// by its own annotated SharedMutex (util/sync.h), so the index supports
// concurrent Insert/Remove (exclusive per shard) while readers probe
// (shared per shard). Every probe copies the bucket out under the
// shard's lock — readers never hold references into mutable storage, so
// a snapshot can never observe a half-inserted bucket or a reallocation.
//
// Each shard carries a version counter (bumped by every successful
// mutation) and an optional frozen StaticHashTable snapshot, swapped in
// by FreezeShard under a read-mostly shared_ptr. While a shard's frozen
// snapshot is current (frozen version == live version), probes are served
// from the immutable snapshot; the first mutation after a freeze makes
// probes fall back to the live table. This is the serving lifecycle of
// the paper's deployment model — ingest into the dynamic side, freeze to
// the probe-optimal static layout once traffic stabilizes — without ever
// blocking readers for longer than one bucket copy.
//
// The locking protocol is a compile-time contract: every guarded shard
// field is GQR_GUARDED_BY(shard.mu), the lock-held helpers carry
// GQR_REQUIRES(_SHARED), and acquisition goes through the scoped
// ShardReadLock/ShardWriteLock types below (which also implement the
// writer-preference gate). Clang's -Wthread-safety verifies all of it on
// the thread-safety CI leg; the tools/lint pass rejects raw std mutexes
// here outright.
#ifndef GQR_INDEX_SHARDED_INDEX_H_
#define GQR_INDEX_SHARDED_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "index/dynamic_table.h"
#include "index/hash_table.h"
#include "util/atomic.h"
#include "util/bits.h"
#include "util/status.h"
#include "util/sync.h"

namespace gqr {

class ShardedIndex {
 public:
  /// `num_shards` >= 1; clamped to 1 when 0 is passed. Shards partition
  /// items by a mixed hash of the id, so sequential and structured id
  /// spaces both balance.
  ShardedIndex(int code_length, size_t num_shards);

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  int code_length() const { return code_length_; }
  size_t num_shards() const { return shards_.size(); }

  /// The shard owning item `id` (pure function of id and shard count).
  size_t ShardOf(ItemId id) const;

  /// Adds an item under `code` to its shard (exclusive lock on that shard
  /// only). Error statuses are those of DynamicHashTable::Insert.
  Status Insert(ItemId id, Code code);

  /// Removes an item from its shard (exclusive lock on that shard only).
  Status Remove(ItemId id, Code code);

  /// True if the id is currently indexed under `code` (shared lock).
  bool Contains(ItemId id, Code code) const;

  /// Total items across shards. Each shard is read under its shared lock;
  /// the sum is not a cross-shard atomic snapshot (fine for monitoring
  /// and for quiesced verification).
  size_t num_items() const;

  /// Items in shard `shard` (shared lock).
  size_t shard_size(size_t shard) const;

  /// Mutation counter of `shard`: bumped once per successful Insert or
  /// Remove. Readers can detect "shard unchanged since I looked".
  uint64_t shard_version(size_t shard) const;

  /// Appends the items of bucket `code` in `shard` to `*out`, copied
  /// under the shard's shared lock (or served lock-light from the frozen
  /// snapshot when it is current). Returns the number appended.
  size_t ProbeShard(size_t shard, Code code, std::vector<ItemId>* out) const;

  /// Appends bucket `code` across all shards in shard order. Because the
  /// shards partition the corpus, the union equals the bucket of an
  /// unsharded table with the same contents.
  size_t ProbeAll(Code code, std::vector<ItemId>* out) const;

  /// Sorted, de-duplicated union of non-empty bucket codes across shards
  /// — the bucket list HR/QR probers sort. Equal to the bucket_codes()
  /// of an unsharded table with the same contents.
  std::vector<Code> BucketCodeUnion() const;

  /// Freezes `shard`: builds an immutable StaticHashTable snapshot of its
  /// current contents and publishes it under the shard's read-mostly
  /// pointer. Probes of this shard are then served from the snapshot
  /// until the next mutation. Returns InvalidArgument for a bad index.
  Status FreezeShard(size_t shard);

  /// Freezes every shard.
  void FreezeAll();

  /// The last published snapshot of `shard` (null before the first
  /// freeze). The snapshot is immutable; it may be stale if the shard
  /// mutated after the freeze — compare shard_version yourself if that
  /// matters.
  std::shared_ptr<const StaticHashTable> FrozenShard(size_t shard) const;

  /// True when `shard`'s frozen snapshot exists and no mutation happened
  /// after it was taken.
  bool ShardFrozen(size_t shard) const;

 private:
  struct Shard {
    explicit Shard(int code_length) : table(code_length) {}

    // The capability guarding everything below it. `mutable` so const
    // (reader) methods can lock; the annotated type keeps even those
    // reads inside compiler-checked scopes.
    mutable SharedMutex mu;
    // Advisory writer-preference gate, deliberately NOT guarded by mu:
    // glibc's shared_mutex is reader-preferring, so under sustained read
    // load an unbroken relay of shared holders starves ingest and
    // freezes indefinitely. Readers yield while this is non-zero (a
    // counter-intent atomic — the lock itself provides all
    // synchronization);
    // a reader may slip past a registering writer, which costs the
    // writer one more beat, never correctness.
    mutable Atomic<int> writers_waiting{0};
    DynamicHashTable table GQR_GUARDED_BY(mu);
    uint64_t version GQR_GUARDED_BY(mu) = 0;
    uint64_t frozen_version GQR_GUARDED_BY(mu) = 0;
    std::shared_ptr<const StaticHashTable> frozen GQR_GUARDED_BY(mu);
  };

  /// Scoped shared lock on one shard, with the writer-preference gate in
  /// front. Acquiring while already holding the shard's lock in either
  /// mode is a compile-time error (double-acquire) — the invariant the
  /// old ReadLock() helper could only state in a comment.
  class GQR_SCOPED_CAPABILITY ShardReadLock {
   public:
    explicit ShardReadLock(const Shard& s) GQR_ACQUIRE_SHARED(s.mu)
        : mu_(&s.mu) {
      while (s.writers_waiting.Load() > 0) {
        SpinYield();
      }
      mu_->LockShared();
    }
    ~ShardReadLock() GQR_RELEASE() { mu_->UnlockShared(); }

    ShardReadLock(const ShardReadLock&) = delete;
    ShardReadLock& operator=(const ShardReadLock&) = delete;

   private:
    SharedMutex* mu_;
  };

  /// Scoped exclusive lock on one shard; registers in the gate while
  /// contending so readers yield.
  class GQR_SCOPED_CAPABILITY ShardWriteLock {
   public:
    explicit ShardWriteLock(Shard& s) GQR_ACQUIRE(s.mu) : mu_(&s.mu) {
      s.writers_waiting.FetchAdd(1);
      mu_->Lock();
      s.writers_waiting.FetchSub(1);
    }
    ~ShardWriteLock() GQR_RELEASE() { mu_->Unlock(); }

    ShardWriteLock(const ShardWriteLock&) = delete;
    ShardWriteLock& operator=(const ShardWriteLock&) = delete;

   private:
    SharedMutex* mu_;
  };

  /// Lock-held body of ProbeShard: serves from the frozen snapshot when
  /// it is current, else copies out of the live table.
  size_t ProbeShardLocked(const Shard& s, Code code,
                          std::vector<ItemId>* out) const
      GQR_REQUIRES_SHARED(s.mu);

  /// Lock-held body of FreezeShard: publishes the snapshot and pairs it
  /// with the version at which it was taken.
  void FreezeShardLocked(Shard& s) GQR_REQUIRES(s.mu);

  int code_length_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gqr

#endif  // GQR_INDEX_SHARDED_INDEX_H_
