#include "index/sharded_index.h"

#include <algorithm>

namespace gqr {

namespace {

// SplitMix64 finalizer: spreads structured id spaces (sequential ingest
// ids, row indices) evenly across shards.
inline uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardedIndex::ShardedIndex(int code_length, size_t num_shards)
    : code_length_(code_length) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(code_length));
  }
}

size_t ShardedIndex::ShardOf(ItemId id) const {
  return static_cast<size_t>(MixId(id) % shards_.size());
}

Status ShardedIndex::Insert(ItemId id, Code code) {
  Shard& shard = *shards_[ShardOf(id)];
  ShardWriteLock lock(shard);
  Status status = shard.table.Insert(id, code);
  if (status.ok()) ++shard.version;
  return status;
}

Status ShardedIndex::Remove(ItemId id, Code code) {
  Shard& shard = *shards_[ShardOf(id)];
  ShardWriteLock lock(shard);
  Status status = shard.table.Remove(id, code);
  if (status.ok()) ++shard.version;
  return status;
}

bool ShardedIndex::Contains(ItemId id, Code code) const {
  const Shard& shard = *shards_[ShardOf(id)];
  ShardReadLock lock(shard);
  return shard.table.Contains(id, code);
}

size_t ShardedIndex::num_items() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    ShardReadLock lock(*shard);
    total += shard->table.num_items();
  }
  return total;
}

size_t ShardedIndex::shard_size(size_t shard) const {
  const Shard& s = *shards_[shard];
  ShardReadLock lock(s);
  return s.table.num_items();
}

uint64_t ShardedIndex::shard_version(size_t shard) const {
  const Shard& s = *shards_[shard];
  ShardReadLock lock(s);
  return s.version;
}

size_t ShardedIndex::ProbeShardLocked(const Shard& s, Code code,
                                      std::vector<ItemId>* out) const {
  // Serve from the frozen snapshot when it is current: the snapshot is
  // immutable, so only the pointer/version read needs the lock. The
  // bucket copy itself cannot race with writers either way — it happens
  // before the shared lock is released, and writers take the exclusive
  // side.
  if (s.frozen != nullptr && s.frozen_version == s.version) {
    std::span<const ItemId> items = s.frozen->Probe(code);
    out->insert(out->end(), items.begin(), items.end());
    return items.size();
  }
  return s.table.ProbeInto(code, out);
}

size_t ShardedIndex::ProbeShard(size_t shard, Code code,
                                std::vector<ItemId>* out) const {
  const Shard& s = *shards_[shard];
  ShardReadLock lock(s);
  return ProbeShardLocked(s, code, out);
}

size_t ShardedIndex::ProbeAll(Code code, std::vector<ItemId>* out) const {
  size_t appended = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    appended += ProbeShard(s, code, out);
  }
  return appended;
}

std::vector<Code> ShardedIndex::BucketCodeUnion() const {
  std::vector<Code> codes;
  for (const auto& shard : shards_) {
    ShardReadLock lock(*shard);
    std::vector<Code> shard_codes = shard->table.BucketCodes();
    codes.insert(codes.end(), shard_codes.begin(), shard_codes.end());
  }
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  return codes;
}

void ShardedIndex::FreezeShardLocked(Shard& s) {
  // Belt and braces at the gate: the attribute makes this a compile-time
  // requirement, the assertion re-states it to the analysis across any
  // future seam (and documents it at the point the version <-> snapshot
  // pairing is established).
  s.mu.AssertHeld();
  s.frozen = std::make_shared<const StaticHashTable>(s.table.SnapshotTable());
  s.frozen_version = s.version;
}

Status ShardedIndex::FreezeShard(size_t shard) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  Shard& s = *shards_[shard];
  // The snapshot is built under the exclusive lock: freezes are rare
  // (corpus stabilization points), and holding the lock keeps the
  // version <-> snapshot pairing exact.
  ShardWriteLock lock(s);
  FreezeShardLocked(s);
  return Status::OK();
}

void ShardedIndex::FreezeAll() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    // Cannot fail: every index in [0, num_shards) is valid.
    (void)FreezeShard(s);
  }
}

std::shared_ptr<const StaticHashTable> ShardedIndex::FrozenShard(
    size_t shard) const {
  const Shard& s = *shards_[shard];
  ShardReadLock lock(s);
  return s.frozen;
}

bool ShardedIndex::ShardFrozen(size_t shard) const {
  const Shard& s = *shards_[shard];
  ShardReadLock lock(s);
  return s.frozen != nullptr && s.frozen_version == s.version;
}

}  // namespace gqr
