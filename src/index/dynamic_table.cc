#include "index/dynamic_table.h"

#include <algorithm>

#include "util/check.h"

namespace gqr {

DynamicHashTable::DynamicHashTable(int code_length)
    : code_length_(code_length), code_mask_(LowBitsMask(code_length)) {
  GQR_CHECK(code_length >= 1 && code_length <= 64)
      << "code length " << code_length;
}

Status DynamicHashTable::Insert(ItemId id, Code code) {
  if ((code & ~code_mask_) != 0) {
    return Status::InvalidArgument("code exceeds code length");
  }
  std::vector<ItemId>& bucket = buckets_[code];
  if (std::find(bucket.begin(), bucket.end(), id) != bucket.end()) {
    return Status::FailedPrecondition("item " + std::to_string(id) +
                                      " already in bucket");
  }
  bucket.push_back(id);
  ++num_items_;
  return Status::OK();
}

Status DynamicHashTable::Remove(ItemId id, Code code) {
  auto it = buckets_.find(code & code_mask_);
  if (it == buckets_.end()) {
    return Status::NotFound("bucket empty");
  }
  std::vector<ItemId>& bucket = it->second;
  auto pos = std::find(bucket.begin(), bucket.end(), id);
  if (pos == bucket.end()) {
    return Status::NotFound("item " + std::to_string(id) +
                            " not in bucket");
  }
  *pos = bucket.back();
  bucket.pop_back();
  if (bucket.empty()) buckets_.erase(it);
  --num_items_;
  return Status::OK();
}

bool DynamicHashTable::Contains(ItemId id, Code code) const {
  auto it = buckets_.find(code & code_mask_);
  if (it == buckets_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), id) !=
         it->second.end();
}

std::span<const ItemId> DynamicHashTable::Probe(Code code) const {
  auto it = buckets_.find(code & code_mask_);
  if (it == buckets_.end()) return {};
  return it->second;
}

std::vector<Code> DynamicHashTable::BucketCodes() const {
  std::vector<Code> codes;
  codes.reserve(buckets_.size());
  for (const auto& [code, items] : buckets_) codes.push_back(code);
  std::sort(codes.begin(), codes.end());
  return codes;
}

size_t DynamicHashTable::ProbeInto(Code code, std::vector<ItemId>* out) const {
  auto it = buckets_.find(code & code_mask_);
  if (it == buckets_.end()) return 0;
  out->insert(out->end(), it->second.begin(), it->second.end());
  return it->second.size();
}

StaticHashTable DynamicHashTable::SnapshotTable() const {
  std::vector<ItemId> ids;
  std::vector<Code> codes;
  ids.reserve(num_items_);
  codes.reserve(num_items_);
  for (const auto& [code, items] : buckets_) {
    for (ItemId id : items) {
      ids.push_back(id);
      codes.push_back(code);
    }
  }
  return StaticHashTable(ids, codes, code_length_);
}

Result<StaticHashTable> DynamicHashTable::Freeze() const {
  // Re-derive the per-item code array; StaticHashTable addresses items
  // by dense row index, so the id set must be exactly [0, num_items).
  std::vector<Code> codes(num_items_, 0);
  std::vector<bool> assigned(num_items_, false);
  for (const auto& [code, items] : buckets_) {
    for (ItemId id : items) {
      if (id >= num_items_ || assigned[id]) {
        return Status::FailedPrecondition(
            "ids are not dense in [0, num_items); compact before Freeze");
      }
      assigned[id] = true;
      codes[id] = code;
    }
  }
  return StaticHashTable(codes, code_length_);
}

}  // namespace gqr
