// StaticHashTable: the bucket index of one hash table.
//
// Built once from the per-item codes, then immutable: item ids are sorted
// by code into one contiguous array, and an open-addressing map from code
// to (offset, length) makes probing a bucket a single hash lookup plus a
// linear span scan. This mirrors how L2H indexes are deployed (build
// offline, probe online) and keeps the probe path allocation-free.
#ifndef GQR_INDEX_HASH_TABLE_H_
#define GQR_INDEX_HASH_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "util/bits.h"

namespace gqr {

class StaticHashTable {
 public:
  StaticHashTable() = default;

  /// Builds the table from codes[i] = bucket signature of item i.
  /// code_length is m (1..64); codes must fit in m bits.
  StaticHashTable(const std::vector<Code>& codes, int code_length);

  /// Builds the table from an explicit id set: codes[i] is the bucket
  /// signature of item ids[i]. The ids need not be dense — this is how a
  /// shard of a partitioned index freezes, holding an arbitrary subset of
  /// the corpus. Buckets come out sorted by code, items within a bucket
  /// ascending by id (matching the dense constructor).
  StaticHashTable(const std::vector<ItemId>& ids,
                  const std::vector<Code>& codes, int code_length);

  int code_length() const { return code_length_; }
  size_t num_items() const { return item_ids_.size(); }
  /// Number of non-empty buckets (B in the paper's complexity analysis).
  size_t num_buckets() const { return bucket_codes_.size(); }

  /// Items in bucket `code`; empty span when the bucket does not exist.
  std::span<const ItemId> Probe(Code code) const;

  /// Signature of every non-empty bucket (ascending code order).
  const std::vector<Code>& bucket_codes() const { return bucket_codes_; }

  /// Size of bucket index b (aligned with bucket_codes()).
  size_t bucket_size(size_t b) const {
    return bucket_offsets_[b + 1] - bucket_offsets_[b];
  }
  /// Items of bucket index b.
  std::span<const ItemId> bucket_items(size_t b) const {
    return {item_ids_.data() + bucket_offsets_[b],
            bucket_offsets_[b + 1] - bucket_offsets_[b]};
  }

  /// Largest bucket population; useful for occupancy diagnostics.
  size_t MaxBucketSize() const;

 private:
  /// Open-addressing lookup: index into bucket_codes_ or kNotFound.
  static constexpr uint32_t kNotFound = 0xffffffffu;
  uint32_t FindBucket(Code code) const;
  /// Builds slots_ / slot_mask_ from the finished bucket_codes_.
  void BuildSlotMap();

  int code_length_ = 0;
  std::vector<ItemId> item_ids_;         // Sorted by code, then id.
  std::vector<Code> bucket_codes_;       // Ascending unique codes.
  std::vector<uint32_t> bucket_offsets_; // Size num_buckets + 1.
  // Open addressing: slot -> bucket index + 1, 0 = empty.
  std::vector<uint32_t> slots_;
  uint64_t slot_mask_ = 0;
};

}  // namespace gqr

#endif  // GQR_INDEX_HASH_TABLE_H_
