#include "vq/imi.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "la/kmeans.h"
#include "util/check.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace gqr {

size_t ImiIndex::HalfBegin(int half) const {
  return model_->codebook().subspace(half).dim_begin;
}

size_t ImiIndex::HalfEnd(int half) const {
  return model_->codebook().subspace(half).dim_end;
}

ImiIndex::ImiIndex(const OpqModel& model, const Dataset& base,
                   const ImiOptions& options)
    : model_(&model),
      k_(static_cast<uint32_t>(model.codebook().num_centroids())),
      residual_centroids_(options.residual_centroids) {
  GQR_CHECK(model.codebook().num_subspaces() == 2);
  const size_t n = base.size();
  const size_t d = model.dim();

  // Rotate + encode everything once; keep the rotated vectors around
  // long enough to derive cells and residuals.
  std::vector<double> rotated(n * d);
  std::vector<uint32_t> cell_of(n);
  std::vector<uint32_t> coarse0(n), coarse1(n);
  ParallelFor(0, n, [&](size_t i) {
    double* r = rotated.data() + i * d;
    model_->RotateInto(base.Row(static_cast<ItemId>(i)), r);
    const std::vector<uint32_t> code = model_->codebook().Encode(r);
    coarse0[i] = code[0];
    coarse1[i] = code[1];
    cell_of[i] = static_cast<uint32_t>(CellIndex(code[0], code[1]));
  });

  // Counting sort into CSR layout.
  const size_t cells = num_cells();
  offsets_.assign(cells + 1, 0);
  for (size_t i = 0; i < n; ++i) ++offsets_[cell_of[i] + 1];
  for (size_t c = 0; c < cells; ++c) offsets_[c + 1] += offsets_[c];
  items_.resize(n);
  std::vector<uint32_t> position_of(n);
  {
    std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      position_of[i] = cursor[cell_of[i]];
      items_[cursor[cell_of[i]]++] = static_cast<ItemId>(i);
    }
  }

  if (residual_centroids_ <= 0) return;

  // Residual PQ per half: train on (rotated - coarse centroid), then
  // encode every item.
  Rng rng(options.seed);
  for (int half = 0; half < 2; ++half) {
    const size_t begin = HalfBegin(half);
    const size_t sub_dim = HalfEnd(half) - begin;
    const Matrix& centroids = model_->codebook().subspace(half).centroids;
    const std::vector<uint32_t>& coarse = half == 0 ? coarse0 : coarse1;

    // Training sample of residuals.
    std::vector<uint32_t> rows;
    if (n > options.max_train_samples) {
      rows = rng.SampleWithoutReplacement(
          static_cast<uint32_t>(n),
          static_cast<uint32_t>(options.max_train_samples));
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), 0u);
    }
    std::vector<double> residuals(rows.size() * sub_dim);
    for (size_t s = 0; s < rows.size(); ++s) {
      const double* r = rotated.data() + rows[s] * d + begin;
      const double* c = centroids.Row(coarse[rows[s]]);
      for (size_t j = 0; j < sub_dim; ++j) {
        residuals[s * sub_dim + j] = r[j] - c[j];
      }
    }
    KMeansOptions km;
    km.k = static_cast<size_t>(residual_centroids_);
    km.max_iters = options.residual_kmeans_iters;
    km.seed = options.seed + 31 * static_cast<uint64_t>(half);
    residual_codebook_[half] =
        KMeans(residuals.data(), rows.size(), sub_dim, km).centers;

    // Encode all items (stored aligned with items_, i.e. by position).
    residual_code_[half].resize(n);
    ParallelFor(0, n, [&](size_t i) {
      const double* r = rotated.data() + i * d + begin;
      const double* c = centroids.Row(coarse[i]);
      std::vector<double> res(sub_dim);
      for (size_t j = 0; j < sub_dim; ++j) res[j] = r[j] - c[j];
      residual_code_[half][position_of[i]] = static_cast<uint8_t>(
          NearestCenter(residual_codebook_[half], res.data()));
    });
  }
}

size_t ImiIndex::num_nonempty_cells() const {
  size_t count = 0;
  for (size_t c = 0; c < num_cells(); ++c) {
    if (offsets_[c + 1] > offsets_[c]) ++count;
  }
  return count;
}

template <typename VisitFn>
void ImiIndex::MultiSequenceSweep(const float* query, ProbeStats* stats,
                                  VisitFn visit) const {
  // Distance tables on the rotated query, each sorted ascending.
  std::vector<double> rotated(model_->dim());
  model_->RotateInto(query, rotated.data());
  std::vector<std::vector<double>> tables;
  model_->codebook().ComputeDistanceTables(rotated.data(), &tables);

  std::vector<uint32_t> order0(k_), order1(k_);
  std::iota(order0.begin(), order0.end(), 0u);
  std::iota(order1.begin(), order1.end(), 0u);
  std::sort(order0.begin(), order0.end(), [&](uint32_t a, uint32_t b) {
    return tables[0][a] < tables[0][b];
  });
  std::sort(order1.begin(), order1.end(), [&](uint32_t a, uint32_t b) {
    return tables[1][a] < tables[1][b];
  });

  struct Pos {
    double dist;
    uint32_t i, j;
    bool operator>(const Pos& other) const { return dist > other.dist; }
  };
  std::priority_queue<Pos, std::vector<Pos>, std::greater<Pos>> heap;
  std::vector<bool> pushed(num_cells(), false);
  auto push = [&](uint32_t i, uint32_t j) {
    if (i >= k_ || j >= k_) return;
    const size_t key = static_cast<size_t>(i) * k_ + j;
    if (pushed[key]) return;
    pushed[key] = true;
    heap.push(Pos{tables[0][order0[i]] + tables[1][order1[j]], i, j});
  };
  push(0, 0);

  while (!heap.empty()) {
    const Pos top = heap.top();
    heap.pop();
    if (stats != nullptr) ++stats->cells_visited;
    const uint32_t c0 = order0[top.i];
    const uint32_t c1 = order1[top.j];
    const size_t cell = CellIndex(c0, c1);
    const uint32_t begin = offsets_[cell];
    const uint32_t end = offsets_[cell + 1];
    if (begin != end && stats != nullptr) ++stats->cells_nonempty;
    if (!visit(c0, c1, rotated, begin, end)) return;
    push(top.i + 1, top.j);
    push(top.i, top.j + 1);
  }
}

std::vector<ItemId> ImiIndex::Collect(const float* query,
                                      size_t max_candidates,
                                      ProbeStats* stats) const {
  std::vector<ItemId> out;
  if (max_candidates == 0) return out;
  out.reserve(max_candidates);
  MultiSequenceSweep(
      query, stats,
      [&](uint32_t, uint32_t, const std::vector<double>&, uint32_t begin,
          uint32_t end) {
        for (uint32_t p = begin; p != end && out.size() < max_candidates;
             ++p) {
          out.push_back(items_[p]);
        }
        return out.size() < max_candidates;
      });
  return out;
}

std::vector<ItemId> ImiIndex::SearchAdc(const float* query, size_t k,
                                        size_t max_candidates,
                                        ProbeStats* stats) const {
  // Bounded max-heap of (estimated distance, id).
  using Entry = std::pair<double, ItemId>;
  std::priority_queue<Entry> top;
  size_t scanned = 0;

  const int kr = residual_centroids_;
  std::vector<double> table0(std::max(kr, 1)), table1(std::max(kr, 1));

  MultiSequenceSweep(
      query, stats,
      [&](uint32_t c0, uint32_t c1, const std::vector<double>& rotated,
          uint32_t begin, uint32_t end) {
        if (begin != end && kr > 0) {
          // Lazy residual tables for this cell: squared distance of
          // (q_half - coarse centroid) to every residual codeword.
          for (int half = 0; half < 2; ++half) {
            const size_t hb = HalfBegin(half);
            const size_t sub_dim = HalfEnd(half) - hb;
            const Matrix& coarse =
                model_->codebook().subspace(half).centroids;
            const double* c = coarse.Row(half == 0 ? c0 : c1);
            std::vector<double>& table = half == 0 ? table0 : table1;
            for (int r = 0; r < kr; ++r) {
              const double* rc = residual_codebook_[half].Row(r);
              double sq = 0.0;
              for (size_t j = 0; j < sub_dim; ++j) {
                const double diff = rotated[hb + j] - c[j] - rc[j];
                sq += diff * diff;
              }
              table[r] = sq;
            }
          }
        }
        for (uint32_t p = begin; p != end && scanned < max_candidates;
             ++p) {
          double dist;
          if (kr > 0) {
            dist = table0[residual_code_[0][p]] +
                   table1[residual_code_[1][p]];
          } else {
            // No residual codes: every item of the cell shares the cell
            // distance; rank by scan order within the cell.
            dist = static_cast<double>(scanned);
          }
          ++scanned;
          if (top.size() < k) {
            top.emplace(dist, items_[p]);
          } else if (dist < top.top().first) {
            top.pop();
            top.emplace(dist, items_[p]);
          }
        }
        return scanned < max_candidates;
      });

  std::vector<ItemId> out(top.size());
  for (size_t i = top.size(); i-- > 0;) {
    out[i] = top.top().second;
    top.pop();
  }
  return out;
}

}  // namespace gqr
