// OPQ (optimized product quantization, Ge-He-Ke-Sun), non-parametric
// variant: alternately (1) re-train the PQ codebooks on the rotated data
// and (2) update the d x d rotation R by orthogonal Procrustes against
// the PQ reconstructions. The state-of-the-art VQ comparator of the
// paper's §6.5 / Table 2.
#ifndef GQR_VQ_OPQ_H_
#define GQR_VQ_OPQ_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "la/matrix.h"
#include "vq/pq.h"

namespace gqr {

struct OpqOptions {
  int num_subspaces = 2;
  int num_centroids = 64;
  /// Outer alternation rounds.
  int iterations = 10;
  int kmeans_iters_per_round = 4;
  size_t max_train_samples = 20000;
  uint64_t seed = 42;
};

/// A trained OPQ model: rotation + codebooks on the rotated space.
class OpqModel {
 public:
  OpqModel(Matrix rotation, PqCodebook codebook, std::vector<double> mean);

  size_t dim() const { return rotation_.rows(); }
  const PqCodebook& codebook() const { return codebook_; }
  const Matrix& rotation() const { return rotation_; }
  /// Training-data mean subtracted before rotation.
  const std::vector<double>& mean() const { return mean_; }

  /// Rotates a float vector into the codebook space:
  /// out = R^T (x - mean), length dim().
  void RotateInto(const float* x, double* out) const;

  /// PQ code of an item (rotates then encodes).
  std::vector<uint32_t> EncodeItem(const float* x) const;

  /// Mean squared quantization error per training round (non-increasing
  /// up to k-means noise; reported for Table 2 style diagnostics).
  const std::vector<double>& error_history() const { return error_history_; }
  void set_error_history(std::vector<double> h) {
    error_history_ = std::move(h);
  }

 private:
  Matrix rotation_;  // d x d; columns orthonormal.
  PqCodebook codebook_;
  std::vector<double> mean_;
  std::vector<double> error_history_;
};

/// Trains OPQ on (a sample of) the dataset.
OpqModel TrainOpq(const Dataset& dataset, const OpqOptions& options);

}  // namespace gqr

#endif  // GQR_VQ_OPQ_H_
