#include "vq/opq.h"


#include "la/procrustes.h"
#include "util/check.h"
#include "util/random.h"

namespace gqr {

OpqModel::OpqModel(Matrix rotation, PqCodebook codebook,
                   std::vector<double> mean)
    : rotation_(std::move(rotation)),
      codebook_(std::move(codebook)),
      mean_(std::move(mean)) {
  GQR_CHECK(rotation_.rows() == rotation_.cols());
  GQR_CHECK(mean_.size() == rotation_.rows());
}

void OpqModel::RotateInto(const float* x, double* out) const {
  const size_t d = dim();
  // out = R^T (x - mean): rotated row j = <column j of R, x - mean>.
  for (size_t j = 0; j < d; ++j) out[j] = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double centered = static_cast<double>(x[i]) - mean_[i];
    const double* r_row = rotation_.Row(i);
    for (size_t j = 0; j < d; ++j) out[j] += centered * r_row[j];
  }
}

std::vector<uint32_t> OpqModel::EncodeItem(const float* x) const {
  std::vector<double> rotated(dim());
  RotateInto(x, rotated.data());
  return codebook_.Encode(rotated.data());
}

OpqModel TrainOpq(const Dataset& dataset, const OpqOptions& options) {
  const size_t d = dataset.dim();
  Rng rng(options.seed);

  // Training sample, mean-centered, in doubles.
  std::vector<uint32_t> rows;
  if (dataset.size() > options.max_train_samples) {
    rows = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(dataset.size()),
        static_cast<uint32_t>(options.max_train_samples));
  } else {
    rows.resize(dataset.size());
    for (size_t i = 0; i < dataset.size(); ++i) {
      rows[i] = static_cast<uint32_t>(i);
    }
  }
  const size_t t = rows.size();
  std::vector<double> mean(d, 0.0);
  for (uint32_t r : rows) {
    const float* x = dataset.Row(r);
    for (size_t j = 0; j < d; ++j) mean[j] += x[j];
  }
  for (size_t j = 0; j < d; ++j) mean[j] /= static_cast<double>(t);

  Matrix x(t, d);
  for (size_t i = 0; i < t; ++i) {
    const float* src = dataset.Row(rows[i]);
    for (size_t j = 0; j < d; ++j) {
      x.At(i, j) = static_cast<double>(src[j]) - mean[j];
    }
  }

  Matrix r = Matrix::RandomOrthogonal(d, &rng);
  PqCodebook codebook;
  std::vector<double> error_history;

  PqOptions pq;
  pq.num_subspaces = options.num_subspaces;
  pq.num_centroids = options.num_centroids;
  pq.kmeans_iters = options.kmeans_iters_per_round;
  pq.max_train_samples = 0;  // Already sampled.
  pq.seed = options.seed;

  for (int iter = 0; iter < options.iterations; ++iter) {
    // (1) Rotate and (re-)train codebooks.
    Matrix xr = x.Multiply(r);
    codebook = TrainPq(xr.data().data(), t, d, pq,
                       iter == 0 ? nullptr : &codebook);
    error_history.push_back(codebook.QuantizationError(xr.data().data(), t));

    // (2) Reconstructions Y and Procrustes update of R:
    // min_R ||X R - Y||  =>  R = U V^T from SVD(X^T Y).
    Matrix y(t, d);
    for (size_t i = 0; i < t; ++i) {
      codebook.Decode(codebook.Encode(xr.Row(i)), y.Row(i));
    }
    r = OrthogonalProcrustes(x.TransposedMultiply(y));
  }

  OpqModel model(std::move(r), std::move(codebook), std::move(mean));
  model.set_error_history(std::move(error_history));
  return model;
}

}  // namespace gqr
