// IMI: the inverted multi-index (Babenko-Lempitsky) over a 2-subspace
// (O)PQ codebook. Items live in K x K cells keyed by their two centroid
// indices; a query is answered by visiting cells in ascending sum of
// per-subspace distances via the *multi-sequence algorithm* — a min-heap
// over (i, j) positions in the two sorted distance sequences.
//
// Two query modes are provided:
//  - Collect(): candidate ids in cell-visit order, for exact reranking
//    against the raw vectors (how the paper's §6.5 comparison is run, so
//    all methods share one rerank policy).
//  - SearchAdc(): the full Multi-D-ADC pipeline — each item additionally
//    stores a residual PQ code, and candidates are ranked by asymmetric
//    distance (lazy per-cell residual lookup tables), never touching the
//    raw vectors at query time.
#ifndef GQR_VQ_IMI_H_
#define GQR_VQ_IMI_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "vq/opq.h"

namespace gqr {

struct ImiOptions {
  /// Residual-PQ centroids per half for SearchAdc (0 disables residual
  /// codes; SearchAdc then ranks by cell distance alone).
  int residual_centroids = 16;
  int residual_kmeans_iters = 15;
  size_t max_train_samples = 20000;
  uint64_t seed = 42;
};

class ImiIndex {
 public:
  /// Builds the K x K cell lists by encoding every item of `base` with
  /// `model` (borrowed; must outlive the index), and trains/stores the
  /// residual PQ codes. The codebook must have exactly 2 subspaces.
  ImiIndex(const OpqModel& model, const Dataset& base,
           const ImiOptions& options = ImiOptions());

  struct ProbeStats {
    size_t cells_visited = 0;
    size_t cells_nonempty = 0;
  };

  /// Collects up to max_candidates item ids in ascending cell distance
  /// (d0[i] + d1[j]) from the query. stats may be null.
  std::vector<ItemId> Collect(const float* query, size_t max_candidates,
                              ProbeStats* stats) const;

  /// Multi-D-ADC search: sweeps cells in the multi-sequence order,
  /// scoring up to max_candidates items by asymmetric distance
  /// ||q_rot - cell centroid - residual codeword||^2 via lazy per-cell
  /// lookup tables, and returns the best k ids (ascending estimated
  /// distance). Quantization error bounds the accuracy — rerank against
  /// raw vectors if exact order matters.
  std::vector<ItemId> SearchAdc(const float* query, size_t k,
                                size_t max_candidates,
                                ProbeStats* stats = nullptr) const;

  size_t num_cells() const {
    return static_cast<size_t>(k_) * static_cast<size_t>(k_);
  }
  size_t num_nonempty_cells() const;
  bool has_residuals() const { return residual_centroids_ > 0; }

 private:
  size_t CellIndex(uint32_t c0, uint32_t c1) const {
    return static_cast<size_t>(c0) * k_ + c1;
  }

  /// Runs the multi-sequence sweep, invoking
  /// visit(cell, item_begin, item_end) per visited cell until it returns
  /// false. Items are addressed as positions into items_.
  template <typename VisitFn>
  void MultiSequenceSweep(const float* query, ProbeStats* stats,
                          VisitFn visit) const;

  /// Half-space boundaries of the 2 coarse subspaces.
  size_t HalfBegin(int half) const;
  size_t HalfEnd(int half) const;

  const OpqModel* model_;
  uint32_t k_;  // Centroids per subspace.
  // CSR-style cell storage: items sorted by cell, offsets per cell.
  std::vector<ItemId> items_;
  std::vector<uint32_t> offsets_;  // Size k_^2 + 1.

  // Residual PQ (Multi-D-ADC): per half, a codebook over residuals
  // (rotated vector minus its coarse centroid); per stored item (aligned
  // with items_), one residual code per half.
  int residual_centroids_;
  Matrix residual_codebook_[2];       // Kr x half_dim each.
  std::vector<uint8_t> residual_code_[2];  // Aligned with items_.
};

}  // namespace gqr

#endif  // GQR_VQ_IMI_H_
