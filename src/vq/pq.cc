#include "vq/pq.h"

#include <cmath>
#include <limits>

#include "la/kmeans.h"
#include "util/check.h"
#include "util/parallel_for.h"

namespace gqr {

namespace {

double SubspaceSquaredL2(const double* centroid, const double* x,
                         size_t dim) {
  double s = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    const double d = centroid[j] - x[j];
    s += d * d;
  }
  return s;
}

// A few Lloyd iterations starting from existing centers — the warm-start
// path of OPQ's alternating optimization.
Matrix WarmStartLloyd(const double* data, size_t n, size_t dim,
                      Matrix centers, int iters) {
  const size_t k = centers.rows();
  std::vector<uint32_t> assign(n);
  for (int it = 0; it < iters; ++it) {
    ParallelFor(0, n, [&](size_t i) {
      assign[i] = NearestCenter(centers, data + i * dim);
    });
    Matrix sums(k, dim);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const double* x = data + i * dim;
      double* row = sums.Row(assign[i]);
      for (size_t j = 0; j < dim; ++j) row[j] += x[j];
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // Keep the old center.
      for (size_t j = 0; j < dim; ++j) {
        centers.At(c, j) = sums.At(c, j) / static_cast<double>(counts[c]);
      }
    }
  }
  return centers;
}

}  // namespace

PqCodebook::PqCodebook(std::vector<Subspace> subspaces)
    : subspaces_(std::move(subspaces)) {
  GQR_CHECK(!subspaces_.empty());
}

std::vector<uint32_t> PqCodebook::Encode(const double* x) const {
  std::vector<uint32_t> code(subspaces_.size());
  for (size_t s = 0; s < subspaces_.size(); ++s) {
    code[s] = NearestCenter(subspaces_[s].centroids,
                            x + subspaces_[s].dim_begin);
  }
  return code;
}

void PqCodebook::ComputeDistanceTables(
    const double* x, std::vector<std::vector<double>>* tables) const {
  tables->resize(subspaces_.size());
  for (size_t s = 0; s < subspaces_.size(); ++s) {
    const Subspace& sub = subspaces_[s];
    const size_t sub_dim = sub.dim_end - sub.dim_begin;
    auto& t = (*tables)[s];
    t.resize(sub.centroids.rows());
    for (size_t c = 0; c < sub.centroids.rows(); ++c) {
      t[c] = SubspaceSquaredL2(sub.centroids.Row(c), x + sub.dim_begin,
                               sub_dim);
    }
  }
}

void PqCodebook::Decode(const std::vector<uint32_t>& code,
                        double* out) const {
  GQR_CHECK(code.size() == subspaces_.size());
  for (size_t s = 0; s < subspaces_.size(); ++s) {
    const Subspace& sub = subspaces_[s];
    const double* c = sub.centroids.Row(code[s]);
    for (size_t j = sub.dim_begin; j < sub.dim_end; ++j) {
      out[j] = c[j - sub.dim_begin];
    }
  }
}

double PqCodebook::QuantizationError(const double* data, size_t n) const {
  const size_t d = dim();
  std::vector<double> errors(n);
  ParallelFor(0, n, [&](size_t i) {
    const double* x = data + i * d;
    std::vector<uint32_t> code = Encode(x);
    std::vector<double> rec(d);
    Decode(code, rec.data());
    errors[i] = SubspaceSquaredL2(rec.data(), x, d);
  });
  double total = 0.0;
  for (double e : errors) total += e;
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

PqCodebook TrainPq(const double* data, size_t n, size_t dim,
                   const PqOptions& options, const PqCodebook* warm_start) {
  GQR_CHECK(options.num_subspaces >= 1);
  GQR_CHECK(static_cast<size_t>(options.num_subspaces) <= dim);
  std::vector<PqCodebook::Subspace> subspaces(options.num_subspaces);
  for (int s = 0; s < options.num_subspaces; ++s) {
    PqCodebook::Subspace& sub = subspaces[s];
    sub.dim_begin = dim * s / options.num_subspaces;
    sub.dim_end = dim * (s + 1) / options.num_subspaces;
    const size_t sub_dim = sub.dim_end - sub.dim_begin;

    // Contiguous copy of the subspace slice.
    std::vector<double> slice(n * sub_dim);
    for (size_t i = 0; i < n; ++i) {
      const double* x = data + i * dim + sub.dim_begin;
      std::copy(x, x + sub_dim, slice.data() + i * sub_dim);
    }

    if (warm_start != nullptr) {
      sub.centroids =
          WarmStartLloyd(slice.data(), n, sub_dim,
                         warm_start->subspace(s).centroids,
                         options.kmeans_iters);
    } else {
      KMeansOptions km;
      km.k = static_cast<size_t>(options.num_centroids);
      km.max_iters = options.kmeans_iters;
      km.seed = options.seed + static_cast<uint64_t>(s) * 104729;
      km.max_train_samples = options.max_train_samples;
      sub.centroids = KMeans(slice.data(), n, sub_dim, km).centers;
    }
  }
  return PqCodebook(std::move(subspaces));
}

}  // namespace gqr
