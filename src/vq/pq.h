// Product quantization: split the space into M subspaces and vector-
// quantize each with its own k-means codebook. The building block of OPQ
// (opq.h) and of the inverted multi-index (imi.h).
#ifndef GQR_VQ_PQ_H_
#define GQR_VQ_PQ_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace gqr {

struct PqOptions {
  /// Number of subspaces M (the IMI uses exactly 2).
  int num_subspaces = 2;
  /// Centroids per subspace K.
  int num_centroids = 64;
  int kmeans_iters = 20;
  size_t max_train_samples = 20000;
  uint64_t seed = 42;
};

/// A trained product quantizer over d-dimensional doubles. (Training and
/// encoding run on doubles because OPQ feeds it rotated data.)
class PqCodebook {
 public:
  struct Subspace {
    size_t dim_begin;
    size_t dim_end;
    /// num_centroids x (dim_end - dim_begin).
    Matrix centroids;
  };

  PqCodebook() = default;
  explicit PqCodebook(std::vector<Subspace> subspaces);

  int num_subspaces() const { return static_cast<int>(subspaces_.size()); }
  int num_centroids() const {
    return static_cast<int>(subspaces_[0].centroids.rows());
  }
  size_t dim() const { return subspaces_.back().dim_end; }
  const Subspace& subspace(int s) const { return subspaces_[s]; }

  /// Per-subspace nearest-centroid indices of x (length num_subspaces).
  std::vector<uint32_t> Encode(const double* x) const;

  /// tables[s][c] = squared L2 distance from x's subvector s to centroid
  /// c — the ADC lookup tables, also what the IMI multi-sequence
  /// algorithm sorts.
  void ComputeDistanceTables(const double* x,
                             std::vector<std::vector<double>>* tables) const;

  /// Reconstruction (codeword concatenation) of an encoded vector into
  /// out (length dim()); used by OPQ's Procrustes update.
  void Decode(const std::vector<uint32_t>& code, double* out) const;

  /// Mean squared reconstruction error over n row-major vectors.
  double QuantizationError(const double* data, size_t n) const;

 private:
  std::vector<Subspace> subspaces_;
};

/// Trains PQ on n row-major d-dimensional doubles. When warm_start is
/// non-null its centroids seed the per-subspace k-means (used by OPQ's
/// alternating loop).
PqCodebook TrainPq(const double* data, size_t n, size_t dim,
                   const PqOptions& options,
                   const PqCodebook* warm_start = nullptr);

}  // namespace gqr

#endif  // GQR_VQ_PQ_H_
