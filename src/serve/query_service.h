// QueryService: the request-serving front end over the sharded index.
//
// The compute substrate is batch-shaped — blocked GEMM hashing is worth
// ~5.7x when queries arrive 64 at a time (BENCH_projection.json) — but a
// stream of independent requests arrives one query at a time. The
// service closes that gap by *coalescing*: concurrent Submit() calls
// land in a bounded queue, a worker claims up to max_batch of them
// (flushing early once the oldest request has lingered max_linger), and
// the whole block rides the batched hashing path of core/batch_search
// before each request is probed and evaluated individually against the
// ShardedIndex. Results are bit-identical to direct single-query
// Searcher::Search — batching never changes a code, a flipping cost, or
// a probe order (tests/serve_test.cc proves it differentially for all
// four querying methods).
//
// Serving semantics:
//   - Admission control: the submit queue is bounded (max_queue).
//     Submitting against a full queue — or after Shutdown() — sheds the
//     request immediately with RequestStatus::kRejected; nothing is
//     silently dropped.
//   - Deadlines: each request carries an absolute steady-clock deadline.
//     A request whose deadline passed while it waited in the queue is
//     completed as kExpired without being executed (the batch it would
//     have ridden does not pay for it).
//   - Completion: Submit() returns a Future (blocking Get()); the
//     callback-based SubmitAsync() invokes the completion callback
//     exactly once, on a service worker thread. Every accepted request
//     is completed — Shutdown() drains in-flight requests before the
//     workers exit.
//   - Observability: Stats() snapshots accepted/rejected/expired/
//     completed counters plus batch-fill and queue-depth histograms, the
//     two distributions that tell an operator whether coalescing is
//     actually amortizing (fill near max_batch) and whether the queue is
//     the bottleneck (depth near max_queue).
//
// The locking protocol is compiler-checked: every mutable field is
// GQR_GUARDED_BY(mu_) and the entry points GQR_EXCLUDES(mu_), matching
// the discipline of index/sharded_index.h. Batch execution runs with no
// lock held — only claim/complete touch mu_ — so the queue stays
// available to submitters while a batch computes.
#ifndef GQR_SERVE_QUERY_SERVICE_H_
#define GQR_SERVE_QUERY_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/searcher.h"
#include "core/sharded_search.h"
#include "eval/harness.h"
#include "hash/binary_hasher.h"
#include "index/sharded_index.h"
#include "util/sync.h"
#include "util/thread.h"

namespace gqr {

/// Terminal status of one submitted request.
enum class RequestStatus {
  kOk,        // Executed; Response::result holds the top-k.
  kRejected,  // Shed at admission: queue full, or service shut down.
  kExpired,   // Deadline passed while the request waited in the queue.
};

const char* RequestStatusName(RequestStatus status);

/// What a completed request resolves to.
struct Response {
  RequestStatus status = RequestStatus::kRejected;
  /// Meaningful only when status == kOk.
  SearchResult result;
  /// Submit -> claimed-by-a-batch wait (queueing + linger), microseconds.
  double queue_micros = 0.0;
  /// Fill of the batch that served this request (kOk only).
  size_t batch_size = 0;
};

struct QueryServiceOptions {
  /// Largest coalesced block. 64 matches the blocked-GEMM tile of the
  /// batched hashing path, so a full batch is exactly one GEMM.
  size_t max_batch = 64;
  /// How long a claimed-by-nobody request may wait for the block to
  /// fill before the batch is flushed anyway. The latency cost of
  /// coalescing is bounded by this knob.
  std::chrono::microseconds max_linger{200};
  /// Bound on queued (accepted, not yet claimed) requests; submits
  /// beyond it are rejected. This is the shed point under overload.
  size_t max_queue = 1024;
  /// Worker threads claiming and executing batches.
  size_t num_workers = 1;
  /// Ablation knob: false serves every request as a batch of one with no
  /// linger — the per-query path the coalescer exists to beat
  /// (bench/micro_serving.cc measures the difference).
  bool coalesce = true;
  /// Querying method executed for every request.
  QueryMethod method = QueryMethod::kGQR;
  /// Base search options; a request's k overrides `search.k` when > 0.
  SearchOptions search;
};

/// Monotonic counters and histograms, snapshotted by Stats().
struct ServiceStats {
  uint64_t accepted = 0;   // Requests admitted to the queue.
  uint64_t rejected = 0;   // Shed at admission.
  uint64_t expired = 0;    // Deadline passed while queued.
  uint64_t completed = 0;  // Executed (kOk responses).
  uint64_t batches = 0;    // Batches flushed.
  /// batch_fill[f] = batches that executed exactly f requests,
  /// f in [0, max_batch] (index 0 is unused: empty claims don't flush).
  std::vector<uint64_t> batch_fill;
  /// Queue depth observed after each accepted submit, in power-of-two
  /// buckets: queue_depth[0] counts depth 1, queue_depth[i] counts
  /// depths in [2^(i-1) + 1 .. 2^i] for i >= 1.
  std::vector<uint64_t> queue_depth;

  /// Fill-weighted mean batch size (0 when no batch has flushed).
  double MeanBatchFill() const;
};

class QueryService {
 public:
  using Clock = std::chrono::steady_clock;
  using Deadline = Clock::time_point;
  /// Completion callback; invoked exactly once, on a worker thread.
  using Callback = std::function<void(Response)>;

  /// "No deadline": requests never expire in the queue.
  static Deadline NoDeadline() { return Deadline::max(); }

  /// The service borrows all four references; they must outlive it.
  /// Workers start immediately. The index may be mutated concurrently
  /// (Insert/Remove/FreezeShard) — execution goes through the same
  /// lock-disciplined probe path as ShardedSearch.
  QueryService(const Searcher& searcher, const BinaryHasher& hasher,
               const ShardedIndex& index, QueryServiceOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Future returned by Submit(). Get() blocks until the request
  /// completes (execution, expiry, or rejection — rejected futures are
  /// born resolved).
  class Future {
   public:
    Future() = default;
    bool valid() const { return state_ != nullptr; }
    /// Blocks until the response is ready, then returns it (moved out;
    /// call Get() once).
    Response Get();

   private:
    friend class QueryService;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// Submits one query (copied: `query` need only stay valid for the
  /// call) asking for `k` neighbors (0 = options.search.k) under
  /// `deadline`. Returns false — without ever invoking `done` — when the
  /// request is shed at admission; otherwise `done` fires exactly once on
  /// a worker thread with the terminal Response.
  bool SubmitAsync(const float* query, size_t k, Deadline deadline,
                   Callback done) GQR_EXCLUDES(mu_);

  /// Future-style submit. Rejected submissions return an already-resolved
  /// kRejected future, so callers can treat every path uniformly.
  Future Submit(const float* query, size_t k,
                Deadline deadline = Deadline::max()) GQR_EXCLUDES(mu_);

  /// Flushes the currently queued requests without waiting out the
  /// linger (they still execute on worker threads; this only cuts the
  /// wait short).
  void Flush() GQR_EXCLUDES(mu_);

  /// Stops admission (subsequent submits are rejected), drains every
  /// already-accepted request, and joins the workers. Idempotent; also
  /// run by the destructor.
  void Shutdown() GQR_EXCLUDES(mu_);

  /// Consistent snapshot of the serving counters. Counters lead
  /// delivery: a completion the caller has already observed (callback
  /// fired, Future resolved) is always included in the snapshot.
  ServiceStats Stats() const GQR_EXCLUDES(mu_);

  const QueryServiceOptions& options() const { return options_; }

 private:
  struct Request {
    std::vector<float> query;  // dim floats, copied at submit.
    size_t k = 0;
    Deadline deadline;
    Clock::time_point enqueue_time;
    /// flush_generation_ at enqueue; a later Flush() makes the linger
    /// loop release this request immediately.
    uint64_t flush_gen = 0;
    /// Admission-order exploration ticket (stats_.accepted at accept),
    /// assigned under mu_ — the planner's epsilon-greedy schedule is
    /// then a deterministic function of the admission sequence no matter
    /// which worker executes the request.
    uint64_t ticket = 0;
    Callback done;
  };

  void WorkerLoop() GQR_EXCLUDES(mu_);
  /// Claims the next batch (blocking through linger/shutdown), resolving
  /// expired requests on the way. Returns false when the service is shut
  /// down and the queue fully drained — the worker exits.
  bool ClaimBatch(std::vector<Request>* batch) GQR_EXCLUDES(mu_);
  /// Executes a claimed batch: gathers the query block, batch-hashes it,
  /// then probes + evaluates each request against the sharded index.
  /// Runs without mu_ held.
  void ExecuteBatch(std::vector<Request>* batch) GQR_EXCLUDES(mu_);

  const Searcher* searcher_;
  const BinaryHasher* hasher_;
  const ShardedIndex* index_;
  const QueryServiceOptions options_;

  mutable Mutex mu_;
  CondVar queue_cv_;
  std::deque<Request> queue_ GQR_GUARDED_BY(mu_);
  bool shutdown_ GQR_GUARDED_BY(mu_) = false;
  /// Bumped by Flush(). Requests are stamped with the generation at
  /// enqueue; a worker lingers only while the front request's stamp
  /// still matches, so a Flush() is never lost to a worker that had not
  /// yet reached its linger wait.
  uint64_t flush_generation_ GQR_GUARDED_BY(mu_) = 0;
  ServiceStats stats_ GQR_GUARDED_BY(mu_);

  /// Written during construction, joined by Shutdown(); workers never
  /// touch the vector itself.
  std::vector<Thread> workers_;
};

}  // namespace gqr

#endif  // GQR_SERVE_QUERY_SERVICE_H_
