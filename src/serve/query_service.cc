#include "serve/query_service.h"

#include <algorithm>
#include <utility>

#include "core/batch_search.h"
#include "plan/planner.h"
#include "util/check.h"
#include "util/clock.h"

namespace gqr {

namespace {

QueryServiceOptions Normalize(QueryServiceOptions options) {
  if (options.max_batch == 0) options.max_batch = 1;
  if (options.max_queue == 0) options.max_queue = 1;
  if (options.num_workers == 0) options.num_workers = 1;
  return options;
}

/// Histogram bucket for a queue depth d >= 1: the smallest b with
/// 2^b >= d (so depth 1 -> 0, 2 -> 1, 3..4 -> 2, ...), clamped to the
/// histogram size.
size_t DepthBucket(size_t depth, size_t num_buckets) {
  size_t b = 0;
  while ((static_cast<size_t>(1) << b) < depth) ++b;
  return std::min(b, num_buckets - 1);
}

}  // namespace

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kExpired:
      return "expired";
  }
  return "unknown";
}

double ServiceStats::MeanBatchFill() const {
  uint64_t batches_seen = 0;
  uint64_t requests = 0;
  for (size_t f = 0; f < batch_fill.size(); ++f) {
    batches_seen += batch_fill[f];
    requests += batch_fill[f] * f;
  }
  if (batches_seen == 0) return 0.0;
  return static_cast<double>(requests) / static_cast<double>(batches_seen);
}

struct QueryService::Future::State {
  Mutex mu;
  CondVar cv;
  bool ready GQR_GUARDED_BY(mu) = false;
  Response response GQR_GUARDED_BY(mu);
};

Response QueryService::Future::Get() {
  GQR_CHECK(state_ != nullptr) << "Get() on an invalid Future";
  MutexLock lock(state_->mu);
  while (!state_->ready) state_->cv.Wait(state_->mu);
  return std::move(state_->response);
}

QueryService::QueryService(const Searcher& searcher,
                           const BinaryHasher& hasher,
                           const ShardedIndex& index,
                           QueryServiceOptions options)
    : searcher_(&searcher),
      hasher_(&hasher),
      index_(&index),
      options_(Normalize(std::move(options))) {
  {
    // No worker exists yet, but initializing the guarded stats under the
    // lock keeps the capability contract unconditional.
    MutexLock lock(mu_);
    stats_.batch_fill.assign(options_.max_batch + 1, 0);
    stats_.queue_depth.assign(DepthBucket(options_.max_queue, 64) + 1, 0);
  }
  workers_.reserve(options_.num_workers);
  for (size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

bool QueryService::SubmitAsync(const float* query, size_t k, Deadline deadline,
                               Callback done) {
  GQR_CHECK(query != nullptr);
  GQR_CHECK(done != nullptr) << "SubmitAsync needs a completion callback";
  Request r;
  r.query.assign(query, query + hasher_->dim());
  r.k = k;
  r.deadline = deadline;
  r.done = std::move(done);
  {
    MutexLock lock(mu_);
    if (shutdown_ || queue_.size() >= options_.max_queue) {
      ++stats_.rejected;
      return false;
    }
    r.enqueue_time = SteadyNow();
    r.flush_gen = flush_generation_;
    r.ticket = stats_.accepted;
    queue_.push_back(std::move(r));
    ++stats_.accepted;
    ++stats_.queue_depth[DepthBucket(queue_.size(),
                                     stats_.queue_depth.size())];
  }
  queue_cv_.NotifyOne();
  return true;
}

QueryService::Future QueryService::Submit(const float* query, size_t k,
                                          Deadline deadline) {
  Future f;
  f.state_ = std::make_shared<Future::State>();
  std::shared_ptr<Future::State> state = f.state_;
  const bool accepted =
      SubmitAsync(query, k, deadline, [state](Response response) {
        MutexLock lock(state->mu);
        state->response = std::move(response);
        state->ready = true;
        state->cv.NotifyOne();
      });
  if (!accepted) {
    // Shed at admission: the callback never fires, so resolve the future
    // here. No waiter can exist yet, but locking keeps the contract.
    MutexLock lock(state->mu);
    state->response.status = RequestStatus::kRejected;
    state->ready = true;
  }
  return f;
}

void QueryService::Flush() {
  {
    MutexLock lock(mu_);
    ++flush_generation_;
  }
  queue_cv_.NotifyAll();
}

void QueryService::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  queue_cv_.NotifyAll();
  // Not safe against a *concurrent* Shutdown (join of the same thread),
  // but idempotent across sequential calls — the destructor's re-run
  // finds every worker already joined.
  for (Thread& w : workers_) {
    if (w.Joinable()) w.Join();
  }
}

ServiceStats QueryService::Stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void QueryService::WorkerLoop() {
  std::vector<Request> batch;
  while (ClaimBatch(&batch)) {
    ExecuteBatch(&batch);
  }
}

bool QueryService::ClaimBatch(std::vector<Request>* batch) {
  batch->clear();
  MutexLock lock(mu_);
  for (;;) {
    while (queue_.empty() && !shutdown_) queue_cv_.Wait(mu_);
    // Shutdown drains: workers keep claiming until the queue is empty,
    // so every accepted request still completes.
    if (queue_.empty()) return false;

    if (options_.coalesce && options_.max_batch > 1 && !shutdown_) {
      // Linger for the block to fill, bounded by max_linger measured
      // from the oldest queued request (if another worker claims it
      // from under us the stale, earlier flush point only makes us
      // flush sooner — never later). The front request's flush stamp is
      // re-read every pass: a Flush() issued at any point after its
      // enqueue — even before this worker reached the wait — releases
      // it immediately.
      const Deadline flush_at =
          queue_.front().enqueue_time + options_.max_linger;
      while (!queue_.empty() && queue_.size() < options_.max_batch &&
             !shutdown_ && queue_.front().flush_gen == flush_generation_) {
        if (!queue_cv_.WaitUntil(mu_, flush_at)) break;  // Linger over.
      }
      if (queue_.empty()) continue;  // Another worker claimed everything.
    }

    // Claim up to one block; with coalescing off every request is served
    // as a batch of one (the ablation baseline must not re-amortize a
    // backlog).
    const size_t take =
        options_.coalesce ? std::min(queue_.size(), options_.max_batch)
                          : static_cast<size_t>(1);
    for (size_t i = 0; i < take; ++i) {
      batch->push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return true;
  }
}

void QueryService::ExecuteBatch(std::vector<Request>* batch) {
  if (batch->empty()) return;
  const Clock::time_point claim_time = SteadyNow();
  const size_t dim = hasher_->dim();

  // Per-worker execution buffers; workers are long-lived threads, so the
  // steady-state batch path stops allocating once these are warm.
  thread_local std::vector<size_t> live;
  thread_local std::vector<float> block;
  thread_local std::vector<QueryHashInfo> infos;
  thread_local std::vector<Code> bucket_union;

  // Requests whose deadline passed while they queued are completed as
  // kExpired without executing — the batch does not pay for them.
  live.clear();
  size_t num_expired = 0;
  for (size_t i = 0; i < batch->size(); ++i) {
    if ((*batch)[i].deadline < claim_time) {
      ++num_expired;
    } else {
      live.push_back(i);
    }
  }
  const size_t fill = live.size();

  // Counters lead delivery: the whole batch is accounted before any of
  // its callbacks can fire, so a caller that has observed a completion
  // never reads a Stats() snapshot that is missing it.
  {
    MutexLock lock(mu_);
    stats_.expired += num_expired;
    if (fill > 0) {
      ++stats_.batches;
      ++stats_.batch_fill[std::min(fill, stats_.batch_fill.size() - 1)];
      stats_.completed += fill;
    }
  }

  if (num_expired > 0) {
    for (size_t i = 0; i < batch->size(); ++i) {
      Request& r = (*batch)[i];
      if (r.deadline >= claim_time) continue;
      Response resp;
      resp.status = RequestStatus::kExpired;
      resp.queue_micros =
          std::chrono::duration<double, std::micro>(claim_time -
                                                    r.enqueue_time)
              .count();
      Callback done = std::move(r.done);
      done(std::move(resp));
    }
  }

  if (fill > 0) {
    // Phase 1 — the whole point of coalescing: gather the block and
    // batch-hash it (one blocked GEMM per 64-query tile for projection
    // hashers), bit-identical to per-query HashQuery.
    block.resize(fill * dim);
    for (size_t j = 0; j < fill; ++j) {
      const Request& r = (*batch)[live[j]];
      std::copy(r.query.begin(), r.query.end(), block.begin() + j * dim);
    }
    if (infos.size() < fill) infos.resize(fill);
    BatchHashQueries(*hasher_, block.data(), fill, dim, infos.data());

    // HR/QR sort a bucket list upfront; snapshot the cross-shard union
    // once per batch instead of once per request.
    bucket_union.clear();
    if (MethodNeedsBucketUnion(options_.method)) {
      bucket_union = index_->BucketCodeUnion();
    }

    // Phase 2: probe + evaluate each request individually (per-request k
    // and options), against the concurrent sharded index.
    for (size_t j = 0; j < fill; ++j) {
      Request& r = (*batch)[live[j]];
      SearchOptions so = options_.search;
      if (r.k > 0) so.k = r.k;
      if (so.plan.planner != nullptr) {
        // Per-request plan inputs: the feature key from this request's
        // hash info, the ticket stamped at admission (see Request).
        so.plan.feature_key = QueryFeatureKey(infos[j]);
        so.plan.ticket = so.plan.ticket + r.ticket;
      }
      Response resp;
      resp.status = RequestStatus::kOk;
      resp.batch_size = fill;
      resp.queue_micros =
          std::chrono::duration<double, std::micro>(claim_time -
                                                    r.enqueue_time)
              .count();
      std::unique_ptr<BucketProber> prober = MakeShardedProber(
          options_.method, infos[j], bucket_union, index_->code_length());
      searcher_->SearchInto(r.query.data(), prober.get(), *index_, so,
                            /*scratch=*/nullptr, &resp.result);
      Callback done = std::move(r.done);
      done(std::move(resp));
    }
  }
}

}  // namespace gqr
