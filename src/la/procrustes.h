// Orthogonal Procrustes solver, the rotation-update step of ITQ and OPQ.
#ifndef GQR_LA_PROCRUSTES_H_
#define GQR_LA_PROCRUSTES_H_

#include "la/matrix.h"

namespace gqr {

/// Returns the orthogonal matrix R maximizing trace(R^T m), equivalently
/// the minimizer of ||A - B R^T|| when m = B^T A (the classic orthogonal
/// Procrustes problem). Computed as R = U V^T from the SVD m = U S V^T.
Matrix OrthogonalProcrustes(const Matrix& m);

}  // namespace gqr

#endif  // GQR_LA_PROCRUSTES_H_
