#include "la/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace gqr {

namespace {

// One-sided Jacobi on a tall (rows >= cols) matrix: rotates column pairs of
// `a` until all pairs are orthogonal, accumulating rotations into `v`.
void OneSidedJacobi(Matrix* a, Matrix* v, int max_sweeps, double tol) {
  const size_t rows = a->rows();
  const size_t cols = a->cols();
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (size_t p = 0; p + 1 < cols; ++p) {
      for (size_t q = p + 1; q < cols; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (size_t i = 0; i < rows; ++i) {
          const double aip = a->At(i, p);
          const double aiq = a->At(i, q);
          alpha += aip * aip;
          beta += aiq * aiq;
          gamma += aip * aiq;
        }
        if (std::abs(gamma) <= tol * std::sqrt(alpha * beta) ||
            gamma == 0.0) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (size_t i = 0; i < rows; ++i) {
          const double aip = a->At(i, p);
          const double aiq = a->At(i, q);
          a->At(i, p) = c * aip - s * aiq;
          a->At(i, q) = s * aip + c * aiq;
        }
        for (size_t i = 0; i < cols; ++i) {
          const double vip = v->At(i, p);
          const double viq = v->At(i, q);
          v->At(i, p) = c * vip - s * viq;
          v->At(i, q) = s * vip + c * viq;
        }
      }
    }
    if (converged) break;
  }
}

SvdResult SvdTall(const Matrix& a_in, int max_sweeps, double tol) {
  Matrix a = a_in;  // Working copy: its columns become U * sigma.
  const size_t cols = a.cols();
  Matrix v = Matrix::Identity(cols);
  OneSidedJacobi(&a, &v, max_sweeps, tol);

  // Column norms are the singular values.
  std::vector<double> sigma(cols);
  for (size_t j = 0; j < cols; ++j) {
    double norm = 0.0;
    for (size_t i = 0; i < a.rows(); ++i) norm += a.At(i, j) * a.At(i, j);
    sigma[j] = std::sqrt(norm);
  }

  // Sort by descending singular value.
  std::vector<size_t> order(cols);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return sigma[x] > sigma[y]; });

  SvdResult out;
  out.singular_values.resize(cols);
  out.u = Matrix(a.rows(), cols);
  out.v = Matrix(cols, cols);
  for (size_t j = 0; j < cols; ++j) {
    const size_t src = order[j];
    out.singular_values[j] = sigma[src];
    // Normalize the column to get U; for a (near-)zero singular value fall
    // back to a unit basis vector to keep U well-defined.
    if (sigma[src] > 1e-300) {
      for (size_t i = 0; i < a.rows(); ++i) {
        out.u.At(i, j) = a.At(i, src) / sigma[src];
      }
    } else {
      out.u.At(j % a.rows(), j) = 1.0;
    }
    for (size_t i = 0; i < cols; ++i) out.v.At(i, j) = v.At(i, src);
  }
  return out;
}

}  // namespace

SvdResult Svd(const Matrix& a, int max_sweeps, double tol) {
  GQR_CHECK(!a.empty());
  if (a.rows() >= a.cols()) return SvdTall(a, max_sweeps, tol);
  // A = U S V^T  <=>  A^T = V S U^T.
  SvdResult t = SvdTall(a.Transposed(), max_sweeps, tol);
  SvdResult out;
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  out.singular_values = std::move(t.singular_values);
  return out;
}

}  // namespace gqr
