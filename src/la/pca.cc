#include "la/pca.h"

#include <algorithm>
#include <vector>

#include "la/eigen_sym.h"
#include "la/simd_kernels.h"
#include "util/check.h"
#include "util/parallel_for.h"

namespace gqr {

void PcaModel::Project(const float* x, double* out) const {
  const size_t d = dim();
  if (num_components() == 0) return;
  const ProjectionKernels& k = ProjKernels();
  thread_local std::vector<double> centered;
  if (centered.size() < d) centered.resize(d);
  k.center(x, mean.data(), d, centered.data());
  k.gemv(components.Row(0), num_components(), d, centered.data(), out);
}

PcaModel FitPca(const float* data, size_t n, size_t dim,
                size_t num_components, size_t max_train_samples, Rng* rng) {
  GQR_CHECK(n > 0 && dim > 0 && num_components > 0 && num_components <= dim);

  // Pick training rows.
  std::vector<uint32_t> rows;
  if (n > max_train_samples) {
    Rng fallback(12345);
    Rng* r = rng != nullptr ? rng : &fallback;
    rows = r->SampleWithoutReplacement(
        static_cast<uint32_t>(n), static_cast<uint32_t>(max_train_samples));
  } else {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
  }
  const size_t t = rows.size();

  PcaModel model;
  model.mean.assign(dim, 0.0);
  for (uint32_t r : rows) {
    const float* x = data + static_cast<size_t>(r) * dim;
    for (size_t j = 0; j < dim; ++j) model.mean[j] += x[j];
  }
  for (size_t j = 0; j < dim; ++j) model.mean[j] /= static_cast<double>(t);

  // Covariance (upper triangle), parallel over rows of the output.
  Matrix cov(dim, dim);
  {
    // Per-block partial sums to avoid synchronizing on cov.
    // Simpler: parallelize over the (i, j >= i) output cells by row i.
    ParallelFor(0, dim, [&](size_t i) {
      for (size_t k = 0; k < t; ++k) {
        const float* x = data + static_cast<size_t>(rows[k]) * dim;
        const double xi = static_cast<double>(x[i]) - model.mean[i];
        double* cov_row = cov.Row(i);
        for (size_t j = i; j < dim; ++j) {
          cov_row[j] += xi * (static_cast<double>(x[j]) - model.mean[j]);
        }
      }
    }, /*min_parallel=*/8);
    const double scale = 1.0 / static_cast<double>(t > 1 ? t - 1 : 1);
    for (size_t i = 0; i < dim; ++i) {
      for (size_t j = i; j < dim; ++j) {
        cov.At(i, j) *= scale;
        cov.At(j, i) = cov.At(i, j);
      }
    }
  }

  EigenDecomposition eig = EigenSym(cov);
  model.components = Matrix(num_components, dim);
  model.explained_variance.resize(num_components);
  for (size_t c = 0; c < num_components; ++c) {
    model.explained_variance[c] = std::max(0.0, eig.eigenvalues[c]);
    for (size_t j = 0; j < dim; ++j) {
      model.components.At(c, j) = eig.eigenvectors.At(j, c);
    }
  }
  return model;
}

}  // namespace gqr
