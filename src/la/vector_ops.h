// Small dense-vector kernels shared by the distance computations and the
// learners. Distances between raw float descriptors are the hot path of
// candidate reranking, so the float variants forward to the runtime-
// dispatched SIMD kernels (la/simd_kernels.h); the double variants stay
// scalar (learning-stage math, not latency-critical).
#ifndef GQR_LA_VECTOR_OPS_H_
#define GQR_LA_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace gqr {

/// Squared Euclidean distance between two float vectors of length dim.
float SquaredL2(const float* a, const float* b, size_t dim);

/// Euclidean distance.
float L2Distance(const float* a, const float* b, size_t dim);

/// Dot product.
float Dot(const float* a, const float* b, size_t dim);

/// Euclidean norm.
float Norm(const float* a, size_t dim);

/// Cosine distance 1 - cos(a, b); 1.0 when either vector is zero.
float CosineDistance(const float* a, const float* b, size_t dim);

/// Double-precision variants (learning-stage math).
double SquaredL2(const double* a, const double* b, size_t dim);
double Dot(const double* a, const double* b, size_t dim);
double Norm(const double* a, size_t dim);

/// Normalizes v to unit L2 norm in place; leaves a zero vector unchanged.
void NormalizeInPlace(std::vector<double>* v);

}  // namespace gqr

#endif  // GQR_LA_VECTOR_OPS_H_
