#include "la/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace gqr {

namespace {

// Sum of squares of strictly-upper-triangle entries.
double OffDiagonalMass(const Matrix& a) {
  double sum = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = i + 1; j < a.cols(); ++j) {
      sum += a.At(i, j) * a.At(i, j);
    }
  }
  return sum;
}

}  // namespace

EigenDecomposition EigenSym(const Matrix& a_in, int max_sweeps, double tol) {
  GQR_CHECK(a_in.rows() == a_in.cols());
  const size_t n = a_in.rows();
  Matrix a = a_in;
  // Symmetrize: trust the average of the two triangles.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (a.At(i, j) + a.At(j, i));
      a.At(i, j) = avg;
      a.At(j, i) = avg;
    }
  }
  Matrix v = Matrix::Identity(n);
  const double fro = a.FrobeniusNorm();
  const double threshold = tol * std::max(fro, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (std::sqrt(OffDiagonalMass(a)) <= threshold) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = a.At(p, p);
        const double aqq = a.At(q, q);
        // Classic Jacobi rotation choosing the smaller angle root.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Update rows/columns p and q of A (A <- J^T A J).
        for (size_t i = 0; i < n; ++i) {
          const double aip = a.At(i, p);
          const double aiq = a.At(i, q);
          a.At(i, p) = c * aip - s * aiq;
          a.At(i, q) = s * aip + c * aiq;
        }
        for (size_t j = 0; j < n; ++j) {
          const double apj = a.At(p, j);
          const double aqj = a.At(q, j);
          a.At(p, j) = c * apj - s * aqj;
          a.At(q, j) = s * apj + c * aqj;
        }
        // Accumulate the rotation into V.
        for (size_t i = 0; i < n; ++i) {
          const double vip = v.At(i, p);
          const double viq = v.At(i, q);
          v.At(i, p) = c * vip - s * viq;
          v.At(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return a.At(x, x) > a.At(y, y); });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = a.At(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) {
      out.eigenvectors.At(i, j) = v.At(i, order[j]);
    }
  }
  return out;
}

}  // namespace gqr
