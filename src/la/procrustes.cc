#include "la/procrustes.h"

#include "la/svd.h"

namespace gqr {

Matrix OrthogonalProcrustes(const Matrix& m) {
  SvdResult svd = Svd(m);
  return svd.u.MultiplyTransposed(svd.v);
}

}  // namespace gqr
