// Symmetric eigendecomposition by the cyclic Jacobi method.
//
// Used by PCA (covariance matrices up to ~1000x1000 at the dims this
// library targets) and by the one-sided-Jacobi SVD's verification paths.
// Jacobi is slower than LAPACK's tridiagonal reductions but is simple,
// numerically robust, and dependency-free.
#ifndef GQR_LA_EIGEN_SYM_H_
#define GQR_LA_EIGEN_SYM_H_

#include <vector>

#include "la/matrix.h"

namespace gqr {

/// Eigendecomposition A = V diag(lambda) V^T of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> eigenvalues;
  /// Column j of eigenvectors is the eigenvector for eigenvalues[j].
  Matrix eigenvectors;
};

/// Computes the full eigendecomposition of symmetric matrix a.
///
/// a must be square and symmetric (only the upper triangle is trusted).
/// Runs cyclic Jacobi sweeps until off-diagonal mass is below tol * ||A||_F
/// or max_sweeps is hit (convergence is quadratic; 12 sweeps is plenty for
/// the sizes used here).
EigenDecomposition EigenSym(const Matrix& a, int max_sweeps = 24,
                            double tol = 1e-12);

}  // namespace gqr

#endif  // GQR_LA_EIGEN_SYM_H_
