// Runtime-dispatched SIMD distance kernels.
//
// Candidate verification is the dominant cost of every querying method
// (bucket generation is O(log i) per probe; exact distances are O(d) per
// candidate), so these kernels are selected once at startup by cpuid:
// AVX2+FMA implementations on hardware that has them, the portable scalar
// reference otherwise. All distance consumers — vector_ops, the Searcher
// hot path, ground truth — go through the same kernel table, so reference
// computations in tests and search results see identical arithmetic.
//
// Consistency contract: for a fixed build and host, every kernel that
// produces a given quantity (dot(a, b), |a|^2, ...) uses the same
// accumulation pattern, so the fused kernels are bit-identical to the
// corresponding standalone calls (DotAndNorms(a, b) == {Dot(a, b),
// Dot(a, a), Dot(b, b)}). Search-time cached norms therefore match
// one-shot CosineDistance exactly.
#ifndef GQR_LA_SIMD_KERNELS_H_
#define GQR_LA_SIMD_KERNELS_H_

#include <cstddef>

namespace gqr {

/// Instruction-set level the dispatcher selected.
enum class SimdLevel {
  kScalar,
  kAvx2,  // AVX2 + FMA.
};

/// Level picked at startup (cpuid, overridable with GQR_SIMD=scalar).
SimdLevel ActiveSimdLevel();

/// "scalar" / "avx2"; for logs and bench output.
const char* SimdLevelName(SimdLevel level);

/// The dispatched kernel table. Stateless function pointers; safe to call
/// concurrently.
struct DistanceKernels {
  /// sum_i (a[i] - b[i])^2.
  float (*squared_l2)(const float* a, const float* b, size_t dim);
  /// sum_i a[i] * b[i].
  float (*dot)(const float* a, const float* b, size_t dim);
  /// Fused dot(a, b) and |a|^2 in one pass — the cosine candidate loop
  /// with the query norm cached (pass the candidate as `a`).
  void (*dot_and_norm)(const float* a, const float* b, size_t dim,
                       float* dot, float* a_norm2);
  /// Fused dot(a, b), |a|^2, |b|^2 — one-shot cosine distance.
  void (*dot_and_norms)(const float* a, const float* b, size_t dim,
                        float* dot, float* a_norm2, float* b_norm2);
};

/// The kernel table for this host, resolved once (thread-safe).
const DistanceKernels& Kernels();

/// Scalar reference implementations (always available; the bench and the
/// equivalence tests compare the dispatched kernels against these).
float SquaredL2Scalar(const float* a, const float* b, size_t dim);
float DotScalar(const float* a, const float* b, size_t dim);
void DotAndNormScalar(const float* a, const float* b, size_t dim,
                      float* dot, float* a_norm2);
void DotAndNormsScalar(const float* a, const float* b, size_t dim,
                       float* dot, float* a_norm2, float* b_norm2);

/// Double-precision projection/GEMM kernels behind the same dispatcher.
///
/// These back the projection stage p(q) = W^T q that every
/// sign-of-projection hasher runs before probing, and the Matrix products
/// of the learners. Unlike the float distance kernels (whose levels agree
/// only to ~1e-4 relative), the projection kernels are **bit-identical
/// across dispatch levels and across call shapes**: every accumulation is
/// an explicit fused multiply-add (std::fma in the scalar kernels, vfmadd
/// in the AVX2 ones) over the same fixed accumulator structure — eight
/// strided partial sums s_0..s_7 over 8-element blocks, one 4-wide
/// remainder block into s_0..s_3, the combine ((s_0+s_4)+(s_1+s_5)) +
/// ((s_2+s_6)+(s_3+s_7)) grouped as (t_0+t_1)+(t_2+t_3), then a scalar
/// fma tail. Since each IEEE-754 operation is deterministic, any two
/// kernels performing this same sequence agree bit for bit, which is what
/// lets hash codes (sign thresholds!) match between the scalar and AVX2
/// builds and between batched and single-query hashing.
struct ProjectionKernels {
  /// sum_i a[i] * b[i] with the canonical fma accumulation above.
  double (*dot)(const double* a, const double* b, size_t n);
  /// y[i] = fma(alpha, x[i], y[i]) for i in [0, n). Element-wise, so any
  /// vector width gives identical results.
  void (*axpy)(double alpha, const double* x, double* y, size_t n);
  /// out[i] = double(x[i]) - offset[i] (offset == nullptr: plain widen).
  void (*center)(const float* x, const double* offset, size_t n,
                 double* out);
  /// y[i] = dot(w + i * d, x) for i in [0, m): row-major W (m x d) times
  /// x. Each row uses the canonical dot accumulation.
  void (*gemv)(const double* w, size_t m, size_t d, const double* x,
               double* y);
  /// C = A * B^T panel: c[i * ldc + j] = dot(a + i * lda, b + j * ldb)
  /// over length d, for i in [0, n), j in [0, m). Register-blocked over
  /// j; every output uses the canonical dot accumulation, so one row of
  /// the batched product is bit-identical to a standalone gemv call.
  void (*gemm_nt)(const double* a, size_t n, size_t lda, const double* b,
                  size_t m, size_t ldb, size_t d, double* c, size_t ldc);
};

/// The projection kernel table for this host, resolved once alongside
/// Kernels() and honoring the same GQR_SIMD=scalar override.
const ProjectionKernels& ProjKernels();

/// Scalar references for the projection kernels (the equivalence tests
/// assert *bitwise* equality between these and the dispatched table).
double DdotScalar(const double* a, const double* b, size_t n);
void DaxpyScalar(double alpha, const double* x, double* y, size_t n);
void CenterScalar(const float* x, const double* offset, size_t n,
                  double* out);
void DgemvScalar(const double* w, size_t m, size_t d, const double* x,
                 double* y);
void DgemmNtScalar(const double* a, size_t n, size_t lda, const double* b,
                   size_t m, size_t ldb, size_t d, double* c, size_t ldc);

/// Hints the prefetcher to pull `dim` floats at `row` into cache; used to
/// overlap the next candidate's memory latency with the current one's
/// arithmetic. No-op when the compiler lacks __builtin_prefetch.
inline void PrefetchRow(const float* row, size_t dim) {
#if defined(__GNUC__) || defined(__clang__)
  // One touch per 64-byte line (16 floats).
  for (size_t i = 0; i < dim; i += 16) __builtin_prefetch(row + i, 0, 3);
#else
  (void)row;
  (void)dim;
#endif
}

}  // namespace gqr

#endif  // GQR_LA_SIMD_KERNELS_H_
