// Runtime-dispatched SIMD distance kernels.
//
// Candidate verification is the dominant cost of every querying method
// (bucket generation is O(log i) per probe; exact distances are O(d) per
// candidate), so these kernels are selected once at startup by cpuid:
// AVX2+FMA implementations on hardware that has them, the portable scalar
// reference otherwise. All distance consumers — vector_ops, the Searcher
// hot path, ground truth — go through the same kernel table, so reference
// computations in tests and search results see identical arithmetic.
//
// Consistency contract: for a fixed build and host, every kernel that
// produces a given quantity (dot(a, b), |a|^2, ...) uses the same
// accumulation pattern, so the fused kernels are bit-identical to the
// corresponding standalone calls (DotAndNorms(a, b) == {Dot(a, b),
// Dot(a, a), Dot(b, b)}). Search-time cached norms therefore match
// one-shot CosineDistance exactly.
#ifndef GQR_LA_SIMD_KERNELS_H_
#define GQR_LA_SIMD_KERNELS_H_

#include <cstddef>

namespace gqr {

/// Instruction-set level the dispatcher selected.
enum class SimdLevel {
  kScalar,
  kAvx2,  // AVX2 + FMA.
};

/// Level picked at startup (cpuid, overridable with GQR_SIMD=scalar).
SimdLevel ActiveSimdLevel();

/// "scalar" / "avx2"; for logs and bench output.
const char* SimdLevelName(SimdLevel level);

/// The dispatched kernel table. Stateless function pointers; safe to call
/// concurrently.
struct DistanceKernels {
  /// sum_i (a[i] - b[i])^2.
  float (*squared_l2)(const float* a, const float* b, size_t dim);
  /// sum_i a[i] * b[i].
  float (*dot)(const float* a, const float* b, size_t dim);
  /// Fused dot(a, b) and |a|^2 in one pass — the cosine candidate loop
  /// with the query norm cached (pass the candidate as `a`).
  void (*dot_and_norm)(const float* a, const float* b, size_t dim,
                       float* dot, float* a_norm2);
  /// Fused dot(a, b), |a|^2, |b|^2 — one-shot cosine distance.
  void (*dot_and_norms)(const float* a, const float* b, size_t dim,
                        float* dot, float* a_norm2, float* b_norm2);
};

/// The kernel table for this host, resolved once (thread-safe).
const DistanceKernels& Kernels();

/// Scalar reference implementations (always available; the bench and the
/// equivalence tests compare the dispatched kernels against these).
float SquaredL2Scalar(const float* a, const float* b, size_t dim);
float DotScalar(const float* a, const float* b, size_t dim);
void DotAndNormScalar(const float* a, const float* b, size_t dim,
                      float* dot, float* a_norm2);
void DotAndNormsScalar(const float* a, const float* b, size_t dim,
                       float* dot, float* a_norm2, float* b_norm2);

/// Hints the prefetcher to pull `dim` floats at `row` into cache; used to
/// overlap the next candidate's memory latency with the current one's
/// arithmetic. No-op when the compiler lacks __builtin_prefetch.
inline void PrefetchRow(const float* row, size_t dim) {
#if defined(__GNUC__) || defined(__clang__)
  // One touch per 64-byte line (16 floats).
  for (size_t i = 0; i < dim; i += 16) __builtin_prefetch(row + i, 0, 3);
#else
  (void)row;
  (void)dim;
#endif
}

}  // namespace gqr

#endif  // GQR_LA_SIMD_KERNELS_H_
