// Runtime-dispatched SIMD distance kernels.
//
// Candidate verification is the dominant cost of every querying method
// (bucket generation is O(log i) per probe; exact distances are O(d) per
// candidate), so these kernels are selected once at startup by cpuid:
// AVX2+FMA implementations on hardware that has them, the portable scalar
// reference otherwise. All distance consumers — vector_ops, the Searcher
// hot path, ground truth — go through the same kernel table, so reference
// computations in tests and search results see identical arithmetic.
//
// Consistency contract: for a fixed build and host, every kernel that
// produces a given quantity (dot(a, b), |a|^2, ...) uses the same
// accumulation pattern, so the fused kernels are bit-identical to the
// corresponding standalone calls (DotAndNorms(a, b) == {Dot(a, b),
// Dot(a, a), Dot(b, b)}). Search-time cached norms therefore match
// one-shot CosineDistance exactly.
#ifndef GQR_LA_SIMD_KERNELS_H_
#define GQR_LA_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "util/attributes.h"

namespace gqr {

/// Instruction-set level the dispatcher selected.
enum class SimdLevel {
  kScalar,
  kAvx2,    // AVX2 + FMA.
  kAvx512,  // AVX-512 F/BW/DQ/VL (implies AVX2 + FMA).
};

/// Level picked at startup: the highest level the host supports, or the
/// level pinned with GQR_SIMD=scalar|avx2|avx512 (fatal error when the
/// host lacks the pinned level — see DetectSimdLevel).
SimdLevel ActiveSimdLevel();

/// "scalar" / "avx2" / "avx512"; for logs and bench output.
const char* SimdLevelName(SimdLevel level);

/// True when the host can execute kernels of `level` (kScalar always).
/// kAvx2 requires AVX2+FMA; kAvx512 requires AVX-512 F, BW, DQ and VL.
bool SimdLevelAvailable(SimdLevel level);

/// Parses a GQR_SIMD value ("scalar" / "avx2" / "avx512") into `*out`;
/// returns false on an unknown name.
bool ParseSimdLevel(const char* name, SimdLevel* out);

/// True when the host has F16C (hardware half<->float conversion). At
/// kAvx2 the fp16 compressed kernels need it and fall back to scalar
/// without it; at kAvx512 the 512-bit conversions are part of AVX-512F.
bool HostHasF16c();

/// True when the host has AVX-512 VNNI. Detected and reported (bench
/// JSON) but unused by the asymmetric kernels: VNNI accumulates int8
/// products in int32, which cannot reproduce the bitwise float scalar
/// reference these kernels are contracted to match (a symmetric
/// int8 x int8 VNNI path would need a quantized query — future work).
bool HostHasVnni();

/// The dispatched kernel table. Stateless function pointers; safe to call
/// concurrently.
struct DistanceKernels {
  /// sum_i (a[i] - b[i])^2.
  float (*squared_l2)(const float* a, const float* b, size_t dim);
  /// sum_i a[i] * b[i].
  float (*dot)(const float* a, const float* b, size_t dim);
  /// Fused dot(a, b) and |a|^2 in one pass — the cosine candidate loop
  /// with the query norm cached (pass the candidate as `a`).
  void (*dot_and_norm)(const float* a, const float* b, size_t dim,
                       float* dot, float* a_norm2);
  /// Fused dot(a, b), |a|^2, |b|^2 — one-shot cosine distance.
  void (*dot_and_norms)(const float* a, const float* b, size_t dim,
                        float* dot, float* a_norm2, float* b_norm2);
};

/// The kernel table for this host, resolved once (thread-safe).
const DistanceKernels& Kernels();

/// Scalar reference implementations (always available; the bench and the
/// equivalence tests compare the dispatched kernels against these).
float SquaredL2Scalar(const float* a, const float* b, size_t dim);
float DotScalar(const float* a, const float* b, size_t dim);
void DotAndNormScalar(const float* a, const float* b, size_t dim,
                      float* dot, float* a_norm2);
void DotAndNormsScalar(const float* a, const float* b, size_t dim,
                       float* dot, float* a_norm2, float* b_norm2);

/// Asymmetric-distance kernels for the compressed rerank path
/// (DESIGN.md section 14): the query stays fp32, the candidate row is
/// stored compressed (SQ8: one uint8 per dim with per-dim min/scale;
/// fp16: one IEEE half per dim) and is decoded on the fly inside the
/// kernel, so a candidate touches 1/4 (SQ8) or 1/2 (fp16) of the bytes
/// of the fp32 row it replaces.
///
/// Unlike the float distance kernels above (1e-4 relative agreement),
/// these are **bit-identical across dispatch levels**, in the discipline
/// of the ProjectionKernels: every level runs the same canonical
/// accumulation — 32 strided fmaf partials s_0..s_31 over 32-element
/// blocks (AVX-512: two 16-lane accumulators; AVX2: four 8-lane
/// accumulators; scalar: 32 named partials), the fixed combine
/// c_l = s_l + s_{l+16}, d_l = c_l + c_{l+8}, e_l = d_l + d_{l+4},
/// (e_0+e_2) + (e_1+e_3), then a sequential fmaf tail — and the same
/// per-element decode (SQ8: v = fmaf(scale_j, float(code), min_j); fp16:
/// the exact IEEE half->float widening). Each IEEE-754 operation is
/// deterministic, so scalar, AVX2 and AVX-512 agree bit for bit, and the
/// compressed shortlist (and thus the final exact-reranked top-k) does
/// not depend on the dispatch level.
struct CompressedKernels {
  /// sum_j (q[j] - (min[j] + scale[j] * code[j]))^2.
  float (*squared_l2_sq8)(const float* q, const uint8_t* code,
                          const float* min, const float* scale, size_t dim);
  /// sum_j q[j] * (min[j] + scale[j] * code[j]).
  float (*dot_sq8)(const float* q, const uint8_t* code, const float* min,
                   const float* scale, size_t dim);
  /// sum_j (q[j] - widen(code[j]))^2 over IEEE binary16 codes.
  float (*squared_l2_fp16)(const float* q, const uint16_t* code, size_t dim);
  /// sum_j q[j] * widen(code[j]).
  float (*dot_fp16)(const float* q, const uint16_t* code, size_t dim);

  /// Prefetch-fused variants for gather loops: same arithmetic (each is
  /// the body its non-`_pf` sibling wraps, so results are bit-identical
  /// by construction), plus one L2 prefetch of the upcoming row `pf`
  /// paced per 32-element block (`pf == nullptr` disables it).
  ///
  /// The pacing is the point. A compressed row is only a handful of
  /// cache lines, so a gather loop that prefetches whole upcoming rows
  /// in one burst floods the core's miss buffers — hardware silently
  /// DROPS software prefetches when no fill buffer is free, the row
  /// still misses, and the loop runs at the ~dozen-outstanding-lines
  /// MLP ceiling instead of at draw bandwidth. Issuing one line per
  /// arithmetic block matches the issue rate to the memory drain rate,
  /// which is what lets the SQ8 batched-eval path actually bank its 4x
  /// byte reduction (measured in BENCH_kernels.json's batch_eval rows).
  float (*squared_l2_sq8_pf)(const float* q, const uint8_t* code,
                             const float* min, const float* scale, size_t dim,
                             const uint8_t* pf);
  float (*dot_sq8_pf)(const float* q, const uint8_t* code, const float* min,
                      const float* scale, size_t dim, const uint8_t* pf);
  float (*squared_l2_fp16_pf)(const float* q, const uint16_t* code,
                              size_t dim, const uint16_t* pf);
  float (*dot_fp16_pf)(const float* q, const uint16_t* code, size_t dim,
                       const uint16_t* pf);
};

/// The compressed kernel table for this host, resolved once alongside
/// Kernels() and honoring the same GQR_SIMD override. At kAvx2 the fp16
/// entries additionally require F16C and fall back to scalar without it.
const CompressedKernels& CompKernels();

/// Scalar references for the compressed kernels (the differential tests
/// assert *bitwise* equality between these and the dispatched table).
GQR_HOT float SquaredL2Sq8Scalar(const float* q, const uint8_t* code,
                                 const float* min, const float* scale,
                                 size_t dim);
GQR_HOT float DotSq8Scalar(const float* q, const uint8_t* code,
                           const float* min, const float* scale, size_t dim);
GQR_HOT float SquaredL2Fp16Scalar(const float* q, const uint16_t* code,
                                  size_t dim);
GQR_HOT float DotFp16Scalar(const float* q, const uint16_t* code, size_t dim);
GQR_HOT float SquaredL2Sq8PfScalar(const float* q, const uint8_t* code,
                                   const float* min, const float* scale,
                                   size_t dim, const uint8_t* pf);
GQR_HOT float DotSq8PfScalar(const float* q, const uint8_t* code,
                             const float* min, const float* scale, size_t dim,
                             const uint8_t* pf);
GQR_HOT float SquaredL2Fp16PfScalar(const float* q, const uint16_t* code,
                                    size_t dim, const uint16_t* pf);
GQR_HOT float DotFp16PfScalar(const float* q, const uint16_t* code,
                              size_t dim, const uint16_t* pf);

/// Exact IEEE binary16 -> binary32 widening (every half is exactly
/// representable as a float; matches VCVTPH2PS bit for bit on encoded
/// data). Used by the scalar kernels and by CompressedDataset::DecodeRow.
float Fp16ToFloat(uint16_t h);

/// binary32 -> binary16, round-to-nearest-even, *saturating*: values
/// beyond +-65504 (max finite half) encode as +-65504 rather than
/// infinity, so one outlier dimension cannot poison every distance with
/// inf/NaN. NaN encodes as a quiet half NaN. In-range values match
/// VCVTPS2PH with round-to-nearest exactly.
uint16_t FloatToFp16(float f);

/// Double-precision projection/GEMM kernels behind the same dispatcher.
///
/// These back the projection stage p(q) = W^T q that every
/// sign-of-projection hasher runs before probing, and the Matrix products
/// of the learners. Unlike the float distance kernels (whose levels agree
/// only to ~1e-4 relative), the projection kernels are **bit-identical
/// across dispatch levels and across call shapes**: every accumulation is
/// an explicit fused multiply-add (std::fma in the scalar kernels, vfmadd
/// in the AVX2 ones) over the same fixed accumulator structure — eight
/// strided partial sums s_0..s_7 over 8-element blocks, one 4-wide
/// remainder block into s_0..s_3, the combine ((s_0+s_4)+(s_1+s_5)) +
/// ((s_2+s_6)+(s_3+s_7)) grouped as (t_0+t_1)+(t_2+t_3), then a scalar
/// fma tail. Since each IEEE-754 operation is deterministic, any two
/// kernels performing this same sequence agree bit for bit, which is what
/// lets hash codes (sign thresholds!) match between the scalar and AVX2
/// builds and between batched and single-query hashing.
struct ProjectionKernels {
  /// sum_i a[i] * b[i] with the canonical fma accumulation above.
  double (*dot)(const double* a, const double* b, size_t n);
  /// y[i] = fma(alpha, x[i], y[i]) for i in [0, n). Element-wise, so any
  /// vector width gives identical results.
  void (*axpy)(double alpha, const double* x, double* y, size_t n);
  /// out[i] = double(x[i]) - offset[i] (offset == nullptr: plain widen).
  void (*center)(const float* x, const double* offset, size_t n,
                 double* out);
  /// y[i] = dot(w + i * d, x) for i in [0, m): row-major W (m x d) times
  /// x. Each row uses the canonical dot accumulation.
  void (*gemv)(const double* w, size_t m, size_t d, const double* x,
               double* y);
  /// C = A * B^T panel: c[i * ldc + j] = dot(a + i * lda, b + j * ldb)
  /// over length d, for i in [0, n), j in [0, m). Register-blocked over
  /// j; every output uses the canonical dot accumulation, so one row of
  /// the batched product is bit-identical to a standalone gemv call.
  void (*gemm_nt)(const double* a, size_t n, size_t lda, const double* b,
                  size_t m, size_t ldb, size_t d, double* c, size_t ldc);
};

/// The projection kernel table for this host, resolved once alongside
/// Kernels() and honoring the same GQR_SIMD override. At kAvx512 this
/// table serves the AVX2 implementations: the canonical 8-partial
/// accumulation is pinned by the cross-level bit-identity contract, and
/// an AVX-512 double kernel constrained to that structure (one 8-lane
/// zmm accumulator, serial dependency chain) is no faster than the
/// two-accumulator AVX2 form — AVX-512 implies AVX2+FMA, so the AVX2
/// kernels always run.
const ProjectionKernels& ProjKernels();

/// Scalar references for the projection kernels (the equivalence tests
/// assert *bitwise* equality between these and the dispatched table).
double DdotScalar(const double* a, const double* b, size_t n);
void DaxpyScalar(double alpha, const double* x, double* y, size_t n);
void CenterScalar(const float* x, const double* offset, size_t n,
                  double* out);
void DgemvScalar(const double* w, size_t m, size_t d, const double* x,
                 double* y);
void DgemmNtScalar(const double* a, size_t n, size_t lda, const double* b,
                   size_t m, size_t ldb, size_t d, double* c, size_t ldc);

/// Hints the prefetcher to pull `dim` floats at `row` into cache; used to
/// overlap the next candidate's memory latency with the current one's
/// arithmetic. No-op when the compiler lacks __builtin_prefetch.
inline void PrefetchRow(const float* row, size_t dim) {
#if defined(__GNUC__) || defined(__clang__)
  // One touch per 64-byte line (16 floats).
  for (size_t i = 0; i < dim; i += 16) __builtin_prefetch(row + i, 0, 3);
#else
  (void)row;
  (void)dim;
#endif
}

/// As PrefetchRow, for compressed rows addressed in bytes (SQ8: dim
/// bytes per row; fp16: 2 * dim).
inline void PrefetchBytes(const void* p, size_t bytes) {
#if defined(__GNUC__) || defined(__clang__)
  const char* c = static_cast<const char*>(p);
  for (size_t i = 0; i < bytes; i += 64) __builtin_prefetch(c + i, 0, 3);
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace gqr

#endif  // GQR_LA_SIMD_KERNELS_H_
