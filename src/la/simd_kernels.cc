#include "la/simd_kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define GQR_X86 1
#include <immintrin.h>
#endif

namespace gqr {

// ---------------------------------------------------------------------------
// Scalar reference kernels. The lane counts (4 for squared L2, 2 for the
// dot family) keep the FP dependency chains short and let the compiler
// autovectorize at the baseline ISA. The fused kernels accumulate each
// quantity with exactly the pattern of its standalone kernel, so fused and
// standalone results agree (see the consistency contract in the header).
// ---------------------------------------------------------------------------

float SquaredL2Scalar(const float* a, const float* b, size_t dim) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  float s = (s0 + s1) + (s2 + s3);
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float DotScalar(const float* a, const float* b, size_t dim) {
  float s0 = 0.f, s1 = 0.f;
  size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
  }
  float s = s0 + s1;
  for (; i < dim; ++i) s += a[i] * b[i];
  return s;
}

void DotAndNormScalar(const float* a, const float* b, size_t dim,
                      float* dot, float* a_norm2) {
  float d0 = 0.f, d1 = 0.f, n0 = 0.f, n1 = 0.f;
  size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    d0 += a[i] * b[i];
    d1 += a[i + 1] * b[i + 1];
    n0 += a[i] * a[i];
    n1 += a[i + 1] * a[i + 1];
  }
  float d = d0 + d1, n = n0 + n1;
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    n += a[i] * a[i];
  }
  *dot = d;
  *a_norm2 = n;
}

void DotAndNormsScalar(const float* a, const float* b, size_t dim,
                       float* dot, float* a_norm2, float* b_norm2) {
  float d0 = 0.f, d1 = 0.f, na0 = 0.f, na1 = 0.f, nb0 = 0.f, nb1 = 0.f;
  size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    d0 += a[i] * b[i];
    d1 += a[i + 1] * b[i + 1];
    na0 += a[i] * a[i];
    na1 += a[i + 1] * a[i + 1];
    nb0 += b[i] * b[i];
    nb1 += b[i + 1] * b[i + 1];
  }
  float d = d0 + d1, na = na0 + na1, nb = nb0 + nb1;
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  *dot = d;
  *a_norm2 = na;
  *b_norm2 = nb;
}

// ---------------------------------------------------------------------------
// Scalar projection (double) kernels. Every accumulation is an explicit
// std::fma over the canonical structure documented in the header: eight
// strided partials, a 4-wide remainder block into s0..s3, the fixed
// (t0+t1)+(t2+t3) combine, then an fma tail. The AVX2 kernels below
// perform the identical operation sequence with vector lanes standing in
// for the strided partials, so the two levels agree bit for bit.
// ---------------------------------------------------------------------------

double DdotScalar(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 = std::fma(a[i], b[i], s0);
    s1 = std::fma(a[i + 1], b[i + 1], s1);
    s2 = std::fma(a[i + 2], b[i + 2], s2);
    s3 = std::fma(a[i + 3], b[i + 3], s3);
    s4 = std::fma(a[i + 4], b[i + 4], s4);
    s5 = std::fma(a[i + 5], b[i + 5], s5);
    s6 = std::fma(a[i + 6], b[i + 6], s6);
    s7 = std::fma(a[i + 7], b[i + 7], s7);
  }
  if (i + 4 <= n) {
    s0 = std::fma(a[i], b[i], s0);
    s1 = std::fma(a[i + 1], b[i + 1], s1);
    s2 = std::fma(a[i + 2], b[i + 2], s2);
    s3 = std::fma(a[i + 3], b[i + 3], s3);
    i += 4;
  }
  const double t0 = s0 + s4, t1 = s1 + s5, t2 = s2 + s6, t3 = s3 + s7;
  double s = (t0 + t1) + (t2 + t3);
  for (; i < n; ++i) s = std::fma(a[i], b[i], s);
  return s;
}

void DaxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void CenterScalar(const float* x, const double* offset, size_t n,
                  double* out) {
  if (offset != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<double>(x[i]) - offset[i];
    }
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(x[i]);
  }
}

void DgemvScalar(const double* w, size_t m, size_t d, const double* x,
                 double* y) {
  for (size_t i = 0; i < m; ++i) y[i] = DdotScalar(w + i * d, x, d);
}

void DgemmNtScalar(const double* a, size_t n, size_t lda, const double* b,
                   size_t m, size_t ldb, size_t d, double* c, size_t ldc) {
  for (size_t i = 0; i < n; ++i) {
    const double* a_row = a + i * lda;
    double* c_row = c + i * ldc;
    for (size_t j = 0; j < m; ++j) {
      c_row[j] = DdotScalar(a_row, b + j * ldb, d);
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels. Compiled with a per-function target attribute so the
// rest of the build stays at the baseline ISA; only called after the cpuid
// check below. Canonical skeleton per accumulated quantity: two 8-wide FMA
// accumulators over 16-element blocks, one 8-wide remainder block, a fixed
// horizontal sum, then a scalar tail — identical across the standalone and
// fused kernels so their results match bit for bit.
// ---------------------------------------------------------------------------

#if defined(GQR_X86)

#define GQR_TARGET_AVX2 __attribute__((target("avx2,fma")))

namespace {

GQR_TARGET_AVX2 inline float Hsum8(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

GQR_TARGET_AVX2 float SquaredL2Avx2(const float* a, const float* b,
                                    size_t dim) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (i + 8 <= dim) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
    i += 8;
  }
  float s = Hsum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

GQR_TARGET_AVX2 float DotAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= dim) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    i += 8;
  }
  float s = Hsum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) s += a[i] * b[i];
  return s;
}

GQR_TARGET_AVX2 void DotAndNormAvx2(const float* a, const float* b,
                                    size_t dim, float* dot, float* a_norm2) {
  __m256 d0 = _mm256_setzero_ps(), d1 = _mm256_setzero_ps();
  __m256 n0 = _mm256_setzero_ps(), n1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    const __m256 a1 = _mm256_loadu_ps(a + i + 8);
    d0 = _mm256_fmadd_ps(a0, _mm256_loadu_ps(b + i), d0);
    d1 = _mm256_fmadd_ps(a1, _mm256_loadu_ps(b + i + 8), d1);
    n0 = _mm256_fmadd_ps(a0, a0, n0);
    n1 = _mm256_fmadd_ps(a1, a1, n1);
  }
  if (i + 8 <= dim) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    d0 = _mm256_fmadd_ps(a0, _mm256_loadu_ps(b + i), d0);
    n0 = _mm256_fmadd_ps(a0, a0, n0);
    i += 8;
  }
  float d = Hsum8(_mm256_add_ps(d0, d1));
  float n = Hsum8(_mm256_add_ps(n0, n1));
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    n += a[i] * a[i];
  }
  *dot = d;
  *a_norm2 = n;
}

GQR_TARGET_AVX2 void DotAndNormsAvx2(const float* a, const float* b,
                                     size_t dim, float* dot, float* a_norm2,
                                     float* b_norm2) {
  __m256 d0 = _mm256_setzero_ps(), d1 = _mm256_setzero_ps();
  __m256 na0 = _mm256_setzero_ps(), na1 = _mm256_setzero_ps();
  __m256 nb0 = _mm256_setzero_ps(), nb1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    const __m256 a1 = _mm256_loadu_ps(a + i + 8);
    const __m256 b0 = _mm256_loadu_ps(b + i);
    const __m256 b1 = _mm256_loadu_ps(b + i + 8);
    d0 = _mm256_fmadd_ps(a0, b0, d0);
    d1 = _mm256_fmadd_ps(a1, b1, d1);
    na0 = _mm256_fmadd_ps(a0, a0, na0);
    na1 = _mm256_fmadd_ps(a1, a1, na1);
    nb0 = _mm256_fmadd_ps(b0, b0, nb0);
    nb1 = _mm256_fmadd_ps(b1, b1, nb1);
  }
  if (i + 8 <= dim) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    const __m256 b0 = _mm256_loadu_ps(b + i);
    d0 = _mm256_fmadd_ps(a0, b0, d0);
    na0 = _mm256_fmadd_ps(a0, a0, na0);
    nb0 = _mm256_fmadd_ps(b0, b0, nb0);
    i += 8;
  }
  float d = Hsum8(_mm256_add_ps(d0, d1));
  float na = Hsum8(_mm256_add_ps(na0, na1));
  float nb = Hsum8(_mm256_add_ps(nb0, nb1));
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  *dot = d;
  *a_norm2 = na;
  *b_norm2 = nb;
}

// ---------------------------------------------------------------------------
// AVX2 projection (double) kernels. A 256-bit double vector holds 4
// lanes, so the canonical 8-partial structure is two accumulator vectors:
// acc0 lanes = s0..s3 (offsets j+0..j+3 of each 8-block), acc1 lanes =
// s4..s7. The combine adds acc0+acc1 element-wise (t_l = s_l + s_{l+4})
// and reduces (t0+t1)+(t2+t3) — exactly the scalar reference's order.
// Tails use _mm_fmadd_sd, the same correctly-rounded fma as std::fma.
// ---------------------------------------------------------------------------

GQR_TARGET_AVX2 inline double DdotCombine(__m256d acc0, __m256d acc1) {
  const __m256d t = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(t);     // t0, t1
  const __m128d hi = _mm256_extractf128_pd(t, 1);   // t2, t3
  const __m128d t01 = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));  // t0 + t1
  const __m128d t23 = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi));  // t2 + t3
  return _mm_cvtsd_f64(_mm_add_sd(t01, t23));
}

GQR_TARGET_AVX2 inline double DdotTail(double s, const double* a,
                                       const double* b, size_t i, size_t n) {
  __m128d acc = _mm_set_sd(s);
  for (; i < n; ++i) {
    acc = _mm_fmadd_sd(_mm_load_sd(a + i), _mm_load_sd(b + i), acc);
  }
  return _mm_cvtsd_f64(acc);
}

GQR_TARGET_AVX2 double DdotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    i += 4;
  }
  return DdotTail(DdotCombine(acc0, acc1), a, b, i, n);
}

GQR_TARGET_AVX2 void DaxpyAvx2(double alpha, const double* x, double* y,
                               size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(
        y + i + 4, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4),
                                   _mm256_loadu_pd(y + i + 4)));
  }
  if (i + 4 <= n) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    i += 4;
  }
  const __m128d sa = _mm_set_sd(alpha);
  for (; i < n; ++i) {
    _mm_store_sd(y + i, _mm_fmadd_sd(sa, _mm_load_sd(x + i),
                                     _mm_load_sd(y + i)));
  }
}

GQR_TARGET_AVX2 void CenterAvx2(const float* x, const double* offset,
                                size_t n, double* out) {
  // float -> double widening is exact, so the only rounding op per
  // element is the subtraction — identical to the scalar reference.
  size_t i = 0;
  if (offset != nullptr) {
    for (; i + 4 <= n; i += 4) {
      const __m256d xd = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
      _mm256_storeu_pd(out + i,
                       _mm256_sub_pd(xd, _mm256_loadu_pd(offset + i)));
    }
    for (; i < n; ++i) out[i] = static_cast<double>(x[i]) - offset[i];
  } else {
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(out + i, _mm256_cvtps_pd(_mm_loadu_ps(x + i)));
    }
    for (; i < n; ++i) out[i] = static_cast<double>(x[i]);
  }
}

GQR_TARGET_AVX2 void DgemvAvx2(const double* w, size_t m, size_t d,
                               const double* x, double* y) {
  for (size_t i = 0; i < m; ++i) y[i] = DdotAvx2(w + i * d, x, d);
}

GQR_TARGET_AVX2 void DgemmNtAvx2(const double* a, size_t n, size_t lda,
                                 const double* b, size_t m, size_t ldb,
                                 size_t d, double* c, size_t ldc) {
  // Register blocking: 4 B-rows share each A-row load, with two canonical
  // accumulators per output (8 ymm accumulators + 2 A vectors + a B
  // temporary fit the 16 architectural registers). Every output runs the
  // same per-element fma sequence as DdotAvx2, so a 4-blocked column is
  // bit-identical to four standalone dots.
  for (size_t i = 0; i < n; ++i) {
    const double* a_row = a + i * lda;
    double* c_row = c + i * ldc;
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const double* b0 = b + j * ldb;
      const double* b1 = b0 + ldb;
      const double* b2 = b1 + ldb;
      const double* b3 = b2 + ldb;
      __m256d c0a = _mm256_setzero_pd(), c0b = _mm256_setzero_pd();
      __m256d c1a = _mm256_setzero_pd(), c1b = _mm256_setzero_pd();
      __m256d c2a = _mm256_setzero_pd(), c2b = _mm256_setzero_pd();
      __m256d c3a = _mm256_setzero_pd(), c3b = _mm256_setzero_pd();
      size_t k = 0;
      for (; k + 8 <= d; k += 8) {
        const __m256d a0 = _mm256_loadu_pd(a_row + k);
        const __m256d a1 = _mm256_loadu_pd(a_row + k + 4);
        c0a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b0 + k), c0a);
        c0b = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b0 + k + 4), c0b);
        c1a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b1 + k), c1a);
        c1b = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b1 + k + 4), c1b);
        c2a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b2 + k), c2a);
        c2b = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b2 + k + 4), c2b);
        c3a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b3 + k), c3a);
        c3b = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b3 + k + 4), c3b);
      }
      if (k + 4 <= d) {
        const __m256d a0 = _mm256_loadu_pd(a_row + k);
        c0a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b0 + k), c0a);
        c1a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b1 + k), c1a);
        c2a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b2 + k), c2a);
        c3a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b3 + k), c3a);
        k += 4;
      }
      c_row[j] = DdotTail(DdotCombine(c0a, c0b), a_row, b0, k, d);
      c_row[j + 1] = DdotTail(DdotCombine(c1a, c1b), a_row, b1, k, d);
      c_row[j + 2] = DdotTail(DdotCombine(c2a, c2b), a_row, b2, k, d);
      c_row[j + 3] = DdotTail(DdotCombine(c3a, c3b), a_row, b3, k, d);
    }
    for (; j < m; ++j) c_row[j] = DdotAvx2(a_row, b + j * ldb, d);
  }
}

}  // namespace

#endif  // GQR_X86

// ---------------------------------------------------------------------------
// Dispatch: resolved once, before the first distance is computed.
// ---------------------------------------------------------------------------

namespace {

SimdLevel DetectSimdLevel() {
  // Escape hatch for A/B runs and debugging: GQR_SIMD=scalar forces the
  // reference kernels regardless of the host.
  const char* force = std::getenv("GQR_SIMD");
  if (force != nullptr && std::strcmp(force, "scalar") == 0) {
    return SimdLevel::kScalar;
  }
#if defined(GQR_X86) && defined(__GNUC__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = DetectSimdLevel();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  return level == SimdLevel::kAvx2 ? "avx2" : "scalar";
}

const DistanceKernels& Kernels() {
  static const DistanceKernels table = [] {
    DistanceKernels k{SquaredL2Scalar, DotScalar, DotAndNormScalar,
                      DotAndNormsScalar};
#if defined(GQR_X86)
    if (ActiveSimdLevel() == SimdLevel::kAvx2) {
      k = {SquaredL2Avx2, DotAvx2, DotAndNormAvx2, DotAndNormsAvx2};
    }
#endif
    return k;
  }();
  return table;
}

const ProjectionKernels& ProjKernels() {
  static const ProjectionKernels table = [] {
    ProjectionKernels k{DdotScalar, DaxpyScalar, CenterScalar, DgemvScalar,
                        DgemmNtScalar};
#if defined(GQR_X86)
    if (ActiveSimdLevel() == SimdLevel::kAvx2) {
      k = {DdotAvx2, DaxpyAvx2, CenterAvx2, DgemvAvx2, DgemmNtAvx2};
    }
#endif
    return k;
  }();
  return table;
}

}  // namespace gqr
