#include "la/simd_kernels.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define GQR_X86 1
#include <immintrin.h>
#endif

namespace gqr {

// ---------------------------------------------------------------------------
// Scalar reference kernels. The lane counts (4 for squared L2, 2 for the
// dot family) keep the FP dependency chains short and let the compiler
// autovectorize at the baseline ISA. The fused kernels accumulate each
// quantity with exactly the pattern of its standalone kernel, so fused and
// standalone results agree (see the consistency contract in the header).
// ---------------------------------------------------------------------------

float SquaredL2Scalar(const float* a, const float* b, size_t dim) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  float s = (s0 + s1) + (s2 + s3);
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float DotScalar(const float* a, const float* b, size_t dim) {
  float s0 = 0.f, s1 = 0.f;
  size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
  }
  float s = s0 + s1;
  for (; i < dim; ++i) s += a[i] * b[i];
  return s;
}

void DotAndNormScalar(const float* a, const float* b, size_t dim,
                      float* dot, float* a_norm2) {
  float d0 = 0.f, d1 = 0.f, n0 = 0.f, n1 = 0.f;
  size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    d0 += a[i] * b[i];
    d1 += a[i + 1] * b[i + 1];
    n0 += a[i] * a[i];
    n1 += a[i + 1] * a[i + 1];
  }
  float d = d0 + d1, n = n0 + n1;
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    n += a[i] * a[i];
  }
  *dot = d;
  *a_norm2 = n;
}

void DotAndNormsScalar(const float* a, const float* b, size_t dim,
                       float* dot, float* a_norm2, float* b_norm2) {
  float d0 = 0.f, d1 = 0.f, na0 = 0.f, na1 = 0.f, nb0 = 0.f, nb1 = 0.f;
  size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    d0 += a[i] * b[i];
    d1 += a[i + 1] * b[i + 1];
    na0 += a[i] * a[i];
    na1 += a[i + 1] * a[i + 1];
    nb0 += b[i] * b[i];
    nb1 += b[i + 1] * b[i + 1];
  }
  float d = d0 + d1, na = na0 + na1, nb = nb0 + nb1;
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  *dot = d;
  *a_norm2 = na;
  *b_norm2 = nb;
}

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels. Compiled with a per-function target attribute so the
// rest of the build stays at the baseline ISA; only called after the cpuid
// check below. Canonical skeleton per accumulated quantity: two 8-wide FMA
// accumulators over 16-element blocks, one 8-wide remainder block, a fixed
// horizontal sum, then a scalar tail — identical across the standalone and
// fused kernels so their results match bit for bit.
// ---------------------------------------------------------------------------

#if defined(GQR_X86)

#define GQR_TARGET_AVX2 __attribute__((target("avx2,fma")))

namespace {

GQR_TARGET_AVX2 inline float Hsum8(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

GQR_TARGET_AVX2 float SquaredL2Avx2(const float* a, const float* b,
                                    size_t dim) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (i + 8 <= dim) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
    i += 8;
  }
  float s = Hsum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

GQR_TARGET_AVX2 float DotAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= dim) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    i += 8;
  }
  float s = Hsum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) s += a[i] * b[i];
  return s;
}

GQR_TARGET_AVX2 void DotAndNormAvx2(const float* a, const float* b,
                                    size_t dim, float* dot, float* a_norm2) {
  __m256 d0 = _mm256_setzero_ps(), d1 = _mm256_setzero_ps();
  __m256 n0 = _mm256_setzero_ps(), n1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    const __m256 a1 = _mm256_loadu_ps(a + i + 8);
    d0 = _mm256_fmadd_ps(a0, _mm256_loadu_ps(b + i), d0);
    d1 = _mm256_fmadd_ps(a1, _mm256_loadu_ps(b + i + 8), d1);
    n0 = _mm256_fmadd_ps(a0, a0, n0);
    n1 = _mm256_fmadd_ps(a1, a1, n1);
  }
  if (i + 8 <= dim) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    d0 = _mm256_fmadd_ps(a0, _mm256_loadu_ps(b + i), d0);
    n0 = _mm256_fmadd_ps(a0, a0, n0);
    i += 8;
  }
  float d = Hsum8(_mm256_add_ps(d0, d1));
  float n = Hsum8(_mm256_add_ps(n0, n1));
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    n += a[i] * a[i];
  }
  *dot = d;
  *a_norm2 = n;
}

GQR_TARGET_AVX2 void DotAndNormsAvx2(const float* a, const float* b,
                                     size_t dim, float* dot, float* a_norm2,
                                     float* b_norm2) {
  __m256 d0 = _mm256_setzero_ps(), d1 = _mm256_setzero_ps();
  __m256 na0 = _mm256_setzero_ps(), na1 = _mm256_setzero_ps();
  __m256 nb0 = _mm256_setzero_ps(), nb1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    const __m256 a1 = _mm256_loadu_ps(a + i + 8);
    const __m256 b0 = _mm256_loadu_ps(b + i);
    const __m256 b1 = _mm256_loadu_ps(b + i + 8);
    d0 = _mm256_fmadd_ps(a0, b0, d0);
    d1 = _mm256_fmadd_ps(a1, b1, d1);
    na0 = _mm256_fmadd_ps(a0, a0, na0);
    na1 = _mm256_fmadd_ps(a1, a1, na1);
    nb0 = _mm256_fmadd_ps(b0, b0, nb0);
    nb1 = _mm256_fmadd_ps(b1, b1, nb1);
  }
  if (i + 8 <= dim) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    const __m256 b0 = _mm256_loadu_ps(b + i);
    d0 = _mm256_fmadd_ps(a0, b0, d0);
    na0 = _mm256_fmadd_ps(a0, a0, na0);
    nb0 = _mm256_fmadd_ps(b0, b0, nb0);
    i += 8;
  }
  float d = Hsum8(_mm256_add_ps(d0, d1));
  float na = Hsum8(_mm256_add_ps(na0, na1));
  float nb = Hsum8(_mm256_add_ps(nb0, nb1));
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  *dot = d;
  *a_norm2 = na;
  *b_norm2 = nb;
}

}  // namespace

#endif  // GQR_X86

// ---------------------------------------------------------------------------
// Dispatch: resolved once, before the first distance is computed.
// ---------------------------------------------------------------------------

namespace {

SimdLevel DetectSimdLevel() {
  // Escape hatch for A/B runs and debugging: GQR_SIMD=scalar forces the
  // reference kernels regardless of the host.
  const char* force = std::getenv("GQR_SIMD");
  if (force != nullptr && std::strcmp(force, "scalar") == 0) {
    return SimdLevel::kScalar;
  }
#if defined(GQR_X86) && defined(__GNUC__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = DetectSimdLevel();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  return level == SimdLevel::kAvx2 ? "avx2" : "scalar";
}

const DistanceKernels& Kernels() {
  static const DistanceKernels table = [] {
    DistanceKernels k{SquaredL2Scalar, DotScalar, DotAndNormScalar,
                      DotAndNormsScalar};
#if defined(GQR_X86)
    if (ActiveSimdLevel() == SimdLevel::kAvx2) {
      k = {SquaredL2Avx2, DotAvx2, DotAndNormAvx2, DotAndNormsAvx2};
    }
#endif
    return k;
  }();
  return table;
}

}  // namespace gqr
