#include "la/simd_kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/check.h"
#include "util/env.h"

#if defined(__x86_64__) || defined(__i386__)
#define GQR_X86 1
#include <immintrin.h>
#endif

namespace gqr {

// ---------------------------------------------------------------------------
// Scalar reference kernels. The lane counts (4 for squared L2, 2 for the
// dot family) keep the FP dependency chains short and let the compiler
// autovectorize at the baseline ISA. The fused kernels accumulate each
// quantity with exactly the pattern of its standalone kernel, so fused and
// standalone results agree (see the consistency contract in the header).
// ---------------------------------------------------------------------------

float SquaredL2Scalar(const float* a, const float* b, size_t dim) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  float s = (s0 + s1) + (s2 + s3);
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float DotScalar(const float* a, const float* b, size_t dim) {
  float s0 = 0.f, s1 = 0.f;
  size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
  }
  float s = s0 + s1;
  for (; i < dim; ++i) s += a[i] * b[i];
  return s;
}

void DotAndNormScalar(const float* a, const float* b, size_t dim,
                      float* dot, float* a_norm2) {
  float d0 = 0.f, d1 = 0.f, n0 = 0.f, n1 = 0.f;
  size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    d0 += a[i] * b[i];
    d1 += a[i + 1] * b[i + 1];
    n0 += a[i] * a[i];
    n1 += a[i + 1] * a[i + 1];
  }
  float d = d0 + d1, n = n0 + n1;
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    n += a[i] * a[i];
  }
  *dot = d;
  *a_norm2 = n;
}

void DotAndNormsScalar(const float* a, const float* b, size_t dim,
                       float* dot, float* a_norm2, float* b_norm2) {
  float d0 = 0.f, d1 = 0.f, na0 = 0.f, na1 = 0.f, nb0 = 0.f, nb1 = 0.f;
  size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    d0 += a[i] * b[i];
    d1 += a[i + 1] * b[i + 1];
    na0 += a[i] * a[i];
    na1 += a[i + 1] * a[i + 1];
    nb0 += b[i] * b[i];
    nb1 += b[i + 1] * b[i + 1];
  }
  float d = d0 + d1, na = na0 + na1, nb = nb0 + nb1;
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  *dot = d;
  *a_norm2 = na;
  *b_norm2 = nb;
}

// ---------------------------------------------------------------------------
// IEEE binary16 conversions. Widening is exact (every half is a float);
// narrowing rounds to nearest-even and saturates at +-65504 so an
// outlier dimension cannot poison whole distances with infinities. Both
// are branchy scalar code: encoding runs once at index build, and the
// scalar kernels only decode.
// ---------------------------------------------------------------------------

float Fp16ToFloat(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  uint32_t mant = h & 0x3FFu;
  uint32_t bits;
  if (exp == 31u) {  // inf / NaN: widen payload into the float field.
    bits = sign | 0x7F800000u | (mant << 13);
  } else if (exp != 0u) {  // Normal: rebias 15 -> 127.
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  } else if (mant != 0u) {  // Subnormal half: renormalize (value m*2^-24).
    uint32_t e = 113u;
    while ((mant & 0x400u) == 0u) {
      mant <<= 1;
      --e;
    }
    bits = sign | (e << 23) | ((mant & 0x3FFu) << 13);
  } else {  // +-0.
    bits = sign;
  }
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

uint16_t FloatToFp16(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  x &= 0x7FFFFFFFu;
  if (x > 0x7F800000u) return sign | 0x7E00u;  // NaN -> quiet half NaN.
  // 65520 = halfway between 65504 (max half) and the next step; at or
  // beyond it round-to-nearest would give inf — saturate instead.
  if (x >= 0x477FF000u) return sign | 0x7BFFu;  // +-65504.
  if (x >= 0x38800000u) {  // Normal half range [2^-14, 65504].
    const uint32_t round = (x & 0x1FFFu);
    uint32_t h = ((x - 0x38000000u) >> 13);  // Rebias 127 -> 15, truncate.
    if (round > 0x1000u || (round == 0x1000u && (h & 1u))) ++h;
    return sign | static_cast<uint16_t>(h);
  }
  // Subnormal half (or zero): value rounds to an integer multiple of
  // 2^-24. Shift the 24-bit significand right with round-to-nearest-even.
  if (x < 0x33000000u) return sign;  // Below 2^-25: rounds to +-0.
  const uint32_t m = (x & 0x7FFFFFu) | 0x800000u;
  const uint32_t shift = 126u - (x >> 23);  // In [14, 25].
  const uint32_t halfway = 1u << (shift - 1);
  const uint32_t frac = m & ((1u << shift) - 1u);
  uint32_t t = m >> shift;
  if (frac > halfway || (frac == halfway && (t & 1u))) ++t;
  return sign | static_cast<uint16_t>(t);
}

// ---------------------------------------------------------------------------
// Scalar compressed (asymmetric-distance) kernels. These are the bitwise
// reference for every dispatch level: the canonical accumulation is 32
// strided fmaf partials over 32-element blocks, the fixed combine below,
// then a sequential fmaf tail (see CompressedKernels in the header). The
// AVX2/AVX-512 kernels run the identical operation sequence with vector
// lanes standing in for the strided partials.
// ---------------------------------------------------------------------------

namespace {

// The canonical combine: c_l = s_l + s_{l+16} (AVX-512: acc0 + acc1
// elementwise; AVX2: a0+a2 / a1+a3), d_l = c_l + c_{l+8} (low half +
// high half), e_l = d_l + d_{l+4}, then (e0 + e2) + (e1 + e3) — exactly
// the Hsum8 reduction order of the AVX2 kernels.
inline float CombineCanon32(const float* s) {
  float c[16];
  for (int l = 0; l < 16; ++l) c[l] = s[l] + s[l + 16];
  float d[8];
  for (int l = 0; l < 8; ++l) d[l] = c[l] + c[l + 8];
  float e[4];
  for (int l = 0; l < 4; ++l) e[l] = d[l] + d[l + 4];
  return (e[0] + e[2]) + (e[1] + e[3]);
}

// Decode of one SQ8 component: uint8 -> float is exact, then one fused
// multiply-add. Identical to the vector decode (vcvtudq2ps + vfmadd).
inline float DecodeSq8(uint8_t code, float min, float scale) {
  return std::fmaf(scale, static_cast<float>(code), min);
}

// One prefetch into L2 (locality hint 1 below T0), used by the paced
// `_pf` kernels. L2's miss queue is deeper than the L1 fill buffers, so
// paced L2 prefetches survive where a same-cycle burst of T0 prefetches
// is dropped (see the CompressedKernels doc in the header).
inline void PrefetchL2(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 2);
#else
  (void)p;
#endif
}

}  // namespace

// The SQ8 `_pf` pacing: one code is one byte, so a 64-element stride is
// one cache line of the upcoming row — issue its prefetch on every other
// 32-element block. fp16 codes are two bytes, so every block is a line.
// The non-`_pf` entry points below wrap these with pf == nullptr; the
// branch is on a loop-invariant pointer and costs nothing, and sharing
// the body is what makes fused == unfused bit-identical by construction.

float SquaredL2Sq8PfScalar(const float* q, const uint8_t* code,
                           const float* min, const float* scale, size_t dim,
                           const uint8_t* pf) {
  float s[32] = {};
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr && (i & 63u) == 0) PrefetchL2(pf + i);
    for (size_t l = 0; l < 32; ++l) {
      const float d = q[i + l] - DecodeSq8(code[i + l], min[i + l],
                                           scale[i + l]);
      s[l] = std::fmaf(d, d, s[l]);
    }
  }
  float acc = CombineCanon32(s);
  for (; i < dim; ++i) {
    const float d = q[i] - DecodeSq8(code[i], min[i], scale[i]);
    acc = std::fmaf(d, d, acc);
  }
  return acc;
}

float SquaredL2Sq8Scalar(const float* q, const uint8_t* code,
                         const float* min, const float* scale, size_t dim) {
  return SquaredL2Sq8PfScalar(q, code, min, scale, dim, nullptr);
}

float DotSq8PfScalar(const float* q, const uint8_t* code, const float* min,
                     const float* scale, size_t dim, const uint8_t* pf) {
  float s[32] = {};
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr && (i & 63u) == 0) PrefetchL2(pf + i);
    for (size_t l = 0; l < 32; ++l) {
      s[l] = std::fmaf(q[i + l], DecodeSq8(code[i + l], min[i + l],
                                           scale[i + l]),
                       s[l]);
    }
  }
  float acc = CombineCanon32(s);
  for (; i < dim; ++i) {
    acc = std::fmaf(q[i], DecodeSq8(code[i], min[i], scale[i]), acc);
  }
  return acc;
}

float DotSq8Scalar(const float* q, const uint8_t* code, const float* min,
                   const float* scale, size_t dim) {
  return DotSq8PfScalar(q, code, min, scale, dim, nullptr);
}

float SquaredL2Fp16PfScalar(const float* q, const uint16_t* code, size_t dim,
                            const uint16_t* pf) {
  float s[32] = {};
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr) PrefetchL2(pf + i);
    for (size_t l = 0; l < 32; ++l) {
      const float d = q[i + l] - Fp16ToFloat(code[i + l]);
      s[l] = std::fmaf(d, d, s[l]);
    }
  }
  float acc = CombineCanon32(s);
  for (; i < dim; ++i) {
    const float d = q[i] - Fp16ToFloat(code[i]);
    acc = std::fmaf(d, d, acc);
  }
  return acc;
}

float SquaredL2Fp16Scalar(const float* q, const uint16_t* code, size_t dim) {
  return SquaredL2Fp16PfScalar(q, code, dim, nullptr);
}

float DotFp16PfScalar(const float* q, const uint16_t* code, size_t dim,
                      const uint16_t* pf) {
  float s[32] = {};
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr) PrefetchL2(pf + i);
    for (size_t l = 0; l < 32; ++l) {
      s[l] = std::fmaf(q[i + l], Fp16ToFloat(code[i + l]), s[l]);
    }
  }
  float acc = CombineCanon32(s);
  for (; i < dim; ++i) acc = std::fmaf(q[i], Fp16ToFloat(code[i]), acc);
  return acc;
}

float DotFp16Scalar(const float* q, const uint16_t* code, size_t dim) {
  return DotFp16PfScalar(q, code, dim, nullptr);
}

// ---------------------------------------------------------------------------
// Scalar projection (double) kernels. Every accumulation is an explicit
// std::fma over the canonical structure documented in the header: eight
// strided partials, a 4-wide remainder block into s0..s3, the fixed
// (t0+t1)+(t2+t3) combine, then an fma tail. The AVX2 kernels below
// perform the identical operation sequence with vector lanes standing in
// for the strided partials, so the two levels agree bit for bit.
// ---------------------------------------------------------------------------

double DdotScalar(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 = std::fma(a[i], b[i], s0);
    s1 = std::fma(a[i + 1], b[i + 1], s1);
    s2 = std::fma(a[i + 2], b[i + 2], s2);
    s3 = std::fma(a[i + 3], b[i + 3], s3);
    s4 = std::fma(a[i + 4], b[i + 4], s4);
    s5 = std::fma(a[i + 5], b[i + 5], s5);
    s6 = std::fma(a[i + 6], b[i + 6], s6);
    s7 = std::fma(a[i + 7], b[i + 7], s7);
  }
  if (i + 4 <= n) {
    s0 = std::fma(a[i], b[i], s0);
    s1 = std::fma(a[i + 1], b[i + 1], s1);
    s2 = std::fma(a[i + 2], b[i + 2], s2);
    s3 = std::fma(a[i + 3], b[i + 3], s3);
    i += 4;
  }
  const double t0 = s0 + s4, t1 = s1 + s5, t2 = s2 + s6, t3 = s3 + s7;
  double s = (t0 + t1) + (t2 + t3);
  for (; i < n; ++i) s = std::fma(a[i], b[i], s);
  return s;
}

void DaxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void CenterScalar(const float* x, const double* offset, size_t n,
                  double* out) {
  if (offset != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<double>(x[i]) - offset[i];
    }
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(x[i]);
  }
}

void DgemvScalar(const double* w, size_t m, size_t d, const double* x,
                 double* y) {
  for (size_t i = 0; i < m; ++i) y[i] = DdotScalar(w + i * d, x, d);
}

void DgemmNtScalar(const double* a, size_t n, size_t lda, const double* b,
                   size_t m, size_t ldb, size_t d, double* c, size_t ldc) {
  for (size_t i = 0; i < n; ++i) {
    const double* a_row = a + i * lda;
    double* c_row = c + i * ldc;
    for (size_t j = 0; j < m; ++j) {
      c_row[j] = DdotScalar(a_row, b + j * ldb, d);
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels. Compiled with a per-function target attribute so the
// rest of the build stays at the baseline ISA; only called after the cpuid
// check below. Canonical skeleton per accumulated quantity: two 8-wide FMA
// accumulators over 16-element blocks, one 8-wide remainder block, a fixed
// horizontal sum, then a scalar tail — identical across the standalone and
// fused kernels so their results match bit for bit.
// ---------------------------------------------------------------------------

#if defined(GQR_X86)

#define GQR_TARGET_AVX2 __attribute__((target("avx2,fma")))

namespace {

GQR_TARGET_AVX2 inline float Hsum8(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

GQR_TARGET_AVX2 float SquaredL2Avx2(const float* a, const float* b,
                                    size_t dim) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (i + 8 <= dim) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
    i += 8;
  }
  float s = Hsum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

GQR_TARGET_AVX2 float DotAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= dim) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    i += 8;
  }
  float s = Hsum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) s += a[i] * b[i];
  return s;
}

GQR_TARGET_AVX2 void DotAndNormAvx2(const float* a, const float* b,
                                    size_t dim, float* dot, float* a_norm2) {
  __m256 d0 = _mm256_setzero_ps(), d1 = _mm256_setzero_ps();
  __m256 n0 = _mm256_setzero_ps(), n1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    const __m256 a1 = _mm256_loadu_ps(a + i + 8);
    d0 = _mm256_fmadd_ps(a0, _mm256_loadu_ps(b + i), d0);
    d1 = _mm256_fmadd_ps(a1, _mm256_loadu_ps(b + i + 8), d1);
    n0 = _mm256_fmadd_ps(a0, a0, n0);
    n1 = _mm256_fmadd_ps(a1, a1, n1);
  }
  if (i + 8 <= dim) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    d0 = _mm256_fmadd_ps(a0, _mm256_loadu_ps(b + i), d0);
    n0 = _mm256_fmadd_ps(a0, a0, n0);
    i += 8;
  }
  float d = Hsum8(_mm256_add_ps(d0, d1));
  float n = Hsum8(_mm256_add_ps(n0, n1));
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    n += a[i] * a[i];
  }
  *dot = d;
  *a_norm2 = n;
}

GQR_TARGET_AVX2 void DotAndNormsAvx2(const float* a, const float* b,
                                     size_t dim, float* dot, float* a_norm2,
                                     float* b_norm2) {
  __m256 d0 = _mm256_setzero_ps(), d1 = _mm256_setzero_ps();
  __m256 na0 = _mm256_setzero_ps(), na1 = _mm256_setzero_ps();
  __m256 nb0 = _mm256_setzero_ps(), nb1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    const __m256 a1 = _mm256_loadu_ps(a + i + 8);
    const __m256 b0 = _mm256_loadu_ps(b + i);
    const __m256 b1 = _mm256_loadu_ps(b + i + 8);
    d0 = _mm256_fmadd_ps(a0, b0, d0);
    d1 = _mm256_fmadd_ps(a1, b1, d1);
    na0 = _mm256_fmadd_ps(a0, a0, na0);
    na1 = _mm256_fmadd_ps(a1, a1, na1);
    nb0 = _mm256_fmadd_ps(b0, b0, nb0);
    nb1 = _mm256_fmadd_ps(b1, b1, nb1);
  }
  if (i + 8 <= dim) {
    const __m256 a0 = _mm256_loadu_ps(a + i);
    const __m256 b0 = _mm256_loadu_ps(b + i);
    d0 = _mm256_fmadd_ps(a0, b0, d0);
    na0 = _mm256_fmadd_ps(a0, a0, na0);
    nb0 = _mm256_fmadd_ps(b0, b0, nb0);
    i += 8;
  }
  float d = Hsum8(_mm256_add_ps(d0, d1));
  float na = Hsum8(_mm256_add_ps(na0, na1));
  float nb = Hsum8(_mm256_add_ps(nb0, nb1));
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  *dot = d;
  *a_norm2 = na;
  *b_norm2 = nb;
}

// ---------------------------------------------------------------------------
// AVX2 projection (double) kernels. A 256-bit double vector holds 4
// lanes, so the canonical 8-partial structure is two accumulator vectors:
// acc0 lanes = s0..s3 (offsets j+0..j+3 of each 8-block), acc1 lanes =
// s4..s7. The combine adds acc0+acc1 element-wise (t_l = s_l + s_{l+4})
// and reduces (t0+t1)+(t2+t3) — exactly the scalar reference's order.
// Tails use _mm_fmadd_sd, the same correctly-rounded fma as std::fma.
// ---------------------------------------------------------------------------

GQR_TARGET_AVX2 inline double DdotCombine(__m256d acc0, __m256d acc1) {
  const __m256d t = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(t);     // t0, t1
  const __m128d hi = _mm256_extractf128_pd(t, 1);   // t2, t3
  const __m128d t01 = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));  // t0 + t1
  const __m128d t23 = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi));  // t2 + t3
  return _mm_cvtsd_f64(_mm_add_sd(t01, t23));
}

GQR_TARGET_AVX2 inline double DdotTail(double s, const double* a,
                                       const double* b, size_t i, size_t n) {
  __m128d acc = _mm_set_sd(s);
  for (; i < n; ++i) {
    acc = _mm_fmadd_sd(_mm_load_sd(a + i), _mm_load_sd(b + i), acc);
  }
  return _mm_cvtsd_f64(acc);
}

GQR_TARGET_AVX2 double DdotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    i += 4;
  }
  return DdotTail(DdotCombine(acc0, acc1), a, b, i, n);
}

GQR_TARGET_AVX2 void DaxpyAvx2(double alpha, const double* x, double* y,
                               size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(
        y + i + 4, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4),
                                   _mm256_loadu_pd(y + i + 4)));
  }
  if (i + 4 <= n) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    i += 4;
  }
  const __m128d sa = _mm_set_sd(alpha);
  for (; i < n; ++i) {
    _mm_store_sd(y + i, _mm_fmadd_sd(sa, _mm_load_sd(x + i),
                                     _mm_load_sd(y + i)));
  }
}

GQR_TARGET_AVX2 void CenterAvx2(const float* x, const double* offset,
                                size_t n, double* out) {
  // float -> double widening is exact, so the only rounding op per
  // element is the subtraction — identical to the scalar reference.
  size_t i = 0;
  if (offset != nullptr) {
    for (; i + 4 <= n; i += 4) {
      const __m256d xd = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
      _mm256_storeu_pd(out + i,
                       _mm256_sub_pd(xd, _mm256_loadu_pd(offset + i)));
    }
    for (; i < n; ++i) out[i] = static_cast<double>(x[i]) - offset[i];
  } else {
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(out + i, _mm256_cvtps_pd(_mm_loadu_ps(x + i)));
    }
    for (; i < n; ++i) out[i] = static_cast<double>(x[i]);
  }
}

GQR_TARGET_AVX2 void DgemvAvx2(const double* w, size_t m, size_t d,
                               const double* x, double* y) {
  for (size_t i = 0; i < m; ++i) y[i] = DdotAvx2(w + i * d, x, d);
}

GQR_TARGET_AVX2 void DgemmNtAvx2(const double* a, size_t n, size_t lda,
                                 const double* b, size_t m, size_t ldb,
                                 size_t d, double* c, size_t ldc) {
  // Register blocking: 4 B-rows share each A-row load, with two canonical
  // accumulators per output (8 ymm accumulators + 2 A vectors + a B
  // temporary fit the 16 architectural registers). Every output runs the
  // same per-element fma sequence as DdotAvx2, so a 4-blocked column is
  // bit-identical to four standalone dots.
  for (size_t i = 0; i < n; ++i) {
    const double* a_row = a + i * lda;
    double* c_row = c + i * ldc;
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const double* b0 = b + j * ldb;
      const double* b1 = b0 + ldb;
      const double* b2 = b1 + ldb;
      const double* b3 = b2 + ldb;
      __m256d c0a = _mm256_setzero_pd(), c0b = _mm256_setzero_pd();
      __m256d c1a = _mm256_setzero_pd(), c1b = _mm256_setzero_pd();
      __m256d c2a = _mm256_setzero_pd(), c2b = _mm256_setzero_pd();
      __m256d c3a = _mm256_setzero_pd(), c3b = _mm256_setzero_pd();
      size_t k = 0;
      for (; k + 8 <= d; k += 8) {
        const __m256d a0 = _mm256_loadu_pd(a_row + k);
        const __m256d a1 = _mm256_loadu_pd(a_row + k + 4);
        c0a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b0 + k), c0a);
        c0b = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b0 + k + 4), c0b);
        c1a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b1 + k), c1a);
        c1b = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b1 + k + 4), c1b);
        c2a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b2 + k), c2a);
        c2b = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b2 + k + 4), c2b);
        c3a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b3 + k), c3a);
        c3b = _mm256_fmadd_pd(a1, _mm256_loadu_pd(b3 + k + 4), c3b);
      }
      if (k + 4 <= d) {
        const __m256d a0 = _mm256_loadu_pd(a_row + k);
        c0a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b0 + k), c0a);
        c1a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b1 + k), c1a);
        c2a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b2 + k), c2a);
        c3a = _mm256_fmadd_pd(a0, _mm256_loadu_pd(b3 + k), c3a);
        k += 4;
      }
      c_row[j] = DdotTail(DdotCombine(c0a, c0b), a_row, b0, k, d);
      c_row[j + 1] = DdotTail(DdotCombine(c1a, c1b), a_row, b1, k, d);
      c_row[j + 2] = DdotTail(DdotCombine(c2a, c2b), a_row, b2, k, d);
      c_row[j + 3] = DdotTail(DdotCombine(c3a, c3b), a_row, b3, k, d);
    }
    for (; j < m; ++j) c_row[j] = DdotAvx2(a_row, b + j * ldb, d);
  }
}

// ---------------------------------------------------------------------------
// AVX2 compressed (asymmetric-distance) kernels. Four 8-lane
// accumulators a0..a3 stand for the canonical partials s0..7, s8..15,
// s16..23, s24..31; the combine (a0+a2), (a1+a3), then Hsum8 of their
// sum reproduces the scalar CombineCanon32 order exactly, and the tail
// is the same sequential std::fmaf chain (compiled to vfmadd132ss under
// the fma target), so results are bit-identical to the scalar reference.
// ---------------------------------------------------------------------------

#define GQR_TARGET_AVX2_F16C __attribute__((target("avx2,fma,f16c")))

// 8 uint8 codes -> float lanes (exact), then the fused decode
// v = fma(scale, code, min). Same two rounding ops as DecodeSq8.
GQR_TARGET_AVX2 inline __m256 DecodeSq8x8(const uint8_t* code,
                                          const float* min,
                                          const float* scale) {
  const __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code))));
  return _mm256_fmadd_ps(_mm256_loadu_ps(scale), c, _mm256_loadu_ps(min));
}

GQR_HOT GQR_TARGET_AVX2 float SquaredL2Sq8PfAvx2(const float* q,
                                                 const uint8_t* code,
                                                 const float* min,
                                                 const float* scale,
                                                 size_t dim,
                                                 const uint8_t* pf) {
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr && (i & 63u) == 0) PrefetchL2(pf + i);
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(q + i),
                                    DecodeSq8x8(code + i, min + i, scale + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(q + i + 8),
                      DecodeSq8x8(code + i + 8, min + i + 8, scale + i + 8));
    const __m256 d2 =
        _mm256_sub_ps(_mm256_loadu_ps(q + i + 16),
                      DecodeSq8x8(code + i + 16, min + i + 16, scale + i + 16));
    const __m256 d3 =
        _mm256_sub_ps(_mm256_loadu_ps(q + i + 24),
                      DecodeSq8x8(code + i + 24, min + i + 24, scale + i + 24));
    a0 = _mm256_fmadd_ps(d0, d0, a0);
    a1 = _mm256_fmadd_ps(d1, d1, a1);
    a2 = _mm256_fmadd_ps(d2, d2, a2);
    a3 = _mm256_fmadd_ps(d3, d3, a3);
  }
  float acc = Hsum8(_mm256_add_ps(_mm256_add_ps(a0, a2),
                                  _mm256_add_ps(a1, a3)));
  for (; i < dim; ++i) {
    const float d = q[i] - DecodeSq8(code[i], min[i], scale[i]);
    acc = std::fmaf(d, d, acc);
  }
  return acc;
}

GQR_HOT GQR_TARGET_AVX2 float SquaredL2Sq8Avx2(const float* q,
                                               const uint8_t* code,
                                               const float* min,
                                               const float* scale,
                                               size_t dim) {
  return SquaredL2Sq8PfAvx2(q, code, min, scale, dim, nullptr);
}

GQR_HOT GQR_TARGET_AVX2 float DotSq8PfAvx2(const float* q,
                                           const uint8_t* code,
                                           const float* min,
                                           const float* scale, size_t dim,
                                           const uint8_t* pf) {
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr && (i & 63u) == 0) PrefetchL2(pf + i);
    a0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i),
                         DecodeSq8x8(code + i, min + i, scale + i), a0);
    a1 = _mm256_fmadd_ps(
        _mm256_loadu_ps(q + i + 8),
        DecodeSq8x8(code + i + 8, min + i + 8, scale + i + 8), a1);
    a2 = _mm256_fmadd_ps(
        _mm256_loadu_ps(q + i + 16),
        DecodeSq8x8(code + i + 16, min + i + 16, scale + i + 16), a2);
    a3 = _mm256_fmadd_ps(
        _mm256_loadu_ps(q + i + 24),
        DecodeSq8x8(code + i + 24, min + i + 24, scale + i + 24), a3);
  }
  float acc = Hsum8(_mm256_add_ps(_mm256_add_ps(a0, a2),
                                  _mm256_add_ps(a1, a3)));
  for (; i < dim; ++i) {
    acc = std::fmaf(q[i], DecodeSq8(code[i], min[i], scale[i]), acc);
  }
  return acc;
}

GQR_HOT GQR_TARGET_AVX2 float DotSq8Avx2(const float* q, const uint8_t* code,
                                         const float* min, const float* scale,
                                         size_t dim) {
  return DotSq8PfAvx2(q, code, min, scale, dim, nullptr);
}

GQR_HOT GQR_TARGET_AVX2_F16C float SquaredL2Fp16PfAvx2(const float* q,
                                                       const uint16_t* code,
                                                       size_t dim,
                                                       const uint16_t* pf) {
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr) PrefetchL2(pf + i);
    const __m256 d0 = _mm256_sub_ps(
        _mm256_loadu_ps(q + i),
        _mm256_cvtph_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + i))));
    const __m256 d1 = _mm256_sub_ps(
        _mm256_loadu_ps(q + i + 8),
        _mm256_cvtph_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + i + 8))));
    const __m256 d2 = _mm256_sub_ps(
        _mm256_loadu_ps(q + i + 16),
        _mm256_cvtph_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + i + 16))));
    const __m256 d3 = _mm256_sub_ps(
        _mm256_loadu_ps(q + i + 24),
        _mm256_cvtph_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + i + 24))));
    a0 = _mm256_fmadd_ps(d0, d0, a0);
    a1 = _mm256_fmadd_ps(d1, d1, a1);
    a2 = _mm256_fmadd_ps(d2, d2, a2);
    a3 = _mm256_fmadd_ps(d3, d3, a3);
  }
  float acc = Hsum8(_mm256_add_ps(_mm256_add_ps(a0, a2),
                                  _mm256_add_ps(a1, a3)));
  for (; i < dim; ++i) {
    const float d = q[i] - Fp16ToFloat(code[i]);
    acc = std::fmaf(d, d, acc);
  }
  return acc;
}

GQR_HOT GQR_TARGET_AVX2_F16C float SquaredL2Fp16Avx2(const float* q,
                                                     const uint16_t* code,
                                                     size_t dim) {
  return SquaredL2Fp16PfAvx2(q, code, dim, nullptr);
}

GQR_HOT GQR_TARGET_AVX2_F16C float DotFp16PfAvx2(const float* q,
                                                 const uint16_t* code,
                                                 size_t dim,
                                                 const uint16_t* pf) {
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr) PrefetchL2(pf + i);
    a0 = _mm256_fmadd_ps(
        _mm256_loadu_ps(q + i),
        _mm256_cvtph_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + i))),
        a0);
    a1 = _mm256_fmadd_ps(
        _mm256_loadu_ps(q + i + 8),
        _mm256_cvtph_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + i + 8))),
        a1);
    a2 = _mm256_fmadd_ps(
        _mm256_loadu_ps(q + i + 16),
        _mm256_cvtph_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + i + 16))),
        a2);
    a3 = _mm256_fmadd_ps(
        _mm256_loadu_ps(q + i + 24),
        _mm256_cvtph_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + i + 24))),
        a3);
  }
  float acc = Hsum8(_mm256_add_ps(_mm256_add_ps(a0, a2),
                                  _mm256_add_ps(a1, a3)));
  for (; i < dim; ++i) acc = std::fmaf(q[i], Fp16ToFloat(code[i]), acc);
  return acc;
}

GQR_HOT GQR_TARGET_AVX2_F16C float DotFp16Avx2(const float* q,
                                               const uint16_t* code,
                                               size_t dim) {
  return DotFp16PfAvx2(q, code, dim, nullptr);
}

// ---------------------------------------------------------------------------
// AVX-512 kernels (F/BW/DQ/VL, which imply AVX2+FMA).
//
// Float distance kernels: the 1e-4 scalar-agreement contract of the fp32
// table, with the fused kernels sharing the standalone skeleton (two
// 16-lane accumulators over 32-element blocks, one 16-wide remainder
// into acc0, Hsum16, scalar tail) so fused == standalone holds bit for
// bit within the level.
//
// Compressed kernels: the canonical 32-partial structure with two zmm
// accumulators (lanes s0..15 / s16..31); acc0+acc1 is the c_l combine,
// Hsum16's 256-bit fold is the d_l combine, and Hsum8 finishes in the
// canonical order — bit-identical to the scalar reference.
// ---------------------------------------------------------------------------

#define GQR_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl,fma")))

// GCC's unmasked AVX-512 intrinsics pass _mm512_undefined_*() as the
// dead passthru operand, which trips -W(maybe-)uninitialized when they
// inline here (GCC PR 105593). The lanes are dead by construction
// (mask = -1), so the warning is suppressed for this section only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

GQR_TARGET_AVX512 inline float Hsum16(__m512 v) {
  return Hsum8(_mm256_add_ps(_mm512_castps512_ps256(v),
                             _mm512_extractf32x8_ps(v, 1)));
}

GQR_TARGET_AVX512 float SquaredL2Avx512(const float* a, const float* b,
                                        size_t dim) {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16),
                                    _mm512_loadu_ps(b + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  if (i + 16 <= dim) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
    i += 16;
  }
  float s = Hsum16(_mm512_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

GQR_TARGET_AVX512 float DotAvx512(const float* a, const float* b,
                                  size_t dim) {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  if (i + 16 <= dim) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    i += 16;
  }
  float s = Hsum16(_mm512_add_ps(acc0, acc1));
  for (; i < dim; ++i) s += a[i] * b[i];
  return s;
}

GQR_TARGET_AVX512 void DotAndNormAvx512(const float* a, const float* b,
                                        size_t dim, float* dot,
                                        float* a_norm2) {
  __m512 d0 = _mm512_setzero_ps(), d1 = _mm512_setzero_ps();
  __m512 n0 = _mm512_setzero_ps(), n1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m512 a0 = _mm512_loadu_ps(a + i);
    const __m512 a1 = _mm512_loadu_ps(a + i + 16);
    d0 = _mm512_fmadd_ps(a0, _mm512_loadu_ps(b + i), d0);
    d1 = _mm512_fmadd_ps(a1, _mm512_loadu_ps(b + i + 16), d1);
    n0 = _mm512_fmadd_ps(a0, a0, n0);
    n1 = _mm512_fmadd_ps(a1, a1, n1);
  }
  if (i + 16 <= dim) {
    const __m512 a0 = _mm512_loadu_ps(a + i);
    d0 = _mm512_fmadd_ps(a0, _mm512_loadu_ps(b + i), d0);
    n0 = _mm512_fmadd_ps(a0, a0, n0);
    i += 16;
  }
  float d = Hsum16(_mm512_add_ps(d0, d1));
  float n = Hsum16(_mm512_add_ps(n0, n1));
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    n += a[i] * a[i];
  }
  *dot = d;
  *a_norm2 = n;
}

GQR_TARGET_AVX512 void DotAndNormsAvx512(const float* a, const float* b,
                                         size_t dim, float* dot,
                                         float* a_norm2, float* b_norm2) {
  __m512 d0 = _mm512_setzero_ps(), d1 = _mm512_setzero_ps();
  __m512 na0 = _mm512_setzero_ps(), na1 = _mm512_setzero_ps();
  __m512 nb0 = _mm512_setzero_ps(), nb1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m512 a0 = _mm512_loadu_ps(a + i);
    const __m512 a1 = _mm512_loadu_ps(a + i + 16);
    const __m512 b0 = _mm512_loadu_ps(b + i);
    const __m512 b1 = _mm512_loadu_ps(b + i + 16);
    d0 = _mm512_fmadd_ps(a0, b0, d0);
    d1 = _mm512_fmadd_ps(a1, b1, d1);
    na0 = _mm512_fmadd_ps(a0, a0, na0);
    na1 = _mm512_fmadd_ps(a1, a1, na1);
    nb0 = _mm512_fmadd_ps(b0, b0, nb0);
    nb1 = _mm512_fmadd_ps(b1, b1, nb1);
  }
  if (i + 16 <= dim) {
    const __m512 a0 = _mm512_loadu_ps(a + i);
    const __m512 b0 = _mm512_loadu_ps(b + i);
    d0 = _mm512_fmadd_ps(a0, b0, d0);
    na0 = _mm512_fmadd_ps(a0, a0, na0);
    nb0 = _mm512_fmadd_ps(b0, b0, nb0);
    i += 16;
  }
  float d = Hsum16(_mm512_add_ps(d0, d1));
  float na = Hsum16(_mm512_add_ps(na0, na1));
  float nb = Hsum16(_mm512_add_ps(nb0, nb1));
  for (; i < dim; ++i) {
    d += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  *dot = d;
  *a_norm2 = na;
  *b_norm2 = nb;
}

// 16 uint8 codes -> float lanes (exact) + fused decode; the 512-bit
// sibling of DecodeSq8x8.
GQR_TARGET_AVX512 inline __m512 DecodeSq8x16(const uint8_t* code,
                                             const float* min,
                                             const float* scale) {
  const __m512 c = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(code))));
  return _mm512_fmadd_ps(_mm512_loadu_ps(scale), c, _mm512_loadu_ps(min));
}

GQR_HOT GQR_TARGET_AVX512 float SquaredL2Sq8PfAvx512(const float* q,
                                                     const uint8_t* code,
                                                     const float* min,
                                                     const float* scale,
                                                     size_t dim,
                                                     const uint8_t* pf) {
  __m512 z0 = _mm512_setzero_ps(), z1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr && (i & 63u) == 0) PrefetchL2(pf + i);
    const __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(q + i),
                                    DecodeSq8x16(code + i, min + i,
                                                 scale + i));
    const __m512 d1 =
        _mm512_sub_ps(_mm512_loadu_ps(q + i + 16),
                      DecodeSq8x16(code + i + 16, min + i + 16,
                                   scale + i + 16));
    z0 = _mm512_fmadd_ps(d0, d0, z0);
    z1 = _mm512_fmadd_ps(d1, d1, z1);
  }
  float acc = Hsum16(_mm512_add_ps(z0, z1));
  for (; i < dim; ++i) {
    const float d = q[i] - DecodeSq8(code[i], min[i], scale[i]);
    acc = std::fmaf(d, d, acc);
  }
  return acc;
}

GQR_HOT GQR_TARGET_AVX512 float SquaredL2Sq8Avx512(const float* q,
                                                   const uint8_t* code,
                                                   const float* min,
                                                   const float* scale,
                                                   size_t dim) {
  return SquaredL2Sq8PfAvx512(q, code, min, scale, dim, nullptr);
}

GQR_HOT GQR_TARGET_AVX512 float DotSq8PfAvx512(const float* q,
                                               const uint8_t* code,
                                               const float* min,
                                               const float* scale, size_t dim,
                                               const uint8_t* pf) {
  __m512 z0 = _mm512_setzero_ps(), z1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr && (i & 63u) == 0) PrefetchL2(pf + i);
    z0 = _mm512_fmadd_ps(_mm512_loadu_ps(q + i),
                         DecodeSq8x16(code + i, min + i, scale + i), z0);
    z1 = _mm512_fmadd_ps(
        _mm512_loadu_ps(q + i + 16),
        DecodeSq8x16(code + i + 16, min + i + 16, scale + i + 16), z1);
  }
  float acc = Hsum16(_mm512_add_ps(z0, z1));
  for (; i < dim; ++i) {
    acc = std::fmaf(q[i], DecodeSq8(code[i], min[i], scale[i]), acc);
  }
  return acc;
}

GQR_HOT GQR_TARGET_AVX512 float DotSq8Avx512(const float* q,
                                             const uint8_t* code,
                                             const float* min,
                                             const float* scale, size_t dim) {
  return DotSq8PfAvx512(q, code, min, scale, dim, nullptr);
}

GQR_HOT GQR_TARGET_AVX512 float SquaredL2Fp16PfAvx512(const float* q,
                                                      const uint16_t* code,
                                                      size_t dim,
                                                      const uint16_t* pf) {
  __m512 z0 = _mm512_setzero_ps(), z1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr) PrefetchL2(pf + i);
    const __m512 d0 = _mm512_sub_ps(
        _mm512_loadu_ps(q + i),
        _mm512_cvtph_ps(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(code + i))));
    const __m512 d1 =
        _mm512_sub_ps(_mm512_loadu_ps(q + i + 16),
                      _mm512_cvtph_ps(_mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(code + i + 16))));
    z0 = _mm512_fmadd_ps(d0, d0, z0);
    z1 = _mm512_fmadd_ps(d1, d1, z1);
  }
  float acc = Hsum16(_mm512_add_ps(z0, z1));
  for (; i < dim; ++i) {
    const float d = q[i] - Fp16ToFloat(code[i]);
    acc = std::fmaf(d, d, acc);
  }
  return acc;
}

GQR_HOT GQR_TARGET_AVX512 float SquaredL2Fp16Avx512(const float* q,
                                                    const uint16_t* code,
                                                    size_t dim) {
  return SquaredL2Fp16PfAvx512(q, code, dim, nullptr);
}

GQR_HOT GQR_TARGET_AVX512 float DotFp16PfAvx512(const float* q,
                                                const uint16_t* code,
                                                size_t dim,
                                                const uint16_t* pf) {
  __m512 z0 = _mm512_setzero_ps(), z1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    if (pf != nullptr) PrefetchL2(pf + i);
    z0 = _mm512_fmadd_ps(
        _mm512_loadu_ps(q + i),
        _mm512_cvtph_ps(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(code + i))),
        z0);
    z1 = _mm512_fmadd_ps(
        _mm512_loadu_ps(q + i + 16),
        _mm512_cvtph_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(code + i + 16))),
        z1);
  }
  float acc = Hsum16(_mm512_add_ps(z0, z1));
  for (; i < dim; ++i) acc = std::fmaf(q[i], Fp16ToFloat(code[i]), acc);
  return acc;
}

GQR_HOT GQR_TARGET_AVX512 float DotFp16Avx512(const float* q,
                                              const uint16_t* code,
                                              size_t dim) {
  return DotFp16PfAvx512(q, code, dim, nullptr);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace

#endif  // GQR_X86

// ---------------------------------------------------------------------------
// Dispatch: resolved once, before the first distance is computed.
// ---------------------------------------------------------------------------

bool SimdLevelAvailable(SimdLevel level) {
  if (level == SimdLevel::kScalar) return true;
#if defined(GQR_X86) && defined(__GNUC__)
  __builtin_cpu_init();
  if (level == SimdLevel::kAvx2) {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }
  // kAvx512: every 512-bit instruction the kernels use is F/BW/DQ; VL is
  // required because the compiler may EVEX-encode the 256/128-bit tail
  // and reduction ops inside the avx512 target functions.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

bool HostHasF16c() {
#if defined(GQR_X86) && defined(__GNUC__)
  __builtin_cpu_init();
  return __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

bool HostHasVnni() {
#if defined(GQR_X86) && defined(__GNUC__)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512vnni");
#else
  return false;
#endif
}

bool ParseSimdLevel(const char* name, SimdLevel* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = SimdLevel::kScalar;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    *out = SimdLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

namespace {

SimdLevel DetectSimdLevel() {
  // GQR_SIMD pins the dispatch level for A/B runs and the CI matrix. A
  // pinned level the host cannot execute is a hard error, not a silent
  // fallback: a silently-degraded pinned run measures the wrong thing.
  const std::string force = GetEnvString("GQR_SIMD", "");
  if (!force.empty()) {
    SimdLevel level = SimdLevel::kScalar;
    GQR_CHECK(ParseSimdLevel(force.c_str(), &level))
        << " GQR_SIMD='" << force << "' is not one of scalar|avx2|avx512";
    GQR_CHECK(SimdLevelAvailable(level))
        << " GQR_SIMD=" << force
        << " pinned, but this host cannot execute " << SimdLevelName(level)
        << " kernels";
    return level;
  }
  if (SimdLevelAvailable(SimdLevel::kAvx512)) return SimdLevel::kAvx512;
  if (SimdLevelAvailable(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = DetectSimdLevel();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

const DistanceKernels& Kernels() {
  static const DistanceKernels table = [] {
    DistanceKernels k{SquaredL2Scalar, DotScalar, DotAndNormScalar,
                      DotAndNormsScalar};
#if defined(GQR_X86)
    const SimdLevel level = ActiveSimdLevel();
    if (level == SimdLevel::kAvx512) {
      k = {SquaredL2Avx512, DotAvx512, DotAndNormAvx512, DotAndNormsAvx512};
    } else if (level == SimdLevel::kAvx2) {
      k = {SquaredL2Avx2, DotAvx2, DotAndNormAvx2, DotAndNormsAvx2};
    }
#endif
    return k;
  }();
  return table;
}

const ProjectionKernels& ProjKernels() {
  static const ProjectionKernels table = [] {
    ProjectionKernels k{DdotScalar, DaxpyScalar, CenterScalar, DgemvScalar,
                        DgemmNtScalar};
#if defined(GQR_X86)
    // kAvx512 also serves the AVX2 implementations here: the canonical
    // 8-partial accumulation contract pins the structure, and AVX-512
    // implies AVX2+FMA (see the header).
    if (ActiveSimdLevel() != SimdLevel::kScalar) {
      k = {DdotAvx2, DaxpyAvx2, CenterAvx2, DgemvAvx2, DgemmNtAvx2};
    }
#endif
    return k;
  }();
  return table;
}

const CompressedKernels& CompKernels() {
  static const CompressedKernels table = [] {
    CompressedKernels k{SquaredL2Sq8Scalar,   DotSq8Scalar,
                        SquaredL2Fp16Scalar,  DotFp16Scalar,
                        SquaredL2Sq8PfScalar, DotSq8PfScalar,
                        SquaredL2Fp16PfScalar, DotFp16PfScalar};
#if defined(GQR_X86)
    const SimdLevel level = ActiveSimdLevel();
    if (level == SimdLevel::kAvx512) {
      k = {SquaredL2Sq8Avx512,   DotSq8Avx512,
           SquaredL2Fp16Avx512,  DotFp16Avx512,
           SquaredL2Sq8PfAvx512, DotSq8PfAvx512,
           SquaredL2Fp16PfAvx512, DotFp16PfAvx512};
    } else if (level == SimdLevel::kAvx2) {
      k.squared_l2_sq8 = SquaredL2Sq8Avx2;
      k.dot_sq8 = DotSq8Avx2;
      k.squared_l2_sq8_pf = SquaredL2Sq8PfAvx2;
      k.dot_sq8_pf = DotSq8PfAvx2;
      // The fp16 kernels additionally need F16C at this level (on
      // AVX-512 hosts the 512-bit conversions are part of AVX-512F).
      if (HostHasF16c()) {
        k.squared_l2_fp16 = SquaredL2Fp16Avx2;
        k.dot_fp16 = DotFp16Avx2;
        k.squared_l2_fp16_pf = SquaredL2Fp16PfAvx2;
        k.dot_fp16_pf = DotFp16PfAvx2;
      }
    }
#endif
    return k;
  }();
  return table;
}

}  // namespace gqr
