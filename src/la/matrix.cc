#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "la/simd_kernels.h"

#include "util/check.h"

namespace gqr {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  GQR_CHECK(data_.size() == rows * cols);
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomGaussian(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Gaussian();
  return m;
}

Matrix Matrix::RandomOrthogonal(size_t n, Rng* rng) {
  // Gram-Schmidt on a Gaussian matrix. Gaussian columns are almost surely
  // linearly independent; re-draw a column in the (measure-zero) case of
  // numerical degeneracy.
  Matrix g = RandomGaussian(n, n, rng);
  Matrix q(n, n);
  for (size_t col = 0; col < n; ++col) {
    std::vector<double> v(n);
    for (;;) {
      for (size_t i = 0; i < n; ++i) v[i] = g.At(i, col);
      for (size_t prev = 0; prev < col; ++prev) {
        double dot = 0.0;
        for (size_t i = 0; i < n; ++i) dot += v[i] * q.At(i, prev);
        for (size_t i = 0; i < n; ++i) v[i] -= dot * q.At(i, prev);
      }
      double norm = 0.0;
      for (double x : v) norm += x * x;
      norm = std::sqrt(norm);
      if (norm > 1e-12) {
        for (size_t i = 0; i < n; ++i) q.At(i, col) = v[i] / norm;
        break;
      }
      for (size_t i = 0; i < n; ++i) g.At(i, col) = rng->Gaussian();
    }
  }
  return q;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      t.At(j, i) = At(i, j);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  GQR_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  const ProjectionKernels& kern = ProjKernels();
  const size_t p = other.cols_;
  // Blocked i-k-j: a panel of kc B-rows stays in cache across the whole i
  // sweep, and the inner axpy streams contiguous rows through the
  // dispatched fma kernel. Each output element accumulates in strictly
  // ascending k regardless of the block size or vector width, so results
  // are identical across dispatch levels and blockings.
  constexpr size_t kc = 64;
  for (size_t k0 = 0; k0 < cols_; k0 += kc) {
    const size_t k1 = std::min(cols_, k0 + kc);
    for (size_t i = 0; i < rows_; ++i) {
      const double* a_row = Row(i);
      double* out_row = out.Row(i);
      for (size_t k = k0; k < k1; ++k) {
        const double a = a_row[k];
        if (a == 0.0) continue;
        kern.axpy(a, other.Row(k), out_row, p);
      }
    }
  }
  return out;
}

Matrix Matrix::TransposedMultiply(const Matrix& other) const {
  GQR_CHECK(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  const ProjectionKernels& kern = ProjKernels();
  for (size_t k = 0; k < rows_; ++k) {
    const double* a_row = Row(k);
    const double* b_row = other.Row(k);
    for (size_t i = 0; i < cols_; ++i) {
      const double a = a_row[i];
      if (a == 0.0) continue;
      kern.axpy(a, b_row, out.Row(i), other.cols_);
    }
  }
  return out;
}

Matrix Matrix::MultiplyTransposed(const Matrix& other) const {
  GQR_CHECK(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  if (empty() || other.empty()) return out;
  ProjKernels().gemm_nt(data_.data(), rows_, cols_, other.data_.data(),
                        other.rows_, other.cols_, cols_, out.data_.data(),
                        other.rows_);
  return out;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& x) const {
  GQR_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  if (!empty()) {
    ProjKernels().gemv(data_.data(), rows_, cols_, x.data(), y.data());
  }
  return y;
}

Matrix Matrix::operator+(const Matrix& other) const {
  GQR_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  GQR_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::SpectralNorm(int max_iters, double tol) const {
  if (empty()) return 0.0;
  // Power iteration on A^T A: x <- normalize(A^T (A x)).
  Rng rng(7);
  std::vector<double> x(cols_);
  for (double& v : x) v = rng.Gaussian();
  double sigma = 0.0;
  for (int it = 0; it < max_iters; ++it) {
    std::vector<double> ax = MatVec(x);
    // y = A^T ax
    std::vector<double> y(cols_, 0.0);
    const ProjectionKernels& kern = ProjKernels();
    for (size_t i = 0; i < rows_; ++i) {
      kern.axpy(ax[i], Row(i), y.data(), cols_);
    }
    double norm = 0.0;
    for (double v : y) norm += v * v;
    norm = std::sqrt(norm);
    if (norm == 0.0) return 0.0;
    double new_sigma = std::sqrt(norm);
    for (size_t j = 0; j < cols_; ++j) x[j] = y[j] / norm;
    if (std::abs(new_sigma - sigma) <= tol * std::max(1.0, new_sigma)) {
      return new_sigma;
    }
    sigma = new_sigma;
  }
  return sigma;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  GQR_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

Matrix Matrix::RowSlice(size_t row_begin, size_t row_end) const {
  GQR_CHECK(row_begin <= row_end && row_end <= rows_);
  Matrix out(row_end - row_begin, cols_);
  std::copy(data_.begin() + row_begin * cols_, data_.begin() + row_end * cols_,
            out.data_.begin());
  return out;
}

Matrix Matrix::ColSlice(size_t col_begin, size_t col_end) const {
  GQR_CHECK(col_begin <= col_end && col_end <= cols_);
  Matrix out(rows_, col_end - col_begin);
  for (size_t i = 0; i < rows_; ++i) {
    std::copy(Row(i) + col_begin, Row(i) + col_end, out.Row(i));
  }
  return out;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [\n";
  const size_t show_rows = std::min<size_t>(rows_, max_rows);
  const size_t show_cols = std::min<size_t>(cols_, max_cols);
  for (size_t i = 0; i < show_rows; ++i) {
    os << "  ";
    for (size_t j = 0; j < show_cols; ++j) os << At(i, j) << " ";
    if (show_cols < cols_) os << "...";
    os << "\n";
  }
  if (show_rows < rows_) os << "  ...\n";
  os << "]";
  return os.str();
}

}  // namespace gqr
