#include "la/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/parallel_for.h"

namespace gqr {

namespace {

template <typename T>
double SquaredDistanceTo(const double* center, const T* x, size_t dim) {
  double s = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    const double d = center[j] - static_cast<double>(x[j]);
    s += d * d;
  }
  return s;
}

// k-means++ seeding over the chosen training rows.
template <typename T>
Matrix SeedPlusPlus(const T* data, const std::vector<uint32_t>& rows,
                    size_t dim, size_t k, Rng* rng) {
  const size_t t = rows.size();
  Matrix centers(k, dim);
  std::vector<double> min_sq(t, std::numeric_limits<double>::max());

  size_t first = rng->Uniform(t);
  for (size_t j = 0; j < dim; ++j) {
    centers.At(0, j) =
        static_cast<double>(data[rows[first] * size_t{1} * dim + j]);
  }
  for (size_t c = 1; c < k; ++c) {
    // Refresh distances against the center added last.
    const double* last = centers.Row(c - 1);
    ParallelFor(0, t, [&](size_t i) {
      const T* x = data + static_cast<size_t>(rows[i]) * dim;
      min_sq[i] = std::min(min_sq[i], SquaredDistanceTo(last, x, dim));
    });
    double total = 0.0;
    for (double d : min_sq) total += d;
    size_t pick;
    if (total <= 0.0) {
      pick = rng->Uniform(t);  // All points coincide with centers.
    } else {
      double r = rng->UniformDouble() * total;
      double acc = 0.0;
      pick = t - 1;
      for (size_t i = 0; i < t; ++i) {
        acc += min_sq[i];
        if (r < acc) {
          pick = i;
          break;
        }
      }
    }
    const T* x = data + static_cast<size_t>(rows[pick]) * dim;
    for (size_t j = 0; j < dim; ++j) {
      centers.At(c, j) = static_cast<double>(x[j]);
    }
  }
  return centers;
}

}  // namespace

template <typename T>
uint32_t NearestCenter(const Matrix& centers, const T* x) {
  const size_t dim = centers.cols();
  uint32_t best = 0;
  double best_sq = std::numeric_limits<double>::max();
  for (size_t c = 0; c < centers.rows(); ++c) {
    const double sq = SquaredDistanceTo(centers.Row(c), x, dim);
    if (sq < best_sq) {
      best_sq = sq;
      best = static_cast<uint32_t>(c);
    }
  }
  return best;
}

template <typename T>
KMeansResult KMeans(const T* data, size_t n, size_t dim,
                    const KMeansOptions& options) {
  GQR_CHECK(n > 0 && dim > 0 && options.k > 0);
  const size_t k = std::min(options.k, n);
  Rng rng(options.seed);

  std::vector<uint32_t> rows;
  if (options.max_train_samples > 0 && n > options.max_train_samples) {
    rows = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(n),
        static_cast<uint32_t>(options.max_train_samples));
  } else {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
  }
  const size_t t = rows.size();

  KMeansResult result;
  result.centers = SeedPlusPlus(data, rows, dim, k, &rng);
  std::vector<uint32_t> assign(t, 0);

  double prev_obj = std::numeric_limits<double>::max();
  for (int iter = 0; iter < options.max_iters; ++iter) {
    // Assignment step.
    std::vector<double> point_sq(t);
    ParallelFor(0, t, [&](size_t i) {
      const T* x = data + static_cast<size_t>(rows[i]) * dim;
      uint32_t best = 0;
      double best_sq = std::numeric_limits<double>::max();
      for (size_t c = 0; c < k; ++c) {
        const double sq = SquaredDistanceTo(result.centers.Row(c), x, dim);
        if (sq < best_sq) {
          best_sq = sq;
          best = static_cast<uint32_t>(c);
        }
      }
      assign[i] = best;
      point_sq[i] = best_sq;
    });
    double obj = 0.0;
    for (double d : point_sq) obj += d;
    obj /= static_cast<double>(t);
    result.objective_history.push_back(obj);
    result.iterations = iter + 1;

    // Update step.
    Matrix sums(k, dim);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < t; ++i) {
      const T* x = data + static_cast<size_t>(rows[i]) * dim;
      double* row = sums.Row(assign[i]);
      for (size_t j = 0; j < dim; ++j) row[j] += static_cast<double>(x[j]);
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the point farthest from its center.
        size_t worst = 0;
        for (size_t i = 1; i < t; ++i) {
          if (point_sq[i] > point_sq[worst]) worst = i;
        }
        const T* x = data + static_cast<size_t>(rows[worst]) * dim;
        for (size_t j = 0; j < dim; ++j) {
          result.centers.At(c, j) = static_cast<double>(x[j]);
        }
        point_sq[worst] = 0.0;  // Don't re-seed two clusters at one point.
        continue;
      }
      for (size_t j = 0; j < dim; ++j) {
        result.centers.At(c, j) =
            sums.At(c, j) / static_cast<double>(counts[c]);
      }
    }

    if (prev_obj - obj <= options.tol * std::max(prev_obj, 1e-12)) break;
    prev_obj = obj;
  }

  // Final assignments over all n points (not just the training sample).
  result.assignments.resize(n);
  ParallelFor(0, n, [&](size_t i) {
    result.assignments[i] = NearestCenter(result.centers, data + i * dim);
  });
  return result;
}

template KMeansResult KMeans<float>(const float*, size_t, size_t,
                                    const KMeansOptions&);
template KMeansResult KMeans<double>(const double*, size_t, size_t,
                                     const KMeansOptions&);
template uint32_t NearestCenter<float>(const Matrix&, const float*);
template uint32_t NearestCenter<double>(const Matrix&, const double*);

}  // namespace gqr
