// Lloyd's k-means with k-means++ seeding — the quantizer trainer behind
// K-means hashing (KMH), product quantization (PQ/OPQ), and the inverted
// multi-index codebooks.
#ifndef GQR_LA_KMEANS_H_
#define GQR_LA_KMEANS_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "util/random.h"

namespace gqr {

struct KMeansOptions {
  /// Number of centers.
  size_t k = 8;
  /// Lloyd iteration cap.
  int max_iters = 25;
  /// Stop when the relative objective improvement falls below this.
  double tol = 1e-4;
  uint64_t seed = 42;
  /// Subsample cap for training (0 = use all points).
  size_t max_train_samples = 0;
};

struct KMeansResult {
  /// k x dim; row c is center c.
  Matrix centers;
  /// Per-input-point nearest-center index (length n).
  std::vector<uint32_t> assignments;
  /// Mean squared distance of points to their centers, per iteration
  /// (monotonically non-increasing; the last entry is the final objective).
  std::vector<double> objective_history;
  int iterations = 0;

  double objective() const {
    return objective_history.empty() ? 0.0 : objective_history.back();
  }
};

/// Runs k-means++ then Lloyd on n row-major vectors of length dim.
/// T is float (raw descriptors) or double (rotated/projected data).
/// Assignment passes are parallelized over points.
template <typename T>
KMeansResult KMeans(const T* data, size_t n, size_t dim,
                    const KMeansOptions& options);

/// Index of the center nearest to x (ties to the lowest index).
template <typename T>
uint32_t NearestCenter(const Matrix& centers, const T* x);

}  // namespace gqr

#endif  // GQR_LA_KMEANS_H_
