// Dense row-major double matrix used by the learning stage (PCA, ITQ,
// SH, OPQ). Deliberately small: exactly the operations the learners need,
// with no expression templates or allocator knobs.
#ifndef GQR_LA_MATRIX_H_
#define GQR_LA_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace gqr {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols wrapping existing data (copied). data.size() must be
  /// rows * cols.
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  static Matrix Identity(size_t n);
  /// Entries i.i.d. N(0, 1) from rng.
  static Matrix RandomGaussian(size_t rows, size_t cols, Rng* rng);
  /// A random orthogonal matrix (QR of a Gaussian matrix), used to
  /// initialize ITQ / OPQ rotations.
  static Matrix RandomOrthogonal(size_t n, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t i, size_t j) {
    GQR_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double At(size_t i, size_t j) const {
    GQR_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Pointer to the start of row i.
  double* Row(size_t i) { return data_.data() + i * cols_; }
  const double* Row(size_t i) const { return data_.data() + i * cols_; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix Transposed() const;

  /// this * other. Requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;
  /// this^T * other. Requires rows() == other.rows().
  Matrix TransposedMultiply(const Matrix& other) const;
  /// this * other^T. Requires cols() == other.cols().
  Matrix MultiplyTransposed(const Matrix& other) const;

  /// y = this * x for an x of length cols(); y has length rows().
  std::vector<double> MatVec(const std::vector<double>& x) const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix& operator*=(double s);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Largest singular value, i.e. the spectral norm sigma_max(this).
  /// Computed by power iteration on this^T * this; used for the
  /// Theorem 1/2 constant M.
  double SpectralNorm(int max_iters = 200, double tol = 1e-10) const;

  /// max_ij |this - other| for test assertions.
  double MaxAbsDiff(const Matrix& other) const;

  /// Rows [row_begin, row_end) as a new matrix.
  Matrix RowSlice(size_t row_begin, size_t row_end) const;
  /// Columns [col_begin, col_end) as a new matrix.
  Matrix ColSlice(size_t col_begin, size_t col_end) const;

  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace gqr

#endif  // GQR_LA_MATRIX_H_
