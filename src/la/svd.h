// Singular value decomposition by the one-sided Jacobi method.
//
// Needed for the Procrustes steps of ITQ and OPQ (SVDs of small m x m or
// subspace-sized matrices), where robustness matters more than peak speed.
#ifndef GQR_LA_SVD_H_
#define GQR_LA_SVD_H_

#include <vector>

#include "la/matrix.h"

namespace gqr {

/// Thin SVD A = U diag(sigma) V^T.
///
/// For an r x c input: U is r x k, V is c x k, sigma has k = min(r, c)
/// entries sorted descending. Columns of U and V are orthonormal.
struct SvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;
};

/// Computes the thin SVD of a (any shape). One-sided Jacobi orthogonalizes
/// the columns of A; when rows < cols the problem is transposed internally.
SvdResult Svd(const Matrix& a, int max_sweeps = 60, double tol = 1e-13);

}  // namespace gqr

#endif  // GQR_LA_SVD_H_
