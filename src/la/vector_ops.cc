#include "la/vector_ops.h"

#include <cmath>

#include "la/simd_kernels.h"

namespace gqr {

// The float kernels forward to the runtime-dispatched table (scalar or
// AVX2+FMA, picked once by cpuid — see simd_kernels.h). Every distance
// consumer shares that table, so reference computations and the search
// hot path produce identical values.

float SquaredL2(const float* a, const float* b, size_t dim) {
  return Kernels().squared_l2(a, b, dim);
}

float L2Distance(const float* a, const float* b, size_t dim) {
  return std::sqrt(SquaredL2(a, b, dim));
}

float Dot(const float* a, const float* b, size_t dim) {
  return Kernels().dot(a, b, dim);
}

float Norm(const float* a, size_t dim) { return std::sqrt(Dot(a, a, dim)); }

float CosineDistance(const float* a, const float* b, size_t dim) {
  float dot, na2, nb2;
  Kernels().dot_and_norms(a, b, dim, &dot, &na2, &nb2);
  if (na2 == 0.f || nb2 == 0.f) return 1.f;
  return 1.f - dot / (std::sqrt(na2) * std::sqrt(nb2));
}

double SquaredL2(const double* a, const double* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double Dot(const double* a, const double* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) s += a[i] * b[i];
  return s;
}

double Norm(const double* a, size_t dim) {
  return std::sqrt(Dot(a, a, dim));
}

void NormalizeInPlace(std::vector<double>* v) {
  double n = Norm(v->data(), v->size());
  if (n == 0.0) return;
  for (double& x : *v) x /= n;
}

}  // namespace gqr
