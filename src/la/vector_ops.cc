#include "la/vector_ops.h"

#include <cmath>

namespace gqr {

float SquaredL2(const float* a, const float* b, size_t dim) {
  // Accumulate in 4 independent lanes so the compiler can vectorize and
  // the FP dependency chain stays short.
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  float s = (s0 + s1) + (s2 + s3);
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float L2Distance(const float* a, const float* b, size_t dim) {
  return std::sqrt(SquaredL2(a, b, dim));
}

float Dot(const float* a, const float* b, size_t dim) {
  float s0 = 0.f, s1 = 0.f;
  size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
  }
  float s = s0 + s1;
  for (; i < dim; ++i) s += a[i] * b[i];
  return s;
}

float Norm(const float* a, size_t dim) { return std::sqrt(Dot(a, a, dim)); }

float CosineDistance(const float* a, const float* b, size_t dim) {
  const float na = Norm(a, dim);
  const float nb = Norm(b, dim);
  if (na == 0.f || nb == 0.f) return 1.f;
  return 1.f - Dot(a, b, dim) / (na * nb);
}

double SquaredL2(const double* a, const double* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double Dot(const double* a, const double* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) s += a[i] * b[i];
  return s;
}

double Norm(const double* a, size_t dim) {
  return std::sqrt(Dot(a, a, dim));
}

void NormalizeInPlace(std::vector<double>* v) {
  double n = Norm(v->data(), v->size());
  if (n == 0.0) return;
  for (double& x : *v) x /= n;
}

}  // namespace gqr
