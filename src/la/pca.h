// Principal component analysis over float descriptor arrays.
//
// The learning front-end of PCAH, ITQ, and SH: all three start from the
// top-m principal directions of (a training sample of) the dataset.
#ifndef GQR_LA_PCA_H_
#define GQR_LA_PCA_H_

#include <cstddef>
#include <vector>

#include "la/matrix.h"
#include "util/random.h"

namespace gqr {

/// A fitted PCA basis.
struct PcaModel {
  /// Per-dimension mean of the training data (length dim).
  std::vector<double> mean;
  /// num_components x dim; row i is the i-th principal direction (unit
  /// norm, descending explained variance).
  Matrix components;
  /// Descending eigenvalues of the covariance for the kept components.
  std::vector<double> explained_variance;

  size_t dim() const { return mean.size(); }
  size_t num_components() const { return components.rows(); }

  /// Projects a float vector onto the basis: out[i] = <components[i],
  /// x - mean>. out must have room for num_components() doubles.
  void Project(const float* x, double* out) const;
};

/// Fits PCA on `n` row-major float vectors of length `dim`.
///
/// When n > max_train_samples, a uniform sample of max_train_samples rows
/// (drawn with `rng`, or a default-seeded Rng when null) is used to build
/// the covariance — standard practice for L2H training and necessary to
/// keep the O(n d^2) covariance pass cheap on large datasets.
PcaModel FitPca(const float* data, size_t n, size_t dim,
                size_t num_components, size_t max_train_samples = 20000,
                Rng* rng = nullptr);

}  // namespace gqr

#endif  // GQR_LA_PCA_H_
