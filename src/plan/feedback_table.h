// FeedbackTable: the learn-on-execution store of the adaptive
// probe-budget planner (DESIGN.md section 16).
//
// Keyed by a query-feature hash (plan/planner.h QueryFeatureKey), each
// entry holds an EWMA of the observed probes-to-convergence — the
// candidate count at which searches with that feature signature stopped
// improving their top-k. The planner reads the EWMA to predict a
// starting budget for the next query with the same signature and writes
// a fresh observation back after every uncensored execution, the
// learn-cache shape of PostgreSQL's AQO extension.
//
// Storage is a fixed, bounded open-addressing table: capacity slots
// (power of two), linear probing over a short window. When the window
// for a new key is full, the least-recently-recorded slot in the window
// is evicted — memory never grows past construction, which is what lets
// the table sit on the serving path. The asymmetric EWMA (fast up, slow
// down) makes predictions track the *hard* tail of a feature bucket:
// one difficult query raises the budget quickly; it decays only over
// many easy ones.
//
// Concurrency: a SharedMutex in the util/sync.h capability discipline.
// Predict takes the shared side (many concurrent serving threads),
// Record the exclusive side. Both are wait-bounded (no allocation, no
// rehash) and safe to call from concurrent searches — soaked under TSan
// by tests/feedback_stress_test.cc.
//
// The serving hot path uses the TryPredict/TryRecord variants instead:
// they take the lock with try-acquire semantics and give up immediately
// under contention, so a search thread never blocks on the feedback
// table (the hot-path purity contract enforced by tools/analyze). The
// table is advisory — a skipped prediction falls back to the fixed
// budget and a dropped observation only delays EWMA convergence by one
// sample — so losing an access under contention is strictly better than
// stalling a query on it. Drops are counted (Counters::dropped_records)
// so the trade stays observable.
#ifndef GQR_PLAN_FEEDBACK_TABLE_H_
#define GQR_PLAN_FEEDBACK_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/atomic.h"
#include "util/sync.h"

namespace gqr {

class FeedbackTable {
 public:
  struct Options {
    /// Slot count; rounded up to a power of two, minimum kProbeWindow.
    size_t capacity = 4096;
    /// EWMA weight when the observation exceeds the stored mean. Large:
    /// a hard query raises the bucket's prediction almost immediately.
    double alpha_up = 0.5;
    /// EWMA weight when the observation is below the stored mean. Small:
    /// predictions drift down only over a run of easy queries.
    double alpha_down = 0.15;
  };

  /// Monotonic counters, snapshotted under the lock.
  struct Counters {
    uint64_t records = 0;    // Record() calls applied.
    uint64_t evictions = 0;  // Slots recycled under pressure.
    size_t entries = 0;      // Live slots (<= capacity).
    uint64_t dropped_records = 0;  // TryRecord() calls lost to contention.
  };

  explicit FeedbackTable(const Options& options);

  /// Looks up the EWMA for `key`. Returns false (leaving *ewma alone) on
  /// a miss. Shared lock: concurrent predictions never serialize.
  bool Predict(uint64_t key, double* ewma) const GQR_EXCLUDES(mu_);

  /// Folds one observed probes-to-convergence value into `key`'s EWMA,
  /// creating (or evicting into) a slot as needed. Exclusive lock.
  void Record(uint64_t key, double observed) GQR_EXCLUDES(mu_);

  /// Non-blocking Predict for the serving hot path: if the shared lock
  /// cannot be taken immediately (a writer holds or is acquiring it),
  /// reports a miss instead of waiting. Misses on contention are safe —
  /// the caller falls back to its fixed budget.
  bool TryPredict(uint64_t key, double* ewma) const GQR_EXCLUDES(mu_);

  /// Non-blocking Record for the serving hot path: drops the observation
  /// (counting it in Counters::dropped_records) when the exclusive lock
  /// is contended. Returns true iff the observation was applied.
  bool TryRecord(uint64_t key, double observed) GQR_EXCLUDES(mu_);

  Counters counters() const GQR_EXCLUDES(mu_);
  size_t capacity() const { return slots_capacity_; }

 private:
  /// Linear-probe window per key; eviction picks the stalest slot in it.
  static constexpr size_t kProbeWindow = 8;

  struct Slot {
    uint64_t key = 0;
    double ewma = 0.0;
    uint64_t stamp = 0;  // clock_ at last Record; eviction order.
    bool used = false;
  };

  size_t SlotBase(uint64_t key) const;

  /// Lock-held bodies shared by the blocking and try- entry points.
  bool PredictLocked(uint64_t key, double* ewma) const
      GQR_REQUIRES_SHARED(mu_);
  void RecordLocked(uint64_t key, double observed) GQR_REQUIRES(mu_);

  const Options options_;
  size_t slots_capacity_;  // Power of two.
  size_t mask_;

  mutable SharedMutex mu_;
  std::vector<Slot> slots_ GQR_GUARDED_BY(mu_);
  uint64_t clock_ GQR_GUARDED_BY(mu_) = 0;
  Counters counters_ GQR_GUARDED_BY(mu_);
  // Outside the lock by design: bumped exactly when the lock could not
  // be taken. Folded into the Counters snapshot on read.
  Atomic<uint64_t> dropped_records_{0};
};

}  // namespace gqr

#endif  // GQR_PLAN_FEEDBACK_TABLE_H_
