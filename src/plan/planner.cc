#include "plan/planner.h"

#include <algorithm>
#include <cmath>

#include "core/searcher.h"
#include "util/check.h"

namespace gqr {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits of a mixed word.
double UnitDouble(uint64_t mixed) {
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace

uint64_t QueryFeatureKey(const QueryHashInfo& info) {
  const size_t m = info.flip_costs.size();
  if (m == 0) return SplitMix64(0);
  double sum = 0.0;
  double sum_sq = 0.0;
  double min_cost = info.flip_costs[0];
  for (double c : info.flip_costs) {
    sum += c;
    sum_sq += c * c;
    min_cost = std::min(min_cost, c);
  }
  const double md = static_cast<double>(m);
  const double mean = sum / md;
  uint64_t dispersion_bucket = 0;
  uint64_t min_ratio_bucket = 0;
  if (mean > 0.0) {
    // Coefficient of variation of the cost vector: flat distributions
    // (many near-tie flips) converge late, spiky ones early.
    const double var = std::max(0.0, sum_sq / md - mean * mean);
    const double cv = std::sqrt(var) / mean;
    dispersion_bucket =
        static_cast<uint64_t>(std::min(31.0, std::floor(cv * 8.0)));
    // How cheap the cheapest flip is, log-scaled: a near-zero minimum
    // cost means the query sits on a bucket boundary.
    const double ratio = std::max(min_cost / mean, 1e-9);
    min_ratio_bucket =
        static_cast<uint64_t>(std::min(31.0, std::floor(-std::log2(ratio))));
  }
  const uint64_t packed = static_cast<uint64_t>(m) |
                          (dispersion_bucket << 8) | (min_ratio_bucket << 16);
  return SplitMix64(packed);
}

BudgetPlanner::BudgetPlanner(const PlannerOptions& options)
    : options_(options), table_(options.feedback) {
  GQR_CHECK_GE(options.headroom, 1.0)
      << "headroom < 1 would plan below observed convergence";
  GQR_CHECK(options.explore_epsilon >= 0.0 && options.explore_epsilon <= 1.0)
      << "explore_epsilon must lie in [0, 1]";
}

bool BudgetPlanner::WouldExplore(uint64_t ticket) const {
  if (options_.explore_epsilon <= 0.0) return false;
  return UnitDouble(SplitMix64(options_.seed ^ (ticket * 0x2545f4914f6cdd1dULL
                                                ))) < options_.explore_epsilon;
}

PlanDecision BudgetPlanner::Plan(uint64_t feature_key, uint64_t ticket,
                                 size_t fixed_budget) const {
  PlanDecision decision;
  decision.budget = fixed_budget;
  if (!options_.learn) return decision;
  if (WouldExplore(ticket)) {
    decision.explored = true;
    return decision;
  }
  // Try-acquire: Plan runs inside the search hot path (gqr-analyze
  // hot-path purity gate), so a contended table reads as a miss and the
  // query proceeds on its fixed budget rather than blocking.
  double ewma = 0.0;
  if (!table_.TryPredict(feature_key, &ewma)) return decision;
  const double planned = std::ceil(options_.headroom * ewma);
  size_t budget = planned >= static_cast<double>(SIZE_MAX)
                      ? SIZE_MAX
                      : static_cast<size_t>(std::max(planned, 1.0));
  budget = std::max(budget, options_.min_budget);
  if (fixed_budget != 0) budget = std::min(budget, fixed_budget);
  decision.budget = budget;
  decision.from_feedback = fixed_budget == 0 || budget < fixed_budget;
  return decision;
}

void BudgetPlanner::Observe(uint64_t feature_key, const PlanDecision& decision,
                            const SearchStats& stats) const {
  if (!options_.learn) return;
  // Censoring discipline: a run truncated by its own learned budget
  // observes convergence <= budget by construction; learning from it
  // would ratchet the EWMA toward zero. Termination-rule stops are the
  // exception — the Theorem-2 bound proves the query converged.
  if (decision.from_feedback && !stats.terminated) return;
  const double observed =
      static_cast<double>(std::max<size_t>(stats.items_to_last_improvement,
                                           1));
  // Try-acquire (see Plan): a dropped observation delays convergence by
  // one sample, which beats stalling a serving thread on the writer lock.
  table_.TryRecord(feature_key, observed);
}

}  // namespace gqr
