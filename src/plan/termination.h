// TerminationPolicy: the margin-scaled Theorem-2 early-termination rule
// of the adaptive probe-budget planner (DESIGN.md section 16).
//
// Theorem 2 gives, for any item o of a bucket b, the lower bound
// ||o - q|| >= mu * QD(q, b). Probers emit buckets in non-decreasing
// score order and expose qd_bound() — a lower bound on the QD of the
// last bucket and of every bucket still to come — so once
//
//     mu * qd_bound() >= margin * d_k
//
// (d_k the running k-th nearest distance), no unprobed bucket can hold
// an item closer than margin * d_k, and probing stops. The margin
// trades exactness for probe cost:
//
//   margin = inf  never fires: results are bit-identical to the same
//                 search without a policy (the differential contract of
//                 tests/adaptive_plan_test.cc).
//   margin = 1    the sound stop of §4.1: nothing the search skipped
//                 could have entered the top-k. Pure savings.
//   margin < 1    aggressive: stops once remaining items provably lie
//                 beyond margin * d_k. Every returned distance is then
//                 guaranteed within a 1/margin factor of what the full
//                 fixed-budget search over the same stream returns
//                 (per-rank: d_adaptive[i] <= d_fixed[i] / margin — see
//                 the proof sketch in DESIGN.md section 16).
//
// Under GQR_VALIDATE every firing of the rule is re-derived from the
// exact Theorem-2 inequality by core/validators.cc, and every evaluated
// candidate is checked against mu * qd_bound() on the live stream.
#ifndef GQR_PLAN_TERMINATION_H_
#define GQR_PLAN_TERMINATION_H_

#include <cmath>
#include <limits>

namespace gqr {

struct TerminationPolicy {
  /// Theorem 2 constant of the prober's hasher (core/qd.h TheoremTwoMu);
  /// 0 disables the rule.
  double mu = 0.0;
  /// Stop threshold scale on the k-th distance; must be positive.
  /// Infinity (the default) disables the rule.
  double margin = std::numeric_limits<double>::infinity();

  /// True when the rule can ever fire. A policy with mu = 0 or an
  /// infinite margin is inert and the search is bit-identical to one
  /// with no policy at all.
  bool enabled() const { return mu > 0.0 && std::isfinite(margin); }

  /// True when margin is usable (positive; infinity allowed — it simply
  /// never fires). Checked by the Searcher at query start.
  bool valid() const { return margin > 0.0 && mu >= 0.0; }

  /// The rule itself: every unprobed item lies at least mu * qd_bound
  /// away; stop once that provably exceeds margin * kth_distance.
  bool ShouldStop(double qd_bound, double kth_distance) const {
    return mu * qd_bound >= margin * kth_distance;
  }
};

}  // namespace gqr

#endif  // GQR_PLAN_TERMINATION_H_
