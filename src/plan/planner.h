// BudgetPlanner: AQO-style per-query probe-budget prediction with
// execution feedback (DESIGN.md section 16, ROADMAP item 2).
//
// GQR's probing knob — the candidate budget N — is static, but query
// difficulty varies wildly: the repo's own recall-vs-time benches show
// most queries converge long before a fixed budget is spent. The
// planner closes that gap with the learn-on-execution loop of
// PostgreSQL's AQO extension:
//
//   hash the query's features  ->  QueryFeatureKey (the flipping-cost
//                                  distribution: how contested the
//                                  query's quantization is)
//   store observed outcomes    ->  FeedbackTable EWMA of
//                                  probes-to-convergence
//   predict the budget         ->  Plan(): headroom * EWMA, clamped to
//                                  [min_budget, fixed budget]
//   learn from the execution   ->  Observe() after every search
//
// Censoring discipline: a search truncated by its own learned budget
// observes convergence <= budget by construction; feeding that back
// would ratchet predictions toward zero. Observe() therefore learns
// only from *uncensored* executions — cold misses and epsilon-greedy
// explorations (both run the full fixed budget) and searches stopped by
// the Theorem-2 termination rule (provably converged). Exploration is
// deterministic: the decision is a pure function of (seed, ticket),
// where entry points derive tickets as base + query index — so a fixed
// seed replays the exact exploration schedule regardless of thread
// interleaving (tested).
//
// Threading: Plan and Observe are const and internally synchronized
// (the FeedbackTable's SharedMutex), so one planner instance may be
// shared by every concurrent search of a serving process. The hook
// rides SearchOptions (core/searcher.h): set `plan.planner`, and
// BatchSearch / ShardedSearch / QueryService fill the per-query
// feature key and ticket; single-query callers fill them directly.
#ifndef GQR_PLAN_PLANNER_H_
#define GQR_PLAN_PLANNER_H_

#include <cstddef>
#include <cstdint>

#include "hash/binary_hasher.h"
#include "plan/feedback_table.h"
#include "plan/termination.h"

namespace gqr {

struct SearchStats;

/// Feature hash of one query's flipping-cost distribution. Queries whose
/// cheapest flips are tiny relative to the mean sit near bucket
/// boundaries — many near-tie buckets, late convergence — while queries
/// with uniformly large costs converge almost immediately. The key
/// quantizes (code length, cost dispersion, min-cost ratio) into coarse
/// buckets and mixes them, so similar queries share a feedback slot.
/// Depends only on the QueryHashInfo, which is bit-identical across the
/// single-query, batched, sharded, and served hashing paths.
uint64_t QueryFeatureKey(const QueryHashInfo& info);

/// What Plan() decided for one query.
struct PlanDecision {
  /// Effective candidate budget (0 keeps "unlimited" semantics).
  size_t budget = 0;
  /// Epsilon-greedy exploration fired: the full fixed budget ran so the
  /// observation refreshes the feedback table.
  bool explored = false;
  /// The budget came from a feedback-table prediction (and is smaller
  /// than the fixed budget — the censoring marker for Observe).
  bool from_feedback = false;
};

struct PlannerOptions {
  /// Master switch: false makes Plan() return the fixed budget untouched
  /// and Observe() a no-op — the planner is then inert and results are
  /// bit-identical to planner-free search (the differential contract).
  bool learn = true;
  /// Safety multiplier on the predicted probes-to-convergence.
  double headroom = 1.6;
  /// Fraction of queries that ignore the prediction and run the full
  /// fixed budget, keeping the feedback fresh (epsilon-greedy).
  double explore_epsilon = 0.05;
  /// Seed of the deterministic exploration schedule.
  uint64_t seed = 42;
  /// Floor on any predicted budget (also floored at k by the Searcher).
  size_t min_budget = 64;
  FeedbackTable::Options feedback;
};

class BudgetPlanner {
 public:
  explicit BudgetPlanner(const PlannerOptions& options);

  /// Plans the starting budget for one query. `fixed_budget` is the
  /// caller's SearchOptions::max_candidates (0 = unlimited); the
  /// returned budget never exceeds it. Pure read + deterministic
  /// exploration; safe from concurrent searches.
  PlanDecision Plan(uint64_t feature_key, uint64_t ticket,
                    size_t fixed_budget) const;

  /// Folds one finished search back into the feedback table. `decision`
  /// must be the Plan() result the search ran under; budget-censored
  /// executions are skipped (see the censoring discipline above).
  /// Called by the Searcher after every planned search.
  void Observe(uint64_t feature_key, const PlanDecision& decision,
               const SearchStats& stats) const;

  /// True when Plan(feature_key, ticket, ...) would explore — exposed so
  /// tests can assert the schedule is a pure function of (seed, ticket).
  bool WouldExplore(uint64_t ticket) const;

  const PlannerOptions& options() const { return options_; }
  FeedbackTable::Counters feedback_counters() const {
    return table_.counters();
  }

 private:
  const PlannerOptions options_;
  /// Mutable: Observe() must be callable through the const planner
  /// pointer SearchOptions carries; the table is internally
  /// synchronized, so const-correctness here means "safe to share".
  mutable FeedbackTable table_;
};

}  // namespace gqr

#endif  // GQR_PLAN_PLANNER_H_
