#include "plan/feedback_table.h"

#include "util/check.h"

namespace gqr {

namespace {

// SplitMix64 finalizer: feature keys are already mixed, but re-mixing
// here keeps slot placement well spread even for adversarial or
// hand-constructed keys (tests address slots directly).
uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FeedbackTable::FeedbackTable(const Options& options)
    : options_(options),
      slots_capacity_(
          RoundUpPow2(options.capacity < kProbeWindow ? kProbeWindow
                                                      : options.capacity)),
      mask_(slots_capacity_ - 1) {
  GQR_CHECK(options.alpha_up > 0.0 && options.alpha_up <= 1.0)
      << "alpha_up must lie in (0, 1]";
  GQR_CHECK(options.alpha_down > 0.0 && options.alpha_down <= 1.0)
      << "alpha_down must lie in (0, 1]";
  // No other thread can hold a reference yet, but initializing the
  // guarded storage under the lock keeps the capability contract
  // unconditional (the discipline of serve/query_service.cc).
  WriterLock lock(mu_);
  slots_.assign(slots_capacity_, Slot{});
}

size_t FeedbackTable::SlotBase(uint64_t key) const {
  return static_cast<size_t>(MixKey(key)) & mask_;
}

bool FeedbackTable::Predict(uint64_t key, double* ewma) const {
  ReaderLock lock(mu_);
  return PredictLocked(key, ewma);
}

bool FeedbackTable::TryPredict(uint64_t key, double* ewma) const {
  if (!mu_.TryLockShared()) return false;
  const bool hit = PredictLocked(key, ewma);
  mu_.UnlockShared();
  return hit;
}

bool FeedbackTable::PredictLocked(uint64_t key, double* ewma) const {
  const size_t base = SlotBase(key);
  for (size_t i = 0; i < kProbeWindow; ++i) {
    const Slot& slot = slots_[(base + i) & mask_];
    if (slot.used && slot.key == key) {
      *ewma = slot.ewma;
      return true;
    }
  }
  return false;
}

void FeedbackTable::Record(uint64_t key, double observed) {
  WriterLock lock(mu_);
  RecordLocked(key, observed);
}

bool FeedbackTable::TryRecord(uint64_t key, double observed) {
  if (!mu_.TryLock()) {
    dropped_records_.FetchAdd(1);
    return false;
  }
  RecordLocked(key, observed);
  mu_.Unlock();
  return true;
}

void FeedbackTable::RecordLocked(uint64_t key, double observed) {
  const size_t base = SlotBase(key);
  ++clock_;
  ++counters_.records;

  Slot* match = nullptr;
  Slot* free_slot = nullptr;
  Slot* stalest = nullptr;
  for (size_t i = 0; i < kProbeWindow; ++i) {
    Slot& slot = slots_[(base + i) & mask_];
    if (slot.used && slot.key == key) {
      match = &slot;
      break;
    }
    if (!slot.used) {
      if (free_slot == nullptr) free_slot = &slot;
    } else if (stalest == nullptr || slot.stamp < stalest->stamp) {
      stalest = &slot;
    }
  }

  if (match != nullptr) {
    const double alpha =
        observed > match->ewma ? options_.alpha_up : options_.alpha_down;
    match->ewma += alpha * (observed - match->ewma);
    match->stamp = clock_;
    return;
  }

  Slot* target = free_slot;
  if (target == nullptr) {
    // Window full of other keys: recycle the least-recently-recorded
    // slot. The table is bounded by construction, so under pressure the
    // working set degrades to the hottest feature signatures — exactly
    // the entries worth keeping.
    target = stalest;
    ++counters_.evictions;
    --counters_.entries;  // Rebalanced by the ++ below.
  }
  target->key = key;
  target->ewma = observed;
  target->stamp = clock_;
  target->used = true;
  ++counters_.entries;
}

FeedbackTable::Counters FeedbackTable::counters() const {
  ReaderLock lock(mu_);
  Counters snap = counters_;
  snap.dropped_records = dropped_records_.Load();
  return snap;
}

}  // namespace gqr
