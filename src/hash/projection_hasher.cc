#include "hash/projection_hasher.h"

#include <algorithm>
#include <cmath>

#include "util/parallel_for.h"

namespace gqr {

namespace {

// Rows per HashDataset tile: large enough that one ProjectBatch GEMM
// amortizes the kernel setup, small enough that the tile's projections
// (tile * m doubles, <= 512 KB at m = 64) stay cache-resident.
constexpr size_t kHashTileRows = 1024;

// Per-thread projection buffer shared by the single-item entry points and
// the HashDataset tiles. Grows monotonically; hashers of any code length
// or tile size reuse it, and pool workers keep theirs across datasets.
std::vector<double>& TlProjection() {
  thread_local std::vector<double> projection;
  return projection;
}

double* TlProjectionAtLeast(size_t n) {
  std::vector<double>& p = TlProjection();
  if (p.size() < n) p.resize(n);
  return p.data();
}

}  // namespace

void BinaryHasher::HashQueryInto(const float* q, QueryHashInfo* info) const {
  *info = HashQuery(q);
}

void BinaryHasher::HashQueryBatch(const float* queries, size_t count,
                                  size_t stride,
                                  std::vector<double>* projection_scratch,
                                  QueryHashInfo* infos) const {
  (void)projection_scratch;
  for (size_t q = 0; q < count; ++q) {
    HashQueryInto(queries + q * stride, &infos[q]);
  }
}

std::vector<Code> BinaryHasher::HashDataset(const Dataset& dataset) const {
  std::vector<Code> codes(dataset.size());
  ParallelFor(0, dataset.size(), [&](size_t i) {
    codes[i] = HashItem(dataset.Row(static_cast<ItemId>(i)));
  });
  return codes;
}

void ProjectionHasher::ProjectBatch(const float* queries, size_t count,
                                    size_t stride, double* out) const {
  const size_t m = static_cast<size_t>(code_length());
  for (size_t q = 0; q < count; ++q) {
    Project(queries + q * stride, out + q * m);
  }
}

Code ProjectionHasher::Quantize(const double* projection) const {
  const int m = code_length();
  Code c = 0;
  for (int i = 0; i < m; ++i) {
    // Thresholding rule of §2.1: bit = 1 iff projection is non-negative.
    if (projection[i] >= 0.0) c |= Code{1} << i;
  }
  return c;
}

Code ProjectionHasher::HashItem(const float* x) const {
  double* p = TlProjectionAtLeast(code_length());
  Project(x, p);
  return Quantize(p);
}

QueryHashInfo ProjectionHasher::HashQuery(const float* q) const {
  QueryHashInfo info;
  HashQueryInto(q, &info);
  return info;
}

void ProjectionHasher::HashQueryInto(const float* q,
                                     QueryHashInfo* info) const {
  const int m = code_length();
  double* p = TlProjectionAtLeast(m);
  Project(q, p);
  info->code = Quantize(p);
  info->flip_costs.resize(m);
  for (int i = 0; i < m; ++i) info->flip_costs[i] = std::abs(p[i]);
}

void ProjectionHasher::HashQueryBatch(const float* queries, size_t count,
                                      size_t stride,
                                      std::vector<double>* projection_scratch,
                                      QueryHashInfo* infos) const {
  const size_t m = static_cast<size_t>(code_length());
  if (projection_scratch->size() < count * m) {
    projection_scratch->resize(count * m);
  }
  double* p = projection_scratch->data();
  ProjectBatch(queries, count, stride, p);
  for (size_t q = 0; q < count; ++q) {
    const double* row = p + q * m;
    infos[q].code = Quantize(row);
    infos[q].flip_costs.resize(m);
    for (size_t i = 0; i < m; ++i) infos[q].flip_costs[i] = std::abs(row[i]);
  }
}

std::vector<Code> ProjectionHasher::HashDataset(const Dataset& dataset) const {
  const size_t m = static_cast<size_t>(code_length());
  std::vector<Code> codes(dataset.size());
  const size_t num_tiles =
      (dataset.size() + kHashTileRows - 1) / kHashTileRows;
  // One GEMM per tile instead of one GEMV per row; tiles are
  // embarrassingly parallel and each worker projects into its own
  // thread-local buffer. min_parallel = 2: even a handful of tiles is
  // worth sharding, the per-tile work is thousands of dot products.
  ParallelFor(
      0, num_tiles,
      [&](size_t t) {
        const size_t lo = t * kHashTileRows;
        const size_t hi = std::min(dataset.size(), lo + kHashTileRows);
        double* p = TlProjectionAtLeast((hi - lo) * m);
        ProjectBatch(dataset.Row(static_cast<ItemId>(lo)), hi - lo,
                     dataset.dim(), p);
        for (size_t r = lo; r < hi; ++r) {
          codes[r] = Quantize(p + (r - lo) * m);
        }
      },
      /*min_parallel=*/2);
  return codes;
}

}  // namespace gqr
