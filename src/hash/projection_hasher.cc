#include "hash/projection_hasher.h"

#include <cmath>

#include "util/parallel_for.h"

namespace gqr {

std::vector<Code> BinaryHasher::HashDataset(const Dataset& dataset) const {
  std::vector<Code> codes(dataset.size());
  ParallelFor(0, dataset.size(), [&](size_t i) {
    codes[i] = HashItem(dataset.Row(static_cast<ItemId>(i)));
  });
  return codes;
}

Code ProjectionHasher::Quantize(const double* projection) const {
  const int m = code_length();
  Code c = 0;
  for (int i = 0; i < m; ++i) {
    // Thresholding rule of §2.1: bit = 1 iff projection is non-negative.
    if (projection[i] >= 0.0) c |= Code{1} << i;
  }
  return c;
}

Code ProjectionHasher::HashItem(const float* x) const {
  std::vector<double> p(code_length());
  Project(x, p.data());
  return Quantize(p.data());
}

QueryHashInfo ProjectionHasher::HashQuery(const float* q) const {
  const int m = code_length();
  std::vector<double> p(m);
  Project(q, p.data());
  QueryHashInfo info;
  info.code = Quantize(p.data());
  info.flip_costs.resize(m);
  for (int i = 0; i < m; ++i) info.flip_costs[i] = std::abs(p[i]);
  return info;
}

}  // namespace gqr
