// ProjectionHasher: base class for sign-of-projection binary hashers.
//
// Covers LSH, PCAH, ITQ, and SH: the item is projected to an m-dimensional
// real vector p(x) (paper §2.1 "projection"), then each entry is
// thresholded at zero ("quantization"): c_i(x) = 1 iff p_i(x) >= 0.
// Flipping cost of bit i for a query is |p_i(q)|.
#ifndef GQR_HASH_PROJECTION_HASHER_H_
#define GQR_HASH_PROJECTION_HASHER_H_

#include <vector>

#include "hash/binary_hasher.h"
#include "la/matrix.h"

namespace gqr {

class ProjectionHasher : public BinaryHasher {
 public:
  /// Writes the m projection values of x into out (length code_length()).
  virtual void Project(const float* x, double* out) const = 0;

  /// Projects `count` items (row-major, `stride` floats between row
  /// starts) into out (count x code_length(), row-major). The default
  /// loops Project; LinearHasher overrides it with one blocked GEMM
  /// through the dispatched projection kernels. Contract: row q of the
  /// output is bit-identical to Project(queries + q * stride, ...).
  virtual void ProjectBatch(const float* queries, size_t count,
                            size_t stride, double* out) const;

  Code HashItem(const float* x) const final;
  QueryHashInfo HashQuery(const float* q) const final;
  void HashQueryInto(const float* q, QueryHashInfo* info) const final;
  void HashQueryBatch(const float* queries, size_t count, size_t stride,
                      std::vector<double>* projection_scratch,
                      QueryHashInfo* infos) const final;
  std::vector<Code> HashDataset(const Dataset& dataset) const final;

  /// Quantization of an already-computed projection vector.
  Code Quantize(const double* projection) const;

  /// The hashing matrix H (m x d) when the projection is affine
  /// (p(x) = H (x - offset)); empty for non-affine hashers such as SH.
  /// Exposed for the Theorem 1/2 constant M = sigma_max(H) used by
  /// early-stop and by the lower-bound property tests.
  virtual Matrix HashingMatrix() const { return Matrix(); }
};

}  // namespace gqr

#endif  // GQR_HASH_PROJECTION_HASHER_H_
