#include "hash/lsh.h"

#include "util/check.h"
#include "util/random.h"

namespace gqr {

LinearHasher TrainLsh(const Dataset& dataset, size_t dim,
                      const LshOptions& options) {
  GQR_CHECK(options.code_length >= 1 && options.code_length <= 64)
      << "code length " << options.code_length;
  Rng rng(options.seed);
  Matrix w = Matrix::RandomGaussian(options.code_length, dim, &rng);

  std::vector<double> offset(dim, 0.0);
  if (options.center_on_mean && !dataset.empty()) {
    GQR_CHECK_EQ(dataset.dim(), dim);
    std::vector<uint32_t> rows;
    if (dataset.size() > options.max_train_samples) {
      rows = rng.SampleWithoutReplacement(
          static_cast<uint32_t>(dataset.size()),
          static_cast<uint32_t>(options.max_train_samples));
    } else {
      rows.resize(dataset.size());
      for (size_t i = 0; i < dataset.size(); ++i) {
        rows[i] = static_cast<uint32_t>(i);
      }
    }
    for (uint32_t r : rows) {
      const float* x = dataset.Row(r);
      for (size_t j = 0; j < dim; ++j) offset[j] += x[j];
    }
    for (size_t j = 0; j < dim; ++j) {
      offset[j] /= static_cast<double>(rows.size());
    }
  }
  return LinearHasher(std::move(w), std::move(offset), "LSH");
}

}  // namespace gqr
