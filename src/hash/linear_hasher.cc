#include "hash/linear_hasher.h"

#include <algorithm>
#include <vector>

#include "la/simd_kernels.h"
#include "util/check.h"

namespace gqr {

namespace {

// Queries centered per GEMM call: the centered block is kQueryBlock x d
// doubles (64 KB at d = 128), small enough to stay in L2 next to W while
// the gemm_nt kernel sweeps it.
constexpr size_t kQueryBlock = 64;

// Per-thread centered-input buffer (holds up to kQueryBlock rows).
double* TlCenteredAtLeast(size_t n) {
  thread_local std::vector<double> centered;
  if (centered.size() < n) centered.resize(n);
  return centered.data();
}

}  // namespace

LinearHasher::LinearHasher(Matrix w, std::vector<double> offset,
                           std::string name)
    : w_(std::move(w)), offset_(std::move(offset)), name_(std::move(name)) {
  GQR_CHECK(w_.rows() >= 1 && w_.rows() <= 64)
      << "hashing matrix rows " << w_.rows();
  GQR_CHECK_EQ(offset_.size(), w_.cols());
}

void LinearHasher::Project(const float* x, double* out) const {
  const size_t d = w_.cols();
  const ProjectionKernels& k = ProjKernels();
  double* xc = TlCenteredAtLeast(d);
  k.center(x, offset_.data(), d, xc);
  k.gemv(w_.Row(0), w_.rows(), d, xc, out);
}

void LinearHasher::ProjectBatch(const float* queries, size_t count,
                                size_t stride, double* out) const {
  const size_t d = w_.cols();
  const size_t m = w_.rows();
  const ProjectionKernels& k = ProjKernels();
  double* xc = TlCenteredAtLeast(kQueryBlock * d);
  for (size_t q0 = 0; q0 < count; q0 += kQueryBlock) {
    const size_t qn = std::min(count - q0, kQueryBlock);
    for (size_t q = 0; q < qn; ++q) {
      k.center(queries + (q0 + q) * stride, offset_.data(), d, xc + q * d);
    }
    // One GEMM per block: every output row runs the same canonical dot
    // accumulation as the gemv in Project, so batch == single bitwise.
    k.gemm_nt(xc, qn, d, w_.Row(0), m, d, d, out + q0 * m, m);
  }
}

}  // namespace gqr
