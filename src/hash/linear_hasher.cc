#include "hash/linear_hasher.h"

#include <cassert>

namespace gqr {

LinearHasher::LinearHasher(Matrix w, std::vector<double> offset,
                           std::string name)
    : w_(std::move(w)), offset_(std::move(offset)), name_(std::move(name)) {
  assert(w_.rows() >= 1 && w_.rows() <= 64);
  assert(offset_.size() == w_.cols());
}

void LinearHasher::Project(const float* x, double* out) const {
  const size_t d = w_.cols();
  const size_t m = w_.rows();
  for (size_t i = 0; i < m; ++i) {
    const double* row = w_.Row(i);
    double dot = 0.0;
    for (size_t j = 0; j < d; ++j) {
      dot += row[j] * (static_cast<double>(x[j]) - offset_[j]);
    }
    out[i] = dot;
  }
}

}  // namespace gqr
