// BinaryHasher: the abstraction every querying method is written against.
//
// A hasher maps an item to an m-bit bucket code, and maps a *query* to its
// code plus a vector of per-bit *flipping costs* — the cost of pretending
// bit i of the query's code were flipped. Quantization distance (QD,
// Definition 1 of the paper) of a bucket is then the sum of flipping costs
// over the bits where the bucket's signature differs from the query code.
//
// For sign-of-projection hashers (LSH/PCAH/ITQ/SH) the flipping cost of
// bit i is |p_i(q)|, the magnitude of the i-th projection. For K-means
// hashing it is the codeword-swap cost of the appendix. Keeping probers
// agnostic of where costs come from is exactly what makes QD ranking
// "general" (paper §4, appendix).
#ifndef GQR_HASH_BINARY_HASHER_H_
#define GQR_HASH_BINARY_HASHER_H_

#include <vector>

#include "data/dataset.h"
#include "util/bits.h"

namespace gqr {

/// Everything a querying method needs to know about one query.
struct QueryHashInfo {
  /// The query's own bucket signature c(q).
  Code code = 0;
  /// flip_costs[i] >= 0 is the cost of flipping bit i; QD of bucket b is
  /// sum_i (c_i(q) XOR b_i) * flip_costs[i].
  std::vector<double> flip_costs;

  int code_length() const { return static_cast<int>(flip_costs.size()); }
};

/// Interface of a learned (or random) binary hash function.
class BinaryHasher {
 public:
  virtual ~BinaryHasher() = default;

  /// Number of code bits m (<= 64).
  virtual int code_length() const = 0;
  /// Input dimensionality d.
  virtual size_t dim() const = 0;

  /// Bucket signature of an item.
  virtual Code HashItem(const float* x) const = 0;

  /// Code plus per-bit flipping costs for a query.
  virtual QueryHashInfo HashQuery(const float* q) const = 0;

  /// Allocation-aware variant: writes into `*info`, reusing its
  /// flip_costs capacity. The default delegates to HashQuery;
  /// ProjectionHasher overrides it to be heap-free once `info` is warm.
  virtual void HashQueryInto(const float* q, QueryHashInfo* info) const;

  /// Hashes `count` queries laid out row-major with `stride` floats
  /// between consecutive query starts, writing infos[0..count). All
  /// working memory comes from the caller-owned `projection_scratch`
  /// (grown as needed, capacity reused across calls) and the infos' own
  /// flip_costs buffers, so a warm caller performs no heap allocation.
  /// Results are bit-identical to per-query HashQuery — batched hashing
  /// never changes a code or a flipping cost. The default loops
  /// HashQueryInto; ProjectionHasher overrides it with one blocked GEMM.
  virtual void HashQueryBatch(const float* queries, size_t count,
                              size_t stride,
                              std::vector<double>* projection_scratch,
                              QueryHashInfo* infos) const;

  /// Hashes every row of the dataset (parallel). The default
  /// implementation calls HashItem per row; ProjectionHasher overrides it
  /// with tiled batched projection (same codes, one GEMM per tile).
  virtual std::vector<Code> HashDataset(const Dataset& dataset) const;
};

}  // namespace gqr

#endif  // GQR_HASH_BINARY_HASHER_H_
