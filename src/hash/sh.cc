#include "hash/sh.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace gqr {

ShHasher::ShHasher(PcaModel pca, std::vector<BitFunction> bits)
    : pca_(std::move(pca)), bits_(std::move(bits)) {
  GQR_CHECK(!bits_.empty() && bits_.size() <= 64)
      << "bit count " << bits_.size();
}

void ShHasher::Project(const float* x, double* out) const {
  // Thread-local PCA buffer: Project sits on the query hot path and must
  // not allocate (see the allocation-count tests).
  thread_local std::vector<double> v;
  if (v.size() < pca_.num_components()) v.resize(pca_.num_components());
  pca_.Project(x, v.data());
  for (size_t i = 0; i < bits_.size(); ++i) {
    const BitFunction& f = bits_[i];
    const double u = (v[f.pca_dim] - f.min_value) / f.range;
    out[i] = std::sin(M_PI / 2.0 + f.mode_k * M_PI * u);
  }
}

ShHasher TrainSh(const Dataset& dataset, const ShOptions& options) {
  const int m = options.code_length;
  GQR_CHECK(m >= 1 && m <= 64) << "code length " << m;
  GQR_CHECK_LE(static_cast<size_t>(m), dataset.dim())
      << "SH needs at least as many dimensions as code bits";
  Rng rng(options.seed);

  PcaModel pca = FitPca(dataset.data(), dataset.size(), dataset.dim(),
                        static_cast<size_t>(m), options.max_train_samples,
                        &rng);

  // Per-direction ranges over a training sample.
  std::vector<uint32_t> rows;
  if (dataset.size() > options.max_train_samples) {
    rows = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(dataset.size()),
        static_cast<uint32_t>(options.max_train_samples));
  } else {
    rows.resize(dataset.size());
    for (size_t i = 0; i < dataset.size(); ++i) {
      rows[i] = static_cast<uint32_t>(i);
    }
  }
  std::vector<double> mins(m, 1e300), maxs(m, -1e300);
  std::vector<double> v(m);
  for (uint32_t r : rows) {
    pca.Project(dataset.Row(r), v.data());
    for (int j = 0; j < m; ++j) {
      mins[j] = std::min(mins[j], v[j]);
      maxs[j] = std::max(maxs[j], v[j]);
    }
  }

  // Candidate eigenfunctions: mode k on direction j has eigenvalue
  // proportional to (k / range_j)^2. Keep the m smallest.
  std::vector<ShHasher::BitFunction> candidates;
  for (int j = 0; j < m; ++j) {
    double range = maxs[j] - mins[j];
    if (range <= 1e-12) range = 1.0;  // Degenerate direction.
    for (int k = 1; k <= m; ++k) {
      ShHasher::BitFunction f;
      f.pca_dim = j;
      f.mode_k = k;
      f.min_value = mins[j];
      f.range = range;
      const double freq = static_cast<double>(k) / range;
      f.eigenvalue = freq * freq;
      candidates.push_back(f);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ShHasher::BitFunction& a,
               const ShHasher::BitFunction& b) {
              return a.eigenvalue < b.eigenvalue;
            });
  candidates.resize(m);
  return ShHasher(std::move(pca), std::move(candidates));
}

}  // namespace gqr
