// SH (spectral hashing, Weiss-Torralba-Fergus): PCA followed by the
// analytical Laplacian eigenfunctions of a uniform distribution on each
// principal direction. Bits are signs of sinusoids; a *non-affine*
// projection hasher, included to demonstrate QD's generality beyond
// linear hash functions (paper §6.4).
#ifndef GQR_HASH_SH_H_
#define GQR_HASH_SH_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "hash/projection_hasher.h"
#include "la/pca.h"

namespace gqr {

struct ShOptions {
  int code_length = 16;
  size_t max_train_samples = 20000;
  uint64_t seed = 42;
};

/// A trained spectral hasher.
class ShHasher : public ProjectionHasher {
 public:
  /// One hash bit: the mode_k-th eigenfunction along PCA direction
  /// pca_dim with training range [min_value, min_value + range].
  struct BitFunction {
    int pca_dim;
    int mode_k;        // >= 1
    double min_value;
    double range;      // > 0
    double eigenvalue; // (mode_k / range)^2 up to constants; ascending
  };

  ShHasher(PcaModel pca, std::vector<BitFunction> bits);

  int code_length() const override {
    return static_cast<int>(bits_.size());
  }
  size_t dim() const override { return pca_.dim(); }

  /// p_i(x) = sin(pi/2 + mode_k * pi * (v_{pca_dim} - min) / range) where
  /// v = PCA projection of x. |p_i| is the flipping cost.
  void Project(const float* x, double* out) const override;

  const std::vector<BitFunction>& bits() const { return bits_; }
  const PcaModel& pca() const { return pca_; }

 private:
  PcaModel pca_;
  std::vector<BitFunction> bits_;
};

/// Trains SH: PCA to code_length components, per-direction ranges from the
/// training sample, then the code_length eigenfunctions with the smallest
/// analytical eigenvalues.
ShHasher TrainSh(const Dataset& dataset, const ShOptions& options);

}  // namespace gqr

#endif  // GQR_HASH_SH_H_
