#include "hash/ssh.h"

#include "la/eigen_sym.h"
#include "la/pca.h"
#include "util/check.h"
#include "util/random.h"

namespace gqr {

LinearHasher TrainSsh(const Dataset& dataset,
                      const std::vector<LabeledPair>& pairs,
                      const SshOptions& options) {
  const size_t d = dataset.dim();
  const int m = options.code_length;
  GQR_CHECK(m >= 1 && m <= 64 && static_cast<size_t>(m) <= d)
      << "code length " << m << " for dimension " << d;
  Rng rng(options.seed);

  // Unsupervised part: covariance of a training sample (reuse the PCA
  // fitter, which also gives us the data mean).
  PcaModel pca = FitPca(dataset.data(), dataset.size(), d, d,
                        options.max_train_samples, &rng);

  // Rebuild Cov = P^T diag(var) P from the full eigenbasis. (FitPca with
  // num_components = d returns all directions.)
  Matrix adjusted(d, d);
  for (size_t c = 0; c < d; ++c) {
    const double var = pca.explained_variance[c];
    if (var <= 0.0) continue;
    const double* dir = pca.components.Row(c);
    for (size_t i = 0; i < d; ++i) {
      const double w = options.unsupervised_weight * var * dir[i];
      double* row = adjusted.Row(i);
      for (size_t j = 0; j < d; ++j) row[j] += w * dir[j];
    }
  }

  // Supervised part: (1/|L|) sum s * outer(x_a - mu, x_b - mu),
  // symmetrized.
  if (!pairs.empty()) {
    const double scale = 1.0 / static_cast<double>(pairs.size());
    std::vector<double> xa(d), xb(d);
    for (const LabeledPair& p : pairs) {
      const float* a = dataset.Row(p.a);
      const float* b = dataset.Row(p.b);
      for (size_t i = 0; i < d; ++i) {
        xa[i] = static_cast<double>(a[i]) - pca.mean[i];
        xb[i] = static_cast<double>(b[i]) - pca.mean[i];
      }
      const double s = scale * static_cast<double>(p.label);
      for (size_t i = 0; i < d; ++i) {
        double* row = adjusted.Row(i);
        for (size_t j = 0; j < d; ++j) {
          // Symmetrized outer product, 0.5 (xa xb^T + xb xa^T).
          row[j] += 0.5 * s * (xa[i] * xb[j] + xb[i] * xa[j]);
        }
      }
    }
  }

  EigenDecomposition eig = EigenSym(adjusted);
  Matrix w(static_cast<size_t>(m), d);
  for (int c = 0; c < m; ++c) {
    for (size_t j = 0; j < d; ++j) {
      w.At(c, j) = eig.eigenvectors.At(j, static_cast<size_t>(c));
    }
  }
  return LinearHasher(std::move(w), std::move(pca.mean), "SSH");
}

std::vector<LabeledPair> MakeMetricPairs(const Dataset& dataset,
                                         size_t num_anchors, uint64_t seed) {
  Rng rng(seed);
  std::vector<LabeledPair> pairs;
  pairs.reserve(num_anchors * 2);
  for (size_t i = 0; i < num_anchors; ++i) {
    const auto anchor = static_cast<ItemId>(rng.Uniform(dataset.size()));
    Neighbors nn = BruteForceKnn(dataset, dataset.Row(anchor), 2);
    // nn.ids[0] is the anchor itself; ids[1] its true nearest neighbor.
    if (nn.ids.size() >= 2 && nn.ids[1] != anchor) {
      pairs.push_back({anchor, nn.ids[1], +1});
    }
    auto far = static_cast<ItemId>(rng.Uniform(dataset.size()));
    if (far != anchor) pairs.push_back({anchor, far, -1});
  }
  return pairs;
}

}  // namespace gqr
