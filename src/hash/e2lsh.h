// E2LSH: p-stable (Gaussian) LSH with *integer* codes,
// h_i(x) = floor((a_i . x + b_i) / w) — the hashing scheme Multi-Probe
// LSH (Lv et al., VLDB'07) is built on.
//
// Included as the paper's §5.3 comparison point: QD/GQR work on binary
// codes with an exclusive-or cost model and a shared generation tree,
// while Multi-Probe LSH perturbs integer codes by ±1 per coordinate and
// must generate (and skip) invalid perturbation sets. See
// core/multiprobe_lsh.h for the querying side.
#ifndef GQR_HASH_E2LSH_H_
#define GQR_HASH_E2LSH_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "la/matrix.h"

namespace gqr {

/// An integer code: one slot index per hash function.
using IntCode = std::vector<int32_t>;

struct E2lshOptions {
  /// Number of hash functions m.
  int num_hashes = 16;
  /// Slot width w; larger widths put more items per bucket. When <= 0,
  /// training picks w so the average bucket holds ~expected_per_bucket
  /// items (estimated from a data sample).
  double bucket_width = 0.0;
  double expected_per_bucket = 10.0;
  size_t max_train_samples = 10000;
  uint64_t seed = 42;
};

/// Per-query information used by Multi-Probe LSH's perturbation scoring.
struct E2lshQueryInfo {
  IntCode code;
  /// distance_down[i] = distance from the query's projection to the lower
  /// slot boundary of coordinate i (cost of perturbing by -1), in [0, w);
  /// the +1 cost is w - distance_down[i].
  std::vector<double> distance_down;
  double bucket_width = 0.0;
};

class E2lshHasher {
 public:
  /// a is m x d (Gaussian rows); b holds m offsets in [0, w).
  E2lshHasher(Matrix a, std::vector<double> b, double w);

  int num_hashes() const { return static_cast<int>(a_.rows()); }
  size_t dim() const { return a_.cols(); }
  double bucket_width() const { return w_; }

  IntCode HashItem(const float* x) const;
  E2lshQueryInfo HashQuery(const float* q) const;
  /// Integer codes for every row (parallel).
  std::vector<IntCode> HashDataset(const Dataset& dataset) const;

 private:
  void Project(const float* x, double* out) const;

  Matrix a_;
  std::vector<double> b_;
  double w_;
};

/// Draws Gaussian hash functions and (optionally) calibrates the slot
/// width on a sample of the dataset.
E2lshHasher TrainE2lsh(const Dataset& dataset, const E2lshOptions& options);

}  // namespace gqr

#endif  // GQR_HASH_E2LSH_H_
