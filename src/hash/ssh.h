// SSH (semi-supervised hashing, Wang-Kumar-Chang CVPR'10): hash
// directions maximize an *adjusted* covariance that rewards separating
// dissimilar labeled pairs and keeping similar pairs together, blended
// with the unsupervised variance term:
//
//   M = (1/|L|) * sum_{(i,j,s) in L} s (x_i - mu)(x_j - mu)^T   (symmetrized)
//       + eta * Cov(X),
//   W = top-m eigenvectors of M  (the orthogonal SSH variant).
//
// One of the learner families the paper's §1/§2 names; like PCAH/ITQ it
// produces a LinearHasher, so every querying method (including GQR)
// applies unchanged.
#ifndef GQR_HASH_SSH_H_
#define GQR_HASH_SSH_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/ground_truth.h"
#include "hash/linear_hasher.h"

namespace gqr {

/// A labeled pair: similar (+1) or dissimilar (-1).
struct LabeledPair {
  ItemId a;
  ItemId b;
  int label;  // +1 similar, -1 dissimilar.
};

struct SshOptions {
  int code_length = 16;
  /// Weight of the unsupervised variance term (eta in the paper's
  /// objective); larger values shade SSH toward plain PCAH.
  double unsupervised_weight = 1.0;
  size_t max_train_samples = 20000;
  uint64_t seed = 42;
};

/// Trains SSH from explicit pairwise supervision.
LinearHasher TrainSsh(const Dataset& dataset,
                      const std::vector<LabeledPair>& pairs,
                      const SshOptions& options);

/// Builds pseudo-supervision from metric structure: for `num_anchors`
/// sampled items, the exact nearest neighbor forms a similar pair and a
/// uniformly random far item a dissimilar pair. This is the standard way
/// to exercise SSH when no human labels exist.
std::vector<LabeledPair> MakeMetricPairs(const Dataset& dataset,
                                         size_t num_anchors, uint64_t seed);

}  // namespace gqr

#endif  // GQR_HASH_SSH_H_
