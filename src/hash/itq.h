// ITQ (iterative quantization, Gong & Lazebnik): PCA followed by a learned
// orthogonal rotation that minimizes the quantization loss
// ||B - V R||_F^2 between the projected data V R and its binary codes B.
// The paper's default learner for the main experiments.
#ifndef GQR_HASH_ITQ_H_
#define GQR_HASH_ITQ_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "hash/linear_hasher.h"

namespace gqr {

struct ItqOptions {
  int code_length = 16;
  /// Rotation-refinement iterations (Gong & Lazebnik use 50).
  int iterations = 50;
  size_t max_train_samples = 20000;
  uint64_t seed = 42;
};

struct ItqTrainStats {
  /// Quantization loss ||B - V R||_F^2 / n after each iteration;
  /// non-increasing (a tested invariant).
  std::vector<double> loss_history;
};

/// Trains ITQ and returns the composed linear hasher
/// p(x) = R^T P (x - mean). stats may be null.
LinearHasher TrainItq(const Dataset& dataset, const ItqOptions& options,
                      ItqTrainStats* stats = nullptr);

}  // namespace gqr

#endif  // GQR_HASH_ITQ_H_
