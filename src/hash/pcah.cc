#include "hash/pcah.h"

#include <cassert>

#include "la/pca.h"
#include "util/random.h"

namespace gqr {

LinearHasher TrainPcah(const Dataset& dataset, const PcahOptions& options) {
  assert(options.code_length >= 1 && options.code_length <= 64);
  assert(static_cast<size_t>(options.code_length) <= dataset.dim());
  Rng rng(options.seed);
  PcaModel pca =
      FitPca(dataset.data(), dataset.size(), dataset.dim(),
             options.code_length, options.max_train_samples, &rng);
  return LinearHasher(std::move(pca.components), std::move(pca.mean),
                      "PCAH");
}

}  // namespace gqr
