#include "hash/pcah.h"

#include "la/pca.h"
#include "util/check.h"
#include "util/random.h"

namespace gqr {

LinearHasher TrainPcah(const Dataset& dataset, const PcahOptions& options) {
  GQR_CHECK(options.code_length >= 1 && options.code_length <= 64)
      << "code length " << options.code_length;
  GQR_CHECK_LE(static_cast<size_t>(options.code_length), dataset.dim())
      << "PCAH needs at least as many dimensions as code bits";
  Rng rng(options.seed);
  PcaModel pca =
      FitPca(dataset.data(), dataset.size(), dataset.dim(),
             options.code_length, options.max_train_samples, &rng);
  return LinearHasher(std::move(pca.components), std::move(pca.mean),
                      "PCAH");
}

}  // namespace gqr
