// Sign-random-projection LSH — the data-oblivious baseline hasher
// (paper §1's contrast class for L2H).
#ifndef GQR_HASH_LSH_H_
#define GQR_HASH_LSH_H_

#include <cstdint>

#include "data/dataset.h"
#include "hash/linear_hasher.h"

namespace gqr {

struct LshOptions {
  int code_length = 16;
  uint64_t seed = 42;
  /// Center projections on the data mean; improves bit balance and costs
  /// one pass over (a sample of) the data. When false the offset is zero
  /// and `dataset` may be empty.
  bool center_on_mean = true;
  size_t max_train_samples = 20000;
};

/// Draws m Gaussian hyperplanes; data-independent apart from the optional
/// mean-centering.
LinearHasher TrainLsh(const Dataset& dataset, size_t dim,
                      const LshOptions& options);

}  // namespace gqr

#endif  // GQR_HASH_LSH_H_
