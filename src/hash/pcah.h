// PCAH (PCA hashing): hash bits are signs of the top-m principal
// components of the mean-centered data. The simplest L2H learner the
// paper evaluates — and the one GQR boosts to OPQ-level query quality
// (paper §6.5).
#ifndef GQR_HASH_PCAH_H_
#define GQR_HASH_PCAH_H_

#include <cstdint>

#include "data/dataset.h"
#include "hash/linear_hasher.h"

namespace gqr {

struct PcahOptions {
  int code_length = 16;
  size_t max_train_samples = 20000;
  uint64_t seed = 42;
};

/// Fits PCA on (a sample of) the dataset and returns the sign-of-PCA
/// hasher. Requires code_length <= dataset.dim().
LinearHasher TrainPcah(const Dataset& dataset, const PcahOptions& options);

}  // namespace gqr

#endif  // GQR_HASH_PCAH_H_
