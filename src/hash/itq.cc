#include "hash/itq.h"

#include <cmath>

#include "la/pca.h"
#include "la/procrustes.h"
#include "util/check.h"
#include "util/random.h"

namespace gqr {

LinearHasher TrainItq(const Dataset& dataset, const ItqOptions& options,
                      ItqTrainStats* stats) {
  const int m = options.code_length;
  GQR_CHECK(m >= 1 && m <= 64) << "code length " << m;
  GQR_CHECK_LE(static_cast<size_t>(m), dataset.dim())
      << "ITQ needs at least as many dimensions as code bits";
  Rng rng(options.seed);

  PcaModel pca = FitPca(dataset.data(), dataset.size(), dataset.dim(),
                        static_cast<size_t>(m), options.max_train_samples,
                        &rng);

  // Project a training sample into the PCA space: V is t x m.
  std::vector<uint32_t> rows;
  if (dataset.size() > options.max_train_samples) {
    rows = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(dataset.size()),
        static_cast<uint32_t>(options.max_train_samples));
  } else {
    rows.resize(dataset.size());
    for (size_t i = 0; i < dataset.size(); ++i) {
      rows[i] = static_cast<uint32_t>(i);
    }
  }
  const size_t t = rows.size();
  Matrix v(t, static_cast<size_t>(m));
  for (size_t i = 0; i < t; ++i) {
    pca.Project(dataset.Row(rows[i]), v.Row(i));
  }

  // Alternating minimization of ||B - V R||_F^2.
  Matrix r = Matrix::RandomOrthogonal(static_cast<size_t>(m), &rng);
  Matrix b(t, static_cast<size_t>(m));
  for (int iter = 0; iter < options.iterations; ++iter) {
    // Fix R, set B = sgn(V R). ITQ's codes live in {-1, +1}.
    Matrix vr = v.Multiply(r);
    double loss = 0.0;
    for (size_t i = 0; i < t; ++i) {
      for (int j = 0; j < m; ++j) {
        const double proj = vr.At(i, static_cast<size_t>(j));
        const double bit = proj >= 0.0 ? 1.0 : -1.0;
        b.At(i, static_cast<size_t>(j)) = bit;
        const double diff = bit - proj;
        loss += diff * diff;
      }
    }
    if (stats != nullptr) {
      stats->loss_history.push_back(loss / static_cast<double>(t));
    }
    // Fix B, solve the orthogonal Procrustes problem:
    // max_R tr(R^T (V^T B))  =>  R = U W^T from SVD(V^T B).
    r = OrthogonalProcrustes(v.TransposedMultiply(b));
  }

  // Compose the final projection p(x) = R^T (P (x - mean)) into a single
  // m x d matrix W = R^T P = (P^T R)^T.
  Matrix w = pca.components.Transposed().Multiply(r).Transposed();
  return LinearHasher(std::move(w), std::move(pca.mean), "ITQ");
}

}  // namespace gqr
