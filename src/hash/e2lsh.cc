#include "hash/e2lsh.h"

#include <algorithm>
#include <cmath>

#include "la/simd_kernels.h"
#include "util/check.h"
#include "util/parallel_for.h"
#include "util/random.h"

namespace gqr {

namespace {

// Per-thread projection + widened-input scratch for the hot paths.
std::vector<double>& TlBuffer(size_t n) {
  thread_local std::vector<double> buf;
  if (buf.size() < n) buf.resize(n);
  return buf;
}

}  // namespace

E2lshHasher::E2lshHasher(Matrix a, std::vector<double> b, double w)
    : a_(std::move(a)), b_(std::move(b)), w_(w) {
  GQR_CHECK_GE(a_.rows(), size_t{1});
  GQR_CHECK_EQ(b_.size(), a_.rows());
  GQR_CHECK_GT(w_, 0.0) << "E2LSH bucket width must be positive";
}

void E2lshHasher::Project(const float* x, double* out) const {
  const size_t d = a_.cols();
  const size_t m = a_.rows();
  const ProjectionKernels& k = ProjKernels();
  // Widen x once (offset = nullptr), one dispatched GEMV, then the slot
  // offsets b_i.
  std::vector<double>& buf = TlBuffer(d);
  k.center(x, nullptr, d, buf.data());
  k.gemv(a_.Row(0), m, d, buf.data(), out);
  for (size_t i = 0; i < m; ++i) out[i] += b_[i];
}

IntCode E2lshHasher::HashItem(const float* x) const {
  const size_t m = a_.rows();
  // The projection scratch must not alias the widened-input buffer used
  // inside Project, so it lives past the first m slots.
  std::vector<double> p(m);
  Project(x, p.data());
  IntCode code(m);
  for (size_t i = 0; i < m; ++i) {
    code[i] = static_cast<int32_t>(std::floor(p[i] / w_));
  }
  return code;
}

E2lshQueryInfo E2lshHasher::HashQuery(const float* q) const {
  std::vector<double> p(a_.rows());
  Project(q, p.data());
  E2lshQueryInfo info;
  info.bucket_width = w_;
  info.code.resize(a_.rows());
  info.distance_down.resize(a_.rows());
  for (size_t i = 0; i < a_.rows(); ++i) {
    const double slot = std::floor(p[i] / w_);
    info.code[i] = static_cast<int32_t>(slot);
    info.distance_down[i] = p[i] - slot * w_;  // In [0, w).
  }
  return info;
}

std::vector<IntCode> E2lshHasher::HashDataset(const Dataset& dataset) const {
  std::vector<IntCode> codes(dataset.size());
  ParallelFor(0, dataset.size(), [&](size_t i) {
    codes[i] = HashItem(dataset.Row(static_cast<ItemId>(i)));
  });
  return codes;
}

E2lshHasher TrainE2lsh(const Dataset& dataset, const E2lshOptions& options) {
  GQR_CHECK_GE(options.num_hashes, 1);
  Rng rng(options.seed);
  Matrix a = Matrix::RandomGaussian(options.num_hashes, dataset.dim(), &rng);

  double w = options.bucket_width;
  if (w <= 0.0) {
    // Calibrate: projections of centered data are roughly Gaussian with
    // some stddev s per hash; a slot of width w captures ~w/(s\sqrt{2\pi})
    // of the mass at the mode. We instead calibrate empirically: choose w
    // as a multiple of the median |projection difference| so that a
    // random pair collides on one hash with moderate probability, then
    // scale for the m-wise AND. Simple heuristic that lands bucket
    // populations near expected_per_bucket in practice: match the binary
    // case's bits-of-information, splitting each dimension into
    // ~ (n / EP)^(1/m) slots across ±2 stddev of the projections.
    std::vector<uint32_t> rows;
    const size_t take =
        std::min<size_t>(dataset.size(), options.max_train_samples);
    rows = rng.SampleWithoutReplacement(static_cast<uint32_t>(dataset.size()),
                                        static_cast<uint32_t>(take));
    // Projection stddev of the first hash over the sample.
    double sum = 0.0, sum_sq = 0.0;
    std::vector<double> p(options.num_hashes);
    for (uint32_t r : rows) {
      const double* row = a.Row(0);
      double dot = 0.0;
      for (size_t j = 0; j < dataset.dim(); ++j) {
        dot += row[j] * static_cast<double>(dataset.Row(r)[j]);
      }
      sum += dot;
      sum_sq += dot * dot;
    }
    const double n = static_cast<double>(rows.size());
    const double var = std::max(1e-12, sum_sq / n - (sum / n) * (sum / n));
    const double stddev = std::sqrt(var);
    const double slots_per_hash =
        std::pow(static_cast<double>(dataset.size()) /
                     std::max(1.0, options.expected_per_bucket),
                 1.0 / options.num_hashes);
    w = 4.0 * stddev / std::max(1.0, slots_per_hash);
  }

  std::vector<double> b(options.num_hashes);
  for (double& v : b) v = rng.UniformDouble(0.0, w);
  return E2lshHasher(std::move(a), std::move(b), w);
}

}  // namespace gqr
