// KMH (K-means hashing, He-Wen-Sun): the descriptor is split into B
// contiguous subspaces; each subspace is vector-quantized with 2^s
// k-means codewords whose *binary indices* are assigned to approximately
// preserve inter-codeword affinity, so Hamming distance between codes
// tracks Euclidean distance between codewords.
//
// KMH is not a sign-of-projection hasher, which is exactly why it appears
// here: the paper's appendix shows QD generalizes to it by defining the
// flipping cost of bit i as dist(q, c_q') - dist(q, c_q), where c_q is the
// codeword q quantizes to in bit i's subspace and c_q' is the codeword
// whose binary index differs from c_q's only in bit i. Costs are
// non-negative because c_q is the nearest codeword.
#ifndef GQR_HASH_KMH_H_
#define GQR_HASH_KMH_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "hash/binary_hasher.h"
#include "la/matrix.h"

namespace gqr {

struct KmhOptions {
  int code_length = 16;
  /// Bits per subspace (2^bits_per_block codewords each). code_length
  /// must be a multiple of this.
  int bits_per_block = 4;
  int kmeans_iters = 25;
  /// Local-search passes for the affinity-preserving index assignment.
  int assignment_passes = 8;
  size_t max_train_samples = 20000;
  uint64_t seed = 42;
};

class KmhHasher : public BinaryHasher {
 public:
  struct Block {
    size_t dim_begin;   // Subspace = dims [dim_begin, dim_end).
    size_t dim_end;
    /// 2^s x (dim_end - dim_begin); row r is the codeword whose *binary
    /// index* is r (the affinity-preserving permutation is already baked
    /// into the row order).
    Matrix codewords;
  };

  KmhHasher(std::vector<Block> blocks, int bits_per_block, size_t dim);

  int code_length() const override { return code_length_; }
  size_t dim() const override { return dim_; }

  Code HashItem(const float* x) const override;
  QueryHashInfo HashQuery(const float* q) const override;

  const std::vector<Block>& blocks() const { return blocks_; }
  int bits_per_block() const { return bits_per_block_; }

 private:
  /// Binary index of the codeword nearest to the subvector of x in block
  /// b, plus (optionally) the squared distances to every codeword.
  uint32_t NearestCodeword(const Block& block, const float* x,
                           std::vector<double>* all_sq) const;

  std::vector<Block> blocks_;
  int bits_per_block_;
  int code_length_;
  size_t dim_;
};

/// Trains KMH on the dataset: per-block k-means then affinity-preserving
/// binary index assignment by pairwise-swap local search.
KmhHasher TrainKmh(const Dataset& dataset, const KmhOptions& options);

}  // namespace gqr

#endif  // GQR_HASH_KMH_H_
