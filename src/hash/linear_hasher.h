// LinearHasher: a concrete sign-of-projection hasher with an affine
// projection p(x) = W (x - offset). LSH, PCAH, and ITQ all produce one of
// these (they differ only in how W and offset are trained).
#ifndef GQR_HASH_LINEAR_HASHER_H_
#define GQR_HASH_LINEAR_HASHER_H_

#include <string>
#include <utility>
#include <vector>

#include "hash/projection_hasher.h"
#include "la/matrix.h"

namespace gqr {

class LinearHasher : public ProjectionHasher {
 public:
  /// w is m x d (m <= 64); offset has length d (often the data mean).
  LinearHasher(Matrix w, std::vector<double> offset, std::string name);

  int code_length() const override {
    return static_cast<int>(w_.rows());
  }
  size_t dim() const override { return w_.cols(); }

  void Project(const float* x, double* out) const override;
  /// One blocked GEMM over the centered query block (bit-identical to
  /// per-query Project at every dispatch level).
  void ProjectBatch(const float* queries, size_t count, size_t stride,
                    double* out) const override;

  Matrix HashingMatrix() const override { return w_; }
  const std::vector<double>& offset() const { return offset_; }

  /// Which learner produced this hasher ("LSH", "PCAH", "ITQ").
  const std::string& name() const { return name_; }

 private:
  Matrix w_;
  std::vector<double> offset_;
  std::string name_;
};

}  // namespace gqr

#endif  // GQR_HASH_LINEAR_HASHER_H_
