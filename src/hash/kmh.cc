#include "hash/kmh.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/kmeans.h"
#include "la/vector_ops.h"
#include "util/check.h"
#include "util/random.h"

namespace gqr {

namespace {

// Mean squared approximation error of representing codeword distances by
// scaled Hamming distances under permutation perm (perm[center] = binary
// index). This is the objective of KMH's index assignment.
double AssignmentError(const Matrix& centers,
                       const std::vector<uint32_t>& perm, double lambda) {
  const size_t k = centers.rows();
  double err = 0.0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      const double d = std::sqrt(
          SquaredL2(centers.Row(i), centers.Row(j), centers.cols()));
      const int h = HammingDistance(perm[i], perm[j]);
      const double approx = lambda * std::sqrt(static_cast<double>(h));
      const double diff = d - approx;
      err += diff * diff;
    }
  }
  return err;
}

// Assigns binary indices to k-means centers so Hamming distance between
// indices approximates Euclidean distance between centers: pairwise-swap
// local search from the identity assignment.
std::vector<uint32_t> AssignIndices(const Matrix& centers, int passes,
                                    Rng* rng) {
  const size_t k = centers.rows();
  std::vector<uint32_t> perm(k);
  for (size_t i = 0; i < k; ++i) perm[i] = static_cast<uint32_t>(i);
  rng->Shuffle(&perm);

  // Scale so that one bit of Hamming distance is worth the mean pairwise
  // codeword distance divided by the mean root-Hamming distance.
  double sum_d = 0.0, sum_h = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      sum_d += std::sqrt(
          SquaredL2(centers.Row(i), centers.Row(j), centers.cols()));
      sum_h += std::sqrt(static_cast<double>(
          HammingDistance(static_cast<Code>(i), static_cast<Code>(j))));
      ++pairs;
    }
  }
  const double lambda = (pairs == 0 || sum_h == 0.0) ? 1.0 : sum_d / sum_h;

  double best = AssignmentError(centers, perm, lambda);
  for (int pass = 0; pass < passes; ++pass) {
    bool improved = false;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        std::swap(perm[i], perm[j]);
        const double err = AssignmentError(centers, perm, lambda);
        if (err + 1e-12 < best) {
          best = err;
          improved = true;
        } else {
          std::swap(perm[i], perm[j]);
        }
      }
    }
    if (!improved) break;
  }
  return perm;
}

}  // namespace

KmhHasher::KmhHasher(std::vector<Block> blocks, int bits_per_block,
                     size_t dim)
    : blocks_(std::move(blocks)),
      bits_per_block_(bits_per_block),
      code_length_(static_cast<int>(blocks_.size()) * bits_per_block),
      dim_(dim) {
  GQR_CHECK(!blocks_.empty());
  GQR_CHECK_LE(code_length_, 64);
}

uint32_t KmhHasher::NearestCodeword(const Block& block, const float* x,
                                    std::vector<double>* all_sq) const {
  const size_t sub_dim = block.dim_end - block.dim_begin;
  const float* sub = x + block.dim_begin;
  uint32_t best = 0;
  double best_sq = std::numeric_limits<double>::max();
  if (all_sq != nullptr) all_sq->resize(block.codewords.rows());
  for (size_t r = 0; r < block.codewords.rows(); ++r) {
    const double* c = block.codewords.Row(r);
    double sq = 0.0;
    for (size_t j = 0; j < sub_dim; ++j) {
      const double d = c[j] - static_cast<double>(sub[j]);
      sq += d * d;
    }
    if (all_sq != nullptr) (*all_sq)[r] = sq;
    if (sq < best_sq) {
      best_sq = sq;
      best = static_cast<uint32_t>(r);
    }
  }
  return best;
}

Code KmhHasher::HashItem(const float* x) const {
  Code code = 0;
  int shift = 0;
  for (const Block& block : blocks_) {
    const uint32_t idx = NearestCodeword(block, x, nullptr);
    code |= static_cast<Code>(idx) << shift;
    shift += bits_per_block_;
  }
  return code;
}

QueryHashInfo KmhHasher::HashQuery(const float* q) const {
  QueryHashInfo info;
  info.flip_costs.resize(code_length_);
  int shift = 0;
  // Codeword-distance scratch; thread-local so query hashing stays free
  // of per-call heap traffic (the vector only grows).
  thread_local std::vector<double> sq;
  for (const Block& block : blocks_) {
    const uint32_t idx = NearestCodeword(block, q, &sq);
    info.code |= static_cast<Code>(idx) << shift;
    const double base = std::sqrt(sq[idx]);
    for (int b = 0; b < bits_per_block_; ++b) {
      // Appendix definition: cost of flipping bit b of this block's index
      // is dist(q, c') - dist(q, c) for the codeword c' at the flipped
      // index. Non-negative since c is the nearest codeword.
      const uint32_t flipped = idx ^ (1u << b);
      info.flip_costs[shift + b] = std::sqrt(sq[flipped]) - base;
    }
    shift += bits_per_block_;
  }
  return info;
}

KmhHasher TrainKmh(const Dataset& dataset, const KmhOptions& options) {
  GQR_CHECK(options.code_length >= 1 && options.code_length <= 64)
      << "code length " << options.code_length;
  GQR_CHECK(options.bits_per_block >= 1 && options.bits_per_block <= 8)
      << "bits per block " << options.bits_per_block;
  GQR_CHECK_EQ(options.code_length % options.bits_per_block, 0)
      << "code length must divide into whole blocks";
  const int num_blocks = options.code_length / options.bits_per_block;
  GQR_CHECK_LE(static_cast<size_t>(num_blocks), dataset.dim());
  const size_t k = size_t{1} << options.bits_per_block;
  Rng rng(options.seed);

  std::vector<KmhHasher::Block> blocks;
  blocks.reserve(num_blocks);
  const size_t dim = dataset.dim();
  for (int b = 0; b < num_blocks; ++b) {
    KmhHasher::Block block;
    block.dim_begin = dim * b / num_blocks;
    block.dim_end = dim * (b + 1) / num_blocks;
    const size_t sub_dim = block.dim_end - block.dim_begin;

    // Copy the subspace slice of a training sample.
    std::vector<uint32_t> rows;
    if (dataset.size() > options.max_train_samples) {
      rows = rng.SampleWithoutReplacement(
          static_cast<uint32_t>(dataset.size()),
          static_cast<uint32_t>(options.max_train_samples));
    } else {
      rows.resize(dataset.size());
      for (size_t i = 0; i < dataset.size(); ++i) {
        rows[i] = static_cast<uint32_t>(i);
      }
    }
    std::vector<float> sub(rows.size() * sub_dim);
    for (size_t i = 0; i < rows.size(); ++i) {
      const float* x = dataset.Row(rows[i]) + block.dim_begin;
      std::copy(x, x + sub_dim, sub.data() + i * sub_dim);
    }

    KMeansOptions km;
    km.k = k;
    km.max_iters = options.kmeans_iters;
    km.seed = options.seed + static_cast<uint64_t>(b) * 7919;
    KMeansResult result = KMeans(sub.data(), rows.size(), sub_dim, km);

    // Bake the affinity-preserving index permutation into row order:
    // codewords.Row(binary index) = center with that index.
    std::vector<uint32_t> perm =
        AssignIndices(result.centers, options.assignment_passes, &rng);
    block.codewords = Matrix(k, sub_dim);
    for (size_t c = 0; c < k; ++c) {
      const double* src = result.centers.Row(c);
      std::copy(src, src + sub_dim, block.codewords.Row(perm[c]));
    }
    blocks.push_back(std::move(block));
  }
  return KmhHasher(std::move(blocks), options.bits_per_block, dim);
}

}  // namespace gqr
