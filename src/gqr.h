// Umbrella header: the public API of the GQR library.
//
// Typical usage (see examples/quickstart.cpp):
//
//   gqr::Dataset base = ...;                        // your descriptors
//   gqr::ItqOptions itq{.code_length = 16};
//   gqr::LinearHasher hasher = gqr::TrainItq(base, itq);
//   gqr::StaticHashTable table(hasher.HashDataset(base),
//                              hasher.code_length());
//   gqr::Searcher searcher(base);
//
//   gqr::QueryHashInfo info = hasher.HashQuery(query);
//   gqr::GqrProber prober(info);
//   gqr::SearchOptions opts{.k = 20, .max_candidates = 2000};
//   gqr::SearchResult result =
//       searcher.Search(query, &prober, table, opts);
#ifndef GQR_GQR_H_
#define GQR_GQR_H_

#include "core/batch_search.h"
#include "core/c2lsh.h"
#include "core/eval_batch.h"
#include "core/generation_tree.h"
#include "core/ghr_prober.h"
#include "core/gqr_prober.h"
#include "core/hr_prober.h"
#include "core/mih_prober.h"
#include "core/multi_prober.h"
#include "core/multiprobe_lsh.h"
#include "core/prober.h"
#include "core/qd.h"
#include "core/qr_prober.h"
#include "core/searcher.h"
#include "core/sharded_search.h"
#include "core/sklsh.h"
#include "data/compressed_dataset.h"
#include "data/dataset.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "data/vecs_io.h"
#include "eval/curve.h"
#include "eval/diagnostics.h"
#include "eval/harness.h"
#include "eval/linear_scan.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/tuner.h"
#include "hash/binary_hasher.h"
#include "hash/itq.h"
#include "hash/kmh.h"
#include "hash/e2lsh.h"
#include "hash/linear_hasher.h"
#include "hash/lsh.h"
#include "hash/pcah.h"
#include "hash/sh.h"
#include "hash/ssh.h"
#include "index/dynamic_table.h"
#include "index/hash_table.h"
#include "index/multi_table.h"
#include "index/sharded_index.h"
#include "la/simd_kernels.h"
#include "persist/model_io.h"
#include "persist/serializer.h"
#include "serve/query_service.h"
#include "util/bits.h"
#include "util/env.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/timer.h"
#include "vq/imi.h"
#include "vq/opq.h"
#include "vq/pq.h"

#endif  // GQR_GQR_H_
