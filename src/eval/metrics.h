// Quality metrics: recall and precision against exact ground truth
// (paper §2.3).
#ifndef GQR_EVAL_METRICS_H_
#define GQR_EVAL_METRICS_H_

#include <vector>

#include "data/dataset.h"
#include "data/ground_truth.h"

namespace gqr {

/// |returned ∩ true k-NN| / k. `truth` supplies the true neighbors; only
/// its first k ids are considered.
double RecallAtK(const std::vector<ItemId>& returned, const Neighbors& truth,
                 size_t k);

/// |returned ∩ true k-NN| / retrieved_count — the precision of Figure 4a,
/// where retrieved_count is the number of items fetched from buckets
/// (not just the returned top-k).
double Precision(const std::vector<ItemId>& returned, const Neighbors& truth,
                 size_t k, size_t retrieved_count);

}  // namespace gqr

#endif  // GQR_EVAL_METRICS_H_
