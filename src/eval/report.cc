#include "eval/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gqr {

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

void PrintCurves(const std::string& title, const std::vector<Curve>& curves) {
  std::printf("# %s\n", title.c_str());
  std::printf("method,seconds,recall,avg_items,avg_buckets\n");
  for (const Curve& c : curves) {
    for (const CurvePoint& p : c.points) {
      std::printf("%s,%.6f,%.4f,%.1f,%.1f\n", c.name.c_str(), p.seconds,
                  p.recall, p.items_evaluated, p.buckets_probed);
    }
  }
  std::printf("\n");
}

void PrintRecallItemsCurves(const std::string& title,
                            const std::vector<Curve>& curves) {
  std::printf("# %s\n", title.c_str());
  std::printf("method,avg_items,recall,precision\n");
  for (const Curve& c : curves) {
    for (const CurvePoint& p : c.points) {
      std::printf("%s,%.1f,%.4f,%.4f\n", c.name.c_str(), p.items_evaluated,
                  p.recall, p.precision);
    }
  }
  std::printf("\n");
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::printf("# %s\n", title.c_str());
  // Column widths.
  std::vector<size_t> widths(header.size(), 0);
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  for (const auto& row : rows) print_row(row);
  std::printf("\n");
}

}  // namespace gqr
