#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace gqr {

namespace {

size_t CountHits(const std::vector<ItemId>& returned, const Neighbors& truth,
                 size_t k) {
  const size_t kk = std::min(k, truth.ids.size());
  std::unordered_set<ItemId> truth_set(truth.ids.begin(),
                                       truth.ids.begin() + kk);
  size_t hits = 0;
  for (ItemId id : returned) {
    if (truth_set.count(id) != 0) ++hits;
  }
  return hits;
}

}  // namespace

double RecallAtK(const std::vector<ItemId>& returned, const Neighbors& truth,
                 size_t k) {
  if (k == 0) return 0.0;
  return static_cast<double>(CountHits(returned, truth, k)) /
         static_cast<double>(k);
}

double Precision(const std::vector<ItemId>& returned, const Neighbors& truth,
                 size_t k, size_t retrieved_count) {
  if (retrieved_count == 0) return 0.0;
  return static_cast<double>(CountHits(returned, truth, k)) /
         static_cast<double>(retrieved_count);
}

}  // namespace gqr
