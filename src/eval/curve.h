// Recall-time / recall-items curves — the paper's primary performance
// representation (§2.3) — plus the interpolations used for "time to X%
// recall" tables and speedup figures.
#ifndef GQR_EVAL_CURVE_H_
#define GQR_EVAL_CURVE_H_

#include <string>
#include <vector>

namespace gqr {

/// One sweep point of a querying method.
struct CurvePoint {
  /// Total wall time to answer the whole query batch, seconds.
  double seconds = 0.0;
  /// Mean recall over the batch.
  double recall = 0.0;
  /// Mean items evaluated per query.
  double items_evaluated = 0.0;
  /// Mean buckets probed per query.
  double buckets_probed = 0.0;
  /// Mean precision (hits / items retrieved).
  double precision = 0.0;
};

struct Curve {
  std::string name;
  std::vector<CurvePoint> points;  // Ascending budget order.
};

/// Linear interpolation of the time needed to reach `target` recall;
/// returns a negative value when the curve never reaches it.
double TimeAtRecall(const Curve& curve, double target);

/// Mean items-evaluated needed to reach `target` recall (interpolated);
/// negative when unreached.
double ItemsAtRecall(const Curve& curve, double target);

}  // namespace gqr

#endif  // GQR_EVAL_CURVE_H_
