// Brute-force linear-scan baseline: the "Linear Search" column of
// Table 1.
#ifndef GQR_EVAL_LINEAR_SCAN_H_
#define GQR_EVAL_LINEAR_SCAN_H_

#include <cstddef>

#include "data/dataset.h"

namespace gqr {

struct LinearScanResult {
  /// Wall seconds to answer all queries sequentially by brute force.
  double seconds = 0.0;
  size_t queries = 0;
  size_t k = 0;
};

/// Times exact k-NN of every query by sequential full scan (single
/// thread, like the paper's per-query linear-search baseline).
LinearScanResult TimeLinearScan(const Dataset& base, const Dataset& queries,
                                size_t k);

}  // namespace gqr

#endif  // GQR_EVAL_LINEAR_SCAN_H_
