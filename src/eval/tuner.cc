#include "eval/tuner.h"

#include <algorithm>
#include <cmath>

#include "core/batch_search.h"
#include "core/searcher.h"
#include "eval/metrics.h"

namespace gqr {

namespace {

double RecallAtBudget(const Dataset& base, const Dataset& queries,
                      const std::vector<Neighbors>& ground_truth,
                      const BinaryHasher& hasher,
                      const StaticHashTable& table, QueryMethod method,
                      size_t k, size_t budget) {
  Searcher searcher(base);
  SearchOptions so;
  so.k = k;
  so.max_candidates = budget;
  auto results = BatchSearch(searcher, hasher, table, queries, method, so);
  double recall = 0.0;
  for (size_t q = 0; q < results.size(); ++q) {
    recall += RecallAtK(results[q].ids, ground_truth[q], k);
  }
  return recall / static_cast<double>(results.size());
}

}  // namespace

TuneResult TuneBudgetForRecall(const Dataset& base,
                               const Dataset& validation_queries,
                               const std::vector<Neighbors>& ground_truth,
                               const BinaryHasher& hasher,
                               const StaticHashTable& table,
                               const TuneOptions& options) {
  TuneResult result;
  if (validation_queries.empty()) return result;
  const auto max_budget = static_cast<size_t>(std::max(
      static_cast<double>(options.k),
      static_cast<double>(base.size()) * options.max_fraction));

  // Feasibility at the upper bound first.
  result.recall_at_max =
      RecallAtBudget(base, validation_queries, ground_truth, hasher, table,
                     options.method, options.k, max_budget);
  if (result.recall_at_max < options.target_recall) {
    return result;  // Infeasible within max_fraction.
  }

  size_t lo = options.k;        // Assumed below target (checked below).
  size_t hi = max_budget;
  double hi_recall = result.recall_at_max;
  const double lo_recall =
      RecallAtBudget(base, validation_queries, ground_truth, hasher, table,
                     options.method, options.k, lo);
  if (lo_recall >= options.target_recall) {
    result.budget = lo;
    result.achieved_recall = lo_recall;
    result.feasible = true;
    return result;
  }
  // Invariant: recall(lo) < target <= recall(hi).
  while (static_cast<double>(hi) >
         static_cast<double>(lo) * options.budget_resolution) {
    const auto mid = static_cast<size_t>(
        std::llround(std::sqrt(static_cast<double>(lo) *
                               static_cast<double>(hi))));
    if (mid <= lo || mid >= hi) break;
    const double mid_recall =
        RecallAtBudget(base, validation_queries, ground_truth, hasher,
                       table, options.method, options.k, mid);
    if (mid_recall >= options.target_recall) {
      hi = mid;
      hi_recall = mid_recall;
    } else {
      lo = mid;
    }
  }
  result.budget = hi;
  result.achieved_recall = hi_recall;
  result.feasible = true;
  return result;
}

}  // namespace gqr
