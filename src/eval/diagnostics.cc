#include "eval/diagnostics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/random.h"

namespace gqr {

OccupancyStats ComputeOccupancy(const StaticHashTable& table) {
  OccupancyStats stats;
  stats.num_items = table.num_items();
  stats.num_buckets = table.num_buckets();
  const int m = table.code_length();
  stats.possible_buckets =
      m >= 63 ? ~size_t{0} : (size_t{1} << m);
  if (stats.num_buckets == 0) return stats;

  std::vector<size_t> sizes(stats.num_buckets);
  for (size_t b = 0; b < stats.num_buckets; ++b) {
    sizes[b] = table.bucket_size(b);
  }
  std::sort(sizes.begin(), sizes.end());
  stats.max_occupancy = sizes.back();
  stats.median_occupancy = sizes[sizes.size() / 2];
  stats.mean_occupancy = static_cast<double>(stats.num_items) /
                         static_cast<double>(stats.num_buckets);
  stats.fill_fraction = static_cast<double>(stats.num_buckets) /
                        static_cast<double>(stats.possible_buckets);

  // Normalized entropy of p_b = size_b / n over non-empty buckets.
  double entropy = 0.0;
  for (size_t s : sizes) {
    const double p = static_cast<double>(s) /
                     static_cast<double>(stats.num_items);
    entropy -= p * std::log2(p);
  }
  const double max_entropy =
      std::log2(static_cast<double>(stats.num_buckets));
  stats.occupancy_entropy = max_entropy > 0.0 ? entropy / max_entropy : 1.0;

  // Mass of the largest 1% of buckets (at least one bucket).
  const size_t top = std::max<size_t>(1, stats.num_buckets / 100);
  size_t mass = 0;
  for (size_t i = sizes.size() - top; i < sizes.size(); ++i) {
    mass += sizes[i];
  }
  stats.top1pct_mass =
      static_cast<double>(mass) / static_cast<double>(stats.num_items);
  return stats;
}

BitBalanceStats ComputeBitBalance(const BinaryHasher& hasher,
                                  const Dataset& data, size_t max_samples) {
  BitBalanceStats stats;
  const int m = hasher.code_length();
  stats.ones_fraction.assign(m, 0.0);
  if (data.empty()) return stats;

  Rng rng(4242);
  std::vector<uint32_t> rows;
  if (data.size() > max_samples) {
    rows = rng.SampleWithoutReplacement(static_cast<uint32_t>(data.size()),
                                        static_cast<uint32_t>(max_samples));
  } else {
    rows.resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      rows[i] = static_cast<uint32_t>(i);
    }
  }
  const double n = static_cast<double>(rows.size());

  std::vector<Code> codes(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    codes[i] = hasher.HashItem(data.Row(rows[i]));
  }
  // Per-bit means.
  for (Code c : codes) {
    for (int b = 0; b < m; ++b) stats.ones_fraction[b] += GetBit(c, b);
  }
  for (int b = 0; b < m; ++b) {
    stats.ones_fraction[b] /= n;
    stats.worst_imbalance = std::max(
        stats.worst_imbalance, std::abs(stats.ones_fraction[b] - 0.5));
  }
  // Pairwise correlations of the +-1 bit variables.
  double corr_sum = 0.0;
  size_t pairs = 0;
  for (int a = 0; a < m; ++a) {
    for (int b = a + 1; b < m; ++b) {
      double e_ab = 0.0;
      for (Code c : codes) {
        e_ab += (GetBit(c, a) ? 1.0 : -1.0) * (GetBit(c, b) ? 1.0 : -1.0);
      }
      e_ab /= n;
      const double e_a = 2.0 * stats.ones_fraction[a] - 1.0;
      const double e_b = 2.0 * stats.ones_fraction[b] - 1.0;
      const double var_a = std::max(1e-12, 1.0 - e_a * e_a);
      const double var_b = std::max(1e-12, 1.0 - e_b * e_b);
      corr_sum += std::abs((e_ab - e_a * e_b) / std::sqrt(var_a * var_b));
      ++pairs;
    }
  }
  stats.mean_abs_correlation =
      pairs > 0 ? corr_sum / static_cast<double>(pairs) : 0.0;
  return stats;
}

std::string OccupancyReport(const OccupancyStats& stats) {
  std::ostringstream os;
  os << "buckets: " << stats.num_buckets << " non-empty of "
     << stats.possible_buckets << " possible ("
     << 100.0 * stats.fill_fraction << "% fill)\n"
     << "occupancy: mean " << stats.mean_occupancy << ", median "
     << stats.median_occupancy << ", max " << stats.max_occupancy << "\n"
     << "entropy: " << stats.occupancy_entropy
     << " (1 = uniform), top-1% buckets hold "
     << 100.0 * stats.top1pct_mass << "% of items";
  return os.str();
}

std::string BitBalanceReport(const BitBalanceStats& stats) {
  std::ostringstream os;
  os << "bits: " << stats.ones_fraction.size() << ", worst imbalance "
     << stats.worst_imbalance << " from 0.5, mean |pairwise corr| "
     << stats.mean_abs_correlation;
  return os.str();
}

}  // namespace gqr
