// Index diagnostics: bucket-occupancy and code-balance statistics.
//
// L2H query performance is driven by how the learned code distributes
// items over buckets (paper §6.1 fixes E[items/bucket] ~ 10 when picking
// the code length). These helpers quantify that distribution for a built
// table and the per-bit balance of a hasher, so users can sanity-check a
// deployment the way the paper's experimental setup does.
#ifndef GQR_EVAL_DIAGNOSTICS_H_
#define GQR_EVAL_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "hash/binary_hasher.h"
#include "index/hash_table.h"

namespace gqr {

struct OccupancyStats {
  size_t num_items = 0;
  size_t num_buckets = 0;       // Non-empty.
  size_t possible_buckets = 0;  // 2^m.
  double mean_occupancy = 0.0;  // items / non-empty buckets.
  size_t max_occupancy = 0;
  size_t median_occupancy = 0;
  /// Fraction of the 2^m code space that is occupied.
  double fill_fraction = 0.0;
  /// Normalized Shannon entropy of the bucket-size distribution in
  /// [0, 1]; 1 = perfectly uniform occupancy.
  double occupancy_entropy = 0.0;
  /// Fraction of items living in the largest 1% of buckets — the skew
  /// that makes Hamming-tied bucket ordering matter.
  double top1pct_mass = 0.0;
};

/// Occupancy statistics of a built table.
OccupancyStats ComputeOccupancy(const StaticHashTable& table);

struct BitBalanceStats {
  /// Per-bit fraction of items with bit = 1 (ideal: 0.5 each).
  std::vector<double> ones_fraction;
  /// Max absolute deviation from 0.5 across bits.
  double worst_imbalance = 0.0;
  /// Mean absolute pairwise bit correlation (ideal: 0).
  double mean_abs_correlation = 0.0;
};

/// Bit balance/correlation of a hasher over (a sample of) a dataset.
BitBalanceStats ComputeBitBalance(const BinaryHasher& hasher,
                                  const Dataset& data,
                                  size_t max_samples = 20000);

/// Multi-line human-readable rendering.
std::string OccupancyReport(const OccupancyStats& stats);
std::string BitBalanceReport(const BitBalanceStats& stats);

}  // namespace gqr

#endif  // GQR_EVAL_DIAGNOSTICS_H_
