// Experiment harness: runs a querying method over a query batch at a
// sweep of candidate budgets and produces the recall-time / recall-items
// curves every figure of the paper is built from.
//
// Per the paper's methodology, each sweep point times the *entire*
// querying stage — hashing the query, retrieval (prober work, including
// QR's upfront sort, so the slow-start cost is visible), and evaluation —
// summed over all queries in the batch.
#ifndef GQR_EVAL_HARNESS_H_
#define GQR_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/mih_prober.h"
#include "core/prober.h"
#include "core/searcher.h"
#include "data/dataset.h"
#include "data/ground_truth.h"
#include "eval/curve.h"
#include "hash/binary_hasher.h"
#include "index/hash_table.h"
#include "index/multi_table.h"
#include "vq/imi.h"

namespace gqr {

/// The querying methods under evaluation.
enum class QueryMethod {
  kHR,   // Hamming ranking: full sort of buckets by Hamming distance.
  kGHR,  // Generate-to-probe Hamming ranking ("hash lookup").
  kQR,   // QD ranking: full sort of buckets by quantization distance.
  kGQR,  // Generate-to-probe QD ranking — the paper's algorithm.
};

const char* QueryMethodName(QueryMethod method);

/// Creates the per-query prober implementing `method` on one table.
std::unique_ptr<BucketProber> MakeProber(QueryMethod method,
                                         const QueryHashInfo& info,
                                         const StaticHashTable& table,
                                         uint32_t table_id = 0);

struct HarnessOptions {
  size_t k = 20;
  /// Candidate budgets (N) to sweep, ascending. See DefaultBudgets().
  std::vector<size_t> budgets;
};

/// Geometric budget ladder up to max_fraction * n (always at least k).
std::vector<size_t> DefaultBudgets(size_t n, size_t k,
                                   double max_fraction = 0.3,
                                   size_t points = 10);

/// Recall-time sweep of a (single-table) querying method.
Curve RunMethodCurve(QueryMethod method, const Dataset& base,
                     const Dataset& queries,
                     const std::vector<Neighbors>& ground_truth,
                     const BinaryHasher& hasher, const StaticHashTable& table,
                     const HarnessOptions& options);

/// Multi-table variant: one prober per table merged by score.
Curve RunMultiTableCurve(QueryMethod method, const Dataset& base,
                         const Dataset& queries,
                         const std::vector<Neighbors>& ground_truth,
                         const MultiTableIndex& index,
                         const HarnessOptions& options);

/// MIH sweep (appendix baseline): candidates in ascending full-code
/// Hamming distance, then rerank.
Curve RunMihCurve(const Dataset& base, const Dataset& queries,
                  const std::vector<Neighbors>& ground_truth,
                  const BinaryHasher& hasher, const MihIndex& index,
                  const HarnessOptions& options);

/// OPQ+IMI sweep (§6.5 comparator): cells in ascending distance-table
/// order, then rerank.
Curve RunImiCurve(const Dataset& base, const Dataset& queries,
                  const std::vector<Neighbors>& ground_truth,
                  const ImiIndex& index, const HarnessOptions& options);

}  // namespace gqr

#endif  // GQR_EVAL_HARNESS_H_
