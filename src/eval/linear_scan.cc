#include "eval/linear_scan.h"

#include "data/ground_truth.h"
#include "util/timer.h"

namespace gqr {

LinearScanResult TimeLinearScan(const Dataset& base, const Dataset& queries,
                                size_t k) {
  LinearScanResult result;
  result.queries = queries.size();
  result.k = k;
  Timer timer;
  // BruteForceKnn streams the base through the dispatched SIMD kernels
  // (blocked evaluation, la/simd_kernels.h), so this measures the true
  // hardware linear-scan floor the recall-time curves are compared to.
  volatile float sink = 0.f;  // Keep the scan from being optimized away.
  for (size_t q = 0; q < queries.size(); ++q) {
    Neighbors n = BruteForceKnn(base, queries.Row(static_cast<ItemId>(q)), k);
    sink = sink + n.distances.front();
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace gqr
