#include "eval/curve.h"

namespace gqr {

namespace {

// Interpolates x(recall = target) where x is extracted per point.
template <typename GetX>
double InterpolateAtRecall(const Curve& curve, double target, GetX get_x) {
  if (curve.points.empty()) return -1.0;
  if (curve.points.front().recall >= target) {
    return get_x(curve.points.front());
  }
  for (size_t i = 1; i < curve.points.size(); ++i) {
    const CurvePoint& lo = curve.points[i - 1];
    const CurvePoint& hi = curve.points[i];
    if (hi.recall >= target) {
      const double span = hi.recall - lo.recall;
      const double frac = span > 0.0 ? (target - lo.recall) / span : 1.0;
      return get_x(lo) + frac * (get_x(hi) - get_x(lo));
    }
  }
  return -1.0;
}

}  // namespace

double TimeAtRecall(const Curve& curve, double target) {
  return InterpolateAtRecall(curve, target,
                             [](const CurvePoint& p) { return p.seconds; });
}

double ItemsAtRecall(const Curve& curve, double target) {
  return InterpolateAtRecall(
      curve, target, [](const CurvePoint& p) { return p.items_evaluated; });
}

}  // namespace gqr
