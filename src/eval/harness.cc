#include "eval/harness.h"

#include <algorithm>
#include <cmath>

#include "core/ghr_prober.h"
#include "core/gqr_prober.h"
#include "core/hr_prober.h"
#include "core/multi_prober.h"
#include "core/qr_prober.h"
#include "eval/metrics.h"
#include "util/check.h"
#include "util/timer.h"

namespace gqr {

const char* QueryMethodName(QueryMethod method) {
  switch (method) {
    case QueryMethod::kHR:
      return "HR";
    case QueryMethod::kGHR:
      return "GHR";
    case QueryMethod::kQR:
      return "QR";
    case QueryMethod::kGQR:
      return "GQR";
  }
  return "?";
}

std::unique_ptr<BucketProber> MakeProber(QueryMethod method,
                                         const QueryHashInfo& info,
                                         const StaticHashTable& table,
                                         uint32_t table_id) {
  switch (method) {
    case QueryMethod::kHR:
      return std::make_unique<HrProber>(info, table, table_id);
    case QueryMethod::kGHR:
      return std::make_unique<GhrProber>(info, table_id);
    case QueryMethod::kQR:
      return std::make_unique<QrProber>(info, table, table_id);
    case QueryMethod::kGQR:
      return std::make_unique<GqrProber>(info, table_id);
  }
  return nullptr;
}

std::vector<size_t> DefaultBudgets(size_t n, size_t k, double max_fraction,
                                   size_t points) {
  GQR_CHECK(points >= 2);
  const double max_budget =
      std::max<double>(static_cast<double>(k) * 2.0,
                       static_cast<double>(n) * max_fraction);
  const double min_budget = std::max<double>(static_cast<double>(k),
                                             max_budget / 512.0);
  std::vector<size_t> budgets;
  const double ratio =
      std::pow(max_budget / min_budget,
               1.0 / static_cast<double>(points - 1));
  double b = min_budget;
  for (size_t i = 0; i < points; ++i) {
    const auto budget = static_cast<size_t>(std::lround(b));
    if (budgets.empty() || budget > budgets.back()) budgets.push_back(budget);
    b *= ratio;
  }
  return budgets;
}

namespace {

// Shared sweep skeleton: for each budget, run `run_query(q, budget)` over
// the whole batch under one timer and average the quality numbers.
template <typename RunQueryFn>
Curve SweepBudgets(const std::string& name, const Dataset& queries,
                   const std::vector<Neighbors>& ground_truth, size_t k,
                   const std::vector<size_t>& budgets,
                   RunQueryFn run_query) {
  GQR_CHECK(queries.size() == ground_truth.size());
  Curve curve;
  curve.name = name;
  for (size_t budget : budgets) {
    CurvePoint point;
    Timer timer;
    std::vector<SearchResult> results(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      results[q] = run_query(static_cast<ItemId>(q), budget);
    }
    point.seconds = timer.ElapsedSeconds();
    for (size_t q = 0; q < queries.size(); ++q) {
      const SearchResult& r = results[q];
      point.recall += RecallAtK(r.ids, ground_truth[q], k);
      point.items_evaluated +=
          static_cast<double>(r.stats.items_evaluated);
      point.buckets_probed += static_cast<double>(r.stats.buckets_probed);
      point.precision += Precision(r.ids, ground_truth[q], k,
                                   r.stats.items_evaluated);
    }
    const auto nq = static_cast<double>(queries.size());
    point.recall /= nq;
    point.items_evaluated /= nq;
    point.buckets_probed /= nq;
    point.precision /= nq;
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace

Curve RunMethodCurve(QueryMethod method, const Dataset& base,
                     const Dataset& queries,
                     const std::vector<Neighbors>& ground_truth,
                     const BinaryHasher& hasher, const StaticHashTable& table,
                     const HarnessOptions& options) {
  Searcher searcher(base);
  return SweepBudgets(
      QueryMethodName(method), queries, ground_truth, options.k,
      options.budgets, [&](ItemId q, size_t budget) {
        const float* query = queries.Row(q);
        const QueryHashInfo info = hasher.HashQuery(query);
        std::unique_ptr<BucketProber> prober =
            MakeProber(method, info, table);
        SearchOptions so;
        so.k = options.k;
        so.max_candidates = budget;
        return searcher.Search(query, prober.get(), table, so);
      });
}

Curve RunMultiTableCurve(QueryMethod method, const Dataset& base,
                         const Dataset& queries,
                         const std::vector<Neighbors>& ground_truth,
                         const MultiTableIndex& index,
                         const HarnessOptions& options) {
  Searcher searcher(base);
  const std::string name = std::string(QueryMethodName(method)) + "(" +
                           std::to_string(index.num_tables()) + " tables)";
  return SweepBudgets(
      name, queries, ground_truth, options.k, options.budgets,
      [&](ItemId q, size_t budget) {
        const float* query = queries.Row(q);
        std::vector<std::unique_ptr<BucketProber>> probers;
        probers.reserve(index.num_tables());
        for (size_t t = 0; t < index.num_tables(); ++t) {
          const QueryHashInfo info = index.hasher(t).HashQuery(query);
          probers.push_back(MakeProber(method, info, index.table(t),
                                       static_cast<uint32_t>(t)));
        }
        MultiProber merged(std::move(probers));
        SearchOptions so;
        so.k = options.k;
        so.max_candidates = budget;
        return searcher.Search(query, &merged, index, so);
      });
}

Curve RunMihCurve(const Dataset& base, const Dataset& queries,
                  const std::vector<Neighbors>& ground_truth,
                  const BinaryHasher& hasher, const MihIndex& index,
                  const HarnessOptions& options) {
  Searcher searcher(base);
  return SweepBudgets(
      "MIH", queries, ground_truth, options.k, options.budgets,
      [&](ItemId q, size_t budget) {
        const float* query = queries.Row(q);
        const Code code = hasher.HashQuery(query).code;
        const std::vector<ItemId> candidates =
            index.Collect(code, budget, nullptr);
        SearchOptions so;
        so.k = options.k;
        so.max_candidates = budget;
        return searcher.RerankCandidates(query, candidates, so);
      });
}

Curve RunImiCurve(const Dataset& base, const Dataset& queries,
                  const std::vector<Neighbors>& ground_truth,
                  const ImiIndex& index, const HarnessOptions& options) {
  Searcher searcher(base);
  return SweepBudgets(
      "OPQ+IMI", queries, ground_truth, options.k, options.budgets,
      [&](ItemId q, size_t budget) {
        const float* query = queries.Row(q);
        const std::vector<ItemId> candidates =
            index.Collect(query, budget, nullptr);
        SearchOptions so;
        so.k = options.k;
        so.max_candidates = budget;
        return searcher.RerankCandidates(query, candidates, so);
      });
}

}  // namespace gqr
