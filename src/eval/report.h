// Plain-text reporters: every bench binary prints the same rows/series
// the corresponding paper table or figure reports.
#ifndef GQR_EVAL_REPORT_H_
#define GQR_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/curve.h"

namespace gqr {

/// Prints a figure-style series block:
///   # <title>
///   method,seconds,recall,items,buckets
///   GQR,0.01,0.42,...
void PrintCurves(const std::string& title, const std::vector<Curve>& curves);

/// Prints curves keyed on items-evaluated instead of time (Figure 8).
void PrintRecallItemsCurves(const std::string& title,
                            const std::vector<Curve>& curves);

/// Prints an aligned table with a header row.
void PrintTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// Formats a double with `digits` significant decimals.
std::string FormatDouble(double v, int digits = 4);

}  // namespace gqr

#endif  // GQR_EVAL_REPORT_H_
