// Budget auto-tuner: pick the candidate budget N that reaches a target
// recall on a validation query set.
//
// Deployments speak in recall SLOs ("95% recall@10"), not candidate
// counts; this maps one to the other for a given dataset + hasher +
// querying method by bisection over budgets, using held-out validation
// queries with exact ground truth.
#ifndef GQR_EVAL_TUNER_H_
#define GQR_EVAL_TUNER_H_

#include <cstddef>

#include "data/dataset.h"
#include "data/ground_truth.h"
#include "eval/harness.h"
#include "hash/binary_hasher.h"
#include "index/hash_table.h"

namespace gqr {

struct TuneOptions {
  QueryMethod method = QueryMethod::kGQR;
  size_t k = 20;
  double target_recall = 0.9;
  /// Bisection stops when hi/lo <= this ratio.
  double budget_resolution = 1.25;
  /// Upper bound on the budget as a fraction of the base size.
  double max_fraction = 1.0;
};

struct TuneResult {
  /// Smallest tested budget reaching the target (0 when infeasible).
  size_t budget = 0;
  /// Validation recall measured at `budget`.
  double achieved_recall = 0.0;
  bool feasible = false;
  /// Mean validation recall at the upper budget bound (diagnostic when
  /// infeasible).
  double recall_at_max = 0.0;
};

/// Bisects the candidate budget for `options.method` until the mean
/// validation recall crosses options.target_recall.
TuneResult TuneBudgetForRecall(const Dataset& base,
                               const Dataset& validation_queries,
                               const std::vector<Neighbors>& ground_truth,
                               const BinaryHasher& hasher,
                               const StaticHashTable& table,
                               const TuneOptions& options);

}  // namespace gqr

#endif  // GQR_EVAL_TUNER_H_
