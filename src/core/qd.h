// Quantization distance (Definition 1) and the Theorem 2 lower-bound
// constant.
#ifndef GQR_CORE_QD_H_
#define GQR_CORE_QD_H_

#include "hash/binary_hasher.h"
#include "hash/projection_hasher.h"
#include "util/bits.h"

namespace gqr {

/// QD(q, b) = sum_i (c_i(q) XOR b_i) * flip_cost_i — the minimum total
/// flipping cost to requantize the query into bucket `bucket`.
double QuantizationDistance(const QueryHashInfo& info, Code bucket);

/// Theorem 2's scaling factor mu = 1 / (M sqrt(m)), where
/// M = sigma_max(H) is the spectral norm of the hashing matrix: for any
/// item o in bucket b, ||o - q|| >= mu * QD(q, b). Returns 0 (no usable
/// bound) when the hasher has no affine hashing matrix or M = 0.
double TheoremTwoMu(const ProjectionHasher& hasher);

}  // namespace gqr

#endif  // GQR_CORE_QD_H_
