#include "core/multi_prober.h"

namespace gqr {

MultiProber::MultiProber(
    std::vector<std::unique_ptr<BucketProber>> probers)
    : probers_(std::move(probers)) {
  for (size_t p = 0; p < probers_.size(); ++p) Refill(p);
}

void MultiProber::Refill(size_t p) {
  ProbeTarget t;
  if (probers_[p]->Next(&t)) {
    heap_.push(Pending{probers_[p]->last_score(), t, p});
  }
}

bool MultiProber::Next(ProbeTarget* target) {
  if (heap_.empty()) return false;
  const Pending top = heap_.top();
  heap_.pop();
  Refill(top.prober);
  last_score_ = top.score;
  *target = top.target;
#if GQR_VALIDATE_ENABLED
  validator_.ObserveScore(top.score);
#endif
  return true;
}

}  // namespace gqr
