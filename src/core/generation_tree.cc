#include "core/generation_tree.h"

#include <algorithm>
#include <array>

#include "core/validators.h"
#include "util/check.h"
#include "util/sync.h"

namespace gqr {

namespace {

// Shared-instance cache, one slot per code length. File-scope (not
// function-local statics) so the guarded_by relationship is visible to
// the thread-safety analysis; both are constant-initialized, so there is
// no init-order hazard.
Mutex g_shared_tree_mu;
std::array<const GenerationTree*, 64> g_shared_tree_cache
    GQR_GUARDED_BY(g_shared_tree_mu) = {};

}  // namespace

GenerationTree::GenerationTree(int m, size_t max_nodes) : m_(m) {
  GQR_CHECK(m >= 1 && m <= 63) << "code length " << m;
  // Full tree size is 2^m - 1 (every non-zero sorted flipping vector).
  const size_t full =
      m >= 60 ? max_nodes : std::min(max_nodes, (size_t{1} << m) - 1);
  nodes_.reserve(full);
  nodes_.push_back(Node{uint64_t{1}, 0, kInvalidNode, kInvalidNode});
  // BFS: children are appended in pop order, so the array is level-ordered
  // and the first `size()` nodes are exactly the shallowest ones.
  for (size_t i = 0; i < nodes_.size() && nodes_.size() < full; ++i) {
    // Note: nodes_[i] may be reallocated by push_back; copy first.
    Node parent = nodes_[i];
    if (parent.rightmost + 1 >= m_) continue;
    const int j = parent.rightmost;
    {
      const auto child = static_cast<uint32_t>(nodes_.size());
      nodes_[i].append_child = child;
      nodes_.push_back(Node{parent.mask | (uint64_t{1} << (j + 1)), j + 1,
                            kInvalidNode, kInvalidNode});
      if (nodes_.size() >= full) break;
    }
    {
      const auto child = static_cast<uint32_t>(nodes_.size());
      nodes_[i].swap_child = child;
      nodes_.push_back(Node{
          (parent.mask ^ (uint64_t{1} << j)) | (uint64_t{1} << (j + 1)),
          j + 1, kInvalidNode, kInvalidNode});
    }
  }
  complete_ = m_ < 60 && nodes_.size() == (size_t{1} << m_) - 1;
#if GQR_VALIDATE_ENABLED
  ValidateGenerationTree(*this);
#endif
}

const GenerationTree& GenerationTree::Shared(int m) {
  GQR_CHECK(m >= 1 && m <= 63) << "code length " << m;
  MutexLock lock(g_shared_tree_mu);
  if (g_shared_tree_cache[m] == nullptr) {
    g_shared_tree_cache[m] = new GenerationTree(m);
  }
  return *g_shared_tree_cache[m];
}

}  // namespace gqr
