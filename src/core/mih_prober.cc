#include "core/mih_prober.h"

#include "util/check.h"

namespace gqr {

MihIndex::MihIndex(const std::vector<Code>& codes, int code_length,
                   int num_blocks)
    : code_length_(code_length), item_codes_(codes) {
  GQR_CHECK(code_length >= 1 && code_length <= 64)
      << "code length " << code_length;
  GQR_CHECK(num_blocks >= 1 && num_blocks <= code_length)
      << "block count " << num_blocks << " for m=" << code_length;
  blocks_.reserve(num_blocks);
  for (int b = 0; b < num_blocks; ++b) {
    Block block;
    block.bit_begin = code_length * b / num_blocks;
    block.bit_end = code_length * (b + 1) / num_blocks;
    std::vector<Code> subs(codes.size());
    for (size_t i = 0; i < codes.size(); ++i) {
      subs[i] = Substring(codes[i], block);
    }
    block.table = StaticHashTable(subs, block.bit_end - block.bit_begin);
    blocks_.push_back(std::move(block));
  }
}

std::vector<ItemId> MihIndex::Collect(Code query_code, size_t max_candidates,
                                      ProbeStats* stats) const {
  std::vector<ItemId> out;
  if (max_candidates == 0 || item_codes_.empty()) return out;
  out.reserve(max_candidates);

  const size_t n = item_codes_.size();
  std::vector<bool> seen(n, false);
  // Pool of discovered-but-not-yet-emitted candidates, binned by exact
  // full-code Hamming distance.
  std::vector<std::vector<ItemId>> by_distance(code_length_ + 1);

  const int num_blocks = static_cast<int>(blocks_.size());
  int probed_radius = -1;  // Substring radius already probed in all blocks.

  for (int r = 0; r <= code_length_ && out.size() < max_candidates; ++r) {
    const int needed_radius = r / num_blocks;
    // Probe each block at every not-yet-probed substring radius up to the
    // pigeonhole bound for full radius r.
    while (probed_radius < needed_radius) {
      ++probed_radius;
      for (const Block& block : blocks_) {
        const int sub_bits = block.bit_end - block.bit_begin;
        if (probed_radius > sub_bits) continue;
        const Code q_sub = Substring(query_code, block);
        // Enumerate substrings at exactly `probed_radius` flips.
        uint64_t mask = probed_radius == 0 ? 0 : LowBitsMask(probed_radius);
        const Code space = LowBitsMask(sub_bits);
        for (;;) {
          if (stats != nullptr) ++stats->substring_lookups;
          for (ItemId id : block.table.Probe(q_sub ^ mask)) {
            if (seen[id]) {
              if (stats != nullptr) ++stats->duplicates;
              continue;
            }
            seen[id] = true;
            const int full_d = HammingDistance(item_codes_[id], query_code);
            if (full_d > r && stats != nullptr) ++stats->distance_filtered;
            by_distance[full_d].push_back(id);
          }
          if (mask == 0) break;
          const uint64_t next = NextSamePopCount(mask);
          if ((next & ~space) != 0) break;
          mask = next;
        }
      }
    }
    // Emit everything at exact distance r (coverage of distance <= r is
    // guaranteed once all blocks are probed to floor(r/B)).
    for (ItemId id : by_distance[r]) {
      out.push_back(id);
      if (out.size() >= max_candidates) break;
    }
  }
  return out;
}

}  // namespace gqr
