// Batched candidate evaluation + reusable search scratch.
//
// The candidate-verification loop is the end-to-end bottleneck of every
// querying method (bucket generation is O(log i) per probe; verification
// is O(d) per candidate). This layer makes that loop fast and
// allocation-free:
//
//  - QueryContext caches the per-query terms of the metric (the query
//    norm for cosine) once, instead of recomputing them per candidate.
//  - EvalDistancesBatch scores a whole bucket's candidates at once
//    through the dispatched SIMD kernels, software-prefetching upcoming
//    base rows while the current ones are being scored.
//  - SearchScratch owns every buffer the Searcher hot path needs
//    (candidate ids, distances, the top-k heap storage, and an
//    epoch-stamped visited set replacing the per-query std::vector<bool>
//    of multi-table search). Reusing one scratch across queries makes the
//    hot path allocation-free after warmup.
#ifndef GQR_CORE_EVAL_BATCH_H_
#define GQR_CORE_EVAL_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/metric.h"
#include "data/compressed_dataset.h"
#include "data/dataset.h"
#include "util/attributes.h"

namespace gqr {

/// Per-query constants of the metric, computed once per search.
struct QueryContext {
  Metric metric = Metric::kEuclidean;
  /// |query|; only meaningful under Metric::kAngular.
  float query_norm = 0.f;
};

/// Builds the context for one query (computes the query norm for cosine).
QueryContext MakeQueryContext(const float* query, size_t dim, Metric metric);

/// out[i] = distance(base.Row(ids[i]), query) under ctx.metric, for
/// i in [0, count). Euclidean distances are true L2 (sqrt applied);
/// angular is 1 - cosine with the cached query norm (1.0 when either
/// vector has zero norm, matching CosineDistance). Prefetches rows a few
/// candidates ahead so the gather's cache misses overlap the arithmetic.
/// GQR_HOT: the per-candidate loop performs no allocation at all, a
/// contract the tools/lint static pass enforces.
GQR_HOT void EvalDistancesBatch(const float* query, const QueryContext& ctx,
                                const Dataset& base, const ItemId* ids,
                                size_t count, float* out);

/// As EvalDistancesBatch, but scores candidates against their compressed
/// rows (CompKernels asymmetric distances), touching 1/4 (SQ8) or 1/2
/// (fp16) of the bytes per candidate. Euclidean distances are true L2 of
/// query vs *decoded* row; angular uses the encode-time cached row norm
/// so only the asymmetric dot runs per candidate. Distances are
/// approximate relative to the fp32 rows — the searcher uses them to
/// build a k*alpha shortlist it then exact-reranks (DESIGN.md section
/// 14). GQR_HOT: the per-candidate loop performs no allocation.
GQR_HOT void EvalDistancesBatchCompressed(const float* query,
                                          const QueryContext& ctx,
                                          const CompressedDataset& comp,
                                          const ItemId* ids, size_t count,
                                          float* out);

/// Reusable per-thread buffers for the Searcher hot path. A scratch may be
/// reused across queries, searchers, and datasets (buffers only ever
/// grow); it must not be shared by concurrent searches.
struct SearchScratch {
  /// Candidate ids of the bucket currently being evaluated.
  std::vector<ItemId> ids;
  /// Distances parallel to `ids`.
  std::vector<float> distances;
  /// Max-heap storage of the bounded top-k.
  std::vector<std::pair<float, ItemId>> heap;
  /// Projection buffer for batched query hashing: HashQueryBatch writes
  /// a tile's worth of projections (tile_rows x code_length doubles)
  /// here, so the hashing phase of BatchSearch reuses one allocation per
  /// worker instead of allocating per query.
  std::vector<double> projection;
  /// Gather buffer for sharded probing: ShardedIndex bucket copies land
  /// here (one bucket's union across shards at a time), since a sharded
  /// probe cannot hand out spans into mutable shard storage.
  std::vector<ItemId> shard_items;
  /// Shortlist ids drained from the compressed-pass heap, then exact-
  /// reranked against the fp32 rows (compressed rerank mode only).
  std::vector<ItemId> shortlist;
  /// Epoch-stamped visited set for multi-table de-duplication:
  /// visited[id] == epoch  <=>  id was already evaluated this query.
  /// Bumping the epoch invalidates all stamps in O(1), so queries after
  /// the first never touch (or zero) the whole array.
  std::vector<uint32_t> visited;
  uint32_t epoch = 0;

  /// Starts a new query: clears the per-bucket buffers (keeping capacity)
  /// and, when `need_visited`, advances the epoch and ensures the visited
  /// array covers `base_size` items.
  void BeginQuery(size_t base_size, bool need_visited);

  /// True if `id` was already seen this query; marks it seen otherwise.
  /// Only valid between BeginQuery(_, true) and the next BeginQuery.
  bool CheckAndMarkSeen(ItemId id) {
    uint32_t& stamp = visited[id];
    if (stamp == epoch) return true;
    stamp = epoch;
    return false;
  }
};

/// The calling thread's scratch; used by the Searcher when the caller
/// does not pass one explicitly. Worker threads of the shared pool keep
/// theirs alive across batches, so BatchSearch reuses buffers after the
/// first few queries.
SearchScratch& ThreadLocalSearchScratch();

}  // namespace gqr

#endif  // GQR_CORE_EVAL_BATCH_H_
