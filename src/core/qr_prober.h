// QR: quantization-distance ranking (paper §4.2, Algorithm 1).
//
// Computes QD for every *non-empty* bucket of the table upfront, sorts,
// and probes in ascending order. Semantically what GQR produces, but
// pays the full O(B log B) sort before the first probe — the "slow
// start" GQR exists to remove. Kept as the reference implementation and
// for the Figure 6 comparison.
#ifndef GQR_CORE_QR_PROBER_H_
#define GQR_CORE_QR_PROBER_H_

#include <vector>

#include "core/prober.h"
#include "core/validators.h"
#include "hash/binary_hasher.h"
#include "index/hash_table.h"

namespace gqr {

class QrProber : public BucketProber {
 public:
  QrProber(const QueryHashInfo& info, const StaticHashTable& table,
           uint32_t table_id = 0);

  /// As above, from an explicit bucket list instead of a table — used by
  /// the sharded path, which sorts the bucket-code *union* across shards.
  /// Emission order depends only on the code set (ties broken by code),
  /// so this is identical to the table constructor when `bucket_codes`
  /// equals the table's bucket_codes().
  QrProber(const QueryHashInfo& info, const std::vector<Code>& bucket_codes,
           uint32_t table_id = 0);

  bool Next(ProbeTarget* target) override;
  double last_score() const override { return last_qd_; }

  /// QR's score is the quantization distance itself (ascending).
  double qd_bound() const override { return last_qd_; }

 private:
  struct Scored {
    double qd;
    Code bucket;
  };
  uint32_t table_id_;
  std::vector<Scored> order_;  // Ascending QD.
  size_t pos_ = 0;
  double last_qd_ = 0.0;
#if GQR_VALIDATE_ENABLED
  ProbeSequenceValidator validator_{"QrProber"};
#endif
};

}  // namespace gqr

#endif  // GQR_CORE_QR_PROBER_H_
