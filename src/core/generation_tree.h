// The shared generation tree of paper §5.3.
//
// The Append/Swap tree over sorted flipping vectors (Definition 4) has a
// *query-independent structure*: node masks and parent/child links only
// depend on the code length m, while a query only changes the QD values
// attached to nodes. The paper notes that the tree can therefore be
// precomputed once, with flipping vectors coded as integers in an array,
// so probing fetches children by index instead of recomputing Append and
// Swap. This class is that array; GqrProber can run against it (see
// GqrProber's use_shared_tree option) and bench/micro_core measures the
// difference.
//
// Nodes are stored in BFS order from the root v^r = (1, 0, ..., 0).
// A full tree has 2^m - 1 nodes, so materialization is capped; probers
// fall back to on-the-fly Append/Swap past the cap (deep nodes are only
// reached at extreme probe depths).
#ifndef GQR_CORE_GENERATION_TREE_H_
#define GQR_CORE_GENERATION_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gqr {

class GenerationTree {
 public:
  static constexpr uint32_t kInvalidNode = 0xffffffffu;

  struct Node {
    uint64_t mask;          // Sorted flipping vector.
    int rightmost;          // Index of the highest set bit of mask.
    uint32_t append_child;  // kInvalidNode when absent/not materialized.
    uint32_t swap_child;
  };

  /// Builds the tree for code length m, materializing at most max_nodes
  /// nodes (BFS order guarantees the shallowest — i.e. first-probed —
  /// nodes are always in the array).
  explicit GenerationTree(int m, size_t max_nodes = size_t{1} << 18);

  int code_length() const { return m_; }
  size_t size() const { return nodes_.size(); }
  const Node& node(uint32_t idx) const { return nodes_[idx]; }
  /// True when every node of the full tree is materialized.
  bool complete() const { return complete_; }

  /// Process-wide shared instance per code length (the paper's "common
  /// to all queries" usage). Thread-safe; built on first use.
  static const GenerationTree& Shared(int m);

 private:
  int m_;
  bool complete_;
  std::vector<Node> nodes_;
};

}  // namespace gqr

#endif  // GQR_CORE_GENERATION_TREE_H_
