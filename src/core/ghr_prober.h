// GHR: generate-to-probe Hamming ranking, a.k.a. hash lookup (paper
// §6.3) — HR's slow start removed the same way GQR removes QR's.
//
// Generates candidate codes directly in ascending Hamming distance from
// c(q): radius 0 is c(q) itself, radius r enumerates all C(m, r) flip
// masks via Gosper's hack. Lazily enumerates, so a budget-limited search
// touches only a prefix of the 2^m code space (possibly including empty
// buckets, which cost one failed table lookup each).
#ifndef GQR_CORE_GHR_PROBER_H_
#define GQR_CORE_GHR_PROBER_H_

#include <vector>

#include "core/prober.h"
#include "core/validators.h"
#include "hash/binary_hasher.h"

namespace gqr {

class GhrProber : public BucketProber {
 public:
  /// code_length is m; info supplies c(q). The probe *order* ignores the
  /// flip costs — Hamming ranking uses no magnitude information, which
  /// is exactly its coarse-grain problem — but qd_bound() keeps their
  /// sorted prefix sums so bound-based termination stays sound here too.
  GhrProber(const QueryHashInfo& info, uint32_t table = 0);

  bool Next(ProbeTarget* target) override;
  double last_score() const override {
    return static_cast<double>(radius_);
  }

  /// Sum of the radius_ smallest flipping costs: a bucket differing in
  /// h >= radius_ bits has QD at least this large (see HrProber).
  double qd_bound() const override {
    return cost_prefix_[static_cast<size_t>(radius_)];
  }

 private:
  /// Advances mask_ to the next flip mask, bumping the radius when the
  /// current radius is exhausted. Returns false past radius m.
  bool AdvanceMask();

  uint32_t table_;
  int m_;
  Code query_code_;
  Code code_space_mask_;
  std::vector<double> cost_prefix_;  // Prefix sums of sorted flip costs.
  int radius_ = 0;       // Hamming distance of the last emitted bucket.
  uint64_t mask_ = 0;    // Current flip mask (popcount == radius_).
  bool emitted_root_ = false;
#if GQR_VALIDATE_ENABLED
  ProbeSequenceValidator validator_{"GhrProber"};
#endif
};

}  // namespace gqr

#endif  // GQR_CORE_GHR_PROBER_H_
