#include "core/sharded_search.h"

#include "core/batch_search.h"
#include "core/ghr_prober.h"
#include "core/gqr_prober.h"
#include "core/hr_prober.h"
#include "core/qr_prober.h"
#include "plan/planner.h"
#include "util/parallel_for.h"

namespace gqr {

std::unique_ptr<BucketProber> MakeShardedProber(
    QueryMethod method, const QueryHashInfo& info,
    const std::vector<Code>& bucket_union, int code_length) {
  switch (method) {
    case QueryMethod::kHR:
      return std::make_unique<HrProber>(info, bucket_union, code_length);
    case QueryMethod::kGHR:
      return std::make_unique<GhrProber>(info);
    case QueryMethod::kQR:
      return std::make_unique<QrProber>(info, bucket_union);
    case QueryMethod::kGQR:
      return std::make_unique<GqrProber>(info);
  }
  return nullptr;
}

bool MethodNeedsBucketUnion(QueryMethod method) {
  return method == QueryMethod::kHR || method == QueryMethod::kQR;
}

void ShardedSearchInto(const Searcher& searcher, const BinaryHasher& hasher,
                       const ShardedIndex& index, const Dataset& queries,
                       QueryMethod method, const SearchOptions& options,
                       std::vector<SearchResult>* results, ThreadPool* pool) {
  const size_t nq = queries.size();
  results->resize(nq);
  if (nq == 0) return;

  // HR/QR sort a bucket list upfront; snapshot the cross-shard union
  // once per batch (one shared-lock pass per shard). Under concurrent
  // ingest the union is a point-in-time approximation — new buckets
  // created after the snapshot are not probed this batch, which is the
  // same staleness any sorted-upfront method has on a mutating index.
  std::vector<Code> bucket_union;
  if (MethodNeedsBucketUnion(method)) {
    bucket_union = index.BucketCodeUnion();
  }

  // Phase 1: batched query hashing, identical to BatchSearch.
  std::vector<QueryHashInfo> infos(nq);
  BatchHashQueries(hasher, queries, infos.data(), pool);

  // Phase 2: probe + evaluate per query against the sharded index.
  ParallelFor(0, nq, [&](size_t q) {
    const float* query = queries.Row(static_cast<ItemId>(q));
    std::unique_ptr<BucketProber> prober =
        MakeShardedProber(method, infos[q], bucket_union, index.code_length());
    // Per-query plan inputs, exactly as in BatchSearchInto.
    SearchOptions per_query = options;
    if (per_query.plan.planner != nullptr) {
      per_query.plan.feature_key = QueryFeatureKey(infos[q]);
      per_query.plan.ticket = options.plan.ticket + q;
    }
    searcher.SearchInto(query, prober.get(), index, per_query,
                        /*scratch=*/nullptr, &(*results)[q]);
  }, /*min_parallel=*/2, pool);
}

std::vector<SearchResult> ShardedSearch(const Searcher& searcher,
                                        const BinaryHasher& hasher,
                                        const ShardedIndex& index,
                                        const Dataset& queries,
                                        QueryMethod method,
                                        const SearchOptions& options,
                                        ThreadPool* pool) {
  std::vector<SearchResult> results;
  ShardedSearchInto(searcher, hasher, index, queries, method, options,
                    &results, pool);
  return results;
}

}  // namespace gqr
