#include "core/batch_search.h"

#include "util/parallel_for.h"

namespace gqr {

std::vector<SearchResult> BatchSearch(const Searcher& searcher,
                                      const BinaryHasher& hasher,
                                      const StaticHashTable& table,
                                      const Dataset& queries,
                                      QueryMethod method,
                                      const SearchOptions& options) {
  std::vector<SearchResult> results(queries.size());
  ParallelFor(0, queries.size(), [&](size_t q) {
    const float* query = queries.Row(static_cast<ItemId>(q));
    const QueryHashInfo info = hasher.HashQuery(query);
    std::unique_ptr<BucketProber> prober = MakeProber(method, info, table);
    results[q] = searcher.Search(query, prober.get(), table, options);
  }, /*min_parallel=*/2);
  return results;
}

}  // namespace gqr
