#include "core/batch_search.h"

#include <algorithm>

#include "plan/planner.h"
#include "util/parallel_for.h"

namespace gqr {

namespace {

// Queries hashed per batched-projection tile. Tile boundaries are fixed
// (independent of thread count), so batch results are deterministic
// across pools — and since HashQueryBatch is bit-identical to HashQuery,
// across the batched and per-query paths too.
constexpr size_t kHashTile = 64;

// Per-calling-thread QueryHashInfo storage, reused across batches so the
// steady-state hashing phase performs no per-query allocation (each
// info's flip_costs keeps its capacity).
std::vector<QueryHashInfo>& TlQueryInfos(size_t n) {
  thread_local std::vector<QueryHashInfo> infos;
  if (infos.size() < n) infos.resize(n);
  return infos;
}

}  // namespace

void BatchHashQueries(const BinaryHasher& hasher, const float* queries,
                      size_t count, size_t stride, QueryHashInfo* infos,
                      ThreadPool* pool) {
  const size_t num_tiles = (count + kHashTile - 1) / kHashTile;
  ParallelFor(0, num_tiles, [&](size_t t) {
    const size_t lo = t * kHashTile;
    const size_t hi = std::min(count, lo + kHashTile);
    hasher.HashQueryBatch(queries + lo * stride, hi - lo, stride,
                          &ThreadLocalSearchScratch().projection, &infos[lo]);
  }, /*min_parallel=*/2, pool);
}

void BatchHashQueries(const BinaryHasher& hasher, const Dataset& queries,
                      QueryHashInfo* infos, ThreadPool* pool) {
  BatchHashQueries(hasher, queries.data(), queries.size(), queries.dim(),
                   infos, pool);
}

void BatchSearchInto(const Searcher& searcher, const BinaryHasher& hasher,
                     const StaticHashTable& table, const Dataset& queries,
                     QueryMethod method, const SearchOptions& options,
                     std::vector<SearchResult>* results, ThreadPool* pool) {
  const size_t nq = queries.size();
  results->resize(nq);
  if (nq == 0) return;

  // Phase 1: hash the whole query block up front, one batched projection
  // (a single GEMM for projection hashers) per tile. Worker threads
  // project into their thread-local SearchScratch's projection buffer.
  std::vector<QueryHashInfo>& infos = TlQueryInfos(nq);
  BatchHashQueries(hasher, queries, infos.data(), pool);

  // Phase 2: probe + evaluate per query, starting from the precomputed
  // QueryHashInfo.
  ParallelFor(0, nq, [&](size_t q) {
    const float* query = queries.Row(static_cast<ItemId>(q));
    std::unique_ptr<BucketProber> prober = MakeProber(method, infos[q], table);
    // Per-query plan inputs: the feature key comes from the query's own
    // hash info, the exploration ticket from the caller's base ticket
    // plus the batch position — deterministic whatever the thread
    // interleaving.
    SearchOptions per_query = options;
    if (per_query.plan.planner != nullptr) {
      per_query.plan.feature_key = QueryFeatureKey(infos[q]);
      per_query.plan.ticket = options.plan.ticket + q;
    }
    // nullptr scratch = the worker thread's scratch, which persists
    // across queries and batches on the pool's threads.
    searcher.SearchInto(query, prober.get(), table, per_query,
                        /*scratch=*/nullptr, &(*results)[q]);
  }, /*min_parallel=*/2, pool);
}

std::vector<SearchResult> BatchSearch(const Searcher& searcher,
                                      const BinaryHasher& hasher,
                                      const StaticHashTable& table,
                                      const Dataset& queries,
                                      QueryMethod method,
                                      const SearchOptions& options,
                                      ThreadPool* pool) {
  std::vector<SearchResult> results;
  BatchSearchInto(searcher, hasher, table, queries, method, options, &results,
                  pool);
  return results;
}

}  // namespace gqr
