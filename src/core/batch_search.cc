#include "core/batch_search.h"

#include "util/parallel_for.h"

namespace gqr {

void BatchSearchInto(const Searcher& searcher, const BinaryHasher& hasher,
                     const StaticHashTable& table, const Dataset& queries,
                     QueryMethod method, const SearchOptions& options,
                     std::vector<SearchResult>* results, ThreadPool* pool) {
  results->resize(queries.size());
  ParallelFor(0, queries.size(), [&](size_t q) {
    const float* query = queries.Row(static_cast<ItemId>(q));
    const QueryHashInfo info = hasher.HashQuery(query);
    std::unique_ptr<BucketProber> prober = MakeProber(method, info, table);
    // nullptr scratch = the worker thread's scratch, which persists
    // across queries and batches on the pool's threads.
    searcher.SearchInto(query, prober.get(), table, options,
                        /*scratch=*/nullptr, &(*results)[q]);
  }, /*min_parallel=*/2, pool);
}

std::vector<SearchResult> BatchSearch(const Searcher& searcher,
                                      const BinaryHasher& hasher,
                                      const StaticHashTable& table,
                                      const Dataset& queries,
                                      QueryMethod method,
                                      const SearchOptions& options,
                                      ThreadPool* pool) {
  std::vector<SearchResult> results;
  BatchSearchInto(searcher, hasher, table, queries, method, options, &results,
                  pool);
  return results;
}

}  // namespace gqr
