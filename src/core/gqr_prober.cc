#include "core/gqr_prober.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace gqr {

namespace {

// Heap storage reserved per prober. Each Next() pops one entry and pushes
// at most two, so after N emissions the heap holds at most N + 1 entries;
// 1024 covers every realistic bucket budget (the paper's sweeps probe
// hundreds of buckets), capped by the 2^m total bucket count for short
// codes. 24 bytes per entry -> at most 24 KB per in-flight query.
size_t HeapReserve(int m) {
  const size_t kBudget = 1024;
  if (m >= 11) return kBudget;
  return std::min(kBudget, size_t{1} << m);
}

}  // namespace

GqrProber::GqrProber(const QueryHashInfo& info, uint32_t table,
                     const GenerationTree* tree)
    : table_(table),
      m_(info.code_length()),
      tree_(tree),
      query_code_(info.code) {
  GQR_CHECK(m_ >= 1 && m_ <= 64) << "code length " << m_;
  GQR_CHECK(tree == nullptr || tree->code_length() == m_)
      << "shared tree built for m=" << (tree != nullptr ? tree->code_length()
                                                        : 0)
      << ", query hashed with m=" << m_;
  // Reserve the heap's backing vector up front: the container adaptor is
  // rebuilt from a reserved vector (the move preserves capacity), so
  // Next() only touches the allocator past HeapReserve() entries.
  std::vector<Entry> storage;
  storage.reserve(HeapReserve(m_));
  heap_ = decltype(heap_)(std::greater<Entry>(), std::move(storage));
  // Sorted projected vector (Definition 3): sort |p_i(q)| ascending and
  // remember the mapping back to original bit positions.
  perm_.resize(m_);
  std::iota(perm_.begin(), perm_.end(), 0);
  std::sort(perm_.begin(), perm_.end(), [&](int a, int b) {
    if (info.flip_costs[a] != info.flip_costs[b]) {
      return info.flip_costs[a] < info.flip_costs[b];
    }
    return a < b;
  });
  sorted_costs_.resize(m_);
  for (int s = 0; s < m_; ++s) sorted_costs_[s] = info.flip_costs[perm_[s]];
}

Code GqrProber::BucketForMask(uint64_t mask) const {
  Code bucket = query_code_;
  while (mask != 0) {
    const int s = LowestSetBit(mask);
    bucket = FlipBit(bucket, perm_[s]);
    mask &= mask - 1;
  }
  return bucket;
}

void GqrProber::Expand(const Entry& top) {
  if (top.rightmost + 1 >= m_) return;  // Leaf: no Append/Swap.
  const int j = top.rightmost;
  const double append_qd = top.qd + sorted_costs_[j + 1];
  const double swap_qd =
      top.qd + sorted_costs_[j + 1] - sorted_costs_[j];
  if (tree_ != nullptr && top.node != GenerationTree::kInvalidNode) {
    // §5.3 shared tree: children come from the precomputed array; only
    // past the materialized frontier do we compute Append/Swap.
    const GenerationTree::Node& node = tree_->node(top.node);
    if (node.append_child != GenerationTree::kInvalidNode) {
      const GenerationTree::Node& child = tree_->node(node.append_child);
      heap_.push(Entry{append_qd, child.mask, child.rightmost,
                       node.append_child});
    } else {
      heap_.push(Entry{append_qd, top.mask | (uint64_t{1} << (j + 1)),
                       j + 1, GenerationTree::kInvalidNode});
    }
    if (node.swap_child != GenerationTree::kInvalidNode) {
      const GenerationTree::Node& child = tree_->node(node.swap_child);
      heap_.push(
          Entry{swap_qd, child.mask, child.rightmost, node.swap_child});
    } else {
      heap_.push(Entry{swap_qd,
                       (top.mask ^ (uint64_t{1} << j)) |
                           (uint64_t{1} << (j + 1)),
                       j + 1, GenerationTree::kInvalidNode});
    }
    return;
  }
  heap_.push(Entry{append_qd, top.mask | (uint64_t{1} << (j + 1)), j + 1,
                   GenerationTree::kInvalidNode});
  heap_.push(Entry{swap_qd,
                   (top.mask ^ (uint64_t{1} << j)) |
                       (uint64_t{1} << (j + 1)),
                   j + 1, GenerationTree::kInvalidNode});
}

bool GqrProber::Next(ProbeTarget* target) {
  if (!emitted_root_) {
    // Iteration 1 of Algorithm 2/4: probe the query's own bucket (the
    // all-zero flipping vector) and seed the heap with v^r = (1,0,...,0),
    // which is node 0 of the shared generation tree.
    emitted_root_ = true;
    heap_.push(Entry{sorted_costs_[0], uint64_t{1}, 0,
                     tree_ != nullptr ? 0 : GenerationTree::kInvalidNode});
    last_qd_ = 0.0;
    target->table = table_;
    target->bucket = query_code_;
#if GQR_VALIDATE_ENABLED
    validator_.ObserveEmission(/*key=*/0, /*score=*/0.0);
#endif
    return true;
  }
  if (heap_.empty()) return false;
  const Entry top = heap_.top();
  heap_.pop();
  Expand(top);
  last_qd_ = top.qd;
  target->table = table_;
  target->bucket = BucketForMask(top.mask);
#if GQR_VALIDATE_ENABLED
  validator_.ObserveEmission(top.mask, top.qd);
#endif
  return true;
}

}  // namespace gqr
