#include "core/qd.h"

#include <cmath>

namespace gqr {

double QuantizationDistance(const QueryHashInfo& info, Code bucket) {
  Code diff = info.code ^ bucket;
  double qd = 0.0;
  while (diff != 0) {
    const int i = LowestSetBit(diff);
    qd += info.flip_costs[i];
    diff &= diff - 1;  // Clear the lowest set bit.
  }
  return qd;
}

double TheoremTwoMu(const ProjectionHasher& hasher) {
  const Matrix h = hasher.HashingMatrix();
  if (h.empty()) return 0.0;
  const double sigma_max = h.SpectralNorm();
  if (sigma_max <= 0.0) return 0.0;
  return 1.0 / (sigma_max * std::sqrt(static_cast<double>(h.rows())));
}

}  // namespace gqr
