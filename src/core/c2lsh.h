// C2LSH (Gan-Feng-Fang-Ng, SIGMOD'12): collision-counting LSH — one of
// the related-work querying schemes of paper §7 ("uses only one hash
// value for each hash table and dynamically expands the search space
// bi-directionally from c(q)").
//
// m independent p-stable hash functions produce integer slot codes. An
// item is a candidate once it collides with the query on at least
// `collision_threshold` of the m functions, where a collision at
// *level* c means the two slots fall into the same width-(c*w) super
// slot (virtual rehashing). The search starts at level 1 and doubles the
// level until enough candidates are collected — expanding each hash
// axis bi-directionally around the query.
#ifndef GQR_CORE_C2LSH_H_
#define GQR_CORE_C2LSH_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "hash/e2lsh.h"

namespace gqr {

struct C2lshOptions {
  /// Number of hash functions m (C2LSH uses O(log n); tens suffice at
  /// the scales here).
  int num_hashes = 32;
  /// Collisions required before an item becomes a candidate, as a
  /// fraction of m (the paper's alpha*m).
  double collision_fraction = 0.5;
  /// Slot width of the base hash functions; 0 = auto-calibrated.
  double bucket_width = 0.0;
  uint64_t seed = 42;
};

class C2lshIndex {
 public:
  C2lshIndex(const Dataset& base, const C2lshOptions& options);

  struct ProbeStats {
    int final_level = 0;
    size_t count_updates = 0;  // Collision-counter increments.
  };

  /// Returns at least max_candidates candidate ids (or every item that
  /// ever crosses the collision threshold), in the order they crossed
  /// the threshold — which approximates ascending distance. stats may be
  /// null.
  std::vector<ItemId> Collect(const float* query, size_t max_candidates,
                              ProbeStats* stats) const;

  int num_hashes() const { return static_cast<int>(axes_.size()); }
  size_t num_items() const { return num_items_; }

 private:
  /// One p-stable hash axis: items sorted by slot for range scans.
  struct Axis {
    std::vector<int64_t> slots;   // Sorted.
    std::vector<ItemId> items;    // Parallel to slots.
  };

  // A single E2LSH hasher supplies all m projections.
  E2lshHasher hasher_;
  std::vector<Axis> axes_;
  size_t num_items_ = 0;
  int collision_threshold_;
};

}  // namespace gqr

#endif  // GQR_CORE_C2LSH_H_
