// Multi-Probe LSH (Lv-Josephson-Wang-Charikar-Li, VLDB'07): the
// perturbation-sequence querying method for integer-coded E2LSH tables,
// implemented as the paper's §5.3 comparison baseline.
//
// For a query q, coordinate i can be perturbed by -1 (cost: distance of
// q's projection to the lower slot boundary, x_i) or +1 (cost: w - x_i).
// A perturbation set's score is the sum of *squared* costs (Multi-Probe
// LSH's model of collision probability); sets are generated in ascending
// score with a min-heap over the sorted 2m costs using the classic
// shift/expand operations. Unlike GQR's flipping vectors, a generated
// set can be INVALID — it may contain both the -1 and +1 perturbation of
// the same coordinate — and must be skipped; this (and the integer code
// space preventing a shared generation tree) is exactly the contrast
// drawn in §5.3.
#ifndef GQR_CORE_MULTIPROBE_LSH_H_
#define GQR_CORE_MULTIPROBE_LSH_H_

#include <cstdint>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "hash/e2lsh.h"

namespace gqr {

/// Bucket table over integer codes (one E2LSH table).
class IntCodeTable {
 public:
  IntCodeTable() = default;
  /// codes[i] = integer code of item i.
  explicit IntCodeTable(const std::vector<IntCode>& codes);

  size_t num_buckets() const { return buckets_.size(); }
  size_t num_items() const { return num_items_; }

  /// Items whose code equals `code`; empty when absent.
  std::span<const ItemId> Probe(const IntCode& code) const;

 private:
  struct VectorHash {
    size_t operator()(const IntCode& v) const;
  };
  std::unordered_map<IntCode, std::vector<ItemId>, VectorHash> buckets_;
  size_t num_items_ = 0;
};

/// Generates buckets to probe in ascending perturbation score.
class MultiProbeLshProber {
 public:
  explicit MultiProbeLshProber(const E2lshQueryInfo& info);

  /// Emits the next bucket's integer code. Returns false once every
  /// valid perturbation set has been emitted.
  bool Next(IntCode* bucket);

  /// Score (sum of squared boundary distances) of the last bucket.
  double last_score() const { return last_score_; }

  /// Perturbation sets generated so far that were invalid and skipped
  /// (contained +1 and -1 on the same coordinate) — the overhead GQR's
  /// flipping vectors avoid by construction.
  size_t invalid_generated() const { return invalid_generated_; }

 private:
  struct Entry {
    double score;
    uint64_t mask;  // Subset of the sorted 2m perturbations.
    int rightmost;

    bool operator>(const Entry& other) const {
      if (score != other.score) return score > other.score;
      return mask > other.mask;
    }
  };

  /// True when the sorted-index subset maps to a valid perturbation set.
  bool IsValid(uint64_t mask) const;
  /// Applies the perturbation set to the query code.
  IntCode Apply(uint64_t mask) const;

  IntCode query_code_;
  int num_perturbations_;            // 2m, capped at 63 for the mask.
  std::vector<double> sorted_costs_; // Ascending squared costs.
  std::vector<int> coord_;           // Sorted pos -> coordinate.
  std::vector<int> delta_;           // Sorted pos -> -1 or +1.
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  bool emitted_root_ = false;
  double last_score_ = 0.0;
  size_t invalid_generated_ = 0;
};

}  // namespace gqr

#endif  // GQR_CORE_MULTIPROBE_LSH_H_
