// GQR: generate-to-probe quantization-distance ranking (paper §5,
// Algorithms 2-4) — the headline algorithm of the paper.
//
// Instead of computing and sorting QD for every bucket upfront (QR's
// "slow start"), GQR generates the bucket with the next-smallest QD on
// demand. Per-query state:
//
//   - The *sorted projected vector* (Definition 3): flipping costs sorted
//     ascending, with the permutation back to original bit positions.
//   - A min-heap over *sorted flipping vectors* (Definition 2/3). Each
//     heap entry is a <= 64-bit mask over sorted cost positions, its QD,
//     and the index of its rightmost set bit — O(1) per entry, so the
//     generation tree of Definition 4 is never materialized (this is the
//     "shared generation tree" optimization of §5.3 taken to its limit:
//     the tree structure is implicit in two bit operations).
//
// Expansion follows Algorithm 4: popping entry v with rightmost set bit j
// pushes Append(v) (set bit j+1; QD + cost[j+1]) and Swap(v) (move bit j
// to j+1; QD + cost[j+1] - cost[j]). Property 1 (every flipping vector
// generated exactly once) and Property 2 (children have >= QD) make the
// emission order exactly ascending QD — tested invariants.
#ifndef GQR_CORE_GQR_PROBER_H_
#define GQR_CORE_GQR_PROBER_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "core/generation_tree.h"
#include "core/prober.h"
#include "core/validators.h"
#include "hash/binary_hasher.h"
#include "util/attributes.h"

namespace gqr {

class GqrProber : public BucketProber {
 public:
  /// `table` tags emitted ProbeTargets (multi-table probing composes
  /// several GqrProbers; see multi_prober.h).
  ///
  /// `tree` optionally supplies the precomputed shared generation tree of
  /// §5.3 (GenerationTree::Shared(m)); expansions then follow array links
  /// instead of performing Append/Swap, falling back to bit operations
  /// past the materialized frontier. Semantically identical either way
  /// (a tested invariant).
  explicit GqrProber(const QueryHashInfo& info, uint32_t table = 0,
                     const GenerationTree* tree = nullptr);

  /// Emits buckets in ascending QD; the first bucket is c(q) itself
  /// (QD 0). Exhausts after all 2^m buckets. GQR_HOT: the per-probe
  /// path is statically checked allocation-source-free (tools/lint);
  /// heap growth stays within the capacity reserved at construction.
  GQR_HOT bool Next(ProbeTarget* target) override;

  double last_score() const override { return last_qd_; }

  /// GQR's score *is* the quantization distance, and emission order is
  /// ascending QD, so the last QD lower-bounds every future one.
  double qd_bound() const override { return last_qd_; }

  /// Current heap size (paper: at most i entries after i iterations).
  size_t heap_size() const { return heap_.size(); }

 private:
  struct Entry {
    double qd;
    uint64_t mask;  // Sorted flipping vector: bit s = flip sorted pos s.
    int rightmost;  // Index of the highest set bit of mask.
    uint32_t node;  // Shared-tree node index, kInvalidNode when unmapped.

    bool operator>(const Entry& other) const {
      // Min-heap on QD; mask as a deterministic tie-break.
      if (qd != other.qd) return qd > other.qd;
      return mask > other.mask;
    }
  };

  /// Pushes both children of `top` (Algorithm 4's Append and Swap).
  GQR_HOT void Expand(const Entry& top);

  /// Applies Algorithm 3: flips the original code bits addressed by the
  /// sorted mask through the sort permutation.
  GQR_HOT Code BucketForMask(uint64_t mask) const;

  uint32_t table_;
  int m_;
  const GenerationTree* tree_;  // Null = always compute Append/Swap.
  Code query_code_;
  std::vector<double> sorted_costs_;  // Ascending flip costs.
  std::vector<int> perm_;             // sorted pos -> original bit index.
  // Min-heap over sorted flipping vectors. Its storage is reserved at
  // construction (the heap grows by at most one entry per Next), so
  // probing a typical candidate budget never reallocates mid-stream.
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  bool emitted_root_ = false;
  double last_qd_ = 0.0;
#if GQR_VALIDATE_ENABLED
  // Validating builds watch the emission stream: masks unique
  // (Property 1), QD non-decreasing (Property 2).
  ProbeSequenceValidator validator_{"GqrProber"};
#endif
};

}  // namespace gqr

#endif  // GQR_CORE_GQR_PROBER_H_
