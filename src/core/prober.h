// BucketProber: the querying-method abstraction.
//
// A querying method is, per the paper, exactly a rule for the *order in
// which buckets are probed*. A prober is constructed per query and emits
// (table, bucket-signature) pairs in its method's order:
//   - HR  (hr_prober.h):  ascending Hamming distance, full sort upfront.
//   - GHR (ghr_prober.h): ascending Hamming distance, generate-to-probe.
//   - QR  (qr_prober.h):  ascending quantization distance, full sort.
//   - GQR (gqr_prober.h): ascending quantization distance, generate-to-
//                         probe (the paper's headline algorithm).
// The Searcher (searcher.h) consumes any prober, evaluates probed items,
// and reranks — so querying methods are swappable under one API.
#ifndef GQR_CORE_PROBER_H_
#define GQR_CORE_PROBER_H_

#include <cstdint>

#include "util/bits.h"

namespace gqr {

/// One bucket to probe: a table index (0 for single-table methods) and
/// the bucket's signature in that table.
struct ProbeTarget {
  uint32_t table = 0;
  Code bucket = 0;
};

class BucketProber {
 public:
  virtual ~BucketProber() = default;

  /// Emits the next bucket to probe. Returns false when the method has
  /// exhausted its bucket sequence.
  virtual bool Next(ProbeTarget* target) = 0;

  /// The similarity indicator (QD for QR/GQR, Hamming distance for
  /// HR/GHR) of the bucket last returned by Next(). Probers emit buckets
  /// in non-decreasing score order, which is what makes score-based
  /// early stopping sound.
  virtual double last_score() const = 0;

  /// A sound lower bound on the quantization distance of the bucket last
  /// emitted AND of every bucket this prober will emit later. Theorem 2
  /// turns it into a distance bound — every item of any
  /// current-or-future bucket lies at least mu * qd_bound() away — which
  /// is what makes the TerminationPolicy margin rule
  /// (plan/termination.h) sound for every method:
  ///   QR/GQR  return last_score() (the QD itself; future QDs are >=).
  ///   HR/GHR  return the sum of the h smallest flipping costs at
  ///           Hamming radius h: a bucket differing in h' >= h bits has
  ///           QD >= that prefix sum (costs are non-negative).
  /// The default returns 0 — no usable bound, so bound-based termination
  /// never fires — which is the only sound answer for probers that merge
  /// streams (MultiProber) or carry no cost information.
  virtual double qd_bound() const { return 0.0; }
};

}  // namespace gqr

#endif  // GQR_CORE_PROBER_H_
