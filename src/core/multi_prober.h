// MultiProber: merges the bucket streams of several per-table probers by
// their similarity indicator, yielding a single globally score-ordered
// probe sequence across tables (paper §6.3.5 evaluates multi-table GHR;
// the same merge works for GQR since both emit non-decreasing scores).
#ifndef GQR_CORE_MULTI_PROBER_H_
#define GQR_CORE_MULTI_PROBER_H_

#include <memory>
#include <queue>
#include <vector>

#include "core/prober.h"
#include "core/validators.h"

namespace gqr {

class MultiProber : public BucketProber {
 public:
  /// Takes ownership of one prober per table. Each must emit buckets in
  /// non-decreasing last_score() order (all probers in this library do).
  explicit MultiProber(std::vector<std::unique_ptr<BucketProber>> probers);

  bool Next(ProbeTarget* target) override;
  double last_score() const override { return last_score_; }

 private:
  struct Pending {
    double score;
    ProbeTarget target;
    size_t prober;

    bool operator>(const Pending& other) const {
      if (score != other.score) return score > other.score;
      return prober > other.prober;
    }
  };

  /// Pulls the next bucket from prober p into the merge heap.
  void Refill(size_t p);

  std::vector<std::unique_ptr<BucketProber>> probers_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      heap_;
  double last_score_ = 0.0;
#if GQR_VALIDATE_ENABLED
  // Property 2 only: the merged stream legitimately repeats bucket
  // signatures across tables, while each component prober's own
  // validator covers Property 1 within its table.
  ProbeSequenceValidator validator_{"MultiProber"};
#endif
};

}  // namespace gqr

#endif  // GQR_CORE_MULTI_PROBER_H_
