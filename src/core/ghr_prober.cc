#include "core/ghr_prober.h"

#include <algorithm>

#include "util/check.h"

namespace gqr {

GhrProber::GhrProber(const QueryHashInfo& info, uint32_t table)
    : table_(table),
      m_(info.code_length()),
      query_code_(info.code),
      code_space_mask_(LowBitsMask(info.code_length())) {
  // Gosper enumeration needs headroom bits.
  GQR_CHECK(m_ >= 1 && m_ <= 63) << "code length " << m_;
  std::vector<double> sorted_costs = info.flip_costs;
  std::sort(sorted_costs.begin(), sorted_costs.end());
  cost_prefix_.assign(static_cast<size_t>(m_) + 1, 0.0);
  for (int i = 0; i < m_; ++i) {
    cost_prefix_[i + 1] = cost_prefix_[i] + sorted_costs[i];
  }
}

bool GhrProber::AdvanceMask() {
  if (radius_ == 0 || mask_ == 0) {
    // Start radius 1: lowest mask with one bit.
    radius_ = 1;
    mask_ = 1;
    return true;
  }
  const uint64_t next = NextSamePopCount(mask_);
  if ((next & ~code_space_mask_) == 0) {
    mask_ = next;
    return true;
  }
  // Radius exhausted; move to the next one.
  if (radius_ >= m_) return false;
  ++radius_;
  mask_ = LowBitsMask(radius_);
  return true;
}

bool GhrProber::Next(ProbeTarget* target) {
  if (!emitted_root_) {
    emitted_root_ = true;
    radius_ = 0;
    target->table = table_;
    target->bucket = query_code_;
#if GQR_VALIDATE_ENABLED
    validator_.ObserveEmission(/*key=*/0, /*score=*/0.0);
#endif
    return true;
  }
  if (!AdvanceMask()) return false;
  target->table = table_;
  target->bucket = query_code_ ^ mask_;
#if GQR_VALIDATE_ENABLED
  // Flip masks are unique across radii (popcount r masks never recur),
  // so the mask doubles as the Property 1 key; the root used key 0.
  validator_.ObserveEmission(mask_, static_cast<double>(radius_));
#endif
  return true;
}

}  // namespace gqr
