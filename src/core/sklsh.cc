#include "core/sklsh.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace gqr {

namespace {

E2lshHasher MakeHasher(const Dataset& base, const SklshOptions& options) {
  E2lshOptions opt;
  opt.num_hashes = options.num_hashes;
  opt.bucket_width = options.bucket_width;
  opt.expected_per_bucket = 10.0;
  opt.seed = options.seed;
  return TrainE2lsh(base, opt);
}

}  // namespace

SklshIndex::SklshIndex(const Dataset& base, const SklshOptions& options)
    : hasher_(MakeHasher(base, options)) {
  std::vector<IntCode> codes = hasher_.HashDataset(base);
  std::vector<uint32_t> order(base.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return codes[a] < codes[b];  // Lexicographic compound-key order.
  });
  order_.resize(base.size());
  keys_.resize(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    order_[i] = static_cast<ItemId>(order[i]);
    keys_[i] = std::move(codes[order[i]]);
  }
}

int SklshIndex::CommonPrefix(const IntCode& a, const IntCode& b) const {
  const int m = static_cast<int>(a.size());
  for (int i = 0; i < m; ++i) {
    if (a[i] != b[i]) return i;
  }
  return m;
}

std::vector<ItemId> SklshIndex::Collect(const float* query,
                                        size_t max_candidates) const {
  std::vector<ItemId> out;
  if (max_candidates == 0 || order_.empty()) return out;
  out.reserve(std::min(max_candidates, order_.size()));
  const IntCode q_key = hasher_.HashQuery(query).code;

  // Position of the query in the compound-key order.
  const size_t pos =
      std::lower_bound(keys_.begin(), keys_.end(), q_key) - keys_.begin();

  // Bi-directional merge preferring the side with the longer common
  // prefix (ties go right, which holds keys >= the query's).
  size_t left = pos;               // Next to take on the left: left - 1.
  size_t right = pos;              // Next to take on the right: right.
  while (out.size() < max_candidates &&
         (left > 0 || right < order_.size())) {
    const int lcp_left =
        left > 0 ? CommonPrefix(q_key, keys_[left - 1]) : -1;
    const int lcp_right =
        right < order_.size() ? CommonPrefix(q_key, keys_[right]) : -1;
    if (lcp_right >= lcp_left) {
      out.push_back(order_[right]);
      ++right;
    } else {
      --left;
      out.push_back(order_[left]);
    }
  }
  return out;
}

}  // namespace gqr
