// Metric: the distance used for exact candidate verification. Split out
// of searcher.h so the batched evaluation layer (eval_batch.h) can depend
// on it without pulling in the full Searcher API.
#ifndef GQR_CORE_METRIC_H_
#define GQR_CORE_METRIC_H_

namespace gqr {

/// Distance metric for the final rerank.
enum class Metric {
  kEuclidean,
  kAngular,  // 1 - cosine; for the angular-QD extension.
};

}  // namespace gqr

#endif  // GQR_CORE_METRIC_H_
