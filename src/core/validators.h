// Paper-property validators: executable forms of the paper's guarantees,
// compiled in only under -DGQR_VALIDATE=ON (zero cost otherwise).
//
//   Property 1 — the Append/Swap generation emits every flipping vector
//     exactly once. Validated by hashing every emission key (the sorted
//     flipping-vector mask for GQR, the bucket signature for QR/HR/GHR)
//     into a per-query set and aborting on a duplicate.
//   Property 2 — emissions come in non-decreasing score (QD or Hamming)
//     order, which is what makes budget- and score-based early stopping
//     sound. Validated per Next() against the previous score, with a
//     tiny relative tolerance for the incremental QD arithmetic.
//   Theorem 2 — mu * QD(q, b) lower-bounds the true Euclidean distance
//     from q to every item of bucket b. Validated in the Searcher for
//     every candidate it evaluates whenever the caller supplies
//     early_stop_mu under the Euclidean metric.
//
// The hooks are compile-time: probers carry a validator member and the
// Searcher calls ValidateTheorem2Bound only inside GQR_VALIDATE_ENABLED
// blocks, so release builds contain no trace of this machinery. The
// validating CI leg builds with -DGQR_VALIDATE=ON and runs the full
// suite — including the differential suites (sharded vs single-table,
// GQR vs QR) — under these contracts.
#ifndef GQR_CORE_VALIDATORS_H_
#define GQR_CORE_VALIDATORS_H_

#include "util/check.h"

#if defined(GQR_VALIDATE) && GQR_VALIDATE
#define GQR_VALIDATE_ENABLED 1
#else
#define GQR_VALIDATE_ENABLED 0
#endif

#if GQR_VALIDATE_ENABLED

#include <cstdint>
#include <unordered_set>

namespace gqr {

class GenerationTree;

/// Per-query watcher over one prober's emission stream. Constructed
/// alongside the prober (probers are per-query objects), so no reset is
/// needed between queries.
class ProbeSequenceValidator {
 public:
  /// `where` names the prober in failure messages; it must outlive the
  /// validator (string literals do).
  explicit ProbeSequenceValidator(const char* where) : where_(where) {}

  /// Records one emission: `key` must be globally unique across the
  /// prober's stream (Property 1) and `score` non-decreasing
  /// (Property 2).
  void ObserveEmission(uint64_t key, double score);

  /// Property 2 only — for merged streams (MultiProber) where the same
  /// bucket signature legitimately recurs across tables.
  void ObserveScore(double score);

  size_t emitted() const { return emitted_; }

 private:
  const char* where_;
  std::unordered_set<uint64_t> seen_;
  double last_score_ = 0.0;
  bool any_ = false;
  size_t emitted_ = 0;
};

/// Theorem 2: mu * score must lower-bound the exact Euclidean distance
/// of an item evaluated from the bucket whose QD is `score`. Aborts with
/// both sides of the inequality on violation.
void ValidateTheorem2Bound(double mu, double score, double distance);

/// Cross-checks one firing of the TerminationPolicy margin rule
/// (plan/termination.h) against the exact Theorem-2 inequality it
/// claims: the policy parameters must be usable (mu > 0, margin finite
/// and positive) and the bound mu * qd_bound >= margin * kth_distance
/// must actually hold, recomputed here from the raw components. Called
/// by the Searcher on every early-termination decision on the live
/// probe stream; a planted wrong margin (or a stop the bound does not
/// justify) aborts — tests/adaptive_plan_test.cc's death regression.
void ValidateTerminationDecision(double mu, double margin, double qd_bound,
                                 double kth_distance);

/// Structural check of the precomputed shared tree (§5.3): every
/// materialized node's mask is unique (Property 1 at the tree level) and
/// child links reproduce exactly the Append/Swap expansion of its
/// parent. Called from the GenerationTree constructor.
void ValidateGenerationTree(const GenerationTree& tree);

}  // namespace gqr

#endif  // GQR_VALIDATE_ENABLED

#endif  // GQR_CORE_VALIDATORS_H_
