// MIH: multi-index hashing (Norouzi-Punjani-Fleet), the appendix baseline.
//
// The code is chopped into B blocks, each indexed by its own substring
// hash table. To enumerate items in ascending *full-code* Hamming
// distance, MIH relies on the pigeonhole bound: any code within full
// distance r of the query has at least one block whose substring is
// within floor(r/B) of the query's substring. So the search sweeps
// r = 0, 1, ..., m; whenever floor(r/B) grows it probes every block at
// the new substring radius, pooling candidates, and then emits the pooled
// candidates whose exact full distance equals r. The de-duplication and
// full-distance filtering this requires is exactly the overhead the
// appendix blames for MIH lagging GHR at short code lengths.
#ifndef GQR_CORE_MIH_PROBER_H_
#define GQR_CORE_MIH_PROBER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "index/hash_table.h"
#include "util/bits.h"

namespace gqr {

class MihIndex {
 public:
  /// Builds B = num_blocks substring tables over the item codes.
  /// Blocks partition the m bits into near-equal contiguous ranges.
  MihIndex(const std::vector<Code>& codes, int code_length, int num_blocks);

  struct ProbeStats {
    size_t substring_lookups = 0;
    size_t duplicates = 0;        // Candidates found via >1 block.
    size_t distance_filtered = 0; // Pooled but not yet within radius.
  };

  /// Collects up to max_candidates item ids in ascending full-code
  /// Hamming distance from query_code. stats may be null.
  std::vector<ItemId> Collect(Code query_code, size_t max_candidates,
                              ProbeStats* stats) const;

  int code_length() const { return code_length_; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }

 private:
  struct Block {
    int bit_begin;
    int bit_end;  // Substring = code bits [bit_begin, bit_end).
    StaticHashTable table;
  };

  Code Substring(Code code, const Block& b) const {
    return (code >> b.bit_begin) & LowBitsMask(b.bit_end - b.bit_begin);
  }

  int code_length_;
  std::vector<Code> item_codes_;  // Full code per item, for filtering.
  std::vector<Block> blocks_;
};

}  // namespace gqr

#endif  // GQR_CORE_MIH_PROBER_H_
