#include "core/hr_prober.h"

#include <algorithm>

#include "util/check.h"

namespace gqr {

HrProber::HrProber(const QueryHashInfo& info, const StaticHashTable& table,
                   uint32_t table_id)
    : HrProber(info, table.bucket_codes(), table.code_length(), table_id) {}

HrProber::HrProber(const QueryHashInfo& info,
                   const std::vector<Code>& bucket_codes, int code_length,
                   uint32_t table_id)
    : table_id_(table_id) {
  const int m = code_length;
  GQR_CHECK_EQ(info.code_length(), m)
      << "flip-cost vector does not match the code length";
  // Prefix sums of the ascending flip costs: cost_prefix_[h] is the
  // least possible QD of any bucket at Hamming distance >= h (qd_bound).
  std::vector<double> sorted_costs = info.flip_costs;
  std::sort(sorted_costs.begin(), sorted_costs.end());
  cost_prefix_.assign(static_cast<size_t>(m) + 1, 0.0);
  for (int i = 0; i < m; ++i) {
    cost_prefix_[i + 1] = cost_prefix_[i] + sorted_costs[i];
  }
  // Bucket sort: one bin per Hamming distance 0..m.
  std::vector<std::vector<Code>> bins(m + 1);
  for (Code code : bucket_codes) {
    bins[HammingDistance(info.code, code)].push_back(code);
  }
  order_.reserve(bucket_codes.size());
  distances_.reserve(bucket_codes.size());
  for (int d = 0; d <= m; ++d) {
    // bucket_codes() is ascending, so bins preserve a deterministic
    // within-distance order ("ties are broken arbitrarily" in the paper).
    for (Code code : bins[d]) {
      order_.push_back(code);
      distances_.push_back(d);
    }
  }
}

bool HrProber::Next(ProbeTarget* target) {
  if (pos_ >= order_.size()) return false;
  last_distance_ = static_cast<double>(distances_[pos_]);
  target->table = table_id_;
  target->bucket = order_[pos_];
#if GQR_VALIDATE_ENABLED
  validator_.ObserveEmission(order_[pos_], last_distance_);
#endif
  ++pos_;
  return true;
}

}  // namespace gqr
