#include "core/multiprobe_lsh.h"

#include <algorithm>
#include <numeric>

#include "util/bits.h"
#include "util/check.h"

namespace gqr {

size_t IntCodeTable::VectorHash::operator()(const IntCode& v) const {
  // FNV-1a over the raw int32 payload.
  uint64_t h = 1469598103934665603ull;
  for (int32_t x : v) {
    auto u = static_cast<uint32_t>(x);
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (u >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return static_cast<size_t>(h);
}

IntCodeTable::IntCodeTable(const std::vector<IntCode>& codes)
    : num_items_(codes.size()) {
  for (size_t i = 0; i < codes.size(); ++i) {
    buckets_[codes[i]].push_back(static_cast<ItemId>(i));
  }
}

std::span<const ItemId> IntCodeTable::Probe(const IntCode& code) const {
  auto it = buckets_.find(code);
  if (it == buckets_.end()) return {};
  return it->second;
}

MultiProbeLshProber::MultiProbeLshProber(const E2lshQueryInfo& info)
    : query_code_(info.code) {
  const int m = static_cast<int>(info.code.size());
  GQR_CHECK_GE(m, 1);
  // 2m candidate perturbations: (i, -1) costs x_i, (i, +1) costs w - x_i.
  // Scores use squared costs per Multi-Probe LSH. The subset mask must
  // fit 63 bits; m <= 31 covers every practical table.
  num_perturbations_ = std::min(2 * m, 62);
  std::vector<double> costs(2 * m);
  std::vector<int> coords(2 * m), deltas(2 * m);
  for (int i = 0; i < m; ++i) {
    const double down = info.distance_down[i];
    costs[2 * i] = down * down;
    coords[2 * i] = i;
    deltas[2 * i] = -1;
    const double up = info.bucket_width - down;
    costs[2 * i + 1] = up * up;
    coords[2 * i + 1] = i;
    deltas[2 * i + 1] = +1;
  }
  std::vector<int> order(2 * m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (costs[a] != costs[b]) return costs[a] < costs[b];
    return a < b;
  });
  order.resize(num_perturbations_);
  sorted_costs_.resize(num_perturbations_);
  coord_.resize(num_perturbations_);
  delta_.resize(num_perturbations_);
  for (int s = 0; s < num_perturbations_; ++s) {
    sorted_costs_[s] = costs[order[s]];
    coord_[s] = coords[order[s]];
    delta_[s] = deltas[order[s]];
  }
}

bool MultiProbeLshProber::IsValid(uint64_t mask) const {
  // Invalid iff two selected perturbations touch the same coordinate
  // (necessarily with opposite deltas, since each (i, delta) is unique).
  uint64_t seen_coords = 0;
  uint64_t rest = mask;
  while (rest != 0) {
    const int s = LowestSetBit(rest);
    rest &= rest - 1;
    const uint64_t bit = uint64_t{1} << coord_[s];
    if (seen_coords & bit) return false;
    seen_coords |= bit;
  }
  return true;
}

IntCode MultiProbeLshProber::Apply(uint64_t mask) const {
  IntCode bucket = query_code_;
  while (mask != 0) {
    const int s = LowestSetBit(mask);
    mask &= mask - 1;
    bucket[coord_[s]] += delta_[s];
  }
  return bucket;
}

bool MultiProbeLshProber::Next(IntCode* bucket) {
  if (!emitted_root_) {
    emitted_root_ = true;
    heap_.push(Entry{sorted_costs_[0], uint64_t{1}, 0});
    last_score_ = 0.0;
    *bucket = query_code_;
    return true;
  }
  // Pop until a valid perturbation set emerges (invalid ones still expand,
  // because their children may be valid).
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    if (top.rightmost + 1 < num_perturbations_) {
      const int j = top.rightmost;
      // "Expand" and "shift" of Lv et al. == Append and Swap of GQR.
      heap_.push(Entry{top.score + sorted_costs_[j + 1],
                       top.mask | (uint64_t{1} << (j + 1)), j + 1});
      heap_.push(Entry{top.score + sorted_costs_[j + 1] - sorted_costs_[j],
                       (top.mask ^ (uint64_t{1} << j)) |
                           (uint64_t{1} << (j + 1)),
                       j + 1});
    }
    if (!IsValid(top.mask)) {
      ++invalid_generated_;
      continue;
    }
    last_score_ = top.score;
    *bucket = Apply(top.mask);
    return true;
  }
  return false;
}

}  // namespace gqr
