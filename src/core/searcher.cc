#include "core/searcher.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "la/vector_ops.h"

namespace gqr {

namespace {

// Bounded top-k by exact distance. Keeps a max-heap of size k; the root
// is the running k-th best, which doubles as the early-stop threshold.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}

  void Offer(float distance, ItemId id) {
    if (heap_.size() < k_) {
      heap_.emplace(distance, id);
    } else if (distance < heap_.top().first) {
      heap_.pop();
      heap_.emplace(distance, id);
    }
  }

  bool full() const { return heap_.size() >= k_; }
  float worst() const { return heap_.top().first; }

  void Drain(std::vector<ItemId>* ids, std::vector<float>* distances) {
    ids->resize(heap_.size());
    distances->resize(heap_.size());
    for (size_t i = heap_.size(); i-- > 0;) {
      (*ids)[i] = heap_.top().second;
      (*distances)[i] = heap_.top().first;
      heap_.pop();
    }
  }

 private:
  size_t k_;
  std::priority_queue<std::pair<float, ItemId>> heap_;
};

inline float EvalDistance(const float* a, const float* b, size_t dim,
                          Metric metric) {
  return metric == Metric::kEuclidean ? L2Distance(a, b, dim)
                                      : CosineDistance(a, b, dim);
}

}  // namespace

template <typename ProbeFn>
SearchResult Searcher::SearchImpl(const float* query, BucketProber* prober,
                                  const SearchOptions& options,
                                  size_t num_tables, ProbeFn probe) const {
  assert(options.k > 0);
  SearchResult result;
  TopK top(options.k);
  // De-duplication across tables; a single table partitions the items so
  // no bitmap is needed.
  std::vector<bool> seen;
  if (num_tables > 1) seen.assign(base_->size(), false);

  ProbeTarget target;
  while (prober->Next(&target)) {
    ++result.stats.buckets_probed;
    std::span<const ItemId> items = probe(target);
    if (!items.empty()) ++result.stats.buckets_nonempty;
    for (ItemId id : items) {
      if (num_tables > 1) {
        if (seen[id]) {
          ++result.stats.duplicates_skipped;
          continue;
        }
        seen[id] = true;
      }
      const float d = EvalDistance(base_->Row(id), query, base_->dim(),
                                   options.metric);
      ++result.stats.items_evaluated;
      top.Offer(d, id);
    }
    if (options.max_candidates != 0 &&
        result.stats.items_evaluated >= options.max_candidates) {
      break;
    }
    if (options.max_buckets != 0 &&
        result.stats.buckets_probed >= options.max_buckets) {
      break;
    }
    // Early stop of §4.1: all remaining buckets have score >= last_score,
    // and mu * QD lower-bounds the true distance of their items.
    if (options.early_stop_mu > 0.0 && top.full() &&
        options.early_stop_mu * prober->last_score() >= top.worst()) {
      result.stats.early_stopped = true;
      break;
    }
  }
  top.Drain(&result.ids, &result.distances);
  return result;
}

SearchResult Searcher::Search(const float* query, BucketProber* prober,
                              const StaticHashTable& table,
                              const SearchOptions& options) const {
  return SearchImpl(query, prober, options, /*num_tables=*/1,
                    [&](const ProbeTarget& t) { return table.Probe(t.bucket); });
}

SearchResult Searcher::Search(const float* query, BucketProber* prober,
                              const DynamicHashTable& table,
                              const SearchOptions& options) const {
  return SearchImpl(query, prober, options, /*num_tables=*/1,
                    [&](const ProbeTarget& t) { return table.Probe(t.bucket); });
}

SearchResult Searcher::Search(const float* query, BucketProber* prober,
                              const MultiTableIndex& index,
                              const SearchOptions& options) const {
  return SearchImpl(query, prober, options, index.num_tables(),
                    [&](const ProbeTarget& t) {
                      return index.table(t.table).Probe(t.bucket);
                    });
}

SearchResult Searcher::RangeSearch(const float* query, BucketProber* prober,
                                   const StaticHashTable& table,
                                   float radius, double mu) const {
  SearchResult result;
  std::vector<std::pair<float, ItemId>> hits;
  ProbeTarget target;
  while (prober->Next(&target)) {
    ++result.stats.buckets_probed;
    std::span<const ItemId> items = table.Probe(target.bucket);
    if (!items.empty()) ++result.stats.buckets_nonempty;
    for (ItemId id : items) {
      const float d = L2Distance(base_->Row(id), query, base_->dim());
      ++result.stats.items_evaluated;
      if (d <= radius) hits.emplace_back(d, id);
    }
    // Distance-threshold stop of §4.1: every unprobed bucket b has
    // QD >= last_score, and items in b are at distance >= mu * QD(b).
    if (mu > 0.0 && mu * prober->last_score() >= radius) {
      result.stats.early_stopped = true;
      break;
    }
  }
  std::sort(hits.begin(), hits.end());
  result.ids.reserve(hits.size());
  result.distances.reserve(hits.size());
  for (const auto& [d, id] : hits) {
    result.ids.push_back(id);
    result.distances.push_back(d);
  }
  return result;
}

SearchResult Searcher::RerankCandidates(const float* query,
                                        const std::vector<ItemId>& candidates,
                                        const SearchOptions& options) const {
  SearchResult result;
  TopK top(options.k);
  for (ItemId id : candidates) {
    const float d =
        EvalDistance(base_->Row(id), query, base_->dim(), options.metric);
    ++result.stats.items_evaluated;
    top.Offer(d, id);
    if (options.max_candidates != 0 &&
        result.stats.items_evaluated >= options.max_candidates) {
      break;
    }
  }
  top.Drain(&result.ids, &result.distances);
  return result;
}

}  // namespace gqr
