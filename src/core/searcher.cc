#include "core/searcher.h"

#include <algorithm>
#include <cmath>

#include "core/eval_batch.h"
#include "core/validators.h"
#include "plan/planner.h"
#include "util/check.h"

namespace gqr {

namespace {

// Bounded top-k by exact distance. A max-heap whose root is the running
// k-th best distance, which doubles as the early-stop threshold. Storage
// lives in the caller's scratch so repeated searches reuse it.
class TopK {
 public:
  TopK(size_t k, std::vector<std::pair<float, ItemId>>* heap)
      : k_(k), heap_(heap) {
    heap_->clear();
  }

  /// Returns true when the offer changed the heap — the signal the
  /// planner's probes-to-convergence observation is built from.
  /// [[nodiscard]] so an accidentally ignored improvement signal cannot
  /// silently skew the feedback loop; rerank loops that genuinely only
  /// want the heap effect discard with an explicit (void).
  [[nodiscard]] bool Offer(float distance, ItemId id) {
    if (heap_->size() < k_) {
      heap_->emplace_back(distance, id);
      std::push_heap(heap_->begin(), heap_->end());
      return true;
    }
    if (distance < heap_->front().first) {
      std::pop_heap(heap_->begin(), heap_->end());
      heap_->back() = {distance, id};
      std::push_heap(heap_->begin(), heap_->end());
      return true;
    }
    return false;
  }

  bool full() const { return heap_->size() >= k_; }
  float worst() const { return heap_->front().first; }

  void Drain(std::vector<ItemId>* ids, std::vector<float>* distances) {
    ids->resize(heap_->size());
    distances->resize(heap_->size());
    for (size_t i = heap_->size(); i-- > 0;) {
      std::pop_heap(heap_->begin(), heap_->end());
      (*ids)[i] = heap_->back().second;
      (*distances)[i] = heap_->back().first;
      heap_->pop_back();
    }
  }

 private:
  size_t k_;
  std::vector<std::pair<float, ItemId>>* heap_;
};

}  // namespace

template <typename ProbeFn>
void Searcher::SearchImpl(const float* query, BucketProber* prober,
                          const SearchOptions& options, size_t num_tables,
                          ProbeFn probe, SearchScratch* scratch,
                          SearchResult* result) const {
  GQR_CHECK(options.k > 0) << "SearchOptions::k must be positive";
  GQR_CHECK(options.termination.valid())
      << "SearchOptions::termination is malformed (margin must be > 0, "
      << "mu >= 0)";
  const CompressedDataset* comp = options.compressed;
  if (comp != nullptr) {
    GQR_CHECK_EQ(comp->size(), base_->size())
        << "compressed dataset does not cover the base set";
    GQR_CHECK_EQ(comp->dim(), base_->dim())
        << "compressed dataset dim does not match the base set";
    GQR_CHECK_GE(options.rerank_alpha, size_t{1})
        << "rerank_alpha must be >= 1";
  }
  SearchScratch& s = scratch != nullptr ? *scratch : ThreadLocalSearchScratch();
  result->Clear();
  SearchStats& stats = result->stats;
  // De-duplication across tables; a single table partitions the items so
  // no visited set is needed.
  const bool dedup = num_tables > 1;
  s.BeginQuery(base_->size(), dedup);
  const QueryContext ctx = MakeQueryContext(query, base_->dim(),
                                            options.metric);
  // Compressed mode keeps a k * alpha shortlist during probing; the exact
  // top-k is carved out of it afterwards.
  const size_t heap_k =
      comp != nullptr ? options.k * options.rerank_alpha : options.k;
  TopK top(heap_k, &s.heap);

  // Adaptive budget: ask the planner (if any) for this query's starting
  // budget. The learned budget never exceeds the caller's fixed one and
  // is floored at the heap size so the top-k can always fill.
  const BudgetPlanner* planner = options.plan.planner;
  PlanDecision decision;
  decision.budget = options.max_candidates;
  if (planner != nullptr) {
    decision = planner->Plan(options.plan.feature_key, options.plan.ticket,
                             options.max_candidates);
    if (decision.budget != 0 && decision.budget < heap_k) {
      decision.budget = heap_k;
    }
    stats.planned_budget = decision.budget;
    stats.explored = decision.explored;
  }
  const size_t max_candidates = decision.budget;
  size_t last_improvement = 0;

  ProbeTarget target;
  while (prober->Next(&target)) {
    ++stats.buckets_probed;
    std::span<const ItemId> items = probe(target);
    if (!items.empty()) ++stats.buckets_nonempty;
    // Gather the bucket's fresh candidates, then score them in one
    // batched pass (whole buckets are evaluated even when they overshoot
    // the candidate budget, as before).
    s.ids.clear();
    for (ItemId id : items) {
      if (dedup && s.CheckAndMarkSeen(id)) {
        ++stats.duplicates_skipped;
        continue;
      }
      s.ids.push_back(id);
    }
    if (!s.ids.empty()) {
      s.distances.resize(s.ids.size());
      if (comp != nullptr) {
        EvalDistancesBatchCompressed(query, ctx, *comp, s.ids.data(),
                                     s.ids.size(), s.distances.data());
      } else {
        EvalDistancesBatch(query, ctx, *base_, s.ids.data(), s.ids.size(),
                           s.distances.data());
      }
      for (size_t i = 0; i < s.ids.size(); ++i) {
        if (top.Offer(s.distances[i], s.ids[i])) {
          last_improvement = stats.items_evaluated + i + 1;
        }
      }
      stats.items_evaluated += s.ids.size();
#if GQR_VALIDATE_ENABLED
      // Theorem 2: every item of the bucket just evaluated lies at least
      // mu * QD(q, bucket) away — the fact that makes the early stop
      // below (and RangeSearch exactness) sound. Only claimed for the
      // Euclidean metric with a caller-supplied mu, and only against
      // exact distances: compressed distances carry quantization error,
      // so the bound is not asserted for them.
      if (comp == nullptr && options.early_stop_mu > 0.0 &&
          options.metric == Metric::kEuclidean) {
        for (size_t i = 0; i < s.ids.size(); ++i) {
          ValidateTheorem2Bound(options.early_stop_mu, prober->last_score(),
                                s.distances[i]);
        }
      }
      // Same contract for the termination policy's mu, but against
      // qd_bound(): its prefix-sum form is what keeps the Hamming probers
      // (whose last_score is a bit count, not a QD) inside Theorem 2. A
      // wrongly large mu fires here on the live probe stream.
      if (comp == nullptr && options.termination.mu > 0.0 &&
          options.metric == Metric::kEuclidean) {
        for (size_t i = 0; i < s.ids.size(); ++i) {
          ValidateTheorem2Bound(options.termination.mu, prober->qd_bound(),
                                s.distances[i]);
        }
      }
#endif
    }
    if (max_candidates != 0 && stats.items_evaluated >= max_candidates) {
      break;
    }
    if (options.max_buckets != 0 &&
        stats.buckets_probed >= options.max_buckets) {
      break;
    }
    // Early stop of §4.1: all remaining buckets have score >= last_score,
    // and mu * QD lower-bounds the true distance of their items. In
    // compressed mode top.worst() is the k*alpha-th *compressed* distance
    // — larger than the k-th, so the stop fires later (conservative), but
    // the threshold itself carries quantization error; exactness claims
    // only hold for the uncompressed path.
    if (options.early_stop_mu > 0.0 && top.full() &&
        options.early_stop_mu * prober->last_score() >= top.worst()) {
      stats.early_stopped = true;
      break;
    }
    // Margin-scaled Theorem-2 termination (plan/termination.h): every
    // unprobed bucket has QD >= qd_bound(), so once mu * qd_bound() >=
    // margin * d_k no remaining item can improve the result by more than
    // the margin allows (exact at margin 1; see DESIGN.md section 16).
    // Inert by default — an infinite margin never fires, keeping the
    // bit-identity contract of tests/adaptive_plan_test.cc.
    if (options.termination.enabled() && top.full() &&
        options.termination.ShouldStop(prober->qd_bound(), top.worst())) {
#if GQR_VALIDATE_ENABLED
      ValidateTerminationDecision(options.termination.mu,
                                  options.termination.margin,
                                  prober->qd_bound(), top.worst());
#endif
      stats.terminated = true;
      break;
    }
  }
  stats.items_to_last_improvement = last_improvement;
  if (planner != nullptr) {
    planner->Observe(options.plan.feature_key, decision, stats);
  }
  if (comp != nullptr) {
    // Exact rerank: drain the compressed shortlist and rescore it against
    // the fp32 rows, so the returned top-k distances are exact.
    top.Drain(&s.shortlist, &s.distances);
    stats.items_reranked = s.shortlist.size();
    if (!s.shortlist.empty()) {
      s.distances.resize(s.shortlist.size());
      EvalDistancesBatch(query, ctx, *base_, s.shortlist.data(),
                         s.shortlist.size(), s.distances.data());
    }
    TopK exact_top(options.k, &s.heap);
    for (size_t i = 0; i < s.shortlist.size(); ++i) {
      // Heap effect only: the exact rerank pass is past the point where
      // improvement feeds the convergence observation.
      (void)exact_top.Offer(s.distances[i], s.shortlist[i]);
    }
    exact_top.Drain(&result->ids, &result->distances);
    return;
  }
  top.Drain(&result->ids, &result->distances);
}

void Searcher::SearchInto(const float* query, BucketProber* prober,
                          const StaticHashTable& table,
                          const SearchOptions& options, SearchScratch* scratch,
                          SearchResult* result) const {
  SearchImpl(query, prober, options, /*num_tables=*/1,
             [&](const ProbeTarget& t) { return table.Probe(t.bucket); },
             scratch, result);
}

void Searcher::SearchInto(const float* query, BucketProber* prober,
                          const DynamicHashTable& table,
                          const SearchOptions& options, SearchScratch* scratch,
                          SearchResult* result) const {
  SearchImpl(query, prober, options, /*num_tables=*/1,
             [&](const ProbeTarget& t) { return table.Probe(t.bucket); },
             scratch, result);
}

void Searcher::SearchInto(const float* query, BucketProber* prober,
                          const ShardedIndex& index,
                          const SearchOptions& options, SearchScratch* scratch,
                          SearchResult* result) const {
  SearchScratch& s = scratch != nullptr ? *scratch : ThreadLocalSearchScratch();
  // Shards partition the corpus (num_tables = 1: no dedup needed). The
  // per-bucket gather copies each shard's sub-bucket under that shard's
  // shared lock, so the returned span never dangles into mutable storage.
  SearchImpl(query, prober, options, /*num_tables=*/1,
             [&](const ProbeTarget& t) -> std::span<const ItemId> {
               s.shard_items.clear();
               index.ProbeAll(t.bucket, &s.shard_items);
               return {s.shard_items.data(), s.shard_items.size()};
             },
             &s, result);
}

void Searcher::SearchInto(const float* query, BucketProber* prober,
                          const MultiTableIndex& index,
                          const SearchOptions& options, SearchScratch* scratch,
                          SearchResult* result) const {
  SearchImpl(query, prober, options, index.num_tables(),
             [&](const ProbeTarget& t) {
               return index.table(t.table).Probe(t.bucket);
             },
             scratch, result);
}

SearchResult Searcher::Search(const float* query, BucketProber* prober,
                              const StaticHashTable& table,
                              const SearchOptions& options,
                              SearchScratch* scratch) const {
  SearchResult result;
  SearchInto(query, prober, table, options, scratch, &result);
  return result;
}

SearchResult Searcher::Search(const float* query, BucketProber* prober,
                              const DynamicHashTable& table,
                              const SearchOptions& options,
                              SearchScratch* scratch) const {
  SearchResult result;
  SearchInto(query, prober, table, options, scratch, &result);
  return result;
}

SearchResult Searcher::Search(const float* query, BucketProber* prober,
                              const ShardedIndex& index,
                              const SearchOptions& options,
                              SearchScratch* scratch) const {
  SearchResult result;
  SearchInto(query, prober, index, options, scratch, &result);
  return result;
}

SearchResult Searcher::Search(const float* query, BucketProber* prober,
                              const MultiTableIndex& index,
                              const SearchOptions& options,
                              SearchScratch* scratch) const {
  SearchResult result;
  SearchInto(query, prober, index, options, scratch, &result);
  return result;
}

SearchResult Searcher::RangeSearch(const float* query, BucketProber* prober,
                                   const StaticHashTable& table, float radius,
                                   double mu, Metric metric,
                                   SearchScratch* scratch) const {
  SearchScratch& s = scratch != nullptr ? *scratch : ThreadLocalSearchScratch();
  s.BeginQuery(base_->size(), /*need_visited=*/false);
  const QueryContext ctx = MakeQueryContext(query, base_->dim(), metric);
  SearchResult result;
  std::vector<std::pair<float, ItemId>> hits;
  ProbeTarget target;
  while (prober->Next(&target)) {
    ++result.stats.buckets_probed;
    std::span<const ItemId> items = table.Probe(target.bucket);
    if (!items.empty()) {
      ++result.stats.buckets_nonempty;
      s.ids.assign(items.begin(), items.end());
      s.distances.resize(s.ids.size());
      EvalDistancesBatch(query, ctx, *base_, s.ids.data(), s.ids.size(),
                         s.distances.data());
      for (size_t i = 0; i < s.ids.size(); ++i) {
        if (s.distances[i] <= radius) hits.emplace_back(s.distances[i],
                                                        s.ids[i]);
      }
      result.stats.items_evaluated += s.ids.size();
#if GQR_VALIDATE_ENABLED
      if (mu > 0.0 && metric == Metric::kEuclidean) {
        for (size_t i = 0; i < s.ids.size(); ++i) {
          ValidateTheorem2Bound(mu, prober->last_score(), s.distances[i]);
        }
      }
#endif
    }
    // Distance-threshold stop of §4.1: every unprobed bucket b has
    // QD >= last_score, and items in b are at distance >= mu * QD(b).
    if (mu > 0.0 && mu * prober->last_score() >= radius) {
      result.stats.early_stopped = true;
      break;
    }
  }
  std::sort(hits.begin(), hits.end());
  result.ids.reserve(hits.size());
  result.distances.reserve(hits.size());
  for (const auto& [d, id] : hits) {
    result.ids.push_back(id);
    result.distances.push_back(d);
  }
  return result;
}

void Searcher::RerankCandidatesInto(const float* query,
                                    const std::vector<ItemId>& candidates,
                                    const SearchOptions& options,
                                    SearchScratch* scratch,
                                    SearchResult* result) const {
  const CompressedDataset* comp = options.compressed;
  if (comp != nullptr) {
    GQR_CHECK_EQ(comp->size(), base_->size())
        << "compressed dataset does not cover the base set";
    GQR_CHECK_EQ(comp->dim(), base_->dim())
        << "compressed dataset dim does not match the base set";
    GQR_CHECK_GE(options.rerank_alpha, size_t{1})
        << "rerank_alpha must be >= 1";
  }
  SearchScratch& s = scratch != nullptr ? *scratch : ThreadLocalSearchScratch();
  result->Clear();
  s.BeginQuery(base_->size(), /*need_visited=*/false);
  const QueryContext ctx = MakeQueryContext(query, base_->dim(),
                                            options.metric);
  const size_t heap_k =
      comp != nullptr ? options.k * options.rerank_alpha : options.k;
  TopK top(heap_k, &s.heap);
  // The candidate list is already in the caller's order; evaluate the
  // first max_candidates of it (matching the per-item budget check of the
  // probing path), chunked so the distance buffer stays cache-resident.
  size_t limit = candidates.size();
  if (options.max_candidates != 0) {
    limit = std::min(limit, options.max_candidates);
  }
  constexpr size_t kChunk = 1024;
  for (size_t start = 0; start < limit; start += kChunk) {
    const size_t n = std::min(kChunk, limit - start);
    s.distances.resize(std::max(s.distances.size(), n));
    if (comp != nullptr) {
      EvalDistancesBatchCompressed(query, ctx, *comp,
                                   candidates.data() + start, n,
                                   s.distances.data());
    } else {
      EvalDistancesBatch(query, ctx, *base_, candidates.data() + start, n,
                         s.distances.data());
    }
    for (size_t i = 0; i < n; ++i) {
      (void)top.Offer(s.distances[i], candidates[start + i]);
    }
    result->stats.items_evaluated += n;
  }
  if (comp != nullptr) {
    top.Drain(&s.shortlist, &s.distances);
    result->stats.items_reranked = s.shortlist.size();
    if (!s.shortlist.empty()) {
      s.distances.resize(s.shortlist.size());
      EvalDistancesBatch(query, ctx, *base_, s.shortlist.data(),
                         s.shortlist.size(), s.distances.data());
    }
    TopK exact_top(options.k, &s.heap);
    for (size_t i = 0; i < s.shortlist.size(); ++i) {
      // Heap effect only: the exact rerank pass is past the point where
      // improvement feeds the convergence observation.
      (void)exact_top.Offer(s.distances[i], s.shortlist[i]);
    }
    exact_top.Drain(&result->ids, &result->distances);
    return;
  }
  top.Drain(&result->ids, &result->distances);
}

SearchResult Searcher::RerankCandidates(const float* query,
                                        const std::vector<ItemId>& candidates,
                                        const SearchOptions& options,
                                        SearchScratch* scratch) const {
  SearchResult result;
  RerankCandidatesInto(query, candidates, options, scratch, &result);
  return result;
}

}  // namespace gqr
