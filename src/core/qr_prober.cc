#include "core/qr_prober.h"

#include <algorithm>

#include "core/qd.h"

namespace gqr {

QrProber::QrProber(const QueryHashInfo& info, const StaticHashTable& table,
                   uint32_t table_id)
    : QrProber(info, table.bucket_codes(), table_id) {}

QrProber::QrProber(const QueryHashInfo& info,
                   const std::vector<Code>& bucket_codes, uint32_t table_id)
    : table_id_(table_id) {
  // Algorithm 1 line 4: calculate QD for all buckets and sort.
  order_.reserve(bucket_codes.size());
  for (Code code : bucket_codes) {
    order_.push_back({QuantizationDistance(info, code), code});
  }
  std::sort(order_.begin(), order_.end(),
            [](const Scored& a, const Scored& b) {
              if (a.qd != b.qd) return a.qd < b.qd;
              return a.bucket < b.bucket;
            });
}

bool QrProber::Next(ProbeTarget* target) {
  if (pos_ >= order_.size()) return false;
  last_qd_ = order_[pos_].qd;
  target->table = table_id_;
  target->bucket = order_[pos_].bucket;
#if GQR_VALIDATE_ENABLED
  validator_.ObserveEmission(order_[pos_].bucket, order_[pos_].qd);
#endif
  ++pos_;
  return true;
}

}  // namespace gqr
