// Searcher: the retrieval + evaluation loop shared by every querying
// method (Algorithm 1/2's candidate collection and rerank).
//
// The Searcher consumes any BucketProber, fetches the items of each
// probed bucket from the index, evaluates their exact distances to the
// query with a bounded max-heap of size k, and returns the top-k. Stop
// criteria follow the paper: a candidate budget N (the default), an
// optional bucket budget, and the optional QD-based early stop of §4.1
// (stop once mu * score of the current bucket can no longer beat the
// running k-th nearest distance).
//
// Candidates are evaluated a bucket at a time through the batched SIMD
// eval path (core/eval_batch.h), with per-query metric constants cached
// up front. With SearchOptions::compressed set, the per-bucket pass runs
// against the compressed rows instead and only a k * alpha shortlist is
// exact-reranked at the end (DESIGN.md section 14); the final top-k is
// still reported with exact fp32 distances. All working memory lives in a SearchScratch — including the
// projection buffer the batched hashing phase of core/batch_search.cc
// fills through BinaryHasher::HashQueryBatch; callers that pass nullptr
// get a per-thread scratch, so steady-state searches perform no heap
// allocations beyond the returned result vectors — and none at all
// through the *Into entry points once result capacity has warmed up.
#ifndef GQR_CORE_SEARCHER_H_
#define GQR_CORE_SEARCHER_H_

#include <cstddef>
#include <vector>

#include "core/eval_batch.h"
#include "core/metric.h"
#include "core/prober.h"
#include "data/dataset.h"
#include "index/dynamic_table.h"
#include "index/hash_table.h"
#include "index/multi_table.h"
#include "index/sharded_index.h"
#include "plan/termination.h"
#include "util/attributes.h"

namespace gqr {

class BudgetPlanner;

/// The adaptive-budget hook of SearchOptions (DESIGN.md section 16).
/// With a planner attached the Searcher asks it for the query's starting
/// budget at query start and reports the finished stats back at query
/// end; the batch entry points (BatchSearch, ShardedSearch,
/// QueryService) fill the per-query fields, deriving each query's
/// exploration ticket as `ticket + query index`. Single-query callers
/// set `feature_key = QueryFeatureKey(info)` and a ticket themselves.
struct QueryPlanInput {
  /// Borrowed, internally synchronized, shareable across threads; null
  /// disables planning entirely (the default — zero behavior change).
  const BudgetPlanner* planner = nullptr;
  /// plan::QueryFeatureKey of this query's flipping-cost distribution.
  uint64_t feature_key = 0;
  /// Deterministic exploration ticket (base ticket for batch paths).
  uint64_t ticket = 0;
};

struct SearchOptions {
  /// Number of neighbors to return.
  size_t k = 20;
  /// Candidate budget N of Algorithms 1-2: stop once this many items have
  /// been evaluated. 0 means unlimited (probe everything the prober
  /// emits).
  size_t max_candidates = 1000;
  /// Optional cap on probed buckets (0 = unlimited).
  size_t max_buckets = 0;
  /// Theorem 2 constant for early stop; 0 disables. When > 0 the search
  /// stops as soon as k results are held and mu * last_score >= current
  /// k-th distance (sound because probers emit non-decreasing scores and
  /// mu * QD lower-bounds the true distance).
  double early_stop_mu = 0.0;
  Metric metric = Metric::kEuclidean;
  /// Compressed rerank mode (DESIGN.md section 14). When set, candidates
  /// are scored against this compressed representation of the base set
  /// (must be an encoding of the same n x dim data), a top-(k *
  /// rerank_alpha) shortlist is kept, and the shortlist alone is
  /// exact-reranked against the fp32 rows — per-candidate bytes drop 4x
  /// (SQ8) / 2x (fp16) while the returned distances stay exact. Borrowed;
  /// must outlive the search.
  const CompressedDataset* compressed = nullptr;
  /// Shortlist oversampling factor alpha (>= 1). Larger alpha buys back
  /// recall lost to quantization error at the shortlist boundary; alpha=4
  /// recovers the exact top-k on every dataset we test (see
  /// tests/compressed_rerank_test.cc).
  size_t rerank_alpha = 4;
  /// Margin-scaled Theorem-2 early termination (plan/termination.h).
  /// Inert by default (infinite margin): results are then bit-identical
  /// to a search without the policy. With mu > 0 and a finite margin the
  /// search stops once mu * prober->qd_bound() >= margin * d_k — sound
  /// at margin 1, approximation bounded by 1/margin below it.
  TerminationPolicy termination;
  /// Adaptive budget planning (plan/planner.h); inert when
  /// plan.planner == nullptr.
  QueryPlanInput plan;
};

struct SearchStats {
  size_t buckets_probed = 0;     // Prober emissions consumed.
  size_t buckets_nonempty = 0;   // ... of which existed in the table.
  size_t items_evaluated = 0;    // Exact distance computations.
  size_t duplicates_skipped = 0; // Multi-table only.
  size_t items_reranked = 0;     // Shortlist size (compressed mode only).
  /// Items evaluated up to and including the last one that changed the
  /// top-k (the probes-to-convergence observation the planner learns
  /// from; in compressed mode, the last change of the k*alpha shortlist).
  size_t items_to_last_improvement = 0;
  /// Budget the planner chose for this query (0 = no planner attached).
  size_t planned_budget = 0;
  bool early_stopped = false;    // Legacy early_stop_mu rule fired.
  bool terminated = false;       // TerminationPolicy margin rule fired.
  bool explored = false;         // Epsilon-greedy ran the full budget.
};

struct SearchResult {
  /// Approximate k-NN ids, ascending by exact distance.
  std::vector<ItemId> ids;
  /// Exact distances, parallel to ids.
  std::vector<float> distances;
  SearchStats stats;

  /// Empties the result for reuse, keeping vector capacity.
  void Clear() {
    ids.clear();
    distances.clear();
    stats = SearchStats{};
  }
};

class Searcher {
 public:
  /// The searcher borrows the base set; it must outlive the searcher.
  explicit Searcher(const Dataset& base) : base_(&base) {}

  /// Single-table search: probes `table` in the prober's order. A null
  /// `scratch` uses the calling thread's scratch.
  SearchResult Search(const float* query, BucketProber* prober,
                      const StaticHashTable& table,
                      const SearchOptions& options,
                      SearchScratch* scratch = nullptr) const;

  /// Multi-table search: ProbeTarget::table selects the table; items seen
  /// in an earlier table are de-duplicated (epoch-stamped visited set).
  SearchResult Search(const float* query, BucketProber* prober,
                      const MultiTableIndex& index,
                      const SearchOptions& options,
                      SearchScratch* scratch = nullptr) const;

  /// Search over a mutable index (streaming ingest/delete). Only
  /// generate-to-probe probers (GQR/GHR) apply — HR/QR need the bucket
  /// list of a frozen table.
  SearchResult Search(const float* query, BucketProber* prober,
                      const DynamicHashTable& table,
                      const SearchOptions& options,
                      SearchScratch* scratch = nullptr) const;

  /// Search over a concurrent sharded index. Each probed bucket is the
  /// union of the bucket across shards, copied out under the per-shard
  /// shared locks, so this is safe while writers Insert/Remove
  /// concurrently. On a quiesced index the result is identical to
  /// searching an unsharded table with the same contents (the shards
  /// partition the corpus, so every probed bucket sees the same item
  /// set, and budget accounting proceeds whole-bucket exactly as in the
  /// single-table path). HR/QR probers additionally need the bucket-code
  /// union; see MakeShardedProber in core/sharded_search.h.
  SearchResult Search(const float* query, BucketProber* prober,
                      const ShardedIndex& index, const SearchOptions& options,
                      SearchScratch* scratch = nullptr) const;

  /// Allocation-free variants: results are written into `*result`
  /// (cleared first, capacity reused). These are what BatchSearch drives;
  /// with a warm scratch and result they do not touch the heap. GQR_HOT:
  /// statically checked allocation-source-free (tools/lint) — amortized
  /// growth of the warmed scratch/result buffers is the only allocator
  /// contact, asserted at runtime by tests/scratch_reuse_test.cc.
  GQR_HOT void SearchInto(const float* query, BucketProber* prober,
                          const StaticHashTable& table,
                          const SearchOptions& options, SearchScratch* scratch,
                          SearchResult* result) const;
  GQR_HOT void SearchInto(const float* query, BucketProber* prober,
                          const MultiTableIndex& index,
                          const SearchOptions& options, SearchScratch* scratch,
                          SearchResult* result) const;
  GQR_HOT void SearchInto(const float* query, BucketProber* prober,
                          const DynamicHashTable& table,
                          const SearchOptions& options, SearchScratch* scratch,
                          SearchResult* result) const;
  GQR_HOT void SearchInto(const float* query, BucketProber* prober,
                          const ShardedIndex& index,
                          const SearchOptions& options, SearchScratch* scratch,
                          SearchResult* result) const;

  /// Reranks an explicit candidate list (used by the MIH and IMI paths,
  /// which generate candidates rather than buckets).
  SearchResult RerankCandidates(const float* query,
                                const std::vector<ItemId>& candidates,
                                const SearchOptions& options,
                                SearchScratch* scratch = nullptr) const;
  GQR_HOT void RerankCandidatesInto(const float* query,
                                    const std::vector<ItemId>& candidates,
                                    const SearchOptions& options,
                                    SearchScratch* scratch,
                                    SearchResult* result) const;

  /// Range search (§4.1's distance-threshold early stop): returns every
  /// probed item within `radius` of the query under `metric`, ascending
  /// by distance. With mu > 0 (the Theorem 2 constant of the prober's
  /// hasher) probing stops once mu * score >= radius — and because
  /// mu * QD lower-bounds the distance to every item of every unprobed
  /// bucket, the result is then *exact*: no in-range item is missed.
  /// With mu == 0 the prober is exhausted (still exact, just slower).
  SearchResult RangeSearch(const float* query, BucketProber* prober,
                           const StaticHashTable& table, float radius,
                           double mu, Metric metric = Metric::kEuclidean,
                           SearchScratch* scratch = nullptr) const;

  const Dataset& base() const { return *base_; }

 private:
  template <typename ProbeFn>
  GQR_HOT void SearchImpl(const float* query, BucketProber* prober,
                          const SearchOptions& options, size_t num_tables,
                          ProbeFn probe, SearchScratch* scratch,
                          SearchResult* result) const;

  const Dataset* base_;
};

}  // namespace gqr

#endif  // GQR_CORE_SEARCHER_H_
